// Command btfleet replays arrival traces over a fleet of simulated
// devices: a registry of catalog SoCs, interference-headroom-ranked
// placement with spillover, and a seeded arrival generator.
//
// Usage:
//
//	btfleet                                       # 3-node default fleet, bursty trace
//	btfleet -nodes pixel7a=2,jetson -arrivals 20 -pattern poisson -rate 0.5
//	btfleet -apps octree,vision -affinity vision=jetson
//	btfleet -emit-trace trace.json                # save the generated trace
//	btfleet -trace trace.json                     # replay a saved trace
//	btfleet -drain-node jetson/0 -drain-at 20     # cordon a node mid-replay, migrate its held sessions
//	btfleet -index-bands -1                       # exhaustive placement ranking (no banded index)
//	btfleet -json                                 # machine-readable replay result
//
// The replay is deterministic: one trace, one seed, one byte-identical
// report on every run. -max-rejections turns the rejection count into an
// exit code for CI gates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"bettertogether/internal/cli"
	"bettertogether/internal/experiments"
	"bettertogether/internal/fleet"
	"bettertogether/internal/obs"
)

func main() {
	nodes := flag.String("nodes", "pixel7a,oneplus11,jetson", "registry spec: comma-separated <device> or <device>=<count> entries")
	pattern := flag.String("pattern", fleet.PatternBursty, "arrival pattern: poisson or bursty")
	arrivals := flag.Int("arrivals", 12, "trace length (generated traces)")
	rate := flag.Float64("rate", 1.0, "poisson arrival rate per virtual second")
	burst := flag.Int("burst", 3, "bursty: arrivals per cluster")
	burstEvery := flag.Float64("burst-every", 40, "bursty: seconds between clusters")
	apps := flag.String("apps", "octree,alexnet-sparse", "application mix, cycled in order")
	meanDwell := flag.Float64("mean-dwell", 5, "mean exponential dwell before departure, virtual seconds")
	tasks := flag.Int("tasks", 4, "stream tasks per session")
	seed := flag.Int64("seed", 1, "trace and node-runtime noise seed")
	tracePath := flag.String("trace", "", "replay this JSON trace instead of generating one")
	emitTrace := flag.String("emit-trace", "", "write the trace that was replayed to this file")
	affinity := flag.String("affinity", "", "placement affinity: comma-separated <app>=<device> pairs")
	bwHeadroom := flag.Float64("bw-headroom", 0, "per-node DRAM bandwidth headroom factor (0 = runtime default)")
	coreHeadroom := flag.Float64("core-headroom", 0, "per-node PU core headroom factor (0 = runtime default)")
	indexBands := flag.Int("index-bands", 0, "headroom bands in the placement index (0 = default, negative = exhaustive ranking)")
	drainNode := flag.String("drain-node", "", "drain this node mid-replay, migrating its held sessions (requires -drain-at)")
	drainAt := flag.Float64("drain-at", -1, "logical time of the -drain-node drain, virtual seconds")
	planner := cli.AddPlannerFlags(flag.CommandLine)
	tracing := cli.AddTraceFlags(flag.CommandLine)
	jsonOut := flag.Bool("json", false, "print the replay result as JSON instead of tables")
	listen := flag.String("listen", "", "serve observability HTTP after the replay (/metrics carries the bt_fleet_* families)")
	hold := flag.Duration("hold", 0, "with -listen: keep the server up this long after the replay finishes (for scrapers and CI probes)")
	maxRejections := flag.Int("max-rejections", -1, "exit 1 when more than this many arrivals are rejected (-1 = no gate)")
	flag.Parse()

	// Shared fail-fast knob validation with btrun and btbench: negative
	// or non-finite values would silently select a different policy than
	// the user asked for.
	cli.FatalIf("btfleet", planner.Validate())
	cli.FatalIf("btfleet", tracing.Validate())
	for _, v := range []struct {
		name string
		val  float64
	}{{"-bw-headroom", *bwHeadroom}, {"-core-headroom", *coreHeadroom}} {
		if v.val < 0 || math.IsNaN(v.val) || math.IsInf(v.val, 0) {
			cli.Fatalf("btfleet", "%s must be a finite value >= 0 (0 selects the runtime default), got %v", v.name, v.val)
		}
	}
	if *drainNode != "" && (*drainAt < 0 || math.IsNaN(*drainAt) || math.IsInf(*drainAt, 0)) {
		cli.Fatalf("btfleet", "-drain-node requires -drain-at set to a finite time >= 0, got %v", *drainAt)
	}
	if *drainNode == "" && *drainAt >= 0 {
		cli.Fatalf("btfleet", "-drain-at %v has no effect without -drain-node", *drainAt)
	}

	specs, err := fleet.ParseNodeSpecs(*nodes)
	cli.FatalIf("btfleet", err)
	aff, err := fleet.ParseAffinity(*affinity)
	cli.FatalIf("btfleet", err)

	cfg := experiments.FleetReplayConfig{
		Nodes: specs,
		Gen: fleet.GenConfig{
			Pattern:    *pattern,
			Arrivals:   *arrivals,
			RatePerSec: *rate,
			Burst:      *burst,
			BurstEvery: *burstEvery,
			Apps:       splitList(*apps),
			MeanDwell:  *meanDwell,
			Tasks:      *tasks,
			Seed:       *seed,
		},
		BWHeadroom:    *bwHeadroom,
		CoreHeadroom:  *coreHeadroom,
		ReplanDelta:   planner.ReplanDelta,
		CacheCapacity: planner.CacheCapacity,
		CacheBucket:   planner.CacheBucket,
		Affinity:      aff,
		OnlineProf:    planner.OnlineProf(),
		IndexBands:    *indexBands,
		Seed:          *seed,
		SessionTrace:  tracing.Tracer(*seed),
		SLODeadline:   tracing.SLODeadline,
	}
	if *drainNode != "" {
		cfg.Replay = fleet.ReplayOptions{DrainNode: *drainNode, DrainAt: *drainAt}
	}
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		cli.FatalIf("btfleet", err)
		tr, err := fleet.DecodeTrace(f)
		cli.FatalIf("btfleet", f.Close())
		cli.FatalIf("btfleet", err)
		cfg.Trace = tr
	}

	var stream *obs.Stream
	var srv *obs.Server
	if *listen != "" {
		stream = obs.NewStream(obs.DefaultStreamCapacity)
		cfg.Events = stream
	}

	out, err := experiments.FleetReplay(cfg)
	cli.FatalIf("btfleet", err)

	if out.OnlineProfEnabled {
		fmt.Fprintf(os.Stderr, "btfleet: %s\n", cli.OnlineProfSummary(out.OnlineProf, true))
	}
	if out.SLOEnabled {
		fmt.Fprintf(os.Stderr, "btfleet: %s\n", cli.SLOSummary(out.SLO, true))
	}

	if *listen != "" {
		// The fleet is torn down after the replay, so serve the final
		// stats snapshot: scrapers and CI probes read the completed run.
		srvCfg := obs.ServerConfig{
			Stream: stream,
			Fleet:  func() obs.FleetStats { return out.Stats },
		}
		if out.OnlineProfEnabled {
			srvCfg.OnlineProf = func() obs.OnlineProfStats { return out.OnlineProf }
		}
		if out.SLOEnabled {
			srvCfg.SLO = func() obs.SLOStats { return out.SLO }
		}
		if cfg.SessionTrace != nil {
			srvCfg.Traces = cfg.SessionTrace.Handler()
		}
		srv, err = obs.Serve(*listen, srvCfg)
		cli.FatalIf("btfleet", err)
		fmt.Fprintf(os.Stderr, "btfleet: observability server on http://%s/\n", srv.Addr())
		defer srv.Close()
	}

	if *emitTrace != "" {
		f, err := os.Create(*emitTrace)
		cli.FatalIf("btfleet", err)
		err = out.Trace.Encode(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		cli.FatalIf("btfleet", err)
		fmt.Fprintf(os.Stderr, "btfleet: wrote trace to %s\n", *emitTrace)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		cli.FatalIf("btfleet", enc.Encode(out.Result))
	} else {
		fmt.Print(out.Render())
	}

	if *maxRejections >= 0 && out.Result.Rejected > *maxRejections {
		fmt.Fprintf(os.Stderr, "btfleet: %d rejections exceed the -max-rejections gate (%d)\n",
			out.Result.Rejected, *maxRejections)
		os.Exit(1)
	}

	if srv != nil && *hold > 0 {
		fmt.Fprintf(os.Stderr, "btfleet: holding observability server for %s\n", *hold)
		time.Sleep(*hold)
	}
}

// splitList splits a comma-separated flag into trimmed non-empty parts.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
