// Command btprofile runs the BT-Profiler on one application-device pair
// and prints the profiling table(s).
//
// Usage:
//
//	btprofile -app octree -device pixel7a            # both modes
//	btprofile -app alexnet-sparse -device jetson -mode isolated
//	btprofile -app alexnet-dense -device oneplus11 -reps 50
package main

import (
	"flag"
	"fmt"
	"os"

	"bettertogether/internal/cli"
	"bettertogether/internal/core"
	"bettertogether/internal/profiler"
	"bettertogether/internal/report"
	"bettertogether/internal/soc"
	"bettertogether/pkg/btapps"
)

func main() {
	appName := flag.String("app", "octree", "application: alexnet-dense, alexnet-sparse, octree, vision")
	devName := flag.String("device", soc.Pixel7a, "device: pixel7a, oneplus11, jetson, jetson-lp")
	mode := flag.String("mode", "both", "profiling mode: isolated, heavy, both")
	reps := flag.Int("reps", profiler.DefaultReps, "measurement repetitions per entry")
	seed := flag.Int64("seed", 1, "measurement noise seed")
	out := flag.String("o", "", "write the table(s) as JSON to this path prefix (suffixes -isolated.json / -heavy.json)")
	flag.Parse()

	app, err := btapps.ByName(*appName)
	fatalIf(err)
	dev, err := soc.DeviceByName(*devName)
	fatalIf(err)
	cfg := profiler.Config{Reps: *reps, Seed: *seed}

	switch *mode {
	case "isolated":
		t := profiler.Profile(app, dev, core.Isolated, cfg)
		printTable(t)
		save(t, *out, "-isolated.json")
	case "heavy":
		t := profiler.Profile(app, dev, core.InterferenceHeavy, cfg)
		printTable(t)
		save(t, *out, "-heavy.json")
	case "both":
		tabs := profiler.ProfileBoth(app, dev, cfg)
		printTable(tabs.Isolated)
		fmt.Println()
		printTable(tabs.Heavy)
		fmt.Println()
		printRatios(tabs)
		save(tabs.Isolated, *out, "-isolated.json")
		save(tabs.Heavy, *out, "-heavy.json")
	default:
		fatalIf(fmt.Errorf("unknown mode %q", *mode))
	}
}

// save writes the table when a -o prefix was given.
func save(t *core.ProfileTable, prefix, suffix string) {
	if prefix == "" {
		return
	}
	path := prefix + suffix
	fatalIf(core.SaveTable(t, path))
	fmt.Fprintf(os.Stderr, "btprofile: wrote %s\n", path)
}

func printTable(t *core.ProfileTable) {
	tab := report.NewTable(
		fmt.Sprintf("%s on %s — %s profile (ms)", t.App, t.Device, t.Mode),
		append([]string{"stage"}, classStrings(t.PUs)...)...)
	for i, name := range t.Stages {
		cells := []string{name}
		for j := range t.PUs {
			cells = append(cells, report.Ms(t.Latency[i][j]))
		}
		tab.AddRow(cells...)
	}
	fmt.Print(tab.Render())
}

func printRatios(tabs profiler.Tables) {
	tab := report.NewTable("interference-heavy / isolated ratio per PU", "PU", "ratio")
	ratios := profiler.InterferenceRatios(tabs)
	for _, pu := range tabs.Heavy.PUs {
		tab.AddRow(string(pu), report.F2(ratios[pu]))
	}
	fmt.Print(tab.Render())
}

func classStrings(pus []core.PUClass) []string {
	out := make([]string, len(pus))
	for i, p := range pus {
		out[i] = string(p)
	}
	return out
}

func fatalIf(err error) { cli.FatalIf("btprofile", err) }
