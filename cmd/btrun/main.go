// Command btrun executes pipeline schedules on a device, either on the
// discrete-event simulator (virtual device time, the measurement path of
// the evaluation) or with the real concurrent engine (actual Go kernels
// on worker pools, wall-clock time).
//
// Usage:
//
//	btrun -app octree -device pixel7a -schedule auto
//	btrun -app octree -device pixel7a -schedule big,big,gpu,gpu,gpu,big,big
//	btrun -app alexnet-dense -device jetson -schedule gpu -engine real
//	btrun -app octree -app alexnet-sparse -device oneplus11 -gantt
//
// A single class name replicates across all stages (homogeneous
// baseline); "auto" runs the full BetterTogether optimization first.
//
// Repeating -app enters multi-app mode: a long-lived runtime admits each
// application as a concurrent session (optionally staggered with
// -admit-after), plans each one against the interference the others
// create, re-plans residents on every admission and departure, and
// prints a per-session summary with a merged session-qualified Gantt.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"bettertogether/internal/cli"
	"bettertogether/internal/obs"
	"bettertogether/internal/report"
	btruntime "bettertogether/internal/runtime"
	"bettertogether/internal/trace"
	"bettertogether/pkg/bt"
	"bettertogether/pkg/btapps"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// delayFlag collects a repeatable duration flag.
type delayFlag []time.Duration

func (d *delayFlag) String() string {
	parts := make([]string, len(*d))
	for i, v := range *d {
		parts[i] = v.String()
	}
	return strings.Join(parts, ",")
}

func (d *delayFlag) Set(v string) error {
	dur, err := time.ParseDuration(v)
	if err != nil {
		return err
	}
	if dur < 0 {
		return fmt.Errorf("negative delay %s", dur)
	}
	*d = append(*d, dur)
	return nil
}

func main() {
	var apps multiFlag
	var delays delayFlag
	flag.Var(&apps, "app", "application: alexnet-dense, alexnet-sparse, octree, vision (repeat for multi-app mode)")
	flag.Var(&delays, "admit-after", "multi-app: delay before admitting the matching -app (repeatable, in order; missing entries mean no delay)")
	devName := flag.String("device", "pixel7a", "device: pixel7a, oneplus11, jetson, jetson-lp")
	schedule := flag.String("schedule", "auto", `comma-separated PU classes per stage, one class for all, or "auto"`)
	engine := flag.String("engine", "sim", "execution engine: sim (virtual device time) or real (actual kernels)")
	tasks := flag.Int("tasks", 30, "measured tasks (per session in multi-app mode)")
	warmup := flag.Int("warmup", 5, "warmup tasks excluded from metrics")
	seed := flag.Int64("seed", 1, "simulation noise seed")
	gantt := flag.Bool("gantt", false, "render an ASCII Gantt chart of the run (either engine)")
	traceFlag := flag.Bool("trace", false, "alias for -gantt: trace stage spans and render the Gantt")
	metricsFlag := flag.Bool("metrics", false, "print the per-stage/queue/pool runtime metrics tables")
	timeout := flag.Duration("timeout", 0, "cancel a real-engine run after this duration (0 = no limit)")
	listen := flag.String("listen", "", "serve observability HTTP on this address (/metrics, /sessions, /trace, /events, /healthz, /debug/pprof)")
	hold := flag.Duration("hold", 0, "with -listen: keep the server up this long after the run finishes (for scrapers and CI probes)")
	chromeTrace := flag.String("chrome-trace", "", "write the run's timeline as Chrome trace_event JSON to this file (implies tracing; open in Perfetto)")
	planner := cli.AddPlannerFlags(flag.CommandLine)
	tracing := cli.AddTraceFlags(flag.CommandLine)
	flag.Parse()

	// One shared validation path for the planner knobs (cache, re-plan
	// delta, online profiling) across btrun, btfleet and btbench.
	cli.FatalIf("btrun", planner.Validate())
	cli.FatalIf("btrun", tracing.Validate())

	if len(apps) == 0 {
		apps = multiFlag{"octree"}
	}
	dev, err := bt.DeviceByName(*devName)
	cli.FatalIf("btrun", err)
	eng, err := bt.EngineByName(*engine)
	cli.FatalIf("btrun", err)

	if len(apps) > 1 {
		runMulti(apps, delays, dev, eng, *schedule, *tasks, *warmup, *seed,
			*gantt || *traceFlag, *metricsFlag, *listen, *hold, *chromeTrace,
			planner, tracing)
		return
	}
	// The lifecycle tracer and SLO accounting live in the session runtime,
	// which only multi-app mode drives; failing fast beats silently
	// ignoring the flags.
	if tracing.SLODeadline > 0 || tracing.TraceSample > 0 {
		cli.Fatalf("btrun", "-slo-deadline and -trace-sample require multi-app mode (repeat -app)")
	}
	runSingle(apps[0], dev, eng, *schedule, *engine, *tasks, *warmup, *seed,
		*gantt || *traceFlag, *metricsFlag, *timeout, *listen, *hold, *chromeTrace)
}

// serveObs mounts the introspection server, fatal on a bad address.
func serveObs(addr string, cfg obs.ServerConfig) *obs.Server {
	srv, err := obs.Serve(addr, cfg)
	cli.FatalIf("btrun", err)
	fmt.Fprintf(os.Stderr, "btrun: observability server on http://%s/\n", srv.Addr())
	return srv
}

// holdAndClose keeps a mounted server alive for the -hold window, then
// shuts it down.
func holdAndClose(srv *obs.Server, hold time.Duration) {
	if srv == nil {
		return
	}
	if hold > 0 {
		fmt.Fprintf(os.Stderr, "btrun: holding observability server for %s\n", hold)
		time.Sleep(hold)
	}
	srv.Close()
}

// writeChromeTrace exports a timeline as trace_event JSON.
func writeChromeTrace(path string, tl *trace.Timeline) {
	f, err := os.Create(path)
	cli.FatalIf("btrun", err)
	err = obs.ChromeTrace(f, tl)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	cli.FatalIf("btrun", err)
	fmt.Fprintf(os.Stderr, "btrun: wrote Chrome trace to %s (load in Perfetto / chrome://tracing)\n", path)
}

// runSingle is the classic one-application path: compile one plan and
// drive it through the selected engine once.
func runSingle(appName string, dev *bt.Device, eng bt.Engine, schedule, engineName string,
	tasks, warmup int, seed int64, wantTrace, wantMetrics bool, timeout time.Duration,
	listen string, hold time.Duration, chromeTrace string) {
	app, err := btapps.ByName(appName)
	cli.FatalIf("btrun", err)

	sch, err := parseSchedule(schedule, app, dev)
	cli.FatalIf("btrun", err)

	plan, err := bt.NewPlan(app, dev, sch)
	cli.FatalIf("btrun", err)
	opts := bt.RunOptions{Tasks: tasks, Warmup: warmup, Seed: seed}
	// The exporters need their collectors even when the tables and Gantt
	// are not printed: -listen serves the live collector and timeline,
	// -chrome-trace needs the spans.
	var tl *bt.Timeline
	if wantTrace || listen != "" || chromeTrace != "" {
		tl = &bt.Timeline{}
		opts.Trace = tl
	}
	var m *bt.Metrics
	if wantMetrics || listen != "" {
		m = bt.NewMetrics(plan)
		opts.Metrics = m
	}
	// The timeline fills at run finalize, so publish it to the server only
	// once the run is done; until then /trace serves an empty document.
	var (
		tlMu   sync.Mutex
		tlDone *trace.Timeline
	)
	var srv *obs.Server
	if listen != "" {
		stream := obs.NewStream(obs.DefaultStreamCapacity)
		opts.Events = stream
		srv = serveObs(listen, obs.ServerConfig{
			Stream:  stream,
			Sources: func() []obs.PromSource { return []obs.PromSource{{Metrics: m}} },
			Timeline: func() *trace.Timeline {
				tlMu.Lock()
				defer tlMu.Unlock()
				return tlDone
			},
		})
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	r := eng.Run(ctx, plan, opts)
	tlMu.Lock()
	tlDone = tl
	tlMu.Unlock()
	if r.Err != nil {
		fmt.Fprintln(os.Stderr, "btrun: run ended with error:", r.Err)
	}

	fmt.Printf("app       %s\ndevice    %s\nschedule  %s\nengine    %s\n",
		app.Name, dev.Label, sch, engineName)
	fmt.Printf("tasks     %d (+%d warmup)\n", tasks, warmup)
	fmt.Printf("per-task  %.3f ms\nelapsed   %.3f ms\n", r.PerTask*1e3, r.Elapsed*1e3)
	if len(r.ChunkBusy) > 0 {
		fmt.Printf("chunk busy fractions: ")
		for i, b := range r.ChunkBusy {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%.2f", b)
		}
		fmt.Println()
	}
	if m != nil && wantMetrics {
		fmt.Println()
		fmt.Print(m.Table())
	}
	if tl != nil && wantTrace {
		fmt.Println()
		fmt.Print(tl.Gantt(100))
	}
	if chromeTrace != "" {
		writeChromeTrace(chromeTrace, tl)
	}
	holdAndClose(srv, hold)
	// Partial stats above are still useful diagnostics, but an errored
	// run must not exit 0.
	if r.Err != nil {
		os.Exit(1)
	}
}

// runMulti admits every application into one runtime, staggered by the
// -admit-after delays, and reports per-session results plus the merged
// Gantt. The runtime plans each session itself, so an explicit -schedule
// is rejected.
func runMulti(apps []string, delays []time.Duration, dev *bt.Device, eng bt.Engine,
	schedule string, tasks, warmup int, seed int64, wantTrace, wantMetrics bool,
	listen string, hold time.Duration, chromeTrace string,
	planner *cli.PlannerFlags, tracing *cli.TraceFlags) {
	if schedule != "auto" {
		cli.Fatalf("btrun", "multi-app mode plans each session itself; drop -schedule (got %q)", schedule)
	}
	opts := append([]btruntime.Option{
		btruntime.WithEngine(eng),
		btruntime.WithSeed(seed),
	}, planner.RuntimeOptions()...)
	tracer := tracing.Tracer(seed)
	if tracer != nil {
		opts = append(opts, btruntime.WithSessionTrace(tracer))
	}
	var stream *obs.Stream
	if listen != "" {
		stream = obs.NewStream(obs.DefaultStreamCapacity)
		opts = append(opts, btruntime.WithEvents(stream))
	}
	rt, err := btruntime.New(dev, opts...)
	cli.FatalIf("btrun", err)
	defer rt.Close()

	// The server reads per-session metrics and traces, so -listen and
	// -chrome-trace force collection even when the tables stay unprinted.
	collectMetrics := wantMetrics || listen != ""
	collectTrace := wantTrace || listen != "" || chromeTrace != ""
	var srv *obs.Server
	if listen != "" {
		srvCfg := obs.ServerConfig{Inspector: rt, Stream: stream}
		if _, ok := rt.OnlineProfStats(); ok {
			srvCfg.OnlineProf = func() obs.OnlineProfStats {
				s, _ := rt.OnlineProfStats()
				return s
			}
		}
		if c := rt.Cache(); c != nil {
			srvCfg.Cache = func() obs.CacheStats {
				s := c.Stats()
				return obs.CacheStats{
					Hits: s.Hits, Misses: s.Misses,
					Stores: s.Stores, Evictions: s.Evictions,
					Size: s.Size, Capacity: s.Capacity,
				}
			}
		}
		if tracing.SLODeadline > 0 {
			srvCfg.SLO = func() obs.SLOStats {
				s, _ := rt.SLOStats()
				return s
			}
		}
		if tracer != nil {
			srvCfg.Traces = tracer.Handler()
		}
		srv = serveObs(listen, srvCfg)
	}

	failed := false
	for i, name := range apps {
		app, err := btapps.ByName(name)
		cli.FatalIf("btrun", err)
		if i < len(delays) && delays[i] > 0 {
			time.Sleep(delays[i])
		}
		fmt.Fprintf(os.Stderr, "btrun: admitting %s...\n", app.Name)
		s, err := rt.Admit(app, btruntime.AdmitOptions{
			Tasks:          tasks,
			Warmup:         warmup,
			Seed:           seed + int64(i)*7919,
			CollectMetrics: collectMetrics,
			CollectTrace:   collectTrace,
			Deadline:       tracing.SLODeadline,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "btrun:", err)
			failed = true
			continue
		}
		fmt.Fprintf(os.Stderr, "btrun: admitted %s with schedule %s\n", s.Name(), s.Schedule())
	}
	rt.Wait()

	if c := rt.Cache(); c != nil {
		st := c.Stats()
		fmt.Fprintf(os.Stderr, "btrun: schedule cache: %d hits, %d misses, %d stores, %d evictions (%d/%d entries); %d re-plans delta-skipped\n",
			st.Hits, st.Misses, st.Stores, st.Evictions, st.Size, st.Capacity, rt.ReplansSkipped())
	}
	if s, ok := rt.OnlineProfStats(); ok {
		fmt.Fprintf(os.Stderr, "btrun: %s\n", cli.OnlineProfSummary(s, ok))
	}
	if s, ok := rt.SLOStats(); ok {
		fmt.Fprintf(os.Stderr, "btrun: %s\n", cli.SLOSummary(s, ok))
	}
	fmt.Print(rt.Report(100))
	for _, s := range rt.Sessions() {
		if res := s.Wait(); res.Err != nil {
			failed = true
		}
		if m := s.Metrics(); m != nil && wantMetrics {
			fmt.Println()
			fmt.Print(report.Section(fmt.Sprintf("metrics — %s", s.Name()), m.Table()))
		}
	}
	if chromeTrace != "" {
		parts := make([]trace.SessionTrace, 0, len(rt.Sessions()))
		for _, s := range rt.Sessions() {
			parts = append(parts, trace.SessionTrace{Name: s.Name(), Timeline: s.Timeline()})
		}
		writeChromeTrace(chromeTrace, trace.MergeSessions(parts...))
	}
	holdAndClose(srv, hold)
	if failed {
		os.Exit(1)
	}
}

// parseSchedule resolves the -schedule flag against an application:
// "auto" optimizes, a bare class replicates, and a comma list maps
// per stage.
func parseSchedule(schedule string, app *bt.Application, dev *bt.Device) (bt.Schedule, error) {
	var sch bt.Schedule
	switch {
	case schedule == "auto":
		fmt.Fprintln(os.Stderr, "btrun: profiling and optimizing...")
		return bt.AutoSchedule(app, dev)
	case !strings.Contains(schedule, ","):
		return bt.NewUniformSchedule(len(app.Stages), bt.PUClass(schedule)), nil
	default:
		for _, c := range strings.Split(schedule, ",") {
			sch.Assign = append(sch.Assign, bt.PUClass(strings.TrimSpace(c)))
		}
		return sch, nil
	}
}
