// Command btrun executes a pipeline schedule on a device, either on the
// discrete-event simulator (virtual device time, the measurement path of
// the evaluation) or with the real concurrent engine (actual Go kernels
// on worker pools, wall-clock time).
//
// Usage:
//
//	btrun -app octree -device pixel7a -schedule auto
//	btrun -app octree -device pixel7a -schedule big,big,gpu,gpu,gpu,big,big
//	btrun -app alexnet-dense -device jetson -schedule gpu -engine real
//
// A single class name replicates across all stages (homogeneous
// baseline); "auto" runs the full BetterTogether optimization first.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"bettertogether/pkg/bt"
	"bettertogether/pkg/btapps"
)

func main() {
	appName := flag.String("app", "octree", "application: alexnet-dense, alexnet-sparse, octree, vision")
	devName := flag.String("device", "pixel7a", "device: pixel7a, oneplus11, jetson, jetson-lp")
	schedule := flag.String("schedule", "auto", `comma-separated PU classes per stage, one class for all, or "auto"`)
	engine := flag.String("engine", "sim", "execution engine: sim (virtual device time) or real (actual kernels)")
	tasks := flag.Int("tasks", 30, "measured tasks")
	warmup := flag.Int("warmup", 5, "warmup tasks excluded from metrics")
	seed := flag.Int64("seed", 1, "simulation noise seed")
	gantt := flag.Bool("gantt", false, "render an ASCII Gantt chart of the run (either engine)")
	traceFlag := flag.Bool("trace", false, "alias for -gantt: trace stage spans and render the Gantt")
	metricsFlag := flag.Bool("metrics", false, "print the per-stage/queue/pool runtime metrics tables")
	timeout := flag.Duration("timeout", 0, "cancel a real-engine run after this duration (0 = no limit)")
	flag.Parse()

	app, err := btapps.ByName(*appName)
	fatalIf(err)
	dev, err := bt.DeviceByName(*devName)
	fatalIf(err)

	var sch bt.Schedule
	switch {
	case *schedule == "auto":
		fmt.Fprintln(os.Stderr, "btrun: profiling and optimizing...")
		sch, err = bt.AutoSchedule(app, dev)
		fatalIf(err)
	case !strings.Contains(*schedule, ","):
		sch = bt.NewUniformSchedule(len(app.Stages), bt.PUClass(*schedule))
	default:
		for _, c := range strings.Split(*schedule, ",") {
			sch.Assign = append(sch.Assign, bt.PUClass(strings.TrimSpace(c)))
		}
	}

	plan, err := bt.NewPlan(app, dev, sch)
	fatalIf(err)
	opts := bt.RunOptions{Tasks: *tasks, Warmup: *warmup, Seed: *seed}
	var tl *bt.Timeline
	if *gantt || *traceFlag {
		tl = &bt.Timeline{}
		opts.Trace = tl
	}
	var m *bt.Metrics
	if *metricsFlag {
		m = bt.NewMetrics(plan)
		opts.Metrics = m
	}

	var r bt.RunResult
	switch *engine {
	case "sim":
		r = bt.Simulate(plan, opts)
	case "real":
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		r = bt.ExecuteContext(ctx, plan, opts)
		if r.Err != nil {
			fmt.Fprintln(os.Stderr, "btrun: run ended with error:", r.Err)
		}
	default:
		fatalIf(fmt.Errorf("unknown engine %q", *engine))
	}

	fmt.Printf("app       %s\ndevice    %s\nschedule  %s\nengine    %s\n",
		app.Name, dev.Label, sch, *engine)
	fmt.Printf("tasks     %d (+%d warmup)\n", *tasks, *warmup)
	fmt.Printf("per-task  %.3f ms\nelapsed   %.3f ms\n", r.PerTask*1e3, r.Elapsed*1e3)
	if len(r.ChunkBusy) > 0 {
		fmt.Printf("chunk busy fractions: ")
		for i, b := range r.ChunkBusy {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%.2f", b)
		}
		fmt.Println()
	}
	if m != nil {
		fmt.Println()
		fmt.Print(m.Table())
	}
	if tl != nil {
		fmt.Println()
		fmt.Print(tl.Gantt(100))
	}
	// Partial stats above are still useful diagnostics, but an errored
	// run must not exit 0.
	if r.Err != nil {
		os.Exit(1)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "btrun:", err)
		os.Exit(1)
	}
}
