// Command btrun executes a pipeline schedule on a device, either on the
// discrete-event simulator (virtual device time, the measurement path of
// the evaluation) or with the real concurrent engine (actual Go kernels
// on worker pools, wall-clock time).
//
// Usage:
//
//	btrun -app octree -device pixel7a -schedule auto
//	btrun -app octree -device pixel7a -schedule big,big,gpu,gpu,gpu,big,big
//	btrun -app alexnet-dense -device jetson -schedule gpu -engine real
//
// A single class name replicates across all stages (homogeneous
// baseline); "auto" runs the full BetterTogether optimization first.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bettertogether/pkg/bt"
	"bettertogether/pkg/btapps"
)

func main() {
	appName := flag.String("app", "octree", "application: alexnet-dense, alexnet-sparse, octree, vision")
	devName := flag.String("device", "pixel7a", "device: pixel7a, oneplus11, jetson, jetson-lp")
	schedule := flag.String("schedule", "auto", `comma-separated PU classes per stage, one class for all, or "auto"`)
	engine := flag.String("engine", "sim", "execution engine: sim (virtual device time) or real (actual kernels)")
	tasks := flag.Int("tasks", 30, "measured tasks")
	warmup := flag.Int("warmup", 5, "warmup tasks excluded from metrics")
	seed := flag.Int64("seed", 1, "simulation noise seed")
	gantt := flag.Bool("gantt", false, "render an ASCII Gantt chart of the run (sim engine only)")
	flag.Parse()

	app, err := btapps.ByName(*appName)
	fatalIf(err)
	dev, err := bt.DeviceByName(*devName)
	fatalIf(err)

	var sch bt.Schedule
	switch {
	case *schedule == "auto":
		fmt.Fprintln(os.Stderr, "btrun: profiling and optimizing...")
		sch, err = bt.AutoSchedule(app, dev)
		fatalIf(err)
	case !strings.Contains(*schedule, ","):
		sch = bt.NewUniformSchedule(len(app.Stages), bt.PUClass(*schedule))
	default:
		for _, c := range strings.Split(*schedule, ",") {
			sch.Assign = append(sch.Assign, bt.PUClass(strings.TrimSpace(c)))
		}
	}

	plan, err := bt.NewPlan(app, dev, sch)
	fatalIf(err)
	opts := bt.RunOptions{Tasks: *tasks, Warmup: *warmup, Seed: *seed}
	var tl *bt.Timeline
	if *gantt {
		tl = &bt.Timeline{}
		opts.Trace = tl
	}

	var r bt.RunResult
	switch *engine {
	case "sim":
		r = bt.Simulate(plan, opts)
	case "real":
		r = bt.Execute(plan, opts)
	default:
		fatalIf(fmt.Errorf("unknown engine %q", *engine))
	}

	fmt.Printf("app       %s\ndevice    %s\nschedule  %s\nengine    %s\n",
		app.Name, dev.Label, sch, *engine)
	fmt.Printf("tasks     %d (+%d warmup)\n", *tasks, *warmup)
	fmt.Printf("per-task  %.3f ms\nelapsed   %.3f ms\n", r.PerTask*1e3, r.Elapsed*1e3)
	if len(r.ChunkBusy) > 0 {
		fmt.Printf("chunk busy fractions: ")
		for i, b := range r.ChunkBusy {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%.2f", b)
		}
		fmt.Println()
	}
	if tl != nil {
		fmt.Println()
		fmt.Print(tl.Gantt(100))
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "btrun:", err)
		os.Exit(1)
	}
}
