// Command btbench regenerates the paper's tables and figures on the
// simulated device fleet.
//
// Usage:
//
//	btbench                  # run every experiment
//	btbench -exp fig4        # one experiment: e0, table1, table2, fig1,
//	                         # table3, fig4, fig5, fig6, table4, fig7
//	btbench -parallel        # fan experiment grids over GOMAXPROCS
//	                         # workers; output is identical to serial
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bettertogether/internal/cli"
	"bettertogether/internal/experiments"
	"bettertogether/internal/obs"
	"bettertogether/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (e0, table1, table2, fig1, table3, fig4, fig5, fig6, table4, fig7, abl-dp, abl-k, abl-buffers, abl-reps, ext-energy, all)")
	parallel := flag.Bool("parallel", false, "fan experiment grids across GOMAXPROCS-bounded workers (deterministic: output matches the serial run)")
	timing := flag.Bool("time", false, "report per-experiment and total wall-clock to stderr")
	listen := flag.String("listen", "", "serve liveness, pprof and per-experiment progress events over HTTP while the suite runs")
	flag.Parse()

	s := experiments.NewSuite()
	if *parallel {
		s.Workers = -1 // GOMAXPROCS-bounded
	}
	// With -listen, long suite runs become observable: /healthz answers
	// while experiments grind, /debug/pprof profiles them, and /events
	// carries one run-start/run-end marker pair per experiment.
	var stream *obs.Stream
	if *listen != "" {
		stream = obs.NewStream(obs.DefaultStreamCapacity)
		srv, err := obs.Serve(*listen, obs.ServerConfig{Stream: stream})
		cli.FatalIf("btbench", err)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "btbench: observability server on http://%s/\n", srv.Addr())
	}
	mark := func(kind obs.Kind, id string, d time.Duration) {
		if stream == nil {
			return
		}
		e := obs.NewEvent(kind)
		e.Session, e.Detail, e.Dur = "btbench", id, d
		stream.Emit(e)
	}
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"table1", "table2", "fig1", "e0", "table3", "fig4", "fig5", "fig6", "table4", "fig7", "abl-dp", "abl-k", "abl-buffers", "abl-reps", "abl-slack", "ext-energy", "ext-vision"}
	}
	start := time.Now()
	for _, id := range ids {
		t0 := time.Now()
		mark(obs.KindRunStart, strings.TrimSpace(id), 0)
		if err := run(s, strings.TrimSpace(id)); err != nil {
			cli.Fatalf("btbench", "%s: %v", id, err)
		}
		mark(obs.KindRunEnd, strings.TrimSpace(id), time.Since(t0))
		if *timing {
			fmt.Fprintf(os.Stderr, "btbench: %-12s %8.1f ms\n", id, time.Since(t0).Seconds()*1e3)
		}
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "btbench: total %.1f ms (parallel=%v)\n",
			time.Since(start).Seconds()*1e3, *parallel)
	}
}

func run(s *experiments.Suite, id string) error {
	switch id {
	case "table1":
		fmt.Print(report.Section("Table 1", s.Table1()))
	case "table2":
		fmt.Print(report.Section("Table 2", s.Table2()))
	case "fig1":
		_, body, err := s.Fig1()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "e0":
		_, body, err := s.IntroClaim()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "table3":
		_, body, err := s.Table3()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "fig4":
		_, _, body, err := s.Fig4()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "fig5":
		_, body, err := s.Fig5()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "fig6":
		_, body, err := s.Fig6()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "table4":
		_, body, err := s.Table4()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "fig7":
		_, body, err := s.Fig7()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "abl-dp":
		_, body, err := s.AblationDataParallel()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "abl-k":
		_, body, err := s.AblationK()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "abl-buffers":
		_, body, err := s.AblationBuffers()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "abl-reps":
		_, body, err := s.AblationReps()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "abl-slack":
		_, body, err := s.AblationSlack()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "ext-vision":
		_, body, err := s.ExtVision()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "ext-energy":
		_, body, err := s.ExtEnergy()
		if err != nil {
			return err
		}
		fmt.Print(body)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
