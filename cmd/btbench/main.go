// Command btbench regenerates the paper's tables and figures on the
// simulated device fleet.
//
// Usage:
//
//	btbench                  # run every experiment
//	btbench -exp fig4        # one experiment: e0, table1, table2, fig1,
//	                         # table3, fig4, fig5, fig6, table4, fig7
//	btbench -parallel        # fan experiment grids over GOMAXPROCS
//	                         # workers; output is identical to serial
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bettertogether/internal/benchjson"
	"bettertogether/internal/cli"
	"bettertogether/internal/experiments"
	"bettertogether/internal/obs"
	"bettertogether/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (e0, table1, table2, fig1, table3, fig4, fig5, fig6, table4, fig7, abl-dp, abl-k, abl-buffers, abl-reps, ext-energy, churn, fleet, fleetscale, drift, all)")
	parallel := flag.Bool("parallel", false, "fan experiment grids across GOMAXPROCS-bounded workers (deterministic: output matches the serial run)")
	timing := flag.Bool("time", false, "report per-experiment and total wall-clock to stderr")
	listen := flag.String("listen", "", "serve liveness, pprof and per-experiment progress events over HTTP while the suite runs")
	benchJSON := flag.String("bench-json", "", "write churn benchmark samples to this path in github-action-benchmark shape")
	benchGate := flag.String("bench-gate", "", "compare churn samples against this baseline report and fail on regression")
	gateTol := flag.Float64("gate-tolerance", 10, "regression tolerance for -bench-gate, percent")
	churnRounds := flag.Int("churn-rounds", 0, "admit/drain rounds per churn mode (0 selects the default)")
	churnMinSpeedup := flag.Float64("churn-min-speedup", 0, "fail unless the churn cache speedup reaches this factor (0 disables)")
	planner := cli.AddPlannerFlags(flag.CommandLine)
	flag.Parse()

	// Same shared validation path as btrun and btfleet. The planner
	// flags parameterize the churn and fleet experiments (the -sched-cache
	// capacity feeds churn's cache-on mode; all of them feed the fleet
	// replay).
	cli.FatalIf("btbench", planner.Validate())

	s := experiments.NewSuite()
	if *parallel {
		s.Workers = -1 // GOMAXPROCS-bounded
	}
	// With -listen, long suite runs become observable: /healthz answers
	// while experiments grind, /debug/pprof profiles them, and /events
	// carries one run-start/run-end marker pair per experiment.
	var stream *obs.Stream
	if *listen != "" {
		stream = obs.NewStream(obs.DefaultStreamCapacity)
		srv, err := obs.Serve(*listen, obs.ServerConfig{Stream: stream})
		cli.FatalIf("btbench", err)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "btbench: observability server on http://%s/\n", srv.Addr())
	}
	mark := func(kind obs.Kind, id string, d time.Duration) {
		if stream == nil {
			return
		}
		e := obs.NewEvent(kind)
		e.Session, e.Detail, e.Dur = "btbench", id, d
		stream.Emit(e)
	}
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"table1", "table2", "fig1", "e0", "table3", "fig4", "fig5", "fig6", "table4", "fig7", "abl-dp", "abl-k", "abl-buffers", "abl-reps", "abl-slack", "ext-energy", "ext-vision"}
	}
	churn := churnOpts{
		rounds:     *churnRounds,
		minSpeedup: *churnMinSpeedup,
		jsonPath:   *benchJSON,
		gatePath:   *benchGate,
		tolerance:  *gateTol,
	}
	start := time.Now()
	for _, id := range ids {
		t0 := time.Now()
		mark(obs.KindRunStart, strings.TrimSpace(id), 0)
		if err := run(s, strings.TrimSpace(id), churn, planner); err != nil {
			cli.Fatalf("btbench", "%s: %v", id, err)
		}
		mark(obs.KindRunEnd, strings.TrimSpace(id), time.Since(t0))
		if *timing {
			fmt.Fprintf(os.Stderr, "btbench: %-12s %8.1f ms\n", id, time.Since(t0).Seconds()*1e3)
		}
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "btbench: total %.1f ms (parallel=%v)\n",
			time.Since(start).Seconds()*1e3, *parallel)
	}
}

// churnOpts carries the churn experiment's flags into run. The churn
// experiment is excluded from -exp all: its timing output is wall-clock
// dependent, which would break the suite's deterministic-output
// contract (and the bench-suite golden diff).
type churnOpts struct {
	rounds     int
	minSpeedup float64
	jsonPath   string
	gatePath   string
	tolerance  float64
}

// runChurn runs the admission-churn benchmark, optionally writing the
// github-action-benchmark JSON, gating against a committed baseline,
// and enforcing a minimum cache speedup.
func runChurn(o churnOpts, planner *cli.PlannerFlags) error {
	res, body, err := experiments.Churn(experiments.ChurnConfig{
		Rounds:        o.rounds,
		CacheCapacity: planner.CacheCapacity,
		Bucket:        planner.CacheBucket,
	})
	if err != nil {
		return err
	}
	fmt.Print(body)
	report := benchjson.NewReport()
	report.Benches = res.Benches()
	if o.jsonPath != "" {
		if err := benchjson.Write(o.jsonPath, report); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "btbench: wrote %s\n", o.jsonPath)
	}
	if o.gatePath != "" {
		base, err := benchjson.Read(o.gatePath)
		if err != nil {
			return err
		}
		if violations := benchjson.Compare(base, report, o.tolerance); len(violations) > 0 {
			return fmt.Errorf("benchmark regression vs %s:\n  %s",
				o.gatePath, strings.Join(violations, "\n  "))
		}
		fmt.Fprintf(os.Stderr, "btbench: bench gate vs %s passed (tolerance %.0f%%)\n", o.gatePath, o.tolerance)
	}
	if o.minSpeedup > 0 && res.Speedup < o.minSpeedup {
		return fmt.Errorf("churn cache speedup %.1fx below required %.1fx", res.Speedup, o.minSpeedup)
	}
	return nil
}

// runFleetScale runs the placement-throughput scaling sweep and
// optionally writes its samples as github-action-benchmark JSON
// (BENCH_9.json in CI). The values are wall-clock measurements, so no
// -bench-gate comparison applies — the report is a trajectory artifact.
func runFleetScale(o churnOpts) error {
	res, body, err := experiments.FleetScale(experiments.FleetScaleConfig{Seed: 1})
	if err != nil {
		return err
	}
	fmt.Print(body)
	if o.jsonPath != "" {
		rep := benchjson.NewReport()
		rep.Benches = res.Benches()
		if err := benchjson.Write(o.jsonPath, rep); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "btbench: wrote %s\n", o.jsonPath)
	}
	return nil
}

func run(s *experiments.Suite, id string, churn churnOpts, planner *cli.PlannerFlags) error {
	switch id {
	case "churn":
		return runChurn(churn, planner)
	case "drift":
		// Deterministic (seeded, virtual time) but kept out of -exp all to
		// hold the bench-suite golden stable. The gates make the experiment
		// a CI smoke: a quiet oracle, a detected injection, convergence.
		res, body, err := experiments.DriftConvergence(experiments.DriftConvergenceConfig{Seed: 1})
		if err != nil {
			return err
		}
		fmt.Print(body)
		if res.Oracle.DriftReplans != 0 {
			return fmt.Errorf("drift: oracle run drift-replanned %d times, want 0", res.Oracle.DriftReplans)
		}
		if res.Distorted.DriftReplans < 1 {
			return fmt.Errorf("drift: distorted run never drift-replanned")
		}
		if !res.Converged {
			return fmt.Errorf("drift: distorted run finished on %s, oracle %s",
				res.Distorted.Final, res.Oracle.Final)
		}
	case "table1":
		fmt.Print(report.Section("Table 1", s.Table1()))
	case "table2":
		fmt.Print(report.Section("Table 2", s.Table2()))
	case "fig1":
		_, body, err := s.Fig1()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "e0":
		_, body, err := s.IntroClaim()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "table3":
		_, body, err := s.Table3()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "fig4":
		_, _, body, err := s.Fig4()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "fig5":
		_, body, err := s.Fig5()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "fig6":
		_, body, err := s.Fig6()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "table4":
		_, body, err := s.Table4()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "fig7":
		_, body, err := s.Fig7()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "abl-dp":
		_, body, err := s.AblationDataParallel()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "abl-k":
		_, body, err := s.AblationK()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "abl-buffers":
		_, body, err := s.AblationBuffers()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "abl-reps":
		_, body, err := s.AblationReps()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "abl-slack":
		_, body, err := s.AblationSlack()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "ext-vision":
		_, body, err := s.ExtVision()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "ext-energy":
		_, body, err := s.ExtEnergy()
		if err != nil {
			return err
		}
		fmt.Print(body)
	case "fleet":
		// Deterministic like the rest of the suite (seeded trace, virtual
		// time), but kept out of -exp all to hold the bench-suite golden
		// stable; run it explicitly or via cmd/btfleet.
		out, err := experiments.FleetReplay(experiments.FleetReplayConfig{
			Seed:          1,
			ReplanDelta:   planner.ReplanDelta,
			CacheCapacity: planner.CacheCapacity,
			CacheBucket:   planner.CacheBucket,
			OnlineProf:    planner.OnlineProf(),
		})
		if err != nil {
			return err
		}
		fmt.Print(report.Section("Fleet replay", out.Render()))
	case "fleetscale":
		// Wall-clock dependent (it times the placement sweep itself), so
		// it records the BENCH_9.json trajectory without a CI gate and
		// stays out of -exp all.
		return runFleetScale(churn)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
