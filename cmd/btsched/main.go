// Command btsched runs the BT-Optimizer for one application-device pair:
// it profiles, generates the top-K candidate schedules under the chosen
// strategy, autotunes them on the (simulated) device, and prints the
// ranking with predictions and measurements.
//
// Usage:
//
//	btsched -app octree -device pixel7a
//	btsched -app alexnet-sparse -device jetson -strategy isolated -k 10
package main

import (
	"flag"
	"fmt"

	"bettertogether/internal/cli"
	"bettertogether/internal/report"
	"bettertogether/pkg/bt"
	"bettertogether/pkg/btapps"
)

func main() {
	appName := flag.String("app", "octree", "application: alexnet-dense, alexnet-sparse, octree, vision")
	devName := flag.String("device", "pixel7a", "device: pixel7a, oneplus11, jetson, jetson-lp")
	strategy := flag.String("strategy", "bt", "optimization strategy: bt, latency, isolated")
	k := flag.Int("k", 20, "candidate pool size")
	tasks := flag.Int("tasks", 30, "tasks per autotuning run")
	seed := flag.Int64("seed", 1, "seed for profiling and autotuning noise")
	tablePrefix := flag.String("tables", "", "load profiling tables from <prefix>-isolated.json / <prefix>-heavy.json instead of re-profiling (btprofile -o writes them)")
	objective := flag.String("objective", "latency", "autotuning objective: latency, energy, edp")
	flag.Parse()

	app, err := btapps.ByName(*appName)
	fatalIf(err)
	dev, err := bt.DeviceByName(*devName)
	fatalIf(err)

	var strat bt.Strategy
	switch *strategy {
	case "bt":
		strat = bt.StrategyBetterTogether
	case "latency":
		strat = bt.StrategyLatencyOnly
	case "isolated":
		strat = bt.StrategyIsolated
	default:
		fatalIf(fmt.Errorf("unknown strategy %q", *strategy))
	}

	var tabs bt.Tables
	if *tablePrefix != "" {
		iso, err := bt.LoadTable(*tablePrefix + "-isolated.json")
		fatalIf(err)
		heavy, err := bt.LoadTable(*tablePrefix + "-heavy.json")
		fatalIf(err)
		tabs = bt.Tables{Isolated: iso, Heavy: heavy}
	} else {
		tabs = bt.ProfileBoth(app, dev, bt.ProfileConfig{Seed: *seed})
	}
	opt := bt.NewOptimizer(app, dev, tabs)
	opt.K = *k
	switch *objective {
	case "latency":
		opt.Objective = bt.ObjectiveLatency
	case "energy":
		opt.Objective = bt.ObjectiveEnergy
	case "edp":
		opt.Objective = bt.ObjectiveEDP
	default:
		fatalIf(fmt.Errorf("unknown objective %q", *objective))
	}
	cands, tune, best, err := opt.Optimize(strat, bt.RunOptions{Tasks: *tasks, Warmup: 5, Seed: *seed})
	fatalIf(err)

	t := report.NewTable(
		fmt.Sprintf("%s on %s — strategy %s, objective %s", app.Name, dev.Label, strat, opt.Objective),
		"#", "Predicted (ms)", "Measured (ms)", "Energy (J)", "Gap (ms)", "Schedule")
	for i, c := range cands {
		mark := ""
		if i == tune.BestIndex {
			mark = " *"
		}
		t.AddRow(fmt.Sprintf("%d%s", i+1, mark), report.Ms(c.Predicted),
			report.Ms(tune.Measured[i]), fmt.Sprintf("%.4f", tune.Energy[i]),
			report.Ms(c.Gap), c.Schedule.String())
	}
	fmt.Print(t.Render())
	fmt.Printf("\nselected schedule: %s (measured %s ms)\n",
		best.Schedule, report.Ms(tune.Measured[tune.BestIndex]))
}

func fatalIf(err error) { cli.FatalIf("btsched", err) }
