# Development targets. `make check` is the full gate run before any
# change lands: vet, build, full test suite, then the race-enabled
# stress/property suite over the concurrent machinery.

GO ?= go

.PHONY: all check vet build test race bench

all: check

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine, queue, and metrics packages contain the concurrency
# stress + property tests; run them with the race detector and without
# result caching.
race:
	$(GO) test -race -count=1 ./internal/pipeline/... ./internal/queue/... ./internal/metrics/...

bench:
	$(GO) test -bench=. -benchmem .
