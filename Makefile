# Development targets. `make check` is the full gate run before any
# change lands: vet, build, full test suite, then the race-enabled
# stress/property suite over the concurrent machinery.

GO ?= go

.PHONY: all check vet build test race bench bench-suite bench-churn bench-fleet drift-smoke

all: check

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine, queue, metrics, and obs packages contain the concurrency
# stress + property tests; run them with the race detector and without
# result caching. The experiments and sched packages cover the parallel
# experiment grids, the autotune worker pool, and the profiling cache's
# singleflight. onlineprof covers concurrent event ingestion during
# admit/exit churn.
race:
	$(GO) test -race -count=1 ./internal/pipeline/... ./internal/queue/... ./internal/metrics/... ./internal/runtime/... ./internal/obs/... ./internal/schedcache/... ./internal/fleet/... ./internal/onlineprof/...
	$(GO) test -race -count=1 -run 'Parallel|Concurrent|ForEach' ./internal/experiments/... ./internal/sched/...

bench:
	$(GO) test -bench=. -benchmem .

# bench-suite times the experiment subset that fans across the worker
# pool, serial vs -parallel, and fails if the parallel report diverges
# from the serial golden output by a single byte.
BENCH_EXPS ?= table3,fig7,fig4,fig5
bench-suite:
	@mkdir -p .bench
	$(GO) build -o .bench/btbench ./cmd/btbench
	@echo "== serial ($(BENCH_EXPS))"
	@t0=$$(date +%s%N); .bench/btbench -exp $(BENCH_EXPS) > .bench/serial.txt; \
	 t1=$$(date +%s%N); echo "serial:   $$(( (t1 - t0) / 1000000 )) ms"
	@echo "== parallel ($(BENCH_EXPS))"
	@t0=$$(date +%s%N); .bench/btbench -parallel -exp $(BENCH_EXPS) > .bench/parallel.txt; \
	 t1=$$(date +%s%N); echo "parallel: $$(( (t1 - t0) / 1000000 )) ms"
	@cmp .bench/serial.txt .bench/parallel.txt && echo "outputs identical" || \
	 { echo "FAIL: parallel output diverges from serial golden output"; exit 1; }

# bench-churn runs the admission-churn benchmark (schedule cache off vs
# on), requires the cache to deliver at least a 5x admission speedup,
# writes the fresh samples to .bench/BENCH_6.json, and — when a baseline
# BENCH_6.json is committed at the repo root — gates against it with a
# 10% regression tolerance.
CHURN_MIN_SPEEDUP ?= 5
CHURN_GATE := $(wildcard BENCH_6.json)
bench-churn:
	@mkdir -p .bench
	$(GO) build -o .bench/btbench ./cmd/btbench
	.bench/btbench -exp churn -churn-min-speedup $(CHURN_MIN_SPEEDUP) \
	  -bench-json .bench/BENCH_6.json \
	  $(if $(CHURN_GATE),-bench-gate $(CHURN_GATE) -gate-tolerance 10,)
	$(GO) test -run - -bench BenchmarkSpanHotPath -benchmem ./internal/obs/sessiontrace/

# bench-fleet runs the fleet placement-throughput scaling sweep (banded
# headroom index vs exhaustive ranking over 10/100/1000-node fleets) and
# writes the samples to .bench/BENCH_9.json. Pure wall-clock throughput,
# so the rows record the trajectory without a regression gate; the
# banded/exhaustive *outcome* equivalence is pinned by the fleet
# package's tests instead.
bench-fleet:
	@mkdir -p .bench
	$(GO) build -o .bench/btbench ./cmd/btbench
	.bench/btbench -exp fleetscale -bench-json .bench/BENCH_9.json

# drift-smoke runs the online-profiling drift-convergence experiment
# twice. btbench itself gates the feedback contract (oracle run quiet,
# injected error detected, distorted run converges back to the oracle
# schedule); the cmp gates that the whole loop is deterministic.
drift-smoke:
	@mkdir -p .bench
	$(GO) build -o .bench/btbench ./cmd/btbench
	.bench/btbench -exp drift > .bench/drift_a.txt
	.bench/btbench -exp drift > .bench/drift_b.txt
	@cmp .bench/drift_a.txt .bench/drift_b.txt && echo "drift convergence deterministic" || \
	 { echo "FAIL: drift convergence output diverges between runs"; exit 1; }
