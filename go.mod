module bettertogether

go 1.24
