// Octree mapping: the paper's motivating scenario (Fig. 1). Profiles the
// 7-stage Karras octree pipeline on a phone SoC, shows how differently
// the stages behave per PU class, and demonstrates that the
// interference-aware heterogeneous schedule beats both homogeneous
// deployments — then verifies the schedule functionally by running the
// real kernels and validating the constructed octree.
//
//	go run ./examples/octree_mapping
package main

import (
	"fmt"
	"log"

	"bettertogether/pkg/bt"
	"bettertogether/pkg/btapps"
)

func main() {
	// A smaller frame keeps the real-engine validation quick; the
	// scheduling story is identical at any size.
	app, err := btapps.OctreeSized(16384, "surface")
	if err != nil {
		log.Fatal(err)
	}

	for _, devName := range []string{"pixel7a", "jetson"} {
		dev, err := bt.DeviceByName(devName)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", dev.Label)

		tabs := bt.ProfileBoth(app, dev, bt.ProfileConfig{Seed: 7})
		fmt.Println("interference-heavy stage profile (ms):")
		fmt.Printf("  %-14s", "stage")
		for _, pu := range tabs.Heavy.PUs {
			fmt.Printf(" %10s", pu)
		}
		fmt.Println()
		for i, name := range tabs.Heavy.Stages {
			fmt.Printf("  %-14s", name)
			for j := range tabs.Heavy.PUs {
				fmt.Printf(" %10.3f", tabs.Heavy.Latency[i][j]*1e3)
			}
			fmt.Println()
		}

		opt := bt.NewOptimizer(app, dev, tabs)
		opts := bt.RunOptions{Tasks: 30, Warmup: 5, Seed: 7}
		_, tune, best, err := opt.Optimize(bt.StrategyBetterTogether, opts)
		if err != nil {
			log.Fatal(err)
		}
		btLat := tune.Measured[tune.BestIndex]

		measure := func(s bt.Schedule) float64 {
			plan, err := bt.NewPlan(app, dev, s)
			if err != nil {
				log.Fatal(err)
			}
			return bt.Simulate(plan, opts).PerTask
		}
		gpu := measure(bt.NewUniformSchedule(len(app.Stages), bt.ClassGPU))
		cpu := measure(bt.NewUniformSchedule(len(app.Stages), bt.ClassBig))

		fmt.Printf("\n  BetterTogether %-40s %8.3f ms/task\n", best.Schedule.String(), btLat*1e3)
		fmt.Printf("  all-GPU        %-40s %8.3f ms/task (%.2fx slower)\n", "", gpu*1e3, gpu/btLat)
		fmt.Printf("  all-big-CPU    %-40s %8.3f ms/task (%.2fx slower)\n\n", "", cpu*1e3, cpu/btLat)

		// Functional check: run the chosen schedule for real and verify
		// completions flow through the concurrent pipeline.
		plan, err := bt.NewPlan(app, dev, best.Schedule)
		if err != nil {
			log.Fatal(err)
		}
		r := bt.Execute(plan, bt.RunOptions{Tasks: 10, Warmup: 2})
		fmt.Printf("  real run: %d octrees built, %.2f ms/frame wall time\n\n",
			len(r.Completions), r.PerTask*1e3)
	}
}
