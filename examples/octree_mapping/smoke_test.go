package main

import (
	"testing"

	"bettertogether/pkg/bt"
	"bettertogether/pkg/btapps"
)

// TestOctreeMappingEndToEnd exercises the example's full path on one
// device with a small frame: profile, optimize, then run the winning
// schedule for real and check every frame completes.
func TestOctreeMappingEndToEnd(t *testing.T) {
	app, err := btapps.OctreeSized(4096, "surface")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := bt.DeviceByName("pixel7a")
	if err != nil {
		t.Fatal(err)
	}

	tabs := bt.ProfileBoth(app, dev, bt.ProfileConfig{Seed: 7})
	if len(tabs.Heavy.Stages) != len(app.Stages) {
		t.Fatalf("profile covers %d stages, want %d", len(tabs.Heavy.Stages), len(app.Stages))
	}
	for i, row := range tabs.Heavy.Latency {
		for j, lat := range row {
			if lat <= 0 {
				t.Fatalf("stage %d PU %d: non-positive profiled latency %v", i, j, lat)
			}
		}
	}

	opt := bt.NewOptimizer(app, dev, tabs)
	opts := bt.RunOptions{Tasks: 10, Warmup: 2, Seed: 7}
	_, _, best, err := opt.Optimize(bt.StrategyBetterTogether, opts)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := bt.NewPlan(app, dev, best.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 3
	r := bt.Execute(plan, bt.RunOptions{Tasks: tasks, Warmup: 1})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if len(r.Completions) != tasks {
		t.Fatalf("built %d octrees, want %d", len(r.Completions), tasks)
	}
	if r.PerTask <= 0 {
		t.Fatalf("wall time per frame = %v", r.PerTask)
	}
}
