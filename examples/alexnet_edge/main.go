// AlexNet at the edge: schedules dense and sparse CNN inference across
// every catalog device and contrasts the three optimization strategies,
// showing where the isolated-table model (prior work) picks badly and
// the interference-aware model does not.
//
//	go run ./examples/alexnet_edge
package main

import (
	"fmt"
	"log"

	"bettertogether/pkg/bt"
	"bettertogether/pkg/btapps"
)

func main() {
	apps := []*bt.Application{
		btapps.AlexNetDense(),
		btapps.AlexNetSparseBatch(2), // small batch keeps the demo snappy
	}
	strategies := []bt.Strategy{
		bt.StrategyBetterTogether,
		bt.StrategyLatencyOnly,
		bt.StrategyIsolated,
	}

	for _, app := range apps {
		fmt.Printf("=== %s ===\n", app.Name)
		fmt.Printf("%-14s %-24s %12s %12s %9s\n",
			"device", "strategy", "pred (ms)", "meas (ms)", "err")
		for _, dev := range bt.Catalog() {
			tabs := bt.ProfileBoth(app, dev, bt.ProfileConfig{Seed: 3})
			opt := bt.NewOptimizer(app, dev, tabs)
			for _, strat := range strategies {
				cands := opt.Candidates(strat)
				if len(cands) == 0 {
					log.Fatalf("no candidates for %s on %s", app.Name, dev.Name)
				}
				top := cands[0]
				plan, err := bt.NewPlan(app, dev, top.Schedule)
				if err != nil {
					log.Fatal(err)
				}
				r := bt.Simulate(plan, bt.RunOptions{Tasks: 30, Warmup: 5, Seed: 3})
				errPct := (r.PerTask - top.Predicted) / top.Predicted * 100
				fmt.Printf("%-14s %-24s %12.3f %12.3f %+8.1f%%\n",
					dev.Name, strat, top.Predicted*1e3, r.PerTask*1e3, errPct)
			}
		}
		fmt.Println()
	}

	// Classify a batch for real with the selected sparse schedule on the
	// Jetson: the pipeline is not just a cost model — it computes.
	app := btapps.AlexNetSparseBatch(2)
	dev, _ := bt.DeviceByName("jetson")
	sch, err := bt.AutoSchedule(app, dev)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := bt.NewPlan(app, dev, sch)
	if err != nil {
		log.Fatal(err)
	}
	r := bt.Execute(plan, bt.RunOptions{Tasks: 8, Warmup: 0})
	fmt.Printf("real sparse inference on %s with %s: %d batches classified, %.2f ms/batch wall\n",
		dev.Label, sch, len(r.Completions), r.PerTask*1e3)
}
