package main

import (
	"testing"

	"bettertogether/pkg/bt"
	"bettertogether/pkg/btapps"
)

// TestAlexNetEdgeStrategies checks the example's strategy comparison
// produces candidates under every strategy on one device, and that the
// selected sparse schedule classifies batches for real.
func TestAlexNetEdgeStrategies(t *testing.T) {
	app := btapps.AlexNetSparseBatch(1)
	dev, err := bt.DeviceByName("jetson")
	if err != nil {
		t.Fatal(err)
	}
	tabs := bt.ProfileBoth(app, dev, bt.ProfileConfig{Seed: 3})
	opt := bt.NewOptimizer(app, dev, tabs)
	for _, strat := range []bt.Strategy{
		bt.StrategyBetterTogether, bt.StrategyLatencyOnly, bt.StrategyIsolated,
	} {
		cands := opt.Candidates(strat)
		if len(cands) == 0 {
			t.Fatalf("strategy %v produced no candidates", strat)
		}
		if cands[0].Predicted <= 0 {
			t.Fatalf("strategy %v: non-positive prediction %v", strat, cands[0].Predicted)
		}
		plan, err := bt.NewPlan(app, dev, cands[0].Schedule)
		if err != nil {
			t.Fatalf("strategy %v: %v", strat, err)
		}
		if r := bt.Simulate(plan, bt.RunOptions{Tasks: 10, Warmup: 2, Seed: 3}); r.PerTask <= 0 {
			t.Fatalf("strategy %v: simulated per-task %v", strat, r.PerTask)
		}
	}

	// Real sparse inference, as in the example's closing step.
	sch, err := bt.AutoSchedule(app, dev)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := bt.NewPlan(app, dev, sch)
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 3
	r := bt.Execute(plan, bt.RunOptions{Tasks: tasks, Warmup: 0})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if len(r.Completions) != tasks {
		t.Fatalf("classified %d batches, want %d", len(r.Completions), tasks)
	}
}
