// Quickstart: define a small custom streaming application against the
// public API, let BetterTogether profile and schedule it for a target
// SoC, and execute it both on the simulated device and for real with the
// concurrent dispatcher/queue engine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"bettertogether/pkg/bt"
)

// payload holds one streaming record's buffers: a signal, its smoothed
// form, and a histogram — all pre-allocated, as TaskObjects require.
type payload struct {
	signal   *bt.UsmBuffer[float64]
	smoothed *bt.UsmBuffer[float64]
	hist     *bt.UsmBuffer[int64]
}

const signalLen = 1 << 14

func newTask() *bt.TaskObject {
	p := &payload{
		signal:   bt.NewUsmBuffer[float64](signalLen),
		smoothed: bt.NewUsmBuffer[float64](signalLen),
		hist:     bt.NewUsmBuffer[int64](64),
	}
	task := bt.NewTaskObject(p, nil, func(t *bt.TaskObject) {
		// Regenerate the input deterministically per stream sequence.
		for i := range p.signal.Data {
			p.signal.Data[i] = math.Sin(float64(t.Seq+1) * float64(i) * 1e-3)
		}
		for i := range p.hist.Data {
			p.hist.Data[i] = 0
		}
	})
	task.Reset(0)
	return task
}

// Three stages: generate-features (regular), smooth (stencil), histogram
// (scatter). Each provides the same Go body for both backends — the
// engine decides lane placement through par, and the simulated device
// decides what it costs.
func buildApp() *bt.Application {
	stages := []bt.Stage{
		{
			Name: "features",
			CPU:  featuresKernel, GPU: featuresKernel,
			Cost: bt.CostSpec{FLOPs: 6 * signalLen, Bytes: 8 * signalLen,
				ParallelFraction: 0.999, Divergence: 0.05, Irregularity: 0.05,
				WorkItems: signalLen},
		},
		{
			Name: "smooth",
			CPU:  smoothKernel, GPU: smoothKernel,
			Cost: bt.CostSpec{FLOPs: 10 * signalLen, Bytes: 16 * signalLen,
				ParallelFraction: 0.999, Divergence: 0.05, Irregularity: 0.1,
				WorkItems: signalLen},
		},
		{
			Name: "histogram",
			CPU:  histKernel, GPU: histKernel,
			Cost: bt.CostSpec{FLOPs: 4 * signalLen, Bytes: 12 * signalLen,
				ParallelFraction: 0.97, Divergence: 0.6, Irregularity: 0.7,
				WorkItems: signalLen},
		},
	}
	return &bt.Application{Name: "quickstart", Stages: stages, NewTask: newTask}
}

func featuresKernel(t *bt.TaskObject, par bt.ParallelFor) {
	p := t.Payload.(*payload)
	s := p.signal.Data
	par(len(s), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s[i] = s[i]*s[i] + 0.5*s[i]
		}
	})
}

func smoothKernel(t *bt.TaskObject, par bt.ParallelFor) {
	p := t.Payload.(*payload)
	in, out := p.signal.Data, p.smoothed.Data
	par(len(in), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acc, n := 0.0, 0
			for d := -2; d <= 2; d++ {
				if j := i + d; j >= 0 && j < len(in) {
					acc += in[j]
					n++
				}
			}
			out[i] = acc / float64(n)
		}
	})
}

func histKernel(t *bt.TaskObject, par bt.ParallelFor) {
	p := t.Payload.(*payload)
	in, hist := p.smoothed.Data, p.hist.Data
	// Band-local histograms merged serially keep the kernel
	// deterministic under any worker count.
	const bands = 8
	var local [bands][64]int64
	par(bands, func(bLo, bHi int) {
		for b := bLo; b < bHi; b++ {
			lo, hi := b*len(in)/bands, (b+1)*len(in)/bands
			for _, v := range in[lo:hi] {
				bin := int((v + 2) / 4 * 64)
				if bin < 0 {
					bin = 0
				}
				if bin > 63 {
					bin = 63
				}
				local[b][bin]++
			}
		}
	})
	for b := 0; b < bands; b++ {
		for i := range hist {
			hist[i] += local[b][i]
		}
	}
}

func main() {
	app := buildApp()
	dev, err := bt.DeviceByName("pixel7a")
	if err != nil {
		log.Fatal(err)
	}

	// One call: profile (isolated + interference-heavy), optimize with
	// the gapness filter, autotune the top candidates.
	schedule, err := bt.AutoSchedule(app, dev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected schedule for %s: %s\n", dev.Label, schedule)

	// Measure on the simulated device against the homogeneous baselines.
	opts := bt.RunOptions{Tasks: 30, Warmup: 5, Seed: 1}
	for _, s := range []struct {
		name string
		sch  bt.Schedule
	}{
		{"BetterTogether", schedule},
		{"all-GPU", bt.NewUniformSchedule(len(app.Stages), bt.ClassGPU)},
		{"all-big-CPU", bt.NewUniformSchedule(len(app.Stages), bt.ClassBig)},
	} {
		plan, err := bt.NewPlan(app, dev, s.sch)
		if err != nil {
			log.Fatal(err)
		}
		r := bt.Simulate(plan, opts)
		fmt.Printf("  %-14s %8.3f ms/task (simulated)\n", s.name, r.PerTask*1e3)
	}

	// Show how the schedule actually overlaps on the device.
	plan, err := bt.NewPlan(app, dev, schedule)
	if err != nil {
		log.Fatal(err)
	}
	tl := &bt.Timeline{}
	bt.Simulate(plan, bt.RunOptions{Tasks: 8, Warmup: 1, Seed: 1, Trace: tl})
	fmt.Println()
	fmt.Print(tl.Gantt(72))

	// And run the real kernels through the concurrent pipeline.
	r := bt.Execute(plan, bt.RunOptions{Tasks: 50, Warmup: 10})
	if r.Err != nil {
		log.Fatal(r.Err)
	}
	fmt.Printf("\nreal concurrent run: %d tasks, %.3f ms/task wall time\n",
		len(r.Completions), r.PerTask*1e3)
}
