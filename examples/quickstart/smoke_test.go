package main

import (
	"sync"
	"testing"

	"bettertogether/pkg/bt"
)

// TestQuickstartEndToEnd runs the example's pipeline the way main does —
// auto-schedule, simulate, then execute for real — and checks the real
// run computes correct histograms: every histogram bin total must sum to
// exactly signalLen, since the kernel bins each sample exactly once.
func TestQuickstartEndToEnd(t *testing.T) {
	app := buildApp()
	dev, err := bt.DeviceByName("pixel7a")
	if err != nil {
		t.Fatal(err)
	}
	schedule, err := bt.AutoSchedule(app, dev)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := bt.NewPlan(app, dev, schedule)
	if err != nil {
		t.Fatal(err)
	}

	if r := bt.Simulate(plan, bt.RunOptions{Tasks: 10, Warmup: 2, Seed: 1}); r.PerTask <= 0 {
		t.Fatalf("simulated per-task latency = %v", r.PerTask)
	}

	// Hook the final stage to validate each task's histogram in place
	// (the engine recycles TaskObjects, so outputs are only visible
	// before the task is reset for its next sequence).
	var mu sync.Mutex
	checked := 0
	last := len(app.Stages) - 1
	orig := app.Stages[last].CPU
	check := func(task *bt.TaskObject, par bt.ParallelFor) {
		orig(task, par)
		p := task.Payload.(*payload)
		var total int64
		for _, c := range p.hist.Data {
			if c < 0 {
				t.Errorf("task %d: negative bin count %d", task.Seq, c)
			}
			total += c
		}
		mu.Lock()
		if total != signalLen {
			t.Errorf("task %d: histogram sums to %d, want %d", task.Seq, total, signalLen)
		}
		checked++
		mu.Unlock()
	}
	app.Stages[last].CPU = check
	app.Stages[last].GPU = check

	const tasks = 5
	r := bt.Execute(plan, bt.RunOptions{Tasks: tasks, Warmup: 1})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if len(r.Completions) != tasks {
		t.Fatalf("completions = %d, want %d", len(r.Completions), tasks)
	}
	if checked != tasks+1 { // warmup task also passes through the hook
		t.Fatalf("validated %d tasks, want %d", checked, tasks+1)
	}
}
