package main

import (
	"testing"

	"bettertogether/pkg/bt"
	"bettertogether/pkg/btapps"
)

// TestEdgeBoardSchedules checks the custom device definition is valid
// and the optimizer can specialize the octree pipeline for it end to
// end, exactly as the example does (with a smaller frame for speed).
func TestEdgeBoardSchedules(t *testing.T) {
	dev := edgeBoard()
	if err := dev.Validate(); err != nil {
		t.Fatal(err)
	}
	app, err := btapps.OctreeSized(4096, "clustered")
	if err != nil {
		t.Fatal(err)
	}

	tabs := bt.ProfileBoth(app, dev, bt.ProfileConfig{Seed: 11})
	opt := bt.NewOptimizer(app, dev, tabs)
	opts := bt.RunOptions{Tasks: 10, Warmup: 2, Seed: 11}
	cands, tune, best, err := opt.Optimize(bt.StrategyBetterTogether, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if tune.BestIndex < 0 || tune.BestIndex >= len(cands) {
		t.Fatalf("best index %d out of range", tune.BestIndex)
	}
	if best.Schedule.String() == "" {
		t.Fatal("empty winning schedule")
	}

	// The chosen schedule must actually run on the custom board.
	plan, err := bt.NewPlan(app, dev, best.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if r := bt.Simulate(plan, opts); r.PerTask <= 0 {
		t.Fatalf("simulated per-task latency = %v", r.PerTask)
	}
}

// TestAggressiveThermalGovernor pins the custom governor's contract:
// throttling grows with the number of busy sibling classes.
func TestAggressiveThermalGovernor(t *testing.T) {
	g := aggressiveThermal{}
	if m := g.Multiplier(bt.ClassBig, nil); m != 1 {
		t.Fatalf("idle multiplier = %v", m)
	}
	one := g.Multiplier(bt.ClassBig, []bt.PUClass{bt.ClassGPU})
	two := g.Multiplier(bt.ClassBig, []bt.PUClass{bt.ClassGPU, bt.ClassLittle})
	if !(two < one && one < 1) {
		t.Fatalf("multipliers not monotone: 1 busy → %v, 2 busy → %v", one, two)
	}
}
