// Custom device: BetterTogether's portability story (Sec. 1). The
// framework is not tied to the four catalog SoCs — this example defines
// a hypothetical future edge board with an NPU-ish wide-vector cluster
// and an aggressive thermal governor, then schedules the octree workload
// for it. The optimizer specializes the pipeline to the new device with
// no changes to the application.
//
//	go run ./examples/custom_device
package main

import (
	"fmt"
	"log"

	"bettertogether/pkg/bt"
	"bettertogether/pkg/btapps"
)

// edgeBoard models a made-up "EdgeBoard X1": two fast cores, four
// efficiency cores, and a small GPU, behind a thermally aggressive
// governor that throttles everything under combined load.
func edgeBoard() *bt.Device {
	return &bt.Device{
		Name:  "edgeboard-x1",
		Label: "EdgeBoard X1 (custom)",
		PUs: []bt.PU{
			{
				Class: bt.ClassBig, Kind: 0, /* CPU */
				Cores: 2, CoreIDs: []int{4, 5}, BaseGHz: 2.4,
				EffFlopsPerCycle: 0.35, IrregPenalty: 0.3,
				LaunchOverheadSec: 15e-6, MemBWGBs: 10,
			},
			{
				Class: bt.ClassLittle, Kind: 0,
				Cores: 4, CoreIDs: []int{0, 1, 2, 3}, BaseGHz: 1.5,
				EffFlopsPerCycle: 0.12, IrregPenalty: 0.8,
				LaunchOverheadSec: 20e-6, MemBWGBs: 6,
			},
			{
				Class: bt.ClassGPU, Kind: 1, /* GPU */
				Cores: 4, Lanes: 32, BaseGHz: 0.8,
				EffFlopsPerCycle: 1.0, ScalarFlopsPerCycle: 0.12,
				IrregPenalty: 2.2, DivergencePenalty: 3.0,
				LaunchOverheadSec: 80e-6, MemBWGBs: 14,
				OccupancyItemsPerLane: 4,
			},
		},
		DRAMBWGBs:  17,
		Governor:   &aggressiveThermal{},
		NoiseSigma: 0.04,
	}
}

// aggressiveThermal throttles every PU by 8% per other busy class — a
// custom Governor implementation plugged straight into the simulator.
type aggressiveThermal struct{}

func (aggressiveThermal) Multiplier(target bt.PUClass, busyOthers []bt.PUClass) float64 {
	return 1 - 0.08*float64(len(busyOthers))
}

func main() {
	dev := edgeBoard()
	if err := dev.Validate(); err != nil {
		log.Fatal(err)
	}
	app, err := btapps.OctreeSized(32768, "clustered")
	if err != nil {
		log.Fatal(err)
	}

	tabs := bt.ProfileBoth(app, dev, bt.ProfileConfig{Seed: 11})
	opt := bt.NewOptimizer(app, dev, tabs)
	opts := bt.RunOptions{Tasks: 30, Warmup: 5, Seed: 11}
	cands, tune, best, err := opt.Optimize(bt.StrategyBetterTogether, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheduling %s on %s\n", app.Name, dev.Label)
	fmt.Printf("top candidates (of %d):\n", len(cands))
	for i := 0; i < len(cands) && i < 5; i++ {
		mark := " "
		if i == tune.BestIndex {
			mark = "*"
		}
		fmt.Printf(" %s #%d pred %7.3f ms  meas %7.3f ms  %s\n",
			mark, i+1, cands[i].Predicted*1e3, tune.Measured[i]*1e3, cands[i].Schedule)
	}

	measure := func(s bt.Schedule) float64 {
		plan, err := bt.NewPlan(app, dev, s)
		if err != nil {
			log.Fatal(err)
		}
		return bt.Simulate(plan, opts).PerTask
	}
	btLat := tune.Measured[tune.BestIndex]
	gpu := measure(bt.NewUniformSchedule(len(app.Stages), bt.ClassGPU))
	cpu := measure(bt.NewUniformSchedule(len(app.Stages), bt.ClassBig))
	fmt.Printf("\nBetterTogether %7.3f ms  vs all-GPU %7.3f ms (%.2fx)  vs all-big %7.3f ms (%.2fx)\n",
		btLat*1e3, gpu*1e3, gpu/btLat, cpu*1e3, cpu/btLat)
	fmt.Printf("chosen schedule: %s\n", best.Schedule)
}
