// Package bettertogether reproduces "BetterTogether: An
// Interference-Aware Framework for Fine-grained Software Pipelining on
// Heterogeneous SoCs" (IISWC 2025) as a pure-Go library.
//
// The public API lives in pkg/bt (framework) and pkg/btapps (evaluation
// workloads); the implementation in internal/ (see DESIGN.md for the
// system inventory); runnable demos in examples/; CLI tools in cmd/.
// The root-level benchmarks in bench_test.go regenerate every table and
// figure of the paper's evaluation — run them with
//
//	go test -bench=. -benchmem .
//
// or print the full reports with
//
//	go run ./cmd/btbench
package bettertogether
