// Package solver implements the constraint system of BT-Optimizer
// (paper Sec. 3.3) as a from-scratch branch-and-bound search, standing in
// for the paper's z3 encoding. The formulation is identical:
//
//	C1   exactly one PU class per stage (by construction of the
//	     assignment vector)
//	C2   contiguity — stages on one class form a single chunk
//	C3a  every chunk's summed runtime <= ChunkMax
//	C3b  every chunk's summed runtime >= ChunkMin
//	C5ℓ  blocking clauses excluding previously returned assignments
//	O1   minimize gapness = T_max − T_min over chunk runtimes
//
// The search tree branches per stage on "extend the current chunk" vs
// "open a new chunk on an unused class", which bakes C1 and C2 into the
// tree shape; C3 prunes partial branches; objectives prune with
// incumbent bounds. For the paper's scale (N=9 stages, M=4 classes) the
// feasible space is ~2×10³ leaves and every query solves in well under a
// millisecond — comfortably beating the paper's <50 ms z3 budget.
package solver

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Problem is a scheduling instance: Time[i][c] is the profiled latency of
// stage i on class c (any consistent time unit).
type Problem struct {
	N, M int
	Time [][]float64
}

// Validate checks the instance's shape.
func (p *Problem) Validate() error {
	if p.N <= 0 || p.M <= 0 {
		return fmt.Errorf("solver: need positive N and M, got %d, %d", p.N, p.M)
	}
	if p.M > 30 {
		return fmt.Errorf("solver: class bitmask supports at most 30 classes, got %d", p.M)
	}
	if len(p.Time) != p.N {
		return fmt.Errorf("solver: time table has %d rows, want %d", len(p.Time), p.N)
	}
	for i, row := range p.Time {
		if len(row) != p.M {
			return fmt.Errorf("solver: row %d has %d entries, want %d", i, len(row), p.M)
		}
		for c, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("solver: time[%d][%d] = %v invalid", i, c, v)
			}
		}
	}
	return nil
}

// Constraints hold the optional bounds and blocking clauses.
type Constraints struct {
	// ChunkMax bounds every chunk's summed runtime from above (C3a);
	// 0 disables the bound.
	ChunkMax float64
	// ChunkMin bounds every chunk's summed runtime from below (C3b);
	// 0 disables the bound.
	ChunkMin float64
	// Blocked excludes assignments by canonical Key (C5ℓ).
	Blocked map[string]bool
}

// Solution is one feasible assignment with its chunk metrics.
type Solution struct {
	// Assign[i] is the class index of stage i.
	Assign []int
	// ChunkTimes are the summed runtimes of the maximal chunks in order.
	ChunkTimes []float64
	// TMax and TMin are the extreme chunk runtimes. TMax is the
	// predicted pipeline latency (bottleneck period); TMax−TMin is the
	// gapness.
	TMax, TMin float64
}

// Gap returns the gapness objective O1.
func (s Solution) Gap() float64 { return s.TMax - s.TMin }

// Key returns the canonical blocking-clause key of an assignment.
func Key(assign []int) string {
	var b strings.Builder
	for i, a := range assign {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(a))
	}
	return b.String()
}

// Enumerate visits every assignment satisfying C1, C2, C3 and the
// blocking set, in deterministic order. visit returning false stops the
// enumeration early. prune, when non-nil, is consulted at each branch
// with the partial state (stage index, max and min over *closed* chunks,
// current chunk's running sum); returning true abandons the subtree —
// objective searches use it for incumbent bounds.
func Enumerate(p *Problem, cons Constraints, prune func(stage int, closedMax, closedMin, curSum float64) bool, visit func(Solution) bool) error {
	if err := p.Validate(); err != nil {
		return err
	}
	assign := make([]int, p.N)
	chunkTimes := make([]float64, 0, p.M)

	closeOK := func(sum float64) bool {
		return cons.ChunkMin == 0 || sum >= cons.ChunkMin
	}
	fitsMax := func(sum float64) bool {
		return cons.ChunkMax == 0 || sum <= cons.ChunkMax
	}

	stop := false
	var rec func(stage int, usedMask int, cur int, curSum, closedMax, closedMin float64)
	rec = func(stage int, usedMask int, cur int, curSum, closedMax, closedMin float64) {
		if stop {
			return
		}
		if prune != nil && prune(stage, closedMax, closedMin, curSum) {
			return
		}
		if stage == p.N {
			if !closeOK(curSum) {
				return
			}
			times := append(append([]float64(nil), chunkTimes...), curSum)
			tmax, tmin := times[0], times[0]
			for _, t := range times[1:] {
				tmax = math.Max(tmax, t)
				tmin = math.Min(tmin, t)
			}
			sol := Solution{
				Assign:     append([]int(nil), assign...),
				ChunkTimes: times,
				TMax:       tmax,
				TMin:       tmin,
			}
			if cons.Blocked != nil && cons.Blocked[Key(sol.Assign)] {
				return
			}
			if !visit(sol) {
				stop = true
			}
			return
		}
		// Branch 1: extend the current chunk on the same class.
		if ext := curSum + p.Time[stage][cur]; fitsMax(ext) {
			assign[stage] = cur
			rec(stage+1, usedMask, cur, ext, closedMax, closedMin)
		}
		// Branch 2: close the current chunk, open a new one on any
		// unused class (C2: a class never reopens).
		if !closeOK(curSum) {
			return
		}
		newMax := math.Max(closedMax, curSum)
		newMin := math.Min(closedMin, curSum)
		chunkTimes = append(chunkTimes, curSum)
		for c := 0; c < p.M; c++ {
			if usedMask&(1<<c) != 0 {
				continue
			}
			if t := p.Time[stage][c]; fitsMax(t) {
				assign[stage] = c
				rec(stage+1, usedMask|1<<c, c, t, newMax, newMin)
			}
		}
		chunkTimes = chunkTimes[:len(chunkTimes)-1]
	}

	// Root: the first stage opens the first chunk on any class.
	for c := 0; c < p.M && !stop; c++ {
		if t := p.Time[0][c]; fitsMax(t) {
			assign[0] = c
			// closedMax/Min start at ±empty sentinels folded via the
			// first closed chunk; use -Inf/+Inf so Max/Min work.
			rec(1, 1<<c, c, t, math.Inf(-1), math.Inf(1))
		}
	}
	return nil
}

// MinimizeGapness solves objective O1: the feasible assignment with the
// smallest T_max − T_min, branch-and-bound pruned by the incumbent (a
// partial branch whose closed-chunk spread already exceeds the incumbent
// gap cannot recover). Ties break toward lower TMax, then first found.
// ok is false when no feasible assignment exists.
func MinimizeGapness(p *Problem, cons Constraints) (best Solution, ok bool) {
	bestGap := math.Inf(1)
	err := Enumerate(p, cons,
		func(stage int, closedMax, closedMin, curSum float64) bool {
			if math.IsInf(closedMax, -1) {
				return false
			}
			spread := closedMax - closedMin
			// The running chunk can only push the spread further once it
			// exceeds the closed max.
			if curSum > closedMax {
				spread = math.Max(spread, curSum-closedMin)
			}
			return spread > bestGap
		},
		func(s Solution) bool {
			if g := s.Gap(); g < bestGap || (g == bestGap && ok && s.TMax < best.TMax) {
				best, ok, bestGap = s, true, g
			}
			return true
		})
	if err != nil {
		return Solution{}, false
	}
	return best, ok
}

// MinimizeLatency finds the feasible assignment with the smallest TMax,
// pruning branches whose partial bottleneck already exceeds the
// incumbent.
func MinimizeLatency(p *Problem, cons Constraints) (best Solution, ok bool) {
	bestT := math.Inf(1)
	err := Enumerate(p, cons,
		func(stage int, closedMax, closedMin, curSum float64) bool {
			return math.Max(closedMax, curSum) >= bestT
		},
		func(s Solution) bool {
			if s.TMax < bestT {
				best, ok, bestT = s, true, s.TMax
			}
			return true
		})
	if err != nil {
		return Solution{}, false
	}
	return best, ok
}

// worseSolution is the total order every top-K query ranks by: higher
// TMax is worse, ties broken by assignment key (keys are unique per
// assignment, so the order is total and deterministic).
func worseSolution(a, b Solution) bool {
	if a.TMax != b.TMax {
		return a.TMax > b.TMax
	}
	return Key(a.Assign) > Key(b.Assign)
}

// topKHeap is a bounded max-heap of incumbent solutions ordered by
// worseSolution: the root is the worst incumbent, so a streaming offer
// either rejects in O(1) or replaces the root in O(log k). It holds at
// most k solutions no matter how many stream through.
type topKHeap struct {
	k    int
	sols []Solution
}

func (h *topKHeap) full() bool { return len(h.sols) == h.k }

// bound is the incumbent latency frontier: once the heap is full, no
// solution — and by extension no branch whose partial bottleneck already
// exceeds it — with TMax strictly above the worst incumbent's can enter.
func (h *topKHeap) bound() float64 {
	if !h.full() {
		return math.Inf(1)
	}
	return h.sols[0].TMax
}

func (h *topKHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(h.sols) && worseSolution(h.sols[l], h.sols[worst]) {
			worst = l
		}
		if r < len(h.sols) && worseSolution(h.sols[r], h.sols[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.sols[i], h.sols[worst] = h.sols[worst], h.sols[i]
		i = worst
	}
}

// offer streams one solution through the bounded incumbent set.
func (h *topKHeap) offer(s Solution) {
	if !h.full() {
		h.sols = append(h.sols, s)
		for i := len(h.sols) - 1; i > 0; {
			parent := (i - 1) / 2
			if !worseSolution(h.sols[i], h.sols[parent]) {
				break
			}
			h.sols[i], h.sols[parent] = h.sols[parent], h.sols[i]
			i = parent
		}
		return
	}
	if worseSolution(s, h.sols[0]) {
		return
	}
	h.sols[0] = s
	h.siftDown(0)
}

// sorted drains the heap into the canonical ascending (TMax, Key) order.
func (h *topKHeap) sorted() []Solution {
	if len(h.sols) == 0 {
		return nil
	}
	out := h.sols
	h.sols = nil
	sort.Slice(out, func(a, b int) bool { return worseSolution(out[b], out[a]) })
	return out
}

// FilterFunc accepts or rejects a complete feasible solution before it
// enters a bounded candidate pool. It must be pure: the same solution
// always gets the same verdict.
type FilterFunc func(Solution) bool

// TopKFiltered returns up to k feasible assignments passing filter with
// the smallest TMax, ascending (ties broken by assignment key for
// determinism). It is the streaming equivalent of enumerating every
// feasible solution, filtering, sorting by (TMax, Key) and truncating to
// k — pinned byte-identical by test — but never materializes the
// solution pool: candidates stream through a bounded max-heap of
// incumbents, and branches whose partial bottleneck already exceeds the
// k-th incumbent's TMax are pruned (the same prune shape as
// TopKByLatency). The prune stays sound under any filter because a
// filter only discards solutions: every completion of a pruned branch
// has TMax at or above the partial bottleneck, so none could displace an
// incumbent whether the filter admits it or not. A nil filter admits
// everything.
func TopKFiltered(p *Problem, cons Constraints, k int, filter FilterFunc) []Solution {
	return TopKFilteredSeeded(p, cons, k, filter, nil, nil)
}

// TopKByLatency returns up to k feasible assignments with the smallest
// TMax, ascending (ties broken by assignment key for determinism). It
// reproduces the paper's optimization two: repeated solving with
// blocking clauses C5ℓ — implemented as one pruned enumeration with a
// bounded incumbent set, which visits exactly the assignments the
// iterative blocking loop would.
func TopKByLatency(p *Problem, cons Constraints, k int) []Solution {
	return TopKFiltered(p, cons, k, nil)
}
