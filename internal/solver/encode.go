package solver

import (
	"math"
	"sort"

	"bettertogether/internal/sat"
)

// This file is the paper's literal constraint encoding (Sec. 3.3) on a
// boolean satisfiability engine, mirroring the z3 formulation:
//
//	x_{i,c}                        decision variables
//	C1  Σ_c x_{i,c} = 1            at-least-one clause + pairwise AMO
//	C2  (x_{i,c} ∧ x_{k,c}) → x_{j,c} for i<j<k
//	C3  chunk-runtime bounds        lazy theory check (below)
//	C5ℓ blocking clauses            sat.Solver.Block
//
// The chunk-sum arithmetic that z3 handles natively is checked lazily:
// each propositional model is decoded and evaluated; models violating a
// bound are blocked and the search continues — the counterexample-guided
// loop an SMT solver runs internally. The branch-and-bound enumeration
// in solver.go is the primary engine (it is faster); this path exists to
// cross-validate it, and the tests assert both produce identical
// solution sets.

// cnfEncoding maps the scheduling problem onto SAT variables.
type cnfEncoding struct {
	n, m int
	s    *sat.Solver
	vars []int // all decision variables, for blocking
}

// xvar returns the variable index of x_{i,c}.
func (e *cnfEncoding) xvar(i, c int) int { return i*e.m + c }

// encodeCNF builds C1 and C2 for an n-stage, m-class problem.
func encodeCNF(n, m int) *cnfEncoding {
	e := &cnfEncoding{n: n, m: m, s: sat.New(n * m)}
	for v := 0; v < n*m; v++ {
		e.vars = append(e.vars, v)
	}
	// C1: exactly one class per stage.
	for i := 0; i < n; i++ {
		clause := make([]sat.Lit, m)
		for c := 0; c < m; c++ {
			clause[c] = sat.Pos(e.xvar(i, c))
		}
		e.s.Add(clause...)
		for c1 := 0; c1 < m; c1++ {
			for c2 := c1 + 1; c2 < m; c2++ {
				e.s.Add(sat.Neg(e.xvar(i, c1)), sat.Neg(e.xvar(i, c2)))
			}
		}
	}
	// C2: contiguity — a class may not reappear after an interruption.
	for c := 0; c < m; c++ {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for k := j + 1; k < n; k++ {
					e.s.Add(sat.Neg(e.xvar(i, c)), sat.Neg(e.xvar(k, c)), sat.Pos(e.xvar(j, c)))
				}
			}
		}
	}
	return e
}

// decode converts a SAT model into an assignment vector.
func (e *cnfEncoding) decode(model []bool) []int {
	assign := make([]int, e.n)
	for i := 0; i < e.n; i++ {
		for c := 0; c < e.m; c++ {
			if model[e.xvar(i, c)] {
				assign[i] = c
				break
			}
		}
	}
	return assign
}

// evaluate builds the Solution metrics for an assignment.
func evaluate(p *Problem, assign []int) Solution {
	var times []float64
	for i := 0; i < p.N; {
		j, sum := i, 0.0
		for j < p.N && assign[j] == assign[i] {
			sum += p.Time[j][assign[i]]
			j++
		}
		times = append(times, sum)
		i = j
	}
	tmax, tmin := times[0], times[0]
	for _, t := range times[1:] {
		tmax = math.Max(tmax, t)
		tmin = math.Min(tmin, t)
	}
	return Solution{
		Assign:     append([]int(nil), assign...),
		ChunkTimes: times,
		TMax:       tmax,
		TMin:       tmin,
	}
}

// satisfiesBounds applies the C3 theory check.
func satisfiesBounds(s Solution, cons Constraints) bool {
	for _, ct := range s.ChunkTimes {
		if cons.ChunkMax > 0 && ct > cons.ChunkMax {
			return false
		}
		if cons.ChunkMin > 0 && ct < cons.ChunkMin {
			return false
		}
	}
	return true
}

// EnumerateSAT visits every feasible assignment via propositional model
// enumeration with lazy theory checking, in an order determined by the
// SAT search (not the deterministic order of Enumerate). It exists to
// cross-validate the branch-and-bound engine.
func EnumerateSAT(p *Problem, cons Constraints, visit func(Solution) bool) error {
	if err := p.Validate(); err != nil {
		return err
	}
	e := encodeCNF(p.N, p.M)
	e.s.EnumerateModels(e.vars, func(model []bool) bool {
		sol := evaluate(p, e.decode(model))
		if !satisfiesBounds(sol, cons) {
			return true // theory conflict: block and continue
		}
		if cons.Blocked != nil && cons.Blocked[Key(sol.Assign)] {
			return true
		}
		return visit(sol)
	})
	return nil
}

// TopKByLatencySAT is TopKByLatency computed through the SAT path.
func TopKByLatencySAT(p *Problem, cons Constraints, k int) []Solution {
	if k <= 0 {
		return nil
	}
	var all []Solution
	_ = EnumerateSAT(p, cons, func(s Solution) bool {
		all = append(all, s)
		return true
	})
	sort.Slice(all, func(a, b int) bool {
		if all[a].TMax != all[b].TMax {
			return all[a].TMax < all[b].TMax
		}
		return Key(all[a].Assign) < Key(all[b].Assign)
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// MinimizeGapnessSAT solves O1 through the SAT path (full enumeration
// plus external objective), used for cross-validation.
func MinimizeGapnessSAT(p *Problem, cons Constraints) (Solution, bool) {
	best := Solution{}
	found := false
	_ = EnumerateSAT(p, cons, func(s Solution) bool {
		if !found || s.Gap() < best.Gap() || (s.Gap() == best.Gap() && s.TMax < best.TMax) {
			best, found = s, true
		}
		return true
	})
	return best, found
}
