package solver

import "math"

// Evaluate scores one complete assignment against the problem: it
// recomputes the chunk decomposition and verifies the full constraint
// system — C1 by construction of the vector, C2 contiguity (a class
// never reopens), C3a/C3b chunk-runtime bounds, and the blocking set.
// ok is false for malformed or infeasible assignments. The returned
// Solution is exactly what Enumerate would have visited for the same
// assignment, which is what lets warm-start seeds enter the incumbent
// heap without perturbing the result set.
func Evaluate(p *Problem, cons Constraints, assign []int) (Solution, bool) {
	if err := p.Validate(); err != nil || len(assign) != p.N {
		return Solution{}, false
	}
	cur := assign[0]
	if cur < 0 || cur >= p.M {
		return Solution{}, false
	}
	usedMask := 1 << cur
	curSum := p.Time[0][cur]
	chunkTimes := make([]float64, 0, p.M)
	for i := 1; i < p.N; i++ {
		c := assign[i]
		if c < 0 || c >= p.M {
			return Solution{}, false
		}
		if c == cur {
			curSum += p.Time[i][c]
			continue
		}
		if usedMask&(1<<c) != 0 {
			return Solution{}, false // C2: class reopened
		}
		chunkTimes = append(chunkTimes, curSum)
		usedMask |= 1 << c
		cur, curSum = c, p.Time[i][c]
	}
	chunkTimes = append(chunkTimes, curSum)
	tmax, tmin := chunkTimes[0], chunkTimes[0]
	for _, t := range chunkTimes {
		if cons.ChunkMax != 0 && t > cons.ChunkMax {
			return Solution{}, false
		}
		if cons.ChunkMin != 0 && t < cons.ChunkMin {
			return Solution{}, false
		}
		tmax = math.Max(tmax, t)
		tmin = math.Min(tmin, t)
	}
	if cons.Blocked != nil && cons.Blocked[Key(assign)] {
		return Solution{}, false
	}
	return Solution{
		Assign:     append([]int(nil), assign...),
		ChunkTimes: chunkTimes,
		TMax:       tmax,
		TMin:       tmin,
	}, true
}

// SearchStats counts one top-K query's search effort. Seeding shrinks
// Visited and grows Pruned — the incumbent latency bound bites from the
// first branch instead of only after k solutions have streamed through —
// while the returned solution set is provably unchanged (pinned by
// property test).
type SearchStats struct {
	// Seeded counts warm-start assignments accepted as initial
	// incumbents (feasible, filter-passing, distinct).
	Seeded int
	// Visited counts complete feasible solutions reached by the
	// enumeration (before filtering).
	Visited int
	// Pruned counts subtrees abandoned by the incumbent latency bound.
	Pruned int
}

// TopKFilteredSeeded is TopKFiltered with a warm-started incumbent set:
// each seed assignment is evaluated against the full constraint system
// and, when feasible and filter-passing, offered to the bounded
// incumbent heap *before* enumeration begins, so the latency prune has
// a finite bound from the first branch. Seeds never change the result —
// only the prune rate:
//
//   - an infeasible or filtered seed is ignored;
//   - a feasible seed is, by Evaluate's construction, exactly the
//     Solution the enumeration itself would visit for that assignment,
//     and is skipped when the enumeration reaches it (no duplicates);
//   - the prune (partial bottleneck strictly above the k-th incumbent's
//     TMax) only discards branches whose every completion the full heap
//     would reject under the same total (TMax, Key) order.
//
// Hence the returned set is byte-identical to the unseeded query's
// (pinned by property test across random problems and seeds). stats,
// when non-nil, is reset and filled with the query's search counters.
func TopKFilteredSeeded(p *Problem, cons Constraints, k int, filter FilterFunc, seeds [][]int, stats *SearchStats) []Solution {
	if stats != nil {
		*stats = SearchStats{}
	}
	if k <= 0 {
		return nil
	}
	top := &topKHeap{k: k}
	var seeded map[string]bool
	for _, a := range seeds {
		sol, ok := Evaluate(p, cons, a)
		if !ok {
			continue
		}
		if filter != nil && !filter(sol) {
			continue
		}
		key := Key(sol.Assign)
		if seeded[key] {
			continue
		}
		if seeded == nil {
			seeded = map[string]bool{}
		}
		seeded[key] = true
		top.offer(sol)
		if stats != nil {
			stats.Seeded++
		}
	}
	_ = Enumerate(p, cons,
		func(stage int, closedMax, closedMin, curSum float64) bool {
			if math.Max(closedMax, curSum) > top.bound() {
				if stats != nil {
					stats.Pruned++
				}
				return true
			}
			return false
		},
		func(s Solution) bool {
			if stats != nil {
				stats.Visited++
			}
			if seeded != nil && seeded[Key(s.Assign)] {
				return true // already offered as a seed
			}
			if filter != nil && !filter(s) {
				return true
			}
			top.offer(s)
			return true
		})
	return top.sorted()
}
