package solver

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func simpleProblem() *Problem {
	// 3 stages, 2 classes.
	return &Problem{N: 3, M: 2, Time: [][]float64{
		{1, 4},
		{2, 1},
		{3, 1},
	}}
}

func collectAll(t *testing.T, p *Problem, cons Constraints) []Solution {
	t.Helper()
	var out []Solution
	if err := Enumerate(p, cons, nil, func(s Solution) bool {
		out = append(out, s)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// bruteCount counts contiguous assignments by direct construction:
// compositions of N into k parts × ordered injections of classes.
func bruteCount(n, m int) int {
	// comps(n, k) = C(n-1, k-1); perms = m!/(m-k)!
	binom := func(a, b int) int {
		if b < 0 || b > a {
			return 0
		}
		r := 1
		for i := 0; i < b; i++ {
			r = r * (a - i) / (i + 1)
		}
		return r
	}
	total := 0
	perm := 1
	for k := 1; k <= m && k <= n; k++ {
		perm *= m - k + 1
		total += binom(n-1, k-1) * perm
	}
	return total
}

func TestEnumerateCountsMatchCombinatorics(t *testing.T) {
	for _, c := range []struct{ n, m int }{{3, 2}, {4, 3}, {9, 4}, {7, 4}, {5, 1}} {
		p := &Problem{N: c.n, M: c.m, Time: make([][]float64, c.n)}
		for i := range p.Time {
			p.Time[i] = make([]float64, c.m)
			for j := range p.Time[i] {
				p.Time[i][j] = 1
			}
		}
		got := len(collectAll(t, p, Constraints{}))
		want := bruteCount(c.n, c.m)
		if got != want {
			t.Errorf("N=%d M=%d: enumerated %d, combinatorics says %d", c.n, c.m, got, want)
		}
	}
}

func TestEnumerateContiguityInvariant(t *testing.T) {
	p := &Problem{N: 6, M: 3, Time: make([][]float64, 6)}
	rng := rand.New(rand.NewSource(1))
	for i := range p.Time {
		p.Time[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	for _, s := range collectAll(t, p, Constraints{}) {
		seen := map[int]bool{}
		for i := 0; i < len(s.Assign); i++ {
			c := s.Assign[i]
			if i == 0 || s.Assign[i-1] != c {
				if seen[c] {
					t.Fatalf("class %d reopens in %v", c, s.Assign)
				}
				seen[c] = true
			}
		}
	}
}

func TestChunkTimesConsistent(t *testing.T) {
	p := simpleProblem()
	for _, s := range collectAll(t, p, Constraints{}) {
		// Recompute chunk times from the assignment.
		var want []float64
		for i := 0; i < p.N; {
			j, sum := i, 0.0
			for j < p.N && s.Assign[j] == s.Assign[i] {
				sum += p.Time[j][s.Assign[i]]
				j++
			}
			want = append(want, sum)
			i = j
		}
		if len(want) != len(s.ChunkTimes) {
			t.Fatalf("chunk count mismatch: %v vs %v", s.ChunkTimes, want)
		}
		tmax, tmin := want[0], want[0]
		for i := range want {
			if math.Abs(want[i]-s.ChunkTimes[i]) > 1e-12 {
				t.Fatalf("chunk times %v, want %v", s.ChunkTimes, want)
			}
			tmax = math.Max(tmax, want[i])
			tmin = math.Min(tmin, want[i])
		}
		if s.TMax != tmax || s.TMin != tmin {
			t.Fatalf("TMax/TMin inconsistent")
		}
	}
}

func TestChunkBoundsC3(t *testing.T) {
	p := simpleProblem()
	sols := collectAll(t, p, Constraints{ChunkMax: 3})
	if len(sols) == 0 {
		t.Fatal("no solutions under ChunkMax=3")
	}
	for _, s := range sols {
		for _, ct := range s.ChunkTimes {
			if ct > 3 {
				t.Fatalf("ChunkMax violated: %v", s.ChunkTimes)
			}
		}
	}
	sols = collectAll(t, p, Constraints{ChunkMin: 2})
	for _, s := range sols {
		for _, ct := range s.ChunkTimes {
			if ct < 2 {
				t.Fatalf("ChunkMin violated: %v", s.ChunkTimes)
			}
		}
	}
	// Infeasible bounds yield no solutions.
	if got := collectAll(t, p, Constraints{ChunkMax: 0.5}); len(got) != 0 {
		t.Fatalf("expected infeasible, got %d solutions", len(got))
	}
}

func TestBlockingClausesC5(t *testing.T) {
	p := simpleProblem()
	all := collectAll(t, p, Constraints{})
	blocked := map[string]bool{Key(all[0].Assign): true, Key(all[1].Assign): true}
	rest := collectAll(t, p, Constraints{Blocked: blocked})
	if len(rest) != len(all)-2 {
		t.Fatalf("blocking removed %d, want 2", len(all)-len(rest))
	}
	for _, s := range rest {
		if blocked[Key(s.Assign)] {
			t.Fatal("blocked assignment returned")
		}
	}
}

func TestMinimizeLatency(t *testing.T) {
	p := simpleProblem()
	best, ok := MinimizeLatency(p, Constraints{})
	if !ok {
		t.Fatal("no solution")
	}
	// Exhaustive check.
	for _, s := range collectAll(t, p, Constraints{}) {
		if s.TMax < best.TMax {
			t.Fatalf("found better TMax %v < %v (%v)", s.TMax, best.TMax, s.Assign)
		}
	}
	// Known optimum: stage0 on c0 (1), stages 1-2 on c1 (2) → TMax 2.
	if best.TMax != 2 {
		t.Errorf("best TMax = %v, want 2", best.TMax)
	}
}

func TestMinimizeGapness(t *testing.T) {
	p := simpleProblem()
	best, ok := MinimizeGapness(p, Constraints{})
	if !ok {
		t.Fatal("no solution")
	}
	for _, s := range collectAll(t, p, Constraints{}) {
		if s.Gap() < best.Gap() {
			t.Fatalf("found better gap %v < %v (%v)", s.Gap(), best.Gap(), s.Assign)
		}
	}
	// Single-chunk schedules have gap 0, so the optimum is 0.
	if best.Gap() != 0 {
		t.Errorf("gap = %v, want 0", best.Gap())
	}
}

func TestMinimizeGapnessPreferredOverLatencyTies(t *testing.T) {
	// Among equal-gap solutions the solver prefers lower TMax.
	p := &Problem{N: 2, M: 2, Time: [][]float64{
		{5, 1},
		{5, 1},
	}}
	best, ok := MinimizeGapness(p, Constraints{})
	if !ok {
		t.Fatal("no solution")
	}
	if best.Gap() != 0 || best.TMax != 2 {
		t.Errorf("best = gap %v TMax %v, want 0 / 2 (all on fast class)", best.Gap(), best.TMax)
	}
}

func TestTopKByLatency(t *testing.T) {
	p := simpleProblem()
	all := collectAll(t, p, Constraints{})
	for k := 1; k <= len(all)+2; k++ {
		top := TopKByLatency(p, Constraints{}, k)
		wantLen := k
		if wantLen > len(all) {
			wantLen = len(all)
		}
		if len(top) != wantLen {
			t.Fatalf("k=%d: got %d", k, len(top))
		}
		for i := 1; i < len(top); i++ {
			if top[i].TMax < top[i-1].TMax {
				t.Fatalf("k=%d: not ascending", k)
			}
		}
		// Optimality: the k-th TMax must not exceed any excluded one.
		if len(top) == k {
			excluded := map[string]bool{}
			for _, s := range top {
				excluded[Key(s.Assign)] = true
			}
			for _, s := range all {
				if !excluded[Key(s.Assign)] && s.TMax < top[len(top)-1].TMax {
					t.Fatalf("k=%d: missed better solution %v (%v < %v)",
						k, s.Assign, s.TMax, top[len(top)-1].TMax)
				}
			}
		}
	}
	if TopKByLatency(p, Constraints{}, 0) != nil {
		t.Error("k=0 should be nil")
	}
}

func TestTopKDeterministic(t *testing.T) {
	p := &Problem{N: 9, M: 4, Time: make([][]float64, 9)}
	rng := rand.New(rand.NewSource(3))
	for i := range p.Time {
		p.Time[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	a := TopKByLatency(p, Constraints{}, 20)
	b := TopKByLatency(p, Constraints{}, 20)
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("lens %d %d", len(a), len(b))
	}
	for i := range a {
		if Key(a[i].Assign) != Key(b[i].Assign) {
			t.Fatal("non-deterministic ranking")
		}
	}
}

func TestValidation(t *testing.T) {
	bad := []*Problem{
		{N: 0, M: 2},
		{N: 2, M: 0},
		{N: 2, M: 31},
		{N: 2, M: 2, Time: [][]float64{{1, 2}}},
		{N: 1, M: 2, Time: [][]float64{{1}}},
		{N: 1, M: 1, Time: [][]float64{{-1}}},
		{N: 1, M: 1, Time: [][]float64{{math.NaN()}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid problem accepted", i)
		}
		if err := Enumerate(p, Constraints{}, nil, func(Solution) bool { return true }); err == nil {
			t.Errorf("case %d: Enumerate accepted invalid problem", i)
		}
	}
}

func TestKey(t *testing.T) {
	if Key([]int{1, 2, 10}) != "1,2,10" {
		t.Errorf("Key = %q", Key([]int{1, 2, 10}))
	}
	if Key(nil) != "" {
		t.Error("empty key")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	p := simpleProblem()
	count := 0
	_ = Enumerate(p, Constraints{}, nil, func(Solution) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("visited %d, want 2", count)
	}
}

// Property: for random tables, MinimizeLatency agrees with exhaustive
// search and every enumerated solution is feasible.
func TestMinimizeLatencyAgainstExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(6), 1+rng.Intn(4)
		p := &Problem{N: n, M: m, Time: make([][]float64, n)}
		for i := range p.Time {
			p.Time[i] = make([]float64, m)
			for j := range p.Time[i] {
				p.Time[i][j] = rng.Float64() * 10
			}
		}
		best, ok := MinimizeLatency(p, Constraints{})
		if !ok {
			return m == 0
		}
		exhaustiveBest := math.Inf(1)
		var sols []Solution
		_ = Enumerate(p, Constraints{}, nil, func(s Solution) bool {
			sols = append(sols, s)
			exhaustiveBest = math.Min(exhaustiveBest, s.TMax)
			return true
		})
		return math.Abs(best.TMax-exhaustiveBest) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// materializeTopK is the reference semantics TopKFiltered must match:
// enumerate every feasible solution, filter, sort by (TMax, Key),
// truncate to k — the pre-streaming implementation of sched.Candidates.
func materializeTopK(p *Problem, cons Constraints, k int, filter FilterFunc) []Solution {
	if k <= 0 {
		return nil
	}
	var pool []Solution
	_ = Enumerate(p, cons, nil, func(s Solution) bool {
		if filter == nil || filter(s) {
			pool = append(pool, s)
		}
		return true
	})
	sort.Slice(pool, func(a, b int) bool {
		if pool[a].TMax != pool[b].TMax {
			return pool[a].TMax < pool[b].TMax
		}
		return Key(pool[a].Assign) < Key(pool[b].Assign)
	})
	if len(pool) > k {
		pool = pool[:k]
	}
	return pool
}

func sameSolutions(t *testing.T, label string, got, want []Solution) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d solutions, want %d", label, len(got), len(want))
	}
	for i := range want {
		if Key(got[i].Assign) != Key(want[i].Assign) {
			t.Fatalf("%s: rank %d = %s, want %s", label, i, Key(got[i].Assign), Key(want[i].Assign))
		}
		if got[i].TMax != want[i].TMax || got[i].TMin != want[i].TMin {
			t.Fatalf("%s: rank %d TMax/TMin %v/%v, want %v/%v",
				label, i, got[i].TMax, got[i].TMin, want[i].TMax, want[i].TMin)
		}
		if len(got[i].ChunkTimes) != len(want[i].ChunkTimes) {
			t.Fatalf("%s: rank %d chunk counts differ", label, i)
		}
	}
}

// The tentpole pin: the streaming bounded-heap path must produce output
// identical to materialize-then-sort for random problems, constraints,
// pool sizes, and filters (including the BetterTogether gapness filter).
func TestTopKFilteredMatchesMaterialize(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n, m := 2+rng.Intn(7), 1+rng.Intn(4)
		p := &Problem{N: n, M: m, Time: make([][]float64, n)}
		for i := range p.Time {
			p.Time[i] = make([]float64, m)
			for j := range p.Time[i] {
				p.Time[i][j] = rng.Float64() * 10
			}
		}
		var cons Constraints
		if trial%3 == 1 {
			cons.ChunkMax = 5 + rng.Float64()*20
		}
		if trial%4 == 2 {
			cons.ChunkMin = rng.Float64() * 2
		}
		// The gapness filter at a random slack, as sched.Candidates uses;
		// every third trial runs unfiltered.
		gapBest, ok := MinimizeGapness(p, cons)
		var filter FilterFunc
		if ok && trial%3 != 0 {
			slack := rng.Float64()
			cut := gapBest.Gap() + 1e-15
			filter = func(s Solution) bool {
				return s.Gap() <= cut || s.Gap() <= slack*s.TMax
			}
		}
		for _, k := range []int{1, 2, 5, 20, 1 << 20} {
			got := TopKFiltered(p, cons, k, filter)
			want := materializeTopK(p, cons, k, filter)
			sameSolutions(t, fmt.Sprintf("trial %d k=%d", trial, k), got, want)
		}
	}
}

func TestTopKFilteredRejectAll(t *testing.T) {
	p := simpleProblem()
	if got := TopKFiltered(p, Constraints{}, 5, func(Solution) bool { return false }); got != nil {
		t.Fatalf("reject-all filter returned %d solutions", len(got))
	}
	if got := TopKFiltered(p, Constraints{}, 0, nil); got != nil {
		t.Fatal("k=0 should be nil")
	}
}

// ChunkMin/ChunkMax must interact correctly with the gapness incumbent
// prune: the pruned branch-and-bound optimum equals the optimum of the
// exhaustively enumerated constrained space.
func TestMinimizeGapnessUnderChunkBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n, m := 2+rng.Intn(6), 1+rng.Intn(4)
		p := &Problem{N: n, M: m, Time: make([][]float64, n)}
		for i := range p.Time {
			p.Time[i] = make([]float64, m)
			for j := range p.Time[i] {
				p.Time[i][j] = rng.Float64() * 10
			}
		}
		cons := Constraints{ChunkMax: 4 + rng.Float64()*16, ChunkMin: rng.Float64() * 3}
		best, ok := MinimizeGapness(p, cons)
		exhaustive := math.Inf(1)
		count := 0
		_ = Enumerate(p, cons, nil, func(s Solution) bool {
			count++
			exhaustive = math.Min(exhaustive, s.Gap())
			// Feasibility double-check under both bounds.
			for _, ct := range s.ChunkTimes {
				if ct > cons.ChunkMax+1e-12 || ct < cons.ChunkMin-1e-12 {
					t.Fatalf("trial %d: chunk %v outside [%v, %v]", trial, ct, cons.ChunkMin, cons.ChunkMax)
				}
			}
			return true
		})
		if !ok {
			if count != 0 {
				t.Fatalf("trial %d: solver says infeasible but %d solutions exist", trial, count)
			}
			continue
		}
		if math.Abs(best.Gap()-exhaustive) > 1e-12 {
			t.Fatalf("trial %d: pruned gap %v != exhaustive %v", trial, best.Gap(), exhaustive)
		}
	}
}

// Blocked keys must be excluded from TopKByLatency and the remaining
// ranking must equal the reference ranking of the unblocked space.
func TestTopKByLatencyExcludesBlocked(t *testing.T) {
	p := &Problem{N: 5, M: 3, Time: make([][]float64, 5)}
	rng := rand.New(rand.NewSource(11))
	for i := range p.Time {
		p.Time[i] = []float64{rng.Float64() * 5, rng.Float64() * 5, rng.Float64() * 5}
	}
	full := TopKByLatency(p, Constraints{}, 6)
	if len(full) < 4 {
		t.Fatalf("space too small: %d", len(full))
	}
	// Block the top two: the ranking must shift up by exactly two.
	blocked := map[string]bool{Key(full[0].Assign): true, Key(full[1].Assign): true}
	cons := Constraints{Blocked: blocked}
	rest := TopKByLatency(p, cons, 4)
	sameSolutions(t, "blocked", rest, materializeTopK(p, cons, 4, nil))
	for _, s := range rest {
		if blocked[Key(s.Assign)] {
			t.Fatalf("blocked assignment %s returned", Key(s.Assign))
		}
	}
	if Key(rest[0].Assign) != Key(full[2].Assign) {
		t.Errorf("blocking the top two did not promote rank 3: got %s, want %s",
			Key(rest[0].Assign), Key(full[2].Assign))
	}
}

// ChunkMin interacts subtly with the latency prune: a partial branch may
// look good but be un-closeable under ChunkMin. The bounded search must
// agree with exhaustive enumeration anyway.
func TestTopKFilteredChunkMinGapnessInteraction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(5), 1+rng.Intn(4)
		p := &Problem{N: n, M: m, Time: make([][]float64, n)}
		for i := range p.Time {
			p.Time[i] = make([]float64, m)
			for j := range p.Time[i] {
				p.Time[i][j] = rng.Float64() * 10
			}
		}
		cons := Constraints{ChunkMin: rng.Float64() * 4}
		slack := rng.Float64() * 0.8
		filter := func(s Solution) bool { return s.Gap() <= slack*s.TMax }
		got := TopKFiltered(p, cons, 10, filter)
		want := materializeTopK(p, cons, 10, filter)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if Key(got[i].Assign) != Key(want[i].Assign) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTopK20Paper(b *testing.B) {
	// The paper's Pixel case: N=9 stages, M=4 classes. Must stay far
	// under the paper's 50 ms z3 budget.
	rng := rand.New(rand.NewSource(1))
	p := &Problem{N: 9, M: 4, Time: make([][]float64, 9)}
	for i := range p.Time {
		p.Time[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopKByLatency(p, Constraints{}, 20)
	}
}
