package solver

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomProblem draws a well-formed instance with latencies in (0.1, 1.1).
func randomProblem(rng *rand.Rand) *Problem {
	n := 3 + rng.Intn(5)
	m := 2 + rng.Intn(3)
	p := &Problem{N: n, M: m, Time: make([][]float64, n)}
	for i := range p.Time {
		p.Time[i] = make([]float64, m)
		for j := range p.Time[i] {
			p.Time[i][j] = 0.1 + rng.Float64()
		}
	}
	return p
}

// solutionsEqual compares two result sets including chunk metrics.
func solutionsEqual(a, b []Solution) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Assign, b[i].Assign) ||
			!reflect.DeepEqual(a[i].ChunkTimes, b[i].ChunkTimes) ||
			a[i].TMax != b[i].TMax || a[i].TMin != b[i].TMin {
			return false
		}
	}
	return true
}

// TestEvaluateMatchesEnumerate pins Evaluate's contract: for every
// assignment the enumeration visits, Evaluate reproduces the identical
// Solution; that identity is what makes seeds safe to offer to the
// incumbent heap.
func TestEvaluateMatchesEnumerate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(rng)
		cons := Constraints{}
		if trial%3 == 1 {
			cons.ChunkMax = 1.5
		}
		if trial%3 == 2 {
			cons.ChunkMin = 0.2
		}
		if err := Enumerate(p, cons, nil, func(s Solution) bool {
			got, ok := Evaluate(p, cons, s.Assign)
			if !ok {
				t.Fatalf("Evaluate rejected enumerated assignment %v", s.Assign)
			}
			if !solutionsEqual([]Solution{got}, []Solution{s}) {
				t.Fatalf("Evaluate(%v) = %+v, Enumerate visited %+v", s.Assign, got, s)
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEvaluateRejectsInvalid(t *testing.T) {
	p := &Problem{N: 4, M: 3, Time: [][]float64{
		{1, 2, 3}, {2, 1, 3}, {3, 2, 1}, {1, 1, 1},
	}}
	cases := []struct {
		name   string
		cons   Constraints
		assign []int
	}{
		{"wrong-length", Constraints{}, []int{0, 1}},
		{"class-out-of-range", Constraints{}, []int{0, 3, 0, 0}},
		{"negative-class", Constraints{}, []int{0, -1, 0, 0}},
		{"c2-reopened", Constraints{}, []int{0, 1, 0, 0}},
		{"c3a-chunk-too-long", Constraints{ChunkMax: 2.5}, []int{0, 0, 0, 0}},
		{"c3b-chunk-too-short", Constraints{ChunkMin: 1.5}, []int{0, 0, 0, 2}},
		{"blocked", Constraints{Blocked: map[string]bool{"0,0,0,0": true}}, []int{0, 0, 0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, ok := Evaluate(p, tc.cons, tc.assign); ok {
				t.Fatalf("Evaluate accepted %v under %+v", tc.assign, tc.cons)
			}
		})
	}
	if _, ok := Evaluate(p, Constraints{}, []int{0, 0, 0, 1}); !ok {
		t.Fatal("Evaluate rejected a feasible assignment")
	}
}

// TestSeedingNeverChangesResults is the warm-start equivalence property
// the schedule cache's miss path leans on: for random problems, random k
// and ANY seed set — feasible assignments, infeasible garbage, or
// duplicates — the seeded query returns byte-identical results to the
// unseeded one. Only the search effort may differ.
func TestSeedingNeverChangesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gapFilter := func(s Solution) bool { return s.Gap() <= 0.6*s.TMax }
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(rng)
		k := 1 + rng.Intn(8)
		var filter FilterFunc
		if trial%2 == 1 {
			filter = gapFilter
		}

		// Collect the feasible pool once to draw realistic seeds from.
		var pool [][]int
		_ = Enumerate(p, Constraints{}, nil, func(s Solution) bool {
			pool = append(pool, s.Assign)
			return true
		})
		var seeds [][]int
		for s := 0; s < rng.Intn(4); s++ {
			seeds = append(seeds, pool[rng.Intn(len(pool))])
		}
		// Adversarial seeds: garbage length, out-of-range class, C2
		// violation, and a duplicate of the first seed.
		seeds = append(seeds, []int{0}, []int{p.M, 0, 0}, nil)
		if len(seeds) > 3 {
			seeds = append(seeds, seeds[0])
		}

		want := TopKFiltered(p, Constraints{}, k, filter)
		var stats SearchStats
		got := TopKFilteredSeeded(p, Constraints{}, k, filter, seeds, &stats)
		if !solutionsEqual(want, got) {
			t.Fatalf("trial %d: seeded result diverged\nseeds: %v\nwant: %+v\ngot:  %+v",
				trial, seeds, want, got)
		}
	}
}

// TestSeedingOnlyImprovesPruning pins the point of warm-starting: with
// the eventual winner as seed, the enumeration visits no more complete
// solutions than the cold query (the incumbent bound bites earlier), and
// the seed is counted.
func TestSeedingOnlyImprovesPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(rng)
		k := 1 + rng.Intn(4)
		var cold SearchStats
		want := TopKFilteredSeeded(p, Constraints{}, k, nil, nil, &cold)
		if len(want) == 0 {
			t.Fatal("no feasible solutions for a well-formed problem")
		}
		var warm SearchStats
		got := TopKFilteredSeeded(p, Constraints{}, k, nil, [][]int{want[0].Assign}, &warm)
		if !solutionsEqual(want, got) {
			t.Fatalf("trial %d: warm result diverged", trial)
		}
		if warm.Seeded != 1 {
			t.Fatalf("trial %d: Seeded = %d, want 1", trial, warm.Seeded)
		}
		if warm.Visited > cold.Visited {
			t.Fatalf("trial %d: warm Visited %d > cold Visited %d — seeding made the search slower",
				trial, warm.Visited, cold.Visited)
		}
	}
}

// TestSeededStatsReset pins that a reused stats struct is reset per call.
func TestSeededStatsReset(t *testing.T) {
	p := simpleProblem()
	stats := SearchStats{Seeded: 99, Visited: 99, Pruned: 99}
	_ = TopKFilteredSeeded(p, Constraints{}, 2, nil, nil, &stats)
	if stats.Seeded != 0 || stats.Visited == 99 || stats.Visited == 0 {
		t.Fatalf("stats not reset/refilled: %+v", stats)
	}
}

// TestTopKFilteredDelegates pins that the unseeded entry point is the
// seeded one with no seeds — one search implementation, not two.
func TestTopKFilteredDelegates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(rng)
		if !solutionsEqual(TopKFiltered(p, Constraints{}, 5, nil),
			TopKFilteredSeeded(p, Constraints{}, 5, nil, nil, nil)) {
			t.Fatal("TopKFiltered and TopKFilteredSeeded(nil seeds) diverge")
		}
	}
}

// TestSeededRespectsBlockedAndBounds checks seeds interact correctly with
// the constraint system: a blocked seed is ignored, and seeded queries
// under chunk bounds still match their unseeded twins.
func TestSeededRespectsBlockedAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(rng)
		all := TopKFiltered(p, Constraints{}, 3, nil)
		if len(all) == 0 {
			continue
		}
		cons := Constraints{
			ChunkMax: all[0].TMax * 1.5,
			Blocked:  map[string]bool{Key(all[0].Assign): true},
		}
		want := TopKFiltered(p, cons, 3, nil)
		var stats SearchStats
		got := TopKFilteredSeeded(p, cons, 3, nil, [][]int{all[0].Assign}, &stats)
		if !solutionsEqual(want, got) {
			t.Fatalf("trial %d: blocked-seed query diverged", trial)
		}
		for _, s := range got {
			if cons.Blocked[Key(s.Assign)] {
				t.Fatalf("trial %d: blocked assignment %v returned", trial, s.Assign)
			}
		}
	}
}

func TestTopKFilteredSeededZeroK(t *testing.T) {
	p := simpleProblem()
	if got := TopKFilteredSeeded(p, Constraints{}, 0, nil, [][]int{{0, 0, 0}}, nil); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}
