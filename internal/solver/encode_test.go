package solver

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// collectSAT gathers all SAT-path solutions.
func collectSAT(t *testing.T, p *Problem, cons Constraints) []Solution {
	t.Helper()
	var out []Solution
	if err := EnumerateSAT(p, cons, func(s Solution) bool {
		out = append(out, s)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func keySet(sols []Solution) map[string]bool {
	m := make(map[string]bool, len(sols))
	for _, s := range sols {
		m[Key(s.Assign)] = true
	}
	return m
}

// TestSATMatchesBranchAndBoundEnumeration is the cross-validation core:
// both engines must produce exactly the same feasible set on random
// instances, with identical metrics per assignment.
func TestSATMatchesBranchAndBoundEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(4), 1+rng.Intn(3)
		p := &Problem{N: n, M: m, Time: make([][]float64, n)}
		for i := range p.Time {
			p.Time[i] = make([]float64, m)
			for j := range p.Time[i] {
				p.Time[i][j] = rng.Float64() * 5
			}
		}
		var cons Constraints
		if rng.Intn(2) == 0 {
			cons.ChunkMax = 2 + rng.Float64()*8
		}
		bb := collectAll(t, p, cons)
		st := collectSAT(t, p, cons)
		if len(bb) != len(st) {
			return false
		}
		bbKeys, stKeys := keySet(bb), keySet(st)
		for k := range bbKeys {
			if !stKeys[k] {
				return false
			}
		}
		// Metrics agree per assignment.
		bbBy := map[string]Solution{}
		for _, s := range bb {
			bbBy[Key(s.Assign)] = s
		}
		for _, s := range st {
			o := bbBy[Key(s.Assign)]
			if math.Abs(o.TMax-s.TMax) > 1e-12 || math.Abs(o.TMin-s.TMin) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTopKSATAgreesWithBranchAndBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := &Problem{N: 7, M: 4, Time: make([][]float64, 7)}
	for i := range p.Time {
		p.Time[i] = make([]float64, 4)
		for j := range p.Time[i] {
			p.Time[i][j] = rng.Float64() * 10
		}
	}
	for _, k := range []int{1, 5, 20} {
		bb := TopKByLatency(p, Constraints{}, k)
		st := TopKByLatencySAT(p, Constraints{}, k)
		if len(bb) != len(st) {
			t.Fatalf("k=%d: lengths %d vs %d", k, len(bb), len(st))
		}
		for i := range bb {
			if Key(bb[i].Assign) != Key(st[i].Assign) {
				t.Fatalf("k=%d rank %d: %v vs %v", k, i, bb[i].Assign, st[i].Assign)
			}
		}
	}
	if TopKByLatencySAT(p, Constraints{}, 0) != nil {
		t.Error("k=0 should be nil")
	}
}

func TestMinimizeGapnessSATAgrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(4), 1+rng.Intn(3)
		p := &Problem{N: n, M: m, Time: make([][]float64, n)}
		for i := range p.Time {
			p.Time[i] = make([]float64, m)
			for j := range p.Time[i] {
				p.Time[i][j] = rng.Float64() * 5
			}
		}
		bb, okBB := MinimizeGapness(p, Constraints{})
		st, okST := MinimizeGapnessSAT(p, Constraints{})
		if okBB != okST {
			return false
		}
		if !okBB {
			return true
		}
		// Optimal gap values must agree (the argmin may differ on ties).
		return math.Abs(bb.Gap()-st.Gap()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSATBlockingConstraint(t *testing.T) {
	p := simpleProblem()
	all := collectSAT(t, p, Constraints{})
	// Block the two lowest-TMax solutions and re-enumerate.
	sort.Slice(all, func(a, b int) bool { return all[a].TMax < all[b].TMax })
	blocked := map[string]bool{Key(all[0].Assign): true, Key(all[1].Assign): true}
	rest := collectSAT(t, p, Constraints{Blocked: blocked})
	if len(rest) != len(all)-2 {
		t.Fatalf("blocking removed %d, want 2", len(all)-len(rest))
	}
	for _, s := range rest {
		if blocked[Key(s.Assign)] {
			t.Fatal("blocked assignment returned")
		}
	}
}

func TestSATInvalidProblem(t *testing.T) {
	bad := &Problem{N: 0, M: 1}
	if err := EnumerateSAT(bad, Constraints{}, func(Solution) bool { return true }); err == nil {
		t.Error("invalid problem accepted")
	}
}

func BenchmarkSATTopK20Paper(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := &Problem{N: 9, M: 4, Time: make([][]float64, 9)}
	for i := range p.Time {
		p.Time[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopKByLatencySAT(p, Constraints{}, 20)
	}
}
