// Package sparse provides the Compressed Sparse Row substrate for the
// AlexNet-sparse workload (paper Sec. 4.1). The paper prunes AlexNet's
// convolutional layers with Condensa and stores the weight tensors in CSR;
// we reproduce that with deterministic structured pruning of synthetic
// weights. The resulting irregular, indirection-heavy inner loops are what
// make the sparse variant scheduling-interesting: they favor out-of-order
// CPU cores over lockstep GPU lanes.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a compressed-sparse-row float32 matrix.
//
// Row i's nonzeros are Val[RowPtr[i]:RowPtr[i+1]] in columns
// Col[RowPtr[i]:RowPtr[i+1]], with column indices strictly increasing
// within a row.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32
	Col        []int32
	Val        []float32
}

// NewCSR builds an empty matrix with the given shape.
func NewCSR(rows, cols int) *CSR {
	return &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// Density returns NNZ / (Rows*Cols).
func (m *CSR) Density() float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.Rows) * float64(m.Cols))
}

// Validate checks the CSR structural invariants: monotone row pointers,
// in-bounds and strictly increasing column indices per row.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	if int(m.RowPtr[m.Rows]) != len(m.Val) || len(m.Val) != len(m.Col) {
		return fmt.Errorf("sparse: inconsistent nnz: rowptr %d, val %d, col %d",
			m.RowPtr[m.Rows], len(m.Val), len(m.Col))
	}
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		if lo > hi {
			return fmt.Errorf("sparse: row %d has negative extent", i)
		}
		prev := int32(-1)
		for p := lo; p < hi; p++ {
			c := m.Col[p]
			if c < 0 || int(c) >= m.Cols {
				return fmt.Errorf("sparse: row %d column %d out of range", i, c)
			}
			if c <= prev {
				return fmt.Errorf("sparse: row %d columns not strictly increasing", i)
			}
			prev = c
		}
	}
	return nil
}

// FromDense converts a row-major dense matrix to CSR, dropping exact
// zeros.
func FromDense(dense []float32, rows, cols int) *CSR {
	if len(dense) != rows*cols {
		panic(fmt.Sprintf("sparse: dense size %d != %d*%d", len(dense), rows, cols))
	}
	m := NewCSR(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if v := dense[i*cols+j]; v != 0 {
				m.Col = append(m.Col, int32(j))
				m.Val = append(m.Val, v)
			}
		}
		m.RowPtr[i+1] = int32(len(m.Val))
	}
	return m
}

// ToDense expands the matrix to a row-major dense slice.
func (m *CSR) ToDense() []float32 {
	out := make([]float32, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out[i*m.Cols+int(m.Col[p])] = m.Val[p]
		}
	}
	return out
}

// At returns element (i, j) via binary search over row i's columns.
func (m *CSR) At(i, j int) float32 {
	lo, hi := int(m.RowPtr[i]), int(m.RowPtr[i+1])
	seg := m.Col[lo:hi]
	k := sort.Search(len(seg), func(x int) bool { return seg[x] >= int32(j) })
	if k < len(seg) && seg[k] == int32(j) {
		return m.Val[lo+k]
	}
	return 0
}

// SpMV computes dst = m × x for a dense vector x of length Cols.
func (m *CSR) SpMV(dst, x []float32) {
	m.SpMVRange(dst, x, 0, m.Rows)
}

// SpMVRange computes rows [rLo, rHi) of dst = m × x. The row split is the
// unit of parallelism for worker pools; rows have uneven nonzero counts,
// which is exactly the load imbalance that hurts lockstep GPU execution.
func (m *CSR) SpMVRange(dst, x []float32, rLo, rHi int) {
	for i := rLo; i < rHi; i++ {
		var acc float32
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			acc += m.Val[p] * x[m.Col[p]]
		}
		dst[i] = acc
	}
}

// SpMM computes C = m × B where B is dense k×n row-major (k = m.Cols) and
// C is dense Rows×n row-major. This is the sparse-weights × im2col-columns
// product that implements sparse convolution.
func (m *CSR) SpMM(c, b []float32, n int) {
	m.SpMMRange(c, b, n, 0, m.Rows)
}

// SpMMRange computes output rows [rLo, rHi) of C = m × B.
func (m *CSR) SpMMRange(c, b []float32, n int, rLo, rHi int) {
	for i := rLo; i < rHi; i++ {
		ci := c[i*n : (i+1)*n]
		for x := range ci {
			ci[x] = 0
		}
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			v := m.Val[p]
			brow := b[int(m.Col[p])*n : (int(m.Col[p])+1)*n]
			for j := 0; j < n; j++ {
				ci[j] += v * brow[j]
			}
		}
	}
}

// RowNNZ returns the nonzero count of row i.
func (m *CSR) RowNNZ(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// Imbalance returns max-row-nnz / mean-row-nnz, a measure of the load
// imbalance a lockstep execution of one row per lane would suffer.
func (m *CSR) Imbalance() float64 {
	if m.Rows == 0 || m.NNZ() == 0 {
		return 1
	}
	maxN := 0
	for i := 0; i < m.Rows; i++ {
		if n := m.RowNNZ(i); n > maxN {
			maxN = n
		}
	}
	mean := float64(m.NNZ()) / float64(m.Rows)
	return float64(maxN) / mean
}

// Prune returns a copy of dense with the smallest-magnitude fraction
// `sparsity` of each row's weights zeroed (per-row magnitude pruning —
// the "structured" pruning shape Condensa applies to conv layers, which
// keeps rows non-empty and bounds imbalance). sparsity must be in [0, 1).
func Prune(dense []float32, rows, cols int, sparsity float64) []float32 {
	if sparsity < 0 || sparsity >= 1 {
		panic(fmt.Sprintf("sparse: sparsity %v out of [0,1)", sparsity))
	}
	out := make([]float32, len(dense))
	copy(out, dense)
	drop := int(math.Floor(sparsity * float64(cols)))
	if drop == 0 {
		return out
	}
	idx := make([]int, cols)
	for i := 0; i < rows; i++ {
		row := out[i*cols : (i+1)*cols]
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool {
			va := math.Abs(float64(row[idx[a]]))
			vb := math.Abs(float64(row[idx[b]]))
			if va != vb {
				return va < vb
			}
			return idx[a] < idx[b]
		})
		for _, j := range idx[:drop] {
			row[j] = 0
		}
	}
	return out
}
