package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomDense(rng *rand.Rand, rows, cols int, density float64) []float32 {
	d := make([]float32, rows*cols)
	for i := range d {
		if rng.Float64() < density {
			d[i] = rng.Float32()*2 - 1
		}
	}
	return d
}

func TestFromDenseToDenseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		dense := randomDense(rng, rows, cols, 0.4)
		m := FromDense(dense, rows, cols)
		if err := m.Validate(); err != nil {
			return false
		}
		back := m.ToDense()
		for i := range dense {
			if dense[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFromDensePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FromDense([]float32{1, 2, 3}, 2, 2)
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := FromDense([]float32{1, 0, 0, 2}, 2, 2)
	if err := m.Validate(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	cases := []func(*CSR){
		func(m *CSR) { m.RowPtr[0] = 1 },                  // bad origin
		func(m *CSR) { m.RowPtr[2] = 99 },                 // nnz mismatch
		func(m *CSR) { m.Col[0] = -1 },                    // column underflow
		func(m *CSR) { m.Col[0] = int32(m.Cols) },         // column overflow
		func(m *CSR) { m.RowPtr[1] = 2; m.RowPtr[2] = 1 }, // negative extent
	}
	for i, corrupt := range cases {
		c := FromDense([]float32{1, 3, 0, 2}, 2, 2)
		corrupt(c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: corruption not detected", i)
		}
	}
	// Non-increasing columns within a row.
	dup := FromDense([]float32{1, 3, 0, 2}, 2, 2)
	dup.Col[1] = dup.Col[0]
	if err := dup.Validate(); err == nil {
		t.Error("duplicate column not detected")
	}
}

func TestAt(t *testing.T) {
	dense := []float32{0, 5, 0, 7, 0, 9}
	m := FromDense(dense, 2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if got, want := m.At(i, j), dense[i*3+j]; got != want {
				t.Errorf("At(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestSpMVMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		dense := randomDense(rng, rows, cols, 0.3)
		x := make([]float32, cols)
		for i := range x {
			x[i] = rng.Float32()
		}
		m := FromDense(dense, rows, cols)
		got := make([]float32, rows)
		m.SpMV(got, x)
		for i := 0; i < rows; i++ {
			var want float32
			for j := 0; j < cols; j++ {
				want += dense[i*cols+j] * x[j]
			}
			if math.Abs(float64(got[i]-want)) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSpMVRangePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const rows, cols = 17, 13
	dense := randomDense(rng, rows, cols, 0.3)
	x := make([]float32, cols)
	for i := range x {
		x[i] = rng.Float32()
	}
	m := FromDense(dense, rows, cols)
	full := make([]float32, rows)
	m.SpMV(full, x)
	split := make([]float32, rows)
	m.SpMVRange(split, x, 0, 6)
	m.SpMVRange(split, x, 6, 17)
	for i := range full {
		if full[i] != split[i] {
			t.Fatalf("partitioned SpMV differs at row %d", i)
		}
	}
}

func TestSpMMMatchesDenseGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const rows, k, n = 8, 10, 6
	denseA := randomDense(rng, rows, k, 0.4)
	b := make([]float32, k*n)
	for i := range b {
		b[i] = rng.Float32()
	}
	m := FromDense(denseA, rows, k)
	got := make([]float32, rows*n)
	m.SpMM(got, b, n)
	for i := 0; i < rows; i++ {
		for j := 0; j < n; j++ {
			var want float32
			for p := 0; p < k; p++ {
				want += denseA[i*k+p] * b[p*n+j]
			}
			if math.Abs(float64(got[i*n+j]-want)) > 1e-4 {
				t.Fatalf("SpMM(%d,%d) = %v, want %v", i, j, got[i*n+j], want)
			}
		}
	}
}

func TestSpMMRangeOverwrites(t *testing.T) {
	// SpMMRange must overwrite its band of C, not accumulate.
	m := FromDense([]float32{2}, 1, 1)
	b := []float32{3}
	c := []float32{100}
	m.SpMMRange(c, b, 1, 0, 1)
	if c[0] != 6 {
		t.Errorf("SpMM did not overwrite: %v", c[0])
	}
}

func TestPruneSparsityLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const rows, cols = 12, 40
	dense := make([]float32, rows*cols)
	for i := range dense {
		dense[i] = rng.Float32() + 0.01 // all nonzero
	}
	pruned := Prune(dense, rows, cols, 0.8)
	m := FromDense(pruned, rows, cols)
	// Per-row pruning drops floor(0.8*40)=32 of 40 → density 0.2 exactly.
	if d := m.Density(); math.Abs(d-0.2) > 1e-9 {
		t.Errorf("density after 80%% pruning = %v, want 0.2", d)
	}
	for i := 0; i < rows; i++ {
		if m.RowNNZ(i) != 8 {
			t.Errorf("row %d nnz = %d, want 8 (structured pruning keeps rows balanced)", i, m.RowNNZ(i))
		}
	}
}

func TestPruneKeepsLargestMagnitudes(t *testing.T) {
	dense := []float32{0.1, -5, 0.2, 4} // one row
	pruned := Prune(dense, 1, 4, 0.5)   // drop 2 smallest |w|
	want := []float32{0, -5, 0, 4}
	for i := range want {
		if pruned[i] != want[i] {
			t.Fatalf("Prune = %v, want %v", pruned, want)
		}
	}
}

func TestPruneZeroSparsityIsIdentity(t *testing.T) {
	dense := []float32{1, 2, 3, 4}
	out := Prune(dense, 2, 2, 0)
	for i := range dense {
		if out[i] != dense[i] {
			t.Fatal("zero sparsity must not change weights")
		}
	}
	// And must not alias the input.
	out[0] = 99
	if dense[0] == 99 {
		t.Fatal("Prune must copy")
	}
}

func TestPrunePanicsOnBadSparsity(t *testing.T) {
	for _, s := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("sparsity %v should panic", s)
				}
			}()
			Prune([]float32{1}, 1, 1, s)
		}()
	}
}

func TestImbalance(t *testing.T) {
	// Row 0 has 3 nnz, row 1 has 1 → mean 2, max 3 → imbalance 1.5.
	m := FromDense([]float32{1, 2, 3, 0, 0, 4}, 2, 3)
	if got := m.Imbalance(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Imbalance = %v, want 1.5", got)
	}
	empty := NewCSR(3, 3)
	if empty.Imbalance() != 1 {
		t.Error("empty matrix imbalance should be 1")
	}
}

func TestDensityEdgeCases(t *testing.T) {
	if NewCSR(0, 0).Density() != 0 {
		t.Error("0x0 density should be 0")
	}
	m := FromDense([]float32{1, 0, 0, 0}, 2, 2)
	if m.Density() != 0.25 {
		t.Errorf("density = %v, want 0.25", m.Density())
	}
}

func BenchmarkSpMV(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const rows, cols = 256, 1024
	dense := randomDense(rng, rows, cols, 0.2)
	m := FromDense(dense, rows, cols)
	x := make([]float32, cols)
	for i := range x {
		x[i] = rng.Float32()
	}
	dst := make([]float32, rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SpMV(dst, x)
	}
}
