// Package metrics provides the runtime instrumentation layer of the
// BT-Implementer: per-stage dispatch counters and service-time
// histograms, per-queue occupancy and wait/stall tracking, and per-pool
// utilization. One Pipeline collector serves both execution engines —
// the Real engine records wall-clock durations from its dispatcher
// goroutines, the Sim engine records virtual-time durations from the
// discrete-event loop — so a metrics table reads identically whichever
// engine produced it.
//
// Every recording method is lock-free, allocation-free, and safe for
// concurrent use; attaching a collector must not perturb the run it
// observes (the Sim engine's determinism is a hard requirement).
package metrics

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Recorder is the engine-facing recording surface. Both engines drive a
// collector exclusively through these methods; *Pipeline implements it.
// All methods must be safe for concurrent use and allocation-free.
type Recorder interface {
	// StageDone records one completed stage execution and its service time.
	StageDone(stage int, service time.Duration)
	// QueueWait records how long a consumer waited for an element on edge.
	QueueWait(edge int, wait time.Duration)
	// QueueStall records how long a producer waited for space on edge
	// (backpressure from the downstream chunk).
	QueueStall(edge int, stall time.Duration)
	// QueueDepth records an occupancy observation for edge.
	QueueDepth(edge int, depth int)
}

// StageStats accumulates one pipeline stage's execution metrics.
type StageStats struct {
	// Name is the stage name; Chunk and PU locate it in the schedule.
	Name  string
	Chunk int
	PU    string

	dispatches atomic.Uint64
	service    Histogram
}

// Dispatches returns how many times the stage executed.
func (s *StageStats) Dispatches() uint64 { return s.dispatches.Load() }

// Service returns the stage's service-time histogram.
func (s *StageStats) Service() *Histogram { return &s.service }

// QueueStats accumulates one SPSC edge's metrics. Wait is consumer-side
// starvation (the downstream dispatcher had nothing to do); Stall is
// producer-side backpressure (the upstream dispatcher could not hand off
// — the signature of a slow consumer chunk).
type QueueStats struct {
	// Label names the edge, e.g. "chunk 0 → 1".
	Label string
	// Cap is the edge capacity.
	Cap int

	pushes   atomic.Uint64
	pops     atomic.Uint64
	maxDepth atomic.Int64
	wait     Histogram
	stall    Histogram
}

// Pushes and Pops return the edge's transfer counters.
func (q *QueueStats) Pushes() uint64 { return q.pushes.Load() }

// Pops returns how many elements were consumed from the edge.
func (q *QueueStats) Pops() uint64 { return q.pops.Load() }

// MaxDepth returns the highest observed occupancy.
func (q *QueueStats) MaxDepth() int { return int(q.maxDepth.Load()) }

// Wait returns the consumer-side wait histogram.
func (q *QueueStats) Wait() *Histogram { return &q.wait }

// Stall returns the producer-side backpressure histogram.
func (q *QueueStats) Stall() *Histogram { return &q.stall }

// PoolStats accumulates one worker pool's utilization.
type PoolStats struct {
	// PU names the pool's processing-unit class; Width is its lane count.
	PU    string
	Width int

	busy   atomic.Int64 // currently executing workers
	busyNs atomic.Int64 // integrated worker-busy time
}

// WorkerStart marks one worker lane busy.
func (p *PoolStats) WorkerStart() { p.busy.Add(1) }

// WorkerDone marks the lane idle again and integrates its busy time.
func (p *PoolStats) WorkerDone(d time.Duration) {
	p.busy.Add(-1)
	if d > 0 {
		p.busyNs.Add(int64(d))
	}
}

// AddBusy integrates busy lane-time directly (the Sim engine's path,
// which knows busy intervals analytically).
func (p *PoolStats) AddBusy(d time.Duration) {
	if d > 0 {
		p.busyNs.Add(int64(d))
	}
}

// Busy returns the number of currently executing workers.
func (p *PoolStats) Busy() int { return int(p.busy.Load()) }

// BusyTime returns the integrated per-lane busy time.
func (p *PoolStats) BusyTime() time.Duration { return time.Duration(p.busyNs.Load()) }

// Utilization returns busy lane-seconds divided by elapsed×width — the
// fraction of the pool's capacity the run actually used.
func (p *PoolStats) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 || p.Width <= 0 {
		return 0
	}
	return float64(p.busyNs.Load()) / (float64(elapsed) * float64(p.Width))
}

// Pipeline is one execution run's metrics collector. Construct with New,
// hand it to the engine via pipeline.Options.Metrics, and render with
// Table after the run. The accessors (Stage, Queue, Pool) return stable
// pointers, so hot paths can cache them and record without indirection.
type Pipeline struct {
	stages []StageStats
	queues []QueueStats
	pools  []PoolStats

	elapsedNs atomic.Int64
}

// New builds a collector for nStages stages, nQueues edges, and nPools
// worker pools. Labels are filled in by the engine (or by
// pipeline.NewMetrics, which sizes and labels a collector from a Plan).
func New(nStages, nQueues, nPools int) *Pipeline {
	return &Pipeline{
		stages: make([]StageStats, nStages),
		queues: make([]QueueStats, nQueues),
		pools:  make([]PoolStats, nPools),
	}
}

// NumStages, NumQueues, NumPools report the collector's shape.
func (m *Pipeline) NumStages() int { return len(m.stages) }

// NumQueues returns the number of tracked edges.
func (m *Pipeline) NumQueues() int { return len(m.queues) }

// NumPools returns the number of tracked worker pools.
func (m *Pipeline) NumPools() int { return len(m.pools) }

// Stage returns stage i's stats.
func (m *Pipeline) Stage(i int) *StageStats { return &m.stages[i] }

// Queue returns edge i's stats.
func (m *Pipeline) Queue(i int) *QueueStats { return &m.queues[i] }

// Pool returns pool i's stats.
func (m *Pipeline) Pool(i int) *PoolStats { return &m.pools[i] }

// SetElapsed records the run's total duration (wall for Real, virtual
// for Sim), the denominator for utilization figures.
func (m *Pipeline) SetElapsed(d time.Duration) { m.elapsedNs.Store(int64(d)) }

// Elapsed returns the recorded run duration.
func (m *Pipeline) Elapsed() time.Duration { return time.Duration(m.elapsedNs.Load()) }

// StageDone implements Recorder.
func (m *Pipeline) StageDone(stage int, service time.Duration) {
	s := &m.stages[stage]
	s.dispatches.Add(1)
	s.service.Observe(service)
}

// QueueWait implements Recorder.
func (m *Pipeline) QueueWait(edge int, wait time.Duration) {
	q := &m.queues[edge]
	q.pops.Add(1)
	q.wait.Observe(wait)
}

// QueueStall implements Recorder.
func (m *Pipeline) QueueStall(edge int, stall time.Duration) {
	q := &m.queues[edge]
	q.pushes.Add(1)
	q.stall.Observe(stall)
}

// QueueDepth implements Recorder.
func (m *Pipeline) QueueDepth(edge int, depth int) {
	q := &m.queues[edge]
	for {
		cur := q.maxDepth.Load()
		if int64(depth) <= cur || q.maxDepth.CompareAndSwap(cur, int64(depth)) {
			return
		}
	}
}

var _ Recorder = (*Pipeline)(nil)

// Merge folds another collector's rows into m — the runtime layer's
// per-session aggregation across execution waves, whose plans (and thus
// queue/pool shapes) may differ between waves:
//
//   - Stage rows merge by index up to the shorter collector — stage
//     indexing is application-stable across any plan of the same app.
//     Labels transfer onto unlabeled target rows; a stage re-planned
//     onto a different chunk/PU keeps the label of its latest merge, so
//     the table reflects the current placement.
//   - Queue rows merge by index only when both collectors track the same
//     number of edges (same chunking); otherwise they are skipped — edge
//     i means a different link under a different chunking.
//   - Pool rows merge only when both sides have the same pool count and
//     identical PU labels in the same order.
//   - Elapsed accumulates, so utilization stays busy-time over total
//     tracked time.
//
// Merge quiescent collectors: each counter is read atomically but the
// merge is not an atomic snapshot of other.
func (m *Pipeline) Merge(other *Pipeline) {
	if other == nil {
		return
	}
	nStages := len(m.stages)
	if len(other.stages) < nStages {
		nStages = len(other.stages)
	}
	for i := 0; i < nStages; i++ {
		dst, src := &m.stages[i], &other.stages[i]
		if src.Name != "" {
			dst.Name, dst.Chunk, dst.PU = src.Name, src.Chunk, src.PU
		}
		dst.dispatches.Add(src.dispatches.Load())
		dst.service.Merge(&src.service)
	}
	if len(m.queues) == len(other.queues) {
		for i := range m.queues {
			dst, src := &m.queues[i], &other.queues[i]
			if src.Label != "" {
				dst.Label, dst.Cap = src.Label, src.Cap
			}
			dst.pushes.Add(src.pushes.Load())
			dst.pops.Add(src.pops.Load())
			for {
				cur := dst.maxDepth.Load()
				od := src.maxDepth.Load()
				if od <= cur || dst.maxDepth.CompareAndSwap(cur, od) {
					break
				}
			}
			dst.wait.Merge(&src.wait)
			dst.stall.Merge(&src.stall)
		}
	}
	if poolsCompatible(m.pools, other.pools) {
		for i := range m.pools {
			dst, src := &m.pools[i], &other.pools[i]
			if src.Width > dst.Width {
				dst.Width = src.Width
			}
			dst.busyNs.Add(src.busyNs.Load())
		}
	}
	m.elapsedNs.Add(other.elapsedNs.Load())
}

// poolsCompatible reports whether two pool-row sets describe the same
// pools: equal length and matching PU labels in order.
func poolsCompatible(a, b []PoolStats) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].PU != b[i].PU {
			return false
		}
	}
	return len(a) > 0
}

// Table renders the collector as a fixed-width text report: a per-stage
// service table, a per-queue occupancy/backpressure table, and a per-pool
// utilization table.
func (m *Pipeline) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-8s %-16s %9s %10s %10s %10s %10s\n",
		"chk", "pu", "stage", "dispatch", "mean", "p50", "p95", "max")
	for i := range m.stages {
		s := &m.stages[i]
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("stage %d", i)
		}
		h := &s.service
		fmt.Fprintf(&b, "%-3d %-8s %-16s %9d %10s %10s %10s %10s\n",
			s.Chunk, s.PU, name, s.Dispatches(),
			fmtDur(h.Mean()), fmtDur(h.Quantile(0.5)), fmtDur(h.Quantile(0.95)), fmtDur(h.Max()))
	}
	if len(m.queues) > 0 {
		fmt.Fprintf(&b, "\n%-16s %5s %9s %9s %10s %10s\n",
			"queue", "cap", "depth", "pops", "mean wait", "mean stall")
		for i := range m.queues {
			q := &m.queues[i]
			label := q.Label
			if label == "" {
				label = fmt.Sprintf("edge %d", i)
			}
			fmt.Fprintf(&b, "%-16s %5d %9d %9d %10s %10s\n",
				label, q.Cap, q.MaxDepth(), q.Pops(),
				fmtDur(q.wait.Mean()), fmtDur(q.stall.Mean()))
		}
	}
	if len(m.pools) > 0 {
		elapsed := m.Elapsed()
		fmt.Fprintf(&b, "\n%-8s %6s %12s %12s\n", "pool", "width", "busy", "util")
		for i := range m.pools {
			p := &m.pools[i]
			fmt.Fprintf(&b, "%-8s %6d %12s %11.1f%%\n",
				p.PU, p.Width, fmtDur(p.BusyTime()), p.Utilization(elapsed)*100)
		}
		fmt.Fprintf(&b, "\nelapsed %s\n", fmtDur(elapsed))
	}
	return b.String()
}
