package metrics

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets is the fixed histogram width: one bucket per power-of-two
// nanosecond magnitude. Bucket 0 holds zero-length observations; bucket i
// holds durations d with 2^(i-1) <= d < 2^i ns. 64 buckets cover every
// representable time.Duration, so Observe never branches on range.
const numBuckets = 64

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
// Observe is allocation-free and lock-free: engines call it from
// dispatcher hot paths on every stage execution. The zero value is ready
// to use.
type Histogram struct {
	count   atomic.Uint64
	sumNs   atomic.Uint64
	maxNs   atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	var ns uint64
	if d > 0 {
		ns = uint64(d)
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
	idx := bits.Len64(ns)
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	h.buckets[idx].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Mean returns the average observation, or 0 with no observations.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Merge folds other's observations into h bucket by bucket. Each side's
// counters are read atomically, but the merge as a whole is not an
// atomic snapshot: merge quiescent histograms (after the run that filled
// other has finished), as the runtime layer does between session waves.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	h.count.Add(other.count.Load())
	h.sumNs.Add(other.sumNs.Load())
	for {
		cur := h.maxNs.Load()
		om := other.maxNs.Load()
		if om <= cur || h.maxNs.CompareAndSwap(cur, om) {
			break
		}
	}
	for i := 0; i < numBuckets; i++ {
		if n := other.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) from
// the bucket boundaries: the true value lies within a factor of two below
// the returned duration. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(n))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i == 0 {
				return 0
			}
			return time.Duration(uint64(1)<<uint(i) - 1)
		}
	}
	return h.Max()
}

// fmtDur renders a duration compactly for metric tables.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
