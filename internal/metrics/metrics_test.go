package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasic(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero-value histogram not empty")
	}
	h.Observe(1 * time.Millisecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(-5 * time.Millisecond) // clamped to 0
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 3*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	wantMean := (1*time.Millisecond + 3*time.Millisecond) / 3
	if h.Mean() != wantMean {
		t.Fatalf("mean = %v, want %v", h.Mean(), wantMean)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	// The quantile is a power-of-two upper bound: value <= bound < 2*value.
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for _, q := range []float64{0.01, 0.5, 0.95, 1} {
		b := h.Quantile(q)
		if b < 100*time.Microsecond || b >= 200*time.Microsecond {
			t.Fatalf("q=%v bound %v outside [100µs, 200µs)", q, b)
		}
	}
	// A single huge outlier must dominate only the top of the
	// distribution.
	h.Observe(10 * time.Second)
	if h.Quantile(0.5) >= 200*time.Microsecond {
		t.Error("median polluted by outlier")
	}
	if h.Quantile(1) < 10*time.Second {
		t.Errorf("p100 = %v, want >= 10s", h.Quantile(1))
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}

func TestObserveZeroAlloc(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Observe(time.Millisecond) }); n != 0 {
		t.Errorf("Observe allocates %.1f per call", n)
	}
	m := New(4, 2, 1)
	if n := testing.AllocsPerRun(1000, func() {
		m.StageDone(2, time.Microsecond)
		m.QueueWait(1, time.Microsecond)
		m.QueueStall(0, 0)
		m.QueueDepth(1, 3)
	}); n != 0 {
		t.Errorf("recording allocates %.1f per call", n)
	}
}

func TestPipelineRecording(t *testing.T) {
	m := New(3, 2, 2)
	m.Stage(0).Name, m.Stage(0).PU = "decode", "big"
	m.Queue(0).Label, m.Queue(0).Cap = "chunk 0 → 1", 4
	m.Pool(0).PU, m.Pool(0).Width = "big", 4
	m.Pool(1).PU, m.Pool(1).Width = "gpu", 8

	m.StageDone(0, 2*time.Millisecond)
	m.StageDone(0, 4*time.Millisecond)
	m.StageDone(2, 1*time.Millisecond)
	m.QueueWait(0, 10*time.Microsecond)
	m.QueueStall(0, 0)
	m.QueueDepth(0, 3)
	m.QueueDepth(0, 1) // must not lower the max
	m.Pool(0).WorkerStart()
	m.Pool(0).WorkerDone(40 * time.Millisecond)
	m.SetElapsed(100 * time.Millisecond)

	if got := m.Stage(0).Dispatches(); got != 2 {
		t.Fatalf("stage 0 dispatches = %d", got)
	}
	if got := m.Stage(1).Dispatches(); got != 0 {
		t.Fatalf("stage 1 dispatches = %d", got)
	}
	if got := m.Queue(0).MaxDepth(); got != 3 {
		t.Fatalf("max depth = %d", got)
	}
	if got := m.Queue(0).Pops(); got != 1 {
		t.Fatalf("pops = %d", got)
	}
	if got := m.Queue(0).Pushes(); got != 1 {
		t.Fatalf("pushes = %d", got)
	}
	// 40ms busy on a width-4 pool over 100ms = 10% utilization.
	if u := m.Pool(0).Utilization(m.Elapsed()); u < 0.099 || u > 0.101 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestTableRendering(t *testing.T) {
	m := New(2, 2, 1)
	m.Stage(0).Name, m.Stage(0).PU, m.Stage(0).Chunk = "encode", "big", 0
	m.Stage(1).Name, m.Stage(1).PU, m.Stage(1).Chunk = "pack", "gpu", 1
	m.Queue(0).Label = "chunk 0 → 1"
	m.Pool(0).PU, m.Pool(0).Width = "big", 4
	m.StageDone(0, 3*time.Millisecond)
	m.StageDone(1, 700*time.Microsecond)
	m.QueueWait(0, 5*time.Microsecond)
	m.SetElapsed(50 * time.Millisecond)

	out := m.Table()
	for _, want := range []string{"encode", "pack", "chunk 0 → 1", "dispatch", "p95", "util", "elapsed"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestPoolUtilizationEdgeCases(t *testing.T) {
	var p PoolStats
	if p.Utilization(time.Second) != 0 {
		t.Error("zero-width pool should report 0 utilization")
	}
	p.Width = 2
	if p.Utilization(0) != 0 {
		t.Error("zero elapsed should report 0 utilization")
	}
	p.AddBusy(-time.Second) // ignored
	if p.BusyTime() != 0 {
		t.Error("negative busy time recorded")
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	single := &Histogram{}
	single.Observe(time.Millisecond)
	zeroOnly := &Histogram{}
	zeroOnly.Observe(0)
	negOnly := &Histogram{}
	negOnly.Observe(-time.Second) // clamps to zero

	cases := []struct {
		name string
		h    *Histogram
		q    float64
		want func(time.Duration) bool
		desc string
	}{
		{"empty p50", &Histogram{}, 0.5, func(d time.Duration) bool { return d == 0 }, "0"},
		{"empty p0", &Histogram{}, 0, func(d time.Duration) bool { return d == 0 }, "0"},
		{"empty p100", &Histogram{}, 1, func(d time.Duration) bool { return d == 0 }, "0"},
		{"q below range clamps", single, -3, func(d time.Duration) bool { return d >= time.Millisecond && d < 2*time.Millisecond }, "bound of the single obs"},
		{"q above range clamps", single, 7, func(d time.Duration) bool { return d >= time.Millisecond && d < 2*time.Millisecond }, "bound of the single obs"},
		{"single obs p50", single, 0.5, func(d time.Duration) bool { return d >= time.Millisecond && d < 2*time.Millisecond }, "bound of the single obs"},
		{"zero-duration obs", zeroOnly, 0.99, func(d time.Duration) bool { return d == 0 }, "0 (bucket 0)"},
		{"negative obs clamp", negOnly, 0.99, func(d time.Duration) bool { return d == 0 }, "0 (clamped)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.h.Quantile(tc.q); !tc.want(got) {
				t.Errorf("Quantile(%v) = %v, want %s", tc.q, got, tc.desc)
			}
		})
	}
}
