package metrics

import (
	"testing"
	"time"
)

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(1 * time.Millisecond)
	a.Observe(2 * time.Millisecond)
	b.Observe(4 * time.Millisecond)
	b.Observe(40 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 4 {
		t.Errorf("count = %d, want 4", a.Count())
	}
	wantMean := (1 + 2 + 4 + 40) * time.Millisecond / 4
	if a.Mean() != wantMean {
		t.Errorf("mean = %v, want %v", a.Mean(), wantMean)
	}
	if a.Max() != 40*time.Millisecond {
		t.Errorf("max = %v, want 40ms", a.Max())
	}
	// The quantile upper bound must now cover b's large observation.
	if q := a.Quantile(1); q < 40*time.Millisecond {
		t.Errorf("p100 = %v, want >= 40ms", q)
	}
	// Merging nil is a no-op.
	a.Merge(nil)
	if a.Count() != 4 {
		t.Errorf("nil merge changed count: %d", a.Count())
	}
}

// sample fills a collector as one quiescent run would.
func sample(stageDisp uint64, service time.Duration, elapsed time.Duration) *Pipeline {
	m := New(2, 1, 1)
	m.Stage(0).Name, m.Stage(0).Chunk, m.Stage(0).PU = "s0", 0, "big"
	m.Stage(1).Name, m.Stage(1).Chunk, m.Stage(1).PU = "s1", 1, "gpu"
	m.Queue(0).Label, m.Queue(0).Cap = "chunk 0 → 1", 4
	m.Pool(0).PU, m.Pool(0).Width = "big", 2
	for i := uint64(0); i < stageDisp; i++ {
		m.StageDone(0, service)
		m.StageDone(1, service)
		m.QueueWait(0, service/2)
	}
	m.QueueDepth(0, int(stageDisp))
	m.Pool(0).AddBusy(time.Duration(stageDisp) * service)
	m.SetElapsed(elapsed)
	return m
}

func TestPipelineMergeCompatibleShapes(t *testing.T) {
	a := sample(3, time.Millisecond, 10*time.Millisecond)
	b := sample(5, 2*time.Millisecond, 20*time.Millisecond)
	a.Merge(b)
	if got := a.Stage(0).Dispatches(); got != 8 {
		t.Errorf("stage dispatches = %d, want 8", got)
	}
	if got := a.Stage(0).Service().Count(); got != 8 {
		t.Errorf("service observations = %d, want 8", got)
	}
	if got := a.Queue(0).Pops(); got != 8 {
		t.Errorf("queue pops = %d, want 8", got)
	}
	if got := a.Queue(0).MaxDepth(); got != 5 {
		t.Errorf("max depth = %d, want max(3,5)=5", got)
	}
	if got := a.Pool(0).BusyTime(); got != 13*time.Millisecond {
		t.Errorf("pool busy = %v, want 13ms", got)
	}
	if got := a.Elapsed(); got != 30*time.Millisecond {
		t.Errorf("elapsed = %v, want 30ms", got)
	}
	// Utilization over accumulated elapsed: 13ms busy / (30ms × 2 lanes).
	if got := a.Pool(0).Utilization(a.Elapsed()); got < 0.21 || got > 0.22 {
		t.Errorf("utilization = %v, want ~0.2167", got)
	}
}

// TestPipelineMergeIncompatibleShapes: a re-plan can change the chunking
// (queue edge count) and pool set between waves; those rows must not be
// conflated, while stage rows (application-stable indexes) still merge.
func TestPipelineMergeIncompatibleShapes(t *testing.T) {
	a := sample(3, time.Millisecond, 10*time.Millisecond)
	b := New(2, 2, 2)
	b.Stage(0).Name = "s0"
	b.Stage(1).Name = "s1"
	b.StageDone(0, time.Millisecond)
	b.Pool(0).PU, b.Pool(1).PU = "big", "little"
	b.Queue(0).Label = "chunk 0 → 1"
	b.QueueWait(0, time.Millisecond)
	b.Pool(0).AddBusy(time.Millisecond)
	a.Merge(b)
	if got := a.Stage(0).Dispatches(); got != 4 {
		t.Errorf("stage dispatches = %d, want 4 (stages merge by index)", got)
	}
	if got := a.Queue(0).Pops(); got != 3 {
		t.Errorf("queue pops = %d, want 3 (mismatched edge counts skipped)", got)
	}
	if got := a.Pool(0).BusyTime(); got != 3*time.Millisecond {
		t.Errorf("pool busy = %v, want 3ms (mismatched pool sets skipped)", got)
	}
	// Nil merge is a no-op.
	a.Merge(nil)
	if got := a.Stage(0).Dispatches(); got != 4 {
		t.Errorf("nil merge changed dispatches: %d", got)
	}
}
