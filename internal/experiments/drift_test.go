package experiments

import "testing"

// TestDriftConvergenceDefaults pins the drift experiment's acceptance
// contract end-to-end on the canonical config:
//
//   - the oracle (zero-injected-error) run never drift-replans — the
//     feedback loop is quiet when the model is right;
//   - the distorted run initially picks a wrong schedule, detects the
//     drift at least once, and converges to the oracle schedule;
//   - the whole experiment is deterministic: two runs of the same
//     config produce identical results and identical report bodies.
func TestDriftConvergenceDefaults(t *testing.T) {
	cfg := DriftConvergenceConfig{Seed: 1}
	res, body, err := DriftConvergence(cfg)
	if err != nil {
		t.Fatalf("DriftConvergence: %v", err)
	}
	if res.Oracle.DriftReplans != 0 {
		t.Errorf("oracle run drift-replanned %d times, want 0", res.Oracle.DriftReplans)
	}
	if res.Oracle.Stats.DriftsTriggered != 0 {
		t.Errorf("oracle run latched %d drifts, want 0", res.Oracle.Stats.DriftsTriggered)
	}
	if res.Oracle.Stats.Observations == 0 {
		t.Error("oracle run ingested no observations — the feedback loop was not live")
	}
	if res.Distorted.Initial == res.Oracle.Final {
		t.Errorf("injection did not bias planning: distorted initial %s equals oracle %s",
			res.Distorted.Initial, res.Oracle.Final)
	}
	if res.Distorted.DriftReplans < 1 {
		t.Errorf("distorted run drift-replanned %d times, want >= 1 (stats %+v)",
			res.Distorted.DriftReplans, res.Distorted.Stats)
	}
	if !res.Converged {
		t.Errorf("distorted run did not converge: final %s, oracle %s",
			res.Distorted.Final, res.Oracle.Final)
	}

	res2, body2, err := DriftConvergence(cfg)
	if err != nil {
		t.Fatalf("second DriftConvergence: %v", err)
	}
	if res != res2 {
		t.Errorf("nondeterministic result:\n  first  %+v\n  second %+v", res, res2)
	}
	if body != body2 {
		t.Error("nondeterministic report body")
	}
}

// TestDriftConvergenceSeedStability runs a second seed: the specific
// schedules may differ, but the contract (quiet oracle, detected and
// corrected distortion) must hold — drift detection is not tuned to a
// single noise stream.
func TestDriftConvergenceSeedStability(t *testing.T) {
	res, _, err := DriftConvergence(DriftConvergenceConfig{Seed: 42})
	if err != nil {
		t.Fatalf("DriftConvergence: %v", err)
	}
	if res.Oracle.DriftReplans != 0 {
		t.Errorf("oracle run drift-replanned %d times, want 0", res.Oracle.DriftReplans)
	}
	if res.Distorted.DriftReplans < 1 {
		t.Errorf("distorted run drift-replanned %d times, want >= 1", res.Distorted.DriftReplans)
	}
	if !res.Converged {
		t.Errorf("distorted run did not converge: final %s, oracle %s",
			res.Distorted.Final, res.Oracle.Final)
	}
}
