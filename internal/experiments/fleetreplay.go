package experiments

import (
	"fmt"
	"strings"

	"bettertogether/internal/fleet"
	"bettertogether/internal/obs"
	"bettertogether/internal/obs/sessiontrace"
	"bettertogether/internal/onlineprof"
	"bettertogether/internal/report"
)

// FleetReplayConfig parameterizes the fleet-scale placement experiment:
// a seeded arrival trace replayed over a registry of simulated devices.
type FleetReplayConfig struct {
	// Nodes is the registry spec ("" selects one pixel7a, one oneplus11
	// and one jetson — the heterogeneous 3-node default).
	Nodes []fleet.NodeSpec
	// Trace, when non-empty, is replayed as-is and Gen is ignored.
	Trace fleet.Trace
	// Gen generates the trace when Trace is empty. Zero-valued fields
	// pick the canonical defaults: a bursty 12-arrival octree/alexnet mix.
	Gen fleet.GenConfig
	// BWHeadroom, CoreHeadroom, ReplanDelta, CacheCapacity, CacheBucket,
	// Affinity and OnlineProf forward to fleet.Config.
	BWHeadroom    float64
	CoreHeadroom  float64
	ReplanDelta   float64
	CacheCapacity int
	CacheBucket   float64
	Affinity      map[string]string
	OnlineProf    *onlineprof.Config
	// IndexBands forwards to fleet.Config.IndexBands (0 selects the
	// banded-index default, negative the exhaustive rank).
	IndexBands int
	// Replay schedules control-plane events (drain, rebalance sweeps,
	// stats sampling) onto the replay timeline; the zero value replays
	// the trace alone.
	Replay fleet.ReplayOptions
	// Seed drives the node runtimes' noise streams.
	Seed int64
	// Events forwards to fleet.Config.Events.
	Events obs.Sink
	// Trace forwards to fleet.Config.Trace: the causal session-lifecycle
	// tracer fed by every node runtime during the replay (nil = off).
	SessionTrace *sessiontrace.Tracer
	// SLODeadline forwards to fleet.ReplayOptions.SLODeadline: the
	// replay-wide per-session deadline in virtual seconds (0 = no SLO
	// unless individual arrivals carry their own deadlines).
	SLODeadline float64
}

func (c FleetReplayConfig) withDefaults() FleetReplayConfig {
	if len(c.Nodes) == 0 {
		c.Nodes = []fleet.NodeSpec{
			{Device: "pixel7a", Count: 1},
			{Device: "oneplus11", Count: 1},
			{Device: "jetson", Count: 1},
		}
	}
	if len(c.Trace.Arrivals) == 0 {
		if c.Gen.Pattern == "" {
			c.Gen.Pattern = fleet.PatternBursty
		}
		if c.Gen.Arrivals <= 0 {
			c.Gen.Arrivals = 12
		}
		if c.Gen.Burst <= 0 {
			c.Gen.Burst = 3
		}
		if c.Gen.BurstEvery <= 0 {
			c.Gen.BurstEvery = 40
		}
		if len(c.Gen.Apps) == 0 {
			c.Gen.Apps = []string{"octree", "alexnet-sparse"}
		}
		if c.Gen.MeanDwell <= 0 {
			c.Gen.MeanDwell = 5
		}
		if c.Gen.Tasks <= 0 {
			c.Gen.Tasks = 4
		}
		if c.Gen.Seed == 0 {
			c.Gen.Seed = c.Seed
		}
	}
	return c
}

// FleetReplayOutcome is the experiment's result: the replay aggregate,
// the fleet's exported stats after the run, and the trace that was
// replayed (generated or supplied).
type FleetReplayOutcome struct {
	Result fleet.ReplayResult
	Stats  obs.FleetStats
	Trace  fleet.Trace
	// OnlineProf merges the node runtimes' feedback-loop counters;
	// OnlineProfEnabled is false when the replay ran without online
	// profiling (the counters are then all zero).
	OnlineProf        obs.OnlineProfStats
	OnlineProfEnabled bool
	// SLO merges the node runtimes' deadline-attainment counters;
	// SLOEnabled is false when no session carried a deadline.
	SLO        obs.SLOStats
	SLOEnabled bool
}

// FleetReplay builds a fleet from the config, replays the trace on the
// discrete-event timeline (control-plane events included), and tears
// the fleet down. The same config yields a byte-identical outcome on
// every run.
func FleetReplay(cfg FleetReplayConfig) (FleetReplayOutcome, error) {
	cfg = cfg.withDefaults()
	out := FleetReplayOutcome{Trace: cfg.Trace}
	if len(out.Trace.Arrivals) == 0 {
		tr, err := fleet.Generate(cfg.Gen)
		if err != nil {
			return out, err
		}
		out.Trace = tr
	}
	f, err := fleet.New(fleet.Config{
		Nodes:         cfg.Nodes,
		Seed:          cfg.Seed,
		BWHeadroom:    cfg.BWHeadroom,
		CoreHeadroom:  cfg.CoreHeadroom,
		ReplanDelta:   cfg.ReplanDelta,
		CacheCapacity: cfg.CacheCapacity,
		CacheBucket:   cfg.CacheBucket,
		Affinity:      cfg.Affinity,
		IndexBands:    cfg.IndexBands,
		Events:        cfg.Events,
		OnlineProf:    cfg.OnlineProf,
		Trace:         cfg.SessionTrace,
	})
	if err != nil {
		return out, err
	}
	defer f.Close()
	replay := cfg.Replay
	if cfg.SLODeadline != 0 {
		replay.SLODeadline = cfg.SLODeadline
	}
	out.Result, err = f.ReplayWith(out.Trace, replay)
	if err != nil {
		return out, err
	}
	out.Stats = f.Stats()
	out.OnlineProf, out.OnlineProfEnabled = f.OnlineProfStats()
	out.SLO, out.SLOEnabled = f.SLOStats()
	return out, nil
}

// Render lays the outcome out as the btfleet/btbench report: every
// placement decision in trace order, the per-node routing split, and
// the fleet-wide summary with rejection rate and latency quantiles.
func (o FleetReplayOutcome) Render() string {
	var b strings.Builder

	placements := report.NewTable("Placement decisions", "#", "t(s)", "app", "node", "choice", "latency(s)")
	for _, r := range o.Result.Records {
		node, choice, lat := r.Node, fmt.Sprintf("%d", r.Choice), report.F4(r.Elapsed)
		if r.Rejected {
			node, choice, lat = "REJECTED", "-", "-"
		}
		placements.AddRow(fmt.Sprintf("%d", r.Seq), report.F2(r.At), r.App, node, choice, lat)
	}
	b.WriteString(placements.Render())
	b.WriteString("\n")

	nodes := report.NewTable("Fleet nodes", "node", "device", "placed", "refused")
	for _, n := range o.Stats.PerNode {
		nodes.AddRow(n.ID, n.Device, fmt.Sprintf("%d", n.Placed), fmt.Sprintf("%d", n.Rejected))
	}
	b.WriteString(nodes.Render())
	b.WriteString("\n")

	sum := report.NewTable("Fleet replay summary", "metric", "value")
	sum.AddRow("arrivals", fmt.Sprintf("%d", o.Result.Arrivals))
	sum.AddRow("placed", fmt.Sprintf("%d", o.Result.Placed))
	sum.AddRow("spillovers", fmt.Sprintf("%d", o.Result.Spilled))
	sum.AddRow("rejected", fmt.Sprintf("%d", o.Result.Rejected))
	sum.AddRow("rejection rate", o.Result.RejectionRate())
	// Control-plane rows appear only when a drain actually ran, so the
	// default replay report stays byte-identical with or without the
	// drain machinery existing.
	for _, d := range o.Result.Drains {
		sum.AddRow(fmt.Sprintf("drain %s at %s", d.Node, report.F2(d.At)),
			fmt.Sprintf("%d migrated", d.Migrated))
	}
	if o.Result.Migrated > 0 {
		sum.AddRow("migrations", fmt.Sprintf("%d", o.Result.Migrated))
	}
	sum.AddRow("p50 latency (s)", report.F4(o.Result.P50))
	sum.AddRow("p99 latency (s)", report.F4(o.Result.P99))
	if o.OnlineProfEnabled {
		sum.AddRow("drift re-plans", fmt.Sprintf("%d", o.OnlineProf.DriftReplans))
	}
	// SLO rows appear only when at least one session carried a deadline,
	// keeping deadline-free replay reports byte-identical.
	if s := o.Result.SLO; s != nil {
		sum.AddRow("slo attained", fmt.Sprintf("%d/%d (%s)", s.Attained, s.Sessions, s.Fraction))
		sum.AddRow("slo missed", fmt.Sprintf("%d", s.Missed))
		sum.AddRow("slo p50 latency (s)", report.F4(s.P50))
		sum.AddRow("slo p99 latency (s)", report.F4(s.P99))
	}
	b.WriteString(sum.Render())
	return b.String()
}
