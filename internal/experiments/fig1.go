package experiments

import (
	"fmt"

	"bettertogether/internal/core"
	"bettertogether/internal/report"
	"bettertogether/internal/soc"
)

// Fig1Stages are the three octree stages the paper's motivating figure
// shows: the GPU is poor at sorting, best at building the radix tree,
// and comparable to the big/medium CPUs at octree construction.
var Fig1Stages = []string{"sort", "radix-tree", "build-octree"}

// Fig1Result holds the per-stage, per-PU latencies on the Pixel.
type Fig1Result struct {
	Stages  []string
	PUs     []core.PUClass
	Seconds [][]float64 // [stage][pu]
}

// Fig1 reproduces the motivating experiment: three octree pipeline
// stages profiled across the Google Pixel's four PU classes.
func (s *Suite) Fig1() (Fig1Result, string, error) {
	app, err := s.AppByName("octree-uniform")
	if err != nil {
		return Fig1Result{}, "", err
	}
	dev, err := s.DeviceByName(soc.Pixel7a)
	if err != nil {
		return Fig1Result{}, "", err
	}
	tab := s.Tables(app, dev).Isolated

	res := Fig1Result{Stages: Fig1Stages, PUs: tab.PUs}
	stageIdx := map[string]int{}
	for i, n := range tab.Stages {
		stageIdx[n] = i
	}
	var body string
	for _, name := range Fig1Stages {
		i, ok := stageIdx[name]
		if !ok {
			return Fig1Result{}, "", fmt.Errorf("experiments: stage %q missing", name)
		}
		row := make([]float64, len(tab.PUs))
		chart := report.NewBarChart(fmt.Sprintf("stage %q latency (ms) per PU", name), 40)
		for j, pu := range tab.PUs {
			row[j] = tab.Latency[i][j]
			chart.Add(string(pu), row[j]*1e3)
		}
		res.Seconds = append(res.Seconds, row)
		body += chart.Render() + "\n"
	}
	return res, report.Section("Fig 1: octree stage latency across Pixel PUs", body), nil
}
