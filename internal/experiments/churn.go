package experiments

import (
	"fmt"
	"time"

	"bettertogether/internal/apps/alexnet"
	"bettertogether/internal/apps/octree"
	"bettertogether/internal/benchjson"
	"bettertogether/internal/core"
	"bettertogether/internal/report"
	btruntime "bettertogether/internal/runtime"
	"bettertogether/internal/schedcache"
	"bettertogether/internal/soc"
)

// Churn experiment defaults.
const (
	// DefaultChurnRounds is sized so the single cold round is amortized:
	// with one cold fill and rounds-1 cached rounds the expected speedup
	// is roughly the round count, comfortably above the 5x gate.
	DefaultChurnRounds = 16
	// DefaultChurnTasks keeps sessions short — churn, not throughput, is
	// what the scenario stresses.
	DefaultChurnTasks = 8
	// DefaultChurnReps repeats each mode and keeps the fastest mean —
	// min-of-N is the stable timing estimator that keeps the CI
	// regression gate from flaking on scheduler jitter.
	DefaultChurnReps = 3
)

// ChurnConfig parameterizes the admission-churn benchmark.
type ChurnConfig struct {
	// Device is the SoC to churn on ("" selects Pixel 7a).
	Device string
	// Rounds is the number of admit-admit-drain cycles per mode
	// (<= 0 selects DefaultChurnRounds).
	Rounds int
	// Tasks per session (<= 0 selects DefaultChurnTasks).
	Tasks int
	// CacheCapacity sizes the cache-on runtime's schedule cache
	// (<= 0 selects schedcache.DefaultCapacity).
	CacheCapacity int
	// Bucket is the cache's Env quantization bucket (<= 0 selects
	// schedcache.DefaultBucket).
	Bucket float64
	// Reps repeats each mode and reports the fastest repetition
	// (<= 0 selects DefaultChurnReps).
	Reps int
	// Seed drives both runtimes' noise streams.
	Seed int64
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Device == "" {
		c.Device = soc.Pixel7a
	}
	if c.Rounds <= 0 {
		c.Rounds = DefaultChurnRounds
	}
	if c.Tasks <= 0 {
		c.Tasks = DefaultChurnTasks
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = schedcache.DefaultCapacity
	}
	if c.Bucket <= 0 {
		c.Bucket = schedcache.DefaultBucket
	}
	if c.Reps <= 0 {
		c.Reps = DefaultChurnReps
	}
	return c
}

// ChurnModeStats aggregates one mode's admissions.
type ChurnModeStats struct {
	// Admits counts timed Admit calls; MeanNs and SteadyNs are the mean
	// admission-to-plan-landed latencies over all rounds and over the
	// rounds after the first (the warmed regime), in nanoseconds.
	Admits   int
	MeanNs   float64
	SteadyNs float64
	// Cache counters at the end of the run (zero when uncached).
	Stats schedcache.Stats
}

// ChurnResult is the churn benchmark's outcome: admission latency with
// the schedule cache off vs on.
type ChurnResult struct {
	Device string
	Rounds int
	Off    ChurnModeStats
	On     ChurnModeStats
	// Speedup is Off.MeanNs / On.MeanNs.
	Speedup float64
}

// Benches renders the result as github-action-benchmark samples — the
// BENCH_6.json payload the CI regression gate compares across commits.
func (r ChurnResult) Benches() []benchjson.Bench {
	extra := fmt.Sprintf("%d admits on %s", r.Off.Admits, r.Device)
	return []benchjson.Bench{
		{Name: "churn/admit/cache=off", Value: r.Off.MeanNs, Unit: "ns/op", Extra: extra},
		{Name: "churn/admit/cache=on", Value: r.On.MeanNs, Unit: "ns/op", Extra: extra},
		{Name: "churn/admit-steady/cache=on", Value: r.On.SteadyNs, Unit: "ns/op", Extra: extra},
		{Name: "churn/speedup", Value: r.Speedup, Unit: "x", Extra: extra},
	}
}

// Churn measures admission-to-plan-landed latency under session churn,
// with and without the schedule cache. Each round admits the paper's
// Octree and sparse AlexNet pipelines, then drains them; every
// admission both plans the newcomer and re-plans the resident, so the
// timed window covers exactly the planning work the cache memoizes.
// Per-application seeds are fixed across rounds — the cache key
// includes the planning seed, so recurring admissions must present
// recurring keys for the cache to pay off.
func Churn(cfg ChurnConfig) (ChurnResult, string, error) {
	cfg = cfg.withDefaults()
	dev, err := soc.DeviceByName(cfg.Device)
	if err != nil {
		return ChurnResult{}, "", err
	}
	apps := []*core.Application{
		octree.NewApplication(octree.DefaultPoints, octree.UniformGen{}),
		alexnet.NewSparse(alexnet.DefaultSeed, alexnet.DefaultSparseBatch),
	}

	// runRep executes one full churn cycle against a fresh runtime (and,
	// when caching, a fresh cache — every rep reproduces the same
	// cold-fill-then-warm scenario).
	runRep := func(cache *schedcache.Cache) (ChurnModeStats, error) {
		st := ChurnModeStats{}
		// Generous headrooms: the scenario measures planning latency,
		// not admission policy, so no round may be rejected.
		opts := []btruntime.Option{
			btruntime.WithHeadroom(8, 8),
			btruntime.WithSeed(cfg.Seed),
		}
		if cache != nil {
			opts = append(opts, btruntime.WithSchedCache(cache))
		}
		rt, err := btruntime.New(dev, opts...)
		if err != nil {
			return st, err
		}
		defer rt.Close()
		var total, steady time.Duration
		steadyAdmits := 0
		for round := 0; round < cfg.Rounds; round++ {
			sessions := make([]*btruntime.Session, 0, len(apps))
			for i, app := range apps {
				t0 := time.Now()
				s, err := rt.Admit(app, btruntime.AdmitOptions{
					Name:  fmt.Sprintf("%s-r%d", app.Name, round),
					Tasks: cfg.Tasks,
					Seed:  int64(i) * 101, // fixed per app, NOT per round
				})
				d := time.Since(t0)
				if err != nil {
					return st, fmt.Errorf("churn round %d: %w", round, err)
				}
				st.Admits++
				total += d
				if round > 0 {
					steadyAdmits++
					steady += d
				}
				sessions = append(sessions, s)
			}
			for _, s := range sessions {
				if res := s.Wait(); res.Err != nil {
					return st, fmt.Errorf("churn round %d: session %s: %w", round, res.Name, res.Err)
				}
			}
		}
		st.MeanNs = float64(total.Nanoseconds()) / float64(st.Admits)
		if steadyAdmits > 0 {
			st.SteadyNs = float64(steady.Nanoseconds()) / float64(steadyAdmits)
		}
		if cache != nil {
			st.Stats = cache.Stats()
		}
		return st, nil
	}

	// runMode repeats the scenario and keeps the fastest rep: min-of-N
	// is the stable estimator that keeps the CI regression gate from
	// flaking on scheduler jitter in any single rep.
	runMode := func(mkCache func() *schedcache.Cache) (ChurnModeStats, error) {
		var best ChurnModeStats
		for rep := 0; rep < cfg.Reps; rep++ {
			st, err := runRep(mkCache())
			if err != nil {
				return st, err
			}
			if rep == 0 || st.MeanNs < best.MeanNs {
				best = st
			}
		}
		return best, nil
	}

	res := ChurnResult{Device: cfg.Device, Rounds: cfg.Rounds}
	if res.Off, err = runMode(func() *schedcache.Cache { return nil }); err != nil {
		return res, "", fmt.Errorf("cache=off: %w", err)
	}
	onCache := func() *schedcache.Cache { return schedcache.New(cfg.CacheCapacity, cfg.Bucket) }
	if res.On, err = runMode(onCache); err != nil {
		return res, "", fmt.Errorf("cache=on: %w", err)
	}
	if res.On.MeanNs > 0 {
		res.Speedup = res.Off.MeanNs / res.On.MeanNs
	}

	t := report.NewTable(fmt.Sprintf("Admission churn on %s (%d rounds x %d apps)",
		DeviceLabel(cfg.Device), cfg.Rounds, len(apps)),
		"cache", "mean admit (ms)", "steady admit (ms)", "hits", "misses")
	t.AddRow("off", report.F2(res.Off.MeanNs/1e6), report.F2(res.Off.SteadyNs/1e6), "-", "-")
	t.AddRow("on", report.F2(res.On.MeanNs/1e6), report.F2(res.On.SteadyNs/1e6),
		fmt.Sprintf("%d", res.On.Stats.Hits), fmt.Sprintf("%d", res.On.Stats.Misses))
	body := report.Section("Churn: schedule-cache admission latency",
		t.Render()+fmt.Sprintf("\nspeedup (off/on): %.1fx\n", res.Speedup))
	return res, body, nil
}
