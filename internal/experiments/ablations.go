package experiments

import (
	"context"
	"fmt"
	"math"

	"bettertogether/internal/core"
	"bettertogether/internal/dataparallel"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/profiler"
	"bettertogether/internal/report"
	"bettertogether/internal/sched"
	"bettertogether/internal/soc"
	"bettertogether/internal/stats"
)

// Ablations probe the design choices the paper motivates but does not
// sweep: the pipelining strategy itself (vs data parallelism), the
// gapness/utilization filter, the candidate pool size K, the
// multi-buffering depth, and the profiling repetition count.

// DataParallelResult compares the paper's strategy against the Sec. 1
// strawman on every combo.
type DataParallelResult struct {
	Devices, Apps []string
	// BT[d][a], DP[d][a], BestBase[d][a] in seconds.
	BT, DP, BestBase [][]float64
	// GeomeanDPOverBT aggregates DP/BT (>1 means pipelining wins).
	GeomeanDPOverBT float64
}

// AblationDataParallel measures data-parallel execution against the
// BetterTogether pipeline and the best homogeneous baseline.
func (s *Suite) AblationDataParallel() (DataParallelResult, string, error) {
	base, _, err := s.Table3()
	if err != nil {
		return DataParallelResult{}, "", err
	}
	res := DataParallelResult{Devices: base.Devices, Apps: base.Apps}
	t := report.NewTable("Ablation: pipelining vs data parallelism (ms per task)",
		"Device", "App", "BetterTogether", "Data-parallel", "Best homogeneous", "DP/BT")
	var ratios []float64
	for di, dev := range s.Devices {
		var btRow, dpRow, baseRow []float64
		for ai, app := range s.Apps {
			tabs := s.Tables(app, dev)
			opt := sched.New(app, dev, tabs)
			autoOpts := pipeline.Options{Tasks: s.Tasks, Warmup: s.Warmup,
				Seed: seedFor("abl-dp-bt", app.Name, dev.Name)}
			_, tune, _, err := opt.Optimize(sched.BetterTogether, autoOpts)
			if err != nil {
				return res, "", err
			}
			bt := tune.Measured[tune.BestIndex]
			dp := dataparallel.Simulate(app, dev, tabs.Heavy, dataparallel.Options{
				Tasks: s.Tasks, Warmup: s.Warmup,
				Seed: seedFor("abl-dp-dp", app.Name, dev.Name),
			})
			btRow = append(btRow, bt)
			dpRow = append(dpRow, dp)
			baseRow = append(baseRow, base.Cells[di][ai].Best())
			ratios = append(ratios, dp/bt)
			t.AddRow(DeviceLabel(dev.Name), AppLabel(app.Name),
				report.Ms(bt), report.Ms(dp), report.Ms(base.Cells[di][ai].Best()),
				report.F2(dp/bt))
		}
		res.BT = append(res.BT, btRow)
		res.DP = append(res.DP, dpRow)
		res.BestBase = append(res.BestBase, baseRow)
	}
	res.GeomeanDPOverBT = stats.GeoMean(ratios)
	body := t.Render() + fmt.Sprintf("geomean DP/BT = %.2fx (pipelining wins when > 1)\n",
		res.GeomeanDPOverBT)
	return res, report.Section("Ablation: data parallelism", body), nil
}

// KSweepResult reports the autotuned outcome as the candidate pool
// grows.
type KSweepResult struct {
	K        []int
	Measured []float64 // best measured latency per K, seconds
}

// AblationK sweeps the candidate pool size on Octree/Pixel: K=1 trusts
// the model's single best prediction; larger K lets autotuning recover
// within-tier misprediction (paper Sec. 3.3 uses K=20).
func (s *Suite) AblationK() (KSweepResult, string, error) {
	app, err := s.AppByName("octree-uniform")
	if err != nil {
		return KSweepResult{}, "", err
	}
	dev, err := s.DeviceByName(soc.Pixel7a)
	if err != nil {
		return KSweepResult{}, "", err
	}
	tabs := s.Tables(app, dev)
	res := KSweepResult{}
	t := report.NewTable("Ablation: candidate pool size K (Octree on Pixel)",
		"K", "best measured (ms)", "vs K=1")
	first := 0.0
	for _, k := range []int{1, 2, 5, 10, 20, 40} {
		opt := sched.New(app, dev, tabs)
		opt.K = k
		opts := pipeline.Options{Tasks: s.Tasks, Warmup: s.Warmup,
			Seed: seedFor("abl-k", app.Name, dev.Name)}
		_, tune, _, err := opt.Optimize(sched.BetterTogether, opts)
		if err != nil {
			return res, "", err
		}
		best := tune.Measured[tune.BestIndex]
		res.K = append(res.K, k)
		res.Measured = append(res.Measured, best)
		if first == 0 {
			first = best
		}
		t.AddRow(fmt.Sprintf("%d", k), report.Ms(best), report.F2(first/best))
	}
	return res, report.Section("Ablation: K sweep", t.Render()), nil
}

// BufferSweepResult reports multi-buffering depth vs throughput.
type BufferSweepResult struct {
	Buffers  []int
	PerTask  []float64
	Schedule core.Schedule
}

// AblationBuffers sweeps the TaskObject multi-buffering depth for the
// Octree/Pixel BT schedule. Depth 1 serializes the chunks (no
// pipelining); the paper's design needs at least one object per chunk in
// flight to overlap.
func (s *Suite) AblationBuffers() (BufferSweepResult, string, error) {
	app, err := s.AppByName("octree-uniform")
	if err != nil {
		return BufferSweepResult{}, "", err
	}
	dev, err := s.DeviceByName(soc.Pixel7a)
	if err != nil {
		return BufferSweepResult{}, "", err
	}
	tabs := s.Tables(app, dev)
	opt := sched.New(app, dev, tabs)
	cands := opt.Candidates(sched.BetterTogether)
	if len(cands) == 0 {
		return BufferSweepResult{}, "", fmt.Errorf("no candidates")
	}
	sch := cands[0].Schedule
	res := BufferSweepResult{Schedule: sch}
	t := report.NewTable(
		fmt.Sprintf("Ablation: multi-buffering depth for %s on Pixel", sch),
		"buffers", "per-task (ms)", "speedup vs 1")
	plan, err := pipeline.NewPlan(app, dev, sch)
	if err != nil {
		return res, "", err
	}
	first := 0.0
	for _, b := range []int{1, 2, 3, 4, 6, 8} {
		r := simEngine.Run(context.Background(), plan, pipeline.Options{
			Tasks: s.Tasks, Warmup: s.Warmup, Buffers: b,
			Seed: seedFor("abl-buffers", app.Name, dev.Name),
		})
		res.Buffers = append(res.Buffers, b)
		res.PerTask = append(res.PerTask, r.PerTask)
		if first == 0 {
			first = r.PerTask
		}
		t.AddRow(fmt.Sprintf("%d", b), report.Ms(r.PerTask), report.F2(first/r.PerTask))
	}
	return res, report.Section("Ablation: multi-buffering", t.Render()), nil
}

// RepsSweepResult reports model accuracy vs profiling repetitions.
type RepsSweepResult struct {
	Reps    []int
	Pearson []float64
}

// AblationReps sweeps the profiler's repetition count on
// AlexNet-sparse/Pixel and reports the BT strategy's top-20 correlation:
// the paper's 30 repetitions buy noise immunity.
func (s *Suite) AblationReps() (RepsSweepResult, string, error) {
	app, err := s.AppByName("alexnet-sparse")
	if err != nil {
		return RepsSweepResult{}, "", err
	}
	dev, err := s.DeviceByName(soc.Pixel7a)
	if err != nil {
		return RepsSweepResult{}, "", err
	}
	res := RepsSweepResult{}
	t := report.NewTable("Ablation: profiling repetitions (AlexNet-sparse on Pixel)",
		"reps", "BT top-20 Pearson")
	for _, reps := range []int{1, 3, 10, 30} {
		tabs := profiler.ProfileBoth(app, dev, profiler.Config{Reps: reps, Seed: 777})
		opt := sched.New(app, dev, tabs)
		cands := opt.Candidates(sched.BetterTogether)
		var pred, meas []float64
		for _, c := range cands {
			m, err := s.Measure(app, dev, c.Schedule, fmt.Sprintf("abl-reps-%d", reps))
			if err != nil {
				return res, "", err
			}
			pred = append(pred, c.Predicted)
			meas = append(meas, m)
		}
		r, err := stats.Pearson(pred, meas)
		if err != nil {
			r = math.NaN()
		}
		res.Reps = append(res.Reps, reps)
		res.Pearson = append(res.Pearson, r)
		t.AddRow(fmt.Sprintf("%d", reps), report.F4(r))
	}
	return res, report.Section("Ablation: profiling repetitions", t.Render()), nil
}

// SlackSweepResult reports the utilization filter's tolerance sweep.
type SlackSweepResult struct {
	Slack    []float64
	Pearson  []float64 // BT top-K prediction correlation under each slack
	BestMs   []float64 // autotuned best measured latency, seconds
	PoolSize []int
}

// AblationSlack sweeps the gapness/utilization filter tolerance on
// AlexNet-sparse/Pixel: slack→∞ degenerates to latency-only ranking
// (Fig. 5b), slack→0 keeps only perfectly balanced schedules. The
// paper's C3 bounds correspond to the middle of this sweep.
func (s *Suite) AblationSlack() (SlackSweepResult, string, error) {
	app, err := s.AppByName("alexnet-sparse")
	if err != nil {
		return SlackSweepResult{}, "", err
	}
	dev, err := s.DeviceByName(soc.Pixel7a)
	if err != nil {
		return SlackSweepResult{}, "", err
	}
	tabs := s.Tables(app, dev)
	res := SlackSweepResult{}
	t := report.NewTable("Ablation: utilization-filter slack (AlexNet-sparse on Pixel)",
		"slack", "pool", "top-K Pearson", "autotuned best (ms)")
	for _, slack := range []float64{0.05, 0.2, 0.4, 0.8, 2.0} {
		opt := sched.New(app, dev, tabs)
		opt.UtilSlack = slack
		cands := opt.Candidates(sched.BetterTogether)
		var pred, meas []float64
		for _, c := range cands {
			m, err := s.Measure(app, dev, c.Schedule, fmt.Sprintf("abl-slack-%v", slack))
			if err != nil {
				return res, "", err
			}
			pred = append(pred, c.Predicted)
			meas = append(meas, m)
		}
		r, err := stats.Pearson(pred, meas)
		if err != nil {
			r = math.NaN()
		}
		best := math.Inf(1)
		for _, m := range meas {
			if m < best {
				best = m
			}
		}
		res.Slack = append(res.Slack, slack)
		res.Pearson = append(res.Pearson, r)
		res.BestMs = append(res.BestMs, best)
		res.PoolSize = append(res.PoolSize, len(cands))
		t.AddRow(fmt.Sprintf("%.2f", slack), fmt.Sprintf("%d", len(cands)),
			report.F4(r), report.Ms(best))
	}
	return res, report.Section("Ablation: utilization slack", t.Render()), nil
}
