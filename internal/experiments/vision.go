package experiments

import (
	"context"
	"fmt"

	"bettertogether/internal/apps/vision"
	"bettertogether/internal/core"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/profiler"
	"bettertogether/internal/report"
	"bettertogether/internal/sched"
	"bettertogether/internal/stats"
)

// VisionResult schedules the extension camera pipeline across the fleet —
// the portability story of Sec. 1 applied to a workload the paper never
// saw: the same application code, specialized per device by the
// framework.
type VisionResult struct {
	Devices   []string
	BT        []float64 // seconds per frame
	CPU, GPU  []float64
	Speedup   []float64 // best homogeneous / BT
	Schedules []string
	Geomean   float64
}

// ExtVision runs the full optimization for the camera pipeline on every
// device.
func (s *Suite) ExtVision() (VisionResult, string, error) {
	app, err := vision.NewApplication(vision.DefaultWidth, vision.DefaultHeight)
	if err != nil {
		return VisionResult{}, "", err
	}
	res := VisionResult{}
	t := report.NewTable("Extension: camera pipeline across the fleet (ms per frame)",
		"Device", "BT", "CPU-only", "GPU-only", "Speedup", "Schedule")
	var sps []float64
	for _, dev := range s.Devices {
		cfg := s.ProfCfg
		cfg.Seed = s.ProfCfg.Seed + seedFor("vision-prof", dev.Name)%100000
		tabs := profiler.ProfileBoth(app, dev, cfg)
		opt := sched.New(app, dev, tabs)
		opts := pipeline.Options{Tasks: s.Tasks, Warmup: s.Warmup,
			Seed: seedFor("vision-run", dev.Name)}
		_, tune, best, err := opt.Optimize(sched.BetterTogether, opts)
		if err != nil {
			return res, "", err
		}
		bt := tune.Measured[tune.BestIndex]
		measure := func(pu core.PUClass) (float64, error) {
			plan, err := pipeline.NewPlan(app, dev, core.NewUniformSchedule(len(app.Stages), pu))
			if err != nil {
				return 0, err
			}
			return simEngine.Run(context.Background(), plan, opts).PerTask, nil
		}
		cpu, err := measure(core.ClassBig)
		if err != nil {
			return res, "", err
		}
		gpu, err := measure(dev.GPUClass())
		if err != nil {
			return res, "", err
		}
		bestBase := cpu
		if gpu < bestBase {
			bestBase = gpu
		}
		sp := bestBase / bt
		res.Devices = append(res.Devices, dev.Name)
		res.BT = append(res.BT, bt)
		res.CPU = append(res.CPU, cpu)
		res.GPU = append(res.GPU, gpu)
		res.Speedup = append(res.Speedup, sp)
		res.Schedules = append(res.Schedules, best.Schedule.String())
		sps = append(sps, sp)
		t.AddRow(DeviceLabel(dev.Name), report.Ms(bt), report.Ms(cpu), report.Ms(gpu),
			report.F2(sp), best.Schedule.String())
	}
	res.Geomean = stats.GeoMean(sps)
	body := t.Render() + fmt.Sprintf("geomean speedup over best homogeneous: %.2fx\n", res.Geomean)
	return res, report.Section("Extension: vision workload portability", body), nil
}
