package experiments

import (
	"fmt"

	"bettertogether/internal/pipeline"
	"bettertogether/internal/report"
	"bettertogether/internal/sched"
	"bettertogether/internal/stats"
)

// Fig4Result holds the heterogeneous-vs-homogeneous speedups.
type Fig4Result struct {
	Devices []string
	Apps    []string
	// BT[d][a] is BetterTogether's measured per-task latency (seconds).
	BT [][]float64
	// Best[d][a] is the faster homogeneous baseline (seconds).
	Best [][]float64
	// Speedup[d][a] = Best / BT.
	Speedup [][]float64
	// Schedules[d][a] is the selected schedule's rendering.
	Schedules [][]string
	// Geomean is over all cells; PerDevice[d] over that device's apps;
	// Max is the largest cell.
	Geomean   float64
	PerDevice []float64
	Max       float64
	// SpeedupVsCPU and SpeedupVsGPU aggregate against each homogeneous
	// baseline separately (the paper reports 2.72x over GPU-only and
	// 11.23x over CPU-only in Sec. 1.1).
	GeomeanVsCPU, GeomeanVsGPU float64
}

// Fig4 runs the full three-level optimization on every app-device combo
// and compares against the best homogeneous baseline. The 12-cell grid
// fans across the suite's worker pool (each cell's seeds derive from its
// combo names alone); aggregation and rendering stay serial, so results
// and report are identical at any worker count.
func (s *Suite) Fig4() (Fig4Result, Table3Result, string, error) {
	base, baseBody, err := s.Table3()
	if err != nil {
		return Fig4Result{}, base, "", err
	}
	res := Fig4Result{Devices: base.Devices, Apps: base.Apps}
	var all, vsCPU, vsGPU []float64

	type fig4Cell struct {
		bt  float64
		sch string
	}
	na := len(s.Apps)
	grid := make([]fig4Cell, len(s.Devices)*na)
	if err := s.forEach(len(grid), func(i int) error {
		dev, app := s.Devices[i/na], s.Apps[i%na]
		tabs := s.Tables(app, dev)
		opt := sched.New(app, dev, tabs)
		autoOpts := pipeline.Options{
			Tasks: s.Tasks, Warmup: s.Warmup,
			Seed: seedFor("fig4-autotune", app.Name, dev.Name),
		}
		_, _, best, err := opt.Optimize(sched.BetterTogether, autoOpts)
		if err != nil {
			return fmt.Errorf("fig4 %s/%s: %w", app.Name, dev.Name, err)
		}
		bt, err := s.Measure(app, dev, best.Schedule, "fig4-final")
		if err != nil {
			return err
		}
		grid[i] = fig4Cell{bt: bt, sch: best.Schedule.String()}
		return nil
	}); err != nil {
		return res, base, "", err
	}

	chart := report.NewBarChart("Fig 4: speedup of BetterTogether over best homogeneous baseline", 40)
	detail := report.NewTable("Selected schedules",
		"Device", "App", "BT (ms)", "Best base (ms)", "Speedup", "Schedule")

	for di, dev := range s.Devices {
		var btRow, bestRow, spRow []float64
		var schRow []string
		for ai, app := range s.Apps {
			c := grid[di*na+ai]
			cell := base.Cells[di][ai]
			sp := cell.Best() / c.bt
			btRow = append(btRow, c.bt)
			bestRow = append(bestRow, cell.Best())
			spRow = append(spRow, sp)
			schRow = append(schRow, c.sch)
			all = append(all, sp)
			vsCPU = append(vsCPU, cell.CPU/c.bt)
			vsGPU = append(vsGPU, cell.GPU/c.bt)
			if sp > res.Max {
				res.Max = sp
			}
			label := fmt.Sprintf("%s/%s", DeviceLabel(dev.Name), AppLabel(app.Name))
			chart.Add(label, sp)
			detail.AddRow(DeviceLabel(dev.Name), AppLabel(app.Name),
				report.Ms(c.bt), report.Ms(cell.Best()), report.F2(sp), c.sch)
		}
		res.BT = append(res.BT, btRow)
		res.Best = append(res.Best, bestRow)
		res.Speedup = append(res.Speedup, spRow)
		res.Schedules = append(res.Schedules, schRow)
		res.PerDevice = append(res.PerDevice, stats.GeoMean(spRow))
	}
	res.Geomean = stats.GeoMean(all)
	res.GeomeanVsCPU = stats.GeoMean(vsCPU)
	res.GeomeanVsGPU = stats.GeoMean(vsGPU)

	body := chart.Render() + "\n" + detail.Render() +
		fmt.Sprintf("\ngeomean speedup %.2fx (max %.2fx); vs CPU-only %.2fx; vs GPU-only %.2fx\n",
			res.Geomean, res.Max, res.GeomeanVsCPU, res.GeomeanVsGPU)
	for di, dn := range res.Devices {
		body += fmt.Sprintf("  %-12s geomean %.2fx\n", DeviceLabel(dn), res.PerDevice[di])
	}
	return res, base, baseBody + report.Section("Fig 4: overall heterogeneous performance", body), nil
}
