package experiments

import (
	"context"
	"fmt"

	"bettertogether/internal/core"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/report"
	"bettertogether/internal/sched"
	"bettertogether/internal/stats"
)

// EnergyResult quantifies the intro's energy motivation: joules per task
// for the BetterTogether schedule against the homogeneous baselines on
// every combo (extension experiment; the paper does not evaluate
// energy).
type EnergyResult struct {
	Devices, Apps []string
	// BTJ, CPUJ, GPUJ are energy per task in joules.
	BTJ, CPUJ, GPUJ [][]float64
	// GeomeanSavingsVsBest aggregates bestBaselineJ / btJ (>1 means the
	// heterogeneous schedule also saves energy).
	GeomeanSavingsVsBest float64
}

// ExtEnergy measures per-task energy for each strategy.
func (s *Suite) ExtEnergy() (EnergyResult, string, error) {
	res := EnergyResult{}
	for _, d := range s.Devices {
		res.Devices = append(res.Devices, d.Name)
	}
	for _, a := range s.Apps {
		res.Apps = append(res.Apps, a.Name)
	}
	t := report.NewTable("Extension: energy per task (J), lower is better",
		"Device", "App", "BetterTogether", "CPU-only", "GPU-only", "best-base/BT")
	var ratios []float64
	for _, dev := range s.Devices {
		var btRow, cpuRow, gpuRow []float64
		for _, app := range s.Apps {
			tabs := s.Tables(app, dev)
			opt := sched.New(app, dev, tabs)
			opts := pipeline.Options{Tasks: s.Tasks, Warmup: s.Warmup,
				Seed: seedFor("energy", app.Name, dev.Name)}
			_, tune, best, err := opt.Optimize(sched.BetterTogether, opts)
			if err != nil {
				return res, "", err
			}
			_ = tune
			energyOf := func(sch core.Schedule) (float64, error) {
				plan, err := pipeline.NewPlan(app, dev, sch)
				if err != nil {
					return 0, err
				}
				return simEngine.Run(context.Background(), plan, opts).EnergyPerTaskJ, nil
			}
			btJ, err := energyOf(best.Schedule)
			if err != nil {
				return res, "", err
			}
			cpuJ, err := energyOf(core.NewUniformSchedule(len(app.Stages), core.ClassBig))
			if err != nil {
				return res, "", err
			}
			gpuJ, err := energyOf(core.NewUniformSchedule(len(app.Stages), dev.GPUClass()))
			if err != nil {
				return res, "", err
			}
			bestBase := cpuJ
			if gpuJ < bestBase {
				bestBase = gpuJ
			}
			btRow = append(btRow, btJ)
			cpuRow = append(cpuRow, cpuJ)
			gpuRow = append(gpuRow, gpuJ)
			ratios = append(ratios, bestBase/btJ)
			t.AddRow(DeviceLabel(dev.Name), AppLabel(app.Name),
				fmt.Sprintf("%.4f", btJ), fmt.Sprintf("%.4f", cpuJ),
				fmt.Sprintf("%.4f", gpuJ), report.F2(bestBase/btJ))
		}
		res.BTJ = append(res.BTJ, btRow)
		res.CPUJ = append(res.CPUJ, cpuRow)
		res.GPUJ = append(res.GPUJ, gpuRow)
	}
	res.GeomeanSavingsVsBest = stats.GeoMean(ratios)
	body := t.Render() + fmt.Sprintf(
		"geomean energy ratio best-baseline/BT = %.2fx (BT saves energy when > 1)\n",
		res.GeomeanSavingsVsBest)
	return res, report.Section("Extension: energy per task", body), nil
}
