package experiments

import (
	"fmt"
	"math"

	"bettertogether/internal/core"
	"bettertogether/internal/report"
	"bettertogether/internal/sched"
	"bettertogether/internal/soc"
	"bettertogether/internal/stats"
)

// StrategyAccuracy is one strategy's predicted-vs-measured series over
// its top-K candidate schedules on one combo.
type StrategyAccuracy struct {
	Strategy  sched.Strategy
	Schedules []core.Schedule
	Predicted []float64
	Measured  []float64
	// Pearson is the correlation between the two series (NaN when
	// undefined, e.g. all predictions in one tier).
	Pearson float64
}

// accuracyFor measures the top-K candidates of one strategy on a combo.
func (s *Suite) accuracyFor(appName, devName string, strategy sched.Strategy) (StrategyAccuracy, error) {
	app, err := s.AppByName(appName)
	if err != nil {
		return StrategyAccuracy{}, err
	}
	dev, err := s.DeviceByName(devName)
	if err != nil {
		return StrategyAccuracy{}, err
	}
	opt := sched.New(app, dev, s.Tables(app, dev))
	cands := opt.Candidates(strategy)
	acc := StrategyAccuracy{Strategy: strategy}
	for _, c := range cands {
		m, err := s.Measure(app, dev, c.Schedule, "accuracy-"+strategy.String())
		if err != nil {
			return acc, err
		}
		acc.Schedules = append(acc.Schedules, c.Schedule)
		acc.Predicted = append(acc.Predicted, c.Predicted)
		acc.Measured = append(acc.Measured, m)
	}
	if r, err := stats.Pearson(acc.Predicted, acc.Measured); err == nil {
		acc.Pearson = r
	} else {
		acc.Pearson = math.NaN()
	}
	return acc, nil
}

// Fig5Result holds the three strategies' series for AlexNet-sparse on
// the Pixel.
type Fig5Result struct {
	BT, LatencyOnly, Isolated StrategyAccuracy
}

// Fig5 reproduces the predicted-vs-measured comparison of the top-20
// schedules under the three optimization strategies (paper Fig. 5). The
// three strategies fan across the suite's worker pool; each derives its
// measurement seeds from the strategy name, so results are identical at
// any worker count.
func (s *Suite) Fig5() (Fig5Result, string, error) {
	var res Fig5Result
	slots := []*StrategyAccuracy{&res.BT, &res.LatencyOnly, &res.Isolated}
	strategies := []sched.Strategy{sched.BetterTogether, sched.LatencyOnlyHeavy, sched.LatencyOnlyIsolated}
	if err := s.forEach(len(strategies), func(i int) error {
		acc, err := s.accuracyFor("alexnet-sparse", soc.Pixel7a, strategies[i])
		if err != nil {
			return err
		}
		*slots[i] = acc
		return nil
	}); err != nil {
		return res, "", err
	}

	var body string
	for _, acc := range []StrategyAccuracy{res.BT, res.LatencyOnly, res.Isolated} {
		t := report.NewTable(
			fmt.Sprintf("strategy %s (Pearson %.4f)", acc.Strategy, acc.Pearson),
			"#", "Predicted (ms)", "Measured (ms)", "Schedule")
		for i := range acc.Predicted {
			t.AddRow(fmt.Sprintf("%d", i+1), report.Ms(acc.Predicted[i]),
				report.Ms(acc.Measured[i]), acc.Schedules[i].String())
		}
		body += t.Render() + "\n"
	}
	return res, report.Section("Fig 5: predicted vs measured, AlexNet-sparse on Pixel", body), nil
}

// Fig6Result is the correlation heatmap pair: rows are apps, columns are
// devices.
type Fig6Result struct {
	Apps    []string
	Devices []string
	// BT[a][d] and Isolated[a][d] are Pearson correlations of the top-K
	// schedules of each strategy.
	BT, Isolated [][]float64
	// Row/column/global arithmetic means, NaN-skipping.
	BTAvg, IsolatedAvg float64
}

// Fig6 reproduces the accuracy heatmaps over every app-device combo for
// BetterTogether (Fig. 6a) and the prior-work isolated-table strategy
// (Fig. 6b). The app×device×strategy grid fans across the suite's
// worker pool; aggregation walks the cells in grid order afterwards, so
// heatmaps and means are identical at any worker count.
func (s *Suite) Fig6() (Fig6Result, string, error) {
	res := Fig6Result{}
	for _, a := range s.Apps {
		res.Apps = append(res.Apps, a.Name)
	}
	for _, d := range s.Devices {
		res.Devices = append(res.Devices, d.Name)
	}

	strategies := []sched.Strategy{sched.BetterTogether, sched.LatencyOnlyIsolated}
	nd, ns := len(res.Devices), len(strategies)
	pearson := make([]float64, len(res.Apps)*nd*ns)
	if err := s.forEach(len(pearson), func(i int) error {
		app, dev, strat := res.Apps[i/(nd*ns)], res.Devices[i/ns%nd], strategies[i%ns]
		acc, err := s.accuracyFor(app, dev, strat)
		if err != nil {
			return err
		}
		pearson[i] = acc.Pearson
		return nil
	}); err != nil {
		return res, "", err
	}

	var btAll, isoAll []float64
	for ai := range res.Apps {
		var btRow, isoRow []float64
		for di := range res.Devices {
			bt := pearson[(ai*nd+di)*ns]
			iso := pearson[(ai*nd+di)*ns+1]
			btRow = append(btRow, bt)
			isoRow = append(isoRow, iso)
			if !math.IsNaN(bt) {
				btAll = append(btAll, bt)
			}
			if !math.IsNaN(iso) {
				isoAll = append(isoAll, iso)
			}
		}
		res.BT = append(res.BT, btRow)
		res.Isolated = append(res.Isolated, isoRow)
	}
	res.BTAvg = stats.Mean(btAll)
	res.IsolatedAvg = stats.Mean(isoAll)

	cols := make([]string, len(res.Devices))
	for i, d := range res.Devices {
		cols[i] = DeviceLabel(d)
	}
	rows := make([]string, len(res.Apps))
	for i, a := range res.Apps {
		rows[i] = AppLabel(a)
	}
	hmBT := report.Heatmap{Title: "Fig 6a: BetterTogether correlation", RowLabels: rows, ColLabels: cols, Values: res.BT}
	hmIso := report.Heatmap{Title: "Fig 6b: isolated-table latency-only correlation", RowLabels: rows, ColLabels: cols, Values: res.Isolated}
	body := hmBT.Render() + fmt.Sprintf("mean %.4f\n\n", res.BTAvg) +
		hmIso.Render() + fmt.Sprintf("mean %.4f\n", res.IsolatedAvg)
	return res, report.Section("Fig 6: model vs real-world correlation", body), nil
}

// Table4Result holds the autotuning case study: the top schedules of the
// BT optimizer on AlexNet-sparse/Pixel with measured and predicted
// latencies.
type Table4Result struct {
	Predicted []float64
	Measured  []float64
	// Speedup[i] is Measured[0] / Measured[i]: the gain of picking
	// candidate i over the predicted-best default.
	Speedup []float64
	// BestIndex is the measured-best candidate.
	BestIndex int
	// AutotuneGain = Measured[0] / Measured[BestIndex].
	AutotuneGain float64
}

// Table4 reproduces the autotuning analysis (paper Table 4): measured vs
// predicted latency for the top-10 candidates, and the speedup obtained
// by executing candidates instead of trusting the predicted ranking.
func (s *Suite) Table4() (Table4Result, string, error) {
	acc, err := s.accuracyFor("alexnet-sparse", soc.Pixel7a, sched.BetterTogether)
	if err != nil {
		return Table4Result{}, "", err
	}
	n := len(acc.Predicted)
	if n > 10 {
		n = 10
	}
	res := Table4Result{
		Predicted: acc.Predicted[:n],
		Measured:  acc.Measured[:n],
	}
	for i := 0; i < n; i++ {
		res.Speedup = append(res.Speedup, acc.Measured[0]/acc.Measured[i])
		if acc.Measured[i] < acc.Measured[res.BestIndex] {
			res.BestIndex = i
		}
	}
	res.AutotuneGain = acc.Measured[0] / acc.Measured[res.BestIndex]

	t := report.NewTable("Table 4: top-10 schedules, AlexNet-sparse on Pixel",
		"Schedule #", "Measured (ms)", "Predicted (ms)", "Speedup vs #1")
	for i := 0; i < n; i++ {
		mark := ""
		if i == res.BestIndex {
			mark = " *"
		}
		t.AddRow(fmt.Sprintf("%d%s", i+1, mark), report.Ms(res.Measured[i]),
			report.Ms(res.Predicted[i]), report.F2(res.Speedup[i]))
	}
	body := t.Render() + fmt.Sprintf(
		"(* measured best) autotuning gain over predicted-best: %.2fx\n", res.AutotuneGain)
	return res, report.Section("Table 4: autotuning solutions", body), nil
}

// IntroClaimResult is the Sec. 1 motivating number: how far the
// prior-work model (isolated profiles, latency-only optimization)
// mispredicts its own chosen schedule on AlexNet-sparse/Pixel, compared
// with the interference-aware model's error on its own pick.
type IntroClaimResult struct {
	IsolatedSchedule  core.Schedule
	IsolatedPredicted float64
	IsolatedMeasured  float64
	// IsolatedErrPct = (Measured-Predicted)/Predicted × 100. The paper
	// reports +57% (measured slower than predicted); the sign depends on
	// which quirk dominates the chosen schedule's bottleneck — on our
	// simulated Pixel the GPU clock boost dominates, so the isolated
	// model errs in the optimistic direction instead. The claim under
	// test is the magnitude.
	IsolatedErrPct float64
	BTSchedule     core.Schedule
	BTPredicted    float64
	BTMeasured     float64
	BTErrPct       float64
	// The correlations over each strategy's top-K candidates are the
	// robust version of the claim: the isolated model cannot rank
	// schedules on this device, the interference-aware model can.
	IsolatedPearson, BTPearson float64
}

// IntroClaim reproduces the introduction's misprediction measurement.
func (s *Suite) IntroClaim() (IntroClaimResult, string, error) {
	iso, err := s.accuracyFor("alexnet-sparse", soc.Pixel7a, sched.LatencyOnlyIsolated)
	if err != nil {
		return IntroClaimResult{}, "", err
	}
	bt, err := s.accuracyFor("alexnet-sparse", soc.Pixel7a, sched.BetterTogether)
	if err != nil {
		return IntroClaimResult{}, "", err
	}
	if len(iso.Predicted) == 0 || len(bt.Predicted) == 0 {
		return IntroClaimResult{}, "", fmt.Errorf("experiments: no candidates")
	}
	res := IntroClaimResult{
		IsolatedSchedule:  iso.Schedules[0],
		IsolatedPredicted: iso.Predicted[0],
		IsolatedMeasured:  iso.Measured[0],
		BTSchedule:        bt.Schedules[0],
		BTPredicted:       bt.Predicted[0],
		BTMeasured:        bt.Measured[0],
	}
	res.IsolatedErrPct = (res.IsolatedMeasured - res.IsolatedPredicted) / res.IsolatedPredicted * 100
	res.BTErrPct = (res.BTMeasured - res.BTPredicted) / res.BTPredicted * 100
	res.IsolatedPearson = iso.Pearson
	res.BTPearson = bt.Pearson
	body := fmt.Sprintf(
		"isolated model's own pick:  %s\n  predicted %.2f ms, measured %.2f ms -> %+.1f%% error; top-%d Pearson %.3f\n"+
			"interference-aware pick:    %s\n  predicted %.2f ms, measured %.2f ms -> %+.1f%% error; top-%d Pearson %.3f\n",
		res.IsolatedSchedule, res.IsolatedPredicted*1e3, res.IsolatedMeasured*1e3, res.IsolatedErrPct,
		len(iso.Predicted), res.IsolatedPearson,
		res.BTSchedule, res.BTPredicted*1e3, res.BTMeasured*1e3, res.BTErrPct,
		len(bt.Predicted), res.BTPearson)
	return res, report.Section("E0: intro claim — isolated-model misprediction", body), nil
}
