package experiments

import (
	"fmt"

	"bettertogether/internal/core"
	"bettertogether/internal/profiler"
	"bettertogether/internal/report"
	"bettertogether/internal/stats"
)

// Fig7Result holds the interference-heavy / isolated latency ratios per
// device and PU class, averaged over the three applications.
type Fig7Result struct {
	Devices []string
	// Ratios[device][pu] is the mean heavy/isolated latency ratio.
	Ratios map[string]map[core.PUClass]float64
	// MaxStage reports the largest single-stage ratio seen on the Pixel,
	// corresponding to the paper's "up to 2.25x" observation (Sec. 3.2).
	MaxStage struct {
		App   string
		Stage string
		PU    core.PUClass
		Ratio float64
	}
}

// Fig7 reproduces the interference-impact figure: profile every app on
// every device in both modes and average the per-PU ratios.
func (s *Suite) Fig7() (Fig7Result, string, error) {
	res := Fig7Result{Ratios: map[string]map[core.PUClass]float64{}}
	var body string
	for _, dev := range s.Devices {
		res.Devices = append(res.Devices, dev.Name)
		perPU := map[core.PUClass][]float64{}
		for _, app := range s.Apps {
			tabs := s.Tables(app, dev)
			for pu, r := range profiler.InterferenceRatios(tabs) {
				perPU[pu] = append(perPU[pu], r)
			}
			if dev.Name == "pixel7a" {
				stage, pu, ratio := profiler.MaxStageRatio(tabs)
				if ratio > res.MaxStage.Ratio {
					res.MaxStage.App = app.Name
					res.MaxStage.Stage = stage
					res.MaxStage.PU = pu
					res.MaxStage.Ratio = ratio
				}
			}
		}
		agg := map[core.PUClass]float64{}
		t := report.NewTable(fmt.Sprintf("%s: heavy/isolated latency ratio per PU", DeviceLabel(dev.Name)),
			"PU", "Ratio", "Direction")
		for _, pu := range dev.Classes() {
			r := stats.Mean(perPU[pu])
			agg[pu] = r
			dir := "~ neutral"
			if r > 1.05 {
				dir = "slowdown under contention"
			} else if r < 0.95 {
				dir = "SPEEDUP under contention"
			}
			t.AddRow(string(pu), report.F2(r), dir)
		}
		res.Ratios[dev.Name] = agg
		body += t.Render() + "\n"
	}
	body += fmt.Sprintf("largest single-stage ratio on Pixel: %.2fx (%s/%s on %s)\n",
		res.MaxStage.Ratio, res.MaxStage.App, res.MaxStage.Stage, res.MaxStage.PU)
	return res, report.Section("Fig 7: impact of interference", body), nil
}
