package experiments

import (
	"fmt"

	"bettertogether/internal/core"
	"bettertogether/internal/profiler"
	"bettertogether/internal/report"
	"bettertogether/internal/stats"
)

// Fig7Result holds the interference-heavy / isolated latency ratios per
// device and PU class, averaged over the three applications.
type Fig7Result struct {
	Devices []string
	// Ratios[device][pu] is the mean heavy/isolated latency ratio.
	Ratios map[string]map[core.PUClass]float64
	// MaxStage reports the largest single-stage ratio seen on the Pixel,
	// corresponding to the paper's "up to 2.25x" observation (Sec. 3.2).
	MaxStage struct {
		App   string
		Stage string
		PU    core.PUClass
		Ratio float64
	}
}

// Fig7 reproduces the interference-impact figure: profile every app on
// every device in both modes and average the per-PU ratios. The
// device×app profiling grid fans across the suite's worker pool;
// aggregation walks the cells in fleet order afterwards, so ratios and
// report are identical at any worker count.
func (s *Suite) Fig7() (Fig7Result, string, error) {
	res := Fig7Result{Ratios: map[string]map[core.PUClass]float64{}}

	type fig7Cell struct {
		ratios map[core.PUClass]float64
		// Pixel-only largest single-stage ratio.
		stage string
		pu    core.PUClass
		max   float64
	}
	na := len(s.Apps)
	grid := make([]fig7Cell, len(s.Devices)*na)
	if err := s.forEach(len(grid), func(i int) error {
		dev, app := s.Devices[i/na], s.Apps[i%na]
		tabs := s.Tables(app, dev)
		c := fig7Cell{ratios: profiler.InterferenceRatios(tabs)}
		if dev.Name == "pixel7a" {
			c.stage, c.pu, c.max = profiler.MaxStageRatio(tabs)
		}
		grid[i] = c
		return nil
	}); err != nil {
		return res, "", err
	}

	var body string
	for di, dev := range s.Devices {
		res.Devices = append(res.Devices, dev.Name)
		perPU := map[core.PUClass][]float64{}
		for ai, app := range s.Apps {
			c := grid[di*na+ai]
			for _, pu := range dev.Classes() {
				if r, ok := c.ratios[pu]; ok {
					perPU[pu] = append(perPU[pu], r)
				}
			}
			if c.max > res.MaxStage.Ratio {
				res.MaxStage.App = app.Name
				res.MaxStage.Stage = c.stage
				res.MaxStage.PU = c.pu
				res.MaxStage.Ratio = c.max
			}
		}
		agg := map[core.PUClass]float64{}
		t := report.NewTable(fmt.Sprintf("%s: heavy/isolated latency ratio per PU", DeviceLabel(dev.Name)),
			"PU", "Ratio", "Direction")
		for _, pu := range dev.Classes() {
			if len(perPU[pu]) == 0 {
				// No app measured a defined ratio for this class (see
				// profiler.InterferenceRatios); report it explicitly
				// instead of averaging an empty slice into NaN.
				t.AddRow(string(pu), "n/a", "no measurable stage")
				continue
			}
			r := stats.Mean(perPU[pu])
			agg[pu] = r
			dir := "~ neutral"
			if r > 1.05 {
				dir = "slowdown under contention"
			} else if r < 0.95 {
				dir = "SPEEDUP under contention"
			}
			t.AddRow(string(pu), report.F2(r), dir)
		}
		res.Ratios[dev.Name] = agg
		body += t.Render() + "\n"
	}
	body += fmt.Sprintf("largest single-stage ratio on Pixel: %.2fx (%s/%s on %s)\n",
		res.MaxStage.Ratio, res.MaxStage.App, res.MaxStage.Stage, res.MaxStage.PU)
	return res, report.Section("Fig 7: impact of interference", body), nil
}
