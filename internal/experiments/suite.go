// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 5) on the simulated device fleet. Each experiment
// returns a structured result (consumed by tests and EXPERIMENTS.md) plus
// a rendered report. The per-experiment index lives in DESIGN.md.
package experiments

import (
	"fmt"
	"hash/fnv"

	"bettertogether/internal/apps/alexnet"
	"bettertogether/internal/apps/octree"
	"bettertogether/internal/core"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/profiler"
	"bettertogether/internal/soc"
)

// Paper-style display labels (Fig. 6 uses CIFAR-D/CIFAR-S/Tree).
var appLabels = map[string]string{
	"alexnet-dense":  "CIFAR-D",
	"alexnet-sparse": "CIFAR-S",
	"octree-uniform": "Tree",
}

// deviceLabels are the column labels of the heatmaps.
var deviceLabels = map[string]string{
	soc.Pixel7a:   "Google",
	soc.OnePlus11: "OnePlus",
	soc.Jetson:    "Jetson",
	soc.JetsonLP:  "Jetson (LP)",
}

// Suite owns the evaluation fleet and caches profiling runs, which are
// shared across experiments exactly as the paper reuses one profiling
// table per app-device pair.
type Suite struct {
	Devices []*soc.Device
	Apps    []*core.Application
	// ProfCfg configures every profiling run.
	ProfCfg profiler.Config
	// Tasks and Warmup configure every measured execution; the paper
	// measures 30 tasks per run after warmup.
	Tasks, Warmup int

	tables map[string]profiler.Tables
}

// NewSuite assembles the paper's 3 applications × 4 devices.
func NewSuite() *Suite {
	return &Suite{
		Devices: soc.Catalog(),
		Apps: []*core.Application{
			alexnet.NewDense(alexnet.DefaultSeed, 1),
			alexnet.NewSparse(alexnet.DefaultSeed, alexnet.DefaultSparseBatch),
			octree.NewApplication(octree.DefaultPoints, octree.UniformGen{}),
		},
		ProfCfg: profiler.Config{Reps: profiler.DefaultReps, Seed: 9000},
		Tasks:   30,
		Warmup:  5,
	}
}

// AppLabel returns the paper-style label for an application name.
func AppLabel(name string) string {
	if l, ok := appLabels[name]; ok {
		return l
	}
	return name
}

// DeviceLabel returns the paper-style label for a device name.
func DeviceLabel(name string) string {
	if l, ok := deviceLabels[name]; ok {
		return l
	}
	return name
}

// seedFor derives a stable per-purpose seed from identifying strings.
func seedFor(parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		_, _ = h.Write([]byte(p))
		_, _ = h.Write([]byte{0})
	}
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// Tables returns (and caches) both profiling tables for a combo.
func (s *Suite) Tables(app *core.Application, dev *soc.Device) profiler.Tables {
	if s.tables == nil {
		s.tables = make(map[string]profiler.Tables)
	}
	key := app.Name + "@" + dev.Name
	if t, ok := s.tables[key]; ok {
		return t
	}
	cfg := s.ProfCfg
	cfg.Seed = s.ProfCfg.Seed + seedFor("profile", key)%100000
	t := profiler.ProfileBoth(app, dev, cfg)
	s.tables[key] = t
	return t
}

// runOpts builds deterministic execution options for a combo and purpose.
func (s *Suite) runOpts(purpose string, app *core.Application, dev *soc.Device, extra string) pipeline.Options {
	return pipeline.Options{
		Tasks:  s.Tasks,
		Warmup: s.Warmup,
		Seed:   seedFor(purpose, app.Name, dev.Name, extra),
	}
}

// Measure executes a schedule on a combo and returns the per-task
// latency in seconds.
func (s *Suite) Measure(app *core.Application, dev *soc.Device, sch core.Schedule, purpose string) (float64, error) {
	plan, err := pipeline.NewPlan(app, dev, sch)
	if err != nil {
		return 0, fmt.Errorf("experiments: %s on %s: %w", app.Name, dev.Name, err)
	}
	r := pipeline.Simulate(plan, s.runOpts(purpose, app, dev, sch.Key()))
	return r.PerTask, nil
}

// AppByName returns the suite application with the given name.
func (s *Suite) AppByName(name string) (*core.Application, error) {
	for _, a := range s.Apps {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown app %q", name)
}

// DeviceByName returns the suite device with the given name.
func (s *Suite) DeviceByName(name string) (*soc.Device, error) {
	for _, d := range s.Devices {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown device %q", name)
}
