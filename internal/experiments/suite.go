// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 5) on the simulated device fleet. Each experiment
// returns a structured result (consumed by tests and EXPERIMENTS.md) plus
// a rendered report. The per-experiment index lives in DESIGN.md.
package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"bettertogether/internal/apps/alexnet"
	"bettertogether/internal/apps/octree"
	"bettertogether/internal/core"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/profiler"
	"bettertogether/internal/soc"
)

// simEngine runs every experiment measurement: the paper's numbers all
// come from the deterministic simulator.
var simEngine pipeline.SimEngine

// Paper-style display labels (Fig. 6 uses CIFAR-D/CIFAR-S/Tree).
var appLabels = map[string]string{
	"alexnet-dense":  "CIFAR-D",
	"alexnet-sparse": "CIFAR-S",
	"octree-uniform": "Tree",
}

// deviceLabels are the column labels of the heatmaps.
var deviceLabels = map[string]string{
	soc.Pixel7a:   "Google",
	soc.OnePlus11: "OnePlus",
	soc.Jetson:    "Jetson",
	soc.JetsonLP:  "Jetson (LP)",
}

// Suite owns the evaluation fleet and caches profiling runs, which are
// shared across experiments exactly as the paper reuses one profiling
// table per app-device pair. A Suite is safe for concurrent use: the
// profiling cache is guarded by a mutex with per-combo singleflight, so
// one combo never profiles twice even under concurrent callers.
type Suite struct {
	Devices []*soc.Device
	Apps    []*core.Application
	// ProfCfg configures every profiling run.
	ProfCfg profiler.Config
	// Tasks and Warmup configure every measured execution; the paper
	// measures 30 tasks per run after warmup.
	Tasks, Warmup int
	// Workers bounds how many experiment-grid cells run concurrently:
	// 0 or 1 runs serially (the default), negative selects GOMAXPROCS,
	// and larger values are capped at GOMAXPROCS. Every cell derives its
	// seeds from identifying strings alone, so results are identical at
	// any worker count — pinned by test against the serial path.
	Workers int

	mu     sync.Mutex
	tables map[string]*tableEntry
}

// tableEntry is one profiling-cache slot; its once gives per-key
// singleflight without holding the cache mutex across a profiling run.
type tableEntry struct {
	once   sync.Once
	tables profiler.Tables
}

// NewSuite assembles the paper's 3 applications × 4 devices.
func NewSuite() *Suite {
	return &Suite{
		Devices: soc.Catalog(),
		Apps: []*core.Application{
			alexnet.NewDense(alexnet.DefaultSeed, 1),
			alexnet.NewSparse(alexnet.DefaultSeed, alexnet.DefaultSparseBatch),
			octree.NewApplication(octree.DefaultPoints, octree.UniformGen{}),
		},
		ProfCfg: profiler.Config{Reps: profiler.DefaultReps, Seed: 9000},
		Tasks:   30,
		Warmup:  5,
	}
}

// AppLabel returns the paper-style label for an application name.
func AppLabel(name string) string {
	if l, ok := appLabels[name]; ok {
		return l
	}
	return name
}

// DeviceLabel returns the paper-style label for a device name.
func DeviceLabel(name string) string {
	if l, ok := deviceLabels[name]; ok {
		return l
	}
	return name
}

// seedFor derives a stable per-purpose seed from identifying strings.
func seedFor(parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		_, _ = h.Write([]byte(p))
		_, _ = h.Write([]byte{0})
	}
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// Tables returns (and caches) both profiling tables for a combo. It is
// safe for concurrent use: the cache map is mutex-guarded and each combo
// profiles exactly once (per-key singleflight) — concurrent callers for
// the same combo block on the first profiling run and share its result.
func (s *Suite) Tables(app *core.Application, dev *soc.Device) profiler.Tables {
	key := app.Name + "@" + dev.Name
	s.mu.Lock()
	if s.tables == nil {
		s.tables = make(map[string]*tableEntry)
	}
	e, ok := s.tables[key]
	if !ok {
		e = &tableEntry{}
		s.tables[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		cfg := s.ProfCfg
		cfg.Seed = s.ProfCfg.Seed + seedFor("profile", key)%100000
		e.tables = profiler.ProfileBoth(app, dev, cfg)
	})
	return e.tables
}

// workers resolves the grid worker bound for n cells.
func (s *Suite) workers(n int) int {
	w := s.Workers
	if w < 0 || w > runtime.GOMAXPROCS(0) {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEach runs fn(0..n-1) — one call per experiment-grid cell — across
// the suite's worker pool, serially when Workers is 0 or 1. Cells must
// write results into caller-owned slots indexed by i; aggregation and
// rendering stay serial in the caller, which is what keeps parallel
// output byte-identical to the serial path. When cells fail, the error
// with the lowest index is returned regardless of completion order.
func (s *Suite) forEach(n int, fn func(i int) error) error {
	w := s.workers(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := make(map[int]error)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := fn(i); err != nil {
					mu.Lock()
					errs[i] = err
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if len(errs) == 0 {
		return nil
	}
	keys := make([]int, 0, len(errs))
	for i := range errs {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	return errs[keys[0]]
}

// runOpts builds deterministic execution options for a combo and purpose.
func (s *Suite) runOpts(purpose string, app *core.Application, dev *soc.Device, extra string) pipeline.Options {
	return pipeline.Options{
		Tasks:  s.Tasks,
		Warmup: s.Warmup,
		Seed:   seedFor(purpose, app.Name, dev.Name, extra),
	}
}

// Measure executes a schedule on a combo and returns the per-task
// latency in seconds.
func (s *Suite) Measure(app *core.Application, dev *soc.Device, sch core.Schedule, purpose string) (float64, error) {
	plan, err := pipeline.NewPlan(app, dev, sch)
	if err != nil {
		return 0, fmt.Errorf("experiments: %s on %s: %w", app.Name, dev.Name, err)
	}
	r := simEngine.Run(context.Background(), plan, s.runOpts(purpose, app, dev, sch.Key()))
	return r.PerTask, nil
}

// AppByName returns the suite application with the given name.
func (s *Suite) AppByName(name string) (*core.Application, error) {
	for _, a := range s.Apps {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown app %q", name)
}

// DeviceByName returns the suite device with the given name.
func (s *Suite) DeviceByName(name string) (*soc.Device, error) {
	for _, d := range s.Devices {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown device %q", name)
}
