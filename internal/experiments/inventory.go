package experiments

import (
	"fmt"

	"bettertogether/internal/core"
	"bettertogether/internal/report"
)

// Table1 renders the application-characteristics inventory (paper
// Table 1).
func (s *Suite) Table1() string {
	char := map[string]string{
		"alexnet-dense":  "Dense Linear Algebra",
		"alexnet-sparse": "Sparse Linear Algebra",
		"octree-uniform": "Mixed Sparse & Dense",
	}
	input := map[string]string{
		"alexnet-dense":  "Image",
		"alexnet-sparse": "Image",
		"octree-uniform": "PC",
	}
	t := report.NewTable("Table 1: characteristics of evaluated applications",
		"Application", "Input", "Stages", "Characteristics")
	for _, app := range s.Apps {
		t.AddRow(AppLabel(app.Name), input[app.Name],
			fmt.Sprintf("%d", len(app.Stages)), char[app.Name])
	}
	return t.Render()
}

// Table2 renders the hardware inventory of the simulated fleet (paper
// Table 2).
func (s *Suite) Table2() string {
	t := report.NewTable("Table 2: hardware specifications of tested edge platforms",
		"Device", "PU class", "Kind", "Cores", "GHz", "Core IDs")
	for _, d := range s.Devices {
		first := true
		for i := range d.PUs {
			pu := &d.PUs[i]
			name := ""
			if first {
				name = d.Label
				first = false
			}
			ids := "-"
			if pu.Kind == core.KindCPU {
				ids = fmt.Sprint(pu.CoreIDs)
			}
			t.AddRow(name, string(pu.Class), pu.Kind.String(),
				fmt.Sprintf("%d", pu.Cores), fmt.Sprintf("%.3g", pu.BaseGHz), ids)
		}
	}
	return t.Render()
}
