package experiments

import (
	"fmt"

	"bettertogether/internal/core"
	"bettertogether/internal/obs"
	"bettertogether/internal/onlineprof"
	"bettertogether/internal/report"
	btruntime "bettertogether/internal/runtime"
	"bettertogether/internal/soc"
	"bettertogether/pkg/btapps"
)

// Drift-convergence experiment defaults.
const (
	// DefaultDriftErrorFactor scales the model's estimates for the target
	// PU class before planning. Values below 1 underestimate the class, so
	// the candidate generator over-assigns it — the planner then schedules
	// stages it should not, observes them running 1/factor slower than
	// modeled, and the feedback loop has something real to correct.
	DefaultDriftErrorFactor = 0.25
	// DefaultDriftK shrinks the candidate pool so the distorted model's
	// ranking actually excludes the oracle schedule: autotuning measures
	// candidates on the true simulator, so with a large pool the measured
	// pick would absorb the injected error before feedback could.
	DefaultDriftK = 2
	// DefaultDriftTasks and DefaultDriftWaveTasks give the session enough
	// wave boundaries to detect drift and converge within one run.
	DefaultDriftTasks     = 48
	DefaultDriftWaveTasks = 6
)

// DriftConvergenceConfig parameterizes the online-profiling
// drift-convergence experiment.
type DriftConvergenceConfig struct {
	// Device is the SoC to run on ("" selects Pixel 7a).
	Device string
	// App is the application ("" selects octree).
	App string
	// TargetClass is the PU class whose model estimates are distorted
	// ("" selects gpu).
	TargetClass core.PUClass
	// ErrorFactor scales the target class's estimates before planning
	// (<= 0 selects DefaultDriftErrorFactor; 1 disables the injection).
	ErrorFactor float64
	// Tasks and WaveTasks shape the session (<= 0 selects the defaults).
	Tasks     int
	WaveTasks int
	// K is the candidate pool per planning pass (<= 0 selects
	// DefaultDriftK).
	K int
	// Seed drives the planning noise streams.
	Seed int64
}

func (c DriftConvergenceConfig) withDefaults() DriftConvergenceConfig {
	if c.Device == "" {
		c.Device = soc.Pixel7a
	}
	if c.App == "" {
		c.App = "octree"
	}
	if c.TargetClass == "" {
		c.TargetClass = core.ClassGPU
	}
	if c.ErrorFactor <= 0 {
		c.ErrorFactor = DefaultDriftErrorFactor
	}
	if c.Tasks <= 0 {
		c.Tasks = DefaultDriftTasks
	}
	if c.WaveTasks <= 0 {
		c.WaveTasks = DefaultDriftWaveTasks
	}
	if c.K <= 0 {
		c.K = DefaultDriftK
	}
	return c
}

// driftEstimatorConfig tunes the feedback loop for short deterministic
// runs: the floor and hysteresis must fit inside a few waves.
var driftEstimatorConfig = onlineprof.Config{MinSamples: 3, Hysteresis: 2}

// DriftRun is one runtime pass of the experiment: the schedule the
// planner picked at admission, the schedule the session ended on, and
// the feedback loop's counters.
type DriftRun struct {
	Initial      string
	Final        string
	DriftReplans int
	Stats        obs.OnlineProfStats
}

// DriftConvergenceResult is the experiment outcome. Oracle is the
// clean-model run (also the zero-injected-error control: its
// DriftReplans must be 0); Distorted is the run with ErrorFactor
// injected. Converged reports that the distorted run's final schedule
// matches the oracle's.
type DriftConvergenceResult struct {
	Device      string
	App         string
	TargetClass core.PUClass
	ErrorFactor float64
	Oracle      DriftRun
	Distorted   DriftRun
	Converged   bool
}

// DriftConvergence measures the online-profiling feedback loop
// end-to-end. The oracle run plans with the true model and defines the
// correct schedule. The distorted run plans with the target class's
// estimates scaled by ErrorFactor — the candidate generator then
// over-assigns that class and picks a wrong schedule — and runs with
// online profiling enabled: the estimator observes the injected class
// running 1/ErrorFactor slower than modeled, latches drift, and the
// wave-boundary replan solves with the learned correction overlaid,
// converging back to the oracle schedule. Everything runs on the
// deterministic simulator: the same config yields byte-identical
// results on every run.
func DriftConvergence(cfg DriftConvergenceConfig) (DriftConvergenceResult, string, error) {
	cfg = cfg.withDefaults()
	res := DriftConvergenceResult{
		Device:      cfg.Device,
		App:         cfg.App,
		TargetClass: cfg.TargetClass,
		ErrorFactor: cfg.ErrorFactor,
	}

	run := func(factor float64) (DriftRun, error) {
		var out DriftRun
		dev, err := soc.DeviceByName(cfg.Device)
		if err != nil {
			return out, err
		}
		app, err := btapps.ByName(cfg.App)
		if err != nil {
			return out, err
		}
		opts := []btruntime.Option{
			btruntime.WithSeed(cfg.Seed),
			btruntime.WithPlanningBudget(btruntime.DefaultProfileReps, btruntime.DefaultAutotuneTasks, cfg.K),
			btruntime.WithOnlineProfiling(driftEstimatorConfig),
		}
		if factor != 1 {
			target := cfg.TargetClass
			opts = append(opts, btruntime.WithModelAdjust(
				fmt.Sprintf("inject:%s*%g", target, factor),
				func(_ string, pu core.PUClass, sec float64) float64 {
					if pu == target {
						return sec * factor
					}
					return sec
				},
			))
		}
		rt, err := btruntime.New(dev, opts...)
		if err != nil {
			return out, err
		}
		defer rt.Close()
		s, err := rt.Admit(app, btruntime.AdmitOptions{Tasks: cfg.Tasks, WaveTasks: cfg.WaveTasks})
		if err != nil {
			return out, err
		}
		out.Initial = s.Schedule().String()
		if r := s.Wait(); r.Err != nil {
			return out, r.Err
		}
		out.Final = s.Schedule().String()
		out.DriftReplans = rt.ReplansFromDrift()
		out.Stats, _ = rt.OnlineProfStats()
		return out, nil
	}

	var err error
	if res.Oracle, err = run(1); err != nil {
		return res, "", fmt.Errorf("oracle run: %w", err)
	}
	if res.Distorted, err = run(cfg.ErrorFactor); err != nil {
		return res, "", fmt.Errorf("distorted run: %w", err)
	}
	res.Converged = res.Distorted.Final == res.Oracle.Final

	t := report.NewTable(fmt.Sprintf("Drift convergence: %s on %s (%s x%g)",
		cfg.App, DeviceLabel(cfg.Device), cfg.TargetClass, cfg.ErrorFactor),
		"run", "initial schedule", "final schedule", "drift re-plans", "drifts", "observations")
	t.AddRow("oracle", res.Oracle.Initial, res.Oracle.Final,
		fmt.Sprintf("%d", res.Oracle.DriftReplans),
		fmt.Sprintf("%d", res.Oracle.Stats.DriftsTriggered),
		fmt.Sprintf("%d", res.Oracle.Stats.Observations))
	t.AddRow("distorted", res.Distorted.Initial, res.Distorted.Final,
		fmt.Sprintf("%d", res.Distorted.DriftReplans),
		fmt.Sprintf("%d", res.Distorted.Stats.DriftsTriggered),
		fmt.Sprintf("%d", res.Distorted.Stats.Observations))
	body := report.Section("Drift: online-profiling convergence",
		t.Render()+fmt.Sprintf("\nconverged to oracle: %v\n", res.Converged))
	return res, body, nil
}
