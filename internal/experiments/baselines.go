package experiments

import (
	"bettertogether/internal/core"
	"bettertogether/internal/report"
	"bettertogether/internal/soc"
)

// BaselineCell is one device-app entry of Table 3: homogeneous CPU
// (big-cores-only) and GPU baselines in seconds per task.
type BaselineCell struct {
	CPU, GPU float64
}

// Best returns the faster baseline.
func (c BaselineCell) Best() float64 {
	if c.CPU < c.GPU {
		return c.CPU
	}
	return c.GPU
}

// Table3Result holds the baseline grid.
type Table3Result struct {
	Devices []string
	Apps    []string
	// Cells[d][a] corresponds to Devices[d] × Apps[a].
	Cells [][]BaselineCell
}

// Cell returns the entry for the named device and app.
func (r Table3Result) Cell(device, app string) BaselineCell {
	for d, dn := range r.Devices {
		if dn != device {
			continue
		}
		for a, an := range r.Apps {
			if an == app {
				return r.Cells[d][a]
			}
		}
	}
	return BaselineCell{}
}

// Table3 measures the homogeneous baselines: every stage on the big CPU
// cluster, and every stage on the GPU (paper Sec. 5.1: "For the CPU
// baselines, we use only the big cores, as they consistently deliver the
// best performance"). The device×app grid fans across the suite's worker
// pool; aggregation and rendering stay serial, so the report is
// byte-identical at any worker count.
func (s *Suite) Table3() (Table3Result, string, error) {
	res := Table3Result{}
	for _, d := range s.Devices {
		res.Devices = append(res.Devices, d.Name)
	}
	for _, a := range s.Apps {
		res.Apps = append(res.Apps, a.Name)
	}

	na := len(s.Apps)
	grid := make([]BaselineCell, len(s.Devices)*na)
	if err := s.forEach(len(grid), func(i int) error {
		dev, app := s.Devices[i/na], s.Apps[i%na]
		cpu, err := s.measureUniform(app, dev, core.ClassBig, "table3-cpu")
		if err != nil {
			return err
		}
		gpu, err := s.measureUniform(app, dev, dev.GPUClass(), "table3-gpu")
		if err != nil {
			return err
		}
		grid[i] = BaselineCell{CPU: cpu, GPU: gpu}
		return nil
	}); err != nil {
		return res, "", err
	}

	t := report.NewTable("Table 3: raw baseline latency (ms per task), CPU | GPU",
		append([]string{"Device"}, labelApps(res.Apps)...)...)
	for di, dev := range s.Devices {
		row := make([]BaselineCell, len(s.Apps))
		cells := []string{DeviceLabel(dev.Name)}
		for ai := range s.Apps {
			c := grid[di*na+ai]
			row[ai] = c
			cell := ""
			if c.GPU < c.CPU {
				cell = report.Ms(c.CPU) + " | *" + report.Ms(c.GPU)
			} else {
				cell = "*" + report.Ms(c.CPU) + " | " + report.Ms(c.GPU)
			}
			cells = append(cells, cell)
		}
		res.Cells = append(res.Cells, row)
		t.AddRow(cells...)
	}
	body := t.Render() + "(* marks the faster baseline)\n"
	return res, report.Section("Table 3: homogeneous baselines", body), nil
}

// measureUniform runs the uniform schedule through the standard
// measurement protocol (sched.MeasureUniform with suite-controlled
// seeding).
func (s *Suite) measureUniform(app *core.Application, dev *soc.Device, pu core.PUClass, purpose string) (float64, error) {
	return s.Measure(app, dev, core.NewUniformSchedule(len(app.Stages), pu), purpose)
}

func labelApps(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = AppLabel(n)
	}
	return out
}
