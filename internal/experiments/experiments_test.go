package experiments

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"bettertogether/internal/core"
	"bettertogether/internal/profiler"
	"bettertogether/internal/soc"
)

// withProcs raises GOMAXPROCS for the duration of a test so the
// GOMAXPROCS-capped worker pools actually run parallel on single-CPU CI.
func withProcs(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// The suite caches profiling tables, so tests share one instance where
// read-only and build fresh ones when checking determinism.

func TestSuiteInventory(t *testing.T) {
	s := NewSuite()
	if len(s.Devices) != 4 || len(s.Apps) != 3 {
		t.Fatalf("fleet = %d devices × %d apps", len(s.Devices), len(s.Apps))
	}
	if s.Table1() == "" || s.Table2() == "" {
		t.Error("inventory tables empty")
	}
	if !strings.Contains(s.Table2(), "Pixel") {
		t.Error("Table 2 missing devices")
	}
}

func TestLabels(t *testing.T) {
	if AppLabel("alexnet-dense") != "CIFAR-D" || AppLabel("octree-uniform") != "Tree" {
		t.Error("app labels wrong")
	}
	if DeviceLabel(soc.Pixel7a) != "Google" {
		t.Error("device labels wrong")
	}
	if AppLabel("other") != "other" || DeviceLabel("other") != "other" {
		t.Error("unknown labels should pass through")
	}
}

func TestFig1Shape(t *testing.T) {
	s := NewSuite()
	res, body, err := s.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if body == "" || len(res.Seconds) != 3 {
		t.Fatal("malformed result")
	}
	idx := func(pu core.PUClass) int {
		for j, p := range res.PUs {
			if p == pu {
				return j
			}
		}
		t.Fatalf("missing PU %s", pu)
		return -1
	}
	big, gpu := idx(core.ClassBig), idx(core.ClassGPU)
	// Paper Fig. 1: for sorting the GPU performs poorly; for the radix
	// tree the GPU is fastest.
	sort, tree := res.Seconds[0], res.Seconds[1]
	if sort[gpu] <= sort[big] {
		t.Errorf("sort: GPU %.3g !> big %.3g", sort[gpu], sort[big])
	}
	for j := range res.PUs {
		if j != gpu && tree[gpu] >= tree[j] {
			t.Errorf("radix-tree: GPU %.3g not fastest (vs %s %.3g)", tree[gpu], res.PUs[j], tree[j])
		}
	}
}

func TestTable3Shape(t *testing.T) {
	s := NewSuite()
	res, body, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if body == "" {
		t.Fatal("empty report")
	}
	// Dense: the GPU wins on every device (paper Table 3, bold column).
	for _, dev := range res.Devices {
		c := res.Cell(dev, "alexnet-dense")
		if c.GPU >= c.CPU {
			t.Errorf("%s dense: GPU %.4g !< CPU %.4g", dev, c.GPU, c.CPU)
		}
	}
	// Sparse: GPU wins or ties everywhere; the Pixel is the near-tie.
	for _, dev := range res.Devices {
		c := res.Cell(dev, "alexnet-sparse")
		if c.GPU > c.CPU*1.05 {
			t.Errorf("%s sparse: GPU %.4g not <= CPU %.4g", dev, c.GPU, c.CPU)
		}
	}
	pixelSparse := res.Cell(soc.Pixel7a, "alexnet-sparse")
	if r := pixelSparse.CPU / pixelSparse.GPU; r < 0.9 || r > 1.25 {
		t.Errorf("pixel sparse CPU/GPU = %.2f, want near tie", r)
	}
	// Octree: CPU wins on the phones, GPU wins on both Jetsons — the
	// crossover the paper highlights.
	for _, dev := range []string{soc.Pixel7a, soc.OnePlus11} {
		c := res.Cell(dev, "octree-uniform")
		if c.CPU >= c.GPU {
			t.Errorf("%s octree: CPU %.4g !< GPU %.4g", dev, c.CPU, c.GPU)
		}
	}
	for _, dev := range []string{soc.Jetson, soc.JetsonLP} {
		c := res.Cell(dev, "octree-uniform")
		if c.GPU >= c.CPU {
			t.Errorf("%s octree: GPU %.4g !< CPU %.4g", dev, c.GPU, c.CPU)
		}
	}
	// Octree on mobile: CPU advantage should be a material factor
	// (paper: 4.1x on Pixel, 3.7x on OnePlus).
	if r := res.Cell(soc.Pixel7a, "octree-uniform"); r.GPU/r.CPU < 1.5 {
		t.Errorf("pixel octree GPU/CPU = %.2f, want >= 1.5", r.GPU/r.CPU)
	}
}

func TestFig4Shape(t *testing.T) {
	s := NewSuite()
	res, _, body, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if body == "" {
		t.Fatal("empty report")
	}
	// Headline: positive geomean speedup, nearly all cells >= ~1 (the
	// paper had exactly one slowdown out of 12).
	if res.Geomean < 1.2 {
		t.Errorf("geomean %.2f, want >= 1.2", res.Geomean)
	}
	slowdowns := 0
	for di := range res.Devices {
		for ai := range res.Apps {
			if res.Speedup[di][ai] < 0.97 {
				slowdowns++
			}
		}
	}
	if slowdowns > 1 {
		t.Errorf("%d slowdown cells, paper allows at most 1", slowdowns)
	}
	// Ordering across devices: phones gain most, Jetson least (paper:
	// Pixel 5.10x > OnePlus 3.55x > Jetson LP 1.15x >= Jetson 1.09x).
	dev := map[string]float64{}
	for di, dn := range res.Devices {
		dev[dn] = res.PerDevice[di]
	}
	if dev[soc.Pixel7a] <= dev[soc.Jetson] || dev[soc.OnePlus11] <= dev[soc.Jetson] {
		t.Errorf("mobile geomeans (%v, %v) should exceed Jetson (%v)",
			dev[soc.Pixel7a], dev[soc.OnePlus11], dev[soc.Jetson])
	}
	// The maximum comes from an octree-on-phone cell, as in the paper.
	maxDev, maxApp, maxV := "", "", 0.0
	for di := range res.Devices {
		for ai := range res.Apps {
			if res.Speedup[di][ai] > maxV {
				maxV = res.Speedup[di][ai]
				maxDev, maxApp = res.Devices[di], res.Apps[ai]
			}
		}
	}
	if maxApp != "octree-uniform" || (maxDev != soc.Pixel7a && maxDev != soc.OnePlus11) {
		t.Errorf("max speedup %.2f at %s/%s, expected octree on a phone", maxV, maxDev, maxApp)
	}
	// CPU-only aggregate exceeds GPU-only aggregate (paper: 11.23x vs
	// 2.72x).
	if res.GeomeanVsCPU <= res.GeomeanVsGPU {
		t.Errorf("vsCPU %.2f should exceed vsGPU %.2f", res.GeomeanVsCPU, res.GeomeanVsGPU)
	}
}

func TestFig5Shape(t *testing.T) {
	s := NewSuite()
	res, body, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if body == "" {
		t.Fatal("empty report")
	}
	if len(res.BT.Predicted) == 0 || len(res.Isolated.Predicted) == 0 {
		t.Fatal("empty candidate series")
	}
	// The interference-aware model must correlate far better than the
	// isolated model on this combo (paper Fig. 5a vs 5c).
	if res.BT.Pearson < 0.7 {
		t.Errorf("BT Pearson %.3f, want >= 0.7", res.BT.Pearson)
	}
	if !(res.BT.Pearson > res.Isolated.Pearson) {
		t.Errorf("BT %.3f !> isolated %.3f", res.BT.Pearson, res.Isolated.Pearson)
	}
}

func TestFig6Shape(t *testing.T) {
	s := NewSuite()
	res, body, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if body == "" {
		t.Fatal("empty report")
	}
	// Paper: BT mean 0.92; isolated clearly worse.
	if res.BTAvg < 0.85 {
		t.Errorf("BT mean correlation %.3f, want >= 0.85", res.BTAvg)
	}
	if res.BTAvg <= res.IsolatedAvg {
		t.Errorf("BT mean %.3f !> isolated mean %.3f", res.BTAvg, res.IsolatedAvg)
	}
	// Per-cell: BT must never be materially worse than isolated.
	for ai := range res.Apps {
		for di := range res.Devices {
			bt, iso := res.BT[ai][di], res.Isolated[ai][di]
			if math.IsNaN(bt) {
				t.Errorf("%s/%s: BT correlation undefined", res.Apps[ai], res.Devices[di])
				continue
			}
			if !math.IsNaN(iso) && bt < iso-0.1 {
				t.Errorf("%s/%s: BT %.3f well below isolated %.3f",
					res.Apps[ai], res.Devices[di], bt, iso)
			}
			if bt < 0.5 {
				t.Errorf("%s/%s: BT correlation %.3f too weak", res.Apps[ai], res.Devices[di], bt)
			}
		}
	}
}

func TestTable4Shape(t *testing.T) {
	s := NewSuite()
	res, body, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if body == "" {
		t.Fatal("empty report")
	}
	if len(res.Measured) == 0 || len(res.Measured) != len(res.Predicted) {
		t.Fatal("malformed series")
	}
	// Predictions must be non-decreasing (ranked) and cluster into
	// tiers: at least two candidates share a predicted latency within
	// 1% (the paper's "performance tiers" observation).
	tiered := false
	for i := 1; i < len(res.Predicted); i++ {
		if res.Predicted[i] < res.Predicted[i-1]*(1-1e-9) {
			t.Error("predictions not ranked")
		}
		if res.Predicted[i] < res.Predicted[i-1]*1.01 {
			tiered = true
		}
	}
	if !tiered {
		t.Error("no performance tiers among top candidates")
	}
	// Autotuning never loses: gain >= 1, and the best index minimizes
	// the measured series.
	if res.AutotuneGain < 1 {
		t.Errorf("autotune gain %.3f < 1", res.AutotuneGain)
	}
	for i, m := range res.Measured {
		if m < res.Measured[res.BestIndex] {
			t.Errorf("BestIndex %d not minimal (candidate %d)", res.BestIndex, i)
		}
	}
}

func TestIntroClaimShape(t *testing.T) {
	s := NewSuite()
	res, body, err := s.IntroClaim()
	if err != nil {
		t.Fatal(err)
	}
	if body == "" {
		t.Fatal("empty report")
	}
	// The isolated model must mispredict materially (paper: 57%)...
	if math.Abs(res.IsolatedErrPct) < 5 {
		t.Errorf("isolated error %.1f%%, want a material misprediction", res.IsolatedErrPct)
	}
	// ...and be far worse at *ranking* than the interference-aware model.
	if !(res.BTPearson > res.IsolatedPearson+0.2) {
		t.Errorf("BT Pearson %.3f should dominate isolated %.3f", res.BTPearson, res.IsolatedPearson)
	}
}

func TestFig7Shape(t *testing.T) {
	s := NewSuite()
	res, body, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if body == "" {
		t.Fatal("empty report")
	}
	pixel := res.Ratios[soc.Pixel7a]
	oneplus := res.Ratios[soc.OnePlus11]
	jetson := res.Ratios[soc.Jetson]
	lp := res.Ratios[soc.JetsonLP]
	// Directions per paper Fig. 7.
	for _, c := range []core.PUClass{core.ClassBig, core.ClassMedium, core.ClassLittle} {
		if pixel[c] <= 1 {
			t.Errorf("pixel %s ratio %.2f, want slowdown", c, pixel[c])
		}
	}
	if pixel[core.ClassGPU] >= 1 {
		t.Errorf("pixel gpu ratio %.2f, want speedup", pixel[core.ClassGPU])
	}
	if oneplus[core.ClassLittle] >= 1 || oneplus[core.ClassGPU] >= 1 {
		t.Errorf("oneplus little/gpu ratios %.2f/%.2f, want speedups",
			oneplus[core.ClassLittle], oneplus[core.ClassGPU])
	}
	if oneplus[core.ClassBig] <= 1 {
		t.Errorf("oneplus big ratio %.2f, want slowdown", oneplus[core.ClassBig])
	}
	for name, r := range map[string]map[core.PUClass]float64{"jetson": jetson, "jetson-lp": lp} {
		for c, v := range r {
			if v <= 1 {
				t.Errorf("%s %s ratio %.2f, want slowdown", name, c, v)
			}
		}
	}
	// LP-mode GPU suffers more than normal-mode GPU (paper: 1.74 vs 1.19).
	if lp[core.ClassGPU] <= jetson[core.ClassGPU] {
		t.Errorf("LP gpu ratio %.2f should exceed normal %.2f",
			lp[core.ClassGPU], jetson[core.ClassGPU])
	}
	// Stage-level effect on the Pixel is material (paper: up to 2.25x).
	if res.MaxStage.Ratio < 1.3 {
		t.Errorf("max stage ratio %.2f, want >= 1.3", res.MaxStage.Ratio)
	}
}

func TestSuiteDeterminism(t *testing.T) {
	a, _, _, err := NewSuite().Fig4()
	if err != nil {
		t.Fatal(err)
	}
	b, _, _, err := NewSuite().Fig4()
	if err != nil {
		t.Fatal(err)
	}
	for di := range a.Speedup {
		for ai := range a.Speedup[di] {
			if a.Speedup[di][ai] != b.Speedup[di][ai] {
				t.Fatalf("Fig4 not reproducible at [%d][%d]", di, ai)
			}
		}
	}
}

func TestTablesCached(t *testing.T) {
	s := NewSuite()
	app := s.Apps[0]
	dev := s.Devices[0]
	t1 := s.Tables(app, dev)
	t2 := s.Tables(app, dev)
	if t1.Heavy != t2.Heavy {
		t.Error("tables not cached")
	}
}

// TestTablesConcurrentSingleflight hammers the profiling cache from many
// goroutines (run under -race via `make race`): every caller for a combo
// must get the same cached tables, i.e. each combo profiles exactly once.
func TestTablesConcurrentSingleflight(t *testing.T) {
	withProcs(t, 4)
	s := NewSuite()
	const callers = 8
	got := make([]profiler.Tables, callers*len(s.Apps)*len(s.Devices))
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		for ai, app := range s.Apps {
			for di, dev := range s.Devices {
				wg.Add(1)
				go func(slot int, app *core.Application, dev *soc.Device) {
					defer wg.Done()
					got[slot] = s.Tables(app, dev)
				}(((c*len(s.Apps))+ai)*len(s.Devices)+di, app, dev)
			}
		}
	}
	wg.Wait()
	for ai, app := range s.Apps {
		for di, dev := range s.Devices {
			want := s.Tables(app, dev)
			for c := 0; c < callers; c++ {
				slot := ((c*len(s.Apps))+ai)*len(s.Devices) + di
				if got[slot].Heavy != want.Heavy || got[slot].Isolated != want.Isolated {
					t.Fatalf("%s/%s: caller %d got a different table instance (combo profiled twice)",
						app.Name, dev.Name, c)
				}
			}
		}
	}
}

// TestParallelSuiteMatchesSerial is the determinism pin for the parallel
// experiment grids: a parallel suite must produce byte-identical reports
// and deeply equal result structs to a serial one.
func TestParallelSuiteMatchesSerial(t *testing.T) {
	withProcs(t, 4)
	serial, par := NewSuite(), NewSuite()
	par.Workers = -1 // GOMAXPROCS-bounded

	sF7, sF7Body, err := serial.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	pF7, pF7Body, err := par.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sF7, pF7) {
		t.Error("Fig7 results diverge between serial and parallel")
	}
	if sF7Body != pF7Body {
		t.Error("Fig7 report diverges between serial and parallel")
	}

	sF4, sT3, sF4Body, err := serial.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	pF4, pT3, pF4Body, err := par.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sF4, pF4) || !reflect.DeepEqual(sT3, pT3) {
		t.Error("Fig4/Table3 results diverge between serial and parallel")
	}
	if sF4Body != pF4Body {
		t.Error("Fig4 report diverges between serial and parallel")
	}

	sF5, sF5Body, err := serial.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	pF5, pF5Body, err := par.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sF5, pF5) || sF5Body != pF5Body {
		t.Error("Fig5 diverges between serial and parallel")
	}
}

// TestForEachLowestIndexError pins the error contract: whatever the
// completion order, the failing cell with the lowest index reports.
func TestForEachLowestIndexError(t *testing.T) {
	withProcs(t, 4)
	for _, workers := range []int{1, -1} {
		s := NewSuite()
		s.Workers = workers
		err := s.forEach(16, func(i int) error {
			if i >= 3 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 3 failed" {
			t.Errorf("Workers=%d: got %v, want cell 3's error", workers, err)
		}
		if err := s.forEach(4, func(int) error { return nil }); err != nil {
			t.Errorf("Workers=%d: unexpected error %v", workers, err)
		}
	}
}

func TestLookupErrors(t *testing.T) {
	s := NewSuite()
	if _, err := s.AppByName("nope"); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := s.DeviceByName("nope"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestAblationDataParallel(t *testing.T) {
	s := NewSuite()
	res, body, err := s.AblationDataParallel()
	if err != nil {
		t.Fatal(err)
	}
	if body == "" {
		t.Fatal("empty report")
	}
	// Pipelining must win in aggregate (the Sec. 1 argument), and must
	// win specifically on the mixed-pattern octree workload on every
	// device, where stage-to-PU affinity matters most.
	if res.GeomeanDPOverBT <= 1.0 {
		t.Errorf("DP/BT geomean %.2f, want > 1", res.GeomeanDPOverBT)
	}
	treeIdx := -1
	for ai, a := range res.Apps {
		if a == "octree-uniform" {
			treeIdx = ai
		}
	}
	for di := range res.Devices {
		if res.DP[di][treeIdx] <= res.BT[di][treeIdx] {
			t.Errorf("%s tree: DP %.4g !> BT %.4g", res.Devices[di],
				res.DP[di][treeIdx], res.BT[di][treeIdx])
		}
	}
}

func TestAblationK(t *testing.T) {
	s := NewSuite()
	res, body, err := s.AblationK()
	if err != nil {
		t.Fatal(err)
	}
	if body == "" || len(res.K) == 0 {
		t.Fatal("empty result")
	}
	// Larger pools can only help (autotuning picks the min over a
	// superset) up to measurement noise on the shared seed.
	for i := 1; i < len(res.K); i++ {
		if res.Measured[i] > res.Measured[i-1]*1.0001 {
			t.Errorf("K=%d measured %.4g worse than K=%d %.4g",
				res.K[i], res.Measured[i], res.K[i-1], res.Measured[i-1])
		}
	}
}

func TestAblationBuffers(t *testing.T) {
	s := NewSuite()
	res, body, err := s.AblationBuffers()
	if err != nil {
		t.Fatal(err)
	}
	if body == "" {
		t.Fatal("empty report")
	}
	// Depth 1 serializes the chunks; enough buffers must recover a
	// material pipelining speedup on a multi-chunk schedule.
	chunks := len(res.Schedule.Chunks())
	if chunks < 2 {
		t.Skip("top schedule not pipelined")
	}
	last := res.PerTask[len(res.PerTask)-1]
	if sp := res.PerTask[0] / last; sp < 1.5 {
		t.Errorf("multi-buffering speedup %.2f, want >= 1.5", sp)
	}
	// Saturation: beyond chunks+1 buffers, throughput stops improving
	// materially.
	var atSat float64
	for i, b := range res.Buffers {
		if b >= chunks+1 {
			atSat = res.PerTask[i]
			break
		}
	}
	if atSat > 0 && last < atSat*0.95 {
		t.Errorf("throughput still improving well past saturation depth")
	}
}

func TestAblationReps(t *testing.T) {
	s := NewSuite()
	res, body, err := s.AblationReps()
	if err != nil {
		t.Fatal(err)
	}
	if body == "" || len(res.Reps) != 4 {
		t.Fatal("empty result")
	}
	for i, r := range res.Pearson {
		if math.IsNaN(r) || r < 0.5 {
			t.Errorf("reps=%d Pearson %.3f unusable", res.Reps[i], r)
		}
	}
}

func TestExtEnergy(t *testing.T) {
	s := NewSuite()
	res, body, err := s.ExtEnergy()
	if err != nil {
		t.Fatal(err)
	}
	if body == "" {
		t.Fatal("empty report")
	}
	for di := range res.Devices {
		for ai := range res.Apps {
			for _, v := range []float64{res.BTJ[di][ai], res.CPUJ[di][ai], res.GPUJ[di][ai]} {
				if v <= 0 {
					t.Fatalf("%s/%s: non-positive energy", res.Devices[di], res.Apps[ai])
				}
			}
		}
	}
	// Structural claims: on the Jetsons the BT schedule converges to the
	// homogeneous optimum for the CNNs (same energy); on dense AlexNet
	// the GPU is both faster and vastly more efficient than the CPU.
	for di, d := range res.Devices {
		for ai, a := range res.Apps {
			if a == "alexnet-dense" && res.GPUJ[di][ai] >= res.CPUJ[di][ai] {
				t.Errorf("%s dense: GPU energy %.4g !< CPU %.4g", d, res.GPUJ[di][ai], res.CPUJ[di][ai])
			}
		}
	}
	// The headline tradeoff: the geomean ratio must be a sane number,
	// and BT must never burn more than ~3x the best baseline anywhere
	// (it buys latency with bounded energy cost).
	if res.GeomeanSavingsVsBest <= 0.3 || res.GeomeanSavingsVsBest > 3 {
		t.Errorf("geomean energy ratio %.2f implausible", res.GeomeanSavingsVsBest)
	}
}

func TestAblationSlack(t *testing.T) {
	s := NewSuite()
	res, body, err := s.AblationSlack()
	if err != nil {
		t.Fatal(err)
	}
	if body == "" || len(res.Slack) != 5 {
		t.Fatal("empty result")
	}
	// Tighter slack can only shrink the pool.
	for i := 1; i < len(res.Slack); i++ {
		if res.PoolSize[i] < res.PoolSize[i-1] {
			t.Errorf("pool shrank as slack grew: %v", res.PoolSize)
		}
	}
	// Over-constraining (slack 0.05) must cost real latency versus the
	// default (0.4): the filter needs room to admit fast-but-imbalanced
	// schedules it can then autotune.
	if res.BestMs[0] <= res.BestMs[2] {
		t.Errorf("tightest slack %.4g did not cost latency vs default %.4g",
			res.BestMs[0], res.BestMs[2])
	}
}

func TestExtVision(t *testing.T) {
	s := NewSuite()
	res, body, err := s.ExtVision()
	if err != nil {
		t.Fatal(err)
	}
	if body == "" || len(res.Devices) != 4 {
		t.Fatal("malformed result")
	}
	for i := range res.Devices {
		if res.BT[i] <= 0 || res.CPU[i] <= 0 || res.GPU[i] <= 0 {
			t.Fatalf("%s: non-positive latency", res.Devices[i])
		}
		// The specialized schedule never loses to both baselines.
		if res.Speedup[i] < 0.97 {
			t.Errorf("%s: vision speedup %.2f, BT lost to a baseline", res.Devices[i], res.Speedup[i])
		}
	}
	if res.Geomean < 1.0 {
		t.Errorf("vision geomean %.2f < 1", res.Geomean)
	}
}
