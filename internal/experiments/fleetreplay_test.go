package experiments

import (
	"strings"
	"testing"

	"bettertogether/internal/fleet"
	"bettertogether/internal/obs/sessiontrace"
)

// TestFleetReplayDefaults runs the canonical 3-node experiment once and
// checks the outcome's accounting invariants and report shape.
func TestFleetReplayDefaults(t *testing.T) {
	out, err := FleetReplay(FleetReplayConfig{Seed: 1})
	if err != nil {
		t.Fatalf("FleetReplay: %v", err)
	}
	r := out.Result
	if r.Arrivals != 12 || r.Placed+r.Rejected != r.Arrivals {
		t.Fatalf("accounting broken: %+v", r)
	}
	if len(out.Trace.Arrivals) != r.Arrivals {
		t.Fatalf("trace length %d, result arrivals %d", len(out.Trace.Arrivals), r.Arrivals)
	}
	if out.Stats.Nodes != 3 {
		t.Fatalf("default registry size = %d, want 3", out.Stats.Nodes)
	}
	body := out.Render()
	for _, want := range []string{
		"Placement decisions", "Fleet nodes", "Fleet replay summary",
		"rejection rate", "p99 latency (s)",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("render lacks %q", want)
		}
	}
}

// TestFleetReplaySuppliedTrace pins that an explicit trace bypasses the
// generator entirely.
func TestFleetReplaySuppliedTrace(t *testing.T) {
	tr := fleet.Trace{Arrivals: []fleet.Arrival{
		{At: 0, App: "octree", Dwell: 1, Tasks: 2},
		{At: 2, App: "alexnet-sparse", Dwell: 1, Tasks: 2},
	}}
	out, err := FleetReplay(FleetReplayConfig{Trace: tr, Seed: 5})
	if err != nil {
		t.Fatalf("FleetReplay: %v", err)
	}
	if out.Result.Arrivals != 2 || out.Result.Placed != 2 {
		t.Fatalf("supplied trace not replayed: %+v", out.Result)
	}
}

// TestFleetReplaySLOWiring pins the experiment-level SLO plumbing: the
// deadline reaches every session, the outcome carries the merged
// runtime counters, and the report grows the gated attainment rows —
// while a deadline-free run's report stays free of them.
func TestFleetReplaySLOWiring(t *testing.T) {
	tracer := sessiontrace.New(sessiontrace.Config{SampleRate: 1, Seed: 1})
	out, err := FleetReplay(FleetReplayConfig{Seed: 1, SLODeadline: 3, SessionTrace: tracer})
	if err != nil {
		t.Fatalf("FleetReplay: %v", err)
	}
	if out.Result.SLO == nil {
		t.Fatal("no SLO section in the replay result")
	}
	if !out.SLOEnabled || out.SLO.Sessions != out.Result.SLO.Sessions {
		t.Fatalf("outcome SLO %+v (enabled=%v) disagrees with result %+v",
			out.SLO, out.SLOEnabled, out.Result.SLO)
	}
	if len(tracer.Snapshot()) == 0 {
		t.Fatal("tracer saw no sessions through the experiment wiring")
	}
	body := out.Render()
	for _, want := range []string{"slo attained", "slo p99 latency (s)"} {
		if !strings.Contains(body, want) {
			t.Errorf("render lacks %q", want)
		}
	}

	plain, err := FleetReplay(FleetReplayConfig{Seed: 1})
	if err != nil {
		t.Fatalf("FleetReplay: %v", err)
	}
	if plain.SLOEnabled || plain.Result.SLO != nil {
		t.Fatal("deadline-free run reports SLO state")
	}
	if strings.Contains(plain.Render(), "slo ") {
		t.Fatal("deadline-free report carries SLO rows")
	}
}
