package experiments

import (
	"fmt"
	"strings"
	"time"

	"bettertogether/internal/benchjson"
	"bettertogether/internal/core"
	"bettertogether/internal/fleet"
	"bettertogether/internal/report"
	"bettertogether/internal/runtime"
	"bettertogether/pkg/btapps"
)

// FleetScaleConfig parameterizes the placement-throughput scaling
// sweep: how fast the fleet routes arrivals as the registry grows, with
// the banded headroom index against the exhaustive O(nodes) rank.
type FleetScaleConfig struct {
	// Sizes are the registry sizes to sweep (empty selects 10, 100,
	// 1000 — the fleet-scale trajectory points).
	Sizes []int
	// ArrivalsPerNode scales the workload with the registry so every
	// size sees the same per-node load (<= 0 selects 2).
	ArrivalsPerNode int
	// App is the arriving application (empty selects octree). Sessions
	// are admitted held with a pinned all-big-core schedule, so the
	// measurement isolates the placement sweep from the planning
	// pipeline.
	App string
	// IndexBands forwards to the banded fleet's Config.IndexBands
	// (0 selects the default).
	IndexBands int
	// Seed drives the node runtimes.
	Seed int64
}

func (c FleetScaleConfig) withDefaults() FleetScaleConfig {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{10, 100, 1000}
	}
	if c.ArrivalsPerNode <= 0 {
		c.ArrivalsPerNode = 2
	}
	if c.App == "" {
		c.App = "octree"
	}
	return c
}

// FleetScalePoint is one registry size's measurement.
type FleetScalePoint struct {
	// Nodes is the registry size; Arrivals how many placements ran per
	// mode.
	Nodes    int
	Arrivals int
	// BandedNs and ExhaustiveNs are mean wall nanoseconds per placement
	// for the two sweep implementations; Speedup their ratio
	// (exhaustive/banded, > 1 means the index wins).
	BandedNs     float64
	ExhaustiveNs float64
	Speedup      float64
}

// FleetScaleResult is the sweep across sizes.
type FleetScaleResult struct {
	Points []FleetScalePoint
}

// Benches renders the sweep as github-action-benchmark samples — the
// BENCH_9.json payload. Placement latencies carry the ns/op unit;
// the per-size speedups are ratios. Wall-clock dependent, so the rows
// record the trajectory rather than gate CI.
func (r FleetScaleResult) Benches() []benchjson.Bench {
	var out []benchjson.Bench
	for _, p := range r.Points {
		extra := fmt.Sprintf("%d placements over %d nodes", p.Arrivals, p.Nodes)
		out = append(out,
			benchjson.Bench{Name: fmt.Sprintf("fleet-scale/place/nodes=%d/index=banded", p.Nodes),
				Value: p.BandedNs, Unit: "ns/op", Extra: extra},
			benchjson.Bench{Name: fmt.Sprintf("fleet-scale/place/nodes=%d/index=exhaustive", p.Nodes),
				Value: p.ExhaustiveNs, Unit: "ns/op", Extra: extra},
			benchjson.Bench{Name: fmt.Sprintf("fleet-scale/speedup/nodes=%d", p.Nodes),
				Value: p.Speedup, Unit: "x", Extra: extra},
		)
	}
	return out
}

// fleetScaleSpec spreads a registry size across the three phone/edge
// device classes so the sweep ranks a heterogeneous fleet, not n copies
// of one headroom profile.
func fleetScaleSpec(n int) []fleet.NodeSpec {
	devices := []string{"pixel7a", "oneplus11", "jetson"}
	counts := make([]int, len(devices))
	for i := 0; i < n; i++ {
		counts[i%len(devices)]++
	}
	var specs []fleet.NodeSpec
	for i, d := range devices {
		if counts[i] > 0 {
			specs = append(specs, fleet.NodeSpec{Device: d, Count: counts[i]})
		}
	}
	return specs
}

// fleetScaleRun times ArrivalsPerNode*nodes held placements on a fresh
// fleet and returns mean wall nanoseconds per placement.
func fleetScaleRun(cfg FleetScaleConfig, nodes, indexBands int) (float64, int, error) {
	app, err := btapps.ByName(cfg.App)
	if err != nil {
		return 0, 0, err
	}
	sched := core.Schedule{Assign: make([]core.PUClass, len(app.Stages))}
	for i := range sched.Assign {
		sched.Assign[i] = core.ClassBig
	}
	f, err := fleet.New(fleet.Config{
		Nodes:      fleetScaleSpec(nodes),
		Seed:       cfg.Seed,
		IndexBands: indexBands,
	})
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()

	arrivals := cfg.ArrivalsPerNode * nodes
	start := time.Now()
	for i := 0; i < arrivals; i++ {
		_, err := f.Place(app, runtime.AdmitOptions{
			Name:     fmt.Sprintf("%s#%d", cfg.App, i),
			Tasks:    2,
			Hold:     true,
			Schedule: &sched,
		})
		if err != nil {
			return 0, 0, fmt.Errorf("fleet-scale: %d nodes, arrival %d: %w", nodes, i, err)
		}
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(arrivals), arrivals, nil
}

// FleetScale sweeps registry sizes and measures placement throughput
// for the banded index against the exhaustive rank. Placement outcomes
// of the two modes are pinned identical by the fleet package's
// equivalence test; this experiment records what the equivalence costs.
func FleetScale(cfg FleetScaleConfig) (FleetScaleResult, string, error) {
	cfg = cfg.withDefaults()
	var res FleetScaleResult
	for _, n := range cfg.Sizes {
		if n <= 0 {
			return res, "", fmt.Errorf("fleet-scale: non-positive size %d", n)
		}
		bandedNs, arrivals, err := fleetScaleRun(cfg, n, cfg.IndexBands)
		if err != nil {
			return res, "", err
		}
		exhaustiveNs, _, err := fleetScaleRun(cfg, n, -1)
		if err != nil {
			return res, "", err
		}
		p := FleetScalePoint{
			Nodes:        n,
			Arrivals:     arrivals,
			BandedNs:     bandedNs,
			ExhaustiveNs: exhaustiveNs,
		}
		if bandedNs > 0 {
			p.Speedup = exhaustiveNs / bandedNs
		}
		res.Points = append(res.Points, p)
	}

	var b strings.Builder
	tab := report.NewTable("Fleet placement scaling",
		"nodes", "placements", "banded ns/place", "exhaustive ns/place", "speedup")
	for _, p := range res.Points {
		tab.AddRow(
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%d", p.Arrivals),
			fmt.Sprintf("%.0f", p.BandedNs),
			fmt.Sprintf("%.0f", p.ExhaustiveNs),
			fmt.Sprintf("%.2fx", p.Speedup),
		)
	}
	b.WriteString(tab.Render())
	return res, b.String(), nil
}
