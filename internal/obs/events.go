// Package obs is the exportable observability layer over the framework's
// in-process instrumentation: the metrics collectors (internal/metrics)
// and execution timelines (internal/trace) stay the recording surfaces,
// and this package makes what they capture visible outside the process —
// as a bounded typed event stream, as Prometheus text exposition, as
// Chrome trace_event JSON loadable in Perfetto/chrome://tracing, as a
// JSON metrics snapshot, and through an opt-in introspection HTTP server
// (Serve) that cmd/btrun mounts with -listen.
//
// The design constraint throughout is non-perturbation: everything here
// is pull-only or opt-in. Exporters read quiescent (or atomically
// readable) collectors; event emission is a single short critical
// section with no allocation, gated on an Options/Config field that
// defaults to off; the Sim engine's virtual timeline is bit-identical
// with and without a stream attached (pinned by test).
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an Event.
type Kind uint8

// Event kinds. RunStart/RunEnd bracket one engine execution; StageDone,
// QueueStall and PanicRecovered are engine-level; Admit, Reject, Replan,
// WaveStart, WaveEnd and SessionEnd are runtime-level.
const (
	// KindRunStart marks an engine run entering its executor.
	KindRunStart Kind = iota
	// KindRunEnd marks an engine run finalized (Detail carries the error,
	// if any).
	KindRunEnd
	// KindStageDone is one completed stage execution (Dur is its service
	// time — wall for the Real engine, virtual for Sim).
	KindStageDone
	// KindQueueStall is producer-side backpressure on an edge (Real
	// engine only; Dur is the blocked time, Chunk the edge index).
	KindQueueStall
	// KindPanicRecovered is a kernel panic the Real engine contained
	// (Detail carries the panic value).
	KindPanicRecovered
	// KindAdmit is a runtime admission (Detail carries the schedule).
	KindAdmit
	// KindReject is a refused admission (Detail carries the reason).
	KindReject
	// KindReplan is a resident session picking up a new schedule after
	// admission churn (Detail carries the new schedule).
	KindReplan
	// KindWaveStart and KindWaveEnd bracket one session execution wave
	// (Wave is the wave index, Task the wave's task count).
	KindWaveStart
	// KindWaveEnd closes a wave; Dur is the wave's elapsed run time.
	KindWaveEnd
	// KindSessionEnd marks a session leaving residency (Detail carries
	// its terminal error, if any).
	KindSessionEnd
	// KindPlace is a fleet-level placement decision: a session landed on
	// a node (Detail carries "node=<id> choice=<rank>"; choice > 0 means
	// spillover past the first-ranked node).
	KindPlace
	// KindDriftReplan is a re-plan triggered by the online profiler:
	// observed service times diverged from the model that produced the
	// session's schedule (Detail carries the diverging estimator cell and
	// the divergence; the Replan events for the new schedules follow).
	KindDriftReplan
	// KindDrain is a fleet node lifecycle edge: a node was cordoned out of
	// placement (Detail carries "node=<id> migrated=<n>") or restored
	// (Detail carries "node=<id> uncordoned").
	KindDrain
	// KindMigrate is one held session moved off a draining node: the
	// reservation was re-placed on another node and the original released
	// (Detail carries "from=<id> to=<id>").
	KindMigrate

	numKinds
)

// kindNames are the stable wire names used in JSON and /events output.
var kindNames = [numKinds]string{
	"run-start", "run-end", "stage-done", "queue-stall", "panic-recovered",
	"admit", "reject", "replan", "wave-start", "wave-end", "session-end",
	"place", "drift-replan", "drain", "migrate",
}

// String returns the kind's stable wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one observation in the stream. Fields beyond Kind are
// populated as applicable; the zero value of an inapplicable field means
// "not set".
type Event struct {
	// Seq is the stream-assigned sequence number (1-based, gap-free per
	// stream); Wall is the emission wall-clock time. Both are assigned by
	// Stream.Emit.
	Seq  uint64
	Wall time.Time
	// Kind classifies the event.
	Kind Kind
	// Session names the emitting runtime session ("" for single runs).
	Session string
	// Stage is the stage name (StageDone, PanicRecovered).
	Stage string
	// PU is the executing PU class of a StageDone — the estimator-facing
	// tap that lets a subscriber attribute a service time to a
	// (stage, PU) pair without re-deriving the schedule.
	PU string
	// Chunk is the chunk index (StageDone, PanicRecovered) or edge index
	// (QueueStall); -1 when not applicable.
	Chunk int
	// Task is the stream task sequence number, or a wave's task count for
	// WaveStart/WaveEnd; -1 when not applicable.
	Task int
	// Wave is the session wave index (WaveStart, WaveEnd); -1 otherwise.
	Wave int
	// Dur is the event's duration payload: service time for StageDone,
	// blocked time for QueueStall, wave run time for WaveEnd.
	Dur time.Duration
	// Detail is free-form context: a schedule, an error, a panic value.
	Detail string
	// Dropped is the number of events this subscriber lost to a full
	// buffer immediately before this one (0 = lossless so far). It is
	// stamped per subscriber at delivery, never stored in the ring:
	// ring readers always see 0. Loss-sensitive consumers (the online
	// profiler's estimator) use it to invalidate state built from the
	// now-gapped stream instead of silently skewing their averages.
	Dropped uint64
}

// NewEvent returns an Event of the given kind with the index fields
// (Chunk, Task, Wave) marked unset (-1), so emitters only fill what
// applies.
func NewEvent(kind Kind) Event { return Event{Kind: kind, Chunk: -1, Task: -1, Wave: -1} }

// Sink receives emitted events. *Stream implements it; WithSession wraps
// one to namespace engine-level events with a session identity. A nil
// Sink (the Options/Config default) disables emission entirely.
type Sink interface {
	Emit(Event)
}

// sessionSink tags otherwise-unattributed events with a session name.
type sessionSink struct {
	next    Sink
	session string
}

// Emit implements Sink.
func (s sessionSink) Emit(e Event) {
	if e.Session == "" {
		e.Session = s.session
	}
	s.next.Emit(e)
}

// WithSession returns a Sink that stamps the session name onto events
// that do not already carry one — how the runtime routes each wave's
// engine-level events to the shared stream under the session's identity.
// A nil sink stays nil, so disabled observability costs one nil check.
func WithSession(s Sink, session string) Sink {
	if s == nil {
		return nil
	}
	return sessionSink{next: s, session: session}
}

// DefaultStreamCapacity is the ring size NewStream uses for capacity <= 0.
const DefaultStreamCapacity = 1024

// Stream is a bounded in-memory event stream: a fixed-capacity ring that
// always holds the most recent events, plus optional subscriber fan-out.
// Emit is a single short mutex-protected critical section with no
// allocation; subscribers that cannot keep up lose events (counted, never
// blocking the emitter). All methods are safe for concurrent use and are
// no-ops on a nil *Stream, so call sites can hold an optional stream
// without guarding.
type Stream struct {
	mu      sync.Mutex
	ring    []Event
	total   uint64 // events ever emitted == last assigned Seq
	subs    map[int]*Subscription
	nextSub int

	dropped atomic.Uint64 // fan-out drops across all subscribers
}

// NewStream builds a stream holding the most recent capacity events
// (DefaultStreamCapacity when <= 0).
func NewStream(capacity int) *Stream {
	if capacity <= 0 {
		capacity = DefaultStreamCapacity
	}
	return &Stream{ring: make([]Event, capacity), subs: map[int]*Subscription{}}
}

// Emit implements Sink: it assigns the event's Seq and Wall, stores it in
// the ring (overwriting the oldest), and offers it to every subscriber
// without blocking — a full subscriber buffer counts a drop instead.
// The first event delivered after a drop window carries the window's
// size in Event.Dropped, so subscribers learn about their losses
// in-stream rather than by polling a counter.
func (s *Stream) Emit(e Event) {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	s.total++
	e.Seq = s.total
	e.Wall = now
	s.ring[int((s.total-1)%uint64(len(s.ring)))] = e
	for _, sub := range s.subs {
		e.Dropped = sub.pending
		select {
		case sub.ch <- e:
			sub.pending = 0
		default:
			sub.pending++
			sub.drops.Add(1)
			s.dropped.Add(1)
		}
	}
	s.mu.Unlock()
}

// Total returns how many events were ever emitted.
func (s *Stream) Total() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Capacity returns the ring size.
func (s *Stream) Capacity() int {
	if s == nil {
		return 0
	}
	return len(s.ring)
}

// Dropped returns the total fan-out drops across all subscribers since
// the stream was created.
func (s *Stream) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Recent returns up to n of the most recent events, oldest first. n <= 0
// or n beyond the retained window returns everything still in the ring.
func (s *Stream) Recent(n int) []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	have := s.total
	if have > uint64(len(s.ring)) {
		have = uint64(len(s.ring))
	}
	if n > 0 && uint64(n) < have {
		have = uint64(n)
	}
	out := make([]Event, 0, have)
	for i := s.total - have; i < s.total; i++ {
		out = append(out, s.ring[int(i%uint64(len(s.ring)))])
	}
	return out
}

// Subscription is one subscriber's view of a stream. Receive from C;
// call Close when done. Events the subscriber was too slow to buffer are
// counted in Drops, not delivered late.
type Subscription struct {
	// C delivers events in emission order.
	C <-chan Event

	id     int
	stream *Stream
	ch     chan Event
	// pending counts events dropped since the last successful delivery;
	// it is stamped onto the next delivered event's Dropped field.
	// Guarded by the stream's mutex.
	pending uint64
	drops   atomic.Uint64
	closed  atomic.Bool
}

// Drops returns how many events this subscriber lost to a full buffer.
func (sub *Subscription) Drops() uint64 { return sub.drops.Load() }

// Close detaches the subscription and closes its channel. Idempotent.
func (sub *Subscription) Close() {
	if !sub.closed.CompareAndSwap(false, true) {
		return
	}
	s := sub.stream
	s.mu.Lock()
	delete(s.subs, sub.id)
	s.mu.Unlock()
	close(sub.ch)
}

// Subscribe attaches a subscriber with the given channel buffer (ring
// capacity when <= 0). Subscription starts at the next emitted event;
// use Recent for history.
func (s *Stream) Subscribe(buffer int) *Subscription {
	if s == nil {
		return nil
	}
	if buffer <= 0 {
		buffer = len(s.ring)
	}
	sub := &Subscription{stream: s, ch: make(chan Event, buffer)}
	sub.C = sub.ch
	s.mu.Lock()
	sub.id = s.nextSub
	s.nextSub++
	s.subs[sub.id] = sub
	s.mu.Unlock()
	return sub
}

var _ Sink = (*Stream)(nil)
