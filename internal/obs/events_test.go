package obs

import (
	"sync"
	"testing"
	"time"
)

func TestStreamAssignsSeqAndWall(t *testing.T) {
	s := NewStream(8)
	before := time.Now()
	s.Emit(Event{Kind: KindAdmit, Session: "a"})
	s.Emit(Event{Kind: KindReplan, Session: "a"})
	got := s.Recent(0)
	if len(got) != 2 {
		t.Fatalf("Recent returned %d events, want 2", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("seqs %d,%d want 1,2", got[0].Seq, got[1].Seq)
	}
	if got[0].Wall.Before(before) {
		t.Fatalf("wall time %v predates emission", got[0].Wall)
	}
	if got[0].Kind != KindAdmit || got[1].Kind != KindReplan {
		t.Fatalf("kinds %v,%v", got[0].Kind, got[1].Kind)
	}
	if s.Total() != 2 {
		t.Fatalf("Total %d want 2", s.Total())
	}
}

func TestStreamRingKeepsMostRecent(t *testing.T) {
	s := NewStream(4)
	for i := 0; i < 10; i++ {
		s.Emit(Event{Kind: KindStageDone, Task: i})
	}
	got := s.Recent(0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(got))
	}
	for i, e := range got {
		if want := 6 + i; e.Task != want {
			t.Fatalf("event %d has task %d, want %d (oldest-first)", i, e.Task, want)
		}
	}
	// A limited read returns the newest suffix.
	got = s.Recent(2)
	if len(got) != 2 || got[0].Task != 8 || got[1].Task != 9 {
		t.Fatalf("Recent(2) = %+v, want tasks 8,9", got)
	}
}

func TestStreamSubscribeFanOutAndDrops(t *testing.T) {
	s := NewStream(16)
	fast := s.Subscribe(16)
	defer fast.Close()
	slow := s.Subscribe(2) // deliberately too small
	defer slow.Close()

	for i := 0; i < 10; i++ {
		s.Emit(Event{Kind: KindStageDone, Task: i})
	}
	for i := 0; i < 10; i++ {
		select {
		case e := <-fast.C:
			if e.Task != i {
				t.Fatalf("fast subscriber got task %d at position %d", e.Task, i)
			}
		default:
			t.Fatalf("fast subscriber missing event %d", i)
		}
	}
	if fast.Drops() != 0 {
		t.Fatalf("fast subscriber dropped %d", fast.Drops())
	}
	if slow.Drops() != 8 {
		t.Fatalf("slow subscriber dropped %d, want 8", slow.Drops())
	}
	if s.Dropped() != 8 {
		t.Fatalf("stream-wide drops %d, want 8", s.Dropped())
	}
}

// TestDroppedSurfacedToSubscriber pins the loss-awareness contract: the
// first event delivered after a drop window carries the window's size in
// Dropped, lossless delivery carries 0, and ring readers never see the
// per-subscriber stamp.
func TestDroppedSurfacedToSubscriber(t *testing.T) {
	s := NewStream(16)
	sub := s.Subscribe(2)
	defer sub.Close()

	// Fill the buffer (delivered, Dropped=0), overflow it by 3, then
	// drain to make room and emit the event that reports the loss.
	for i := 0; i < 5; i++ {
		s.Emit(Event{Kind: KindStageDone, Task: i})
	}
	for i := 0; i < 2; i++ {
		e := <-sub.C
		if e.Task != i || e.Dropped != 0 {
			t.Fatalf("pre-loss event %d: task %d dropped %d", i, e.Task, e.Dropped)
		}
	}
	s.Emit(Event{Kind: KindStageDone, Task: 5})
	e := <-sub.C
	if e.Task != 5 {
		t.Fatalf("post-loss event is task %d, want 5", e.Task)
	}
	if e.Dropped != 3 {
		t.Fatalf("post-loss event reports %d drops, want 3", e.Dropped)
	}
	if sub.Drops() != 3 {
		t.Fatalf("cumulative Drops %d, want 3", sub.Drops())
	}
	// A later emission is lossless again: the pending count was consumed.
	s.Emit(Event{Kind: KindStageDone, Task: 6})
	if e := <-sub.C; e.Task != 6 || e.Dropped != 0 {
		t.Fatalf("post-recovery event: task %d dropped %d, want 6/0", e.Task, e.Dropped)
	}
	// Ring contents never carry the per-subscriber stamp.
	for _, re := range s.Recent(0) {
		if re.Dropped != 0 {
			t.Fatalf("ring event seq %d carries Dropped %d", re.Seq, re.Dropped)
		}
	}
}

func TestStreamClosedSubscriberStopsReceiving(t *testing.T) {
	s := NewStream(4)
	sub := s.Subscribe(4)
	sub.Close()
	sub.Close() // idempotent
	s.Emit(Event{Kind: KindAdmit})
	if _, ok := <-sub.C; ok {
		t.Fatal("closed subscription delivered an event")
	}
	if s.Dropped() != 0 {
		t.Fatalf("emission after close counted %d drops", s.Dropped())
	}
}

func TestNilStreamIsInert(t *testing.T) {
	var s *Stream
	s.Emit(Event{Kind: KindAdmit}) // must not panic
	if s.Recent(5) != nil {
		t.Fatal("nil stream returned events")
	}
	if s.Total() != 0 || s.Dropped() != 0 || s.Capacity() != 0 {
		t.Fatal("nil stream reported non-zero counters")
	}
	if s.Subscribe(1) != nil {
		t.Fatal("nil stream returned a subscription")
	}
	if WithSession(nil, "x") != nil {
		t.Fatal("WithSession(nil) must stay nil so emitters keep their nil check")
	}
}

func TestWithSessionTagsUntaggedEvents(t *testing.T) {
	s := NewStream(8)
	sink := WithSession(s, "octree#0")
	sink.Emit(Event{Kind: KindStageDone})
	sink.Emit(Event{Kind: KindStageDone, Session: "explicit"})
	got := s.Recent(0)
	if got[0].Session != "octree#0" {
		t.Fatalf("untagged event has session %q", got[0].Session)
	}
	if got[1].Session != "explicit" {
		t.Fatalf("pre-tagged event was overwritten: %q", got[1].Session)
	}
}

func TestStreamConcurrentEmitAndRead(t *testing.T) {
	s := NewStream(64)
	sub := s.Subscribe(0)
	done := make(chan struct{})
	go func() {
		for range sub.C {
		}
		close(done)
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Emit(Event{Kind: KindStageDone, Chunk: g, Task: i})
				if i%32 == 0 {
					s.Recent(8)
				}
			}
		}(g)
	}
	wg.Wait()
	sub.Close()
	<-done
	if got := s.Total(); got != 8*200 {
		t.Fatalf("Total %d want %d", got, 8*200)
	}
	// Seqs in the ring must be contiguous and end at Total.
	recent := s.Recent(0)
	for i := 1; i < len(recent); i++ {
		if recent[i].Seq != recent[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs %d → %d", recent[i-1].Seq, recent[i].Seq)
		}
	}
	if last := recent[len(recent)-1].Seq; last != s.Total() {
		t.Fatalf("newest seq %d != total %d", last, s.Total())
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Fatalf("kind %d has no wire name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must render unknown")
	}
}
