package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"bettertogether/internal/metrics"
	"bettertogether/internal/trace"
)

// SessionInfo is one runtime session's row in the live session table.
type SessionInfo struct {
	Name     string `json:"name"`
	App      string `json:"app"`
	Schedule string `json:"schedule"`
	Tasks    int    `json:"tasks"`
	Replans  int    `json:"replans"`
	// PerTaskSec and ElapsedSec are the session's aggregate latency and
	// measured window so far, in seconds.
	PerTaskSec float64 `json:"perTaskSec"`
	ElapsedSec float64 `json:"elapsedSec"`
	EnergyJ    float64 `json:"energyJ"`
	// Resident reports whether the session still occupies admission
	// capacity; Err is its terminal error, if it failed.
	Resident bool   `json:"resident"`
	Err      string `json:"err,omitempty"`
}

// Headroom is the runtime's live admission accounting: current projected
// demand stacked across resident sessions against the headroom-scaled
// device capacities.
type Headroom struct {
	BWDemandGBs   float64 `json:"bwDemandGBs"`
	BWCapacityGBs float64 `json:"bwCapacityGBs"`
	CoresDemand   float64 `json:"coresDemand"`
	CoresCapacity float64 `json:"coresCapacity"`
	ResidentCount int     `json:"residentCount"`
	AdmittedTotal int     `json:"admittedTotal"`
	RejectedTotal int     `json:"rejectedTotal"`
}

// Inspector is the read-only runtime surface the server introspects.
// *runtime.Runtime implements it; tests use fakes. All methods must be
// safe for concurrent use while sessions run.
type Inspector interface {
	// SessionInfos returns every session ever admitted, admission order.
	SessionInfos() []SessionInfo
	// SessionMetrics returns a session's aggregated collector (nil when
	// the session does not collect metrics or does not exist).
	SessionMetrics(name string) *metrics.Pipeline
	// SessionTimeline returns a copy of a session's accumulated trace
	// (nil when not collected or unknown).
	SessionTimeline(name string) *trace.Timeline
	// AdmissionHeadroom returns the live admission accounting.
	AdmissionHeadroom() Headroom
}

// ServerConfig wires the introspection handler's data sources. Every
// field is optional; endpoints degrade to empty-but-valid responses.
type ServerConfig struct {
	// Inspector serves /sessions, per-session /metrics series, and
	// /trace?session=.
	Inspector Inspector
	// Stream serves /events and the event counters on /metrics.
	Stream *Stream
	// Sources supplies additional Prometheus sources — the single-run
	// path hands the run's live collector here.
	Sources func() []PromSource
	// Timeline supplies the /trace document when no session is selected
	// and no Inspector is set (single-run mode). With an Inspector, the
	// no-session /trace merges every session timeline instead.
	Timeline func() *trace.Timeline
	// Cache supplies schedule-cache counters for /metrics (the
	// bt_schedcache_* families). Nil omits the families.
	Cache func() CacheStats
	// Fleet supplies fleet-placement counters for /metrics (the
	// bt_fleet_* families). Nil omits the families.
	Fleet func() FleetStats
	// OnlineProf supplies online-profiler counters for /metrics (the
	// bt_onlineprof_* families). Nil omits the families.
	OnlineProf func() OnlineProfStats
	// SLO supplies deadline-attainment counters for /metrics (the
	// bt_slo_* families). Nil omits the families.
	SLO func() SLOStats
	// Traces serves the /traces endpoints (the session-lifecycle tracer's
	// Handler). Nil leaves /traces unmounted.
	Traces http.Handler
}

// NewHandler builds the introspection HTTP handler:
//
//	/            index of mounted endpoints
//	/healthz     liveness probe ("ok")
//	/metrics     Prometheus text exposition
//	/sessions    live runtime session table + admission headroom (JSON)
//	/trace       Chrome trace_event JSON (?session= selects one session)
//	/events      recent event-ring contents (JSON; ?n=/?limit= bound the
//	             count, ?kind= filters by event kind)
//	/traces      causal session-lifecycle traces (when a tracer is wired)
//	/debug/pprof Go runtime profiles
func NewHandler(cfg ServerConfig) http.Handler {
	mux := http.NewServeMux()
	index := "bettertogether introspection\n\n" +
		"/healthz      liveness\n" +
		"/metrics      Prometheus text exposition\n" +
		"/sessions     session table + admission headroom (JSON)\n" +
		"/trace        Chrome trace_event JSON (?session=NAME)\n" +
		"/events       recent events (JSON, ?n=COUNT&limit=COUNT&kind=KIND)\n"
	if cfg.Traces != nil {
		index += "/traces       session lifecycle traces (JSON; /traces/NAME, ?format=chrome)\n"
	}
	index += "/debug/pprof  Go runtime profiles\n"
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, index)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", cfg.handleMetrics)
	mux.HandleFunc("/sessions", cfg.handleSessions)
	mux.HandleFunc("/trace", cfg.handleTrace)
	mux.HandleFunc("/events", cfg.handleEvents)
	if cfg.Traces != nil {
		mux.Handle("/traces", cfg.Traces)
		mux.Handle("/traces/", cfg.Traces)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleMetrics renders the full Prometheus exposition: caller-supplied
// sources, one namespaced source per inspected session, session-level
// gauges, admission headroom, and event-stream counters.
func (cfg ServerConfig) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var sources []PromSource
	if cfg.Sources != nil {
		sources = append(sources, cfg.Sources()...)
	}
	var infos []SessionInfo
	if cfg.Inspector != nil {
		infos = cfg.Inspector.SessionInfos()
		for _, info := range infos {
			if m := cfg.Inspector.SessionMetrics(info.Name); m != nil {
				sources = append(sources, PromSource{Session: info.Name, Metrics: m})
			}
		}
	}
	if err := PromText(w, sources...); err != nil {
		return
	}
	pw := &promWriter{w: w}
	if cfg.Inspector != nil {
		pw.family("bt_session_tasks_total", "counter", "Completed stream tasks per session.")
		for _, info := range infos {
			pw.sample("bt_session_tasks_total", []label{{"session", info.Name}, {"app", info.App}}, float64(info.Tasks))
		}
		pw.family("bt_session_replans_total", "counter", "Schedule changes from admission churn per session.")
		for _, info := range infos {
			pw.sample("bt_session_replans_total", []label{{"session", info.Name}, {"app", info.App}}, float64(info.Replans))
		}
		pw.family("bt_session_per_task_seconds", "gauge", "Completion-weighted mean per-task latency per session.")
		for _, info := range infos {
			pw.sample("bt_session_per_task_seconds", []label{{"session", info.Name}, {"app", info.App}}, info.PerTaskSec)
		}
		pw.family("bt_session_resident", "gauge", "1 while the session occupies admission capacity.")
		for _, info := range infos {
			v := 0.0
			if info.Resident {
				v = 1
			}
			pw.sample("bt_session_resident", []label{{"session", info.Name}, {"app", info.App}}, v)
		}
		h := cfg.Inspector.AdmissionHeadroom()
		pw.family("bt_admission_bandwidth_gbs", "gauge", "Projected DRAM bandwidth demand and headroom capacity.")
		pw.sample("bt_admission_bandwidth_gbs", []label{{"side", "demand"}}, h.BWDemandGBs)
		pw.sample("bt_admission_bandwidth_gbs", []label{{"side", "capacity"}}, h.BWCapacityGBs)
		pw.family("bt_admission_cores", "gauge", "Projected PU-core demand and headroom capacity.")
		pw.sample("bt_admission_cores", []label{{"side", "demand"}}, h.CoresDemand)
		pw.sample("bt_admission_cores", []label{{"side", "capacity"}}, h.CoresCapacity)
		pw.family("bt_sessions_resident", "gauge", "Sessions currently occupying admission capacity.")
		pw.sample("bt_sessions_resident", nil, float64(h.ResidentCount))
		pw.family("bt_admissions_total", "counter", "Admissions accepted since runtime start.")
		pw.sample("bt_admissions_total", nil, float64(h.AdmittedTotal))
		pw.family("bt_admission_rejections_total", "counter", "Admissions rejected since runtime start.")
		pw.sample("bt_admission_rejections_total", nil, float64(h.RejectedTotal))
	}
	if cfg.Stream != nil {
		pw.family("bt_events_emitted_total", "counter", "Events emitted into the observability stream.")
		pw.sample("bt_events_emitted_total", nil, float64(cfg.Stream.Total()))
		pw.family("bt_events_dropped_total", "counter", "Events dropped by slow stream subscribers.")
		pw.sample("bt_events_dropped_total", nil, float64(cfg.Stream.Dropped()))
	}
	if cfg.Cache != nil {
		_ = PromCache(w, cfg.Cache())
	}
	if cfg.Fleet != nil {
		_ = PromFleet(w, cfg.Fleet())
	}
	if cfg.OnlineProf != nil {
		_ = PromOnlineProf(w, cfg.OnlineProf())
	}
	if cfg.SLO != nil {
		_ = PromSLO(w, cfg.SLO())
	}
}

// sessionsDoc is the /sessions response body.
type sessionsDoc struct {
	Sessions []SessionInfo `json:"sessions"`
	Headroom Headroom      `json:"headroom"`
}

// handleSessions serves the live session table.
func (cfg ServerConfig) handleSessions(w http.ResponseWriter, _ *http.Request) {
	doc := sessionsDoc{Sessions: []SessionInfo{}}
	if cfg.Inspector != nil {
		if infos := cfg.Inspector.SessionInfos(); infos != nil {
			doc.Sessions = infos
		}
		doc.Headroom = cfg.Inspector.AdmissionHeadroom()
	}
	writeJSON(w, doc)
}

// handleTrace serves Chrome trace_event JSON: one session's timeline
// with ?session=, otherwise the merged multi-session timeline (or the
// configured single-run timeline).
func (cfg ServerConfig) handleTrace(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("session")
	var tl *trace.Timeline
	switch {
	case name != "" && cfg.Inspector != nil:
		tl = cfg.Inspector.SessionTimeline(name)
		if tl == nil {
			http.Error(w, fmt.Sprintf("no trace for session %q", name), http.StatusNotFound)
			return
		}
	case name != "":
		http.Error(w, "no session inspector mounted", http.StatusNotFound)
		return
	case cfg.Inspector != nil:
		var parts []trace.SessionTrace
		for _, info := range cfg.Inspector.SessionInfos() {
			if stl := cfg.Inspector.SessionTimeline(info.Name); stl != nil && len(stl.Spans) > 0 {
				parts = append(parts, trace.SessionTrace{Name: info.Name, Timeline: stl})
			}
		}
		tl = trace.MergeSessions(parts...)
	case cfg.Timeline != nil:
		tl = cfg.Timeline()
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = ChromeTrace(w, tl)
}

// eventWire is an Event's JSON shape on /events.
type eventWire struct {
	Seq     uint64 `json:"seq"`
	Wall    string `json:"wall"`
	Kind    string `json:"kind"`
	Session string `json:"session,omitempty"`
	Stage   string `json:"stage,omitempty"`
	PU      string `json:"pu,omitempty"`
	Chunk   *int   `json:"chunk,omitempty"`
	Task    *int   `json:"task,omitempty"`
	Wave    *int   `json:"wave,omitempty"`
	DurNs   int64  `json:"durNs,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// eventsDoc is the /events response body.
type eventsDoc struct {
	Total    uint64      `json:"total"`
	Dropped  uint64      `json:"dropped"`
	Capacity int         `json:"capacity"`
	Events   []eventWire `json:"events"`
}

// parseKind resolves an /events ?kind= value to its Kind, or reports
// that the name matches no known kind.
func parseKind(name string) (Kind, bool) {
	for k, kn := range kindNames {
		if kn == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// handleEvents serves the recent ring contents, oldest first. ?n= and
// ?limit= (synonyms) bound the count; ?kind= keeps only one event kind.
// Malformed values fail fast with 400 rather than silently serving the
// unfiltered ring.
func (cfg ServerConfig) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("n") != "" && q.Get("limit") != "" {
		http.Error(w, "specify either n or limit, not both", http.StatusBadRequest)
		return
	}
	n := 0
	for _, param := range []string{"n", "limit"} {
		raw := q.Get(param)
		if raw == "" {
			continue
		}
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			http.Error(w, param+" must be a non-negative integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	filtered := false
	var want Kind
	if raw := q.Get("kind"); raw != "" {
		k, ok := parseKind(raw)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown kind %q; valid kinds: %s", raw, strings.Join(kindNames[:], ", ")), http.StatusBadRequest)
			return
		}
		want, filtered = k, true
	}
	// A kind filter limits after filtering — "the last N events of this
	// kind" — so the whole ring is scanned; otherwise the ring itself
	// bounds the fetch.
	var events []Event
	if filtered {
		for _, e := range cfg.Stream.Recent(0) {
			if e.Kind == want {
				events = append(events, e)
			}
		}
		if n > 0 && len(events) > n {
			events = events[len(events)-n:]
		}
	} else {
		events = cfg.Stream.Recent(n)
	}
	doc := eventsDoc{
		Total:    cfg.Stream.Total(),
		Dropped:  cfg.Stream.Dropped(),
		Capacity: cfg.Stream.Capacity(),
		Events:   []eventWire{},
	}
	for _, e := range events {
		ew := eventWire{
			Seq:  e.Seq,
			Wall: e.Wall.Format(time.RFC3339Nano),
			Kind: e.Kind.String(),

			Session: e.Session,
			Stage:   e.Stage,
			PU:      e.PU,
			DurNs:   int64(e.Dur),
			Detail:  e.Detail,
		}
		if e.Chunk >= 0 {
			c := e.Chunk
			ew.Chunk = &c
		}
		if e.Task >= 0 {
			t := e.Task
			ew.Task = &t
		}
		if e.Wave >= 0 {
			wv := e.Wave
			ew.Wave = &wv
		}
		doc.Events = append(doc.Events, ew)
	}
	writeJSON(w, doc)
}

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a running introspection server. Construct with Serve; stop
// with Close.
type Server struct {
	srv *http.Server
	ln  net.Listener
	// drain bounds how long Close waits for in-flight handlers before
	// force-closing their connections (defaults to 2s; tests shorten it).
	drain time.Duration
}

// Serve starts the introspection server on addr (e.g. ":9090",
// "127.0.0.1:0"). It returns once the listener is bound, so the
// endpoints are immediately reachable; the accept loop runs on its own
// goroutine until Close.
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{srv: &http.Server{Handler: NewHandler(cfg)}, ln: ln, drain: 2 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down: it stops accepting connections and
// drains in-flight handlers for a bounded window, then force-closes
// whatever is still running. A reader parked on /events can therefore
// delay Close by at most the drain window — never hang it forever.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.drain)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err == nil {
		return nil
	}
	if cerr := s.srv.Close(); cerr != nil {
		return cerr
	}
	return err
}
