package obs

import (
	"strings"
	"testing"
	"time"

	"bettertogether/internal/metrics"
)

func TestSLOStatsMergeAndFraction(t *testing.T) {
	var s SLOStats
	if got := s.AttainedFraction(); got != "0" {
		t.Fatalf("empty fraction %q", got)
	}
	h := &metrics.Histogram{}
	h.Observe(2 * time.Second)
	s.Merge(SLOStats{Sessions: 3, Attained: 2, Missed: 1, Latency: h})
	s.Merge(SLOStats{Sessions: 1, Attained: 1})
	if s.Sessions != 4 || s.Attained != 3 || s.Missed != 1 {
		t.Fatalf("merged %+v", s)
	}
	if s.Latency == nil || s.Latency.Count() != 1 {
		t.Fatalf("latency merge: %v", s.Latency)
	}
	if got := s.AttainedFraction(); got != "0.7500" {
		t.Fatalf("fraction %q", got)
	}
}

func TestPromSLO(t *testing.T) {
	h := &metrics.Histogram{}
	h.Observe(1500 * time.Millisecond)
	h.Observe(4 * time.Second)
	var b strings.Builder
	err := PromSLO(&b, SLOStats{Sessions: 2, Attained: 1, Missed: 1, Latency: h})
	if err != nil {
		t.Fatalf("PromSLO: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE bt_slo_sessions_total counter",
		"bt_slo_sessions_total 2",
		"bt_slo_attained_total 1",
		"bt_slo_missed_total 1",
		"bt_slo_attainment_ratio 0.5",
		"# TYPE bt_slo_latency_seconds summary",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// No latency histogram: the summary family is omitted entirely.
	b.Reset()
	_ = PromSLO(&b, SLOStats{Sessions: 1, Attained: 1})
	if strings.Contains(b.String(), "bt_slo_latency_seconds") {
		t.Fatal("latency summary written without observations")
	}
}
