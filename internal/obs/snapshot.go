package obs

import (
	"fmt"

	"bettertogether/internal/metrics"
)

// StageSnapshot is one stage row of a metrics snapshot.
type StageSnapshot struct {
	Name       string  `json:"name"`
	Chunk      int     `json:"chunk"`
	PU         string  `json:"pu"`
	Dispatches uint64  `json:"dispatches"`
	MeanSec    float64 `json:"meanSec"`
	P50Sec     float64 `json:"p50Sec"`
	P95Sec     float64 `json:"p95Sec"`
	P99Sec     float64 `json:"p99Sec"`
	MaxSec     float64 `json:"maxSec"`
}

// QueueSnapshot is one edge row of a metrics snapshot.
type QueueSnapshot struct {
	Label        string  `json:"label"`
	Cap          int     `json:"cap"`
	Pushes       uint64  `json:"pushes"`
	Pops         uint64  `json:"pops"`
	MaxDepth     int     `json:"maxDepth"`
	MeanWaitSec  float64 `json:"meanWaitSec"`
	MeanStallSec float64 `json:"meanStallSec"`
}

// PoolSnapshot is one worker-pool row of a metrics snapshot.
type PoolSnapshot struct {
	PU          string  `json:"pu"`
	Width       int     `json:"width"`
	BusySec     float64 `json:"busySec"`
	Utilization float64 `json:"utilization"`
}

// MetricsSnapshot is the JSON-oriented point-in-time view of one
// collector: everything the ASCII Table renders, as structured data for
// tooling. Snapshot reads the collector's atomic counters, so taking one
// of a live run is safe (it is a consistent-enough view, not an atomic
// cut).
type MetricsSnapshot struct {
	Session    string          `json:"session,omitempty"`
	ElapsedSec float64         `json:"elapsedSec"`
	Stages     []StageSnapshot `json:"stages"`
	Queues     []QueueSnapshot `json:"queues"`
	Pools      []PoolSnapshot  `json:"pools"`
}

// Snapshot captures a collector into a MetricsSnapshot. Nil returns an
// empty snapshot.
func Snapshot(m *metrics.Pipeline) MetricsSnapshot {
	snap := MetricsSnapshot{
		Stages: []StageSnapshot{},
		Queues: []QueueSnapshot{},
		Pools:  []PoolSnapshot{},
	}
	if m == nil {
		return snap
	}
	snap.ElapsedSec = m.Elapsed().Seconds()
	for i := 0; i < m.NumStages(); i++ {
		s := m.Stage(i)
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("stage %d", i)
		}
		h := s.Service()
		snap.Stages = append(snap.Stages, StageSnapshot{
			Name: name, Chunk: s.Chunk, PU: s.PU,
			Dispatches: s.Dispatches(),
			MeanSec:    h.Mean().Seconds(),
			P50Sec:     h.Quantile(0.5).Seconds(),
			P95Sec:     h.Quantile(0.95).Seconds(),
			P99Sec:     h.Quantile(0.99).Seconds(),
			MaxSec:     h.Max().Seconds(),
		})
	}
	for i := 0; i < m.NumQueues(); i++ {
		q := m.Queue(i)
		lbl := q.Label
		if lbl == "" {
			lbl = fmt.Sprintf("edge %d", i)
		}
		snap.Queues = append(snap.Queues, QueueSnapshot{
			Label: lbl, Cap: q.Cap,
			Pushes: q.Pushes(), Pops: q.Pops(), MaxDepth: q.MaxDepth(),
			MeanWaitSec:  q.Wait().Mean().Seconds(),
			MeanStallSec: q.Stall().Mean().Seconds(),
		})
	}
	elapsed := m.Elapsed()
	for i := 0; i < m.NumPools(); i++ {
		p := m.Pool(i)
		snap.Pools = append(snap.Pools, PoolSnapshot{
			PU: p.PU, Width: p.Width,
			BusySec:     p.BusyTime().Seconds(),
			Utilization: p.Utilization(elapsed),
		})
	}
	return snap
}
