package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServerEventsLimitAndKindFilters(t *testing.T) {
	h := NewHandler(testServerConfig())

	// ?limit= is a synonym for ?n=, with the same fail-fast validation.
	var doc eventsDoc
	_, body := get(t, h, "/events?limit=1")
	if err := json.Unmarshal([]byte(body), &doc); err != nil || len(doc.Events) != 1 {
		t.Fatalf("limit=1: %v, %d events", err, len(doc.Events))
	}
	for _, bad := range []string{"/events?limit=bogus", "/events?limit=-1", "/events?n=1&limit=2"} {
		if code, _ := get(t, h, bad); code != http.StatusBadRequest {
			t.Errorf("GET %s → %d, want 400", bad, code)
		}
	}

	// ?kind= keeps only matching events.
	_, body = get(t, h, "/events?kind=admit")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("kind filter: %v", err)
	}
	if len(doc.Events) != 1 || doc.Events[0].Kind != "admit" {
		t.Fatalf("kind=admit events %+v", doc.Events)
	}
	// kind + limit compose: the last N of that kind.
	_, body = get(t, h, "/events?kind=stage-done&limit=1")
	if err := json.Unmarshal([]byte(body), &doc); err != nil || len(doc.Events) != 1 || doc.Events[0].Kind != "stage-done" {
		t.Fatalf("kind+limit: %v %+v", err, doc.Events)
	}
	// A matching kind with no events is an empty list, not an error.
	_, body = get(t, h, "/events?kind=migrate")
	if err := json.Unmarshal([]byte(body), &doc); err != nil || len(doc.Events) != 0 {
		t.Fatalf("kind=migrate: %v, %d events", err, len(doc.Events))
	}
	// An unknown kind fails fast and names the valid set.
	code, body := get(t, h, "/events?kind=nonsense")
	if code != http.StatusBadRequest || !strings.Contains(body, "admit") {
		t.Fatalf("unknown kind → %d %q", code, body)
	}
}

func TestServerMountsTracesAndSLO(t *testing.T) {
	cfg := testServerConfig()
	cfg.Traces = http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("[]"))
	})
	cfg.SLO = func() SLOStats { return SLOStats{Sessions: 2, Attained: 1, Missed: 1} }
	h := NewHandler(cfg)

	if code, body := get(t, h, "/traces"); code != http.StatusOK || body != "[]" {
		t.Fatalf("/traces → %d %q", code, body)
	}
	if code, _ := get(t, h, "/traces/some-session"); code != http.StatusOK {
		t.Fatalf("/traces/{session} → %d", code)
	}
	if _, body := get(t, h, "/"); !strings.Contains(body, "/traces") {
		t.Fatal("index omits /traces while mounted")
	}
	if _, body := get(t, h, "/metrics"); !strings.Contains(body, "bt_slo_attained_total 1") {
		t.Fatal("metrics omit bt_slo_* families")
	}

	// Without a tracer neither surface appears — the default exposition
	// stays byte-identical.
	h = NewHandler(testServerConfig())
	if code, _ := get(t, h, "/traces"); code != http.StatusNotFound {
		t.Fatalf("unmounted /traces → %d, want 404", code)
	}
	if _, body := get(t, h, "/"); strings.Contains(body, "/traces") {
		t.Fatal("index lists /traces without a tracer")
	}
	if _, body := get(t, h, "/metrics"); strings.Contains(body, "bt_slo_") {
		t.Fatal("metrics carry bt_slo_* without an SLO source")
	}
}

func TestCloseBoundedBySlowHandler(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	cfg := testServerConfig()
	cfg.Traces = http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		entered <- struct{}{}
		<-release // reader parked mid-response, like a stalled scrape
	})
	srv, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer close(release)
	srv.drain = 50 * time.Millisecond

	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/traces")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Close reported a clean drain despite a stuck handler")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a slow reader instead of force-closing")
	}
}
