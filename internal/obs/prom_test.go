package obs

import (
	"regexp"
	"strings"
	"testing"
	"time"

	"bettertogether/internal/metrics"
)

// sampleLine matches one exposition sample: metric name, optional label
// set, a float value, optionally a timestamp. This is the line-format
// check the acceptance criteria pin — every non-comment line PromText
// produces must match it.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)( [0-9]+)?$`)

// testCollector builds a small labeled collector with deterministic
// observations.
func testCollector() *metrics.Pipeline {
	m := metrics.New(2, 2, 1)
	s0 := m.Stage(0)
	s0.Name, s0.Chunk, s0.PU = "sort", 0, "big"
	s1 := m.Stage(1)
	s1.Name, s1.Chunk, s1.PU = `tricky"stage\n`, 1, "gpu"
	m.Queue(0).Label = "chunk 0 → 1"
	m.Queue(0).Cap = 3
	m.Queue(1).Label = "chunk 1 → 0"
	m.Queue(1).Cap = 3
	p := m.Pool(0)
	p.PU, p.Width = "big", 4
	for i := 0; i < 10; i++ {
		m.StageDone(0, time.Duration(i+1)*time.Millisecond)
		m.StageDone(1, time.Duration(i+1)*time.Microsecond)
		m.QueueWait(0, time.Duration(i)*time.Microsecond)
		m.QueueStall(1, 0)
		m.QueueDepth(0, i%4)
	}
	p.AddBusy(40 * time.Millisecond)
	m.SetElapsed(20 * time.Millisecond)
	return m
}

func TestPromTextLineFormat(t *testing.T) {
	var b strings.Builder
	err := PromText(&b, PromSource{Session: "octree#0", Metrics: testCollector()},
		PromSource{Metrics: testCollector()})
	if err != nil {
		t.Fatalf("PromText: %v", err)
	}
	out := b.String()
	if out == "" {
		t.Fatal("empty exposition")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	samples := 0
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("malformed comment line: %q", line)
			}
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("sample line fails format check: %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("exposition has no samples")
	}
}

func TestPromTextContent(t *testing.T) {
	var b strings.Builder
	if err := PromText(&b, PromSource{Session: "s1", Metrics: testCollector()}); err != nil {
		t.Fatalf("PromText: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`bt_stage_dispatches_total{session="s1",stage="sort",chunk="0",pu="big"} 10`,
		`bt_stage_service_seconds{session="s1",stage="sort",chunk="0",pu="big",quantile="0.5"}`,
		`bt_stage_service_seconds_count{session="s1",stage="sort",chunk="0",pu="big"} 10`,
		`bt_queue_pops_total{session="s1",queue="chunk 0 → 1"} 10`,
		`bt_queue_depth_max{session="s1",queue="chunk 0 → 1"} 3`,
		`bt_pool_busy_seconds_total{session="s1",pu="big",width="4"} 0.04`,
		`bt_pool_utilization_ratio{session="s1",pu="big",width="4"} 0.5`,
		`bt_run_elapsed_seconds{session="s1"} 0.02`,
		"# TYPE bt_stage_service_seconds summary",
		"# TYPE bt_stage_dispatches_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Label escaping: the tricky stage name must come out escaped.
	if !strings.Contains(out, `stage="tricky\"stage\\n"`) {
		t.Errorf("label escaping wrong; got:\n%s", findLines(out, "tricky"))
	}
}

func TestPromTextNoSessionOmitsLabel(t *testing.T) {
	var b strings.Builder
	if err := PromText(&b, PromSource{Metrics: testCollector()}); err != nil {
		t.Fatalf("PromText: %v", err)
	}
	if strings.Contains(b.String(), "session=") {
		t.Fatal("sessionless source must not carry a session label")
	}
	if !strings.Contains(b.String(), `bt_stage_dispatches_total{stage="sort",chunk="0",pu="big"} 10`) {
		t.Fatal("sessionless series missing")
	}
}

func TestPromTextSkipsNilSources(t *testing.T) {
	var b strings.Builder
	if err := PromText(&b, PromSource{Session: "dead"}); err != nil {
		t.Fatalf("PromText: %v", err)
	}
	if strings.Contains(b.String(), "dead") {
		t.Fatal("nil collector produced series")
	}
	// Families still render (empty), and remain parseable.
	if !strings.Contains(b.String(), "# TYPE bt_stage_dispatches_total counter") {
		t.Fatal("family headers missing")
	}
}

// findLines returns the lines of s containing sub, for error messages.
func findLines(s, sub string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

func TestSnapshotShape(t *testing.T) {
	snap := Snapshot(testCollector())
	if len(snap.Stages) != 2 || len(snap.Queues) != 2 || len(snap.Pools) != 1 {
		t.Fatalf("snapshot shape %d/%d/%d", len(snap.Stages), len(snap.Queues), len(snap.Pools))
	}
	if snap.Stages[0].Name != "sort" || snap.Stages[0].Dispatches != 10 {
		t.Fatalf("stage row %+v", snap.Stages[0])
	}
	if snap.Stages[0].P50Sec <= 0 || snap.Stages[0].MaxSec < snap.Stages[0].P50Sec {
		t.Fatalf("quantiles inconsistent: %+v", snap.Stages[0])
	}
	if snap.Pools[0].Utilization != 0.5 {
		t.Fatalf("pool utilization %v want 0.5", snap.Pools[0].Utilization)
	}
	if snap.ElapsedSec != 0.02 {
		t.Fatalf("elapsed %v", snap.ElapsedSec)
	}

	empty := Snapshot(nil)
	if empty.Stages == nil || empty.Queues == nil || empty.Pools == nil {
		t.Fatal("nil collector must snapshot to empty (not null) slices")
	}
}
