package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"bettertogether/internal/trace"
)

// testTimeline builds a two-row timeline with known spans.
func testTimeline() *trace.Timeline {
	tl := &trace.Timeline{}
	tl.Add(trace.Span{Chunk: 0, PU: "big", Stage: "sort", StageIndex: 0, Task: 0, Start: 0, End: 0.002})
	tl.Add(trace.Span{Chunk: 0, PU: "big", Stage: "sort", StageIndex: 0, Task: 1, Start: 0.002, End: 0.0035})
	tl.Add(trace.Span{Chunk: 1, PU: "gpu", Stage: "build", StageIndex: 1, Task: 0, Start: 0.002, End: 0.0081})
	return tl
}

func TestChromeTraceValidatesAndRoundTrips(t *testing.T) {
	tl := testTimeline()
	var buf bytes.Buffer
	if err := ChromeTrace(&buf, tl); err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}

	// The output must be valid trace_event JSON (object format).
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}

	// Round-trip span count and durations against the source timeline.
	var spans, meta int
	var totalDurUs float64
	threadNames := map[int]string{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			totalDurUs += e.Dur
			if e.Ts < 0 || e.Dur <= 0 {
				t.Fatalf("degenerate complete event %+v", e)
			}
			if e.Cat != "stage" {
				t.Fatalf("complete event category %q", e.Cat)
			}
			if _, ok := e.Args["task"]; !ok {
				t.Fatalf("complete event lacks task arg: %+v", e)
			}
		case "M":
			meta++
			if e.Name == "thread_name" {
				threadNames[e.Tid] = e.Args["name"].(string)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if spans != len(tl.Spans) {
		t.Fatalf("exported %d spans, timeline has %d", spans, len(tl.Spans))
	}
	var wantUs float64
	for _, s := range tl.Spans {
		wantUs += s.Duration() * 1e6
	}
	if math.Abs(totalDurUs-wantUs) > 1e-6 {
		t.Fatalf("total duration %.6fµs, timeline %.6fµs", totalDurUs, wantUs)
	}
	if threadNames[0] != "chunk 0 (big)" || threadNames[1] != "chunk 1 (gpu)" {
		t.Fatalf("thread names %+v", threadNames)
	}
	if meta != 3 { // process_name + 2 thread_names
		t.Fatalf("metadata events %d, want 3", meta)
	}
}

func TestChromeTraceUsesTimelineLabels(t *testing.T) {
	tl := testTimeline()
	tl.Labels = []string{"vision#0/chunk 0 (big)", ""}
	doc := BuildChromeTrace(tl)
	var names []string
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			names = append(names, e.Args["name"].(string))
		}
	}
	if names[0] != "vision#0/chunk 0 (big)" {
		t.Fatalf("label override lost: %v", names)
	}
	if names[1] != "chunk 1 (gpu)" {
		t.Fatalf("unlabeled row must self-label: %v", names)
	}
}

func TestChromeTraceEmptyTimeline(t *testing.T) {
	for _, tl := range []*trace.Timeline{nil, {}} {
		var buf bytes.Buffer
		if err := ChromeTrace(&buf, tl); err != nil {
			t.Fatalf("ChromeTrace(%v): %v", tl, err)
		}
		var doc map[string]any
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("empty document invalid: %v", err)
		}
		evs, ok := doc["traceEvents"].([]any)
		if !ok {
			t.Fatalf("traceEvents must be an array, got %T", doc["traceEvents"])
		}
		for _, e := range evs {
			if e.(map[string]any)["ph"] == "X" {
				t.Fatal("empty timeline produced span events")
			}
		}
	}
}
