package obs

import (
	"io"
	"strconv"

	"bettertogether/internal/metrics"
)

// FleetNodeStats is one registry node's placement view: identity,
// placement counters, and the node runtime's live admission headroom.
type FleetNodeStats struct {
	// ID is the fleet-unique node identity ("pixel7a/0"); Device the
	// catalog device class it models.
	ID     string `json:"id"`
	Device string `json:"device"`
	// Placed counts sessions the placement service landed here; Rejected
	// counts admission attempts this node refused (spillover probes
	// included).
	Placed   int `json:"placed"`
	Rejected int `json:"rejected"`
	// Drained marks a cordoned node: excluded from placement until
	// uncordoned, though residents that could not migrate keep running.
	Drained bool `json:"drained,omitempty"`
	// Headroom is the node runtime's projected demand vs capacity.
	Headroom Headroom `json:"headroom"`
}

// FleetStats is a point-in-time view of a fleet's placement counters,
// decoupled from the fleet implementation the same way CacheStats is
// from schedcache.
type FleetStats struct {
	// Nodes is the registry size.
	Nodes int `json:"nodes"`
	// Arrivals counts placement requests; Placed the sessions that landed
	// on some node; Spills the subset that landed past their first-ranked
	// node; Rejected the arrivals no node could admit.
	Arrivals int `json:"arrivals"`
	Placed   int `json:"placed"`
	Spills   int `json:"spills"`
	Rejected int `json:"rejected"`
	// Migrations counts held sessions moved off draining nodes
	// (place-elsewhere-then-release); Drained counts currently cordoned
	// nodes.
	Migrations int `json:"migrations,omitempty"`
	Drained    int `json:"drained,omitempty"`
	// Latency is the completed-session latency histogram (virtual seconds
	// under the Sim engine). Nil omits the summary family.
	Latency *metrics.Histogram `json:"-"`
	// PerNode holds one entry per registry node, in registry order.
	PerNode []FleetNodeStats `json:"per_node"`
}

// PromFleet writes the fleet-level counter families as Prometheus text
// exposition: placement totals, per-node placement and headroom gauges,
// and the completed-session latency summary. Together with the runtime's
// bt_admission_* families these make fleet routing health scrapeable —
// a rising bt_fleet_rejections_total with headroom left on some node
// means the placement ranking, not capacity, is the bottleneck.
func PromFleet(w io.Writer, s FleetStats) error {
	pw := &promWriter{w: w}
	pw.family("bt_fleet_nodes", "gauge", "Registry size of the device fleet.")
	pw.sample("bt_fleet_nodes", nil, float64(s.Nodes))
	pw.family("bt_fleet_arrivals_total", "counter", "Placement requests received by the fleet.")
	pw.sample("bt_fleet_arrivals_total", nil, float64(s.Arrivals))
	pw.family("bt_fleet_placed_total", "counter", "Sessions landed on some fleet node.")
	pw.sample("bt_fleet_placed_total", nil, float64(s.Placed))
	pw.family("bt_fleet_spillovers_total", "counter",
		"Sessions landed past their first-ranked node after an admission refusal.")
	pw.sample("bt_fleet_spillovers_total", nil, float64(s.Spills))
	pw.family("bt_fleet_rejections_total", "counter", "Arrivals no fleet node could admit.")
	pw.sample("bt_fleet_rejections_total", nil, float64(s.Rejected))
	pw.family("bt_fleet_migrations_total", "counter",
		"Held sessions moved off draining nodes (place-elsewhere-then-release).")
	pw.sample("bt_fleet_migrations_total", nil, float64(s.Migrations))
	pw.family("bt_fleet_drained", "gauge", "Fleet nodes currently cordoned out of placement.")
	pw.sample("bt_fleet_drained", nil, float64(s.Drained))

	if len(s.PerNode) > 0 {
		pw.family("bt_fleet_node_placed_total", "counter", "Sessions placed per fleet node.")
		for _, n := range s.PerNode {
			pw.sample("bt_fleet_node_placed_total", nodeLabels(n), float64(n.Placed))
		}
		pw.family("bt_fleet_node_rejections_total", "counter",
			"Admission refusals per fleet node (spillover probes included).")
		for _, n := range s.PerNode {
			pw.sample("bt_fleet_node_rejections_total", nodeLabels(n), float64(n.Rejected))
		}
		pw.family("bt_fleet_node_drained", "gauge", "Whether the node is cordoned out of placement (1 = drained).")
		for _, n := range s.PerNode {
			v := 0.0
			if n.Drained {
				v = 1.0
			}
			pw.sample("bt_fleet_node_drained", nodeLabels(n), v)
		}
		pw.family("bt_fleet_node_resident", "gauge", "Resident sessions per fleet node.")
		for _, n := range s.PerNode {
			pw.sample("bt_fleet_node_resident", nodeLabels(n), float64(n.Headroom.ResidentCount))
		}
		pw.family("bt_fleet_node_bandwidth_gbs", "gauge",
			"Projected DRAM bandwidth demand and capacity per fleet node.")
		for _, n := range s.PerNode {
			pw.sample("bt_fleet_node_bandwidth_gbs",
				append(nodeLabels(n), label{"side", "demand"}), n.Headroom.BWDemandGBs)
			pw.sample("bt_fleet_node_bandwidth_gbs",
				append(nodeLabels(n), label{"side", "capacity"}), n.Headroom.BWCapacityGBs)
		}
		pw.family("bt_fleet_node_cores", "gauge",
			"Projected PU-core demand and capacity per fleet node.")
		for _, n := range s.PerNode {
			pw.sample("bt_fleet_node_cores",
				append(nodeLabels(n), label{"side", "demand"}), n.Headroom.CoresDemand)
			pw.sample("bt_fleet_node_cores",
				append(nodeLabels(n), label{"side", "capacity"}), n.Headroom.CoresCapacity)
		}
	}

	if s.Latency != nil {
		pw.family("bt_fleet_session_latency_seconds", "summary",
			"Completed-session latency across the fleet (virtual seconds under Sim).")
		pw.summary("bt_fleet_session_latency_seconds", nil, s.Latency)
	}
	return pw.err
}

// nodeLabels is the per-node label set. The slice is freshly allocated
// per call so callers may append resource-side labels without aliasing.
func nodeLabels(n FleetNodeStats) []label {
	return []label{{"node", n.ID}, {"device", n.Device}}
}

// rate renders a ratio as a compact string for JSON snapshots (avoids
// NaN when the denominator is zero).
func rate(num, den int) string {
	if den == 0 {
		return "0"
	}
	return strconv.FormatFloat(float64(num)/float64(den), 'f', 4, 64)
}

// RejectionRate is the fleet's rejected/arrivals ratio rendered without
// NaN on an empty fleet.
func (s FleetStats) RejectionRate() string { return rate(s.Rejected, s.Arrivals) }
