package obs

import (
	"io"

	"bettertogether/internal/metrics"
)

// SLOStats is a point-in-time view of per-session deadline attainment:
// how many deadline-carrying sessions finished, how many met their
// deadline, and the end-to-end latency distribution of those sessions.
// Only sessions admitted with a positive deadline are counted — a
// zero-deadline run produces an all-zero snapshot and writes no
// families with nonzero values, keeping default output unchanged.
type SLOStats struct {
	// Sessions counts completed sessions that carried a deadline;
	// Attained the subset that finished (without error) within it;
	// Missed the rest (late or failed).
	Sessions int `json:"sessions"`
	Attained int `json:"attained"`
	Missed   int `json:"missed"`
	// Latency is the end-to-end latency histogram of deadline-carrying
	// sessions (virtual seconds under Sim). Nil omits the summary family.
	Latency *metrics.Histogram `json:"-"`
}

// AttainedFraction is the attained/sessions ratio rendered without NaN
// when no deadline-carrying session has completed.
func (s SLOStats) AttainedFraction() string { return rate(s.Attained, s.Sessions) }

// Merge folds other into s: counters sum, latency histograms merge
// (allocating s.Latency on first use). Fleet-level attainment is the
// merge of every node runtime's snapshot.
func (s *SLOStats) Merge(other SLOStats) {
	s.Sessions += other.Sessions
	s.Attained += other.Attained
	s.Missed += other.Missed
	if other.Latency != nil {
		if s.Latency == nil {
			s.Latency = &metrics.Histogram{}
		}
		s.Latency.Merge(other.Latency)
	}
}

// PromSLO writes the deadline-attainment families as Prometheus text
// exposition. A falling bt_slo_attained_total/bt_slo_sessions_total
// ratio under load is the fleet-level signal that interference, not
// capacity, is eating the deadline budget.
func PromSLO(w io.Writer, s SLOStats) error {
	pw := &promWriter{w: w}
	pw.family("bt_slo_sessions_total", "counter",
		"Completed sessions that carried an SLO deadline.")
	pw.sample("bt_slo_sessions_total", nil, float64(s.Sessions))
	pw.family("bt_slo_attained_total", "counter",
		"Deadline-carrying sessions that finished within their deadline.")
	pw.sample("bt_slo_attained_total", nil, float64(s.Attained))
	pw.family("bt_slo_missed_total", "counter",
		"Deadline-carrying sessions that finished late or failed.")
	pw.sample("bt_slo_missed_total", nil, float64(s.Missed))
	pw.family("bt_slo_attainment_ratio", "gauge",
		"Fraction of deadline-carrying sessions that met their deadline.")
	frac := 0.0
	if s.Sessions > 0 {
		frac = float64(s.Attained) / float64(s.Sessions)
	}
	pw.sample("bt_slo_attainment_ratio", nil, frac)
	if s.Latency != nil {
		pw.family("bt_slo_latency_seconds", "summary",
			"End-to-end latency of deadline-carrying sessions (virtual seconds under Sim).")
		pw.summary("bt_slo_latency_seconds", nil, s.Latency)
	}
	return pw.err
}
