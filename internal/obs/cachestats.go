package obs

import "io"

// CacheStats is a point-in-time view of a schedule-cache's counters,
// decoupled from the cache implementation so the server can export any
// memoization layer. internal/schedcache's Stats converts 1:1.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Stores    uint64 `json:"stores"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
}

// PromCache writes the schedule-cache counter families as Prometheus
// text exposition — the planning-hot-path health signal: a high
// bt_schedcache_hits_total over misses means replans are being served
// from memory instead of re-running the profiler and solver.
func PromCache(w io.Writer, s CacheStats) error {
	pw := &promWriter{w: w}
	pw.family("bt_schedcache_hits_total", "counter",
		"Planning lookups served from the schedule cache.")
	pw.sample("bt_schedcache_hits_total", nil, float64(s.Hits))
	pw.family("bt_schedcache_misses_total", "counter",
		"Planning lookups that fell through to a cold solve.")
	pw.sample("bt_schedcache_misses_total", nil, float64(s.Misses))
	pw.family("bt_schedcache_stores_total", "counter",
		"Schedules stored into the cache after cold solves.")
	pw.sample("bt_schedcache_stores_total", nil, float64(s.Stores))
	pw.family("bt_schedcache_evictions_total", "counter",
		"Entries displaced by the LRU capacity bound.")
	pw.sample("bt_schedcache_evictions_total", nil, float64(s.Evictions))
	pw.family("bt_schedcache_entries", "gauge", "Current cached schedules.")
	pw.sample("bt_schedcache_entries", nil, float64(s.Size))
	pw.family("bt_schedcache_capacity", "gauge", "Configured cache capacity.")
	pw.sample("bt_schedcache_capacity", nil, float64(s.Capacity))
	return pw.err
}
