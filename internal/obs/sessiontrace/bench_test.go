package sessiontrace

import (
	"fmt"
	"testing"
)

// BenchmarkSpanHotPathUnsampled measures the cost a tracer adds to a
// session the sampler skips — the common case at low rates. The
// decision is a hash and a compare with no lock and no allocation, so
// instrumented code paths pay almost nothing for sessions they never
// trace. Run with the churn suite: make bench-churn.
func BenchmarkSpanHotPathUnsampled(b *testing.B) {
	tr := New(Config{SampleRate: 0.25, Seed: 1})
	name := ""
	for i := 0; i < 1000; i++ {
		n := fmt.Sprintf("octree#%d", i)
		if _, ok := tr.sampled(n); !ok {
			name = n
			break
		}
	}
	if name == "" {
		b.Fatal("no unsampled name found")
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.WaveStart(name, 0, 4, "[big gpu]")
			tr.WaveEnd(name, 0, 1)
		}
	})
}

// BenchmarkSpanHotPathSampled is the paid path: every hook records.
// Traces are finished and recycled every few waves so eviction keeps
// the retained set (and the benchmark's memory) bounded.
func BenchmarkSpanHotPathSampled(b *testing.B) {
	tr := New(Config{SampleRate: 1, Seed: 1, Capacity: 8})
	b.ReportAllocs()
	name, wave := "octree#0", 0
	tr.Arrived(name, "octree")
	for i := 0; i < b.N; i++ {
		tr.WaveStart(name, wave, 4, "[big gpu]")
		tr.WaveEnd(name, wave, 0.001)
		wave++
		if wave == 64 {
			tr.SessionEnd(name, 1, 0, 4, false, "")
			name = fmt.Sprintf("octree#%d", i)
			wave = 0
			tr.Arrived(name, "octree")
		}
	}
}

// BenchmarkSamplingDecision isolates the pure decision function.
func BenchmarkSamplingDecision(b *testing.B) {
	tr := New(Config{SampleRate: 0.1, Seed: 42})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.sampled("octree#12345")
	}
}
