package sessiontrace

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestChromeFlowLinksSpans(t *testing.T) {
	tr := all()
	spill(tr, "octree#1", 2.0, 5.0)
	doc, _ := tr.Trace("octree#1")
	out := ChromeFlow(doc)

	var slices, starts, steps, finishes int
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
			if ev.Dur <= 0 {
				t.Fatalf("zero-width slice %q: Perfetto cannot anchor flows on it", ev.Name)
			}
		case "s":
			starts++
		case "t":
			steps++
		case "f":
			finishes++
			if ev.BP != "e" {
				t.Fatalf("flow finish without bp=e: %+v", ev)
			}
		}
		if ev.Ph == "s" || ev.Ph == "t" || ev.Ph == "f" {
			if ev.ID != doc.TraceID {
				t.Fatalf("flow event id %q, want trace id %q", ev.ID, doc.TraceID)
			}
		}
	}
	if slices != len(doc.Spans) {
		t.Fatalf("%d slices for %d spans", slices, len(doc.Spans))
	}
	// One chain: a single start, a single finish, a step per inner span.
	if starts != 1 || finishes != 1 || steps != len(doc.Spans)-2 {
		t.Fatalf("flow chain s/t/f = %d/%d/%d over %d spans", starts, steps, finishes, len(doc.Spans))
	}
}

func TestChromeFlowAllSeparatesTracks(t *testing.T) {
	tr := all()
	spill(tr, "a", 1, 0)
	spill(tr, "b", 1, 0)
	out := ChromeFlowAll(tr.Snapshot())
	tids := map[float64]bool{}
	names := map[string]bool{}
	for _, ev := range out.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			names[ev.Args["name"].(string)] = true
		}
		if ev.Ph == "X" {
			tids[float64(ev.Tid)] = true
		}
	}
	if !names["a"] || !names["b"] {
		t.Fatalf("thread names %v", names)
	}
	if len(tids) != 2 {
		t.Fatalf("sessions share a track: tids %v", tids)
	}
}

func TestHandlerServesIndexTreeAndChrome(t *testing.T) {
	tr := all()
	spill(tr, "octree#1", 2.0, 5.0)
	h := tr.Handler()

	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}

	code, body := get("/traces")
	if code != http.StatusOK {
		t.Fatalf("index → %d", code)
	}
	var rows []traceSummary
	if err := json.Unmarshal([]byte(body), &rows); err != nil || len(rows) != 1 {
		t.Fatalf("index rows: %v, %d", err, len(rows))
	}
	if rows[0].Session != "octree#1" || rows[0].Verdict != VerdictAttained || rows[0].Spans == 0 {
		t.Fatalf("index row %+v", rows[0])
	}

	code, body = get("/traces/octree#1")
	if code != http.StatusOK {
		t.Fatalf("session doc → %d", code)
	}
	var doc TraceDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil || len(doc.Spans) == 0 {
		t.Fatalf("session doc: %v, %d spans", err, len(doc.Spans))
	}

	code, body = get("/traces/octree#1?format=chrome")
	if code != http.StatusOK || !strings.Contains(body, `"traceEvents"`) {
		t.Fatalf("chrome format → %d, %q", code, body[:min(len(body), 80)])
	}

	if code, _ = get("/traces/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown session → %d", code)
	}
}
