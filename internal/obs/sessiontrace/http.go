package sessiontrace

import (
	"encoding/json"
	"net/http"
	"strings"
)

// Handler returns the /traces HTTP surface, mounted on obs.Serve via
// ServerConfig.Traces:
//
//	GET /traces                      index of retained traces
//	GET /traces/{session}            one session's span tree as JSON
//	GET /traces/{session}?format=chrome   Chrome trace with flow arrows
//
// A nil tracer returns a handler that serves an empty index.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/traces")
		rest = strings.Trim(rest, "/")
		if rest == "" {
			t.serveIndex(w)
			return
		}
		doc, ok := t.Trace(rest)
		if !ok {
			http.Error(w, "no trace for session "+rest, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if r.URL.Query().Get("format") == "chrome" {
			enc.SetIndent("", "")
			_ = enc.Encode(ChromeFlow(doc))
			return
		}
		_ = enc.Encode(doc)
	})
}

// traceSummary is one index row: enough to pick a session without
// pulling its whole span tree.
type traceSummary struct {
	Session string  `json:"session"`
	TraceID string  `json:"trace_id"`
	App     string  `json:"app,omitempty"`
	Verdict string  `json:"verdict,omitempty"`
	Spans   int     `json:"spans"`
	Start   float64 `json:"start"`
	End     float64 `json:"end"`
}

func (t *Tracer) serveIndex(w http.ResponseWriter) {
	docs := t.Snapshot()
	rows := make([]traceSummary, 0, len(docs))
	for _, d := range docs {
		row := traceSummary{
			Session: d.Session, TraceID: d.TraceID, App: d.App,
			Verdict: d.Verdict, Spans: len(d.Spans),
		}
		if len(d.Spans) > 0 {
			row.Start = d.Spans[0].Start
			row.End = d.Spans[0].End
		}
		rows = append(rows, row)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rows)
}
