package sessiontrace

import (
	"encoding/json"
	"io"

	"bettertogether/internal/obs"
)

// flowEpsilonUs is the width, in microseconds, given to instantaneous
// lifecycle spans in the Chrome export: Perfetto cannot anchor a flow
// arrow on a zero-width slice, so instants render as 1µs slivers. The
// JSON span dump keeps the true zero widths.
const flowEpsilonUs = 1.0

// ChromeFlow renders one trace as a Chrome trace_event document whose
// spans are connected by flow events ("s" → "t" → "f"), so Perfetto
// draws causality arrows from arrival through placement, admission,
// waves, and any re-plan or migration to completion.
func ChromeFlow(doc TraceDoc) obs.ChromeTraceDoc {
	out := obs.ChromeTraceDoc{TraceEvents: []obs.ChromeTraceEvent{}, DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents, obs.ChromeTraceEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "bettertogether sessions"},
	})
	appendFlowTrace(&out, doc, 0)
	return out
}

// ChromeFlowAll merges every trace into one document, one thread track
// per session.
func ChromeFlowAll(docs []TraceDoc) obs.ChromeTraceDoc {
	out := obs.ChromeTraceDoc{TraceEvents: []obs.ChromeTraceEvent{}, DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents, obs.ChromeTraceEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "bettertogether sessions"},
	})
	for i, d := range docs {
		appendFlowTrace(&out, d, i)
	}
	return out
}

// WriteChromeFlow encodes ChromeFlowAll for the Snapshot to w.
func (t *Tracer) WriteChromeFlow(w io.Writer) error {
	return json.NewEncoder(w).Encode(ChromeFlowAll(t.Snapshot()))
}

// appendFlowTrace emits doc's spans as "X" slices on thread tid plus a
// flow chain threading every span in lifecycle order.
func appendFlowTrace(out *obs.ChromeTraceDoc, doc TraceDoc, tid int) {
	out.TraceEvents = append(out.TraceEvents, obs.ChromeTraceEvent{
		Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
		Args: map[string]any{"name": doc.Session},
	})
	for _, s := range doc.Spans {
		name := s.Kind
		if s.Name != "" {
			name = s.Kind + " " + s.Name
		}
		durUs := (s.End - s.Start) * 1e6
		if durUs <= 0 {
			durUs = flowEpsilonUs
		}
		args := map[string]any{"span": s.ID, "trace_id": doc.TraceID}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		out.TraceEvents = append(out.TraceEvents, obs.ChromeTraceEvent{
			Name: name, Cat: "session", Ph: "X",
			Ts: s.Start * 1e6, Dur: durUs,
			Pid: 1, Tid: tid, Args: args,
		})
	}
	// The flow chain: one arrow sequence per trace, bound to each span's
	// start inside its slice ("e" binds the finish to the enclosing
	// slice). A single span gets no arrows — there is nothing to link.
	if len(doc.Spans) < 2 {
		return
	}
	for i, s := range doc.Spans {
		ev := obs.ChromeTraceEvent{
			Name: "lifecycle", Cat: "flow", Ts: s.Start * 1e6,
			Pid: 1, Tid: tid, ID: doc.TraceID,
		}
		switch i {
		case 0:
			ev.Ph = "s"
		case len(doc.Spans) - 1:
			ev.Ph = "f"
			ev.BP = "e"
		default:
			ev.Ph = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
}
