// Package sessiontrace records causal, parent-linked span trees for
// session lifecycles across the fleet, runtime, and engine layers: one
// trace per sampled session, from fleet arrival through placement
// attempts (including every typed refusal), hold/admit, waves, drift
// re-plans, and migration to completion.
//
// The tracer is fed by direct, synchronous hooks at the recording
// sites rather than by an obs.Stream subscription: subscriptions may
// drop events under backpressure, and a causal record with holes is
// worse than none. Every hook is safe on a nil *Tracer, so call sites
// need no guards.
//
// Determinism: spans carry only logical times (virtual seconds,
// advanced by AdvanceTo from the replay's DES closures and by wave
// durations), and head-sampling is a pure function of (seed, session
// name) — the same seed and the same fleet trace produce a
// byte-identical sampled span set on every replay.
package sessiontrace

import (
	"fmt"
	"sync"
)

// Span kinds, in the order they typically appear in a lifecycle.
const (
	KindSession      = "session"   // root: arrival → completion
	KindPlacement    = "placement" // fleet placement phase
	KindAttempt      = "attempt"   // one per-candidate admission refusal
	KindHold         = "hold"      // admitted with launch deferred
	KindAdmit        = "admit"     // admitted and launched immediately
	KindStart        = "start"     // held session launched
	KindWave         = "wave"      // one pipelined wave
	KindReplan       = "replan"    // churn-triggered re-plan took effect
	KindDrift        = "drift-detected"
	KindDriftReplan  = "drift-replan" // drift-triggered re-plan took effect
	KindMigration    = "migration"    // drain-triggered move to another node
	KindReleased     = "released"     // reservation released (migration source)
	KindRejectedSpan = "rejected"     // no node admitted the arrival
)

// Trace verdicts.
const (
	VerdictOK       = "ok"       // finished, no deadline attached
	VerdictAttained = "attained" // finished within its deadline
	VerdictMissed   = "missed"   // finished late
	VerdictFailed   = "failed"   // finished with an error
	VerdictRejected = "rejected" // never admitted anywhere
)

// Span is one parent-linked node of a session's trace tree. IDs are
// per-trace and start at 1; Parent 0 marks the root. Instantaneous
// lifecycle points (admit, replan, drift) carry Start == End.
type Span struct {
	ID     int     `json:"id"`
	Parent int     `json:"parent,omitempty"`
	Kind   string  `json:"kind"`
	Name   string  `json:"name,omitempty"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Detail string  `json:"detail,omitempty"`
}

// TraceDoc is one session's complete causal record: identity, SLO
// verdict, and the span tree in recording order (parents precede
// children).
type TraceDoc struct {
	Session  string  `json:"session"`
	TraceID  string  `json:"trace_id"`
	App      string  `json:"app,omitempty"`
	Verdict  string  `json:"verdict,omitempty"`
	Deadline float64 `json:"deadline,omitempty"`
	Elapsed  float64 `json:"elapsed,omitempty"`
	Spans    []Span  `json:"spans"`
}

// Config parameterizes a Tracer.
type Config struct {
	// SampleRate is the deterministic head-sampling fraction: a session
	// is traced iff hash(seed, name) maps below it. >= 1 traces every
	// session; <= 0 traces none (every hook is then a cheap no-op).
	SampleRate float64
	// Seed feeds the sampling hash and the trace IDs, so a replay's
	// sampled set is reproducible and byte-identical across runs.
	Seed int64
	// Capacity bounds retained traces (default 1024). When exceeded the
	// oldest finished trace is evicted first, then the oldest open one.
	Capacity int
}

// DefaultCapacity bounds retained traces when Config.Capacity is zero.
const DefaultCapacity = 1024

// record is the mutable per-session state behind a TraceDoc while the
// session is live: open-span cursors and the per-trace logical clock.
type record struct {
	doc       *TraceDoc
	clock     float64 // advances monotonically; max of tracer now and wave ends
	placement int     // open placement span id (0 = none)
	wave      int     // open wave span id (0 = none)
	migration int     // open migration span id (0 = none)
	done      bool
}

// Tracer records sampled session lifecycles. The zero value and nil
// are both valid, fully inert tracers.
type Tracer struct {
	rate float64
	seed int64
	cap  int

	mu    sync.Mutex
	now   float64 // logical clock, virtual seconds
	recs  map[string]*record
	order []string // sampled sessions in arrival order (eviction + snapshot order)
}

// New builds a Tracer. A SampleRate <= 0 yields a tracer whose hooks
// all no-op without taking the lock.
func New(cfg Config) *Tracer {
	c := cfg.Capacity
	if c <= 0 {
		c = DefaultCapacity
	}
	return &Tracer{rate: cfg.SampleRate, seed: cfg.Seed, cap: c, recs: make(map[string]*record)}
}

// FNV-1a 64 parameters, inlined so the sampling decision allocates
// nothing (hash/fnv's Write takes a []byte and would box the string).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hash folds the seed's 8 little-endian bytes and the session name
// through FNV-1a 64.
func (t *Tracer) hash(session string) uint64 {
	h := uint64(fnvOffset)
	s := uint64(t.seed)
	for i := 0; i < 8; i++ {
		h ^= (s >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	for i := 0; i < len(session); i++ {
		h ^= uint64(session[i])
		h *= fnvPrime
	}
	return h
}

// sampled reports whether session falls under the head-sampling rate,
// returning the hash for trace-ID derivation. Pure and allocation-free:
// the unsampled hot path is hash + compare, no lock.
func (t *Tracer) sampled(session string) (uint64, bool) {
	if t.rate <= 0 {
		return 0, false
	}
	h := t.hash(session)
	if t.rate >= 1 {
		return h, true
	}
	// Top 53 bits → uniform float64 in [0, 1).
	return h, float64(h>>11)/(1<<53) < t.rate
}

// AdvanceTo moves the logical clock forward to at (never backward).
// Replay closures call it with the DES event time before touching the
// fleet, so spans line up with the replay timeline.
func (t *Tracer) AdvanceTo(at float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if at > t.now {
		t.now = at
	}
	t.mu.Unlock()
}

// get returns the live record for session, or nil. Callers hold t.mu.
func (t *Tracer) get(session string) *record {
	r := t.recs[session]
	if r == nil || r.done {
		return nil
	}
	return r
}

// tick returns the record's current logical time, folding in the
// tracer clock. Callers hold t.mu.
func (t *Tracer) tick(r *record) float64 {
	if t.now > r.clock {
		r.clock = t.now
	}
	return r.clock
}

// span appends a span and returns its id. Callers hold t.mu.
func (r *record) span(parent int, kind, name string, start, end float64, detail string) int {
	id := len(r.doc.Spans) + 1
	r.doc.Spans = append(r.doc.Spans, Span{
		ID: id, Parent: parent, Kind: kind, Name: name,
		Start: start, End: end, Detail: detail,
	})
	return id
}

// ensure creates (or returns) the record for a sampled session,
// opening its root span at the current logical time. Callers hold t.mu.
func (t *Tracer) ensure(session, app string) *record {
	if r := t.get(session); r != nil {
		return r
	}
	if _, ok := t.recs[session]; ok {
		return nil // finished trace with this name is retained; don't reopen
	}
	h, ok := t.sampled(session)
	if !ok {
		return nil
	}
	t.evictLocked()
	r := &record{doc: &TraceDoc{
		Session: session,
		TraceID: fmt.Sprintf("%016x", h),
		App:     app,
	}}
	r.clock = t.now
	r.span(0, KindSession, app, r.clock, r.clock, "")
	t.recs[session] = r
	t.order = append(t.order, session)
	return r
}

// evictLocked drops the oldest finished trace (or, failing that, the
// oldest open one) once the retained set is at capacity.
func (t *Tracer) evictLocked() {
	if len(t.order) < t.cap {
		return
	}
	victim := -1
	for i, name := range t.order {
		if r := t.recs[name]; r != nil && r.done {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
	}
	delete(t.recs, t.order[victim])
	t.order = append(t.order[:victim], t.order[victim+1:]...)
}

// Arrived opens a trace for a sampled session at fleet arrival and its
// placement phase span. Unsampled sessions return without locking.
func (t *Tracer) Arrived(session, app string) {
	if t == nil {
		return
	}
	if _, ok := t.sampled(session); !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.ensure(session, app)
	if r == nil {
		return
	}
	if r.placement == 0 {
		now := t.tick(r)
		r.placement = r.span(1, KindPlacement, "", now, now, "")
	}
}

// Attempt records one per-candidate admission refusal during
// placement: node is the candidate, refusal the typed admission error.
func (t *Tracer) Attempt(session, node, refusal string) {
	if t == nil {
		return
	}
	if _, ok := t.sampled(session); !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.get(session)
	if r == nil {
		return
	}
	parent := r.placement
	if parent == 0 {
		parent = 1
	}
	now := t.tick(r)
	r.span(parent, KindAttempt, node, now, now, refusal)
}

// Placed closes the placement phase: the session landed on node.
// choice is the 1-based rank of the admitting candidate (choice > 1 is
// a spillover).
func (t *Tracer) Placed(session, node string, choice int) {
	if t == nil {
		return
	}
	if _, ok := t.sampled(session); !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.get(session)
	if r == nil {
		return
	}
	now := t.tick(r)
	if r.placement != 0 {
		s := &r.doc.Spans[r.placement-1]
		s.End = now
		s.Name = node
		if choice > 1 {
			s.Detail = fmt.Sprintf("spillover: choice %d", choice)
		}
		r.placement = 0
	}
}

// Rejected closes the trace with a rejected verdict: no node admitted
// the arrival. detail is the aggregated placement error.
func (t *Tracer) Rejected(session, detail string) {
	if t == nil {
		return
	}
	if _, ok := t.sampled(session); !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.get(session)
	if r == nil {
		return
	}
	now := t.tick(r)
	if r.placement != 0 {
		s := &r.doc.Spans[r.placement-1]
		s.End = now
		r.placement = 0
	}
	r.span(1, KindRejectedSpan, "", now, now, detail)
	r.doc.Spans[0].End = now
	r.doc.Verdict = VerdictRejected
	r.done = true
}

// Admitted records a successful node-runtime admission: kind "hold"
// when the launch is deferred (fleet placements hold by default),
// "admit" when it runs immediately. Opens the trace if the session
// bypassed fleet placement (direct runtime admission under btrun).
func (t *Tracer) Admitted(session, app, schedule string, hold bool) {
	if t == nil {
		return
	}
	if _, ok := t.sampled(session); !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.ensure(session, app)
	if r == nil {
		return
	}
	kind := KindAdmit
	if hold {
		kind = KindHold
	}
	now := t.tick(r)
	r.span(1, kind, "", now, now, schedule)
}

// Started records a held session's launch.
func (t *Tracer) Started(session string) {
	if t == nil {
		return
	}
	if _, ok := t.sampled(session); !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.get(session)
	if r == nil {
		return
	}
	now := t.tick(r)
	r.span(1, KindStart, "", now, now, "")
}

// WaveStart opens a wave span: wave is the wave index, tasks the
// number of pipelined tasks, schedule the assignment string.
func (t *Tracer) WaveStart(session string, wave, tasks int, schedule string) {
	if t == nil {
		return
	}
	if _, ok := t.sampled(session); !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.get(session)
	if r == nil {
		return
	}
	now := t.tick(r)
	r.wave = r.span(1, KindWave, fmt.Sprintf("wave %d", wave), now, now,
		fmt.Sprintf("%d tasks on %s", tasks, schedule))
}

// WaveEnd closes the open wave span, advancing the trace's logical
// clock by the wave's virtual duration.
func (t *Tracer) WaveEnd(session string, wave int, elapsed float64) {
	if t == nil {
		return
	}
	if _, ok := t.sampled(session); !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.get(session)
	if r == nil || r.wave == 0 {
		return
	}
	s := &r.doc.Spans[r.wave-1]
	end := s.Start + elapsed
	if end > r.clock {
		r.clock = end
	}
	s.End = end
	r.wave = 0
}

// instant records a zero-width child of the open wave (or the root when
// no wave is open). Callers hold t.mu.
func (t *Tracer) instant(r *record, kind, name, detail string) {
	parent := r.wave
	if parent == 0 {
		parent = 1
	}
	now := t.tick(r)
	r.span(parent, kind, name, now, now, detail)
}

// Replanned records a churn-triggered re-plan taking effect.
func (t *Tracer) Replanned(session, detail string) {
	if t == nil {
		return
	}
	if _, ok := t.sampled(session); !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if r := t.get(session); r != nil {
		t.instant(r, KindReplan, "", detail)
	}
}

// DriftDetected records the online profiler latching a drift for this
// session's stage on pu (observed/modeled ratio).
func (t *Tracer) DriftDetected(session, stage, pu string, ratio float64) {
	if t == nil {
		return
	}
	if _, ok := t.sampled(session); !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if r := t.get(session); r != nil {
		t.instant(r, KindDrift, stage, fmt.Sprintf("observed %.3gx modeled on %s", ratio, pu))
	}
}

// DriftReplanned records a drift-triggered re-plan taking effect.
func (t *Tracer) DriftReplanned(session, detail string) {
	if t == nil {
		return
	}
	if _, ok := t.sampled(session); !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if r := t.get(session); r != nil {
		t.instant(r, KindDriftReplan, "", detail)
	}
}

// BeginMigration opens a migration span: the drain controller is
// moving this held session off from.
func (t *Tracer) BeginMigration(session, from string) {
	if t == nil {
		return
	}
	if _, ok := t.sampled(session); !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.get(session)
	if r == nil {
		return
	}
	now := t.tick(r)
	r.migration = r.span(1, KindMigration, from, now, now, "")
}

// Migrated closes the open migration span: the session now holds a
// reservation on to.
func (t *Tracer) Migrated(session, from, to string) {
	if t == nil {
		return
	}
	if _, ok := t.sampled(session); !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.get(session)
	if r == nil {
		return
	}
	now := t.tick(r)
	if r.migration != 0 {
		s := &r.doc.Spans[r.migration-1]
		s.End = now
		s.Detail = fmt.Sprintf("from=%s to=%s", from, to)
		r.migration = 0
	} else {
		r.span(1, KindMigration, from, now, now, fmt.Sprintf("from=%s to=%s", from, to))
	}
}

// SessionEnd closes the trace and assigns the verdict. A canceled
// session that ran zero tasks is a released reservation (the migration
// source of a moved session): it records a released marker but leaves
// the trace open, because the same-named session continues elsewhere.
func (t *Tracer) SessionEnd(session string, elapsed, deadline float64, tasks int, canceled bool, errDetail string) {
	if t == nil {
		return
	}
	if _, ok := t.sampled(session); !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.get(session)
	if r == nil {
		return
	}
	if canceled && tasks == 0 {
		t.instant(r, KindReleased, "", "reservation released before launch")
		return
	}
	now := t.tick(r)
	root := &r.doc.Spans[0]
	root.End = now
	r.doc.Elapsed = elapsed
	r.doc.Deadline = deadline
	switch {
	case errDetail != "":
		r.doc.Verdict = VerdictFailed
		root.Detail = errDetail
	case deadline > 0 && elapsed <= deadline:
		r.doc.Verdict = VerdictAttained
	case deadline > 0:
		r.doc.Verdict = VerdictMissed
	default:
		r.doc.Verdict = VerdictOK
	}
	r.done = true
}

// Trace returns a copy of session's trace document, if sampled and
// still retained.
func (t *Tracer) Trace(session string) (TraceDoc, bool) {
	if t == nil {
		return TraceDoc{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.recs[session]
	if r == nil {
		return TraceDoc{}, false
	}
	return copyDoc(r.doc), true
}

// Snapshot returns copies of every retained trace in arrival order.
func (t *Tracer) Snapshot() []TraceDoc {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceDoc, 0, len(t.order))
	for _, name := range t.order {
		if r := t.recs[name]; r != nil {
			out = append(out, copyDoc(r.doc))
		}
	}
	return out
}

func copyDoc(d *TraceDoc) TraceDoc {
	c := *d
	c.Spans = append([]Span(nil), d.Spans...)
	return c
}
