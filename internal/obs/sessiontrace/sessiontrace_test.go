package sessiontrace

import (
	"encoding/json"
	"fmt"
	"testing"
)

// all returns a tracer that samples every session.
func all() *Tracer { return New(Config{SampleRate: 1, Seed: 1}) }

// spill replays a canonical spillover lifecycle onto tr: arrival, one
// refused candidate, spillover placement, hold, start, two waves, and a
// deadline-carrying completion.
func spill(tr *Tracer, session string, elapsed, deadline float64) {
	tr.Arrived(session, "octree")
	tr.Attempt(session, "pixel7a/0", "bandwidth demand 12.00 > 10.00")
	tr.Placed(session, "jetson/0", 2)
	tr.Admitted(session, "octree", "[big gpu]", true)
	tr.Started(session)
	tr.WaveStart(session, 0, 4, "[big gpu]")
	tr.WaveEnd(session, 0, elapsed/2)
	tr.WaveStart(session, 1, 4, "[big gpu]")
	tr.WaveEnd(session, 1, elapsed/2)
	tr.SessionEnd(session, elapsed, deadline, 8, false, "")
}

func TestLifecycleSpanTree(t *testing.T) {
	tr := all()
	tr.AdvanceTo(3)
	spill(tr, "octree#1", 2.0, 5.0)

	doc, ok := tr.Trace("octree#1")
	if !ok {
		t.Fatal("trace not retained")
	}
	if doc.Session != "octree#1" || doc.App != "octree" {
		t.Fatalf("identity %q/%q", doc.Session, doc.App)
	}
	if doc.Verdict != VerdictAttained {
		t.Fatalf("verdict %q, want attained (elapsed 2 <= deadline 5)", doc.Verdict)
	}
	if doc.Deadline != 5 || doc.Elapsed != 2 {
		t.Fatalf("deadline/elapsed %v/%v", doc.Deadline, doc.Elapsed)
	}
	if doc.TraceID == "" || len(doc.TraceID) != 16 {
		t.Fatalf("trace id %q", doc.TraceID)
	}

	kinds := make([]string, len(doc.Spans))
	for i, s := range doc.Spans {
		kinds[i] = s.Kind
	}
	want := []string{KindSession, KindPlacement, KindAttempt, KindHold, KindStart,
		KindWave, KindWave}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("span kinds %v, want %v", kinds, want)
	}

	// Causality: IDs start at 1, the root has no parent, the refusal hangs
	// off the placement span, waves off the root.
	if doc.Spans[0].ID != 1 || doc.Spans[0].Parent != 0 {
		t.Fatalf("root span %+v", doc.Spans[0])
	}
	if doc.Spans[2].Parent != doc.Spans[1].ID {
		t.Fatalf("attempt parent %d, want placement %d", doc.Spans[2].Parent, doc.Spans[1].ID)
	}
	for _, i := range []int{3, 4, 5, 6} {
		if doc.Spans[i].Parent != 1 {
			t.Fatalf("span %d (%s) parent %d, want root", i, doc.Spans[i].Kind, doc.Spans[i].Parent)
		}
	}

	// The clock: arrival at t=3 (AdvanceTo), waves advance by their
	// elapsed, the root closes at the last wave's end.
	if doc.Spans[0].Start != 3 {
		t.Fatalf("root start %v, want 3", doc.Spans[0].Start)
	}
	if doc.Spans[5].End != 4 || doc.Spans[6].End != 5 {
		t.Fatalf("wave ends %v/%v, want 4/5", doc.Spans[5].End, doc.Spans[6].End)
	}
	if doc.Spans[0].End != 5 {
		t.Fatalf("root end %v, want 5", doc.Spans[0].End)
	}

	// Spillover annotation on the placement span.
	if doc.Spans[1].Name != "jetson/0" || doc.Spans[1].Detail != "spillover: choice 2" {
		t.Fatalf("placement span %+v", doc.Spans[1])
	}
	if doc.Spans[2].Name != "pixel7a/0" || doc.Spans[2].Detail == "" {
		t.Fatalf("attempt span %+v", doc.Spans[2])
	}
}

func TestVerdicts(t *testing.T) {
	cases := []struct {
		name     string
		elapsed  float64
		deadline float64
		errText  string
		want     string
	}{
		{"attained", 2, 5, "", VerdictAttained},
		{"missed", 6, 5, "", VerdictMissed},
		{"no-deadline", 2, 0, "", VerdictOK},
		{"failed", 2, 5, "engine: boom", VerdictFailed},
	}
	for _, c := range cases {
		tr := all()
		tr.Arrived(c.name, "octree")
		tr.Placed(c.name, "jetson/0", 1)
		tr.SessionEnd(c.name, c.elapsed, c.deadline, 4, false, c.errText)
		doc, ok := tr.Trace(c.name)
		if !ok || doc.Verdict != c.want {
			t.Errorf("%s: verdict %q (ok=%v), want %q", c.name, doc.Verdict, ok, c.want)
		}
		if c.errText != "" && doc.Spans[0].Detail != c.errText {
			t.Errorf("%s: root detail %q", c.name, doc.Spans[0].Detail)
		}
	}
}

func TestRejectedTrace(t *testing.T) {
	tr := all()
	tr.Arrived("octree#9", "octree")
	tr.Attempt("octree#9", "pixel7a/0", "bandwidth demand 12.00 > 10.00")
	tr.Attempt("octree#9", "jetson/0", "cores demand 9.00 > 8.00")
	tr.Rejected("octree#9", "fleet: no node admitted \"octree\" (2 tried)")
	doc, ok := tr.Trace("octree#9")
	if !ok || doc.Verdict != VerdictRejected {
		t.Fatalf("verdict %q (ok=%v)", doc.Verdict, ok)
	}
	last := doc.Spans[len(doc.Spans)-1]
	if last.Kind != KindRejectedSpan || last.Detail == "" {
		t.Fatalf("terminal span %+v", last)
	}
	// A finished trace must not reopen under the same name.
	tr.Arrived("octree#9", "octree")
	again, _ := tr.Trace("octree#9")
	if len(again.Spans) != len(doc.Spans) {
		t.Fatalf("finished trace reopened: %d spans, had %d", len(again.Spans), len(doc.Spans))
	}
}

func TestMigrationAndReleasedReservation(t *testing.T) {
	tr := all()
	tr.Arrived("octree#2", "octree")
	tr.Placed("octree#2", "jetson/0", 1)
	tr.Admitted("octree#2", "octree", "[big]", true)

	// Drain moves the session: re-admit elsewhere, then the source
	// reservation ends canceled with zero tasks — a release, not a death.
	tr.BeginMigration("octree#2", "jetson/0")
	tr.Admitted("octree#2", "octree", "[gpu]", true)
	tr.SessionEnd("octree#2", 0, 5, 0, true, "context canceled")
	tr.Migrated("octree#2", "jetson/0", "pixel7a/0")

	doc, ok := tr.Trace("octree#2")
	if !ok {
		t.Fatal("trace gone")
	}
	if doc.Verdict != "" {
		t.Fatalf("released reservation closed the trace: verdict %q", doc.Verdict)
	}
	var mig, rel bool
	for _, s := range doc.Spans {
		if s.Kind == KindMigration && s.Detail == "from=jetson/0 to=pixel7a/0" {
			mig = true
		}
		if s.Kind == KindReleased {
			rel = true
		}
	}
	if !mig || !rel {
		t.Fatalf("migration=%v released=%v in %+v", mig, rel, doc.Spans)
	}

	// The continued session finishes normally on the new node.
	tr.Started("octree#2")
	tr.SessionEnd("octree#2", 3, 5, 4, false, "")
	doc, _ = tr.Trace("octree#2")
	if doc.Verdict != VerdictAttained {
		t.Fatalf("final verdict %q", doc.Verdict)
	}
}

func TestSamplingDeterministicAndPartial(t *testing.T) {
	// Same seed ⇒ identical decisions; a 0.5 rate over many names must
	// sample some and skip some.
	a := New(Config{SampleRate: 0.5, Seed: 42})
	b := New(Config{SampleRate: 0.5, Seed: 42})
	in, out := 0, 0
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("octree#%d", i)
		_, sa := a.sampled(name)
		_, sb := b.sampled(name)
		if sa != sb {
			t.Fatalf("decision for %q diverged", name)
		}
		if sa {
			in++
		} else {
			out++
		}
	}
	if in == 0 || out == 0 {
		t.Fatalf("rate 0.5 sampled %d/200", in)
	}
	// A different seed picks a different set (overwhelmingly likely over
	// 200 names).
	c := New(Config{SampleRate: 0.5, Seed: 43})
	diff := 0
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("octree#%d", i)
		_, sa := a.sampled(name)
		_, sc := c.sampled(name)
		if sa != sc {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed change did not move the sampled set")
	}
}

func TestSampledSetByteIdentical(t *testing.T) {
	replay := func() []byte {
		tr := New(Config{SampleRate: 0.5, Seed: 7})
		for i := 0; i < 40; i++ {
			tr.AdvanceTo(float64(i))
			spill(tr, fmt.Sprintf("octree#%d", i), 1.5, 2.0)
		}
		b, err := json.Marshal(tr.Snapshot())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	one, two := replay(), replay()
	if string(one) != string(two) {
		t.Fatal("same seed, same replay: sampled span sets differ")
	}
}

func TestUnsampledHooksDoNotAllocate(t *testing.T) {
	tr := New(Config{SampleRate: 0.25, Seed: 1})
	// Find a session name the tracer skips.
	name := ""
	for i := 0; i < 1000; i++ {
		n := fmt.Sprintf("octree#%d", i)
		if _, ok := tr.sampled(n); !ok {
			name = n
			break
		}
	}
	if name == "" {
		t.Fatal("no unsampled name found at rate 0.25")
	}
	allocs := testing.AllocsPerRun(100, func() {
		tr.Arrived(name, "octree")
		tr.Attempt(name, "jetson/0", "refused")
		tr.Placed(name, "jetson/0", 1)
		tr.WaveStart(name, 0, 4, "[big]")
		tr.WaveEnd(name, 0, 1)
		tr.SessionEnd(name, 1, 2, 4, false, "")
	})
	if allocs != 0 {
		t.Fatalf("unsampled hot path allocates %.1f per run, want 0", allocs)
	}
	// The rate-0 tracer and the nil tracer are equally free.
	var nilTr *Tracer
	off := New(Config{})
	allocs = testing.AllocsPerRun(100, func() {
		nilTr.Arrived("x", "y")
		off.Arrived("x", "y")
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %.1f per run", allocs)
	}
}

func TestEvictionPrefersFinishedTraces(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 1, Capacity: 2})
	tr.Arrived("a", "octree") // stays open
	tr.Arrived("b", "octree")
	tr.SessionEnd("b", 1, 0, 4, false, "") // finished → preferred victim
	tr.Arrived("c", "octree")
	if _, ok := tr.Trace("b"); ok {
		t.Fatal("finished trace b survived eviction")
	}
	if _, ok := tr.Trace("a"); !ok {
		t.Fatal("open trace a evicted before finished b")
	}
	if _, ok := tr.Trace("c"); !ok {
		t.Fatal("new trace c missing")
	}
	// All open: the oldest goes.
	tr.Arrived("d", "octree")
	if _, ok := tr.Trace("a"); ok {
		t.Fatal("oldest open trace a survived at capacity")
	}
}

func TestSnapshotReturnsCopies(t *testing.T) {
	tr := all()
	tr.Arrived("a", "octree")
	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot %d docs", len(snap))
	}
	snap[0].Spans[0].Detail = "mutated"
	doc, _ := tr.Trace("a")
	if doc.Spans[0].Detail == "mutated" {
		t.Fatal("snapshot aliases live spans")
	}
}
