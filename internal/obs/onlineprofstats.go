package obs

import "io"

// OnlineProfStats is a point-in-time view of an online profiler's
// counters, decoupled from the estimator implementation so the server
// can export any feedback layer. internal/onlineprof's Stats converts
// 1:1; runtime.Runtime contributes the replan counter.
type OnlineProfStats struct {
	// Observations counts stage-done service times folded into EWMAs;
	// Cells is the live (stage, PU, env) estimator population and
	// LatchedCells how many of them have flagged drift.
	Observations uint64 `json:"observations"`
	Cells        int    `json:"cells"`
	LatchedCells int    `json:"latchedCells"`
	// DriftsTriggered counts drift detections; Invalidations counts
	// estimate resets forced by subscriber event loss.
	DriftsTriggered uint64 `json:"driftsTriggered"`
	Invalidations   uint64 `json:"invalidations"`
	// DriftReplans counts runtime re-plans the detections actually
	// caused (a detection during shutdown may not replan).
	DriftReplans int `json:"driftReplans"`
}

// PromOnlineProf writes the online-profiler counter families as
// Prometheus text exposition — the feedback-loop health signal: a
// rising bt_onlineprof_drifts_total means the offline profile no
// longer matches what the runtime observes.
func PromOnlineProf(w io.Writer, s OnlineProfStats) error {
	pw := &promWriter{w: w}
	pw.family("bt_onlineprof_observations_total", "counter",
		"Stage service times folded into online EWMA estimates.")
	pw.sample("bt_onlineprof_observations_total", nil, float64(s.Observations))
	pw.family("bt_onlineprof_cells", "gauge",
		"Live (stage, PU, env) estimator cells.")
	pw.sample("bt_onlineprof_cells", nil, float64(s.Cells))
	pw.family("bt_onlineprof_latched_cells", "gauge",
		"Estimator cells currently flagging model drift.")
	pw.sample("bt_onlineprof_latched_cells", nil, float64(s.LatchedCells))
	pw.family("bt_onlineprof_drifts_total", "counter",
		"Drift detections: observed service times diverged from the model.")
	pw.sample("bt_onlineprof_drifts_total", nil, float64(s.DriftsTriggered))
	pw.family("bt_onlineprof_invalidations_total", "counter",
		"Estimate windows invalidated after subscriber event loss.")
	pw.sample("bt_onlineprof_invalidations_total", nil, float64(s.Invalidations))
	pw.family("bt_onlineprof_replans_total", "counter",
		"Runtime re-plans triggered by drift detections.")
	pw.sample("bt_onlineprof_replans_total", nil, float64(s.DriftReplans))
	return pw.err
}
