package obs

import (
	"strings"
	"testing"
)

// TestServerMetricsIncludeOnlineProf wires the OnlineProf hook into the
// server and checks the bt_onlineprof_* families land on /metrics.
func TestServerMetricsIncludeOnlineProf(t *testing.T) {
	cfg := testServerConfig()
	cfg.OnlineProf = func() OnlineProfStats {
		return OnlineProfStats{
			Observations: 120, Cells: 7, LatchedCells: 1,
			DriftsTriggered: 2, Invalidations: 1, DriftReplans: 2,
		}
	}
	code, body := get(t, NewHandler(cfg), "/metrics")
	if code != 200 {
		t.Fatalf("/metrics → %d", code)
	}
	for _, want := range []string{
		"bt_onlineprof_observations_total 120",
		"bt_onlineprof_cells 7",
		"bt_onlineprof_drifts_total 2",
		"bt_onlineprof_replans_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Without the hook the families must stay absent.
	if _, plain := get(t, NewHandler(testServerConfig()), "/metrics"); strings.Contains(plain, "bt_onlineprof") {
		t.Error("onlineprof families exported without an OnlineProf hook")
	}
}

func TestPromOnlineProfExposition(t *testing.T) {
	var b strings.Builder
	err := PromOnlineProf(&b, OnlineProfStats{
		Observations: 9, Cells: 3, LatchedCells: 2,
		DriftsTriggered: 1, Invalidations: 4, DriftReplans: 1,
	})
	if err != nil {
		t.Fatalf("PromOnlineProf: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE bt_onlineprof_observations_total counter",
		"bt_onlineprof_observations_total 9",
		"# TYPE bt_onlineprof_cells gauge",
		"bt_onlineprof_cells 3",
		"bt_onlineprof_latched_cells 2",
		"bt_onlineprof_drifts_total 1",
		"bt_onlineprof_invalidations_total 4",
		"bt_onlineprof_replans_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}
}
