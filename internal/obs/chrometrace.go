package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"bettertogether/internal/trace"
)

// ChromeTraceEvent is one entry of a Chrome trace_event document — the
// subset of the trace-event format the exporter emits: complete ("X")
// duration events for spans and metadata ("M") events naming processes
// and threads. See the Trace Event Format spec; Perfetto and
// chrome://tracing both load it.
type ChromeTraceEvent struct {
	// Name is the slice label (the stage name) or the metadata kind.
	Name string `json:"name"`
	// Cat is the event category ("stage" for spans).
	Cat string `json:"cat,omitempty"`
	// Ph is the event phase: "X" complete, "M" metadata.
	Ph string `json:"ph"`
	// Ts is the start timestamp in microseconds; Dur the duration in
	// microseconds (complete events only).
	Ts  float64 `json:"ts"`
	Dur float64 `json:"dur,omitempty"`
	// Pid and Tid place the event on a track: one process per document,
	// one thread per timeline row (chunk).
	Pid int `json:"pid"`
	Tid int `json:"tid"`
	// Args carries span details (task, stage index, PU class) or the
	// metadata payload.
	Args map[string]any `json:"args,omitempty"`
	// ID links flow events ("s" start, "t" step, "f" finish) into one
	// causality arrow chain; BP is the flow binding point ("e" binds the
	// arrow to the enclosing slice rather than the next one). Both are
	// empty for complete and metadata events.
	ID string `json:"id,omitempty"`
	BP string `json:"bp,omitempty"`
}

// ChromeTraceDoc is the JSON object format of a trace_event document.
type ChromeTraceDoc struct {
	TraceEvents     []ChromeTraceEvent `json:"traceEvents"`
	DisplayTimeUnit string             `json:"displayTimeUnit"`
}

// chromePid is the single process id the exporter places all tracks on.
const chromePid = 1

// ChromeTrace writes tl as Chrome trace_event JSON: one complete event
// per span (microsecond timestamps on the timeline's own clock, one
// thread track per timeline row) plus thread_name metadata from the
// timeline's row labels, so merged multi-session timelines keep their
// session-qualified track names. A nil or empty timeline writes a valid
// document with no span events.
func ChromeTrace(w io.Writer, tl *trace.Timeline) error {
	doc := BuildChromeTrace(tl)
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// BuildChromeTrace renders the timeline into an in-memory document —
// ChromeTrace without the serialization, for callers that post-process.
func BuildChromeTrace(tl *trace.Timeline) ChromeTraceDoc {
	doc := ChromeTraceDoc{TraceEvents: []ChromeTraceEvent{}, DisplayTimeUnit: "ms"}
	if tl == nil {
		return doc
	}
	rows := tl.Chunks()
	// Track names: explicit labels win, otherwise "chunk N (pu)" from the
	// spans, mirroring the Gantt's row labeling.
	names := make([]string, rows)
	for _, s := range tl.Spans {
		if names[s.Chunk] == "" {
			names[s.Chunk] = fmt.Sprintf("chunk %d (%s)", s.Chunk, s.PU)
		}
	}
	for r := 0; r < rows && r < len(tl.Labels); r++ {
		if tl.Labels[r] != "" {
			names[r] = tl.Labels[r]
		}
	}
	doc.TraceEvents = append(doc.TraceEvents, ChromeTraceEvent{
		Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
		Args: map[string]any{"name": "bettertogether"},
	})
	for r := 0; r < rows; r++ {
		doc.TraceEvents = append(doc.TraceEvents, ChromeTraceEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: r,
			Args: map[string]any{"name": names[r]},
		})
	}
	for _, s := range tl.Spans {
		doc.TraceEvents = append(doc.TraceEvents, ChromeTraceEvent{
			Name: s.Stage, Cat: "stage", Ph: "X",
			Ts: s.Start * 1e6, Dur: s.Duration() * 1e6,
			Pid: chromePid, Tid: s.Chunk,
			Args: map[string]any{
				"task":       s.Task,
				"stageIndex": s.StageIndex,
				"pu":         string(s.PU),
			},
		})
	}
	return doc
}
