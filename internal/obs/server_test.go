package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bettertogether/internal/metrics"
	"bettertogether/internal/trace"
)

// fakeInspector is a canned obs.Inspector for handler tests.
type fakeInspector struct {
	infos     []SessionInfo
	metrics   map[string]*metrics.Pipeline
	timelines map[string]*trace.Timeline
	headroom  Headroom
}

func (f *fakeInspector) SessionInfos() []SessionInfo { return f.infos }
func (f *fakeInspector) SessionMetrics(name string) *metrics.Pipeline {
	return f.metrics[name]
}
func (f *fakeInspector) SessionTimeline(name string) *trace.Timeline {
	return f.timelines[name]
}
func (f *fakeInspector) AdmissionHeadroom() Headroom { return f.headroom }

func testServerConfig() ServerConfig {
	insp := &fakeInspector{
		infos: []SessionInfo{
			{Name: "octree#0", App: "octree", Schedule: "[big gpu]", Tasks: 12, Replans: 1, PerTaskSec: 0.004, Resident: true},
			{Name: "vision#1", App: "vision", Schedule: "[gpu]", Tasks: 30, Err: "boom"},
		},
		metrics:   map[string]*metrics.Pipeline{"octree#0": testCollector()},
		timelines: map[string]*trace.Timeline{"octree#0": testTimeline()},
		headroom: Headroom{
			BWDemandGBs: 10, BWCapacityGBs: 40,
			CoresDemand: 6, CoresCapacity: 16,
			ResidentCount: 1, AdmittedTotal: 2, RejectedTotal: 1,
		},
	}
	stream := NewStream(16)
	admit := NewEvent(KindAdmit)
	admit.Session, admit.Detail = "octree#0", "[big gpu]"
	stream.Emit(admit)
	e := NewEvent(KindStageDone)
	e.Session, e.Stage, e.Chunk, e.Task = "octree#0", "sort", 0, 3
	stream.Emit(e)
	return ServerConfig{Inspector: insp, Stream: stream}
}

// get performs a request against the handler and returns status + body.
func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestServerEndpointsRespond(t *testing.T) {
	h := NewHandler(testServerConfig())
	for _, path := range []string{"/", "/healthz", "/metrics", "/sessions", "/trace", "/events", "/debug/pprof/"} {
		code, body := get(t, h, path)
		if code != http.StatusOK {
			t.Errorf("GET %s → %d", path, code)
		}
		if body == "" {
			t.Errorf("GET %s → empty body", path)
		}
	}
	if code, _ := get(t, h, "/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path → %d, want 404", code)
	}
}

func TestServerHealthz(t *testing.T) {
	_, body := get(t, NewHandler(ServerConfig{}), "/healthz")
	if body != "ok\n" {
		t.Fatalf("healthz body %q", body)
	}
}

func TestServerMetricsExposition(t *testing.T) {
	code, body := get(t, NewHandler(testServerConfig()), "/metrics")
	if code != 200 || body == "" {
		t.Fatalf("metrics: %d, %d bytes", code, len(body))
	}
	for _, want := range []string{
		`bt_stage_dispatches_total{session="octree#0",stage="sort",chunk="0",pu="big"} 10`,
		`bt_session_tasks_total{session="octree#0",app="octree"} 12`,
		`bt_session_replans_total{session="octree#0",app="octree"} 1`,
		`bt_session_resident{session="vision#1",app="vision"} 0`,
		`bt_admission_bandwidth_gbs{side="demand"} 10`,
		`bt_admission_cores{side="capacity"} 16`,
		`bt_sessions_resident 1`,
		`bt_admissions_total 2`,
		`bt_admission_rejections_total 1`,
		`bt_events_emitted_total 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Every line must still pass the exposition format check.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("malformed sample: %q", line)
		}
	}
}

func TestServerSessions(t *testing.T) {
	_, body := get(t, NewHandler(testServerConfig()), "/sessions")
	var doc sessionsDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("sessions JSON: %v", err)
	}
	if len(doc.Sessions) != 2 {
		t.Fatalf("session count %d", len(doc.Sessions))
	}
	if doc.Sessions[0].Name != "octree#0" || !doc.Sessions[0].Resident {
		t.Fatalf("first session %+v", doc.Sessions[0])
	}
	if doc.Sessions[1].Err != "boom" {
		t.Fatalf("error session %+v", doc.Sessions[1])
	}
	if doc.Headroom.BWCapacityGBs != 40 || doc.Headroom.ResidentCount != 1 {
		t.Fatalf("headroom %+v", doc.Headroom)
	}

	// No inspector: valid empty table.
	_, body = get(t, NewHandler(ServerConfig{}), "/sessions")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("empty sessions JSON: %v", err)
	}
	if len(doc.Sessions) != 0 {
		t.Fatalf("expected no sessions, got %d", len(doc.Sessions))
	}
}

func TestServerTrace(t *testing.T) {
	cfg := testServerConfig()
	h := NewHandler(cfg)

	// One session's trace.
	_, body := get(t, h, "/trace?session=octree%230")
	var doc ChromeTraceDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	spans := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			spans++
		}
	}
	if spans != 3 {
		t.Fatalf("session trace has %d spans, want 3", spans)
	}

	// Unknown session → 404.
	if code, _ := get(t, h, "/trace?session=nope"); code != http.StatusNotFound {
		t.Fatalf("unknown session trace → %d", code)
	}

	// No session: merged across sessions, with session-qualified tracks.
	_, body = get(t, h, "/trace")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("merged trace JSON: %v", err)
	}
	foundQualified := false
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			if name, _ := e.Args["name"].(string); strings.HasPrefix(name, "octree#0/") {
				foundQualified = true
			}
		}
	}
	if !foundQualified {
		t.Fatal("merged trace lacks session-qualified track names")
	}

	// Single-run fallback timeline.
	single := NewHandler(ServerConfig{Timeline: func() *trace.Timeline { return testTimeline() }})
	_, body = get(t, single, "/trace")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("single trace JSON: %v", err)
	}
}

func TestServerEvents(t *testing.T) {
	h := NewHandler(testServerConfig())
	_, body := get(t, h, "/events")
	var doc eventsDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("events JSON: %v", err)
	}
	if doc.Total != 2 || len(doc.Events) != 2 {
		t.Fatalf("events doc %+v", doc)
	}
	if doc.Events[0].Kind != "admit" || doc.Events[1].Kind != "stage-done" {
		t.Fatalf("event kinds %q,%q", doc.Events[0].Kind, doc.Events[1].Kind)
	}
	if doc.Events[1].Chunk == nil || *doc.Events[1].Chunk != 0 {
		t.Fatalf("chunk pointer %+v", doc.Events[1])
	}
	if doc.Events[0].Chunk != nil {
		t.Fatal("admit event must omit chunk")
	}

	if code, _ := get(t, h, "/events?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad n → %d", code)
	}
	_, body = get(t, h, "/events?n=1")
	if err := json.Unmarshal([]byte(body), &doc); err != nil || len(doc.Events) != 1 {
		t.Fatalf("limited events: %v, %d", err, len(doc.Events))
	}

	// No stream mounted: valid empty doc.
	_, body = get(t, NewHandler(ServerConfig{}), "/events")
	if err := json.Unmarshal([]byte(body), &doc); err != nil || doc.Total != 0 {
		t.Fatalf("streamless events: %v, %+v", err, doc)
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", testServerConfig())
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(b) != "ok\n" {
		t.Fatalf("healthz over TCP: %d %q", resp.StatusCode, b)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
