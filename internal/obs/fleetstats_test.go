package obs

import (
	"strings"
	"testing"
	"time"

	"bettertogether/internal/metrics"
)

func sampleFleetStats() FleetStats {
	var h metrics.Histogram
	h.Observe(2 * time.Second)
	h.Observe(5 * time.Second)
	return FleetStats{
		Nodes:    2,
		Arrivals: 10,
		Placed:   8,
		Spills:   3,
		Rejected: 2,
		Latency:  &h,
		PerNode: []FleetNodeStats{
			{ID: "jetson/0", Device: "jetson", Placed: 5, Rejected: 1,
				Headroom: Headroom{BWDemandGBs: 40, BWCapacityGBs: 90, CoresDemand: 10, CoresCapacity: 28, ResidentCount: 2}},
			{ID: "pixel7a/0", Device: "pixel7a", Placed: 3, Rejected: 1,
				Headroom: Headroom{BWDemandGBs: 5, BWCapacityGBs: 40, CoresDemand: 4, CoresCapacity: 30, ResidentCount: 1}},
		},
	}
}

func TestPromFleetExposition(t *testing.T) {
	var b strings.Builder
	if err := PromFleet(&b, sampleFleetStats()); err != nil {
		t.Fatalf("PromFleet: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE bt_fleet_nodes gauge",
		"bt_fleet_nodes 2",
		"# TYPE bt_fleet_arrivals_total counter",
		"bt_fleet_arrivals_total 10",
		"bt_fleet_placed_total 8",
		"bt_fleet_spillovers_total 3",
		"bt_fleet_rejections_total 2",
		`bt_fleet_node_placed_total{node="jetson/0",device="jetson"} 5`,
		`bt_fleet_node_rejections_total{node="pixel7a/0",device="pixel7a"} 1`,
		`bt_fleet_node_resident{node="jetson/0",device="jetson"} 2`,
		`bt_fleet_node_bandwidth_gbs{node="jetson/0",device="jetson",side="demand"} 40`,
		`bt_fleet_node_bandwidth_gbs{node="jetson/0",device="jetson",side="capacity"} 90`,
		`bt_fleet_node_cores{node="pixel7a/0",device="pixel7a",side="demand"} 4`,
		"# TYPE bt_fleet_session_latency_seconds summary",
		"bt_fleet_session_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// TestPromFleetNilLatencyOmitsSummary pins that an unset histogram drops
// the summary family instead of exporting zeros.
func TestPromFleetNilLatencyOmitsSummary(t *testing.T) {
	s := sampleFleetStats()
	s.Latency = nil
	s.PerNode = nil
	var b strings.Builder
	if err := PromFleet(&b, s); err != nil {
		t.Fatalf("PromFleet: %v", err)
	}
	out := b.String()
	if strings.Contains(out, "bt_fleet_session_latency_seconds") {
		t.Error("latency summary exported without a histogram")
	}
	if strings.Contains(out, "bt_fleet_node_") {
		t.Error("per-node families exported with an empty registry")
	}
}

func TestFleetRejectionRate(t *testing.T) {
	if got := (FleetStats{}).RejectionRate(); got != "0" {
		t.Errorf("empty fleet rate = %q, want 0", got)
	}
	if got := sampleFleetStats().RejectionRate(); got != "0.2000" {
		t.Errorf("rate = %q, want 0.2000", got)
	}
}

// TestServerMetricsIncludeFleet wires the Fleet hook into the server and
// checks the fleet families land on /metrics; without the hook they must
// stay absent.
func TestServerMetricsIncludeFleet(t *testing.T) {
	cfg := testServerConfig()
	cfg.Fleet = func() FleetStats { return sampleFleetStats() }
	code, body := get(t, NewHandler(cfg), "/metrics")
	if code != 200 {
		t.Fatalf("/metrics → %d", code)
	}
	for _, want := range []string{
		"bt_fleet_nodes 2",
		"bt_fleet_rejections_total 2",
		`bt_fleet_node_placed_total{node="jetson/0",device="jetson"} 5`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if _, plain := get(t, NewHandler(testServerConfig()), "/metrics"); strings.Contains(plain, "bt_fleet") {
		t.Error("fleet families exported without a Fleet hook")
	}
}
