package obs

import (
	"strings"
	"testing"
)

// TestServerMetricsIncludeCache wires the Cache hook into the server
// and checks the schedule-cache families land on /metrics alongside the
// rest of the exposition.
func TestServerMetricsIncludeCache(t *testing.T) {
	cfg := testServerConfig()
	cfg.Cache = func() CacheStats {
		return CacheStats{Hits: 3, Misses: 1, Stores: 1, Size: 1, Capacity: 16}
	}
	code, body := get(t, NewHandler(cfg), "/metrics")
	if code != 200 {
		t.Fatalf("/metrics → %d", code)
	}
	for _, want := range []string{
		"bt_schedcache_hits_total 3",
		"bt_schedcache_misses_total 1",
		"bt_schedcache_capacity 16",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Without the hook the families must stay absent.
	if _, plain := get(t, NewHandler(testServerConfig()), "/metrics"); strings.Contains(plain, "bt_schedcache") {
		t.Error("schedcache families exported without a Cache hook")
	}
}

func TestPromCacheExposition(t *testing.T) {
	var b strings.Builder
	err := PromCache(&b, CacheStats{
		Hits: 42, Misses: 7, Stores: 7, Evictions: 2,
		Size: 5, Capacity: 64,
	})
	if err != nil {
		t.Fatalf("PromCache: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE bt_schedcache_hits_total counter",
		"bt_schedcache_hits_total 42",
		"# TYPE bt_schedcache_misses_total counter",
		"bt_schedcache_misses_total 7",
		"bt_schedcache_stores_total 7",
		"bt_schedcache_evictions_total 2",
		"# TYPE bt_schedcache_entries gauge",
		"bt_schedcache_entries 5",
		"bt_schedcache_capacity 64",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	// Every sample line must satisfy the exposition line format the
	// package's other exporters are pinned to.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}
}
