package obs

import (
	"fmt"
	"io"
	"strings"

	"bettertogether/internal/metrics"
)

// PromSource is one metrics collector to expose, optionally namespaced
// with a session label (multi-app runtime exposition sets it; single-run
// exposition leaves it empty and the label is omitted).
type PromSource struct {
	// Session labels every series from this collector; "" omits the label.
	Session string
	// Metrics is the collector to read. Nil sources are skipped.
	Metrics *metrics.Pipeline
}

// promQuantiles are the summary quantiles exposed per latency histogram.
var promQuantiles = []float64{0.5, 0.9, 0.95, 0.99}

// PromText writes the sources' stage, queue, and pool series as
// Prometheus text exposition (version 0.0.4): dispatch/transfer counters,
// service/wait/stall summaries with quantiles, occupancy and utilization
// gauges. Reading is pull-only over the collectors' atomic counters, so
// exposing a live run perturbs nothing. Series order is deterministic:
// family by family, sources in argument order, rows in collector order.
func PromText(w io.Writer, sources ...PromSource) error {
	pw := &promWriter{w: w}

	pw.family("bt_stage_dispatches_total", "counter",
		"Completed executions per pipeline stage.")
	eachSource(sources, func(src PromSource, m *metrics.Pipeline) {
		for i := 0; i < m.NumStages(); i++ {
			s := m.Stage(i)
			pw.sample("bt_stage_dispatches_total", stageLabels(src, i, s), float64(s.Dispatches()))
		}
	})

	pw.family("bt_stage_service_seconds", "summary",
		"Per-stage service time (wall for the Real engine, virtual for Sim).")
	eachSource(sources, func(src PromSource, m *metrics.Pipeline) {
		for i := 0; i < m.NumStages(); i++ {
			s := m.Stage(i)
			pw.summary("bt_stage_service_seconds", stageLabels(src, i, s), s.Service())
		}
	})

	pw.family("bt_queue_pushes_total", "counter", "Elements produced onto each edge.")
	eachSource(sources, func(src PromSource, m *metrics.Pipeline) {
		for i := 0; i < m.NumQueues(); i++ {
			pw.sample("bt_queue_pushes_total", queueLabels(src, i, m.Queue(i)), float64(m.Queue(i).Pushes()))
		}
	})
	pw.family("bt_queue_pops_total", "counter", "Elements consumed from each edge.")
	eachSource(sources, func(src PromSource, m *metrics.Pipeline) {
		for i := 0; i < m.NumQueues(); i++ {
			pw.sample("bt_queue_pops_total", queueLabels(src, i, m.Queue(i)), float64(m.Queue(i).Pops()))
		}
	})
	pw.family("bt_queue_depth_max", "gauge", "Highest observed edge occupancy.")
	eachSource(sources, func(src PromSource, m *metrics.Pipeline) {
		for i := 0; i < m.NumQueues(); i++ {
			pw.sample("bt_queue_depth_max", queueLabels(src, i, m.Queue(i)), float64(m.Queue(i).MaxDepth()))
		}
	})
	pw.family("bt_queue_wait_seconds", "summary", "Consumer-side wait per edge pop.")
	eachSource(sources, func(src PromSource, m *metrics.Pipeline) {
		for i := 0; i < m.NumQueues(); i++ {
			pw.summary("bt_queue_wait_seconds", queueLabels(src, i, m.Queue(i)), m.Queue(i).Wait())
		}
	})
	pw.family("bt_queue_stall_seconds", "summary",
		"Producer-side backpressure per edge push.")
	eachSource(sources, func(src PromSource, m *metrics.Pipeline) {
		for i := 0; i < m.NumQueues(); i++ {
			pw.summary("bt_queue_stall_seconds", queueLabels(src, i, m.Queue(i)), m.Queue(i).Stall())
		}
	})

	pw.family("bt_pool_busy_seconds_total", "counter",
		"Integrated busy lane-time per worker pool.")
	eachSource(sources, func(src PromSource, m *metrics.Pipeline) {
		for i := 0; i < m.NumPools(); i++ {
			pw.sample("bt_pool_busy_seconds_total", poolLabels(src, i, m.Pool(i)), m.Pool(i).BusyTime().Seconds())
		}
	})
	pw.family("bt_pool_utilization_ratio", "gauge",
		"Busy lane-time over elapsed x width per worker pool.")
	eachSource(sources, func(src PromSource, m *metrics.Pipeline) {
		elapsed := m.Elapsed()
		for i := 0; i < m.NumPools(); i++ {
			pw.sample("bt_pool_utilization_ratio", poolLabels(src, i, m.Pool(i)), m.Pool(i).Utilization(elapsed))
		}
	})

	pw.family("bt_run_elapsed_seconds", "gauge",
		"Recorded run duration (wall for Real, virtual for Sim).")
	eachSource(sources, func(src PromSource, m *metrics.Pipeline) {
		pw.sample("bt_run_elapsed_seconds", sessionOnly(src), m.Elapsed().Seconds())
	})

	return pw.err
}

// eachSource invokes f for every source with a non-nil collector.
func eachSource(sources []PromSource, f func(PromSource, *metrics.Pipeline)) {
	for _, src := range sources {
		if src.Metrics != nil {
			f(src, src.Metrics)
		}
	}
}

// stageLabels builds the label set of a stage row.
func stageLabels(src PromSource, i int, s *metrics.StageStats) []label {
	name := s.Name
	if name == "" {
		name = fmt.Sprintf("stage %d", i)
	}
	return withSessionLabel(src, []label{
		{"stage", name},
		{"chunk", fmt.Sprintf("%d", s.Chunk)},
		{"pu", s.PU},
	})
}

// queueLabels builds the label set of a queue row.
func queueLabels(src PromSource, i int, q *metrics.QueueStats) []label {
	name := q.Label
	if name == "" {
		name = fmt.Sprintf("edge %d", i)
	}
	return withSessionLabel(src, []label{{"queue", name}})
}

// poolLabels builds the label set of a pool row.
func poolLabels(src PromSource, _ int, p *metrics.PoolStats) []label {
	return withSessionLabel(src, []label{
		{"pu", p.PU},
		{"width", fmt.Sprintf("%d", p.Width)},
	})
}

// sessionOnly is the label set of a per-run series.
func sessionOnly(src PromSource) []label { return withSessionLabel(src, nil) }

// withSessionLabel prepends the session label when the source has one.
func withSessionLabel(src PromSource, labels []label) []label {
	if src.Session == "" {
		return labels
	}
	return append([]label{{"session", src.Session}}, labels...)
}

// label is one key=value pair of a series.
type label struct{ k, v string }

// promWriter accumulates exposition text, remembering the first write
// error so callers check once.
type promWriter struct {
	w   io.Writer
	err error
}

// family writes the # HELP / # TYPE header of a metric family.
func (pw *promWriter) family(name, typ, help string) {
	pw.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// sample writes one series sample line.
func (pw *promWriter) sample(name string, labels []label, v float64) {
	pw.printf("%s%s %s\n", name, renderLabels(labels), formatValue(v))
}

// summary writes a histogram as a Prometheus summary: quantile series
// plus _sum and _count.
func (pw *promWriter) summary(name string, labels []label, h *metrics.Histogram) {
	for _, q := range promQuantiles {
		ql := append(append([]label(nil), labels...), label{"quantile", trimFloat(q)})
		pw.sample(name, ql, h.Quantile(q).Seconds())
	}
	pw.printf("%s_sum%s %s\n", name, renderLabels(labels), formatValue(h.Sum().Seconds()))
	pw.printf("%s_count%s %d\n", name, renderLabels(labels), h.Count())
}

// printf forwards to the writer, keeping the first error.
func (pw *promWriter) printf(format string, args ...any) {
	if pw.err != nil {
		return
	}
	_, pw.err = fmt.Fprintf(pw.w, format, args...)
}

// renderLabels renders {k="v",...}; empty label sets render nothing.
func renderLabels(labels []label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatValue renders a sample value: integral values without an
// exponent, everything else in compact scientific-free form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return trimFloat(v)
}

// trimFloat renders a float without trailing zeros.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.9f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}
