package core

import (
	"fmt"
	"sync/atomic"
)

// CoherenceState tracks which side last wrote a unified buffer. On the
// paper's UMA SoCs data never moves, but visibility still must be managed
// (cudaStreamAttachMemAsync prefetch hints, vkCmdPipelineBarrier fences).
// We model that bookkeeping so the dispatcher's "synchronize all memory
// buffers" step (Sec. 3.4) is a real, testable operation.
type CoherenceState int32

const (
	// Shared: both sides have a coherent view.
	Shared CoherenceState = iota
	// HostDirty: the CPU wrote last; a device acquire needs a fence.
	HostDirty
	// DeviceDirty: the GPU wrote last; a host acquire needs a fence.
	DeviceDirty
)

// String names the coherence state.
func (s CoherenceState) String() string {
	switch s {
	case Shared:
		return "shared"
	case HostDirty:
		return "host-dirty"
	case DeviceDirty:
		return "device-dirty"
	default:
		return fmt.Sprintf("coherence(%d)", int32(s))
	}
}

// UsmBuffer is a unified shared-memory buffer (paper Sec. 3.1): one
// allocation visible to host and device kernels with zero-copy access.
// The element data lives in Data; Acquire/Release model the coherence
// protocol and count fence operations so tests and the simulator can
// verify that chunks synchronize exactly the buffers they touch.
//
// UsmBuffer is not safe for concurrent Acquire from multiple goroutines;
// the pipeline guarantees one chunk owns a TaskObject at a time, which is
// the same discipline the paper's SPSC hand-off enforces.
type UsmBuffer[T any] struct {
	Data  []T
	state atomic.Int32
	syncs atomic.Int64
}

// NewUsmBuffer allocates a unified buffer of n elements in Shared state.
func NewUsmBuffer[T any](n int) *UsmBuffer[T] {
	return &UsmBuffer[T]{Data: make([]T, n)}
}

// Len returns the element count.
func (b *UsmBuffer[T]) Len() int { return len(b.Data) }

// State returns the current coherence state.
func (b *UsmBuffer[T]) State() CoherenceState { return CoherenceState(b.state.Load()) }

// Syncs returns how many visibility fences this buffer has required, the
// observable cost of cross-PU hand-offs.
func (b *UsmBuffer[T]) Syncs() int64 { return b.syncs.Load() }

// Acquire makes the buffer coherent for the given backend, counting a
// fence if the opposite side wrote last. It returns the backing slice for
// kernel use. This is step 2 of the dispatcher loop in Sec. 3.4.
func (b *UsmBuffer[T]) Acquire(be Backend) []T {
	st := CoherenceState(b.state.Load())
	switch {
	case be == BackendCPU && st == DeviceDirty,
		be == BackendGPU && st == HostDirty:
		b.syncs.Add(1)
		b.state.Store(int32(Shared))
	}
	return b.Data
}

// Release marks the buffer written by the given backend, so the next
// Acquire from the other side pays a fence.
func (b *UsmBuffer[T]) Release(be Backend) {
	if be == BackendGPU {
		b.state.Store(int32(DeviceDirty))
	} else {
		b.state.Store(int32(HostDirty))
	}
}

// ResetCoherence returns the buffer to Shared without counting a fence,
// used when a TaskObject is recycled for a fresh input.
func (b *UsmBuffer[T]) ResetCoherence() { b.state.Store(int32(Shared)) }
