package core

import (
	"fmt"
	"math"
)

// ProfileMode distinguishes the profiler's two execution modes
// (paper Sec. 3.2).
type ProfileMode int

const (
	// Isolated runs the stage alone on its PU — the conventional
	// profiling methodology of prior work.
	Isolated ProfileMode = iota
	// InterferenceHeavy co-schedules synthetic load on every other PU
	// while measuring — BetterTogether's contribution.
	InterferenceHeavy
)

// String names the mode.
func (m ProfileMode) String() string {
	if m == InterferenceHeavy {
		return "interference-heavy"
	}
	return "isolated"
}

// ProfileTable is the 2-D latency table built by BT-Profiler: a row per
// stage, a column per PU class, entries in seconds (mean of the
// measurement repetitions).
type ProfileTable struct {
	// App names the profiled application.
	App string
	// Device names the profiled device.
	Device string
	// Mode records which execution mode produced the entries.
	Mode ProfileMode
	// Stages are the row labels in pipeline order.
	Stages []string
	// PUs are the column labels.
	PUs []PUClass
	// Latency[i][j] is the mean latency of stage i on PU j, in seconds.
	Latency [][]float64
}

// NewProfileTable allocates a table with all entries NaN (unmeasured).
func NewProfileTable(app, device string, mode ProfileMode, stages []string, pus []PUClass) *ProfileTable {
	lat := make([][]float64, len(stages))
	for i := range lat {
		lat[i] = make([]float64, len(pus))
		for j := range lat[i] {
			lat[i][j] = math.NaN()
		}
	}
	return &ProfileTable{
		App: app, Device: device, Mode: mode,
		Stages:  append([]string(nil), stages...),
		PUs:     append([]PUClass(nil), pus...),
		Latency: lat,
	}
}

// PUIndex returns the column of class pu, or -1.
func (t *ProfileTable) PUIndex(pu PUClass) int {
	for j, c := range t.PUs {
		if c == pu {
			return j
		}
	}
	return -1
}

// Set stores the latency of stage row i on class pu.
func (t *ProfileTable) Set(i int, pu PUClass, seconds float64) {
	j := t.PUIndex(pu)
	if j < 0 {
		panic(fmt.Sprintf("core: unknown PU class %q in profile table", pu))
	}
	t.Latency[i][j] = seconds
}

// Get returns the latency of stage i on class pu in seconds.
// It panics on an unknown class and returns NaN for unmeasured entries.
func (t *ProfileTable) Get(i int, pu PUClass) float64 {
	j := t.PUIndex(pu)
	if j < 0 {
		panic(fmt.Sprintf("core: unknown PU class %q in profile table", pu))
	}
	return t.Latency[i][j]
}

// Complete reports whether every entry has been measured.
func (t *ProfileTable) Complete() bool {
	for _, row := range t.Latency {
		for _, v := range row {
			if math.IsNaN(v) {
				return false
			}
		}
	}
	return true
}

// ChunkTime returns the summed latency of stages [start, end) on class
// pu — the predicted service time of that chunk.
func (t *ProfileTable) ChunkTime(pu PUClass, start, end int) float64 {
	sum := 0.0
	for i := start; i < end; i++ {
		sum += t.Get(i, pu)
	}
	return sum
}

// PredictChunkTimes returns each chunk's predicted service time under the
// schedule.
func (t *ProfileTable) PredictChunkTimes(s Schedule) []float64 {
	chunks := s.Chunks()
	out := make([]float64, len(chunks))
	for i, c := range chunks {
		out[i] = t.ChunkTime(c.PU, c.Start, c.End)
	}
	return out
}

// PredictLatency returns the model's steady-state per-task latency for a
// schedule: the bottleneck (maximum) chunk time, which governs pipeline
// throughput. This is the T_max the optimizer minimizes in its second
// phase.
func (t *ProfileTable) PredictLatency(s Schedule) float64 {
	best := 0.0
	for _, ct := range t.PredictChunkTimes(s) {
		if ct > best {
			best = ct
		}
	}
	return best
}

// PredictGapness returns T_max - T_min over the schedule's chunks — the
// utilization objective O1 of the optimizer's first phase.
func (t *ProfileTable) PredictGapness(s Schedule) float64 {
	cts := t.PredictChunkTimes(s)
	if len(cts) == 0 {
		return 0
	}
	lo, hi := cts[0], cts[0]
	for _, ct := range cts[1:] {
		if ct < lo {
			lo = ct
		}
		if ct > hi {
			hi = ct
		}
	}
	return hi - lo
}
