package core

// Syncable is implemented by buffers that participate in the dispatcher's
// per-chunk coherence step. UsmBuffer[T] satisfies it for every T.
type Syncable interface {
	// AcquireFor makes the buffer coherent for the given backend.
	AcquireFor(be Backend)
	// ReleaseFor marks the buffer written by the given backend.
	ReleaseFor(be Backend)
}

// AcquireFor implements Syncable.
func (b *UsmBuffer[T]) AcquireFor(be Backend) { b.Acquire(be) }

// ReleaseFor implements Syncable.
func (b *UsmBuffer[T]) ReleaseFor(be Backend) { b.Release(be) }

// TaskObject carries one streaming input (a frame, an image batch, a
// point cloud) through the whole pipeline (paper Sec. 3.4). It owns every
// buffer a task needs from first to last stage — persistent data,
// intermediate results, and pre-allocated scratchpads — so execution
// never allocates. TaskObjects are recycled: when the last chunk
// finishes, Reset prepares the object for the next input and it returns
// to the first queue.
type TaskObject struct {
	// Seq is the task's sequence number in the stream, set by the
	// pipeline when the object is (re)issued. Input generators use it as
	// the seed for deterministic synthetic inputs.
	Seq int

	// Payload holds the application-specific buffer container (for
	// example *alexnet.Task or *octree.Task).
	Payload any

	// Buffers lists the payload's unified buffers for the dispatcher's
	// coherence step. May be nil for host-only applications.
	Buffers []Syncable

	// resetFn restores the payload for reuse with a fresh Seq.
	resetFn func(*TaskObject)
}

// NewTaskObject wraps a payload with its unified buffers and reset hook.
func NewTaskObject(payload any, buffers []Syncable, reset func(*TaskObject)) *TaskObject {
	return &TaskObject{Payload: payload, Buffers: buffers, resetFn: reset}
}

// Reset recycles the object for sequence number seq.
func (t *TaskObject) Reset(seq int) {
	t.Seq = seq
	if t.resetFn != nil {
		t.resetFn(t)
	}
}

// AcquireAll fences every buffer for the given backend — the dispatcher's
// step 2 ("synchronize all memory buffers required by this chunk").
func (t *TaskObject) AcquireAll(be Backend) {
	for _, b := range t.Buffers {
		b.AcquireFor(be)
	}
}

// ReleaseAll marks every buffer written by the given backend after the
// chunk's kernels complete.
func (t *TaskObject) ReleaseAll(be Backend) {
	for _, b := range t.Buffers {
		b.ReleaseFor(be)
	}
}

// ParallelFor distributes the iteration space [0, n) over the executing
// PU's lanes and blocks until every band completes. Kernels receive it
// from the engine: on a CPU class it fans out across that cluster's
// worker pool (the OpenMP `parallel for` of the paper's host kernels); on
// the GPU executor it strides the space across workgroups (the
// grid-stride loop of the paper's device kernels).
type ParallelFor func(n int, body func(lo, hi int))

// SerialFor is the degenerate ParallelFor used by tests and by reference
// single-threaded execution.
func SerialFor(n int, body func(lo, hi int)) {
	if n > 0 {
		body(0, n)
	}
}

// KernelFunc is one backend implementation of a stage: it computes the
// stage's output buffers from its input buffers inside the TaskObject.
// Implementations must confine all parallelism to the provided
// ParallelFor so the engine controls lane placement.
type KernelFunc func(task *TaskObject, par ParallelFor)
