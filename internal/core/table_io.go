package core

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// tableJSON is the serialized form of a ProfileTable. NaN (unmeasured)
// entries are encoded as null, since JSON has no NaN.
type tableJSON struct {
	App     string       `json:"app"`
	Device  string       `json:"device"`
	Mode    string       `json:"mode"`
	Stages  []string     `json:"stages"`
	PUs     []PUClass    `json:"pus"`
	Latency [][]*float64 `json:"latency_seconds"`
}

// MarshalJSON implements json.Marshaler.
func (t *ProfileTable) MarshalJSON() ([]byte, error) {
	out := tableJSON{
		App: t.App, Device: t.Device, Mode: t.Mode.String(),
		Stages: t.Stages, PUs: t.PUs,
	}
	for _, row := range t.Latency {
		jr := make([]*float64, len(row))
		for j, v := range row {
			if !math.IsNaN(v) {
				v := v
				jr[j] = &v
			}
		}
		out.Latency = append(out.Latency, jr)
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *ProfileTable) UnmarshalJSON(data []byte) error {
	var in tableJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	var mode ProfileMode
	switch in.Mode {
	case Isolated.String():
		mode = Isolated
	case InterferenceHeavy.String():
		mode = InterferenceHeavy
	default:
		return fmt.Errorf("core: unknown profile mode %q", in.Mode)
	}
	if len(in.Latency) != len(in.Stages) {
		return fmt.Errorf("core: table has %d latency rows for %d stages",
			len(in.Latency), len(in.Stages))
	}
	fresh := NewProfileTable(in.App, in.Device, mode, in.Stages, in.PUs)
	for i, row := range in.Latency {
		if len(row) != len(in.PUs) {
			return fmt.Errorf("core: row %d has %d entries for %d PUs", i, len(row), len(in.PUs))
		}
		for j, v := range row {
			if v != nil {
				fresh.Latency[i][j] = *v
			}
		}
	}
	*t = *fresh
	return nil
}

// SaveTable writes the table as JSON to path.
func SaveTable(t *ProfileTable, path string) error {
	data, err := json.Marshal(t)
	if err != nil {
		return fmt.Errorf("core: marshal table: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("core: save table: %w", err)
	}
	return nil
}

// LoadTable reads a JSON table from path.
func LoadTable(path string) (*ProfileTable, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load table: %w", err)
	}
	t := &ProfileTable{}
	if err := json.Unmarshal(data, t); err != nil {
		return nil, fmt.Errorf("core: parse table %s: %w", path, err)
	}
	return t, nil
}
