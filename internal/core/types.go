// Package core defines the abstractions of the BetterTogether framework
// (paper Sec. 3.1): Stages implemented by per-backend compute kernels,
// Applications as stage sequences (or linearized task graphs), Chunks as
// contiguous stage runs that form the unit of scheduling, Schedules that
// map stages to processing-unit classes, TaskObjects that carry one
// streaming input through the pipeline, and UsmBuffers that model
// zero-copy unified memory.
//
// core is dependency-free within the project so every other package
// (workloads, SoC simulator, profiler, optimizer, implementer) can share
// these types without cycles.
package core

import "fmt"

// Backend identifies which kernel implementation family executes a stage:
// the host-side (OpenMP in the paper, worker-pool goroutines here) or the
// device-side (CUDA/Vulkan in the paper, the simulated-SIMT executor here).
type Backend int

const (
	// BackendCPU is the host-side implementation.
	BackendCPU Backend = iota
	// BackendGPU is the device-side implementation.
	BackendGPU
)

// String returns "cpu" or "gpu".
func (b Backend) String() string {
	switch b {
	case BackendCPU:
		return "cpu"
	case BackendGPU:
		return "gpu"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// PUKind distinguishes CPU core clusters from GPUs.
type PUKind int

const (
	// KindCPU marks a cluster of identical CPU cores (big, medium, little).
	KindCPU PUKind = iota
	// KindGPU marks an integrated GPU.
	KindGPU
)

// String returns "CPU" or "GPU".
func (k PUKind) String() string {
	if k == KindGPU {
		return "GPU"
	}
	return "CPU"
}

// Backend returns the kernel backend a PU of this kind executes.
func (k PUKind) Backend() Backend {
	if k == KindGPU {
		return BackendGPU
	}
	return BackendCPU
}

// PUClass names a schedulable processing-unit class on a device, e.g.
// "big", "medium", "little", "gpu". A class is the column unit of the
// profiling table and the assignment target of the optimizer: a chunk
// scheduled on class "big" uses *all* big cores through the class's
// worker pool, exactly as the paper's OpenMP kernels use all cores of the
// pinned cluster.
type PUClass string

// Common class names used by the device catalog. Devices may define
// additional classes; these constants only canonicalize spelling.
const (
	ClassBig    PUClass = "big"
	ClassMedium PUClass = "medium"
	ClassLittle PUClass = "little"
	ClassGPU    PUClass = "gpu"
)

// CostSpec is the analytic descriptor of one stage's work per task,
// consumed by the SoC performance model. The paper's profiler treats
// kernels as black boxes and only observes latency; CostSpec is the
// "ground truth physics" of the simulated device from which those
// observable latencies are generated. The framework itself never reads
// these fields — only internal/soc does.
type CostSpec struct {
	// FLOPs is the arithmetic work per task (multiply and add counted
	// separately).
	FLOPs float64
	// Bytes is the DRAM traffic per task, the quantity that contends for
	// the shared memory controller across PUs.
	Bytes float64
	// ParallelFraction is the Amdahl-parallel share of the work in [0,1];
	// the remainder runs on a single lane.
	ParallelFraction float64
	// Divergence in [0,1] measures control-flow divergence: how badly
	// lockstep SIMT lanes are serialized (1 = fully serialized warps).
	Divergence float64
	// Irregularity in [0,1] measures memory-access irregularity (pointer
	// chasing, indirection): it degrades in-order little cores and GPU
	// coalescing more than out-of-order big cores.
	Irregularity float64
	// WorkItems is the available data parallelism per task, which bounds
	// GPU occupancy: kernels with few work items cannot fill an iGPU.
	WorkItems float64
	// Dispatches is the number of separate kernel dispatches (OpenMP
	// parallel regions / CUDA launches / Vulkan dispatches with
	// barriers) one execution of the stage needs. Multi-pass algorithms
	// like radix sort pay per-dispatch launch overhead several times.
	// 0 means 1.
	Dispatches float64
}

// Validate checks that the fractional fields are within their domains.
func (c CostSpec) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("core: CostSpec.%s = %v outside [0,1]", name, v)
		}
		return nil
	}
	if c.FLOPs < 0 || c.Bytes < 0 || c.WorkItems < 0 || c.Dispatches < 0 {
		return fmt.Errorf("core: CostSpec has negative work (flops=%v bytes=%v items=%v dispatches=%v)",
			c.FLOPs, c.Bytes, c.WorkItems, c.Dispatches)
	}
	if err := check("ParallelFraction", c.ParallelFraction); err != nil {
		return err
	}
	if err := check("Divergence", c.Divergence); err != nil {
		return err
	}
	return check("Irregularity", c.Irregularity)
}

// ArithmeticIntensity returns FLOPs/Bytes, the roofline x-axis. It
// returns +Inf-safe 0 when Bytes is 0.
func (c CostSpec) ArithmeticIntensity() float64 {
	if c.Bytes == 0 {
		return 0
	}
	return c.FLOPs / c.Bytes
}
