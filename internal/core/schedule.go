package core

import (
	"fmt"
	"strings"
)

// Schedule maps each pipeline stage to a PU class. It is the output of
// BT-Optimizer and the input of BT-Implementer. A valid schedule
// satisfies the paper's contiguity constraint C2: all stages assigned to
// one class form a single contiguous run (a Chunk), so each class hosts
// at most one dispatcher.
type Schedule struct {
	// Assign[i] is the PU class of stage i.
	Assign []PUClass
}

// Chunk is a maximal contiguous run of stages on one PU class — the basic
// unit of scheduling and dispatch (paper Sec. 3.1).
type Chunk struct {
	// PU is the class executing the chunk.
	PU PUClass
	// Start and End delimit the stage range [Start, End).
	Start, End int
}

// Len returns the number of stages in the chunk.
func (c Chunk) Len() int { return c.End - c.Start }

// NewUniformSchedule assigns every stage to a single class — the
// homogeneous baselines of Sec. 5.1 (all-GPU, all-big).
func NewUniformSchedule(n int, pu PUClass) Schedule {
	assign := make([]PUClass, n)
	for i := range assign {
		assign[i] = pu
	}
	return Schedule{Assign: assign}
}

// Chunks splits the schedule into its maximal contiguous runs in pipeline
// order.
func (s Schedule) Chunks() []Chunk {
	var chunks []Chunk
	for i := 0; i < len(s.Assign); {
		j := i
		for j < len(s.Assign) && s.Assign[j] == s.Assign[i] {
			j++
		}
		chunks = append(chunks, Chunk{PU: s.Assign[i], Start: i, End: j})
		i = j
	}
	return chunks
}

// Validate checks the schedule against the constraint system: one class
// per stage (C1 holds by construction of Assign), every class in the
// allowed set, and contiguity (C2) — no class may appear in two separate
// runs.
func (s Schedule) Validate(nStages int, allowed []PUClass) error {
	if len(s.Assign) != nStages {
		return fmt.Errorf("core: schedule covers %d stages, application has %d",
			len(s.Assign), nStages)
	}
	allowedSet := make(map[PUClass]bool, len(allowed))
	for _, c := range allowed {
		allowedSet[c] = true
	}
	seen := make(map[PUClass]bool)
	for _, ch := range s.Chunks() {
		if !allowedSet[ch.PU] {
			return fmt.Errorf("core: schedule uses unknown PU class %q", ch.PU)
		}
		if seen[ch.PU] {
			return fmt.Errorf("core: contiguity violated: class %q hosts two separate chunks", ch.PU)
		}
		seen[ch.PU] = true
	}
	return nil
}

// UsedClasses returns the distinct classes in chunk order.
func (s Schedule) UsedClasses() []PUClass {
	chunks := s.Chunks()
	out := make([]PUClass, len(chunks))
	for i, c := range chunks {
		out[i] = c.PU
	}
	return out
}

// Uses reports whether any stage is assigned to class pu.
func (s Schedule) Uses(pu PUClass) bool {
	for _, a := range s.Assign {
		if a == pu {
			return true
		}
	}
	return false
}

// Equal reports whether two schedules assign identically.
func (s Schedule) Equal(o Schedule) bool {
	if len(s.Assign) != len(o.Assign) {
		return false
	}
	for i := range s.Assign {
		if s.Assign[i] != o.Assign[i] {
			return false
		}
	}
	return true
}

// String renders the schedule as, e.g., "[big big gpu gpu gpu little]".
func (s Schedule) String() string {
	parts := make([]string, len(s.Assign))
	for i, a := range s.Assign {
		parts[i] = string(a)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Key returns a compact canonical form usable as a map key for blocking
// clauses and deduplication.
func (s Schedule) Key() string { return s.String() }
