package core

import "fmt"

// TaskGraph is an acyclic dependency graph of stages. BetterTogether's
// core model is a linear stage sequence, but applications like octree
// construction have stages whose inputs come from several earlier stages;
// the paper (Sec. 3.1, "Task Graph") handles these by linearizing the DAG
// with a topological sort. TaskGraph implements that linearization.
type TaskGraph struct {
	// Nodes are the stages, in declaration order.
	Nodes []Stage
	// Edges are (from, to) dependency pairs: Nodes[to] consumes output of
	// Nodes[from].
	Edges [][2]int
}

// AddEdge declares that stage `to` depends on stage `from`.
func (g *TaskGraph) AddEdge(from, to int) { g.Edges = append(g.Edges, [2]int{from, to}) }

// Linearize returns the stages in a topological order. Among admissible
// orders it picks the lexicographically smallest by node index (Kahn's
// algorithm with a sorted frontier), so the output is deterministic and —
// for graphs derived from an already-ordered pipeline — preserves the
// declaration order. It returns an error on cycles or out-of-range edges.
func (g *TaskGraph) Linearize() ([]Stage, error) {
	n := len(g.Nodes)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for _, e := range g.Edges {
		from, to := e[0], e[1]
		if from < 0 || from >= n || to < 0 || to >= n {
			return nil, fmt.Errorf("core: edge (%d,%d) out of range for %d nodes", from, to, n)
		}
		if from == to {
			return nil, fmt.Errorf("core: self-edge on node %d", from)
		}
		succ[from] = append(succ[from], to)
		indeg[to]++
	}
	// Min-index frontier kept as a simple ordered insert; graphs here are
	// tiny (N <= ~10 stages).
	var frontier []int
	push := func(v int) {
		i := 0
		for i < len(frontier) && frontier[i] < v {
			i++
		}
		frontier = append(frontier, 0)
		copy(frontier[i+1:], frontier[i:])
		frontier[i] = v
	}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			push(v)
		}
	}
	order := make([]Stage, 0, n)
	for len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		order = append(order, g.Nodes[v])
		for _, w := range succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				push(w)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("core: task graph has a cycle (%d of %d nodes ordered)",
			len(order), n)
	}
	return order, nil
}
