package core

import "fmt"

// Stage is one unit of computation in a pipeline (paper Sec. 3.1) with a
// well-defined input/output contract over the TaskObject's buffers and an
// implementation per backend.
type Stage struct {
	// Name identifies the stage in profiling tables and reports.
	Name string
	// CPU is the host-side kernel. Required.
	CPU KernelFunc
	// GPU is the device-side kernel. Required; the paper's programming
	// model demands both implementations so the optimizer is free to
	// place any stage anywhere.
	GPU KernelFunc
	// Cost describes the stage's work for the SoC performance model.
	Cost CostSpec
}

// Kernel returns the implementation for the given backend.
func (s Stage) Kernel(be Backend) KernelFunc {
	if be == BackendGPU {
		return s.GPU
	}
	return s.CPU
}

// Application is a streaming workload: an ordered sequence of stages where
// stage i+1 consumes stage i's output, plus a factory for the TaskObjects
// that flow through the pipeline (paper Sec. 3.1).
type Application struct {
	// Name identifies the application ("alexnet-dense", "octree", ...).
	Name string
	// Stages is the linearized stage sequence.
	Stages []Stage
	// NewTask allocates a fully pre-allocated TaskObject. The pipeline
	// calls it once per in-flight buffer slot (multi-buffering), never on
	// the hot path.
	NewTask func() *TaskObject
}

// Validate checks that the application is well-formed: at least one
// stage, both kernels present everywhere, and sane cost specs.
func (a *Application) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("core: application has no name")
	}
	if len(a.Stages) == 0 {
		return fmt.Errorf("core: application %q has no stages", a.Name)
	}
	if a.NewTask == nil {
		return fmt.Errorf("core: application %q has no task factory", a.Name)
	}
	for i, s := range a.Stages {
		if s.Name == "" {
			return fmt.Errorf("core: application %q stage %d has no name", a.Name, i)
		}
		if s.CPU == nil || s.GPU == nil {
			return fmt.Errorf("core: application %q stage %q must provide both CPU and GPU kernels",
				a.Name, s.Name)
		}
		if err := s.Cost.Validate(); err != nil {
			return fmt.Errorf("core: application %q stage %q: %w", a.Name, s.Name, err)
		}
	}
	return nil
}

// StageNames returns the stage names in pipeline order.
func (a *Application) StageNames() []string {
	names := make([]string, len(a.Stages))
	for i, s := range a.Stages {
		names[i] = s.Name
	}
	return names
}
