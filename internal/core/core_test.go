package core

import (
	"math"
	"strings"
	"testing"
)

func TestBackendAndKindStrings(t *testing.T) {
	if BackendCPU.String() != "cpu" || BackendGPU.String() != "gpu" {
		t.Error("backend strings wrong")
	}
	if !strings.Contains(Backend(9).String(), "9") {
		t.Error("unknown backend should include code")
	}
	if KindCPU.String() != "CPU" || KindGPU.String() != "GPU" {
		t.Error("kind strings wrong")
	}
	if KindCPU.Backend() != BackendCPU || KindGPU.Backend() != BackendGPU {
		t.Error("kind/backend mapping wrong")
	}
}

func TestCostSpecValidate(t *testing.T) {
	good := CostSpec{FLOPs: 100, Bytes: 50, ParallelFraction: 0.9, Divergence: 0.2, Irregularity: 0.1, WorkItems: 64}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []CostSpec{
		{FLOPs: -1},
		{Bytes: -1},
		{WorkItems: -1},
		{ParallelFraction: 1.5},
		{Divergence: -0.1},
		{Irregularity: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid spec %+v accepted", i, c)
		}
	}
}

func TestArithmeticIntensity(t *testing.T) {
	c := CostSpec{FLOPs: 100, Bytes: 50}
	if c.ArithmeticIntensity() != 2 {
		t.Error("AI should be 2")
	}
	z := CostSpec{FLOPs: 100, Bytes: 0}
	if z.ArithmeticIntensity() != 0 {
		t.Error("AI with zero bytes should be 0")
	}
}

func TestUsmBufferCoherence(t *testing.T) {
	b := NewUsmBuffer[float32](8)
	if b.Len() != 8 || b.State() != Shared || b.Syncs() != 0 {
		t.Fatalf("fresh buffer state wrong: %v %v %v", b.Len(), b.State(), b.Syncs())
	}
	// Same-side acquire after write: no fence.
	b.Release(BackendCPU)
	b.Acquire(BackendCPU)
	if b.Syncs() != 0 {
		t.Error("same-side acquire should not fence")
	}
	if b.State() != HostDirty {
		t.Errorf("state = %v, want host-dirty", b.State())
	}
	// Cross-side acquire: one fence, back to shared.
	b.Acquire(BackendGPU)
	if b.Syncs() != 1 {
		t.Errorf("syncs = %d, want 1", b.Syncs())
	}
	if b.State() != Shared {
		t.Errorf("state after fence = %v, want shared", b.State())
	}
	// GPU writes, CPU reads: another fence.
	b.Release(BackendGPU)
	if b.State() != DeviceDirty {
		t.Errorf("state = %v, want device-dirty", b.State())
	}
	b.Acquire(BackendCPU)
	if b.Syncs() != 2 {
		t.Errorf("syncs = %d, want 2", b.Syncs())
	}
	b.Release(BackendGPU)
	b.ResetCoherence()
	if b.State() != Shared {
		t.Error("ResetCoherence should return to shared")
	}
}

func TestCoherenceStateString(t *testing.T) {
	if Shared.String() != "shared" || HostDirty.String() != "host-dirty" || DeviceDirty.String() != "device-dirty" {
		t.Error("coherence state strings wrong")
	}
	if !strings.Contains(CoherenceState(7).String(), "7") {
		t.Error("unknown state should include code")
	}
}

func TestTaskObjectLifecycle(t *testing.T) {
	buf := NewUsmBuffer[int](4)
	resets := 0
	task := NewTaskObject("payload", []Syncable{buf}, func(to *TaskObject) { resets++ })
	task.Reset(7)
	if task.Seq != 7 || resets != 1 {
		t.Errorf("Reset: seq=%d resets=%d", task.Seq, resets)
	}
	buf.Release(BackendCPU)
	task.AcquireAll(BackendGPU)
	if buf.Syncs() != 1 {
		t.Error("AcquireAll should fence the dirty buffer")
	}
	task.ReleaseAll(BackendGPU)
	if buf.State() != DeviceDirty {
		t.Error("ReleaseAll should mark device-dirty")
	}
}

func TestTaskObjectNilReset(t *testing.T) {
	task := NewTaskObject(nil, nil, nil)
	task.Reset(3) // must not panic
	if task.Seq != 3 {
		t.Error("Seq not set")
	}
}

func TestSerialFor(t *testing.T) {
	var calls [][2]int
	SerialFor(5, func(lo, hi int) { calls = append(calls, [2]int{lo, hi}) })
	if len(calls) != 1 || calls[0] != [2]int{0, 5} {
		t.Errorf("SerialFor calls = %v", calls)
	}
	SerialFor(0, func(lo, hi int) { t.Error("SerialFor(0) should not call body") })
}

func nopKernel(task *TaskObject, par ParallelFor) {}

func testApp(n int) *Application {
	stages := make([]Stage, n)
	for i := range stages {
		stages[i] = Stage{Name: string(rune('a' + i)), CPU: nopKernel, GPU: nopKernel}
	}
	return &Application{
		Name:    "test",
		Stages:  stages,
		NewTask: func() *TaskObject { return NewTaskObject(nil, nil, nil) },
	}
}

func TestApplicationValidate(t *testing.T) {
	if err := testApp(3).Validate(); err != nil {
		t.Errorf("valid app rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Application)
	}{
		{"no name", func(a *Application) { a.Name = "" }},
		{"no stages", func(a *Application) { a.Stages = nil }},
		{"no factory", func(a *Application) { a.NewTask = nil }},
		{"stage without name", func(a *Application) { a.Stages[0].Name = "" }},
		{"missing CPU kernel", func(a *Application) { a.Stages[1].CPU = nil }},
		{"missing GPU kernel", func(a *Application) { a.Stages[1].GPU = nil }},
		{"bad cost", func(a *Application) { a.Stages[2].Cost.Divergence = 3 }},
	}
	for _, c := range cases {
		a := testApp(3)
		c.mutate(a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: invalid application accepted", c.name)
		}
	}
}

func TestStageKernelSelection(t *testing.T) {
	cpuCalled, gpuCalled := false, false
	s := Stage{
		Name: "x",
		CPU:  func(*TaskObject, ParallelFor) { cpuCalled = true },
		GPU:  func(*TaskObject, ParallelFor) { gpuCalled = true },
	}
	s.Kernel(BackendCPU)(nil, SerialFor)
	s.Kernel(BackendGPU)(nil, SerialFor)
	if !cpuCalled || !gpuCalled {
		t.Error("Kernel() selected wrong implementation")
	}
}

func TestStageNames(t *testing.T) {
	a := testApp(3)
	names := a.StageNames()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("StageNames = %v", names)
	}
}

func TestScheduleChunks(t *testing.T) {
	s := Schedule{Assign: []PUClass{"big", "big", "gpu", "gpu", "gpu", "little"}}
	chunks := s.Chunks()
	want := []Chunk{{"big", 0, 2}, {"gpu", 2, 5}, {"little", 5, 6}}
	if len(chunks) != len(want) {
		t.Fatalf("chunks = %v", chunks)
	}
	for i := range want {
		if chunks[i] != want[i] {
			t.Errorf("chunk %d = %v, want %v", i, chunks[i], want[i])
		}
		if chunks[i].Len() != want[i].End-want[i].Start {
			t.Errorf("chunk %d Len wrong", i)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	allowed := []PUClass{"big", "little", "gpu"}
	good := Schedule{Assign: []PUClass{"big", "big", "gpu"}}
	if err := good.Validate(3, allowed); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	if err := good.Validate(4, allowed); err == nil {
		t.Error("length mismatch accepted")
	}
	unknown := Schedule{Assign: []PUClass{"big", "huge", "gpu"}}
	if err := unknown.Validate(3, allowed); err == nil {
		t.Error("unknown class accepted")
	}
	// Contiguity violation: big appears in two separated runs.
	split := Schedule{Assign: []PUClass{"big", "gpu", "big"}}
	if err := split.Validate(3, allowed); err == nil {
		t.Error("contiguity violation accepted")
	}
}

func TestNewUniformSchedule(t *testing.T) {
	s := NewUniformSchedule(4, ClassGPU)
	if len(s.Chunks()) != 1 || s.Chunks()[0].PU != ClassGPU {
		t.Errorf("uniform schedule chunks = %v", s.Chunks())
	}
	if !s.Uses(ClassGPU) || s.Uses(ClassBig) {
		t.Error("Uses() wrong")
	}
}

func TestScheduleEqualAndKey(t *testing.T) {
	a := Schedule{Assign: []PUClass{"big", "gpu"}}
	b := Schedule{Assign: []PUClass{"big", "gpu"}}
	c := Schedule{Assign: []PUClass{"gpu", "big"}}
	if !a.Equal(b) || a.Equal(c) {
		t.Error("Equal wrong")
	}
	if a.Key() == c.Key() {
		t.Error("distinct schedules share a key")
	}
	if a.String() != "[big gpu]" {
		t.Errorf("String = %q", a.String())
	}
	if a.Equal(Schedule{Assign: []PUClass{"big"}}) {
		t.Error("length mismatch Equal")
	}
}

func TestUsedClasses(t *testing.T) {
	s := Schedule{Assign: []PUClass{"big", "big", "gpu", "little"}}
	got := s.UsedClasses()
	want := []PUClass{"big", "gpu", "little"}
	if len(got) != len(want) {
		t.Fatalf("UsedClasses = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UsedClasses = %v, want %v", got, want)
		}
	}
}

func TestTaskGraphLinearizeLinear(t *testing.T) {
	g := &TaskGraph{Nodes: testApp(4).Stages}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	order, err := g.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range order {
		if s.Name != string(rune('a'+i)) {
			t.Fatalf("linear order broken at %d: %s", i, s.Name)
		}
	}
}

func TestTaskGraphLinearizeDiamond(t *testing.T) {
	// 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 (octree-like fan-in).
	g := &TaskGraph{Nodes: testApp(4).Stages}
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	order, err := g.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, s := range order {
		pos[s.Name] = i
	}
	if pos["a"] != 0 || pos["d"] != 3 {
		t.Errorf("diamond endpoints misplaced: %v", pos)
	}
	if pos["b"] > pos["d"] || pos["c"] > pos["d"] {
		t.Error("dependencies violated")
	}
	// Deterministic tie-break: b (index 1) before c (index 2).
	if pos["b"] > pos["c"] {
		t.Error("linearization not deterministic-min")
	}
}

func TestTaskGraphCycleDetected(t *testing.T) {
	g := &TaskGraph{Nodes: testApp(3).Stages}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, err := g.Linearize(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestTaskGraphBadEdges(t *testing.T) {
	g := &TaskGraph{Nodes: testApp(2).Stages}
	g.AddEdge(0, 5)
	if _, err := g.Linearize(); err == nil {
		t.Error("out-of-range edge accepted")
	}
	g2 := &TaskGraph{Nodes: testApp(2).Stages}
	g2.AddEdge(1, 1)
	if _, err := g2.Linearize(); err == nil {
		t.Error("self-edge accepted")
	}
}

func newTestTable() *ProfileTable {
	t := NewProfileTable("app", "dev", InterferenceHeavy,
		[]string{"s0", "s1", "s2"}, []PUClass{"big", "gpu"})
	// big: 1, 2, 3 ; gpu: 10, 1, 1
	t.Set(0, "big", 1)
	t.Set(1, "big", 2)
	t.Set(2, "big", 3)
	t.Set(0, "gpu", 10)
	t.Set(1, "gpu", 1)
	t.Set(2, "gpu", 1)
	return t
}

func TestProfileTableBasics(t *testing.T) {
	tab := NewProfileTable("a", "d", Isolated, []string{"x"}, []PUClass{"big"})
	if tab.Complete() {
		t.Error("fresh table should be incomplete")
	}
	if !math.IsNaN(tab.Get(0, "big")) {
		t.Error("unmeasured entry should be NaN")
	}
	tab.Set(0, "big", 0.5)
	if !tab.Complete() || tab.Get(0, "big") != 0.5 {
		t.Error("Set/Get/Complete wrong")
	}
	if tab.PUIndex("gpu") != -1 {
		t.Error("unknown PU index should be -1")
	}
	if Isolated.String() != "isolated" || InterferenceHeavy.String() != "interference-heavy" {
		t.Error("mode strings wrong")
	}
}

func TestProfileTableSetUnknownPUPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	newTestTable().Set(0, "npu", 1)
}

func TestPredictions(t *testing.T) {
	tab := newTestTable()
	// Schedule: s0 on big, s1+s2 on gpu → chunks: big[0,1)=1, gpu[1,3)=2.
	s := Schedule{Assign: []PUClass{"big", "gpu", "gpu"}}
	cts := tab.PredictChunkTimes(s)
	if len(cts) != 2 || cts[0] != 1 || cts[1] != 2 {
		t.Fatalf("chunk times = %v", cts)
	}
	if got := tab.PredictLatency(s); got != 2 {
		t.Errorf("PredictLatency = %v, want 2", got)
	}
	if got := tab.PredictGapness(s); got != 1 {
		t.Errorf("PredictGapness = %v, want 1", got)
	}
	if got := tab.ChunkTime("big", 0, 3); got != 6 {
		t.Errorf("ChunkTime = %v, want 6", got)
	}
}

func TestPredictGapnessUniform(t *testing.T) {
	tab := newTestTable()
	s := NewUniformSchedule(3, "big")
	if got := tab.PredictGapness(s); got != 0 {
		t.Errorf("single-chunk gapness = %v, want 0", got)
	}
}

func TestProfileTableJSONRoundTrip(t *testing.T) {
	tab := newTestTable()
	data, err := tab.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back ProfileTable
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if back.App != tab.App || back.Device != tab.Device || back.Mode != tab.Mode {
		t.Errorf("metadata lost: %+v", back)
	}
	for i := range tab.Stages {
		for _, pu := range tab.PUs {
			if back.Get(i, pu) != tab.Get(i, pu) {
				t.Fatalf("entry (%d,%s) lost", i, pu)
			}
		}
	}
}

func TestProfileTableJSONHandlesNaN(t *testing.T) {
	tab := NewProfileTable("a", "d", Isolated, []string{"x", "y"}, []PUClass{"big"})
	tab.Set(0, "big", 1.5) // leave (1, big) unmeasured
	data, err := tab.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back ProfileTable
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if back.Get(0, "big") != 1.5 {
		t.Error("measured entry lost")
	}
	if !math.IsNaN(back.Get(1, "big")) {
		t.Error("unmeasured entry should round-trip as NaN")
	}
}

func TestProfileTableJSONRejectsGarbage(t *testing.T) {
	cases := []string{
		`{`,
		`{"mode":"warp-speed","stages":[],"pus":[],"latency_seconds":[]}`,
		`{"mode":"isolated","stages":["a"],"pus":["big"],"latency_seconds":[]}`,
		`{"mode":"isolated","stages":["a"],"pus":["big"],"latency_seconds":[[1.0,2.0]]}`,
	}
	for i, c := range cases {
		var tab ProfileTable
		if err := tab.UnmarshalJSON([]byte(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestSaveLoadTable(t *testing.T) {
	tab := newTestTable()
	path := t.TempDir() + "/table.json"
	if err := SaveTable(tab, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.App != tab.App || back.Get(2, "gpu") != tab.Get(2, "gpu") {
		t.Error("file round trip lost data")
	}
	if _, err := LoadTable(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}
