// Package stats provides the small statistical toolkit used throughout
// BetterTogether: central-tendency summaries for profiling measurements,
// geometric means for speedup aggregation, and Pearson correlation for
// model-accuracy evaluation (Sec. 5.2 of the paper).
//
// All functions operate on float64 slices and are deliberately
// allocation-light so they can be called from hot measurement loops.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned (or causes NaN) when a summary is requested over an
// empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values yield NaN, matching the usual convention for speedup
// aggregation where a zero or negative speedup is meaningless.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns 0 for samples of size < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs, or +Inf if xs is empty.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf if xs is empty.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs without modifying it,
// or NaN if xs is empty.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	cp := make([]float64, n)
	copy(cp, xs)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Pearson returns the Pearson product-moment correlation coefficient
// between xs and ys. The paper (Sec. 5.2) uses this to compare predicted
// and measured schedule latencies: values near 1.0 mean the performance
// model ranks schedules the same way the device does.
//
// It returns an error if the slices differ in length, have fewer than two
// points, or either sample has zero variance (correlation undefined).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: Pearson requires equal-length samples")
	}
	n := len(xs)
	if n < 2 {
		return 0, errors.New("stats: Pearson requires at least two points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: Pearson undefined for zero-variance sample")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation between xs and ys.
// It is used as a robustness check alongside Pearson when evaluating
// model accuracy: autotuning (Sec. 3.3, optimization three) only needs
// the model to *rank* schedules correctly.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: Spearman requires equal-length samples")
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the fractional ranks of xs (average rank for ties),
// 1-based, as float64s.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank over the tie group [i, j].
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Summary holds descriptive statistics for a measurement sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty for an empty
// sample so callers distinguish "no data" from a degenerate measurement.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
	}, nil
}

// CV returns the coefficient of variation (stddev/mean) of the summary,
// used by the profiler to flag noisy measurements.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return math.NaN()
	}
	return s.StdDev / s.Mean
}
