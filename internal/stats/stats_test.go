package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"single", []float64{4}, 4},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1}, 0},
		{"many", []float64{1, 2, 3, 4, 5}, 3},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("%s: Mean(%v) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeoMean(2,2,2) = %v, want 2", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, 0})) {
		t.Error("GeoMean with zero should be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{-1, 2})) {
		t.Error("GeoMean with negative should be NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("GeoMean(nil) should be NaN")
	}
}

func TestGeoMeanLEArithMean(t *testing.T) {
	// AM-GM inequality must hold for any positive sample.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			v := math.Abs(r)
			if v > 1e-6 && v < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Known sample variance (n-1) of this classic set is 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of singleton should be 0")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if got := Median(xs); got != 3 {
		t.Errorf("Median odd = %v, want 3", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Median even = %v, want 2.5", got)
	}
	// Median must not mutate its argument.
	if xs[0] != 3 {
		t.Error("Median mutated input")
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("n<2 should error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance should error")
	}
}

func TestPearsonInvariantToAffineTransform(t *testing.T) {
	// Correlation is invariant under positive affine transforms of either
	// variable — the property that makes it the right metric for comparing
	// predicted vs measured latencies in different units.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = xs[i]*0.5 + rng.NormFloat64()*0.1
		}
		r1, err1 := Pearson(xs, ys)
		txs := make([]float64, n)
		for i := range xs {
			txs[i] = 3*xs[i] + 7
		}
		r2, err2 := Pearson(txs, ys)
		if err1 != nil || err2 != nil {
			return true // degenerate sample; skip
		}
		return almostEqual(r1, r2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transform gives Spearman rho = 1.
	xs := []float64{1, 5, 3, 9, 7}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x) // monotone but nonlinear
	}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rho, 1, 1e-12) {
		t.Errorf("Spearman of monotone transform = %v, want 1", rho)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Errorf("Summary = %+v", s)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
}

func TestSummaryCV(t *testing.T) {
	s, _ := Summarize([]float64{10, 10, 10})
	if s.CV() != 0 {
		t.Errorf("CV of constant sample = %v, want 0", s.CV())
	}
	z := Summary{Mean: 0, StdDev: 1}
	if !math.IsNaN(z.CV()) {
		t.Error("CV with zero mean should be NaN")
	}
}

func TestPearsonBounds(t *testing.T) {
	// |r| <= 1 for arbitrary random samples.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return true
		}
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
