package des

import (
	"testing"
)

func TestScheduleOrder(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	end := e.Run()
	if end != 3 {
		t.Errorf("final time = %v, want 3", end)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := New()
	var order []string
	e.Schedule(1, func() { order = append(order, "a") })
	e.Schedule(1, func() { order = append(order, "b") })
	e.Schedule(1, func() { order = append(order, "c") })
	e.Run()
	if got := order[0] + order[1] + order[2]; got != "abc" {
		t.Errorf("tie order = %q, want abc", got)
	}
}

func TestNowAdvancesDuringCallbacks(t *testing.T) {
	e := New()
	var seen []float64
	e.Schedule(5, func() {
		seen = append(seen, e.Now())
		e.Schedule(2, func() { seen = append(seen, e.Now()) })
	})
	e.Run()
	if len(seen) != 2 || seen[0] != 5 || seen[1] != 7 {
		t.Errorf("times = %v, want [5 7]", seen)
	}
}

func TestZeroDelayRunsAfterCurrentEvents(t *testing.T) {
	e := New()
	var order []string
	e.Schedule(1, func() {
		e.Schedule(0, func() { order = append(order, "child") })
		order = append(order, "parent")
	})
	e.Schedule(1, func() { order = append(order, "sibling") })
	e.Run()
	want := []string{"parent", "sibling", "child"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestAtInPastPanics(t *testing.T) {
	e := New()
	e.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		e.At(3, func() {})
	})
	e.Run()
}

func TestStepAndPending(t *testing.T) {
	e := New()
	if e.Step() {
		t.Error("Step on empty engine should be false")
	}
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d", e.Pending())
	}
	if !e.Step() || e.Now() != 1 || e.Pending() != 1 {
		t.Error("Step did not consume earliest event")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []float64
	for _, tt := range []float64{1, 2, 3, 4} {
		tt := tt
		e.Schedule(tt, func() { fired = append(fired, tt) })
	}
	e.RunUntil(2.5)
	if len(fired) != 2 || e.Now() != 2.5 {
		t.Errorf("fired = %v, now = %v", fired, e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Errorf("remaining events lost: %v", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New()
	e.RunUntil(10)
	if e.Now() != 10 {
		t.Errorf("idle RunUntil now = %v", e.Now())
	}
}

// TestSimulatedPipeline models a tiny 2-station pipeline entirely in
// events and checks the steady-state period equals the bottleneck time —
// the identity the scheduling model relies on.
func TestSimulatedPipeline(t *testing.T) {
	e := New()
	const tasks = 10
	const s1, s2 = 1.0, 3.0 // service times; station 2 is the bottleneck
	var s2FreeAt float64
	var completions []float64
	for i := 0; i < tasks; i++ {
		i := i
		// Station 1 is never starved; it emits task i at (i+1)*s1.
		e.At(float64(i+1)*s1, func() {
			start := e.Now()
			if s2FreeAt > start {
				start = s2FreeAt
			}
			s2FreeAt = start + s2
			e.At(s2FreeAt, func() { completions = append(completions, e.Now()) })
		})
	}
	e.Run()
	if len(completions) != tasks {
		t.Fatalf("completed %d tasks", len(completions))
	}
	// After warmup the inter-completion gap must equal the bottleneck.
	for i := 2; i < tasks; i++ {
		gap := completions[i] - completions[i-1]
		if gap != s2 {
			t.Errorf("gap %d = %v, want %v", i, gap, s2)
		}
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	e := New()
	var pump func()
	n := 0
	pump = func() {
		n++
		if n < b.N {
			e.Schedule(1, pump)
		}
	}
	e.Schedule(1, pump)
	b.ResetTimer()
	e.Run()
}

// TestPriorityOrdersWithinTimestamp pins AtPrio's contract: among events
// sharing a timestamp, lower priorities run first regardless of schedule
// order, and schedule order still breaks ties within one priority.
func TestPriorityOrdersWithinTimestamp(t *testing.T) {
	e := New()
	var order []string
	e.AtPrio(1, 2, func() { order = append(order, "arrival-a") })
	e.AtPrio(1, 0, func() { order = append(order, "depart-a") })
	e.AtPrio(1, 2, func() { order = append(order, "arrival-b") })
	e.AtPrio(1, 1, func() { order = append(order, "control") })
	e.AtPrio(1, 0, func() { order = append(order, "depart-b") })
	e.Run()
	want := []string{"depart-a", "depart-b", "control", "arrival-a", "arrival-b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestPriorityDoesNotCrossTimestamps pins that time always dominates
// priority: a low-priority event at an earlier time runs before a
// high-priority event at a later one.
func TestPriorityDoesNotCrossTimestamps(t *testing.T) {
	e := New()
	var order []string
	e.AtPrio(2, -5, func() { order = append(order, "late-urgent") })
	e.AtPrio(1, 5, func() { order = append(order, "early-lazy") })
	e.Run()
	if order[0] != "early-lazy" || order[1] != "late-urgent" {
		t.Fatalf("order = %v", order)
	}
}

// TestDefaultPriorityIsZero pins that At and Schedule interleave with
// explicit priority 0 events purely by schedule order — existing callers
// see no behavior change from the priority extension.
func TestDefaultPriorityIsZero(t *testing.T) {
	e := New()
	var order []int
	e.At(1, func() { order = append(order, 1) })
	e.AtPrio(1, 0, func() { order = append(order, 2) })
	e.Schedule(1, func() { order = append(order, 3) })
	e.Run()
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
}

// TestAtPrioInPastPanics pins the shared past-scheduling guard.
func TestAtPrioInPastPanics(t *testing.T) {
	e := New()
	e.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		e.AtPrio(3, -1, func() {})
	})
	e.Run()
}
