// Package des is a minimal deterministic discrete-event simulation
// engine. The pipeline's simulated execution mode runs on it: dispatcher
// processes advance a virtual clock by the SoC model's service times
// instead of wall time, standing in for the paper's hardware timers while
// keeping experiments exactly reproducible.
package des

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback. prio orders events sharing a timestamp
// (lower runs first); seq breaks remaining ties in schedule order, which
// makes runs deterministic regardless of map iteration or goroutine
// scheduling.
type event struct {
	time float64
	prio int
	seq  int64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded event loop over virtual time. It is not
// safe for concurrent use; simulated concurrency is expressed by
// scheduling events, not goroutines.
type Engine struct {
	now    float64
	seq    int64
	events eventHeap
}

// New returns an engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after the given virtual delay. A negative delay is a
// programming error and panics; a zero delay runs after already-pending
// events at the current time.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t, which must not be in the past.
// Events scheduled through At and Schedule run at priority 0.
func (e *Engine) At(t float64, fn func()) { e.AtPrio(t, 0, fn) }

// AtPrio runs fn at absolute virtual time t with an explicit priority:
// among events sharing a timestamp, lower priorities run first, and
// schedule order (seq) breaks remaining ties. Priorities let a caller
// express same-instant ordering rules — e.g. a fleet replay processing
// departures before control-plane sweeps before arrivals — without
// epsilon time offsets that would leak into reported timestamps.
func (e *Engine) AtPrio(t float64, prio int, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{time: t, prio: prio, seq: e.seq, fn: fn})
}

// Step executes the single earliest event and reports whether one
// existed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.time
	ev.fn()
	return true
}

// Run executes events until none remain and returns the final time.
func (e *Engine) Run() float64 {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with time <= t, then advances the clock to t.
func (e *Engine) RunUntil(t float64) {
	for len(e.events) > 0 && e.events[0].time <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}
