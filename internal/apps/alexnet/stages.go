package alexnet

import (
	"bettertogether/internal/core"
	"bettertogether/internal/tensor"
)

// Stage kernels. Dense convolution parallelizes over (image, output
// channel) pairs — the same decomposition the paper's OpenMP collapse and
// CUDA grid use. Sparse convolution runs im2col then CSR×cols, row-banded
// over output channels. Pooling parallelizes over (image, channel) and
// the classifier over (image, class row).

// denseConvStage returns the kernel of conv layer li writing stage index
// si's output, with fused ReLU.
func denseConvStage(li, si int) core.KernelFunc {
	return func(to *core.TaskObject, par core.ParallelFor) {
		t := to.Payload.(*Task)
		layer := &t.Model.Convs[li]
		spec := layer.Spec
		inLen := spec.InC * spec.InH * spec.InW
		outLen := spec.OutC * spec.OutH() * spec.OutW()
		src, dst := t.in(si), t.out(si)
		ohw := spec.OutH() * spec.OutW()
		par(t.B*spec.OutC, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				b, oc := u/spec.OutC, u%spec.OutC
				sv := tensor.FromSlice(src[b*inLen:(b+1)*inLen], spec.InC, spec.InH, spec.InW)
				dv := tensor.FromSlice(dst[b*outLen:(b+1)*outLen], spec.OutC, spec.OutH(), spec.OutW())
				tensor.Conv2DRange(spec, dv, sv, layer.W, layer.Bias, oc, oc+1)
				tensor.ReLU(dv, oc*ohw, (oc+1)*ohw)
			}
		})
	}
}

// sparseConvStage is the CSR variant: per-image im2col, then banded SpMM
// with fused ReLU.
func sparseConvStage(li, si int) core.KernelFunc {
	return func(to *core.TaskObject, par core.ParallelFor) {
		t := to.Payload.(*Task)
		layer := &t.Model.Convs[li]
		spec := layer.Spec
		inLen := spec.InC * spec.InH * spec.InW
		outLen := spec.OutC * spec.OutH() * spec.OutW()
		colRows := spec.InC * spec.Kernel * spec.Kernel
		n := spec.OutH() * spec.OutW()
		colLen := colRows * n
		src, dst, cols := t.in(si), t.out(si), t.Cols.Data
		// Phase 1: im2col each image.
		par(t.B, func(lo, hi int) {
			for b := lo; b < hi; b++ {
				sv := tensor.FromSlice(src[b*inLen:(b+1)*inLen], spec.InC, spec.InH, spec.InW)
				cv := tensor.FromSlice(cols[b*colLen:(b+1)*colLen], colRows, n)
				tensor.Im2Col(spec, sv, cv)
			}
		})
		// Phase 2: sparse weights × columns, one (image, out-channel) row
		// per work unit.
		par(t.B*spec.OutC, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				b, oc := u/spec.OutC, u%spec.OutC
				c := dst[b*outLen : (b+1)*outLen]
				layer.CSR.SpMMRange(c, cols[b*colLen:(b+1)*colLen], n, oc, oc+1)
				bias := layer.Bias[oc]
				row := c[oc*n : (oc+1)*n]
				for j := range row {
					v := row[j] + bias
					if v < 0 {
						v = 0
					}
					row[j] = v
				}
			}
		})
	}
}

// poolStage pools conv layer li's output at stage index si.
func poolStage(li, si int) core.KernelFunc {
	return func(to *core.TaskObject, par core.ParallelFor) {
		t := to.Payload.(*Task)
		spec := t.Model.Pools[li]
		inLen := spec.C * spec.H * spec.W
		outLen := spec.C * spec.OutH() * spec.OutW()
		src, dst := t.in(si), t.out(si)
		par(t.B*spec.C, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				b, c := u/spec.C, u%spec.C
				sv := tensor.FromSlice(src[b*inLen:(b+1)*inLen], spec.C, spec.H, spec.W)
				dv := tensor.FromSlice(dst[b*outLen:(b+1)*outLen], spec.C, spec.OutH(), spec.OutW())
				tensor.MaxPool2DRange(spec, dv, sv, c, c+1)
			}
		})
	}
}

// fcStage is the final classifier at stage index si.
func fcStage(si int) core.KernelFunc {
	return func(to *core.TaskObject, par core.ParallelFor) {
		t := to.Payload.(*Task)
		m := t.Model
		src, dst := t.in(si), t.Logits.Data
		par(t.B*Classes, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				b, row := u/Classes, u%Classes
				tensor.LinearRange(dst[b*Classes:(b+1)*Classes],
					src[b*m.FCIn:(b+1)*m.FCIn], m.FCW, m.FCB, m.FCIn, row, row+1)
			}
		})
	}
}

// Predictions returns the argmax class per image of the current logits.
func (t *Task) Predictions() []int {
	out := make([]int, t.B)
	for b := 0; b < t.B; b++ {
		out[b] = tensor.Argmax(t.Logits.Data[b*Classes : (b+1)*Classes])
	}
	return out
}
