// Package alexnet implements the paper's first two evaluation workloads
// (Sec. 4.1): image classification with a CIFAR-10-scale AlexNet, in a
// dense variant (regular, dominated by dense convolution) and a sparse
// variant whose convolution weights are structurally pruned to CSR
// (irregular memory access, the regime where big out-of-order cores catch
// up with GPUs).
//
// The network has nine pipeline stages — four convolutions each followed
// by max pooling, then a fully-connected classifier — matching the
// paper's stage count. Each DNN layer is one pipeline stage, as in the
// paper's motivating example (Sec. 1).
package alexnet

import (
	"math/rand"

	"bettertogether/internal/sparse"
	"bettertogether/internal/tensor"
)

// Input geometry: CIFAR-10 images.
const (
	InputC = 3
	InputH = 32
	InputW = 32
	// Classes is the classifier output width.
	Classes = 10
)

// DefaultSparsity is the structured-pruning level of the sparse variant,
// matching the heavy pruning Condensa applies in the paper.
const DefaultSparsity = 0.8

// ConvLayer is one convolution stage's parameters: dense weights, bias,
// and (for the sparse variant) the pruned weights in CSR with rows
// [OutC] × cols [InC·K·K], the layout that turns convolution into
// CSR × im2col.
type ConvLayer struct {
	Spec tensor.ConvSpec
	W    *tensor.Tensor
	Bias []float32
	// CSR holds the pruned weights; nil in the dense model.
	CSR *sparse.CSR
}

// Model holds the network parameters. A Model is immutable after
// construction and shared by every TaskObject of an application (weights
// are persistent data in TaskObject terms; sharing them is the UMA
// zero-copy story of Sec. 3.1).
type Model struct {
	Convs [4]ConvLayer
	// Pools[i] pools the output of Convs[i].
	Pools [4]tensor.PoolSpec
	// FCW is the classifier weight matrix [Classes × FCIn], FCB its bias.
	FCW  []float32
	FCB  []float32
	FCIn int
	// Sparsity is 0 for the dense model.
	Sparsity float64
}

// channelProgression is the AlexNet-for-CIFAR channel plan.
var channelProgression = [4]int{64, 192, 384, 256}

// NewModel builds a model with deterministic seeded weights. sparsity 0
// gives the dense variant; a positive sparsity prunes each conv layer
// per-row by magnitude and attaches CSR weights.
func NewModel(seed int64, sparsity float64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := &Model{Sparsity: sparsity}
	c, h, w := InputC, InputH, InputW
	for i := 0; i < 4; i++ {
		spec := tensor.ConvSpec{
			InC: c, InH: h, InW: w,
			OutC: channelProgression[i], Kernel: 3, Stride: 1, Pad: 1,
		}
		wt := tensor.New(spec.OutC, spec.InC, spec.Kernel, spec.Kernel)
		wt.FillRandom(rng, 0.25)
		bias := make([]float32, spec.OutC)
		for j := range bias {
			bias[j] = (rng.Float32()*2 - 1) * 0.05
		}
		layer := ConvLayer{Spec: spec, W: wt, Bias: bias}
		if sparsity > 0 {
			rows := spec.OutC
			cols := spec.InC * spec.Kernel * spec.Kernel
			pruned := sparse.Prune(wt.Data, rows, cols, sparsity)
			layer.CSR = sparse.FromDense(pruned, rows, cols)
		}
		m.Convs[i] = layer
		// Pool halves the spatial dims.
		m.Pools[i] = tensor.PoolSpec{C: spec.OutC, H: h, W: w, Kernel: 2, Stride: 2}
		c, h, w = spec.OutC, m.Pools[i].OutH(), m.Pools[i].OutW()
	}
	m.FCIn = c * h * w
	m.FCW = make([]float32, Classes*m.FCIn)
	for i := range m.FCW {
		m.FCW[i] = (rng.Float32()*2 - 1) * 0.1
	}
	m.FCB = make([]float32, Classes)
	for i := range m.FCB {
		m.FCB[i] = (rng.Float32()*2 - 1) * 0.05
	}
	return m
}

// ActSize returns the largest activation volume (elements per image),
// which sizes the ping-pong activation buffers.
func (m *Model) ActSize() int {
	max := InputC * InputH * InputW
	for i := range m.Convs {
		s := m.Convs[i].Spec
		if v := s.OutC * s.OutH() * s.OutW(); v > max {
			max = v
		}
	}
	return max
}

// ColsSize returns the largest im2col matrix (elements per image) across
// conv layers, sizing the sparse variant's scratch.
func (m *Model) ColsSize() int {
	max := 0
	for i := range m.Convs {
		s := m.Convs[i].Spec
		if v := s.InC * s.Kernel * s.Kernel * s.OutH() * s.OutW(); v > max {
			max = v
		}
	}
	return max
}
