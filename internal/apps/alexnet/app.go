package alexnet

import (
	"bettertogether/internal/core"
)

// DefaultSeed is the weight seed used by the evaluation.
const DefaultSeed = 1337

// DefaultSparseBatch is the image batch per task of the sparse variant.
// The paper batches 128 CIFAR images per task because the pruned network
// is cheap per image; we scale the batch down with the rest of the
// simulated workload sizes (see DESIGN.md) while keeping the structure —
// the sparse variant still amortizes per-task overhead over a batch.
const DefaultSparseBatch = 8

// StageNames are the nine pipeline stages in order.
var StageNames = []string{
	"conv1", "pool1", "conv2", "pool2", "conv3", "pool3", "conv4", "pool4", "fc",
}

// denseCosts returns per-stage cost specs for the dense variant at batch b.
func denseCosts(m *Model, b int) []core.CostSpec {
	fb := float64(b)
	var cs []core.CostSpec
	for i := 0; i < 4; i++ {
		spec := m.Convs[i].Spec
		in := float64(spec.InC * spec.InH * spec.InW)
		out := float64(spec.OutC * spec.OutH() * spec.OutW())
		wts := float64(len(m.Convs[i].W.Data))
		cs = append(cs, core.CostSpec{
			FLOPs:            fb * float64(spec.FLOPs()),
			Bytes:            fb*4*(in+out) + 4*wts,
			ParallelFraction: 0.9995,
			Divergence:       0.03,
			Irregularity:     0.03,
			WorkItems:        fb * out,
		})
		p := m.Pools[i]
		pin := float64(p.C * p.H * p.W)
		pout := float64(p.C * p.OutH() * p.OutW())
		cs = append(cs, core.CostSpec{
			FLOPs:            fb * pout * 4,
			Bytes:            fb * 4 * (pin + pout),
			ParallelFraction: 0.999,
			Divergence:       0.05,
			Irregularity:     0.02,
			WorkItems:        fb * pout,
		})
	}
	cs = append(cs, core.CostSpec{
		FLOPs:            fb * 2 * Classes * float64(m.FCIn),
		Bytes:            fb*4*float64(m.FCIn+Classes) + 4*float64(Classes*m.FCIn),
		ParallelFraction: 0.99,
		Divergence:       0.02,
		Irregularity:     0.05,
		WorkItems:        fb * Classes,
	})
	return cs
}

// sparseCosts returns per-stage cost specs for the CSR variant: the
// convolutions gain irregularity and divergence (gathered operands,
// uneven row lengths) and lose most of their arithmetic to pruning;
// pooling and the classifier stay dense.
func sparseCosts(m *Model, b int) []core.CostSpec {
	cs := denseCosts(m, b)
	fb := float64(b)
	for i := 0; i < 4; i++ {
		spec := m.Convs[i].Spec
		n := float64(spec.OutH() * spec.OutW())
		nnz := float64(m.Convs[i].CSR.NNZ())
		colLen := float64(spec.InC*spec.Kernel*spec.Kernel) * n
		in := float64(spec.InC * spec.InH * spec.InW)
		out := float64(spec.OutC) * n
		cs[2*i] = core.CostSpec{
			// 2 flops per multiply-add plus ~30% indexing overhead, plus
			// the im2col expansion pass.
			FLOPs:            fb * (2.6*nnz*n + colLen),
			Bytes:            fb*4*(in+colLen+out) + 8*nnz,
			ParallelFraction: 0.99,
			Divergence:       0.70,
			Irregularity:     0.72,
			WorkItems:        fb * out,
		}
	}
	return cs
}

// newApp assembles an Application from per-stage kernels and costs.
func newApp(name string, m *Model, b int, sparse bool, costs []core.CostSpec) *core.Application {
	stages := make([]core.Stage, 0, 9)
	si := 0
	for i := 0; i < 4; i++ {
		conv := denseConvStage(i, si)
		if sparse {
			conv = sparseConvStage(i, si)
		}
		stages = append(stages, core.Stage{
			Name: StageNames[si], CPU: conv, GPU: conv, Cost: costs[si],
		})
		si++
		pool := poolStage(i, si)
		stages = append(stages, core.Stage{
			Name: StageNames[si], CPU: pool, GPU: pool, Cost: costs[si],
		})
		si++
	}
	fc := fcStage(si)
	stages = append(stages, core.Stage{
		Name: StageNames[si], CPU: fc, GPU: fc, Cost: costs[si],
	})
	return &core.Application{
		Name:   name,
		Stages: stages,
		NewTask: func() *core.TaskObject {
			t := NewTaskPayload(m, b, sparse)
			return core.NewTaskObject(t, t.buffers(), func(obj *core.TaskObject) {
				t.Regenerate(obj.Seq)
				t.resetCoherence()
			})
		},
	}
}

// NewDense builds the dense 9-stage application: one image per task,
// exactly the paper's AlexNet-dense. batch <= 0 means 1.
func NewDense(seed int64, batch int) *core.Application {
	if batch <= 0 {
		batch = 1
	}
	m := NewModel(seed, 0)
	return newApp("alexnet-dense", m, batch, false, denseCosts(m, batch))
}

// NewSparse builds the pruned CSR variant at the given batch size
// (DefaultSparseBatch when <= 0).
func NewSparse(seed int64, batch int) *core.Application {
	if batch <= 0 {
		batch = DefaultSparseBatch
	}
	m := NewModel(seed, DefaultSparsity)
	return newApp("alexnet-sparse", m, batch, true, sparseCosts(m, batch))
}
