package alexnet

import (
	"math"
	"sync"
	"testing"

	"bettertogether/internal/core"
	"bettertogether/internal/tensor"
)

func concPar(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func TestModelShapes(t *testing.T) {
	m := NewModel(1, 0)
	// Spatial plan: 32 -> pool -> 16 -> 8 -> 4 -> 2.
	wantH := []int{32, 16, 8, 4}
	for i, l := range m.Convs {
		if l.Spec.InH != wantH[i] || l.Spec.OutH() != wantH[i] {
			t.Errorf("conv%d spatial %d->%d, want same-pad at %d", i+1, l.Spec.InH, l.Spec.OutH(), wantH[i])
		}
		if l.Spec.OutC != channelProgression[i] {
			t.Errorf("conv%d channels = %d", i+1, l.Spec.OutC)
		}
		if err := l.Spec.Validate(); err != nil {
			t.Errorf("conv%d: %v", i+1, err)
		}
	}
	if m.FCIn != 256*2*2 {
		t.Errorf("FCIn = %d, want 1024", m.FCIn)
	}
	if m.ActSize() != 64*32*32 {
		t.Errorf("ActSize = %d, want %d", m.ActSize(), 64*32*32)
	}
	if m.ColsSize() == 0 {
		t.Error("ColsSize = 0")
	}
}

func TestModelDeterministic(t *testing.T) {
	a, b := NewModel(7, 0), NewModel(7, 0)
	for i := range a.Convs[0].W.Data {
		if a.Convs[0].W.Data[i] != b.Convs[0].W.Data[i] {
			t.Fatal("same seed, different weights")
		}
	}
	c := NewModel(8, 0)
	same := true
	for i := range a.Convs[0].W.Data {
		if a.Convs[0].W.Data[i] != c.Convs[0].W.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds, same weights")
	}
}

func TestSparseModelPruning(t *testing.T) {
	m := NewModel(1, DefaultSparsity)
	for i, l := range m.Convs {
		if l.CSR == nil {
			t.Fatalf("conv%d has no CSR weights", i+1)
		}
		if err := l.CSR.Validate(); err != nil {
			t.Fatalf("conv%d CSR invalid: %v", i+1, err)
		}
		cols := l.Spec.InC * l.Spec.Kernel * l.Spec.Kernel
		keep := cols - int(math.Floor(DefaultSparsity*float64(cols)))
		want := float64(keep) / float64(cols)
		if d := l.CSR.Density(); math.Abs(d-want) > 1e-9 {
			t.Errorf("conv%d density = %v, want %v", i+1, d, want)
		}
	}
	dense := NewModel(1, 0)
	if dense.Convs[0].CSR != nil {
		t.Error("dense model should not carry CSR weights")
	}
}

func runAll(app *core.Application, to *core.TaskObject, par core.ParallelFor, gpu bool) {
	for _, s := range app.Stages {
		if gpu {
			s.GPU(to, par)
		} else {
			s.CPU(to, par)
		}
	}
}

func TestDenseForwardDeterministicAcrossBackendsAndParallelism(t *testing.T) {
	app := NewDense(3, 1)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	t1 := app.NewTask()
	runAll(app, t1, core.SerialFor, false)
	ref := append([]float32(nil), t1.Payload.(*Task).Logits.Data...)

	t2 := app.NewTask()
	runAll(app, t2, concPar, true)
	got := t2.Payload.(*Task).Logits.Data
	for i := range ref {
		if math.Abs(float64(ref[i]-got[i])) > 1e-4 {
			t.Fatalf("logit %d: serial-CPU %v vs parallel-GPU %v", i, ref[i], got[i])
		}
	}
}

func TestDenseMatchesManualReference(t *testing.T) {
	// Independently compose the forward pass from tensor primitives and
	// compare against the staged pipeline.
	app := NewDense(5, 1)
	to := app.NewTask()
	task := to.Payload.(*Task)
	m := task.Model

	cur := tensor.FromSlice(append([]float32(nil), task.Input.Data...), InputC, InputH, InputW)
	for i := 0; i < 4; i++ {
		spec := m.Convs[i].Spec
		conv := tensor.New(spec.OutC, spec.OutH(), spec.OutW())
		tensor.Conv2D(spec, conv, cur, m.Convs[i].W, m.Convs[i].Bias)
		tensor.ReLU(conv, 0, conv.Len())
		p := m.Pools[i]
		pooled := tensor.New(p.C, p.OutH(), p.OutW())
		tensor.MaxPool2D(p, pooled, conv)
		cur = pooled
	}
	want := make([]float32, Classes)
	tensor.Linear(want, cur.Data, m.FCW, m.FCB, Classes, m.FCIn)

	runAll(app, to, concPar, false)
	for i := range want {
		if math.Abs(float64(want[i]-task.Logits.Data[i])) > 1e-3 {
			t.Fatalf("logit %d: pipeline %v vs reference %v", i, task.Logits.Data[i], want[i])
		}
	}
}

func TestSparseMatchesDenseWithPrunedWeights(t *testing.T) {
	// The CSR convolution must agree exactly with a dense convolution
	// using the pruned weight tensor.
	const seed = 11
	sparseApp := NewSparse(seed, 2)
	to := sparseApp.NewTask()
	task := to.Payload.(*Task)
	m := task.Model
	runAll(sparseApp, to, concPar, false)
	got := append([]float32(nil), task.Logits.Data...)

	// Dense reference with the same pruned weights.
	for b := 0; b < task.B; b++ {
		in := task.Input.Data[b*InputC*InputH*InputW : (b+1)*InputC*InputH*InputW]
		cur := tensor.FromSlice(append([]float32(nil), in...), InputC, InputH, InputW)
		for i := 0; i < 4; i++ {
			spec := m.Convs[i].Spec
			pruned := tensor.FromSlice(m.Convs[i].CSR.ToDense(),
				spec.OutC, spec.InC, spec.Kernel, spec.Kernel)
			conv := tensor.New(spec.OutC, spec.OutH(), spec.OutW())
			tensor.Conv2D(spec, conv, cur, pruned, m.Convs[i].Bias)
			tensor.ReLU(conv, 0, conv.Len())
			p := m.Pools[i]
			pooled := tensor.New(p.C, p.OutH(), p.OutW())
			tensor.MaxPool2D(p, pooled, conv)
			cur = pooled
		}
		want := make([]float32, Classes)
		tensor.Linear(want, cur.Data, m.FCW, m.FCB, Classes, m.FCIn)
		for i := range want {
			if math.Abs(float64(want[i]-got[b*Classes+i])) > 1e-3 {
				t.Fatalf("image %d logit %d: sparse %v vs pruned-dense %v",
					b, i, got[b*Classes+i], want[i])
			}
		}
	}
}

func TestTaskRecycling(t *testing.T) {
	app := NewDense(1, 1)
	to := app.NewTask()
	runAll(app, to, core.SerialFor, false)
	first := append([]float32(nil), to.Payload.(*Task).Logits.Data...)

	to.Reset(1) // new input
	runAll(app, to, core.SerialFor, false)
	second := append([]float32(nil), to.Payload.(*Task).Logits.Data...)
	diff := false
	for i := range first {
		if first[i] != second[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different stream inputs gave identical logits")
	}

	// Resetting back to seq 0 must reproduce the first output exactly.
	to.Reset(0)
	runAll(app, to, core.SerialFor, false)
	for i := range first {
		if first[i] != to.Payload.(*Task).Logits.Data[i] {
			t.Fatal("recycled task not deterministic")
		}
	}
}

func TestPredictionsShape(t *testing.T) {
	app := NewSparse(2, 3)
	to := app.NewTask()
	runAll(app, to, core.SerialFor, false)
	preds := to.Payload.(*Task).Predictions()
	if len(preds) != 3 {
		t.Fatalf("predictions = %v", preds)
	}
	for _, p := range preds {
		if p < 0 || p >= Classes {
			t.Fatalf("prediction %d out of range", p)
		}
	}
}

func TestCostSpecsValid(t *testing.T) {
	for _, app := range []*core.Application{NewDense(1, 1), NewSparse(1, 4)} {
		if len(app.Stages) != 9 {
			t.Fatalf("%s: %d stages", app.Name, len(app.Stages))
		}
		for i, s := range app.Stages {
			if err := s.Cost.Validate(); err != nil {
				t.Errorf("%s stage %d: %v", app.Name, i, err)
			}
			if s.Cost.FLOPs <= 0 {
				t.Errorf("%s stage %d: no work", app.Name, i)
			}
		}
	}
}

func TestSparseCheaperThanDensePerImage(t *testing.T) {
	dense := NewDense(1, 1)
	sparsed := NewSparse(1, 1)
	var dFlops, sFlops float64
	for i := 0; i < 9; i++ {
		dFlops += dense.Stages[i].Cost.FLOPs
		sFlops += sparsed.Stages[i].Cost.FLOPs
	}
	if sFlops >= dFlops {
		t.Errorf("sparse per-image FLOPs %g !< dense %g", sFlops, dFlops)
	}
	// Convolution stages must carry the irregularity marker.
	if sparsed.Stages[0].Cost.Irregularity <= dense.Stages[0].Cost.Irregularity {
		t.Error("sparse conv should be more irregular than dense conv")
	}
	// Pooling stays regular in both.
	if sparsed.Stages[1].Cost.Irregularity != dense.Stages[1].Cost.Irregularity {
		t.Error("pool cost should be unchanged by pruning")
	}
}

func TestBatchScalesCosts(t *testing.T) {
	b1 := NewSparse(1, 1)
	b4 := NewSparse(1, 4)
	for i := range b1.Stages {
		r := b4.Stages[i].Cost.FLOPs / b1.Stages[i].Cost.FLOPs
		if r < 3.5 || r > 4.5 {
			t.Errorf("stage %d: batch-4 flops ratio %v, want ~4", i, r)
		}
	}
}

func BenchmarkDenseForwardSerial(b *testing.B) {
	app := NewDense(1, 1)
	to := app.NewTask()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runAll(app, to, core.SerialFor, false)
	}
}

func BenchmarkSparseForwardSerial(b *testing.B) {
	app := NewSparse(1, 1)
	to := app.NewTask()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runAll(app, to, core.SerialFor, false)
	}
}
