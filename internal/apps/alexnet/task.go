package alexnet

import (
	"math/rand"

	"bettertogether/internal/core"
)

// Task is the AlexNet pipeline's TaskObject payload: one batch of images
// plus all activation and scratch buffers, pre-allocated (Sec. 3.4).
//
// Stages communicate through two ping-pong activation buffers: stage i
// writes Acts[i%2] and stage i+1 reads it. Since chunks execute a task's
// stages in pipeline order and the SPSC hand-off gives each task a single
// owner at a time, the buffers need no further synchronization beyond the
// UsmBuffer coherence fences.
type Task struct {
	// B is the image batch per task (1 for dense, larger for sparse, as
	// in the paper).
	B int
	// Model is the shared immutable network.
	Model *Model

	// Input holds B × 3×32×32 images.
	Input *core.UsmBuffer[float32]
	// Acts are the ping-pong activation buffers, each B × ActSize.
	Acts [2]*core.UsmBuffer[float32]
	// Cols is the per-image im2col scratch (B × ColsSize), used by the
	// sparse convolutions; nil in dense tasks.
	Cols *core.UsmBuffer[float32]
	// Logits holds the classifier output, B × Classes.
	Logits *core.UsmBuffer[float32]
}

// NewTaskPayload allocates a task for batch b over model m, generating
// the seq-0 input. withCols allocates the sparse scratch.
func NewTaskPayload(m *Model, b int, withCols bool) *Task {
	t := &Task{
		B:      b,
		Model:  m,
		Input:  core.NewUsmBuffer[float32](b * InputC * InputH * InputW),
		Logits: core.NewUsmBuffer[float32](b * Classes),
	}
	t.Acts[0] = core.NewUsmBuffer[float32](b * m.ActSize())
	t.Acts[1] = core.NewUsmBuffer[float32](b * m.ActSize())
	if withCols {
		t.Cols = core.NewUsmBuffer[float32](b * m.ColsSize())
	}
	t.Regenerate(0)
	return t
}

// Regenerate fills the input batch deterministically for stream sequence
// seq — the synthetic stand-in for CIFAR-10 frames arriving over time.
func (t *Task) Regenerate(seq int) {
	rng := rand.New(rand.NewSource(int64(seq)*50021 + 11))
	for i := range t.Input.Data {
		t.Input.Data[i] = rng.Float32()
	}
}

// in returns the input buffer of stage idx: the task input for stage 0,
// otherwise the previous stage's ping-pong output.
func (t *Task) in(idx int) []float32 {
	if idx == 0 {
		return t.Input.Data
	}
	return t.Acts[(idx-1)%2].Data
}

// out returns the output buffer of stage idx.
func (t *Task) out(idx int) []float32 {
	return t.Acts[idx%2].Data
}

// buffers lists the unified buffers for coherence tracking.
func (t *Task) buffers() []core.Syncable {
	bs := []core.Syncable{t.Input, t.Acts[0], t.Acts[1], t.Logits}
	if t.Cols != nil {
		bs = append(bs, t.Cols)
	}
	return bs
}

// resetCoherence returns every buffer to the shared state on recycle.
func (t *Task) resetCoherence() {
	t.Input.ResetCoherence()
	t.Acts[0].ResetCoherence()
	t.Acts[1].ResetCoherence()
	t.Logits.ResetCoherence()
	if t.Cols != nil {
		t.Cols.ResetCoherence()
	}
}
