package vision

import (
	"fmt"

	"bettertogether/internal/core"
)

// StageNames are the six pipeline stages in order.
var StageNames = []string{
	"demosaic", "denoise", "sobel", "histogram", "equalize", "downscale",
}

// histScratch carries the band-local histograms between the two phases
// of the histogram stage; it lives beside the Task in the TaskObject to
// stay allocation-free.
type payload struct {
	*Task
	locals [histBands][Bins]int32
}

// Unwrap returns the Task inside a pipeline payload, so callers outside
// the package (tests, result collectors) can inspect frame outputs
// without depending on the unexported scratch wrapper.
func Unwrap(p any) *Task {
	if t, ok := p.(*Task); ok {
		return t
	}
	return p.(*payload).Task
}

func stageDemosaic(to *core.TaskObject, par core.ParallelFor) {
	t := to.Payload.(*payload)
	par(t.H, func(lo, hi int) { t.Demosaic(lo, hi) })
}

func stageDenoise(to *core.TaskObject, par core.ParallelFor) {
	t := to.Payload.(*payload)
	par(t.H, func(lo, hi int) { t.Denoise(lo, hi) })
}

func stageSobel(to *core.TaskObject, par core.ParallelFor) {
	t := to.Payload.(*payload)
	par(t.H, func(lo, hi int) { t.Sobel(lo, hi) })
}

func stageHistogram(to *core.TaskObject, par core.ParallelFor) {
	t := to.Payload.(*payload)
	for b := range t.locals {
		for i := range t.locals[b] {
			t.locals[b][i] = 0
		}
	}
	par(histBands, func(lo, hi int) { t.Histogram(&t.locals, lo, hi) })
	t.MergeHistogram(&t.locals)
}

func stageEqualize(to *core.TaskObject, par core.ParallelFor) {
	t := to.Payload.(*payload)
	par(t.H, func(lo, hi int) { t.Equalize(lo, hi) })
}

func stageDownscale(to *core.TaskObject, par core.ParallelFor) {
	t := to.Payload.(*payload)
	par(t.H/2, func(lo, hi int) { t.Downscale(lo, hi) })
}

// costs derives per-stage cost specs from the frame geometry.
func costs(w, h int) []core.CostSpec {
	px := float64(w * h)
	return []core.CostSpec{
		{FLOPs: 14 * px, Bytes: 16 * px, ParallelFraction: 0.999,
			Divergence: 0.15, Irregularity: 0.08, WorkItems: px, Dispatches: 1}, // demosaic
		{FLOPs: 70 * px, Bytes: 28 * px, ParallelFraction: 0.999,
			Divergence: 0.30, Irregularity: 0.10, WorkItems: 3 * px, Dispatches: 1}, // denoise (median net)
		{FLOPs: 45 * px, Bytes: 20 * px, ParallelFraction: 0.999,
			Divergence: 0.05, Irregularity: 0.05, WorkItems: px, Dispatches: 1}, // sobel
		{FLOPs: 4 * px, Bytes: 8 * px, ParallelFraction: 0.92,
			Divergence: 0.65, Irregularity: 0.60, WorkItems: px, Dispatches: 2}, // histogram (+serial CDF)
		{FLOPs: 3 * px, Bytes: 9 * px, ParallelFraction: 0.999,
			Divergence: 0.20, Irregularity: 0.35, WorkItems: px, Dispatches: 1}, // equalize (LUT gather)
		{FLOPs: 2 * px, Bytes: 6 * px, ParallelFraction: 0.999,
			Divergence: 0.02, Irregularity: 0.02, WorkItems: px / 4, Dispatches: 1}, // downscale
	}
}

// NewApplication builds the 6-stage vision pipeline over w×h frames
// (DefaultWidth/DefaultHeight when <= 0). Width and height must be even.
func NewApplication(w, h int) (*core.Application, error) {
	if w <= 0 {
		w = DefaultWidth
	}
	if h <= 0 {
		h = DefaultHeight
	}
	if w%2 != 0 || h%2 != 0 {
		return nil, fmt.Errorf("vision: frame dims %dx%d must be even (Bayer mosaic)", w, h)
	}
	bodies := []core.KernelFunc{
		stageDemosaic, stageDenoise, stageSobel,
		stageHistogram, stageEqualize, stageDownscale,
	}
	cs := costs(w, h)
	stages := make([]core.Stage, len(bodies))
	for i := range bodies {
		stages[i] = core.Stage{Name: StageNames[i], CPU: bodies[i], GPU: bodies[i], Cost: cs[i]}
	}
	return &core.Application{
		Name:   "vision",
		Stages: stages,
		NewTask: func() *core.TaskObject {
			p := &payload{Task: NewTask(w, h)}
			bufs := []core.Syncable{
				p.Bayer, p.RGB, p.Denoised, p.Gray, p.Grad, p.Hist, p.LUT, p.Eq, p.Out,
			}
			return core.NewTaskObject(p, bufs, func(obj *core.TaskObject) {
				p.Regenerate(obj.Seq)
				for _, b := range []interface{ ResetCoherence() }{
					p.Bayer, p.RGB, p.Denoised, p.Gray, p.Grad, p.Hist, p.LUT, p.Eq, p.Out,
				} {
					b.ResetCoherence()
				}
			})
		},
	}, nil
}
