// Package vision is a fourth evaluation-style workload beyond the
// paper's three: a classic edge camera pipeline over streaming frames —
// demosaic, denoise, edge detection, histogram equalization, and
// downscale. It exists to demonstrate that BetterTogether's abstractions
// extend past the paper's workloads: the stages span the same regularity
// spectrum (stencils are GPU-friendly, the histogram scatter and the
// serial CDF are not) and every kernel is a real implementation.
package vision

import (
	"math/rand"

	"bettertogether/internal/core"
)

// Default frame geometry (square RGGB Bayer mosaic).
const (
	DefaultWidth  = 256
	DefaultHeight = 256
	// Bins is the luminance histogram resolution.
	Bins = 256
)

// Task is the pipeline payload: one Bayer frame and every derived
// buffer, pre-allocated.
type Task struct {
	W, H int

	// Bayer is the RGGB mosaic, W×H.
	Bayer *core.UsmBuffer[float32]
	// RGB is the demosaiced image, 3×W×H planar.
	RGB *core.UsmBuffer[float32]
	// Denoised is the median-filtered image, 3×W×H.
	Denoised *core.UsmBuffer[float32]
	// Gray and Grad are the luminance and Sobel magnitude planes, W×H.
	Gray, Grad *core.UsmBuffer[float32]
	// Hist is the luminance histogram; LUT the equalization map.
	Hist *core.UsmBuffer[int32]
	LUT  *core.UsmBuffer[float32]
	// Eq is the equalized luminance plane, W×H.
	Eq *core.UsmBuffer[float32]
	// Out is the 2x-downscaled result, (W/2)×(H/2).
	Out *core.UsmBuffer[float32]
}

// NewTask allocates a task for w×h frames and fills the seq-0 input.
func NewTask(w, h int) *Task {
	t := &Task{
		W: w, H: h,
		Bayer:    core.NewUsmBuffer[float32](w * h),
		RGB:      core.NewUsmBuffer[float32](3 * w * h),
		Denoised: core.NewUsmBuffer[float32](3 * w * h),
		Gray:     core.NewUsmBuffer[float32](w * h),
		Grad:     core.NewUsmBuffer[float32](w * h),
		Hist:     core.NewUsmBuffer[int32](Bins),
		LUT:      core.NewUsmBuffer[float32](Bins),
		Eq:       core.NewUsmBuffer[float32](w * h),
		Out:      core.NewUsmBuffer[float32]((w / 2) * (h / 2)),
	}
	t.Regenerate(0)
	return t
}

// Regenerate synthesizes the frame for stream sequence seq: a smooth
// gradient scene with seeded sensor noise and occasional hot pixels —
// enough structure for every stage to do real work.
func (t *Task) Regenerate(seq int) {
	rng := rand.New(rand.NewSource(int64(seq)*60013 + 7))
	for y := 0; y < t.H; y++ {
		for x := 0; x < t.W; x++ {
			base := 0.25 + 0.5*float32(x+y)/float32(t.W+t.H)
			v := base + float32(rng.NormFloat64())*0.02
			if rng.Float64() < 0.001 {
				v = 1 // hot pixel for the median filter to kill
			}
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			t.Bayer.Data[y*t.W+x] = v
		}
	}
	for i := range t.Hist.Data {
		t.Hist.Data[i] = 0
	}
}

// clampIdx reflects an index into [0, n).
func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// at reads plane p of a 3×W×H planar image with clamped coordinates.
func at(img []float32, p, x, y, w, h int) float32 {
	return img[p*w*h+clampIdx(y, h)*w+clampIdx(x, w)]
}

// Demosaic converts the RGGB mosaic to planar RGB rows [yLo, yHi) with
// bilinear interpolation of the missing samples.
func (t *Task) Demosaic(yLo, yHi int) {
	w, h := t.W, t.H
	in, out := t.Bayer.Data, t.RGB.Data
	sample := func(x, y int) float32 { return in[clampIdx(y, h)*w+clampIdx(x, w)] }
	// RGGB: (even,even)=R, (odd,even)=G, (even,odd)=G, (odd,odd)=B.
	for y := yLo; y < yHi; y++ {
		for x := 0; x < w; x++ {
			var r, g, b float32
			switch {
			case y%2 == 0 && x%2 == 0: // R site
				r = sample(x, y)
				g = (sample(x-1, y) + sample(x+1, y) + sample(x, y-1) + sample(x, y+1)) / 4
				b = (sample(x-1, y-1) + sample(x+1, y-1) + sample(x-1, y+1) + sample(x+1, y+1)) / 4
			case y%2 == 1 && x%2 == 1: // B site
				b = sample(x, y)
				g = (sample(x-1, y) + sample(x+1, y) + sample(x, y-1) + sample(x, y+1)) / 4
				r = (sample(x-1, y-1) + sample(x+1, y-1) + sample(x-1, y+1) + sample(x+1, y+1)) / 4
			case y%2 == 0: // G site on an R row
				g = sample(x, y)
				r = (sample(x-1, y) + sample(x+1, y)) / 2
				b = (sample(x, y-1) + sample(x, y+1)) / 2
			default: // G site on a B row
				g = sample(x, y)
				b = (sample(x-1, y) + sample(x+1, y)) / 2
				r = (sample(x, y-1) + sample(x, y+1)) / 2
			}
			idx := y*w + x
			out[idx] = r
			out[w*h+idx] = g
			out[2*w*h+idx] = b
		}
	}
}

// median9 returns the median of 9 values via a fixed sorting network.
func median9(v [9]float32) float32 {
	swap := func(a, b int) {
		if v[a] > v[b] {
			v[a], v[b] = v[b], v[a]
		}
	}
	// Paeth's 19-exchange median-of-9 network.
	swap(1, 2)
	swap(4, 5)
	swap(7, 8)
	swap(0, 1)
	swap(3, 4)
	swap(6, 7)
	swap(1, 2)
	swap(4, 5)
	swap(7, 8)
	swap(0, 3)
	swap(5, 8)
	swap(4, 7)
	swap(3, 6)
	swap(1, 4)
	swap(2, 5)
	swap(4, 7)
	swap(4, 2)
	swap(6, 4)
	swap(4, 2)
	return v[4]
}

// Denoise applies a 3×3 median filter to rows [yLo, yHi) of every
// channel.
func (t *Task) Denoise(yLo, yHi int) {
	w, h := t.W, t.H
	in, out := t.RGB.Data, t.Denoised.Data
	for p := 0; p < 3; p++ {
		for y := yLo; y < yHi; y++ {
			for x := 0; x < w; x++ {
				var win [9]float32
				k := 0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						win[k] = at(in, p, x+dx, y+dy, w, h)
						k++
					}
				}
				out[p*w*h+y*w+x] = median9(win)
			}
		}
	}
}

// Sobel computes luminance and Sobel gradient magnitude for rows
// [yLo, yHi).
func (t *Task) Sobel(yLo, yHi int) {
	w, h := t.W, t.H
	img := t.Denoised.Data
	gray, grad := t.Gray.Data, t.Grad.Data
	lum := func(x, y int) float32 {
		return 0.299*at(img, 0, x, y, w, h) + 0.587*at(img, 1, x, y, w, h) + 0.114*at(img, 2, x, y, w, h)
	}
	for y := yLo; y < yHi; y++ {
		for x := 0; x < w; x++ {
			gray[y*w+x] = lum(x, y)
			gx := lum(x+1, y-1) + 2*lum(x+1, y) + lum(x+1, y+1) -
				lum(x-1, y-1) - 2*lum(x-1, y) - lum(x-1, y+1)
			gy := lum(x-1, y+1) + 2*lum(x, y+1) + lum(x+1, y+1) -
				lum(x-1, y-1) - 2*lum(x, y-1) - lum(x+1, y-1)
			m := gx*gx + gy*gy
			grad[y*w+x] = m
		}
	}
}

// histBands is the fixed band decomposition of the histogram stage.
const histBands = 16

// Histogram accumulates band-local luminance histograms for bands
// [bLo, bHi) into locals; Merge folds them.
func (t *Task) Histogram(locals *[histBands][Bins]int32, bLo, bHi int) {
	n := t.W * t.H
	gray := t.Gray.Data
	for b := bLo; b < bHi; b++ {
		lo, hi := b*n/histBands, (b+1)*n/histBands
		for _, v := range gray[lo:hi] {
			bin := int(v * Bins)
			if bin < 0 {
				bin = 0
			}
			if bin >= Bins {
				bin = Bins - 1
			}
			locals[b][bin]++
		}
	}
}

// MergeHistogram folds the band histograms into Hist and builds the
// equalization LUT from the cumulative distribution (serial by nature —
// the stage's Amdahl bottleneck).
func (t *Task) MergeHistogram(locals *[histBands][Bins]int32) {
	for i := range t.Hist.Data {
		t.Hist.Data[i] = 0
	}
	for b := 0; b < histBands; b++ {
		for i := 0; i < Bins; i++ {
			t.Hist.Data[i] += locals[b][i]
		}
	}
	total := int32(t.W * t.H)
	var cum int32
	for i := 0; i < Bins; i++ {
		cum += t.Hist.Data[i]
		t.LUT.Data[i] = float32(cum) / float32(total)
	}
}

// Equalize maps rows [yLo, yHi) of the luminance plane through the LUT.
func (t *Task) Equalize(yLo, yHi int) {
	w := t.W
	gray, lut, eq := t.Gray.Data, t.LUT.Data, t.Eq.Data
	for y := yLo; y < yHi; y++ {
		for x := 0; x < w; x++ {
			v := gray[y*w+x]
			bin := int(v * Bins)
			if bin < 0 {
				bin = 0
			}
			if bin >= Bins {
				bin = Bins - 1
			}
			eq[y*w+x] = lut[bin]
		}
	}
}

// Downscale box-filters the equalized plane 2× into Out for output rows
// [yLo, yHi) of the half-resolution image.
func (t *Task) Downscale(yLo, yHi int) {
	w := t.W
	ow := w / 2
	in, out := t.Eq.Data, t.Out.Data
	for oy := yLo; oy < yHi; oy++ {
		for ox := 0; ox < ow; ox++ {
			x, y := 2*ox, 2*oy
			out[oy*ow+ox] = (in[y*w+x] + in[y*w+x+1] + in[(y+1)*w+x] + in[(y+1)*w+x+1]) / 4
		}
	}
}
