package vision

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"bettertogether/internal/core"
)

func concPar(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func TestMedian9(t *testing.T) {
	f := func(raw [9]float32) bool {
		got := median9(raw)
		s := raw[:]
		cp := append([]float32(nil), s...)
		sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
		return got == cp[4]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDemosaicConstantField(t *testing.T) {
	// A constant Bayer frame must demosaic to the same constant in all
	// three planes.
	task := NewTask(16, 16)
	for i := range task.Bayer.Data {
		task.Bayer.Data[i] = 0.5
	}
	task.Demosaic(0, 16)
	for p := 0; p < 3; p++ {
		for i := 0; i < 16*16; i++ {
			if v := task.RGB.Data[p*256+i]; math.Abs(float64(v-0.5)) > 1e-6 {
				t.Fatalf("plane %d pixel %d = %v", p, i, v)
			}
		}
	}
}

func TestDenoiseKillsHotPixel(t *testing.T) {
	task := NewTask(16, 16)
	for i := range task.RGB.Data {
		task.RGB.Data[i] = 0.3
	}
	task.RGB.Data[8*16+8] = 1.0 // impulse in the R plane
	task.Denoise(0, 16)
	if v := task.Denoised.Data[8*16+8]; math.Abs(float64(v-0.3)) > 1e-6 {
		t.Errorf("median filter left the impulse: %v", v)
	}
}

func TestSobelFlatAndEdge(t *testing.T) {
	task := NewTask(16, 16)
	// Flat image: zero gradient everywhere.
	for i := range task.Denoised.Data {
		task.Denoised.Data[i] = 0.4
	}
	task.Sobel(0, 16)
	for i, g := range task.Grad.Data {
		if math.Abs(float64(g)) > 1e-10 {
			t.Fatalf("flat image has gradient %v at %d", g, i)
		}
	}
	// Vertical step edge: strong response on the boundary column, zero
	// far from it.
	for p := 0; p < 3; p++ {
		for y := 0; y < 16; y++ {
			for x := 0; x < 16; x++ {
				v := float32(0)
				if x >= 8 {
					v = 1
				}
				task.Denoised.Data[p*256+y*16+x] = v
			}
		}
	}
	task.Sobel(0, 16)
	if task.Grad.Data[5*16+8] <= 0 {
		t.Error("no response at the edge")
	}
	if task.Grad.Data[5*16+2] != 0 {
		t.Error("response far from the edge")
	}
}

func TestHistogramSumsToPixels(t *testing.T) {
	task := NewTask(32, 32)
	task.Sobel(0, 32) // fill Gray (from whatever Denoised holds: zeros)
	var locals [histBands][Bins]int32
	concPar(histBands, func(lo, hi int) { task.Histogram(&locals, lo, hi) })
	task.MergeHistogram(&locals)
	var sum int32
	for _, c := range task.Hist.Data {
		sum += c
	}
	if sum != 32*32 {
		t.Errorf("histogram sums to %d, want %d", sum, 32*32)
	}
	// LUT must be monotone non-decreasing and end at 1.
	for i := 1; i < Bins; i++ {
		if task.LUT.Data[i] < task.LUT.Data[i-1] {
			t.Fatal("LUT not monotone")
		}
	}
	if math.Abs(float64(task.LUT.Data[Bins-1]-1)) > 1e-6 {
		t.Errorf("LUT tail = %v, want 1", task.LUT.Data[Bins-1])
	}
}

func TestEqualizeUniformOutputOnTwoLevelImage(t *testing.T) {
	// Equalizing a 50/50 two-level image maps the levels to ~0.5 and 1.
	task := NewTask(16, 16)
	for i := range task.Gray.Data {
		if i < 128 {
			task.Gray.Data[i] = 0.2
		} else {
			task.Gray.Data[i] = 0.8
		}
	}
	var locals [histBands][Bins]int32
	task.Histogram(&locals, 0, histBands)
	task.MergeHistogram(&locals)
	task.Equalize(0, 16)
	if math.Abs(float64(task.Eq.Data[0]-0.5)) > 1e-6 {
		t.Errorf("low level -> %v, want 0.5", task.Eq.Data[0])
	}
	if math.Abs(float64(task.Eq.Data[200]-1.0)) > 1e-6 {
		t.Errorf("high level -> %v, want 1.0", task.Eq.Data[200])
	}
}

func TestDownscalePreservesMean(t *testing.T) {
	task := NewTask(16, 16)
	var sum float64
	for i := range task.Eq.Data {
		v := float32(i%7) / 7
		task.Eq.Data[i] = v
		sum += float64(v)
	}
	task.Downscale(0, 8)
	var osum float64
	for _, v := range task.Out.Data {
		osum += float64(v)
	}
	if math.Abs(osum*4-sum) > 1e-3 {
		t.Errorf("box filter lost energy: %v vs %v", osum*4, sum)
	}
}

func TestApplicationEndToEndDeterministic(t *testing.T) {
	app, err := NewApplication(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(app.Stages) != 6 {
		t.Fatalf("stages = %d", len(app.Stages))
	}
	run := func(par core.ParallelFor, gpu bool) []float32 {
		to := app.NewTask()
		for _, s := range app.Stages {
			if gpu {
				s.GPU(to, par)
			} else {
				s.CPU(to, par)
			}
		}
		return append([]float32(nil), to.Payload.(*payload).Out.Data...)
	}
	a := run(core.SerialFor, false)
	b := run(concPar, true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output differs at %d across backends/parallelism", i)
		}
	}
	// The pipeline must produce a non-trivial image.
	var nonzero int
	for _, v := range a {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < len(a)/2 {
		t.Error("output mostly empty")
	}
}

func TestApplicationRecycling(t *testing.T) {
	app, _ := NewApplication(32, 32)
	to := app.NewTask()
	run := func() []float32 {
		for _, s := range app.Stages {
			s.CPU(to, core.SerialFor)
		}
		return append([]float32(nil), to.Payload.(*payload).Out.Data...)
	}
	first := run()
	to.Reset(5)
	second := run()
	diff := false
	for i := range first {
		if first[i] != second[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("new stream input produced identical output")
	}
	to.Reset(0)
	again := run()
	for i := range first {
		if first[i] != again[i] {
			t.Fatal("recycled task not deterministic")
		}
	}
}

func TestOddDimensionsRejected(t *testing.T) {
	if _, err := NewApplication(15, 16); err == nil {
		t.Error("odd width accepted")
	}
	if _, err := NewApplication(16, 15); err == nil {
		t.Error("odd height accepted")
	}
}

func TestCostsValid(t *testing.T) {
	for i, c := range costs(64, 64) {
		if err := c.Validate(); err != nil {
			t.Errorf("stage %d: %v", i, err)
		}
	}
}
