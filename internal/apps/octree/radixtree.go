package octree

import (
	"math/bits"

	"bettertogether/internal/core"
)

// RadixTree is the binary radix tree of Karras (2012) over n sorted
// unique Morton codes: n-1 internal nodes and n leaves in one id space.
// Node ids 0..n-2 are internal (id 0 is the root); ids n-1..2n-2 are
// leaves (leaf k has id n-1+k).
type RadixTree struct {
	// N is the number of leaves (unique codes).
	N int
	// Left and Right are the children of internal node i.
	Left, Right []int32
	// Parent maps every node to its parent; the root's parent is -1.
	Parent []int32
	// PrefixLen is each node's common-prefix length in bits: the length
	// of the prefix shared by every code the node covers. Leaves have
	// MortonBits.
	PrefixLen []int32
}

// NewRadixTree pre-allocates a tree for up to maxN leaves.
func NewRadixTree(maxN int) *RadixTree {
	return &RadixTree{
		Left:      make([]int32, maxN-1),
		Right:     make([]int32, maxN-1),
		Parent:    make([]int32, 2*maxN-1),
		PrefixLen: make([]int32, 2*maxN-1),
	}
}

// LeafID returns the node id of leaf k.
func (t *RadixTree) LeafID(k int) int32 { return int32(t.N - 1 + k) }

// IsLeaf reports whether node id v is a leaf.
func (t *RadixTree) IsLeaf(v int32) bool { return int(v) >= t.N-1 }

// LeafIndex returns the code index of leaf node v.
func (t *RadixTree) LeafIndex(v int32) int { return int(v) - (t.N - 1) }

// NumNodes returns the total node count (internal + leaves).
func (t *RadixTree) NumNodes() int { return 2*t.N - 1 }

// delta returns the length of the common prefix of codes[i] and
// codes[j], or -1 when j is out of range — the δ function of Karras's
// construction. Codes must be unique, which duplicate removal
// guarantees, so δ < 32.
func delta(codes []uint32, i, j int) int {
	if j < 0 || j >= len(codes) {
		return -1
	}
	return bits.LeadingZeros32(codes[i] ^ codes[j])
}

// Build constructs the radix tree over the sorted unique codes. Every
// internal node is computed independently (Karras's key property), so the
// loop parallelizes perfectly over par; the work per node is a pair of
// binary searches with data-dependent branching — the irregular pattern
// that distinguishes this stage's performance profile.
//
// len(codes) must be >= 2; the single-code case never builds a tree (the
// octree stage special-cases it).
func (t *RadixTree) Build(codes []uint32, par core.ParallelFor) {
	n := len(codes)
	if n < 2 {
		panic("octree: radix tree needs at least 2 unique codes")
	}
	t.N = n
	t.Parent[0] = -1
	par(n-1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			// Direction of the node's range: toward the neighbor with
			// the longer common prefix.
			d := 1
			if delta(codes, i, i+1) < delta(codes, i, i-1) {
				d = -1
			}
			deltaMin := delta(codes, i, i-d)
			// Exponential search for an upper bound on the range length.
			lmax := 2
			for delta(codes, i, i+lmax*d) > deltaMin {
				lmax *= 2
			}
			// Binary search for the exact other end.
			l := 0
			for tstep := lmax / 2; tstep >= 1; tstep /= 2 {
				if delta(codes, i, i+(l+tstep)*d) > deltaMin {
					l += tstep
				}
			}
			j := i + l*d
			deltaNode := delta(codes, i, j)
			// Binary search for the split position.
			s := 0
			for tstep := (l + 1) / 2; ; tstep = (tstep + 1) / 2 {
				if delta(codes, i, i+(s+tstep)*d) > deltaNode {
					s += tstep
				}
				if tstep <= 1 {
					break
				}
			}
			gamma := i + s*d + min(d, 0)

			first, last := i, j
			if d < 0 {
				first, last = j, i
			}
			var left, right int32
			if first == gamma {
				left = t.LeafID(gamma)
			} else {
				left = int32(gamma)
			}
			if last == gamma+1 {
				right = t.LeafID(gamma + 1)
			} else {
				right = int32(gamma + 1)
			}
			t.Left[i], t.Right[i] = left, right
			t.Parent[left] = int32(i)
			t.Parent[right] = int32(i)
			// delta counts from bit 31 of the uint32, but 30-bit Morton
			// codes always share their two leading zero bits; convert to
			// Morton-prefix length for depth arithmetic.
			pl := int32(deltaNode - (32 - MortonBits))
			if pl < 0 {
				pl = 0
			}
			if pl > MortonBits {
				pl = MortonBits
			}
			t.PrefixLen[i] = pl
		}
	})
	// Leaves cover exactly one code: full prefix.
	par(n, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			t.PrefixLen[t.LeafID(k)] = MortonBits
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
