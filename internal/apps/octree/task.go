package octree

import (
	"math/rand"

	"bettertogether/internal/core"
)

// Generator produces synthetic point clouds. The paper streams LiDAR-like
// frames; without sensor data we generate seeded clouds whose spatial
// statistics span the interesting regimes (uniform scatter, dense
// clusters with many duplicate cells, coherent surfaces).
type Generator interface {
	// Name identifies the distribution in reports.
	Name() string
	// Fill writes n points (3n coords in [0,1)) deterministically for the
	// given stream sequence number.
	Fill(points []float32, n, seq int)
}

// UniformGen scatters points uniformly in the unit cube.
type UniformGen struct{}

// Name implements Generator.
func (UniformGen) Name() string { return "uniform" }

// Fill implements Generator.
func (UniformGen) Fill(points []float32, n, seq int) {
	rng := rand.New(rand.NewSource(int64(seq)*7919 + 17))
	for i := 0; i < 3*n; i++ {
		points[i] = rng.Float32()
	}
}

// ClusterGen draws points from a handful of tight Gaussian blobs,
// producing many duplicate Morton cells — the regime where duplicate
// removal earns its keep.
type ClusterGen struct {
	// Clusters is the blob count (default 8 when zero).
	Clusters int
	// Sigma is the blob radius (default 0.02 when zero).
	Sigma float64
}

// Name implements Generator.
func (g ClusterGen) Name() string { return "clustered" }

// Fill implements Generator.
func (g ClusterGen) Fill(points []float32, n, seq int) {
	k := g.Clusters
	if k <= 0 {
		k = 8
	}
	sigma := g.Sigma
	if sigma <= 0 {
		sigma = 0.02
	}
	rng := rand.New(rand.NewSource(int64(seq)*104729 + 5))
	centers := make([]float64, 3*k)
	for i := range centers {
		centers[i] = 0.1 + 0.8*rng.Float64()
	}
	clamp := func(v float64) float32 {
		if v < 0 {
			return 0
		}
		if v >= 1 {
			return float32(0.999999)
		}
		return float32(v)
	}
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		for a := 0; a < 3; a++ {
			points[3*i+a] = clamp(centers[3*c+a] + rng.NormFloat64()*sigma)
		}
	}
}

// SurfaceGen samples a gently curved sheet, mimicking the spatial
// coherence of a depth-camera frame.
type SurfaceGen struct{}

// Name implements Generator.
func (SurfaceGen) Name() string { return "surface" }

// Fill implements Generator.
func (SurfaceGen) Fill(points []float32, n, seq int) {
	rng := rand.New(rand.NewSource(int64(seq)*31337 + 3))
	for i := 0; i < n; i++ {
		x := rng.Float64()
		y := rng.Float64()
		z := 0.5 + 0.2*(x*x-y*y) + rng.NormFloat64()*0.003
		if z < 0 {
			z = 0
		}
		if z >= 1 {
			z = 0.999999
		}
		points[3*i] = float32(x)
		points[3*i+1] = float32(y)
		points[3*i+2] = float32(z)
	}
}

// Task is the octree pipeline's TaskObject payload: every buffer one
// point-cloud frame needs from Morton encoding to the finished octree,
// pre-allocated for the worst case (paper Sec. 3.4, "TaskObject").
type Task struct {
	// N is the point count per frame.
	N int
	// Gen regenerates the input when the task is recycled.
	Gen Generator

	// Points holds 3N coordinates in [0,1).
	Points *core.UsmBuffer[float32]
	// Codes holds the Morton codes; sorted in place by stage 2 and
	// compacted by stage 3.
	Codes *core.UsmBuffer[uint32]
	// Scratch is the radix sort / compaction working memory.
	Scratch *SortScratch
	// NumUnique is stage 3's output count.
	NumUnique int
	// Tree is the binary radix tree (stage 4).
	Tree *RadixTree
	// Counts and Offsets are the edge counts and their exclusive scan
	// (stages 5-6); entry 2*N-1 of Offsets... both are sized 2N-1 and
	// trimmed to 2*NumUnique-1 live entries per frame.
	Counts, Offsets *core.UsmBuffer[int32]
	// TotalNodes is stage 6's scan total.
	TotalNodes int32
	// Nodes is the octree node arena; it grows on the first frames and
	// then stabilizes, after which execution is allocation-free.
	Nodes []OctNode
	// Result is the finished octree of the current frame.
	Result Octree
}

// NewTask allocates a task for n-point frames using gen, generating the
// seq-0 input.
func NewTask(n int, gen Generator) *Task {
	t := &Task{
		N:       n,
		Gen:     gen,
		Points:  core.NewUsmBuffer[float32](3 * n),
		Codes:   core.NewUsmBuffer[uint32](n),
		Scratch: NewSortScratch(n),
		Tree:    NewRadixTree(n),
		Counts:  core.NewUsmBuffer[int32](2*n - 1),
		Offsets: core.NewUsmBuffer[int32](2*n - 1),
	}
	t.Regenerate(0)
	return t
}

// Regenerate refills the input for stream sequence seq and clears the
// derived state.
func (t *Task) Regenerate(seq int) {
	t.Gen.Fill(t.Points.Data, t.N, seq)
	t.NumUnique = 0
	t.TotalNodes = 0
	t.Result = Octree{}
}

// ensureNodes returns the node arena with capacity for total nodes.
func (t *Task) ensureNodes(total int32) []OctNode {
	if cap(t.Nodes) < int(total) {
		t.Nodes = make([]OctNode, total)
	}
	return t.Nodes[:total]
}
