package octree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"bettertogether/internal/core"
)

// concPar is a genuinely concurrent ParallelFor (4 workers) used to shake
// out races in the banded phase structure; tests run under -race in CI.
func concPar(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func TestMortonRoundTrip(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x, y, z = x&0x3ff, y&0x3ff, z&0x3ff
		gx, gy, gz := DecodeMorton(EncodeMorton(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMortonKnownValues(t *testing.T) {
	if EncodeMorton(1, 0, 0) != 1 {
		t.Error("x bit should land in slot 0")
	}
	if EncodeMorton(0, 1, 0) != 2 {
		t.Error("y bit should land in slot 1")
	}
	if EncodeMorton(0, 0, 1) != 4 {
		t.Error("z bit should land in slot 2")
	}
	if EncodeMorton(0x3ff, 0x3ff, 0x3ff) != (1<<30)-1 {
		t.Error("max coords should give all 30 bits set")
	}
}

func TestMortonLocality(t *testing.T) {
	// Morton codes of nearby cells in the same octant share prefixes:
	// the top digit is the octant index.
	code := EncodeMorton(512, 0, 0) // x in upper half
	if Digit(code, 1) != 1 {
		t.Errorf("top digit = %d, want 1 (x high bit)", Digit(code, 1))
	}
	code = EncodeMorton(512, 512, 512)
	if Digit(code, 1) != 7 {
		t.Errorf("top digit = %d, want 7", Digit(code, 1))
	}
}

func TestQuantizeBounds(t *testing.T) {
	if Quantize(-0.5) != 0 || Quantize(0) != 0 {
		t.Error("low clamp failed")
	}
	if Quantize(1.0) != 1023 || Quantize(2) != 1023 {
		t.Error("high clamp failed")
	}
	if Quantize(0.5) != 512 {
		t.Errorf("Quantize(0.5) = %d", Quantize(0.5))
	}
}

func TestRadixSortMatchesStdSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5000)
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = rng.Uint32() & (1<<30 - 1)
		}
		want := append([]uint32(nil), keys...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		RadixSort(keys, NewSortScratch(n), concPar)
		for i := range keys {
			if keys[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRadixSortEdgeCases(t *testing.T) {
	// Empty and singleton must not crash.
	RadixSort(nil, NewSortScratch(0), core.SerialFor)
	one := []uint32{42}
	RadixSort(one, NewSortScratch(1), core.SerialFor)
	if one[0] != 42 {
		t.Error("singleton corrupted")
	}
	// All-equal keys.
	eq := make([]uint32, 100)
	for i := range eq {
		eq[i] = 7
	}
	RadixSort(eq, NewSortScratch(100), concPar)
	for _, k := range eq {
		if k != 7 {
			t.Fatal("equal keys corrupted")
		}
	}
	// Already sorted and reversed.
	n := 1000
	asc := make([]uint32, n)
	desc := make([]uint32, n)
	for i := 0; i < n; i++ {
		asc[i] = uint32(i)
		desc[i] = uint32(n - i)
	}
	RadixSort(asc, NewSortScratch(n), concPar)
	RadixSort(desc, NewSortScratch(n), concPar)
	for i := 1; i < n; i++ {
		if asc[i] < asc[i-1] || desc[i] < desc[i-1] {
			t.Fatal("pre-ordered inputs mis-sorted")
		}
	}
}

func TestUniqueBasic(t *testing.T) {
	keys := []uint32{1, 1, 2, 3, 3, 3, 9}
	scratch := make([]uint32, len(keys))
	n := Unique(keys, scratch, concPar)
	if n != 4 {
		t.Fatalf("unique count = %d, want 4", n)
	}
	want := []uint32{1, 2, 3, 9}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("unique = %v, want %v", keys[:n], want)
		}
	}
}

func TestUniqueProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3000)
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = uint32(rng.Intn(50)) // force many duplicates
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		// Model: count distinct values.
		distinct := map[uint32]bool{}
		for _, k := range keys {
			distinct[k] = true
		}
		scratch := make([]uint32, n)
		got := Unique(keys, scratch, concPar)
		if got != len(distinct) {
			return false
		}
		for i := 1; i < got; i++ {
			if keys[i] <= keys[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	if Unique(nil, nil, core.SerialFor) != 0 {
		t.Error("empty unique should be 0")
	}
}

// buildTestTree sorts, dedups and builds a radix tree over random codes.
func buildTestTree(t *testing.T, seed int64, n int) (*RadixTree, []uint32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	codes := make([]uint32, n)
	for i := range codes {
		codes[i] = rng.Uint32() & (1<<30 - 1)
	}
	RadixSort(codes, NewSortScratch(n), concPar)
	u := Unique(codes, make([]uint32, n), concPar)
	if u < 2 {
		t.Skip("degenerate sample")
	}
	tree := NewRadixTree(u)
	tree.Build(codes[:u], concPar)
	return tree, codes[:u]
}

func TestRadixTreeStructure(t *testing.T) {
	tree, codes := buildTestTree(t, 1, 2000)
	n := tree.N
	// Every non-root node must have a parent consistent with the child
	// links, and each internal node's children must point back.
	childCount := make([]int, 2*n-1)
	for i := 0; i < n-1; i++ {
		for _, ch := range []int32{tree.Left[i], tree.Right[i]} {
			if ch < 0 || int(ch) >= 2*n-1 {
				t.Fatalf("node %d child %d out of range", i, ch)
			}
			if tree.Parent[ch] != int32(i) {
				t.Fatalf("child %d of %d has parent %d", ch, i, tree.Parent[ch])
			}
			childCount[ch]++
		}
	}
	// Every node except the root is referenced exactly once.
	if childCount[0] != 0 {
		t.Error("root referenced as a child")
	}
	for v := 1; v < 2*n-1; v++ {
		if childCount[v] != 1 {
			t.Errorf("node %d referenced %d times", v, childCount[v])
		}
	}
	// Leaves covered by each internal node form the full contiguous
	// range: check via recursive span computation.
	var span func(v int32) (int, int)
	span = func(v int32) (int, int) {
		if tree.IsLeaf(v) {
			k := tree.LeafIndex(v)
			return k, k
		}
		l1, h1 := span(tree.Left[v])
		l2, h2 := span(tree.Right[v])
		if h1+1 != l2 {
			t.Fatalf("node %d: children spans [%d,%d] and [%d,%d] not adjacent", v, l1, h1, l2, h2)
		}
		return l1, h2
	}
	lo, hi := span(0)
	if lo != 0 || hi != n-1 {
		t.Errorf("root spans [%d,%d], want [0,%d]", lo, hi, n-1)
	}
	_ = codes
}

func TestRadixTreePrefixLengths(t *testing.T) {
	tree, codes := buildTestTree(t, 2, 1000)
	// Each internal node's prefix length must equal the common prefix of
	// its span's first and last codes (in Morton bits), and children must
	// have strictly longer prefixes than parents.
	var span func(v int32) (int, int)
	span = func(v int32) (int, int) {
		if tree.IsLeaf(v) {
			k := tree.LeafIndex(v)
			return k, k
		}
		l1, _ := span(tree.Left[v])
		_, h2 := span(tree.Right[v])
		return l1, h2
	}
	for i := 0; i < tree.N-1; i++ {
		lo, hi := span(int32(i))
		want := delta(codes, lo, hi) - 2
		if want < 0 {
			want = 0
		}
		if int(tree.PrefixLen[i]) != want {
			t.Fatalf("node %d prefix = %d, want %d", i, tree.PrefixLen[i], want)
		}
		if p := tree.Parent[i]; p >= 0 && tree.PrefixLen[i] <= tree.PrefixLen[p] {
			t.Fatalf("node %d prefix %d not longer than parent's %d", i, tree.PrefixLen[i], tree.PrefixLen[p])
		}
	}
}

func TestRadixTreeTwoCodes(t *testing.T) {
	codes := []uint32{0, 1<<30 - 1}
	tree := NewRadixTree(2)
	tree.Build(codes, core.SerialFor)
	if tree.N != 2 || tree.NumNodes() != 3 {
		t.Fatal("two-code tree malformed")
	}
	if !tree.IsLeaf(tree.Left[0]) || !tree.IsLeaf(tree.Right[0]) {
		t.Error("root of 2-code tree should have leaf children")
	}
	if tree.PrefixLen[0] != 0 {
		t.Errorf("fully divergent codes share prefix %d", tree.PrefixLen[0])
	}
}

func TestRadixTreeBuildPanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRadixTree(2).Build([]uint32{1}, core.SerialFor)
}

func TestCountEdgesAndScan(t *testing.T) {
	tree, _ := buildTestTree(t, 3, 500)
	counts := make([]int32, tree.NumNodes())
	CountEdges(tree, counts, concPar)
	// Root contributes at least the depth-0 node; leaves at least one.
	if counts[0] < 1 {
		t.Error("root count < 1")
	}
	for k := 0; k < tree.N; k++ {
		if counts[tree.LeafID(k)] < 1 {
			t.Errorf("leaf %d count < 1", k)
		}
	}
	for v, c := range counts {
		if c < 0 {
			t.Errorf("node %d negative count %d", v, c)
		}
	}
	// Sum along any root-to-leaf path equals depth+1 nodes: root chain
	// covers depth 0..L0/3 and each edge continues contiguously, so the
	// total path sum must be exactly MaxDepth+1 for every leaf.
	for k := 0; k < tree.N; k++ {
		sum := int32(0)
		for v := tree.LeafID(k); v >= 0; v = tree.Parent[v] {
			sum += counts[v]
		}
		if sum != MaxDepth+1 {
			t.Fatalf("leaf %d path node sum = %d, want %d", k, sum, MaxDepth+1)
		}
	}
	offsets := make([]int32, tree.NumNodes())
	total := ExclusiveScan(counts, offsets, concPar)
	var want int32
	for v, c := range counts {
		if offsets[v] != want {
			t.Fatalf("offset %d = %d, want %d", v, offsets[v], want)
		}
		want += c
	}
	if total != want {
		t.Fatalf("scan total = %d, want %d", total, want)
	}
}

func TestExclusiveScanSmall(t *testing.T) {
	counts := []int32{3, 0, 2, 5}
	offsets := make([]int32, 4)
	total := ExclusiveScan(counts, offsets, concPar)
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
	want := []int32{0, 3, 3, 5}
	for i := range want {
		if offsets[i] != want[i] {
			t.Fatalf("offsets = %v, want %v", offsets, want)
		}
	}
	if ExclusiveScan(nil, nil, core.SerialFor) != 0 {
		t.Error("empty scan total should be 0")
	}
}

// validateOctree checks the full structural contract of a built octree.
func validateOctree(t *testing.T, oct Octree, codes []uint32) {
	t.Helper()
	// Masks must match children.
	for i, nd := range oct.Nodes {
		var m uint8
		for d, ch := range nd.Children {
			if ch >= 0 {
				m |= 1 << uint(d)
				if int(ch) >= len(oct.Nodes) {
					t.Fatalf("node %d child out of range", i)
				}
			}
		}
		if m != nd.Mask {
			t.Fatalf("node %d mask %08b != derived %08b", i, nd.Mask, m)
		}
	}
	// Every code must be reachable from the root by following its
	// digits, terminating at a leaf holding its index.
	for k, code := range codes {
		v := oct.Root
		depth := 0
		for oct.Nodes[v].Leaf < 0 {
			depth++
			if depth > MaxDepth {
				t.Fatalf("code %d: walked past max depth", k)
			}
			next := oct.Nodes[v].Children[Digit(code, depth)]
			if next < 0 {
				t.Fatalf("code %d: no child at depth %d", k, depth)
			}
			v = next
		}
		if int(oct.Nodes[v].Leaf) != k {
			t.Fatalf("code %d: reached leaf %d", k, oct.Nodes[v].Leaf)
		}
	}
	// Node count: every node is reachable from the root exactly once
	// (tree property).
	seen := make([]bool, len(oct.Nodes))
	var walk func(v int32)
	var reached int
	walk = func(v int32) {
		if seen[v] {
			t.Fatalf("node %d reached twice", v)
		}
		seen[v] = true
		reached++
		for _, ch := range oct.Nodes[v].Children {
			if ch >= 0 {
				walk(ch)
			}
		}
	}
	walk(oct.Root)
	if reached != len(oct.Nodes) {
		t.Fatalf("reached %d of %d nodes", reached, len(oct.Nodes))
	}
}

func TestBuildOctreeFull(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		tree, codes := buildTestTree(t, seed, 1500)
		counts := make([]int32, tree.NumNodes())
		CountEdges(tree, counts, concPar)
		offsets := make([]int32, tree.NumNodes())
		total := ExclusiveScan(counts, offsets, concPar)
		nodes := make([]OctNode, total)
		oct := BuildOctree(tree, codes, counts, offsets, nodes, concPar)
		if len(oct.Nodes) != int(total) {
			t.Fatalf("seed %d: built %d nodes, scan said %d", seed, len(oct.Nodes), total)
		}
		validateOctree(t, oct, codes)
	}
}

func TestBuildOctreeClusteredDuplicates(t *testing.T) {
	// Clustered input stresses deep shared prefixes (long chains).
	n := 4000
	pts := make([]float32, 3*n)
	ClusterGen{Clusters: 3, Sigma: 0.001}.Fill(pts, n, 1)
	codes := make([]uint32, n)
	for i := 0; i < n; i++ {
		codes[i] = EncodePoint(pts[3*i], pts[3*i+1], pts[3*i+2])
	}
	RadixSort(codes, NewSortScratch(n), concPar)
	u := Unique(codes, make([]uint32, n), concPar)
	if u < 2 {
		t.Skip("all points landed in one cell")
	}
	tree := NewRadixTree(u)
	tree.Build(codes[:u], concPar)
	counts := make([]int32, tree.NumNodes())
	CountEdges(tree, counts, concPar)
	offsets := make([]int32, tree.NumNodes())
	total := ExclusiveScan(counts, offsets, concPar)
	oct := BuildOctree(tree, codes[:u], counts, offsets, make([]OctNode, total), concPar)
	validateOctree(t, oct, codes[:u])
}

func TestBuildSingleCodeOctree(t *testing.T) {
	code := EncodeMorton(5, 9, 1023)
	nodes := make([]OctNode, MaxDepth+1)
	oct := BuildSingleCodeOctree(code, nodes)
	validateOctree(t, oct, []uint32{code})
	if len(oct.Nodes) != MaxDepth+1 {
		t.Errorf("chain length = %d", len(oct.Nodes))
	}
}

func TestGenerators(t *testing.T) {
	for _, g := range []Generator{UniformGen{}, ClusterGen{}, SurfaceGen{}} {
		pts := make([]float32, 3*100)
		g.Fill(pts, 100, 3)
		for i, v := range pts {
			if v < 0 || v >= 1 {
				t.Errorf("%s: point coord %d = %v outside [0,1)", g.Name(), i, v)
			}
		}
		// Determinism per seq.
		pts2 := make([]float32, 3*100)
		g.Fill(pts2, 100, 3)
		for i := range pts {
			if pts[i] != pts2[i] {
				t.Errorf("%s: generation not deterministic", g.Name())
				break
			}
		}
	}
}

func TestApplicationEndToEnd(t *testing.T) {
	app := NewApplication(2048, UniformGen{})
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(app.Stages) != 7 {
		t.Fatalf("stages = %d", len(app.Stages))
	}
	to := app.NewTask()
	for _, s := range app.Stages {
		s.CPU(to, concPar)
	}
	task := to.Payload.(*Task)
	if task.NumUnique == 0 {
		t.Fatal("no unique codes")
	}
	validateOctree(t, task.Result, task.Codes.Data[:task.NumUnique])
	// Recycle and run again with a different input.
	to.Reset(1)
	for _, s := range app.Stages {
		s.GPU(to, concPar)
	}
	validateOctree(t, task.Result, task.Codes.Data[:task.NumUnique])
}

func TestApplicationDefaults(t *testing.T) {
	app := NewApplication(0, nil)
	if app.Name != "octree-uniform" {
		t.Errorf("name = %q", app.Name)
	}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCostsSane(t *testing.T) {
	for i, c := range costs(1000) {
		if err := c.Validate(); err != nil {
			t.Errorf("stage %d: %v", i, err)
		}
		if c.FLOPs <= 0 || c.Bytes <= 0 {
			t.Errorf("stage %d: zero work", i)
		}
	}
}

func BenchmarkOctreePipelineSerial(b *testing.B) {
	app := NewApplication(16384, UniformGen{})
	to := app.NewTask()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		to.Reset(i)
		for _, s := range app.Stages {
			s.CPU(to, core.SerialFor)
		}
	}
}

func TestTaskGraphLinearizesToCanonicalOrder(t *testing.T) {
	app, err := NewApplicationFromGraph(2048, UniformGen{})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	canonical := NewApplication(2048, UniformGen{})
	for i, s := range app.Stages {
		if s.Name != canonical.Stages[i].Name {
			t.Fatalf("linearized order %v diverges at %d", app.StageNames(), i)
		}
	}
	// The linearized app must still compute a valid octree.
	to := app.NewTask()
	for _, s := range app.Stages {
		s.CPU(to, concPar)
	}
	task := to.Payload.(*Task)
	validateOctree(t, task.Result, task.Codes.Data[:task.NumUnique])
}

func TestTaskGraphEdgesRespectDataflow(t *testing.T) {
	g := NewTaskGraph(1024, UniformGen{})
	if len(g.Nodes) != 7 {
		t.Fatalf("nodes = %d", len(g.Nodes))
	}
	// The paper's fan-in: build-octree (node 6) has three predecessors.
	preds := 0
	for _, e := range g.Edges {
		if e[1] == 6 {
			preds++
		}
	}
	if preds != 3 {
		t.Errorf("build-octree has %d predecessors, want 3", preds)
	}
	order, err := g.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, s := range order {
		pos[s.Name] = i
	}
	for _, e := range g.Edges {
		from, to := g.Nodes[e[0]].Name, g.Nodes[e[1]].Name
		if pos[from] >= pos[to] {
			t.Errorf("edge %s->%s violated by linearization", from, to)
		}
	}
}
