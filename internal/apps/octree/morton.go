// Package octree implements the paper's third evaluation workload
// (Sec. 4.1): parallel octree construction over streaming point clouds,
// following Karras, "Maximizing Parallelism in the Construction of BVHs,
// Octrees, and k-d trees" (HPG 2012). The pipeline has seven stages with
// deliberately mixed computational character:
//
//  1. Morton Encoding   — regular DOALL over points
//  2. Sort              — LSD radix sort, parallel but bandwidth-heavy
//  3. Duplicate Removal — scan + scatter
//  4. Build Radix Tree  — per-node binary searches, irregular
//  5. Edge Counting     — tree walk per node, irregular
//  6. Prefix Sum        — blocked parallel exclusive scan
//  7. Build Octree      — pointer-heavy node emission
//
// Stages 4, 5 and 7 are the graph-shaped work that GPUs handle poorly
// (Sec. 2.1), which is what makes this workload scheduling-interesting.
package octree

// MortonBits is the total Morton code width: 10 bits per axis, giving a
// maximum octree depth of 10 levels below the root.
const MortonBits = 30

// BitsPerAxis is the per-axis quantization width.
const BitsPerAxis = 10

// MaxDepth is the deepest octree level (leaf cells).
const MaxDepth = MortonBits / 3

// spread3 inserts two zero bits between each of the low 10 bits of v:
// ...9876543210 -> 9..8..7..6..5..4..3..2..1..0 (standard magic-number
// bit interleave).
func spread3(v uint32) uint32 {
	v &= 0x3ff
	v = (v | v<<16) & 0x030000ff
	v = (v | v<<8) & 0x0300f00f
	v = (v | v<<4) & 0x030c30c3
	v = (v | v<<2) & 0x09249249
	return v
}

// compact3 is the inverse of spread3: it extracts every third bit.
func compact3(v uint32) uint32 {
	v &= 0x09249249
	v = (v | v>>2) & 0x030c30c3
	v = (v | v>>4) & 0x0300f00f
	v = (v | v>>8) & 0x030000ff
	v = (v | v>>16) & 0x000003ff
	return v
}

// EncodeMorton interleaves three 10-bit cell coordinates into a 30-bit
// Morton code with x in the lowest interleave slot.
func EncodeMorton(x, y, z uint32) uint32 {
	return spread3(x) | spread3(y)<<1 | spread3(z)<<2
}

// DecodeMorton splits a Morton code back into cell coordinates.
func DecodeMorton(code uint32) (x, y, z uint32) {
	return compact3(code), compact3(code >> 1), compact3(code >> 2)
}

// Quantize maps a coordinate in [0, 1) to a 10-bit cell index, clamping
// out-of-range inputs to the boundary cells.
func Quantize(v float32) uint32 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 1<<BitsPerAxis - 1
	}
	return uint32(v * (1 << BitsPerAxis))
}

// EncodePoint quantizes a normalized 3-D point and returns its Morton
// code.
func EncodePoint(x, y, z float32) uint32 {
	return EncodeMorton(Quantize(x), Quantize(y), Quantize(z))
}

// Digit returns the 3-bit octant index of a code at octree depth d,
// where d=1 addresses the root's children and d=MaxDepth the leaf level.
func Digit(code uint32, d int) uint32 {
	return (code >> uint(MortonBits-3*d)) & 7
}
