package octree

import (
	"fmt"

	"bettertogether/internal/core"
)

// DefaultPoints is the frame size used by the evaluation, chosen so the
// simulated per-frame latencies land in the same millisecond regime as
// the paper's Table 3.
const DefaultPoints = 65536

// stage bodies — shared by the CPU and GPU kernels. The two backends of
// the paper run the same algorithms (OpenMP loops vs grid-stride CUDA/
// Vulkan kernels over identical phase structure); in this reproduction
// the engine-supplied ParallelFor is the only placement difference, and
// the performance difference comes from the SoC model's cost evaluation.

func stageMorton(to *core.TaskObject, par core.ParallelFor) {
	t := to.Payload.(*Task)
	pts, codes := t.Points.Data, t.Codes.Data
	par(t.N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			codes[i] = EncodePoint(pts[3*i], pts[3*i+1], pts[3*i+2])
		}
	})
}

func stageSort(to *core.TaskObject, par core.ParallelFor) {
	t := to.Payload.(*Task)
	RadixSort(t.Codes.Data[:t.N], t.Scratch, par)
}

func stageUnique(to *core.TaskObject, par core.ParallelFor) {
	t := to.Payload.(*Task)
	t.NumUnique = Unique(t.Codes.Data[:t.N], t.Scratch.Ping, par)
}

func stageRadixTree(to *core.TaskObject, par core.ParallelFor) {
	t := to.Payload.(*Task)
	if t.NumUnique < 2 {
		return // degenerate frame; stage 7 builds the chain directly
	}
	t.Tree.Build(t.Codes.Data[:t.NumUnique], par)
}

func stageCountEdges(to *core.TaskObject, par core.ParallelFor) {
	t := to.Payload.(*Task)
	if t.NumUnique < 2 {
		return
	}
	CountEdges(t.Tree, t.Counts.Data[:t.Tree.NumNodes()], par)
}

func stagePrefixSum(to *core.TaskObject, par core.ParallelFor) {
	t := to.Payload.(*Task)
	if t.NumUnique < 2 {
		t.TotalNodes = MaxDepth + 1
		return
	}
	n := t.Tree.NumNodes()
	t.TotalNodes = ExclusiveScan(t.Counts.Data[:n], t.Offsets.Data[:n], par)
}

func stageBuildOctree(to *core.TaskObject, par core.ParallelFor) {
	t := to.Payload.(*Task)
	if t.NumUnique < 2 {
		t.Result = BuildSingleCodeOctree(t.Codes.Data[0], t.ensureNodes(t.TotalNodes))
		return
	}
	n := t.Tree.NumNodes()
	t.Result = BuildOctree(t.Tree, t.Codes.Data[:t.NumUnique],
		t.Counts.Data[:n], t.Offsets.Data[:n], t.ensureNodes(t.TotalNodes), par)
}

// costs returns the per-stage cost specs for n-point frames. The
// divergence/irregularity assignments encode the paper's Sec. 4.1
// characterization: Morton encoding is a regular DOALL; Sort and Prefix
// Sum are parallelizable but nontrivial on GPUs; Build Radix Tree is
// irregular but embarrassingly parallel per node; Edge Counting and
// Build Octree involve pointer chasing and heavy control-flow divergence.
func costs(n int) []core.CostSpec {
	fn := float64(n)
	return []core.CostSpec{
		{FLOPs: 30 * fn, Bytes: 16 * fn, ParallelFraction: 0.999,
			Divergence: 0.02, Irregularity: 0.02, WorkItems: fn,
			Dispatches: 1}, // morton: regular DOALL
		{FLOPs: 24 * fn, Bytes: 40 * fn, ParallelFraction: 0.96,
			Divergence: 0.90, Irregularity: 0.90, WorkItems: fn,
			Dispatches: 9}, // sort: 3 LSD passes x histogram/scan/scatter
		{FLOPs: 6 * fn, Bytes: 16 * fn, ParallelFraction: 0.97,
			Divergence: 0.55, Irregularity: 0.45, WorkItems: fn,
			Dispatches: 4}, // unique: count/scan/gather/copy
		{FLOPs: 40 * fn, Bytes: 24 * fn, ParallelFraction: 0.995,
			Divergence: 0.35, Irregularity: 0.45, WorkItems: fn,
			Dispatches: 2}, // radix tree: per-node binary searches
		{FLOPs: 10 * fn, Bytes: 12 * fn, ParallelFraction: 0.995,
			Divergence: 0.95, Irregularity: 0.95, WorkItems: 2 * fn,
			Dispatches: 1}, // edge count: parent-pointer chasing
		{FLOPs: 4 * fn, Bytes: 12 * fn, ParallelFraction: 0.95,
			Divergence: 0.10, Irregularity: 0.05, WorkItems: 2 * fn,
			Dispatches: 3}, // prefix sum: blocked three-phase scan
		{FLOPs: 30 * fn, Bytes: 48 * fn, ParallelFraction: 0.98,
			Divergence: 0.97, Irregularity: 0.97, WorkItems: 2 * fn,
			Dispatches: 3}, // build octree: scattered pointer emission
	}
}

// StageNames are the pipeline stages in order, matching Sec. 4.1.
var StageNames = []string{
	"morton", "sort", "unique", "radix-tree", "edge-count", "prefix-sum", "build-octree",
}

// NewApplication builds the 7-stage octree pipeline over n-point frames
// from gen. Passing n <= 0 uses DefaultPoints; a nil gen uses UniformGen.
func NewApplication(n int, gen Generator) *core.Application {
	if n <= 0 {
		n = DefaultPoints
	}
	if gen == nil {
		gen = UniformGen{}
	}
	bodies := []core.KernelFunc{
		stageMorton, stageSort, stageUnique, stageRadixTree,
		stageCountEdges, stagePrefixSum, stageBuildOctree,
	}
	cs := costs(n)
	stages := make([]core.Stage, len(bodies))
	for i := range bodies {
		stages[i] = core.Stage{
			Name: StageNames[i],
			CPU:  bodies[i],
			GPU:  bodies[i],
			Cost: cs[i],
		}
	}
	app := &core.Application{
		Name:   fmt.Sprintf("octree-%s", gen.Name()),
		Stages: stages,
		NewTask: func() *core.TaskObject {
			t := NewTask(n, gen)
			to := core.NewTaskObject(t,
				[]core.Syncable{t.Points, t.Codes, t.Counts, t.Offsets},
				func(obj *core.TaskObject) {
					t.Regenerate(obj.Seq)
					t.Points.ResetCoherence()
					t.Codes.ResetCoherence()
					t.Counts.ResetCoherence()
					t.Offsets.ResetCoherence()
				})
			return to
		},
	}
	return app
}
