package octree

import (
	"fmt"

	"bettertogether/internal/core"
)

// NewTaskGraph returns the octree application's true dependency
// structure as an acyclic task graph. The paper (Sec. 3.1, "Task
// Graph") calls out exactly this workload: the final stage consumes the
// outputs of several earlier stages — the unique codes, the radix tree,
// and the scanned offsets — not just its immediate predecessor.
// BetterTogether supports such applications by linearizing the graph
// with a topological sort; NewApplicationFromGraph performs that
// linearization.
func NewTaskGraph(n int, gen Generator) *core.TaskGraph {
	app := NewApplication(n, gen)
	g := &core.TaskGraph{Nodes: app.Stages}
	// Chain dependencies along the natural dataflow...
	g.AddEdge(0, 1) // morton     -> sort
	g.AddEdge(1, 2) // sort       -> unique
	g.AddEdge(2, 3) // unique     -> radix tree
	g.AddEdge(3, 4) // radix tree -> edge count
	g.AddEdge(4, 5) // edge count -> prefix sum
	// ...plus the fan-in the paper highlights: building the octree needs
	// the unique codes, the tree structure, and the offsets.
	g.AddEdge(2, 6)
	g.AddEdge(3, 6)
	g.AddEdge(5, 6)
	return g
}

// NewApplicationFromGraph builds the octree application by linearizing
// its task graph instead of hand-ordering the stages — demonstrating
// that DAG-shaped applications execute unchanged on the linear pipeline
// model.
func NewApplicationFromGraph(n int, gen Generator) (*core.Application, error) {
	if n <= 0 {
		n = DefaultPoints
	}
	if gen == nil {
		gen = UniformGen{}
	}
	g := NewTaskGraph(n, gen)
	stages, err := g.Linearize()
	if err != nil {
		return nil, fmt.Errorf("octree: %w", err)
	}
	app := NewApplication(n, gen)
	app.Stages = stages
	return app, nil
}
