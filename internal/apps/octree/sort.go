package octree

import "bettertogether/internal/core"

// The radix sort processes keys in fixed "bands" so its decomposition —
// and therefore its result and its determinism — is independent of how
// many workers the executing PU offers. Each phase parallelizes over
// bands through the engine-provided ParallelFor.
const sortBands = 32

// radixBits is the digit width per LSD pass; 30-bit Morton codes need
// exactly three 10-bit passes.
const radixBits = 10

const radixBuckets = 1 << radixBits

// SortScratch holds the pre-allocated working memory of the radix sort,
// part of the TaskObject's scratchpad (paper Sec. 3.4: "To avoid memory
// allocation overhead during execution, we pre-allocate scratchpad
// regions").
type SortScratch struct {
	// Ping is the alternate key buffer for the out-of-place passes.
	Ping []uint32
	// Hist[band] is the per-band digit histogram of the current pass.
	Hist [sortBands][radixBuckets]int32
	// Base[band][digit] is the scatter base of the band's digit run.
	Base [sortBands][radixBuckets]int32
}

// NewSortScratch sizes scratch for n keys.
func NewSortScratch(n int) *SortScratch {
	return &SortScratch{Ping: make([]uint32, n)}
}

// bandRange returns the half-open key range of band b for n keys.
func bandRange(b, n int) (int, int) {
	lo := b * n / sortBands
	hi := (b + 1) * n / sortBands
	return lo, hi
}

// RadixSort sorts keys ascending using a stable LSD radix sort with
// banded parallel histogram and scatter phases. The same routine backs
// the CPU (OpenMP-style) and GPU (multi-pass dispatch-style) kernels: the
// algorithm is identical, only the lane placement differs, which the
// engine controls through par.
func RadixSort(keys []uint32, s *SortScratch, par core.ParallelFor) {
	n := len(keys)
	if n <= 1 {
		return
	}
	src, dst := keys, s.Ping[:n]
	for shift := 0; shift < MortonBits; shift += radixBits {
		// Phase 1: per-band digit histograms.
		par(sortBands, func(bLo, bHi int) {
			for b := bLo; b < bHi; b++ {
				h := &s.Hist[b]
				for d := range h {
					h[d] = 0
				}
				lo, hi := bandRange(b, n)
				for _, k := range src[lo:hi] {
					h[(k>>uint(shift))&(radixBuckets-1)]++
				}
			}
		})
		// Phase 2: serial scan over digits × bands computes stable
		// scatter bases (digit-major, band-minor preserves order).
		var running int32
		for d := 0; d < radixBuckets; d++ {
			for b := 0; b < sortBands; b++ {
				s.Base[b][d] = running
				running += s.Hist[b][d]
			}
		}
		// Phase 3: banded stable scatter.
		par(sortBands, func(bLo, bHi int) {
			for b := bLo; b < bHi; b++ {
				base := &s.Base[b]
				lo, hi := bandRange(b, n)
				for _, k := range src[lo:hi] {
					d := (k >> uint(shift)) & (radixBuckets - 1)
					dst[base[d]] = k
					base[d]++
				}
			}
		})
		src, dst = dst, src
	}
	// Three passes over 30 bits: odd number, so the result sits in Ping;
	// copy back in parallel.
	if &src[0] != &keys[0] {
		par(n, func(lo, hi int) {
			copy(keys[lo:hi], src[lo:hi])
		})
	}
}

// Unique compacts the sorted keys, dropping adjacent duplicates, and
// returns the unique count. It is the standard parallel stream
// compaction: banded first-occurrence counts, an exclusive scan of the
// band counts, a parallel gather into scratch at the band bases, and a
// parallel copy back. scratch must hold at least len(sorted) elements
// (the sort's Ping buffer is free by the time this stage runs).
func Unique(sorted, scratch []uint32, par core.ParallelFor) int {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	// Phase 1: per-band counts of "first occurrence" keys. Band b's
	// first key compares against the previous band's last key, which is
	// safe because this phase only reads.
	var counts [sortBands]int32
	par(sortBands, func(bLo, bHi int) {
		for b := bLo; b < bHi; b++ {
			lo, hi := bandRange(b, n)
			var c int32
			for i := lo; i < hi; i++ {
				if i == 0 || sorted[i] != sorted[i-1] {
					c++
				}
			}
			counts[b] = c
		}
	})
	// Phase 2: exclusive scan of band counts.
	var bases [sortBands]int32
	var total int32
	for b := 0; b < sortBands; b++ {
		bases[b] = total
		total += counts[b]
	}
	// Phase 3: parallel banded gather into scratch.
	par(sortBands, func(bLo, bHi int) {
		for b := bLo; b < bHi; b++ {
			lo, hi := bandRange(b, n)
			w := bases[b]
			for i := lo; i < hi; i++ {
				if i == 0 || sorted[i] != sorted[i-1] {
					scratch[w] = sorted[i]
					w++
				}
			}
		}
	})
	// Phase 4: parallel copy back.
	par(int(total), func(lo, hi int) {
		copy(sorted[lo:hi], scratch[lo:hi])
	})
	return int(total)
}
