package octree

import "bettertogether/internal/core"

// CountEdges fills counts[v] with the number of octree nodes radix-tree
// node v contributes (Karras Sec. 4: the edge from v's parent to v passes
// floor(δ(v)/3) − floor(δ(parent(v))/3) octree levels). The root's count
// additionally includes the depth-0 octree root itself, so every tree
// contributes at least one node. counts must have t.NumNodes() entries.
func CountEdges(t *RadixTree, counts []int32, par core.ParallelFor) {
	par(t.NumNodes(), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if v == 0 {
				counts[0] = t.PrefixLen[0]/3 + 1
				continue
			}
			p := t.Parent[v]
			counts[v] = t.PrefixLen[v]/3 - t.PrefixLen[p]/3
		}
	})
}

// ExclusiveScan computes offsets[i] = sum(counts[:i]) and returns the
// total, using the standard blocked three-phase parallel formulation:
// per-band partial sums, a serial scan of band totals, and a parallel
// rescan adding band bases. offsets must be at least as long as counts.
func ExclusiveScan(counts, offsets []int32, par core.ParallelFor) int32 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	var bandSums [sortBands]int32
	par(sortBands, func(bLo, bHi int) {
		for b := bLo; b < bHi; b++ {
			lo, hi := bandRange(b, n)
			var s int32
			for i := lo; i < hi; i++ {
				s += counts[i]
			}
			bandSums[b] = s
		}
	})
	var bases [sortBands]int32
	var total int32
	for b := 0; b < sortBands; b++ {
		bases[b] = total
		total += bandSums[b]
	}
	par(sortBands, func(bLo, bHi int) {
		for b := bLo; b < bHi; b++ {
			lo, hi := bandRange(b, n)
			run := bases[b]
			for i := lo; i < hi; i++ {
				offsets[i] = run
				run += counts[i]
			}
		}
	})
	return total
}

// OctNode is one cell of the final octree. Children are indices into the
// node array (-1 for empty octants); Leaf is the unique-code index for
// leaf cells at MaxDepth, or -1.
type OctNode struct {
	Children [8]int32
	Leaf     int32
	// Mask has bit d set iff Children[d] >= 0; filled by a final pass.
	Mask uint8
}

// Octree is the constructed spatial hierarchy.
type Octree struct {
	// Nodes[0] is not necessarily the root; see Root.
	Nodes []OctNode
	// Root indexes the depth-0 node.
	Root int32
}

// BuildOctree emits the octree nodes for the radix tree: each radix node
// v with counts[v] > 0 owns the chain of octree cells along the edge to
// its parent, the chain's top node attaches to the bottom node of the
// nearest ancestor with a nonzero count, and leaf chains terminate in
// leaf cells carrying their code index. nodes is the pre-allocated
// output (length >= total from ExclusiveScan); it is fully reinitialized.
//
// The per-node work — parent-pointer chasing to find the attachment
// ancestor plus scattered child writes — is the pointer-heavy pattern
// that makes this stage hostile to lockstep execution.
func BuildOctree(t *RadixTree, codes []uint32, counts, offsets []int32,
	nodes []OctNode, par core.ParallelFor) Octree {

	total := int(offsets[len(offsets)-1] + counts[len(counts)-1])
	nodes = nodes[:total]
	par(total, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			nodes[i] = OctNode{
				Children: [8]int32{-1, -1, -1, -1, -1, -1, -1, -1},
				Leaf:     -1,
			}
		}
	})

	par(t.NumNodes(), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			c := counts[v]
			if c == 0 {
				continue
			}
			// A representative code covered by v: the first code of its
			// range. All chain digits lie within the shared prefix, so
			// any covered code gives the same digits.
			code := codes[t.coveredFirst(int32(v))]
			// Chain node k sits at octree depth dTop+k.
			var dTop int32
			if v == 0 {
				dTop = 0
			} else {
				dTop = t.PrefixLen[t.Parent[v]]/3 + 1
			}
			base := offsets[v]
			// Internal chain links (single owner: no races).
			for k := int32(1); k < c; k++ {
				slot := Digit(code, int(dTop+k))
				nodes[base+k-1].Children[slot] = base + k
			}
			// Attach the chain top to the nearest emitting ancestor's
			// bottom node. Distinct subtrees attach at distinct slots
			// (they differ in the digit at dTop), so these cross-node
			// writes never collide.
			if v != 0 {
				a := t.Parent[v]
				for counts[a] == 0 {
					a = t.Parent[a]
				}
				abottom := offsets[a] + counts[a] - 1
				slot := Digit(code, int(dTop))
				nodes[abottom].Children[slot] = base
			}
			// Leaf chains terminate in the cell holding the code.
			if t.IsLeaf(int32(v)) {
				nodes[base+c-1].Leaf = int32(t.LeafIndex(int32(v)))
			}
		}
	})

	// Final pass: derive child masks (done separately because two
	// subtrees may attach to one ancestor node concurrently; a read-only
	// derivation avoids read-modify-write races on the mask byte).
	par(total, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var m uint8
			for d, ch := range nodes[i].Children {
				if ch >= 0 {
					m |= 1 << uint(d)
				}
			}
			nodes[i].Mask = m
		}
	})
	return Octree{Nodes: nodes, Root: offsets[0]}
}

// coveredFirst returns the index of the first code covered by node v.
func (t *RadixTree) coveredFirst(v int32) int {
	for !t.IsLeaf(v) {
		v = t.Left[int(v)]
	}
	return t.LeafIndex(v)
}

// BuildSingleCodeOctree handles the degenerate one-unique-code input: a
// straight chain from the root to the single leaf cell.
func BuildSingleCodeOctree(code uint32, nodes []OctNode) Octree {
	total := MaxDepth + 1
	nodes = nodes[:total]
	for i := range nodes {
		nodes[i] = OctNode{
			Children: [8]int32{-1, -1, -1, -1, -1, -1, -1, -1},
			Leaf:     -1,
		}
	}
	for d := 1; d <= MaxDepth; d++ {
		slot := Digit(code, d)
		nodes[d-1].Children[slot] = int32(d)
		nodes[d-1].Mask = 1 << slot
	}
	nodes[MaxDepth].Leaf = 0
	return Octree{Nodes: nodes, Root: 0}
}
