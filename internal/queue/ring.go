package queue

// Ring links a closed cycle of SPSC queues, one per pipeline chunk edge,
// including the recycling edge from the last chunk back to the first
// (paper Sec. 3.4: "Once all chunks have processed a TaskObject, it is
// reset and pushed back to the first queue"). Edge i connects the output
// of chunk i to the input of chunk i+1 (mod n).
type Ring[T any] struct {
	edges []*SPSC[T]
}

// NewRing builds n edges of the given capacity. n must be >= 1.
func NewRing[T any](n, capacity int) *Ring[T] {
	if n < 1 {
		panic("queue: ring needs at least one edge")
	}
	edges := make([]*SPSC[T], n)
	for i := range edges {
		edges[i] = NewSPSC[T](capacity)
	}
	return &Ring[T]{edges: edges}
}

// Edges returns the number of edges in the ring.
func (r *Ring[T]) Edges() int { return len(r.edges) }

// In returns the queue chunk i pops from: the edge arriving at chunk i.
func (r *Ring[T]) In(i int) *SPSC[T] {
	n := len(r.edges)
	return r.edges[((i-1)%n+n)%n]
}

// Out returns the queue chunk i pushes to: the edge leaving chunk i.
func (r *Ring[T]) Out(i int) *SPSC[T] { return r.edges[i%len(r.edges)] }

// Prime seeds chunk 0's input edge with the initial TaskObjects
// (multi-buffering). It panics if the edge cannot hold them all, which
// indicates a capacity misconfiguration rather than a runtime condition.
func (r *Ring[T]) Prime(objs []T) {
	in := r.In(0)
	for _, o := range objs {
		if !in.TryPush(o) {
			panic("queue: ring prime overflow; increase edge capacity")
		}
	}
}

// Occupancy returns a racy snapshot of every edge's buffered element
// count, in edge order — the at-a-glance view of where tasks are piling
// up (the edge into a slow chunk fills; the edges out of it starve).
func (r *Ring[T]) Occupancy() []int {
	out := make([]int, len(r.edges))
	for i, e := range r.edges {
		out[i] = e.Len()
	}
	return out
}

// Close closes every edge, releasing any blocked dispatcher.
func (r *Ring[T]) Close() {
	for _, e := range r.edges {
		e.Close()
	}
}
