package queue

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSPSCBasic(t *testing.T) {
	q := NewSPSC[int](4)
	if q.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", q.Cap())
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	for i := 0; i < 4; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("push into full queue succeeded")
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	for i := 0; i < 4; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d,true", v, ok, i)
		}
	}
}

func TestSPSCCapacityRounding(t *testing.T) {
	for _, c := range []struct{ ask, want int }{{0, 2}, {1, 2}, {3, 4}, {4, 4}, {5, 8}, {100, 128}} {
		if got := NewSPSC[int](c.ask).Cap(); got != c.want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", c.ask, got, c.want)
		}
	}
}

func TestSPSCWraparound(t *testing.T) {
	q := NewSPSC[int](2)
	// Cycle many times through a tiny ring to exercise index wrap.
	for i := 0; i < 1000; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed", i)
		}
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("cycle %d: pop = %d,%v", i, v, ok)
		}
	}
}

// TestSPSCConcurrentFIFO is the core correctness test: one producer, one
// consumer, full throughput, order and completeness must be preserved.
func TestSPSCConcurrentFIFO(t *testing.T) {
	const n = 200000
	q := NewSPSC[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if !q.Push(i) {
				t.Error("push failed before close")
				return
			}
		}
		q.Close()
	}()
	prev := -1
	count := 0
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		if v != prev+1 {
			t.Fatalf("out of order: got %d after %d", v, prev)
		}
		prev = v
		count++
	}
	wg.Wait()
	if count != n {
		t.Fatalf("received %d elements, want %d", count, n)
	}
}

func TestSPSCCloseReleasesBlockedConsumer(t *testing.T) {
	q := NewSPSC[int](2)
	done := make(chan struct{})
	go func() {
		_, ok := q.Pop()
		if ok {
			t.Error("Pop on closed empty queue returned ok")
		}
		close(done)
	}()
	q.Close()
	<-done
}

func TestSPSCCloseReleasesBlockedProducer(t *testing.T) {
	q := NewSPSC[int](2)
	q.TryPush(1)
	q.TryPush(2)
	done := make(chan struct{})
	go func() {
		if q.Push(3) {
			t.Error("Push on closed full queue returned true")
		}
		close(done)
	}()
	q.Close()
	<-done
}

func TestSPSCDrainAfterClose(t *testing.T) {
	q := NewSPSC[int](4)
	q.TryPush(1)
	q.TryPush(2)
	q.Close()
	if v, ok := q.Pop(); !ok || v != 1 {
		t.Fatalf("pop after close = %d,%v", v, ok)
	}
	if v, ok := q.Pop(); !ok || v != 2 {
		t.Fatalf("pop after close = %d,%v", v, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on drained closed queue returned ok")
	}
}

func TestSPSCPointerRelease(t *testing.T) {
	// Popped slots must be zeroed so the queue does not pin objects.
	q := NewSPSC[*int](2)
	x := new(int)
	q.TryPush(x)
	q.TryPop()
	if q.buf[0] != nil {
		t.Error("popped slot still holds pointer")
	}
}

// Property: any interleaved sequence of pushes and pops on a single
// goroutine behaves like a FIFO list.
func TestSPSCQuickFIFOModel(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewSPSC[int](8)
		var model []int
		next := 0
		for _, push := range ops {
			if push {
				ok := q.TryPush(next)
				wantOK := len(model) < q.Cap()
				if ok != wantOK {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := q.TryPop()
				wantOK := len(model) > 0
				if ok != wantOK {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRingTopology(t *testing.T) {
	r := NewRing[int](3, 4)
	if r.Edges() != 3 {
		t.Fatalf("Edges = %d", r.Edges())
	}
	// Chunk i's output edge must be chunk i+1's input edge.
	for i := 0; i < 3; i++ {
		if r.Out(i) != r.In(i+1) {
			t.Errorf("Out(%d) != In(%d)", i, i+1)
		}
	}
	// The ring must close: last chunk feeds the first.
	if r.Out(2) != r.In(0) {
		t.Error("ring does not close")
	}
}

func TestRingPrimeAndFlow(t *testing.T) {
	r := NewRing[int](2, 4)
	r.Prime([]int{10, 20, 30})
	in := r.In(0)
	if in.Len() != 3 {
		t.Fatalf("primed len = %d, want 3", in.Len())
	}
	v, ok := in.TryPop()
	if !ok || v != 10 {
		t.Fatalf("first primed element = %d,%v", v, ok)
	}
}

func TestRingPrimeOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on prime overflow")
		}
	}()
	r := NewRing[int](2, 2)
	r.Prime([]int{1, 2, 3}) // capacity 2 < 3
}

func TestRingSingleChunk(t *testing.T) {
	// A one-chunk pipeline still needs a self-loop for recycling.
	r := NewRing[int](1, 4)
	if r.In(0) != r.Out(0) {
		t.Error("single-chunk ring should self-loop")
	}
}

func TestRingClose(t *testing.T) {
	r := NewRing[int](3, 2)
	r.Close()
	for i := 0; i < 3; i++ {
		if !r.Out(i).Closed() {
			t.Errorf("edge %d not closed", i)
		}
	}
}

func BenchmarkSPSCPingPong(b *testing.B) {
	q := NewSPSC[int](1024)
	done := make(chan struct{})
	go func() {
		for {
			if _, ok := q.Pop(); !ok {
				close(done)
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(i)
	}
	q.Close()
	<-done
}
