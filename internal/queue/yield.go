package queue

import "runtime"

// yield parks the calling goroutine briefly so the counterpart of the
// queue (or the compute workers it is waiting on) can run. Dispatcher
// threads in the paper likewise yield instead of spinning hot, so they do
// not steal CPU time from OpenMP worker threads.
func yield() { runtime.Gosched() }
