// Package queue implements the lock-free single-producer single-consumer
// (SPSC) ring buffers that BT-Implementer uses to pass TaskObject pointers
// between pipeline chunks (paper Sec. 3.4, "Dispatcher Threads").
//
// Each edge in the pipeline has exactly one producing dispatcher and one
// consuming dispatcher, so the queue only has to be safe for that access
// pattern; this admits a wait-free ring with two atomic cursors and no
// locks, matching the C++ implementation the paper describes.
package queue

import (
	"sync/atomic"
	"time"
)

// cacheLinePad separates the producer- and consumer-owned cursors so they
// do not false-share a cache line under concurrent access.
type cacheLinePad struct{ _ [64]byte }

// SPSC is a bounded lock-free single-producer single-consumer queue.
//
// Exactly one goroutine may call Push/TryPush and exactly one (possibly
// different) goroutine may call Pop/TryPop. The zero value is not usable;
// construct with NewSPSC.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_    cacheLinePad
	head atomic.Uint64 // next slot to pop (owned by consumer)
	_    cacheLinePad
	tail atomic.Uint64 // next slot to push (owned by producer)
	_    cacheLinePad

	closed atomic.Bool
}

// NewSPSC returns an SPSC queue with capacity rounded up to the next power
// of two (minimum 2). A power-of-two size lets cursor arithmetic use a
// mask instead of modulo.
func NewSPSC[T any](capacity int) *SPSC[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Cap returns the queue capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Len returns the number of buffered elements. It is a snapshot and only
// exact when called from the producer or consumer goroutine.
func (q *SPSC[T]) Len() int {
	return int(q.tail.Load() - q.head.Load())
}

// TryPush appends v and reports whether there was room.
// Must only be called from the producer goroutine.
func (q *SPSC[T]) TryPush(v T) bool {
	tail := q.tail.Load()
	if tail-q.head.Load() == uint64(len(q.buf)) {
		return false // full
	}
	q.buf[tail&q.mask] = v
	q.tail.Store(tail + 1) // release: publishes the slot write
	return true
}

// TryPop removes and returns the oldest element, reporting whether one was
// available. Must only be called from the consumer goroutine.
func (q *SPSC[T]) TryPop() (T, bool) {
	var zero T
	head := q.head.Load()
	if head == q.tail.Load() {
		return zero, false // empty
	}
	v := q.buf[head&q.mask]
	q.buf[head&q.mask] = zero // drop reference for GC
	q.head.Store(head + 1)
	return v, true
}

// Close marks the queue closed. Pending elements remain poppable; Push
// after Close reports false, and Pop returns ok=false once drained.
func (q *SPSC[T]) Close() { q.closed.Store(true) }

// Closed reports whether Close has been called.
func (q *SPSC[T]) Closed() bool { return q.closed.Load() }

// Push spins (with backoff via Gosched) until v is enqueued or the queue
// is closed; it reports whether the element was enqueued. This is the
// blocking form used by dispatcher threads, which "yield until" progress
// is possible rather than burning a core (paper Sec. 3.4).
func (q *SPSC[T]) Push(v T) bool {
	for {
		if q.closed.Load() {
			return false
		}
		if q.TryPush(v) {
			return true
		}
		yield()
	}
}

// Occupancy returns the buffered element count and the capacity in one
// call — the backpressure view a monitor polls to spot a slow consumer.
// The length is a racy snapshot, like Len.
func (q *SPSC[T]) Occupancy() (length, capacity int) {
	return q.Len(), len(q.buf)
}

// PushTimeout behaves like Push but gives up after d: it reports false if
// the queue stayed full (or was closed) for the whole timeout. A zero or
// negative d degenerates to TryPush. Must only be called from the
// producer goroutine.
func (q *SPSC[T]) PushTimeout(v T, d time.Duration) bool {
	if q.TryPush(v) {
		return true
	}
	if d <= 0 {
		return false
	}
	deadline := time.Now().Add(d)
	for {
		if q.closed.Load() {
			return false
		}
		if q.TryPush(v) {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		yield()
	}
}

// PopTimeout behaves like Pop but gives up after d: it reports false if
// the queue stayed empty for the whole timeout or is closed and drained.
// A zero or negative d degenerates to TryPop. Must only be called from
// the consumer goroutine.
func (q *SPSC[T]) PopTimeout(d time.Duration) (T, bool) {
	if v, ok := q.TryPop(); ok {
		return v, true
	}
	var zero T
	if d <= 0 {
		return zero, false
	}
	deadline := time.Now().Add(d)
	for {
		if v, ok := q.TryPop(); ok {
			return v, true
		}
		if q.closed.Load() {
			// Re-check: a final element may have been pushed before Close.
			if v, ok := q.TryPop(); ok {
				return v, true
			}
			return zero, false
		}
		if time.Now().After(deadline) {
			return zero, false
		}
		yield()
	}
}

// Pop spins until an element is available or the queue is closed and
// drained. It reports ok=false only on closed-and-empty.
func (q *SPSC[T]) Pop() (T, bool) {
	for {
		if v, ok := q.TryPop(); ok {
			return v, true
		}
		if q.closed.Load() {
			// Re-check: a final element may have been pushed before Close.
			if v, ok := q.TryPop(); ok {
				return v, true
			}
			var zero T
			return zero, false
		}
		yield()
	}
}
