package queue

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// TestSPSCQuickConcurrentTryPush is the property test for the
// non-blocking path: a producer driving TryPush and a consumer driving
// TryPop, both with randomized yield patterns, must preserve FIFO order
// and neither lose nor duplicate a single element, for any queue
// capacity and item count.
func TestSPSCQuickConcurrentTryPush(t *testing.T) {
	f := func(capRaw uint8, nRaw uint16, prodYields, consYields []bool) bool {
		capacity := int(capRaw%32) + 1
		n := int(nRaw%2000) + 1
		q := NewSPSC[int](capacity)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; {
				if q.TryPush(i) {
					i++
				} else {
					runtime.Gosched()
				}
				if len(prodYields) > 0 && prodYields[i%len(prodYields)] {
					runtime.Gosched()
				}
			}
			q.Close()
		}()
		next := 0
		for {
			v, ok := q.TryPop()
			if !ok {
				if q.Closed() {
					// Drain: a final element may land between TryPop
					// and the Closed check.
					if v, ok := q.TryPop(); ok {
						if v != next {
							return false
						}
						next++
						continue
					}
					break
				}
				runtime.Gosched()
				continue
			}
			if v != next {
				return false // lost, duplicated, or reordered
			}
			next++
			if len(consYields) > 0 && consYields[next%len(consYields)] {
				runtime.Gosched()
			}
		}
		wg.Wait()
		return next == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSPSCQuickConcurrentTimeout drives the PushTimeout/PopTimeout pair
// under concurrency: with generous timeouts every element must transit
// exactly once, in order, whatever the interleaving.
func TestSPSCQuickConcurrentTimeout(t *testing.T) {
	f := func(capRaw uint8, nRaw uint16) bool {
		capacity := int(capRaw%16) + 1
		n := int(nRaw%500) + 1
		q := NewSPSC[int](capacity)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				for !q.PushTimeout(i, time.Millisecond) {
					if q.Closed() {
						return
					}
				}
			}
			q.Close()
		}()
		next := 0
		for next < n {
			v, ok := q.PopTimeout(time.Millisecond)
			if !ok {
				if q.Closed() && q.Len() == 0 {
					break
				}
				continue
			}
			if v != next {
				return false
			}
			next++
		}
		wg.Wait()
		return next == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSPSCPushTimeoutOnFullQueue(t *testing.T) {
	q := NewSPSC[int](2)
	q.TryPush(1)
	q.TryPush(2)
	t0 := time.Now()
	if q.PushTimeout(3, 20*time.Millisecond) {
		t.Fatal("push into full queue succeeded")
	}
	if elapsed := time.Since(t0); elapsed < 15*time.Millisecond {
		t.Fatalf("gave up after %v, want ~20ms", elapsed)
	}
	// Zero timeout degenerates to TryPush: immediate failure.
	t0 = time.Now()
	if q.PushTimeout(3, 0) {
		t.Fatal("zero-timeout push into full queue succeeded")
	}
	if time.Since(t0) > 5*time.Millisecond {
		t.Fatal("zero-timeout push blocked")
	}
	// Space appearing lets a pending timed push through.
	done := make(chan bool, 1)
	go func() { done <- q.PushTimeout(3, time.Second) }()
	time.Sleep(time.Millisecond)
	if _, ok := q.TryPop(); !ok {
		t.Fatal("pop failed")
	}
	if !<-done {
		t.Fatal("timed push failed despite space")
	}
}

func TestSPSCPopTimeoutOnEmptyQueue(t *testing.T) {
	q := NewSPSC[int](2)
	t0 := time.Now()
	if _, ok := q.PopTimeout(20 * time.Millisecond); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	if elapsed := time.Since(t0); elapsed < 15*time.Millisecond {
		t.Fatalf("gave up after %v, want ~20ms", elapsed)
	}
	if _, ok := q.PopTimeout(0); ok {
		t.Fatal("zero-timeout pop from empty queue succeeded")
	}
	// An element appearing lets a pending timed pop through.
	done := make(chan bool, 1)
	go func() {
		v, ok := q.PopTimeout(time.Second)
		done <- ok && v == 7
	}()
	time.Sleep(time.Millisecond)
	q.TryPush(7)
	if !<-done {
		t.Fatal("timed pop missed the element")
	}
}

func TestSPSCTimeoutVariantsRespectClose(t *testing.T) {
	// PushTimeout on a closed queue fails fast.
	q := NewSPSC[int](2)
	q.TryPush(1)
	q.TryPush(2)
	q.Close()
	t0 := time.Now()
	if q.PushTimeout(3, time.Second) {
		t.Fatal("push on closed queue succeeded")
	}
	if time.Since(t0) > 100*time.Millisecond {
		t.Fatal("push on closed queue waited out the timeout")
	}
	// PopTimeout drains a closed queue, then fails fast.
	if v, ok := q.PopTimeout(time.Second); !ok || v != 1 {
		t.Fatalf("drain pop = %d,%v", v, ok)
	}
	if v, ok := q.PopTimeout(time.Second); !ok || v != 2 {
		t.Fatalf("drain pop = %d,%v", v, ok)
	}
	t0 = time.Now()
	if _, ok := q.PopTimeout(time.Second); ok {
		t.Fatal("pop on drained closed queue succeeded")
	}
	if time.Since(t0) > 100*time.Millisecond {
		t.Fatal("pop on closed empty queue waited out the timeout")
	}
}

func TestSPSCOccupancy(t *testing.T) {
	q := NewSPSC[int](4)
	if l, c := q.Occupancy(); l != 0 || c != 4 {
		t.Fatalf("occupancy = %d/%d", l, c)
	}
	q.TryPush(1)
	q.TryPush(2)
	if l, c := q.Occupancy(); l != 2 || c != 4 {
		t.Fatalf("occupancy = %d/%d", l, c)
	}
}

func TestRingOccupancy(t *testing.T) {
	r := NewRing[int](3, 4)
	r.Prime([]int{1, 2, 3})
	occ := r.Occupancy()
	if len(occ) != 3 {
		t.Fatalf("occupancy entries = %d", len(occ))
	}
	// Prime fills chunk 0's input edge, which is the last edge.
	if occ[2] != 3 || occ[0] != 0 || occ[1] != 0 {
		t.Fatalf("occupancy = %v", occ)
	}
}
