package cli

import (
	"flag"
	"fmt"
	"math"

	"bettertogether/internal/obs"
	"bettertogether/internal/onlineprof"
	"bettertogether/internal/runtime"
	"bettertogether/internal/schedcache"
)

// PlannerFlags bundles the planner-tuning flags shared by every command
// that builds runtimes — the schedule cache, the re-plan delta filter,
// and the online-profiling feedback loop. btrun, btfleet and btbench
// used to declare and validate these independently; declaring them here
// keeps the flag names, defaults, help text and fail-fast validation in
// one place.
type PlannerFlags struct {
	// CacheCapacity sizes the schedule cache (0 disables it).
	CacheCapacity int
	// CacheBucket is the cache's Env quantization bucket width
	// (0 selects schedcache.DefaultBucket).
	CacheBucket float64
	// ReplanDelta skips re-planning residents whose Env moved less than
	// this since their last solve (0 re-plans on every pass).
	ReplanDelta float64
	// OnlineProfile enables feedback-driven replanning: learn observed
	// stage service times from the event stream and re-plan sessions
	// whose model has demonstrably drifted.
	OnlineProfile bool
	// DriftThreshold is the relative model divergence that counts as
	// drift (0 selects onlineprof.DefaultDriftThreshold).
	DriftThreshold float64
}

// AddPlannerFlags declares the shared planner flags on fs and returns
// the struct their parsed values land in. Call Validate after
// fs.Parse.
func AddPlannerFlags(fs *flag.FlagSet) *PlannerFlags {
	p := &PlannerFlags{}
	fs.IntVar(&p.CacheCapacity, "sched-cache", 0,
		"memoize planning results in a schedule cache of this capacity (0 = off)")
	fs.Float64Var(&p.CacheBucket, "cache-bucket", 0,
		"schedule-cache Env quantization bucket width (0 = default)")
	fs.Float64Var(&p.ReplanDelta, "replan-delta", 0,
		"skip re-planning a resident whose Env moved less than this since its last solve (0 = always re-plan)")
	fs.BoolVar(&p.OnlineProfile, "online-profile", false,
		"learn observed stage service times from the event stream and re-plan sessions whose model has drifted")
	fs.Float64Var(&p.DriftThreshold, "drift-threshold", 0,
		"online profiling: relative model divergence that counts as drift (0 = default)")
	return p
}

// badKnob reports a value outside the finite non-negative range every
// planner knob requires.
func badKnob(v float64) bool { return v < 0 || math.IsNaN(v) || math.IsInf(v, 0) }

// Validate fails fast on nonsensical knob values: a negative capacity
// would silently disable the cache, a negative bucket would fall back
// to the default width behind the user's back, and a negative (or NaN)
// delta would make every Env.Delta comparison vacuous — each a quiet
// mis-scheduling mode rather than an error the user sees.
func (p *PlannerFlags) Validate() error {
	if p.CacheCapacity < 0 {
		return fmt.Errorf("-sched-cache must be >= 0 (0 disables the cache), got %d", p.CacheCapacity)
	}
	if badKnob(p.CacheBucket) {
		return fmt.Errorf("-cache-bucket must be a finite value >= 0 (0 selects the default %g), got %v",
			schedcache.DefaultBucket, p.CacheBucket)
	}
	if badKnob(p.ReplanDelta) {
		return fmt.Errorf("-replan-delta must be a finite value >= 0 (0 re-plans on every pass), got %v", p.ReplanDelta)
	}
	if badKnob(p.DriftThreshold) {
		return fmt.Errorf("-drift-threshold must be a finite value >= 0 (0 selects the default %g), got %v",
			onlineprof.DefaultDriftThreshold, p.DriftThreshold)
	}
	if p.DriftThreshold > 0 && !p.OnlineProfile {
		return fmt.Errorf("-drift-threshold requires -online-profile")
	}
	return nil
}

// Cache builds the configured schedule cache, nil when disabled. Each
// call builds a fresh cache; call once and share the handle when one
// cache should back several runtimes.
func (p *PlannerFlags) Cache() *schedcache.Cache {
	if p.CacheCapacity <= 0 {
		return nil
	}
	return schedcache.New(p.CacheCapacity, p.CacheBucket)
}

// OnlineProf is the feedback-loop configuration the flags select, nil
// when online profiling is off — the shape fleet.Config.OnlineProf and
// runtime.WithOnlineProfiling consume.
func (p *PlannerFlags) OnlineProf() *onlineprof.Config {
	if !p.OnlineProfile {
		return nil
	}
	return &onlineprof.Config{DriftThreshold: p.DriftThreshold}
}

// RuntimeOptions maps the flags onto runtime functional options for a
// single-runtime command. Unset flags contribute no option, so the
// runtime's own defaults stay in force.
func (p *PlannerFlags) RuntimeOptions() []runtime.Option {
	var opts []runtime.Option
	if c := p.Cache(); c != nil {
		opts = append(opts, runtime.WithSchedCache(c))
	}
	if p.ReplanDelta > 0 {
		opts = append(opts, runtime.WithReplanDelta(p.ReplanDelta))
	}
	if c := p.OnlineProf(); c != nil {
		opts = append(opts, runtime.WithOnlineProfiling(*c))
	}
	return opts
}

// OnlineProfSummary renders the post-run feedback-loop summary line the
// commands print to stderr, "" when online profiling was disabled
// (ok == false).
func OnlineProfSummary(s obs.OnlineProfStats, ok bool) string {
	if !ok {
		return ""
	}
	return fmt.Sprintf("online profiling: %d observations over %d cells, %d drifts (%d cells latched), %d invalidations, %d drift re-plans",
		s.Observations, s.Cells, s.DriftsTriggered, s.LatchedCells, s.Invalidations, s.DriftReplans)
}
