package cli

import (
	"flag"
	"math"
	"strings"
	"testing"

	"bettertogether/internal/obs"
)

func parseTrace(t *testing.T, args ...string) *TraceFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	tf := AddTraceFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("Parse(%v): %v", args, err)
	}
	return tf
}

// TestTraceFlagsDefaults pins that the zero flag state is valid and
// fully off: no tracer, no deadline — commands that never set the flags
// behave exactly as before.
func TestTraceFlagsDefaults(t *testing.T) {
	tf := parseTrace(t)
	if err := tf.Validate(); err != nil {
		t.Fatalf("Validate on defaults: %v", err)
	}
	if tf.SLODeadline != 0 || tf.TraceSample != 0 {
		t.Fatalf("defaults %+v, want zeroes", tf)
	}
	if tr := tf.Tracer(1); tr != nil {
		t.Fatalf("Tracer() = %v on defaults, want nil", tr)
	}
}

func TestTraceFlagsValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*TraceFlags)
		want string
	}{
		{"negative deadline", func(f *TraceFlags) { f.SLODeadline = -1 }, "-slo-deadline"},
		{"NaN deadline", func(f *TraceFlags) { f.SLODeadline = math.NaN() }, "-slo-deadline"},
		{"Inf deadline", func(f *TraceFlags) { f.SLODeadline = math.Inf(1) }, "-slo-deadline"},
		{"negative rate", func(f *TraceFlags) { f.TraceSample = -0.1 }, "-trace-sample"},
		{"rate above one", func(f *TraceFlags) { f.TraceSample = 1.5 }, "-trace-sample"},
		{"NaN rate", func(f *TraceFlags) { f.TraceSample = math.NaN() }, "-trace-sample"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tf := parseTrace(t)
			tc.mut(tf)
			err := tf.Validate()
			if err == nil {
				t.Fatal("Validate accepted a bad value")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %s", err, tc.want)
			}
		})
	}
}

func TestTraceFlagsParseAndBuild(t *testing.T) {
	tf := parseTrace(t, "-slo-deadline", "3", "-trace-sample", "1")
	if err := tf.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tf.SLODeadline != 3 || tf.TraceSample != 1 {
		t.Fatalf("parsed %+v", tf)
	}
	tr := tf.Tracer(7)
	if tr == nil {
		t.Fatal("Tracer() = nil at rate 1")
	}
	tr.Arrived("octree#0", "octree")
	if _, ok := tr.Trace("octree#0"); !ok {
		t.Fatal("rate-1 tracer did not sample")
	}
}

func TestSLOSummary(t *testing.T) {
	if got := SLOSummary(obs.SLOStats{}, false); got != "" {
		t.Fatalf("disabled summary %q", got)
	}
	got := SLOSummary(obs.SLOStats{Sessions: 4, Attained: 3, Missed: 1}, true)
	for _, want := range []string{"3/4", "0.7500", "missed 1"} {
		if !strings.Contains(got, want) {
			t.Fatalf("summary %q missing %q", got, want)
		}
	}
}
