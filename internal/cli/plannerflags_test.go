package cli

import (
	"flag"
	"math"
	"strings"
	"testing"

	"bettertogether/internal/onlineprof"
)

// parsePlanner runs args through a fresh FlagSet carrying the shared
// planner flags, as each command does at startup.
func parsePlanner(t *testing.T, args ...string) *PlannerFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := AddPlannerFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("Parse(%v): %v", args, err)
	}
	return p
}

// TestPlannerFlagsDefaultsValidate pins that the zero flag state is
// valid and selects nothing: no cache, no delta filter, no feedback.
func TestPlannerFlagsDefaultsValidate(t *testing.T) {
	p := parsePlanner(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate on defaults: %v", err)
	}
	if c := p.Cache(); c != nil {
		t.Errorf("Cache() = %v on defaults, want nil", c)
	}
	if c := p.OnlineProf(); c != nil {
		t.Errorf("OnlineProf() = %v on defaults, want nil", c)
	}
	if opts := p.RuntimeOptions(); len(opts) != 0 {
		t.Errorf("RuntimeOptions() produced %d options on defaults, want 0", len(opts))
	}
}

// TestPlannerFlagsValidateRejects exercises the single shared
// validation path across every knob's failure mode.
func TestPlannerFlagsValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*PlannerFlags)
		want string
	}{
		{"negative cache", func(p *PlannerFlags) { p.CacheCapacity = -1 }, "-sched-cache"},
		{"negative bucket", func(p *PlannerFlags) { p.CacheBucket = -0.5 }, "-cache-bucket"},
		{"NaN bucket", func(p *PlannerFlags) { p.CacheBucket = math.NaN() }, "-cache-bucket"},
		{"negative delta", func(p *PlannerFlags) { p.ReplanDelta = -1 }, "-replan-delta"},
		{"Inf delta", func(p *PlannerFlags) { p.ReplanDelta = math.Inf(1) }, "-replan-delta"},
		{"negative threshold", func(p *PlannerFlags) {
			p.OnlineProfile, p.DriftThreshold = true, -0.1
		}, "-drift-threshold"},
		{"threshold without profiling", func(p *PlannerFlags) { p.DriftThreshold = 0.5 }, "-online-profile"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &PlannerFlags{}
			tc.mut(p)
			err := p.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", p)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name %s", err, tc.want)
			}
		})
	}
}

// TestPlannerFlagsBuildsArtifacts pins the flag-to-config mapping: a
// set cache capacity yields a cache of that shape, -online-profile
// yields an onlineprof config carrying the threshold, and
// RuntimeOptions reflects exactly the set knobs.
func TestPlannerFlagsBuildsArtifacts(t *testing.T) {
	p := parsePlanner(t,
		"-sched-cache", "32", "-cache-bucket", "0.1",
		"-replan-delta", "0.05",
		"-online-profile", "-drift-threshold", "0.4")
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	c := p.Cache()
	if c == nil {
		t.Fatal("Cache() = nil with -sched-cache 32")
	}
	if st := c.Stats(); st.Capacity != 32 {
		t.Errorf("cache capacity = %d, want 32", st.Capacity)
	}
	op := p.OnlineProf()
	if op == nil {
		t.Fatal("OnlineProf() = nil with -online-profile")
	}
	if op.DriftThreshold != 0.4 {
		t.Errorf("DriftThreshold = %v, want 0.4", op.DriftThreshold)
	}
	// Zero threshold defers to the estimator default.
	p2 := parsePlanner(t, "-online-profile")
	if got := onlineprof.NewEstimator(*p2.OnlineProf()); got.Config().DriftThreshold != onlineprof.DefaultDriftThreshold {
		t.Errorf("defaulted threshold = %v, want %v",
			got.Config().DriftThreshold, onlineprof.DefaultDriftThreshold)
	}
	if opts := p.RuntimeOptions(); len(opts) != 3 {
		t.Errorf("RuntimeOptions() produced %d options, want 3 (cache, delta, onlineprof)", len(opts))
	}
}
