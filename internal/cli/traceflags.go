package cli

import (
	"flag"
	"fmt"
	"math"

	"bettertogether/internal/obs"
	"bettertogether/internal/obs/sessiontrace"
)

// TraceFlags bundles the session-tracing and SLO flags shared by btrun
// and btfleet: the deadline every session is held to and the sampling
// rate of the causal lifecycle tracer. Both default off, so commands
// that never set them behave (and print) exactly as before.
type TraceFlags struct {
	// SLODeadline is the per-session deadline in virtual seconds of
	// modeled execution time (0 disables SLO accounting).
	SLODeadline float64
	// TraceSample is the head-sampling rate of the session-lifecycle
	// tracer in [0, 1]: 0 disables tracing entirely, 1 traces every
	// session.
	TraceSample float64
}

// AddTraceFlags declares the shared tracing/SLO flags on fs and returns
// the struct their parsed values land in. Call Validate after fs.Parse.
func AddTraceFlags(fs *flag.FlagSet) *TraceFlags {
	t := &TraceFlags{}
	fs.Float64Var(&t.SLODeadline, "slo-deadline", 0,
		"per-session SLO deadline in virtual seconds of modeled time (0 = no SLO)")
	fs.Float64Var(&t.TraceSample, "trace-sample", 0,
		"session-lifecycle trace sampling rate in [0,1] (0 = tracing off, 1 = trace every session)")
	return t
}

// Validate fails fast on nonsensical values: a negative deadline would
// mark every session missed, and a sampling rate outside [0, 1] has no
// probabilistic meaning.
func (t *TraceFlags) Validate() error {
	if badKnob(t.SLODeadline) {
		return fmt.Errorf("-slo-deadline must be a finite value >= 0 (0 disables the SLO), got %v", t.SLODeadline)
	}
	if t.TraceSample < 0 || t.TraceSample > 1 || math.IsNaN(t.TraceSample) {
		return fmt.Errorf("-trace-sample must be in [0, 1] (0 disables tracing), got %v", t.TraceSample)
	}
	return nil
}

// Tracer builds the configured session-lifecycle tracer, nil when
// tracing is off. seed drives the deterministic sampling decision, so
// the same seed and rate sample the same sessions on every run.
func (t *TraceFlags) Tracer(seed int64) *sessiontrace.Tracer {
	if t.TraceSample <= 0 {
		return nil
	}
	return sessiontrace.New(sessiontrace.Config{SampleRate: t.TraceSample, Seed: seed})
}

// SLOSummary renders the post-run attainment summary line the commands
// print to stderr, "" when no session carried a deadline (ok == false).
func SLOSummary(s obs.SLOStats, ok bool) string {
	if !ok {
		return ""
	}
	return fmt.Sprintf("slo: %d/%d sessions attained (%s missed %d)",
		s.Attained, s.Sessions, s.AttainedFraction(), s.Missed)
}
