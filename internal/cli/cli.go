// Package cli holds the small conventions shared by every command in
// cmd/: errors print to stderr as "<cmd>: <message>" and terminate the
// process with exit code 1. Centralizing them keeps the tools' failure
// behavior uniform (and testable — osExit is patchable).
package cli

import (
	"fmt"
	"os"
)

// osExit is patched by tests to observe exit codes without dying.
var osExit = os.Exit

// Fatal prints "<cmd>: <err>" to stderr and exits 1.
func Fatal(cmd string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
	osExit(1)
}

// FatalIf is Fatal when err is non-nil and a no-op otherwise — the
// common guard after each fallible setup step.
func FatalIf(cmd string, err error) {
	if err != nil {
		Fatal(cmd, err)
	}
}

// Fatalf is Fatal with a formatted message.
func Fatalf(cmd, format string, args ...any) {
	Fatal(cmd, fmt.Errorf(format, args...))
}
