package cli

import (
	"errors"
	"fmt"
	"testing"
)

// withExitCapture patches osExit to record codes instead of terminating,
// runs fn, and returns the recorded codes.
func withExitCapture(fn func()) []int {
	var codes []int
	old := osExit
	osExit = func(code int) { codes = append(codes, code) }
	defer func() { osExit = old }()
	fn()
	return codes
}

func TestFatalExitsOne(t *testing.T) {
	codes := withExitCapture(func() { Fatal("bttest", errors.New("boom")) })
	if len(codes) != 1 || codes[0] != 1 {
		t.Fatalf("Fatal exit codes = %v, want [1]", codes)
	}
}

func TestFatalIfNilIsNoop(t *testing.T) {
	codes := withExitCapture(func() { FatalIf("bttest", nil) })
	if len(codes) != 0 {
		t.Fatalf("FatalIf(nil) exited with %v, want no exit", codes)
	}
}

func TestFatalIfErrorExits(t *testing.T) {
	codes := withExitCapture(func() { FatalIf("bttest", errors.New("boom")) })
	if len(codes) != 1 || codes[0] != 1 {
		t.Fatalf("FatalIf(err) exit codes = %v, want [1]", codes)
	}
}

func TestFatalfFormats(t *testing.T) {
	codes := withExitCapture(func() { Fatalf("bttest", "unknown engine %q", "warp") })
	if len(codes) != 1 || codes[0] != 1 {
		t.Fatalf("Fatalf exit codes = %v, want [1]", codes)
	}
	// The formatted error itself must be well-formed.
	err := fmt.Errorf("unknown engine %q", "warp")
	if err.Error() != `unknown engine "warp"` {
		t.Fatalf("format sanity: %q", err)
	}
}
