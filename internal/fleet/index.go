package fleet

import (
	"math"
	"sort"
)

// DefaultIndexBands is the headroom-band count placement quantizes
// scores into when Config.IndexBands is zero. 32 bands over the [0, 1]
// slack range keeps a band's score spread at ~3% — small enough that a
// typical arrival sorts only the handful of nodes in the top band
// instead of the whole registry.
const DefaultIndexBands = 32

// bandEntry is one node's filed position in the index.
type bandEntry struct {
	band  int
	score float64
}

// bandIndex buckets registry nodes by quantized headroom score so
// placement can sweep candidates best-band-first instead of scoring the
// whole registry per arrival. It holds the fleet's cached score for
// every placeable (non-drained) node.
//
// Invariants (all maintained under the fleet mutex):
//
//   - A node appears in exactly one band, the one its cached score
//     quantizes into — or nowhere at all while drained.
//   - The cached score equals the live headroomScore of the node's
//     runtime: every fleet-visible event that moves a node's projected
//     demand (a successful admit, a replay departure, a migration in or
//     out, an uncordon) re-files the node. That freshness is what makes
//     the banded sweep provably equivalent to the exhaustive rank —
//     pinned on randomized fleets by TestBandedMatchesExhaustive.
//   - Quantization is monotonic (floor of score/width), so visiting
//     bands in descending id and sorting each visited band by exact
//     score yields exactly the exhaustive descending-score order.
type bandIndex struct {
	width float64
	bands map[int]map[*Node]struct{}
	info  map[*Node]bandEntry
}

// newBandIndex builds an empty index with the given band count.
func newBandIndex(bands int) *bandIndex {
	return &bandIndex{
		width: 1 / float64(bands),
		bands: map[int]map[*Node]struct{}{},
		info:  map[*Node]bandEntry{},
	}
}

// bandOf quantizes a score into its band id. Scores can run negative
// (admission tolerates projected oversubscription), which simply files
// into negative bands — ordering still holds.
func (ix *bandIndex) bandOf(score float64) int {
	return int(math.Floor(score / ix.width))
}

// update (re-)files a node under its current score, moving it across
// bands when the quantized slack changed.
func (ix *bandIndex) update(n *Node, score float64) {
	b := ix.bandOf(score)
	if cur, ok := ix.info[n]; ok {
		if cur.band == b {
			ix.info[n] = bandEntry{band: b, score: score}
			return
		}
		ix.unfile(n, cur.band)
	}
	members := ix.bands[b]
	if members == nil {
		members = map[*Node]struct{}{}
		ix.bands[b] = members
	}
	members[n] = struct{}{}
	ix.info[n] = bandEntry{band: b, score: score}
}

// remove drops a node from the index entirely — the drain path; the
// node becomes invisible to placement until update files it again.
func (ix *bandIndex) remove(n *Node) {
	cur, ok := ix.info[n]
	if !ok {
		return
	}
	ix.unfile(n, cur.band)
	delete(ix.info, n)
}

// unfile detaches a node from one band's member set, pruning the band
// when it empties so sweeps never iterate dead bands.
func (ix *bandIndex) unfile(n *Node, band int) {
	delete(ix.bands[band], n)
	if len(ix.bands[band]) == 0 {
		delete(ix.bands, band)
	}
}

// size returns how many nodes are filed.
func (ix *bandIndex) size() int { return len(ix.info) }

// sweep yields indexed nodes in exhaustive-rank order — affinity-class
// nodes first (when affinity is non-empty), then descending exact score,
// then ascending node ID — stopping early when yield returns false. Only
// the bands actually visited are sorted, which is the whole point: an
// arrival that lands in the top band costs one small sort, not a
// registry-wide one.
func (ix *bandIndex) sweep(affinity string, yield func(candidate) bool) {
	ids := make([]int, 0, len(ix.bands))
	for id := range ix.bands {
		ids = append(ids, id)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ids)))
	// emit walks every band's members matching one affinity polarity;
	// it reports whether the yield chain stopped the sweep.
	emit := func(preferred bool) bool {
		for _, id := range ids {
			members := make([]candidate, 0, len(ix.bands[id]))
			for n := range ix.bands[id] {
				isPref := affinity != "" && n.Device.Name == affinity
				if isPref != preferred {
					continue
				}
				members = append(members, candidate{node: n, preferred: isPref, score: ix.info[n].score})
			}
			sort.Slice(members, func(a, b int) bool { return members[a].less(members[b]) })
			for _, c := range members {
				if !yield(c) {
					return true
				}
			}
		}
		return false
	}
	if affinity != "" && emit(true) {
		return
	}
	emit(false)
}
