package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"bettertogether/internal/core"
	"bettertogether/internal/obs"
	"bettertogether/internal/runtime"
	"bettertogether/pkg/btapps"
)

// TestRankTiesBreakByNodeID pins the explicit score tie-break: with
// every node idle (all scores exactly 1.0), candidates order by node ID,
// not by registry declaration order.
func TestRankTiesBreakByNodeID(t *testing.T) {
	f := mustFleet(t, Config{Nodes: []NodeSpec{
		{Device: "pixel7a", Count: 1}, // registry-first, but name-last
		{Device: "jetson", Count: 1},
		{Device: "oneplus11", Count: 1},
	}})
	var got []string
	for _, c := range f.rank("octree") {
		got = append(got, c.node.ID)
	}
	want := []string{"jetson/0", "oneplus11/0", "pixel7a/0"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tied rank order = %v, want node-ID order %v", got, want)
	}
	app, err := btapps.ByName("octree")
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Place(app, runtime.AdmitOptions{Tasks: 2, Hold: true})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if p.Node.ID != "jetson/0" {
		t.Fatalf("tied placement landed on %s, want jetson/0 (smallest node ID)", p.Node.ID)
	}
}

// TestDecodeTraceDescriptiveErrors pins that each validation failure
// gets its own descriptive message naming the offending arrival.
func TestDecodeTraceDescriptiveErrors(t *testing.T) {
	cases := map[string]struct {
		raw  string
		want string
	}{
		"negative time": {
			raw:  `{"arrivals":[{"at":-1,"app":"octree","dwell":1}]}`,
			want: "negative time",
		},
		"non-monotonic": {
			raw:  `{"arrivals":[{"at":5,"app":"octree","dwell":1},{"at":1,"app":"octree","dwell":1}]}`,
			want: "non-monotonic",
		},
		"negative dwell": {
			raw:  `{"arrivals":[{"at":0,"app":"octree","dwell":-2}]}`,
			want: "negative dwell",
		},
		"duplicate session": {
			raw: `{"arrivals":[{"at":0,"app":"octree","dwell":1,"session":"s1"},` +
				`{"at":1,"app":"vision","dwell":1,"session":"s1"}]}`,
			want: `reuses session ID "s1"`,
		},
	}
	for name, tc := range cases {
		_, err := DecodeTrace(strings.NewReader(tc.raw))
		if err == nil {
			t.Errorf("%s: DecodeTrace accepted %s", name, tc.raw)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
	// Distinct non-empty session names (and empty ones, any number) pass.
	ok := `{"arrivals":[{"at":0,"app":"octree","dwell":1,"session":"a"},` +
		`{"at":1,"app":"octree","dwell":1},{"at":2,"app":"octree","dwell":1,"session":"b"},` +
		`{"at":3,"app":"octree","dwell":1}]}`
	if _, err := DecodeTrace(strings.NewReader(ok)); err != nil {
		t.Fatalf("DecodeTrace rejected a valid trace: %v", err)
	}
}

// TestPlacementErrorRefusalOrder pins PlacementError aggregation: every
// refused node's typed admission error appears exactly once, in the
// candidate order the sweep tried them.
func TestPlacementErrorRefusalOrder(t *testing.T) {
	f := mustFleet(t, Config{
		Nodes:        []NodeSpec{{Device: "jetson", Count: 3}},
		BWHeadroom:   1.2,
		CoreHeadroom: 100,
	})
	app, err := btapps.ByName("vision")
	if err != nil {
		t.Fatal(err)
	}
	// One vision fits per jetson; fill all three.
	for i := 0; i < 3; i++ {
		if _, err := f.Place(app, runtime.AdmitOptions{Tasks: 2, Hold: true}); err != nil {
			t.Fatalf("fill Place %d: %v", i, err)
		}
	}
	_, err = f.Place(app, runtime.AdmitOptions{Tasks: 2, Hold: true})
	var perr *PlacementError
	if !errors.As(err, &perr) {
		t.Fatalf("Place on a full fleet = %v, want *PlacementError", err)
	}
	var got []string
	for _, r := range perr.Refusals {
		if r.Err == nil {
			t.Fatalf("refusal on %s carries no *runtime.AdmissionError", r.Node)
		}
		got = append(got, r.Node)
	}
	// Equally loaded nodes tie on score, so candidate order is node-ID
	// order — and each node appears exactly once.
	want := []string{"jetson/0", "jetson/1", "jetson/2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("refusal order = %v, want %v", got, want)
	}
}

// pinnedSchedule builds an all-big-core schedule for an application —
// valid on every catalog device — so Admit skips the planning pipeline
// and tests exercise placement, not the optimizer.
func pinnedSchedule(t *testing.T, app *core.Application) *core.Schedule {
	t.Helper()
	sc := core.Schedule{Assign: make([]core.PUClass, len(app.Stages))}
	for i := range sc.Assign {
		sc.Assign[i] = core.ClassBig
	}
	return &sc
}

// TestBandedMatchesExhaustive is the banded-index equivalence pin: on
// randomized fleets of >= 500 nodes, a banded fleet and an exhaustive
// (IndexBands < 0) fleet driven through an identical randomized
// place/depart/drain/uncordon sequence make byte-for-byte identical
// placement decisions.
func TestBandedMatchesExhaustive(t *testing.T) {
	app, err := btapps.ByName("octree")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			nodes := []NodeSpec{
				{Device: "pixel7a", Count: 170},
				{Device: "oneplus11", Count: 170},
				{Device: "jetson", Count: 170},
			}
			banded := mustFleet(t, Config{Nodes: nodes, Seed: seed})
			exhaustive := mustFleet(t, Config{Nodes: nodes, Seed: seed, IndexBands: -1})
			if banded.index == nil || exhaustive.index != nil {
				t.Fatal("index enablement wired backwards")
			}

			rng := rand.New(rand.NewSource(seed))
			sched := pinnedSchedule(t, app)
			var active []string // session names live in both fleets
			depart := func(f *Fleet, name string) {
				s := f.lookupActive(name)
				if s == nil {
					t.Fatalf("session %q not active", name)
				}
				s.Release()
				f.departed(name)
			}
			for op := 0; op < 900; op++ {
				switch r := rng.Float64(); {
				case r < 0.62 || len(active) == 0:
					name := fmt.Sprintf("s%d", op)
					opts := runtime.AdmitOptions{Name: name, Tasks: 2, Hold: true, Schedule: sched}
					pb, errB := banded.Place(app, opts)
					pe, errE := exhaustive.Place(app, opts)
					if (errB == nil) != (errE == nil) {
						t.Fatalf("op %d: banded err %v, exhaustive err %v", op, errB, errE)
					}
					if errB != nil {
						var prB, prE *PlacementError
						if !errors.As(errB, &prB) || !errors.As(errE, &prE) {
							t.Fatalf("op %d: non-admission failure: %v / %v", op, errB, errE)
						}
						if !reflect.DeepEqual(refusalNodes(prB), refusalNodes(prE)) {
							t.Fatalf("op %d: refusal orders diverge:\n%v\n%v",
								op, refusalNodes(prB), refusalNodes(prE))
						}
						continue
					}
					if pb.Node.ID != pe.Node.ID || pb.Choice != pe.Choice {
						t.Fatalf("op %d: banded placed %s choice %d, exhaustive %s choice %d",
							op, pb.Node.ID, pb.Choice, pe.Node.ID, pe.Choice)
					}
					active = append(active, name)
				case r < 0.92:
					i := rng.Intn(len(active))
					name := active[i]
					active = append(active[:i], active[i+1:]...)
					depart(banded, name)
					depart(exhaustive, name)
				default:
					id := fmt.Sprintf("jetson/%d", rng.Intn(170))
					if banded.Drained(id) {
						if err := banded.Uncordon(id); err != nil {
							t.Fatal(err)
						}
						if err := exhaustive.Uncordon(id); err != nil {
							t.Fatal(err)
						}
						break
					}
					mb, errB := banded.Drain(id)
					me, errE := exhaustive.Drain(id)
					if errB != nil || errE != nil {
						t.Fatalf("op %d: drain %s: %v / %v", op, id, errB, errE)
					}
					if mb != me {
						t.Fatalf("op %d: drain %s migrated %d banded vs %d exhaustive", op, id, mb, me)
					}
				}
			}
			sb, se := banded.Stats(), exhaustive.Stats()
			sb.Latency, se.Latency = nil, nil
			rawB, _ := json.Marshal(sb)
			rawE, _ := json.Marshal(se)
			if !bytes.Equal(rawB, rawE) {
				t.Fatalf("final stats diverge:\nbanded:     %s\nexhaustive: %s", rawB, rawE)
			}
			if sb.Placed < 500 {
				t.Fatalf("only %d placements exercised, want a fleet-scale workload", sb.Placed)
			}
		})
	}
}

func refusalNodes(perr *PlacementError) []string {
	out := make([]string, len(perr.Refusals))
	for i, r := range perr.Refusals {
		out[i] = r.Node
	}
	return out
}

// lockstepReplay is the historical hand-rolled replay loop, kept here
// as the reference semantics the DES-backed ReplayWith must reproduce
// byte-for-byte (TestReplayMatchesLockstepReference). It predates the
// banded index, so run it only on IndexBands < 0 fleets.
func lockstepReplay(t *testing.T, f *Fleet, tr Trace) ReplayResult {
	t.Helper()
	type replayEvent struct {
		at        float64
		departure bool
		seq       int
	}
	events := make([]replayEvent, 0, 2*len(tr.Arrivals))
	for i, a := range tr.Arrivals {
		events = append(events,
			replayEvent{at: a.At, seq: i},
			replayEvent{at: a.At + a.Dwell, departure: true, seq: i},
		)
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		if events[a].departure != events[b].departure {
			return events[a].departure
		}
		return events[a].seq < events[b].seq
	})
	res := ReplayResult{
		Arrivals: len(tr.Arrivals),
		Records:  make([]PlacementRecord, len(tr.Arrivals)),
	}
	sessions := make([]*runtime.Session, len(tr.Arrivals))
	for _, ev := range events {
		a := tr.Arrivals[ev.seq]
		rec := &res.Records[ev.seq]
		if ev.departure {
			s := sessions[ev.seq]
			if s == nil {
				continue
			}
			s.Start()
			r := s.Wait()
			if r.Err != nil {
				t.Fatalf("lockstep reference: session %s: %v", r.Name, r.Err)
			}
			rec.Elapsed = r.Elapsed
			f.observeLatency(r.Elapsed)
			continue
		}
		rec.Seq = ev.seq
		rec.At = a.At
		rec.App = a.App
		rec.Session = fmt.Sprintf("%s#%d", a.App, ev.seq)
		app, err := btapps.ByName(a.App)
		if err != nil {
			t.Fatalf("lockstep reference: arrival %d: %v", ev.seq, err)
		}
		p, err := f.Place(app, runtime.AdmitOptions{
			Name:  rec.Session,
			Tasks: a.Tasks,
			Seed:  a.Seed,
			Hold:  true,
		})
		if err != nil {
			var perr *PlacementError
			if !errors.As(err, &perr) {
				t.Fatalf("lockstep reference: %v", err)
			}
			rec.Rejected = true
			rec.Reason = perr.Error()
			res.Rejected++
			continue
		}
		sessions[ev.seq] = p.Session
		rec.Node = p.Node.ID
		rec.Choice = p.Choice
		res.Placed++
		if p.Choice > 0 {
			res.Spilled++
		}
	}
	res.P50 = f.latency.Quantile(0.50).Seconds()
	res.P99 = f.latency.Quantile(0.99).Seconds()
	return res
}

// TestReplayMatchesLockstepReference is the refactor's acceptance pin:
// the DES-backed Replay (with the banded index on, its default) is
// byte-identical to the historical lockstep loop over an exhaustive
// fleet, on both the canonical bursty trace and the CI smoke workload.
func TestReplayMatchesLockstepReference(t *testing.T) {
	cases := map[string]struct {
		cfg Config
		gen GenConfig
	}{
		"bursty": {
			cfg: Config{
				Nodes: []NodeSpec{
					{Device: "pixel7a", Count: 1},
					{Device: "oneplus11", Count: 1},
					{Device: "jetson", Count: 1},
				},
				Seed:          11,
				CacheCapacity: 64,
			},
			gen: GenConfig{
				Pattern: PatternBursty, Arrivals: 6, Burst: 3, BurstEvery: 40,
				Apps: []string{"octree", "alexnet-sparse"}, MeanDwell: 5, Tasks: 4, Seed: 11,
			},
		},
		"ci-smoke": {
			cfg: Config{
				Nodes: []NodeSpec{
					{Device: "jetson", Count: 1},
					{Device: "pixel7a", Count: 1},
					{Device: "oneplus11", Count: 1},
				},
				Seed:         7,
				BWHeadroom:   1.0,
				CoreHeadroom: 100,
			},
			gen: GenConfig{
				Pattern: PatternBursty, Arrivals: 6, Burst: 3,
				Apps: []string{"vision", "octree"}, Seed: 7,
			},
		},
	}
	for name, tc := range cases {
		tc := tc
		t.Run(name, func(t *testing.T) {
			tr, err := Generate(tc.gen)
			if err != nil {
				t.Fatal(err)
			}
			refCfg := tc.cfg
			refCfg.IndexBands = -1
			ref := lockstepReplay(t, mustFleet(t, refCfg), tr)
			des, err := mustFleet(t, tc.cfg).Replay(tr)
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			rawRef, _ := json.Marshal(ref)
			rawDES, _ := json.Marshal(des)
			if !bytes.Equal(rawRef, rawDES) {
				t.Fatalf("DES replay diverged from lockstep reference:\nlockstep: %s\nDES:      %s", rawRef, rawDES)
			}
		})
	}
}

// TestReplayZeroDwell pins the zero-dwell edge the lockstep loop had:
// the departure event fires before its own arrival at the same instant,
// finds no session, and the arrival's reservation is simply left held —
// Elapsed stays zero and the replay still completes.
func TestReplayZeroDwell(t *testing.T) {
	f := mustFleet(t, Config{Nodes: []NodeSpec{{Device: "pixel7a", Count: 1}}})
	tr := Trace{Arrivals: []Arrival{
		{At: 0, App: "octree", Dwell: 0, Tasks: 2},
		{At: 1, App: "octree", Dwell: 1, Tasks: 2},
	}}
	res, err := f.Replay(tr)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.Placed != 2 {
		t.Fatalf("placed = %d, want 2", res.Placed)
	}
	if res.Records[0].Elapsed != 0 {
		t.Fatalf("zero-dwell record ran: %+v", res.Records[0])
	}
	if res.Records[1].Elapsed <= 0 {
		t.Fatalf("dwelling record never ran: %+v", res.Records[1])
	}
}

// TestDrainMigratesHeldSessions pins the drain state machine: held
// sessions move place-elsewhere-then-release, counters and events
// record the moves, and Uncordon restores the node to placement.
func TestDrainMigratesHeldSessions(t *testing.T) {
	stream := obs.NewStream(64)
	f := mustFleet(t, Config{
		Nodes: []NodeSpec{
			{Device: "jetson", Count: 1},
			{Device: "pixel7a", Count: 1},
		},
		Events: stream,
	})
	app, err := btapps.ByName("octree")
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Place(app, runtime.AdmitOptions{Name: "mig", Tasks: 2, Hold: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Node.ID != "jetson/0" {
		t.Fatalf("setup placement on %s, want jetson/0", p.Node.ID)
	}

	moved, err := f.Drain("jetson/0")
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if moved != 1 {
		t.Fatalf("Drain migrated %d sessions, want 1", moved)
	}
	if !f.Drained("jetson/0") {
		t.Fatal("jetson/0 not marked drained")
	}
	// The reservation now lives on the other node; the old one released.
	if s := f.lookupActive("mig"); s == nil || !s.Held() {
		t.Fatal("migrated session is not an active held reservation")
	} else if f.active["mig"].node.ID != "pixel7a/0" {
		t.Fatalf("migrated session on %s, want pixel7a/0", f.active["mig"].node.ID)
	}
	if p.Session.Held() {
		t.Fatal("source reservation was never released")
	}
	s := f.Stats()
	if s.Migrations != 1 || s.Drained != 1 {
		t.Fatalf("stats migrations=%d drained=%d, want 1/1", s.Migrations, s.Drained)
	}
	if !s.PerNode[0].Drained || s.PerNode[1].Drained {
		t.Fatalf("per-node drained flags = %v/%v, want jetson only", s.PerNode[0].Drained, s.PerNode[1].Drained)
	}
	if s.PerNode[0].Headroom.ResidentCount != 0 {
		t.Fatalf("drained jetson still holds %d residents", s.PerNode[0].Headroom.ResidentCount)
	}

	// Placement skips the drained node even though it is now idle.
	p2, err := f.Place(app, runtime.AdmitOptions{Tasks: 2, Hold: true})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Node.ID != "pixel7a/0" || p2.Choice != 0 {
		t.Fatalf("post-drain placement = %s choice %d, want pixel7a/0 choice 0", p2.Node.ID, p2.Choice)
	}

	// Draining again is a no-op; uncordon restores placement eligibility.
	if moved, err := f.Drain("jetson/0"); err != nil || moved != 0 {
		t.Fatalf("re-drain = %d, %v; want 0, nil", moved, err)
	}
	if err := f.Uncordon("jetson/0"); err != nil {
		t.Fatalf("Uncordon: %v", err)
	}
	if f.Drained("jetson/0") {
		t.Fatal("jetson/0 still drained after Uncordon")
	}
	p3, err := f.Place(app, runtime.AdmitOptions{Tasks: 2, Hold: true})
	if err != nil {
		t.Fatal(err)
	}
	if p3.Node.ID != "jetson/0" {
		t.Fatalf("post-uncordon placement = %s, want the idle jetson/0", p3.Node.ID)
	}

	var drains, migrates []string
	for _, e := range stream.Recent(0) {
		switch e.Kind {
		case obs.KindDrain:
			drains = append(drains, e.Detail)
		case obs.KindMigrate:
			migrates = append(migrates, e.Session+": "+e.Detail)
		}
	}
	wantDrains := []string{"node=jetson/0 migrated=1", "node=jetson/0 uncordoned"}
	if !reflect.DeepEqual(drains, wantDrains) {
		t.Fatalf("drain events = %v, want %v", drains, wantDrains)
	}
	wantMigrates := []string{"mig: from=jetson/0 to=pixel7a/0"}
	if !reflect.DeepEqual(migrates, wantMigrates) {
		t.Fatalf("migrate events = %v, want %v", migrates, wantMigrates)
	}
}

// TestDrainStrandedSessionStays pins the no-target path: a session no
// other node can admit stays on the drained node, Rebalance keeps
// retrying without error, and nothing is silently dropped.
func TestDrainStrandedSessionStays(t *testing.T) {
	f := mustFleet(t, Config{
		Nodes: []NodeSpec{
			{Device: "jetson", Count: 1},
			{Device: "pixel7a", Count: 1},
		},
		BWHeadroom:   1.0,
		CoreHeadroom: 100,
	})
	app, err := btapps.ByName("vision")
	if err != nil {
		t.Fatal(err)
	}
	// Vision does not fit the jetson at 1.0 bandwidth headroom, so it
	// spills to the pixel — and can never migrate back.
	p, err := f.Place(app, runtime.AdmitOptions{Name: "stuck", Tasks: 2, Hold: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Node.ID != "pixel7a/0" {
		t.Fatalf("setup placement on %s, want pixel7a/0", p.Node.ID)
	}
	moved, err := f.Drain("pixel7a/0")
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if moved != 0 {
		t.Fatalf("Drain migrated %d, want 0 (no node can admit vision)", moved)
	}
	if f.active["stuck"].node.ID != "pixel7a/0" || !p.Session.Held() {
		t.Fatal("stranded session should remain held on the drained node")
	}
	if moved, err := f.Rebalance(); err != nil || moved != 0 {
		t.Fatalf("Rebalance = %d, %v; want 0, nil", moved, err)
	}
	if s := f.Stats(); s.Migrations != 0 || s.Drained != 1 {
		t.Fatalf("stats migrations=%d drained=%d, want 0/1", s.Migrations, s.Drained)
	}
}

// TestDrainUnknownNode pins the error paths.
func TestDrainUnknownNode(t *testing.T) {
	f := mustFleet(t, Config{Nodes: []NodeSpec{{Device: "pixel7a", Count: 1}}})
	if _, err := f.Drain("nope/0"); err == nil {
		t.Fatal("Drain accepted an unknown node")
	}
	if err := f.Uncordon("nope/0"); err == nil {
		t.Fatal("Uncordon accepted an unknown node")
	}
	if f.Drained("nope/0") {
		t.Fatal("unknown node reports drained")
	}
}

// TestReplayWithDrainDeterministic pins the control-plane events on the
// DES timeline: a drain mid-replay (with rebalance sweeps and stats
// sampling scheduled) replays byte-identically, records the drain, and
// keeps every arrival accounted for.
func TestReplayWithDrainDeterministic(t *testing.T) {
	run := func() ([]byte, ReplayResult) {
		f := mustFleet(t, Config{
			Nodes: []NodeSpec{
				{Device: "pixel7a", Count: 1},
				{Device: "oneplus11", Count: 1},
				{Device: "jetson", Count: 1},
			},
			Seed:          11,
			CacheCapacity: 64,
		})
		tr, err := Generate(GenConfig{
			Pattern: PatternBursty, Arrivals: 6, Burst: 3, BurstEvery: 40,
			Apps: []string{"octree", "alexnet-sparse"}, MeanDwell: 5, Tasks: 4, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.ReplayWith(tr, ReplayOptions{
			DrainNode:      "pixel7a/0",
			DrainAt:        0.5,
			RebalanceEvery: 13,
			SampleEvery:    17,
		})
		if err != nil {
			t.Fatalf("ReplayWith: %v", err)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return raw, res
	}
	rawA, resA := run()
	rawB, _ := run()
	if !bytes.Equal(rawA, rawB) {
		t.Fatalf("drain replays diverged:\n%s\n%s", rawA, rawB)
	}
	if len(resA.Drains) != 1 || resA.Drains[0].Node != "pixel7a/0" || resA.Drains[0].At != 0.5 {
		t.Fatalf("drain record = %+v, want one pixel7a/0 drain at 0.5", resA.Drains)
	}
	if len(resA.Samples) == 0 {
		t.Fatal("no counter samples recorded")
	}
	last := resA.Samples[len(resA.Samples)-1]
	if last.Arrivals == 0 {
		t.Fatalf("final sample saw no arrivals: %+v", last)
	}
	if resA.Placed+resA.Rejected != resA.Arrivals {
		t.Fatalf("arrivals unaccounted: %+v", resA)
	}
	// No arrival may land on the drained node after the drain instant.
	for _, rec := range resA.Records {
		if rec.At > 0.5 && rec.Node == "pixel7a/0" {
			t.Fatalf("arrival at %v landed on the drained node: %+v", rec.At, rec)
		}
	}
}
