// Package fleet is the many-device control plane over the per-device
// runtime layer: admission stops being a single-SoC decision and becomes
// a traffic-routing problem across a registry of simulated devices.
//
// The split mirrors a capacity-planning/provisioning architecture:
//
//   - The registry holds N nodes, each wrapping one internal/runtime
//     Runtime bound to a fresh soc.Catalog device. Nodes advertise
//     headroom through the runtime's admission accounting — exactly the
//     projected steady-state DRAM-bandwidth/PU-core demand Admit checks
//     applicants against.
//   - The placement service ranks candidate nodes by projected
//     interference headroom (per-device-class affinity first, normalized
//     resource slack second) and reserves by admitting: a refusal is a
//     typed *runtime.AdmissionError, and placement spills over to the
//     next-ranked node instead of failing the arrival.
//   - Sessions land held (runtime.AdmitOptions.Hold): the reservation
//     occupies capacity and shapes co-residents' interference
//     environments immediately, while execution is released on the
//     replay's logical clock — which is what makes a fleet replay
//     deterministic enough to compare byte-for-byte across runs.
//
// Arrival generation (seeded Poisson and bursty patterns) and trace
// replay live in this package too; cmd/btfleet is the CLI over them.
// Fleet-level counters export through internal/obs as the bt_fleet_*
// Prometheus families and KindPlace events on the shared stream.
package fleet

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"bettertogether/internal/core"
	"bettertogether/internal/metrics"
	"bettertogether/internal/obs"
	"bettertogether/internal/obs/sessiontrace"
	"bettertogether/internal/onlineprof"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/runtime"
	"bettertogether/internal/schedcache"
	"bettertogether/internal/soc"
)

// NodeSpec declares one device class's population in the registry.
type NodeSpec struct {
	// Device is the soc catalog name (pixel7a, oneplus11, jetson,
	// jetson-lp).
	Device string
	// Count is how many independent nodes of this class to register.
	Count int
}

// Config configures a Fleet.
type Config struct {
	// Nodes declares the registry, in declaration order. Required.
	Nodes []NodeSpec
	// Engine executes every node's session waves; nil selects
	// pipeline.SimEngine (the deterministic replay path).
	Engine pipeline.Engine
	// Seed derives each node runtime's noise stream: node i uses
	// Seed + i*nodeSeedStride, so populations are heterogeneous but
	// reproducible.
	Seed int64
	// BWHeadroom, CoreHeadroom, ReplanDelta, ProfileReps, AutotuneTasks
	// and K forward to every node's runtime.Config (zero values select
	// the runtime defaults).
	BWHeadroom    float64
	CoreHeadroom  float64
	ReplanDelta   float64
	ProfileReps   int
	AutotuneTasks int
	K             int
	// CacheCapacity, when positive, shares one schedule cache across all
	// node runtimes — recurring (app, device-class, env) tuples then hit
	// across the whole fleet, not just within a node. CacheBucket is its
	// Env quantization width (0 selects the schedcache default).
	CacheCapacity int
	CacheBucket   float64
	// Affinity maps an application name to its preferred device class:
	// placement ranks matching nodes ahead of the rest, and spillover
	// crosses into non-preferred classes only when every preferred node
	// refuses. Unlisted applications rank purely by headroom.
	Affinity map[string]string
	// IndexBands sizes the banded placement index: scores quantize into
	// this many headroom bands so an arrival sweeps best-band-first
	// instead of scoring the whole registry. 0 selects
	// DefaultIndexBands; negative disables the index entirely and every
	// arrival falls back to the exhaustive O(nodes) rank — the reference
	// order the index is equivalence-tested against.
	IndexBands int
	// Events, when non-nil, receives every node runtime's events plus the
	// fleet's own KindPlace placement decisions and KindReject fleet-wide
	// rejections.
	Events obs.Sink
	// OnlineProf, when non-nil, enables feedback-driven replanning on
	// every node runtime: each node runs its own estimator and drift
	// detector over the shared event stream (events are tagged by
	// session, and session names are fleet-unique).
	OnlineProf *onlineprof.Config
	// Trace, when non-nil, records causal session-lifecycle spans for
	// sampled arrivals: the fleet adds arrival/placement-attempt/
	// migration spans and every node runtime adds its admission, wave,
	// re-plan, and completion spans to the same per-session trace
	// (session names are fleet-unique, so one tracer serves all nodes).
	Trace *sessiontrace.Tracer
}

// nodeSeedStride separates node noise streams; a large odd prime so
// per-session seed offsets (multiples of small primes) never collide
// across nodes.
const nodeSeedStride = 1_000_003

// ParseNodeSpecs parses the CLI registry syntax: a comma-separated list
// of "<device>" or "<device>=<count>" entries, e.g.
// "pixel7a=2,jetson". Device validity is checked at New, not here.
func ParseNodeSpecs(s string) ([]NodeSpec, error) {
	var specs []NodeSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		spec := NodeSpec{Device: part, Count: 1}
		if name, count, ok := strings.Cut(part, "="); ok {
			n, err := strconv.Atoi(strings.TrimSpace(count))
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("fleet: node spec %q: count must be a positive integer", part)
			}
			spec.Device, spec.Count = strings.TrimSpace(name), n
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("fleet: node spec %q declares no nodes", s)
	}
	return specs, nil
}

// ParseAffinity parses the CLI affinity syntax: a comma-separated list
// of "<app>=<device>" pairs, e.g. "vision=jetson,octree=pixel7a".
func ParseAffinity(s string) (map[string]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		app, dev, ok := strings.Cut(part, "=")
		app, dev = strings.TrimSpace(app), strings.TrimSpace(dev)
		if !ok || app == "" || dev == "" {
			return nil, fmt.Errorf("fleet: affinity %q: want <app>=<device>", part)
		}
		out[app] = dev
	}
	return out, nil
}

// Node is one registry entry: a catalog device with its own runtime.
type Node struct {
	// ID is fleet-unique: "<device>/<k>" with k the per-class ordinal.
	ID string
	// Device is the node's freshly constructed catalog device.
	Device *soc.Device
	// RT is the node's runtime; all placement goes through its Admit.
	RT *runtime.Runtime

	placed   int  // sessions landed here (fleet mu)
	rejected int  // admission refusals incl. spillover probes (fleet mu)
	drained  bool // cordoned out of placement (fleet mu)
}

// activeSession is the fleet's view of one session it placed and has
// not yet seen depart: enough to re-place it verbatim during a drain
// migration. Guarded by the fleet mutex.
type activeSession struct {
	seq  int // placement sequence, the deterministic migration order
	app  *core.Application
	opts runtime.AdmitOptions
	node *Node
	sess *runtime.Session
}

// Fleet is a registry of device nodes plus the placement service routing
// sessions onto them. Construct with New; place with Place or Replay.
type Fleet struct {
	cfg   Config
	nodes []*Node
	cache *schedcache.Cache

	mu         sync.Mutex
	index      *bandIndex // nil when Config.IndexBands < 0
	active     map[string]*activeSession
	seq        int // placement sequence, names sessions fleet-uniquely
	arrivals   int
	placed     int
	spills     int
	rejected   int
	migrations int
	latency    metrics.Histogram
}

// New validates the configuration and builds the registry: one fresh
// catalog device and runtime per node.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("fleet: config declares no nodes")
	}
	f := &Fleet{cfg: cfg, active: map[string]*activeSession{}}
	if cfg.CacheCapacity > 0 {
		f.cache = schedcache.New(cfg.CacheCapacity, cfg.CacheBucket)
	}
	for _, spec := range cfg.Nodes {
		if spec.Count <= 0 {
			return nil, fmt.Errorf("fleet: node spec %q has count %d", spec.Device, spec.Count)
		}
		for k := 0; k < spec.Count; k++ {
			dev, err := soc.DeviceByName(spec.Device)
			if err != nil {
				return nil, err
			}
			rt, err := runtime.New(dev, f.nodeOptions(cfg, len(f.nodes))...)
			if err != nil {
				return nil, fmt.Errorf("fleet: node %s/%d: %w", spec.Device, k, err)
			}
			f.nodes = append(f.nodes, &Node{
				ID:     fmt.Sprintf("%s/%d", spec.Device, k),
				Device: dev,
				RT:     rt,
			})
		}
	}
	if cfg.IndexBands >= 0 {
		bands := cfg.IndexBands
		if bands == 0 {
			bands = DefaultIndexBands
		}
		f.index = newBandIndex(bands)
		for _, n := range f.nodes {
			f.index.update(n, headroomScore(n.RT.AdmissionHeadroom()))
		}
	}
	return f, nil
}

// nodeByIDLocked resolves a node ID; nil when unknown.
func (f *Fleet) nodeByIDLocked(id string) *Node {
	for _, n := range f.nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// trackLocked records a just-placed session so drains can migrate it
// and departures can unfile it.
func (f *Fleet) trackLocked(name string, app *core.Application, opts runtime.AdmitOptions, n *Node, s *runtime.Session) {
	f.active[name] = &activeSession{seq: f.seq, app: app, opts: opts, node: n, sess: s}
}

// refileLocked refreshes one node's cached score in the banded index
// after its projected demand moved (admit, departure, migration).
// Drained nodes stay unfiled.
func (f *Fleet) refileLocked(n *Node) {
	if f.index == nil || n.drained {
		return
	}
	f.index.update(n, headroomScore(n.RT.AdmissionHeadroom()))
}

// departed unfiles a completed session and refreshes its node's index
// position — the replay departure hook.
func (f *Fleet) departed(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.active[name]
	if !ok {
		return
	}
	delete(f.active, name)
	f.refileLocked(e.node)
}

// nodeOptions maps the fleet configuration onto one node runtime's
// functional options. Zero-valued fleet fields stay absent, so the
// runtime's own defaults apply; set fields are validated by the options
// themselves at New.
func (f *Fleet) nodeOptions(cfg Config, node int) []runtime.Option {
	opts := []runtime.Option{
		runtime.WithSeed(cfg.Seed + int64(node)*nodeSeedStride),
	}
	if cfg.Engine != nil {
		opts = append(opts, runtime.WithEngine(cfg.Engine))
	}
	if cfg.BWHeadroom > 0 || cfg.CoreHeadroom > 0 {
		bw, cores := cfg.BWHeadroom, cfg.CoreHeadroom
		if bw <= 0 {
			bw = runtime.DefaultBWHeadroom
		}
		if cores <= 0 {
			cores = runtime.DefaultCoreHeadroom
		}
		opts = append(opts, runtime.WithHeadroom(bw, cores))
	}
	if cfg.ProfileReps > 0 || cfg.AutotuneTasks > 0 || cfg.K > 0 {
		reps, autotune, k := cfg.ProfileReps, cfg.AutotuneTasks, cfg.K
		if reps <= 0 {
			reps = runtime.DefaultProfileReps
		}
		if autotune <= 0 {
			autotune = runtime.DefaultAutotuneTasks
		}
		if k <= 0 {
			k = runtime.DefaultReplanK
		}
		opts = append(opts, runtime.WithPlanningBudget(reps, autotune, k))
	}
	if cfg.Events != nil {
		opts = append(opts, runtime.WithEvents(cfg.Events))
	}
	if f.cache != nil {
		opts = append(opts, runtime.WithSchedCache(f.cache))
	}
	if cfg.ReplanDelta > 0 {
		opts = append(opts, runtime.WithReplanDelta(cfg.ReplanDelta))
	}
	if cfg.OnlineProf != nil {
		opts = append(opts, runtime.WithOnlineProfiling(*cfg.OnlineProf))
	}
	if cfg.Trace != nil {
		opts = append(opts, runtime.WithSessionTrace(cfg.Trace))
	}
	return opts
}

// ReplansFromDrift sums drift-triggered replans across every node
// runtime (zero when online profiling is disabled).
func (f *Fleet) ReplansFromDrift() int {
	total := 0
	for _, n := range f.nodes {
		total += n.RT.ReplansFromDrift()
	}
	return total
}

// OnlineProfStats merges every node runtime's feedback-loop counters;
// ok is false when online profiling is disabled fleet-wide.
func (f *Fleet) OnlineProfStats() (obs.OnlineProfStats, bool) {
	var out obs.OnlineProfStats
	any := false
	for _, n := range f.nodes {
		s, ok := n.RT.OnlineProfStats()
		if !ok {
			continue
		}
		any = true
		out.Observations += s.Observations
		out.Cells += s.Cells
		out.LatchedCells += s.LatchedCells
		out.DriftsTriggered += s.DriftsTriggered
		out.Invalidations += s.Invalidations
		out.DriftReplans += s.DriftReplans
	}
	return out, any
}

// SLOStats merges every node runtime's deadline-attainment counters;
// ok is false when no deadline-carrying session has completed
// fleet-wide (wire the introspection server's SLO hook only when it is
// true, so zero-deadline runs keep their exposition unchanged).
func (f *Fleet) SLOStats() (obs.SLOStats, bool) {
	var out obs.SLOStats
	any := false
	for _, n := range f.nodes {
		s, ok := n.RT.SLOStats()
		if !ok {
			continue
		}
		any = true
		out.Merge(s)
	}
	return out, any
}

// Nodes returns the registry in declaration order.
func (f *Fleet) Nodes() []*Node { return append([]*Node(nil), f.nodes...) }

// Cache returns the shared schedule cache, nil when planning is uncached.
func (f *Fleet) Cache() *schedcache.Cache { return f.cache }

// Close shuts every node runtime down, stopping resident sessions.
func (f *Fleet) Close() {
	for _, n := range f.nodes {
		n.RT.Close()
	}
}

// observeLatency folds one completed session's elapsed virtual seconds
// into the fleet latency histogram.
func (f *Fleet) observeLatency(elapsedSec float64) {
	f.latency.Observe(time.Duration(elapsedSec * float64(time.Second)))
}

// Stats snapshots the fleet's placement counters and every node's
// admission headroom for export (obs.PromFleet, /metrics).
func (f *Fleet) Stats() obs.FleetStats {
	f.mu.Lock()
	s := obs.FleetStats{
		Nodes:      len(f.nodes),
		Arrivals:   f.arrivals,
		Placed:     f.placed,
		Spills:     f.spills,
		Rejected:   f.rejected,
		Migrations: f.migrations,
		Latency:    &f.latency,
	}
	perNode := make([]obs.FleetNodeStats, len(f.nodes))
	for i, n := range f.nodes {
		perNode[i] = obs.FleetNodeStats{
			ID:       n.ID,
			Device:   n.Device.Name,
			Placed:   n.placed,
			Rejected: n.rejected,
			Drained:  n.drained,
		}
		if n.drained {
			s.Drained++
		}
	}
	f.mu.Unlock()
	// Headroom reads each node runtime's lock; take them outside ours.
	for i, n := range f.nodes {
		perNode[i].Headroom = n.RT.AdmissionHeadroom()
	}
	s.PerNode = perNode
	return s
}

// emit sends one fleet-level event to the configured sink, if any.
func (f *Fleet) emit(kind obs.Kind, fill func(*obs.Event)) {
	if f.cfg.Events == nil {
		return
	}
	e := obs.NewEvent(kind)
	fill(&e)
	f.cfg.Events.Emit(e)
}
