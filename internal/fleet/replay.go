package fleet

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"bettertogether/internal/runtime"
	"bettertogether/pkg/btapps"
)

// PlacementRecord is one arrival's replay outcome, in trace order.
type PlacementRecord struct {
	// Seq is the arrival's index in the trace; At its logical time.
	Seq int     `json:"seq"`
	At  float64 `json:"at"`
	// App and Session identify what arrived.
	App     string `json:"app"`
	Session string `json:"session"`
	// Node is where it landed ("" when rejected); Choice its rank in the
	// candidate sweep (> 0 means spillover).
	Node   string `json:"node"`
	Choice int    `json:"choice"`
	// Rejected marks arrivals no node could admit; Reason carries the
	// fleet-wide refusal summary.
	Rejected bool   `json:"rejected,omitempty"`
	Reason   string `json:"reason,omitempty"`
	// Elapsed is the completed session's modeled latency in virtual
	// seconds (0 for rejected arrivals).
	Elapsed float64 `json:"elapsed"`
}

// ReplayResult aggregates one trace replay.
type ReplayResult struct {
	// Arrivals, Placed, Spilled, Rejected are the fleet-wide counts for
	// this replay.
	Arrivals int `json:"arrivals"`
	Placed   int `json:"placed"`
	Spilled  int `json:"spilled"`
	Rejected int `json:"rejected"`
	// Records holds every arrival's outcome in trace order.
	Records []PlacementRecord `json:"records"`
	// P50 and P99 are completed-session latency quantiles in virtual
	// seconds.
	P50 float64 `json:"p50"`
	P99 float64 `json:"p99"`
}

// RejectionRate is rejected/arrivals rendered without NaN on an empty
// trace.
func (r ReplayResult) RejectionRate() string {
	if r.Arrivals == 0 {
		return "0"
	}
	return strconv.FormatFloat(float64(r.Rejected)/float64(r.Arrivals), 'f', 4, 64)
}

// replayEvent is one edge of the lockstep replay clock.
type replayEvent struct {
	at        float64
	departure bool
	seq       int // trace index
}

// Replay runs a trace through the fleet in logical-time lockstep:
//
//   - An arrival is placed with runtime.AdmitOptions.Hold — planned,
//     admitted, and reserving headroom, but not executing. The
//     reservation immediately shapes every co-resident's interference
//     environment, exactly like a running session would.
//   - A departure starts the held session and waits for it to run to
//     completion before the clock advances.
//
// Departures sort ahead of arrivals at equal times, so capacity freed
// "now" is visible to arrivals "now". Because the Sim engine models
// co-location through the interference environment rather than actual
// concurrency, serializing execution this way changes no modeled
// latency — and makes the whole replay deterministic: one trace, one
// seed, one byte-identical result, every run.
func (f *Fleet) Replay(t Trace) (ReplayResult, error) {
	events := make([]replayEvent, 0, 2*len(t.Arrivals))
	for i, a := range t.Arrivals {
		events = append(events,
			replayEvent{at: a.At, seq: i},
			replayEvent{at: a.At + a.Dwell, departure: true, seq: i},
		)
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		if events[a].departure != events[b].departure {
			return events[a].departure
		}
		return events[a].seq < events[b].seq
	})

	res := ReplayResult{
		Arrivals: len(t.Arrivals),
		Records:  make([]PlacementRecord, len(t.Arrivals)),
	}
	sessions := make([]*runtime.Session, len(t.Arrivals))
	for _, ev := range events {
		a := t.Arrivals[ev.seq]
		rec := &res.Records[ev.seq]
		if ev.departure {
			s := sessions[ev.seq]
			if s == nil {
				continue // rejected on arrival, nothing to depart
			}
			s.Start()
			r := s.Wait()
			if r.Err != nil {
				return res, fmt.Errorf("fleet: replay: session %s: %w", r.Name, r.Err)
			}
			rec.Elapsed = r.Elapsed
			f.observeLatency(r.Elapsed)
			continue
		}
		rec.Seq = ev.seq
		rec.At = a.At
		rec.App = a.App
		rec.Session = fmt.Sprintf("%s#%d", a.App, ev.seq)
		app, err := btapps.ByName(a.App)
		if err != nil {
			return res, fmt.Errorf("fleet: replay: arrival %d: %w", ev.seq, err)
		}
		p, err := f.Place(app, runtime.AdmitOptions{
			Name:  rec.Session,
			Tasks: a.Tasks,
			Seed:  a.Seed,
			Hold:  true,
		})
		if err != nil {
			var perr *PlacementError
			if !errors.As(err, &perr) {
				return res, err
			}
			rec.Rejected = true
			rec.Reason = perr.Error()
			res.Rejected++
			continue
		}
		sessions[ev.seq] = p.Session
		rec.Node = p.Node.ID
		rec.Choice = p.Choice
		res.Placed++
		if p.Choice > 0 {
			res.Spilled++
		}
	}
	res.P50 = f.latency.Quantile(0.50).Seconds()
	res.P99 = f.latency.Quantile(0.99).Seconds()
	return res, nil
}

// Latency exposes the fleet's completed-session latency histogram.
func (f *Fleet) Latency() (p50, p99 time.Duration) {
	return f.latency.Quantile(0.50), f.latency.Quantile(0.99)
}
