package fleet

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"bettertogether/internal/des"
	"bettertogether/internal/metrics"
	"bettertogether/internal/runtime"
	"bettertogether/pkg/btapps"
)

// PlacementRecord is one arrival's replay outcome, in trace order.
type PlacementRecord struct {
	// Seq is the arrival's index in the trace; At its logical time.
	Seq int     `json:"seq"`
	At  float64 `json:"at"`
	// App and Session identify what arrived.
	App     string `json:"app"`
	Session string `json:"session"`
	// Node is where it landed ("" when rejected); Choice its rank in the
	// candidate sweep (> 0 means spillover).
	Node   string `json:"node"`
	Choice int    `json:"choice"`
	// Rejected marks arrivals no node could admit; Reason carries the
	// fleet-wide refusal summary.
	Rejected bool   `json:"rejected,omitempty"`
	Reason   string `json:"reason,omitempty"`
	// Elapsed is the completed session's modeled latency in virtual
	// seconds (0 for rejected arrivals).
	Elapsed float64 `json:"elapsed"`
	// Deadline is the SLO budget applied to this session (arrival's own,
	// else ReplayOptions.SLODeadline); SLO is the verdict, "attained" or
	// "missed", computed at departure. Both absent when no deadline was
	// in play, so zero-deadline replay output is unchanged.
	Deadline float64 `json:"deadline,omitempty"`
	SLO      string  `json:"slo,omitempty"`
}

// DrainRecord is one drain control event's outcome during a replay.
type DrainRecord struct {
	// At is the drain's logical time; Node the cordoned node.
	At   float64 `json:"at"`
	Node string  `json:"node"`
	// Migrated counts held sessions moved off the node by this event.
	Migrated int `json:"migrated"`
}

// SampleRecord is one scheduled stats-sampling event: the fleet's
// placement counters as of a logical instant, letting a replay export
// a time series instead of only a final tally.
type SampleRecord struct {
	At         float64 `json:"at"`
	Arrivals   int     `json:"arrivals"`
	Placed     int     `json:"placed"`
	Spills     int     `json:"spills"`
	Rejected   int     `json:"rejected"`
	Migrations int     `json:"migrations,omitempty"`
}

// ReplayResult aggregates one trace replay.
type ReplayResult struct {
	// Arrivals, Placed, Spilled, Rejected are the fleet-wide counts for
	// this replay.
	Arrivals int `json:"arrivals"`
	Placed   int `json:"placed"`
	Spilled  int `json:"spilled"`
	Rejected int `json:"rejected"`
	// Records holds every arrival's outcome in trace order.
	Records []PlacementRecord `json:"records"`
	// Drains, Migrated and Samples report control-plane activity: one
	// DrainRecord per drain event, total sessions migrated (drains plus
	// rebalance sweeps), and the sampled counter time series. All empty —
	// and absent from the JSON — unless ReplayOptions scheduled them, so
	// a plain Replay's output is unchanged by their existence.
	Drains   []DrainRecord  `json:"drains,omitempty"`
	Migrated int            `json:"migrated,omitempty"`
	Samples  []SampleRecord `json:"samples,omitempty"`
	// P50 and P99 are completed-session latency quantiles in virtual
	// seconds.
	P50 float64 `json:"p50"`
	P99 float64 `json:"p99"`
	// SLO summarizes deadline attainment across the replay's
	// deadline-carrying sessions; nil (and absent from the JSON) unless
	// some arrival carried a deadline or ReplayOptions.SLODeadline was
	// set, so zero-deadline output is byte-identical to the pre-SLO
	// format.
	SLO *SLOSummary `json:"slo,omitempty"`
}

// SLOSummary is a replay's deadline-attainment section: counts over
// completed deadline-carrying sessions (rejected arrivals never ran
// and are excluded, mirroring the runtime's bt_slo_* counters) plus
// their latency quantiles in virtual seconds.
type SLOSummary struct {
	Sessions int     `json:"sessions"`
	Attained int     `json:"attained"`
	Missed   int     `json:"missed"`
	Fraction string  `json:"attained_fraction"`
	P50      float64 `json:"p50"`
	P99      float64 `json:"p99"`
}

// RejectionRate is rejected/arrivals rendered without NaN on an empty
// trace.
func (r ReplayResult) RejectionRate() string {
	if r.Arrivals == 0 {
		return "0"
	}
	return strconv.FormatFloat(float64(r.Rejected)/float64(r.Arrivals), 'f', 4, 64)
}

// ReplayOptions schedules control-plane behavior onto a replay's
// event timeline. The zero value replays the trace alone.
type ReplayOptions struct {
	// DrainNode, when non-empty, drains that node at logical time
	// DrainAt: it is cordoned out of placement and its held sessions
	// migrate elsewhere (place-elsewhere-then-release).
	DrainNode string
	DrainAt   float64
	// RebalanceEvery, when positive, schedules a rebalance sweep every
	// that many logical seconds across the trace horizon, retrying
	// migration for sessions stranded on drained nodes.
	RebalanceEvery float64
	// SampleEvery, when positive, samples the fleet's placement counters
	// every that many logical seconds into ReplayResult.Samples.
	SampleEvery float64
	// SLODeadline, when positive, applies this SLO budget (virtual
	// seconds) to every arrival that does not carry its own
	// Arrival.Deadline. Attainment is computed at each departure and
	// summarized into ReplayResult.SLO.
	SLODeadline float64
}

// Replay event priorities: events sharing a logical timestamp run
// departures first (capacity freed "now" is visible "now"), then
// control-plane events (a drain at t sees t's departures and shapes
// t's arrivals), then arrivals, then stats samples (a sample at t
// reports t's settled state). Within a priority, trace/schedule order
// breaks ties.
const (
	prioDepart = iota
	prioControl
	prioArrival
	prioSample
)

// Replay runs a trace through the fleet in logical time with no
// control-plane events scheduled. It is a thin wrapper over ReplayWith;
// its output is byte-identical to the historical lockstep replay loop
// (pinned by TestReplayDeterministic and the CI smoke comparison).
func (f *Fleet) Replay(t Trace) (ReplayResult, error) {
	return f.ReplayWith(t, ReplayOptions{})
}

// ReplayWith replays a trace on a dedicated discrete-event engine:
// every temporal behavior — arrivals, dwell-expiry departures, drain
// and rebalance sweeps, stats sampling — is a scheduled event on one
// priority-ordered timeline rather than a hand-rolled merge loop.
//
//   - An arrival is placed with runtime.AdmitOptions.Hold — planned,
//     admitted, and reserving headroom, but not executing. The
//     reservation immediately shapes every co-resident's interference
//     environment, exactly like a running session would.
//   - A departure starts the (possibly migrated) held session and waits
//     for it to run to completion before the event loop advances.
//   - Control events (drain, rebalance) move reservations between
//     nodes; a migrated session departs from wherever it lives when its
//     dwell expires.
//
// Because the Sim engine models co-location through the interference
// environment rather than actual concurrency, serializing execution
// this way changes no modeled latency — and makes the whole replay
// deterministic: one trace, one seed, one byte-identical result, every
// run.
func (f *Fleet) ReplayWith(t Trace, opts ReplayOptions) (ReplayResult, error) {
	if opts.DrainNode != "" && opts.DrainAt < 0 {
		return ReplayResult{}, fmt.Errorf("fleet: replay: negative drain time %v", opts.DrainAt)
	}
	if opts.SLODeadline < 0 {
		return ReplayResult{}, fmt.Errorf("fleet: replay: negative SLO deadline %v", opts.SLODeadline)
	}

	res := ReplayResult{
		Arrivals: len(t.Arrivals),
		Records:  make([]PlacementRecord, len(t.Arrivals)),
	}
	startMigrations := f.migrationCount()

	eng := des.New()
	var failed error
	fail := func(err error) {
		if failed == nil {
			failed = err
		}
	}

	// Schedule the trace in order: within a timestamp and priority, seq
	// order equals trace order, reproducing the lockstep loop's stable
	// sort exactly — including the zero-dwell edge where an arrival's
	// own departure fires first and finds no session.
	horizon := 0.0
	sloEnabled := opts.SLODeadline > 0
	for i, a := range t.Arrivals {
		i, a := i, a
		if a.Deadline > 0 {
			sloEnabled = true
		}
		deadline := a.Deadline
		if deadline == 0 {
			deadline = opts.SLODeadline
		}
		if end := a.At + a.Dwell; end > horizon {
			horizon = end
		}
		eng.AtPrio(a.At, prioArrival, func() {
			if failed != nil {
				return
			}
			f.cfg.Trace.AdvanceTo(a.At)
			fail(f.replayArrival(&res, i, a, deadline))
		})
		eng.AtPrio(a.At+a.Dwell, prioDepart, func() {
			if failed != nil {
				return
			}
			f.cfg.Trace.AdvanceTo(a.At + a.Dwell)
			fail(f.replayDeparture(&res.Records[i]))
		})
	}

	if opts.DrainNode != "" {
		at := opts.DrainAt
		eng.AtPrio(at, prioControl, func() {
			if failed != nil {
				return
			}
			f.cfg.Trace.AdvanceTo(at)
			moved, err := f.Drain(opts.DrainNode)
			if err != nil {
				fail(fmt.Errorf("fleet: replay: %w", err))
				return
			}
			res.Drains = append(res.Drains, DrainRecord{At: at, Node: opts.DrainNode, Migrated: moved})
		})
	}
	if opts.RebalanceEvery > 0 {
		for at := opts.RebalanceEvery; at <= horizon; at += opts.RebalanceEvery {
			at := at
			eng.AtPrio(at, prioControl, func() {
				if failed != nil {
					return
				}
				f.cfg.Trace.AdvanceTo(at)
				if _, err := f.Rebalance(); err != nil {
					fail(fmt.Errorf("fleet: replay: rebalance: %w", err))
				}
			})
		}
	}
	if opts.SampleEvery > 0 {
		for at := opts.SampleEvery; at <= horizon; at += opts.SampleEvery {
			at := at
			eng.AtPrio(at, prioSample, func() {
				if failed != nil {
					return
				}
				res.Samples = append(res.Samples, f.sample(at))
			})
		}
	}

	eng.Run()
	res.Migrated = f.migrationCount() - startMigrations
	if failed != nil {
		return res, failed
	}
	res.P50 = f.latency.Quantile(0.50).Seconds()
	res.P99 = f.latency.Quantile(0.99).Seconds()
	if sloEnabled {
		res.SLO = summarizeSLO(res.Records)
	}
	return res, nil
}

// summarizeSLO folds the replay records' per-session verdicts into the
// attainment section. Rejected arrivals never ran, so they carry no
// verdict and are excluded — the counts line up with the runtimes'
// bt_slo_* families.
func summarizeSLO(records []PlacementRecord) *SLOSummary {
	sum := &SLOSummary{}
	var h metrics.Histogram
	for _, rec := range records {
		if rec.SLO == "" {
			continue
		}
		sum.Sessions++
		if rec.SLO == "attained" {
			sum.Attained++
		} else {
			sum.Missed++
		}
		h.Observe(time.Duration(rec.Elapsed * float64(time.Second)))
	}
	if sum.Sessions == 0 {
		sum.Fraction = "0"
	} else {
		sum.Fraction = strconv.FormatFloat(float64(sum.Attained)/float64(sum.Sessions), 'f', 4, 64)
	}
	sum.P50 = h.Quantile(0.50).Seconds()
	sum.P99 = h.Quantile(0.99).Seconds()
	return sum
}

// replayArrival handles one arrival event: resolve the application,
// place it held (carrying its resolved SLO deadline), and record the
// outcome.
func (f *Fleet) replayArrival(res *ReplayResult, i int, a Arrival, deadline float64) error {
	rec := &res.Records[i]
	rec.Seq = i
	rec.At = a.At
	rec.App = a.App
	rec.Session = a.Session
	if rec.Session == "" {
		rec.Session = fmt.Sprintf("%s#%d", a.App, i)
	}
	if deadline > 0 {
		rec.Deadline = deadline
	}
	app, err := btapps.ByName(a.App)
	if err != nil {
		return fmt.Errorf("fleet: replay: arrival %d: %w", i, err)
	}
	p, err := f.Place(app, runtime.AdmitOptions{
		Name:     rec.Session,
		Tasks:    a.Tasks,
		Seed:     a.Seed,
		Hold:     true,
		Deadline: rec.Deadline,
	})
	if err != nil {
		var perr *PlacementError
		if !errors.As(err, &perr) {
			return err
		}
		rec.Rejected = true
		rec.Reason = perr.Error()
		// No session ever existed, so no SLO budget applies; dropping the
		// deadline keeps rejected records free of attainment fields.
		rec.Deadline = 0
		res.Rejected++
		return nil
	}
	rec.Node = p.Node.ID
	rec.Choice = p.Choice
	res.Placed++
	if p.Choice > 0 {
		res.Spilled++
	}
	return nil
}

// replayDeparture handles one dwell-expiry event: start the held
// session — wherever migration may have moved it since placement — run
// it to completion, and fold its latency in. Rejected arrivals have no
// session and depart as no-ops.
func (f *Fleet) replayDeparture(rec *PlacementRecord) error {
	s := f.lookupActive(rec.Session)
	if s == nil {
		return nil
	}
	s.Start()
	r := s.Wait()
	if r.Err != nil {
		return fmt.Errorf("fleet: replay: session %s: %w", r.Name, r.Err)
	}
	rec.Elapsed = r.Elapsed
	if rec.Deadline > 0 {
		if r.Elapsed <= rec.Deadline {
			rec.SLO = "attained"
		} else {
			rec.SLO = "missed"
		}
	}
	f.observeLatency(r.Elapsed)
	f.departed(rec.Session)
	return nil
}

// lookupActive returns the live session currently registered under a
// placement name, nil when it never placed or already departed.
func (f *Fleet) lookupActive(name string) *runtime.Session {
	f.mu.Lock()
	defer f.mu.Unlock()
	if e, ok := f.active[name]; ok {
		return e.sess
	}
	return nil
}

// migrationCount reads the fleet's migration counter.
func (f *Fleet) migrationCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.migrations
}

// sample snapshots the placement counters for one sampling event.
func (f *Fleet) sample(at float64) SampleRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	return SampleRecord{
		At:         at,
		Arrivals:   f.arrivals,
		Placed:     f.placed,
		Spills:     f.spills,
		Rejected:   f.rejected,
		Migrations: f.migrations,
	}
}

// Latency exposes the fleet's completed-session latency histogram.
func (f *Fleet) Latency() (p50, p99 time.Duration) {
	return f.latency.Quantile(0.50), f.latency.Quantile(0.99)
}
