package fleet

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"bettertogether/internal/core"
	"bettertogether/internal/obs"
	"bettertogether/internal/runtime"
)

// PlacementError reports an arrival no node in the fleet could admit.
// Refusals holds each candidate's typed admission error in the order
// placement tried them, so callers can see whether bandwidth or cores
// ran out fleet-wide.
type PlacementError struct {
	// App is the rejected application's name.
	App string
	// Refusals maps the attempt order onto node IDs and their admission
	// errors.
	Refusals []NodeRefusal
}

// NodeRefusal is one node's admission refusal during a placement sweep.
type NodeRefusal struct {
	Node string
	Err  *runtime.AdmissionError
}

// Error implements error.
func (e *PlacementError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: no node admitted %q (%d tried)", e.App, len(e.Refusals))
	for _, r := range e.Refusals {
		fmt.Fprintf(&b, "; %s: %s demand %.2f > %.2f", r.Node, r.Err.Resource, r.Err.Demand, r.Err.Capacity)
	}
	return b.String()
}

// Placement records where one arrival landed.
type Placement struct {
	// Node is the registry node that admitted the session.
	Node *Node
	// Session is the admitted (and, under Hold, not yet started) session.
	Session *runtime.Session
	// Choice is the node's rank in the candidate order placement swept:
	// 0 means first pick, anything above is a spillover past Choice
	// refusals.
	Choice int
}

// candidate pairs a node with its placement score for ranking.
type candidate struct {
	node      *Node
	idx       int // registry index, the deterministic tiebreak
	preferred bool
	score     float64
}

// headroomScore is the interference-headroom objective placement ranks
// by: the node's normalized worst-case slack across the two admission
// resources. 1 is an idle node, 0 a node at capacity, negative an
// oversubscribed one (admissions tolerate projected oversubscription by
// design — headroom factors above 1 — so negatives are reachable and
// still ordered correctly).
func headroomScore(h obs.Headroom) float64 {
	bw := 1.0
	if h.BWCapacityGBs > 0 {
		bw = (h.BWCapacityGBs - h.BWDemandGBs) / h.BWCapacityGBs
	}
	cores := 1.0
	if h.CoresCapacity > 0 {
		cores = (h.CoresCapacity - h.CoresDemand) / h.CoresCapacity
	}
	if cores < bw {
		return cores
	}
	return bw
}

// rank orders the registry for one arrival: nodes of the application's
// affinity class (if configured) ahead of everything else, then by
// descending headroom score, then by registry index so equal scores
// break deterministically.
func (f *Fleet) rank(app string) []candidate {
	affinity := f.cfg.Affinity[app]
	cands := make([]candidate, len(f.nodes))
	for i, n := range f.nodes {
		cands[i] = candidate{
			node:      n,
			idx:       i,
			preferred: affinity != "" && n.Device.Name == affinity,
			score:     headroomScore(n.RT.AdmissionHeadroom()),
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].preferred != cands[b].preferred {
			return cands[a].preferred
		}
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		return cands[a].idx < cands[b].idx
	})
	return cands
}

// Place routes one arrival onto the fleet: candidates are ranked by
// affinity and projected interference headroom, and the application is
// admitted on the first node that accepts it. A node's typed
// *runtime.AdmissionError is a spillover, not a failure — placement
// moves on to the next-ranked candidate and only returns
// *PlacementError once every node has refused. Any other admission
// error (a planning failure, a closed runtime) aborts the sweep and is
// returned as-is.
//
// The session is admitted with the caller's options verbatim; replay
// passes Hold so execution stays on the replay clock.
func (f *Fleet) Place(app *core.Application, opts runtime.AdmitOptions) (*Placement, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.arrivals++
	f.seq++
	if opts.Name == "" {
		opts.Name = fmt.Sprintf("%s#%d", app.Name, f.seq)
	}

	var perr PlacementError
	perr.App = app.Name
	for choice, c := range f.rank(app.Name) {
		s, err := c.node.RT.Admit(app, opts)
		if err == nil {
			c.node.placed++
			f.placed++
			if choice > 0 {
				f.spills++
			}
			f.emit(obs.KindPlace, func(e *obs.Event) {
				e.Session = opts.Name
				e.Detail = fmt.Sprintf("node=%s choice=%d", c.node.ID, choice)
			})
			return &Placement{Node: c.node, Session: s, Choice: choice}, nil
		}
		var aerr *runtime.AdmissionError
		if !errors.As(err, &aerr) {
			return nil, fmt.Errorf("fleet: placing %q on %s: %w", app.Name, c.node.ID, err)
		}
		c.node.rejected++
		perr.Refusals = append(perr.Refusals, NodeRefusal{Node: c.node.ID, Err: aerr})
	}
	f.rejected++
	f.emit(obs.KindReject, func(e *obs.Event) {
		e.Session = opts.Name
		e.Detail = fmt.Sprintf("fleet: all %d nodes refused", len(f.nodes))
	})
	return nil, &perr
}
