package fleet

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"bettertogether/internal/core"
	"bettertogether/internal/obs"
	"bettertogether/internal/runtime"
)

// PlacementError reports an arrival no node in the fleet could admit.
// Refusals holds each candidate's typed admission error in the order
// placement tried them, so callers can see whether bandwidth or cores
// ran out fleet-wide.
type PlacementError struct {
	// App is the rejected application's name.
	App string
	// Refusals maps the attempt order onto node IDs and their admission
	// errors.
	Refusals []NodeRefusal
}

// NodeRefusal is one node's admission refusal during a placement sweep.
type NodeRefusal struct {
	Node string
	Err  *runtime.AdmissionError
}

// Error implements error.
func (e *PlacementError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: no node admitted %q (%d tried)", e.App, len(e.Refusals))
	for _, r := range e.Refusals {
		fmt.Fprintf(&b, "; %s: %s demand %.2f > %.2f", r.Node, r.Err.Resource, r.Err.Demand, r.Err.Capacity)
	}
	return b.String()
}

// Placement records where one arrival landed.
type Placement struct {
	// Node is the registry node that admitted the session.
	Node *Node
	// Session is the admitted (and, under Hold, not yet started) session.
	Session *runtime.Session
	// Choice is the node's rank in the candidate order placement swept:
	// 0 means first pick, anything above is a spillover past Choice
	// refusals.
	Choice int
}

// candidate pairs a node with its placement score for ranking.
type candidate struct {
	node      *Node
	preferred bool
	score     float64
}

// less is the fleet-wide candidate order: affinity-preferred nodes
// first, then descending headroom score, then ascending node ID — the
// explicit, registry-order-independent tie-break for equal scores
// (pinned by TestRankTiesBreakByNodeID). Both the exhaustive rank and
// the banded index sort with it, which is what keeps their sweeps
// identical.
func (c candidate) less(o candidate) bool {
	if c.preferred != o.preferred {
		return c.preferred
	}
	if c.score != o.score {
		return c.score > o.score
	}
	return c.node.ID < o.node.ID
}

// headroomScore is the interference-headroom objective placement ranks
// by: the node's normalized worst-case slack across the two admission
// resources. 1 is an idle node, 0 a node at capacity, negative an
// oversubscribed one (admissions tolerate projected oversubscription by
// design — headroom factors above 1 — so negatives are reachable and
// still ordered correctly).
func headroomScore(h obs.Headroom) float64 {
	bw := 1.0
	if h.BWCapacityGBs > 0 {
		bw = (h.BWCapacityGBs - h.BWDemandGBs) / h.BWCapacityGBs
	}
	cores := 1.0
	if h.CoresCapacity > 0 {
		cores = (h.CoresCapacity - h.CoresDemand) / h.CoresCapacity
	}
	if cores < bw {
		return cores
	}
	return bw
}

// rank orders the registry for one arrival by exhaustively scoring
// every placeable node. It reads every node runtime's headroom — O(n)
// per arrival — so placement only uses it when the banded index is
// disabled (Config.IndexBands < 0); it remains the reference order the
// index is checked against.
func (f *Fleet) rank(app string) []candidate {
	affinity := f.cfg.Affinity[app]
	cands := make([]candidate, 0, len(f.nodes))
	for _, n := range f.nodes {
		if n.drained {
			continue
		}
		cands = append(cands, candidate{
			node:      n,
			preferred: affinity != "" && n.Device.Name == affinity,
			score:     headroomScore(n.RT.AdmissionHeadroom()),
		})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].less(cands[b]) })
	return cands
}

// sweepLocked yields placement candidates for one application in rank
// order until yield returns false, skipping exclude (the migration
// source). With the index enabled only visited bands are scored and
// sorted; otherwise it falls back to the exhaustive rank. Callers hold
// f.mu.
func (f *Fleet) sweepLocked(app string, exclude *Node, yield func(candidate) bool) {
	if f.index != nil {
		f.index.sweep(f.cfg.Affinity[app], func(c candidate) bool {
			if c.node == exclude {
				return true
			}
			return yield(c)
		})
		return
	}
	for _, c := range f.rank(app) {
		if c.node == exclude {
			continue
		}
		if !yield(c) {
			return
		}
	}
}

// tryAdmitLocked offers one application to one candidate node. On
// success it returns the session; on a typed admission refusal it
// records the node's refusal into perr and returns (nil, nil) so the
// sweep moves on; any other error (a planning failure, a closed
// runtime) is fatal.
func (f *Fleet) tryAdmitLocked(c candidate, app *core.Application, opts runtime.AdmitOptions, perr *PlacementError) (*runtime.Session, error) {
	s, err := c.node.RT.Admit(app, opts)
	if err == nil {
		return s, nil
	}
	var aerr *runtime.AdmissionError
	if !errors.As(err, &aerr) {
		return nil, fmt.Errorf("fleet: placing %q on %s: %w", app.Name, c.node.ID, err)
	}
	c.node.rejected++
	f.cfg.Trace.Attempt(opts.Name, c.node.ID, aerr.Error())
	if perr != nil {
		perr.Refusals = append(perr.Refusals, NodeRefusal{Node: c.node.ID, Err: aerr})
	}
	return nil, nil
}

// Place routes one arrival onto the fleet: candidates are ranked by
// affinity and projected interference headroom (via the banded index
// unless disabled), and the application is admitted on the first node
// that accepts it. A node's typed *runtime.AdmissionError is a
// spillover, not a failure — placement moves on to the next-ranked
// candidate and only returns *PlacementError once every node has
// refused. Any other admission error (a planning failure, a closed
// runtime) aborts the sweep and is returned as-is. Drained nodes are
// invisible to the sweep.
//
// The session is admitted with the caller's options verbatim; replay
// passes Hold so execution stays on the replay clock.
func (f *Fleet) Place(app *core.Application, opts runtime.AdmitOptions) (*Placement, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.arrivals++
	f.seq++
	if opts.Name == "" {
		opts.Name = fmt.Sprintf("%s#%d", app.Name, f.seq)
	}
	f.cfg.Trace.Arrived(opts.Name, app.Name)

	perr := &PlacementError{App: app.Name}
	var placed *Placement
	var fatal error
	choice := 0
	f.sweepLocked(app.Name, nil, func(c candidate) bool {
		s, err := f.tryAdmitLocked(c, app, opts, perr)
		if err != nil {
			fatal = err
			return false
		}
		if s != nil {
			placed = &Placement{Node: c.node, Session: s, Choice: choice}
			return false
		}
		choice++
		return true
	})
	if fatal != nil {
		return nil, fatal
	}
	if placed == nil {
		f.rejected++
		f.emit(obs.KindReject, func(e *obs.Event) {
			e.Session = opts.Name
			e.Detail = fmt.Sprintf("fleet: all %d nodes refused", len(perr.Refusals))
		})
		f.cfg.Trace.Rejected(opts.Name, perr.Error())
		return nil, perr
	}
	placed.Node.placed++
	f.placed++
	if placed.Choice > 0 {
		f.spills++
	}
	f.trackLocked(opts.Name, app, opts, placed.Node, placed.Session)
	f.refileLocked(placed.Node)
	f.emit(obs.KindPlace, func(e *obs.Event) {
		e.Session = opts.Name
		e.Detail = fmt.Sprintf("node=%s choice=%d", placed.Node.ID, placed.Choice)
	})
	f.cfg.Trace.Placed(opts.Name, placed.Node.ID, placed.Choice+1)
	return placed, nil
}
