package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"bettertogether/internal/obs"
	"bettertogether/internal/runtime"
	"bettertogether/pkg/btapps"
)

func mustFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(f.Close)
	return f
}

func TestParseNodeSpecs(t *testing.T) {
	specs, err := ParseNodeSpecs("pixel7a=2, jetson ,oneplus11=1")
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeSpec{{Device: "pixel7a", Count: 2}, {Device: "jetson", Count: 1}, {Device: "oneplus11", Count: 1}}
	if !reflect.DeepEqual(specs, want) {
		t.Fatalf("specs = %+v, want %+v", specs, want)
	}
	for _, bad := range []string{"", "  ,  ", "jetson=0", "jetson=-1", "jetson=x"} {
		if _, err := ParseNodeSpecs(bad); err == nil {
			t.Errorf("ParseNodeSpecs(%q) accepted", bad)
		}
	}
}

func TestParseAffinity(t *testing.T) {
	aff, err := ParseAffinity("vision=jetson, octree=pixel7a")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"vision": "jetson", "octree": "pixel7a"}
	if !reflect.DeepEqual(aff, want) {
		t.Fatalf("affinity = %v, want %v", aff, want)
	}
	if aff, err := ParseAffinity("  "); err != nil || aff != nil {
		t.Fatalf("blank affinity = %v, %v; want nil, nil", aff, err)
	}
	for _, bad := range []string{"vision", "=jetson", "vision="} {
		if _, err := ParseAffinity(bad); err == nil {
			t.Errorf("ParseAffinity(%q) accepted", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty registry")
	}
	if _, err := New(Config{Nodes: []NodeSpec{{Device: "pixel7a", Count: 0}}}); err == nil {
		t.Fatal("New accepted a zero-count node spec")
	}
	if _, err := New(Config{Nodes: []NodeSpec{{Device: "no-such-soc", Count: 1}}}); err == nil {
		t.Fatal("New accepted an unknown device class")
	}
}

func TestRegistryShape(t *testing.T) {
	f := mustFleet(t, Config{Nodes: []NodeSpec{
		{Device: "pixel7a", Count: 2},
		{Device: "jetson", Count: 1},
	}})
	nodes := f.Nodes()
	wantIDs := []string{"pixel7a/0", "pixel7a/1", "jetson/0"}
	if len(nodes) != len(wantIDs) {
		t.Fatalf("registry size = %d, want %d", len(nodes), len(wantIDs))
	}
	for i, n := range nodes {
		if n.ID != wantIDs[i] {
			t.Fatalf("node %d ID = %q, want %q", i, n.ID, wantIDs[i])
		}
		if n.RT == nil || n.Device == nil {
			t.Fatalf("node %s missing runtime or device", n.ID)
		}
	}
	// Same-class nodes must not share a device instance: each runtime
	// owns its own interference accounting.
	if nodes[0].Device == nodes[1].Device {
		t.Fatal("pixel7a nodes share one *soc.Device")
	}
}

// TestPlacementPrefersHeadroom pins the scoring order: with one node
// already loaded, the next arrival lands on the idle one.
func TestPlacementPrefersHeadroom(t *testing.T) {
	f := mustFleet(t, Config{Nodes: []NodeSpec{{Device: "jetson", Count: 2}}})
	app, err := btapps.ByName("octree")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := f.Place(app, runtime.AdmitOptions{Tasks: 2, Hold: true})
	if err != nil {
		t.Fatalf("first Place: %v", err)
	}
	if p1.Node.ID != "jetson/0" || p1.Choice != 0 {
		t.Fatalf("first placement = %s choice %d, want jetson/0 choice 0", p1.Node.ID, p1.Choice)
	}
	p2, err := f.Place(app, runtime.AdmitOptions{Tasks: 2, Hold: true})
	if err != nil {
		t.Fatalf("second Place: %v", err)
	}
	if p2.Node.ID != "jetson/1" || p2.Choice != 0 {
		t.Fatalf("second placement = %s choice %d, want jetson/1 choice 0 (idle node outscores loaded)",
			p2.Node.ID, p2.Choice)
	}
}

// TestPlacementSpillover pins the spillover path: when the first-ranked
// node refuses with an admission error, the arrival lands on the next
// candidate and is counted as a spill. Both nodes are idle (tied score,
// node-ID order breaks the tie toward jetson/0), but vision's
// projected DRAM draw (~47.7 GB/s) exceeds the jetson's unscaled 45 GB/s
// while fitting comfortably on the pixel — so the sweep must cross
// nodes.
func TestPlacementSpillover(t *testing.T) {
	stream := obs.NewStream(64)
	f := mustFleet(t, Config{
		Nodes: []NodeSpec{
			{Device: "jetson", Count: 1},
			{Device: "pixel7a", Count: 1},
		},
		BWHeadroom:   1.0,
		CoreHeadroom: 100,
		Events:       stream,
	})
	app, err := btapps.ByName("vision")
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Place(app, runtime.AdmitOptions{Tasks: 2, Hold: true})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if p.Node.ID != "pixel7a/0" || p.Choice != 1 {
		t.Fatalf("placement = %s choice %d, want pixel7a/0 choice 1 (spill past the refusing jetson)",
			p.Node.ID, p.Choice)
	}
	s := f.Stats()
	if s.Placed != 1 || s.Spills != 1 || s.Rejected != 0 {
		t.Fatalf("stats = placed %d spills %d rejected %d, want 1/1/0", s.Placed, s.Spills, s.Rejected)
	}
	if s.PerNode[0].Rejected != 1 {
		t.Fatalf("jetson rejections = %d, want 1 (the spillover probe)", s.PerNode[0].Rejected)
	}
	var placeDetails []string
	for _, e := range stream.Recent(0) {
		if e.Kind == obs.KindPlace {
			placeDetails = append(placeDetails, e.Detail)
		}
	}
	want := []string{"node=pixel7a/0 choice=1"}
	if !reflect.DeepEqual(placeDetails, want) {
		t.Fatalf("place events = %v, want %v", placeDetails, want)
	}
}

// TestPlacementRejectsWhenFull pins the fleet-wide rejection: every node
// refuses, the caller gets a typed *PlacementError naming each refusal.
func TestPlacementRejectsWhenFull(t *testing.T) {
	f := mustFleet(t, Config{
		Nodes:        []NodeSpec{{Device: "jetson", Count: 2}},
		BWHeadroom:   1.2,
		CoreHeadroom: 100,
	})
	app, err := btapps.ByName("vision")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := f.Place(app, runtime.AdmitOptions{Tasks: 2, Hold: true}); err != nil {
			t.Fatalf("Place %d: %v", i, err)
		}
	}
	_, err = f.Place(app, runtime.AdmitOptions{Tasks: 2, Hold: true})
	var perr *PlacementError
	if !errors.As(err, &perr) {
		t.Fatalf("third Place error = %v, want *PlacementError", err)
	}
	if len(perr.Refusals) != 2 {
		t.Fatalf("refusals = %d, want 2", len(perr.Refusals))
	}
	for _, r := range perr.Refusals {
		if r.Err == nil {
			t.Fatalf("refusal on %s has no admission error", r.Node)
		}
	}
	if s := f.Stats(); s.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Rejected)
	}
}

// TestAffinityRanksPreferredClassFirst pins the affinity policy: a
// preferred device class outranks better-scoring nodes of other classes,
// and spillover still crosses class boundaries when the preferred class
// is full.
func TestAffinityRanksPreferredClassFirst(t *testing.T) {
	f := mustFleet(t, Config{
		Nodes: []NodeSpec{
			{Device: "pixel7a", Count: 1}, // registry-first: wins without affinity
			{Device: "jetson", Count: 1},
		},
		BWHeadroom:   1.2,
		CoreHeadroom: 100,
		Affinity:     map[string]string{"vision": "jetson"},
	})
	app, err := btapps.ByName("vision")
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Place(app, runtime.AdmitOptions{Tasks: 2, Hold: true})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if p.Node.Device.Name != "jetson" || p.Choice != 0 {
		t.Fatalf("affine placement = %s choice %d, want jetson first", p.Node.ID, p.Choice)
	}
	// Preferred class now full: the next vision spills to the pixel.
	p, err = f.Place(app, runtime.AdmitOptions{Tasks: 2, Hold: true})
	if err != nil {
		t.Fatalf("spill Place: %v", err)
	}
	if p.Node.Device.Name != "pixel7a" || p.Choice == 0 {
		t.Fatalf("cross-class spill = %s choice %d, want pixel7a past the full jetson", p.Node.ID, p.Choice)
	}
}

func TestGenerateDeterministicAndSorted(t *testing.T) {
	cfg := GenConfig{
		Pattern:  PatternPoisson,
		Arrivals: 20,
		Apps:     []string{"octree", "alexnet-sparse"},
		Seed:     7,
	}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config generated different traces")
	}
	prev := 0.0
	for i, arr := range a.Arrivals {
		if arr.At < prev {
			t.Fatalf("arrival %d out of order: %v < %v", i, arr.At, prev)
		}
		prev = arr.At
		if want := cfg.Apps[i%len(cfg.Apps)]; arr.App != want {
			t.Fatalf("arrival %d app = %q, want mix-exact %q", i, arr.App, want)
		}
		if arr.Dwell < 0 {
			t.Fatalf("arrival %d negative dwell %v", i, arr.Dwell)
		}
	}
}

func TestGenerateBurstyClusters(t *testing.T) {
	tr, err := Generate(GenConfig{
		Pattern:    PatternBursty,
		Arrivals:   8,
		Burst:      4,
		BurstEvery: 10,
		Apps:       []string{"octree"},
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two clusters of four: the first within [0, 0.1), the second within
	// [10, 10.1).
	for i, a := range tr.Arrivals {
		epoch := float64(i/4) * 10
		if a.At < epoch || a.At >= epoch+0.1 {
			t.Fatalf("arrival %d at %v outside cluster window [%v, %v)", i, a.At, epoch, epoch+0.1)
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(GenConfig{Apps: []string{"octree"}}); err == nil {
		t.Fatal("Generate accepted zero arrivals")
	}
	if _, err := Generate(GenConfig{Arrivals: 1}); err == nil {
		t.Fatal("Generate accepted an empty app mix")
	}
	if _, err := Generate(GenConfig{Arrivals: 1, Apps: []string{"octree"}, Pattern: "square-wave"}); err == nil {
		t.Fatal("Generate accepted an unknown pattern")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr, err := Generate(GenConfig{Arrivals: 5, Apps: []string{"octree", "vision"}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatal("trace changed across encode/decode")
	}
}

func TestDecodeTraceValidates(t *testing.T) {
	cases := map[string]string{
		"unknown field":   `{"arrivals":[{"at":0,"app":"octree","dwell":1,"bogus":1}]}`,
		"missing app":     `{"arrivals":[{"at":0,"dwell":1}]}`,
		"negative dwell":  `{"arrivals":[{"at":0,"app":"octree","dwell":-1}]}`,
		"order violation": `{"arrivals":[{"at":5,"app":"octree","dwell":1},{"at":1,"app":"octree","dwell":1}]}`,
	}
	for name, raw := range cases {
		if _, err := DecodeTrace(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: DecodeTrace accepted %s", name, raw)
		}
	}
}

// replayOnce builds a fresh 3-node fleet, replays the canonical seeded
// trace, and returns the result serialized to JSON — the byte-level
// artifact the determinism pin compares.
func replayOnce(t *testing.T) ([]byte, ReplayResult, *Fleet) {
	t.Helper()
	f := mustFleet(t, Config{
		Nodes: []NodeSpec{
			{Device: "pixel7a", Count: 1},
			{Device: "oneplus11", Count: 1},
			{Device: "jetson", Count: 1},
		},
		Seed:          11,
		CacheCapacity: 64,
	})
	tr, err := Generate(GenConfig{
		Pattern:    PatternBursty,
		Arrivals:   6,
		Burst:      3,
		BurstEvery: 40,
		Apps:       []string{"octree", "alexnet-sparse"},
		MeanDwell:  5,
		Tasks:      4,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Replay(tr)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return raw, res, f
}

// TestReplayDeterministic is the acceptance pin: two replays of the same
// seeded trace over the same 3-node fleet produce byte-identical
// results.
func TestReplayDeterministic(t *testing.T) {
	rawA, resA, _ := replayOnce(t)
	rawB, _, _ := replayOnce(t)
	if !bytes.Equal(rawA, rawB) {
		t.Fatalf("replays diverged:\n%s\n%s", rawA, rawB)
	}
	if resA.Placed != resA.Arrivals || resA.Rejected != 0 {
		t.Fatalf("replay dropped arrivals: %+v", resA)
	}
	for i, rec := range resA.Records {
		if rec.Elapsed <= 0 {
			t.Fatalf("record %d has no completion latency: %+v", i, rec)
		}
	}
	if resA.P50 <= 0 || resA.P99 < resA.P50 {
		t.Fatalf("degenerate latency quantiles: p50=%v p99=%v", resA.P50, resA.P99)
	}
}

// TestReplayStats pins that Replay feeds the exported FleetStats: the
// counters visible on /metrics match the replay result, the latency
// histogram saw every completion, and per-node placements sum to the
// fleet total.
func TestReplayStats(t *testing.T) {
	_, res, f := replayOnce(t)
	s := f.Stats()
	if s.Arrivals != res.Arrivals || s.Placed != res.Placed ||
		s.Spills != res.Spilled || s.Rejected != res.Rejected {
		t.Fatalf("stats %+v disagree with replay result %+v", s, res)
	}
	if got := s.Latency.Count(); got != uint64(res.Placed) {
		t.Fatalf("latency observations = %d, want %d", got, res.Placed)
	}
	perNode := 0
	for _, n := range s.PerNode {
		perNode += n.Placed
	}
	if perNode != s.Placed {
		t.Fatalf("per-node placements sum to %d, fleet placed %d", perNode, s.Placed)
	}
	// The replay ran every session to completion: no node holds
	// residents, demand drains back to zero.
	for _, n := range s.PerNode {
		if n.Headroom.ResidentCount != 0 {
			t.Fatalf("node %s still holds %d residents after replay", n.ID, n.Headroom.ResidentCount)
		}
	}
}
