package fleet

import (
	"fmt"
	"sort"

	"bettertogether/internal/obs"
)

// Drain cordons a node out of placement and migrates its held sessions
// elsewhere. The state machine per session is
// place-elsewhere-then-release: the session is re-admitted verbatim
// (same options, same name) on the best-ranked other node first, and
// only then is the original reservation released — capacity is never
// dropped before its replacement exists, so a migration can never turn
// a placeable session into a rejected one. Sessions that are already
// executing (or finished) stay put: drain stops new placements, it
// does not kill residents.
//
// Held sessions that no other node can admit remain on the drained
// node; a later Rebalance sweep (or the next drain of another node
// freeing capacity) retries them. Returns how many sessions moved.
// Draining an already-drained node is a no-op.
func (f *Fleet) Drain(nodeID string) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.nodeByIDLocked(nodeID)
	if n == nil {
		return 0, fmt.Errorf("fleet: drain: unknown node %q", nodeID)
	}
	if n.drained {
		return 0, nil
	}
	n.drained = true
	if f.index != nil {
		f.index.remove(n)
	}
	moved, err := f.migrateLocked(n)
	f.emit(obs.KindDrain, func(e *obs.Event) {
		e.Detail = fmt.Sprintf("node=%s migrated=%d", n.ID, moved)
	})
	return moved, err
}

// Uncordon restores a drained node to placement; its sessions that
// never migrated keep their reservations. A no-op on a node that is
// not drained.
func (f *Fleet) Uncordon(nodeID string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.nodeByIDLocked(nodeID)
	if n == nil {
		return fmt.Errorf("fleet: uncordon: unknown node %q", nodeID)
	}
	if !n.drained {
		return nil
	}
	n.drained = false
	f.refileLocked(n)
	f.emit(obs.KindDrain, func(e *obs.Event) {
		e.Detail = fmt.Sprintf("node=%s uncordoned", n.ID)
	})
	return nil
}

// Rebalance retries migration for every drained node's remaining held
// sessions — the periodic control-plane sweep a replay schedules with
// ReplayOptions.RebalanceEvery. Returns the total sessions moved.
func (f *Fleet) Rebalance() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := 0
	for _, n := range f.nodes {
		if !n.drained {
			continue
		}
		moved, err := f.migrateLocked(n)
		total += moved
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Drained reports whether a node is currently cordoned.
func (f *Fleet) Drained(nodeID string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.nodeByIDLocked(nodeID)
	return n != nil && n.drained
}

// migrateLocked moves every migratable held session off one node, in
// placement-sequence order so the outcome is deterministic. Running and
// finished sessions are skipped (finished ones are pruned from the
// active map). Each migration sweeps the other nodes in rank order and
// admits on the first acceptor; refusals everywhere leave the session
// in place. Callers hold f.mu.
func (f *Fleet) migrateLocked(from *Node) (int, error) {
	var entries []*activeSession
	for name, e := range f.active {
		if e.node != from {
			continue
		}
		if !e.sess.Held() {
			select {
			case <-e.sess.Done():
				delete(f.active, name)
			default:
			}
			continue
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].seq < entries[b].seq })

	moved := 0
	for _, e := range entries {
		var to *Node
		var fatal error
		f.sweepLocked(e.app.Name, from, func(c candidate) bool {
			s, err := f.tryAdmitLocked(c, e.app, e.opts, nil)
			if err != nil {
				fatal = err
				return false
			}
			if s != nil {
				to = c.node
				f.cfg.Trace.BeginMigration(e.opts.Name, from.ID)
				e.sess.Release()
				e.node, e.sess = c.node, s
				return false
			}
			return true
		})
		if fatal != nil {
			return moved, fatal
		}
		if to == nil {
			continue
		}
		moved++
		f.migrations++
		f.refileLocked(to)
		f.emit(obs.KindMigrate, func(ev *obs.Event) {
			ev.Session = e.opts.Name
			ev.Detail = fmt.Sprintf("from=%s to=%s", from.ID, to.ID)
		})
		f.cfg.Trace.Migrated(e.opts.Name, from.ID, to.ID)
	}
	return moved, nil
}
