package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
)

// Arrival is one session arriving at the fleet: an application showing
// up at a logical time and dwelling (staying resident) for a while
// before it runs to completion and departs.
type Arrival struct {
	// At is the arrival's logical time in virtual seconds.
	At float64 `json:"at"`
	// App is the application name (pkg/btapps).
	App string `json:"app"`
	// Dwell is how long the session stays resident before departing, in
	// virtual seconds. Departure time is At + Dwell.
	Dwell float64 `json:"dwell"`
	// Tasks is the session's stream length (<= 0 selects the runtime
	// default).
	Tasks int `json:"tasks,omitempty"`
	// Seed drives the session's simulation-noise stream.
	Seed int64 `json:"seed,omitempty"`
	// Session optionally names the session; empty derives the replay
	// default "<app>#<trace-index>". Non-empty names must be unique
	// across the trace (DecodeTrace rejects duplicates — session names
	// key the fleet's active-session tracking and must be fleet-unique).
	Session string `json:"session,omitempty"`
	// Deadline is the session's SLO budget in virtual seconds of modeled
	// execution time. 0 attaches no per-arrival deadline (the replay-wide
	// ReplayOptions.SLODeadline, if set, applies instead); negative
	// values fail DecodeTrace.
	Deadline float64 `json:"deadline,omitempty"`
}

// Trace is a replayable arrival sequence, ordered by At.
type Trace struct {
	// Arrivals in non-decreasing At order.
	Arrivals []Arrival `json:"arrivals"`
}

// Arrival patterns.
const (
	// PatternPoisson draws exponential inter-arrival gaps at a fixed
	// rate — the memoryless open-loop arrival model.
	PatternPoisson = "poisson"
	// PatternBursty clusters arrivals: every BurstEvery seconds a burst
	// of Burst near-simultaneous arrivals lands, the adversarial shape
	// for placement (every burst member sees the same headroom and must
	// be spread by spillover).
	PatternBursty = "bursty"
)

// GenConfig parameterizes Generate.
type GenConfig struct {
	// Pattern selects the arrival process (PatternPoisson or
	// PatternBursty; empty selects Poisson).
	Pattern string
	// Arrivals is the trace length. Required.
	Arrivals int
	// RatePerSec is the Poisson arrival rate (<= 0 selects 1.0).
	RatePerSec float64
	// Burst and BurstEvery shape the bursty pattern: Burst arrivals per
	// cluster (<= 0 selects 4), one cluster every BurstEvery seconds
	// (<= 0 selects 10).
	Burst      int
	BurstEvery float64
	// Apps is the application mix, cycled in order so the mix is exact
	// rather than sampled. Required.
	Apps []string
	// MeanDwell is the mean exponential dwell in virtual seconds
	// (<= 0 selects 30).
	MeanDwell float64
	// Tasks forwards to every arrival (<= 0 leaves the runtime default).
	Tasks int
	// Seed makes the trace reproducible: same config, same trace.
	Seed int64
}

// Generate builds a seeded synthetic arrival trace. All randomness comes
// from one math/rand stream derived from cfg.Seed, so a config is a
// complete description of its trace.
func Generate(cfg GenConfig) (Trace, error) {
	if cfg.Arrivals <= 0 {
		return Trace{}, fmt.Errorf("fleet: generate: arrivals must be positive, got %d", cfg.Arrivals)
	}
	if len(cfg.Apps) == 0 {
		return Trace{}, fmt.Errorf("fleet: generate: empty application mix")
	}
	if cfg.RatePerSec <= 0 {
		cfg.RatePerSec = 1.0
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 4
	}
	if cfg.BurstEvery <= 0 {
		cfg.BurstEvery = 10
	}
	if cfg.MeanDwell <= 0 {
		cfg.MeanDwell = 30
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := Trace{Arrivals: make([]Arrival, 0, cfg.Arrivals)}
	at := 0.0
	for i := 0; i < cfg.Arrivals; i++ {
		switch cfg.Pattern {
		case "", PatternPoisson:
			at += rng.ExpFloat64() / cfg.RatePerSec
		case PatternBursty:
			// Burst k of the cluster lands jittered within a tenth of a
			// second of the cluster's epoch.
			cluster := i / cfg.Burst
			at = float64(cluster)*cfg.BurstEvery + rng.Float64()*0.1
		default:
			return Trace{}, fmt.Errorf("fleet: generate: unknown pattern %q", cfg.Pattern)
		}
		tr.Arrivals = append(tr.Arrivals, Arrival{
			At:    at,
			App:   cfg.Apps[i%len(cfg.Apps)],
			Dwell: rng.ExpFloat64() * cfg.MeanDwell,
			Tasks: cfg.Tasks,
			Seed:  rng.Int63(),
		})
	}
	// Bursty jitter can reorder within a cluster; keep the trace sorted.
	sort.SliceStable(tr.Arrivals, func(a, b int) bool {
		return tr.Arrivals[a].At < tr.Arrivals[b].At
	})
	return tr, nil
}

// Encode writes the trace as indented JSON, the on-disk replay format.
func (t Trace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// DecodeTrace reads a JSON trace and validates it for replay: known
// shape, non-negative times and dwells, non-decreasing arrival order,
// and unique session names. Each violation gets its own descriptive
// error naming the offending arrival and values, so a hand-edited
// trace fails with a pointer to the line that broke it rather than a
// generic rejection.
func DecodeTrace(r io.Reader) (Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return Trace{}, fmt.Errorf("fleet: decode trace: %w", err)
	}
	prev := 0.0
	sessions := map[string]int{}
	for i, a := range t.Arrivals {
		if a.App == "" {
			return Trace{}, fmt.Errorf("fleet: decode trace: arrival %d has no app", i)
		}
		if a.At < 0 {
			return Trace{}, fmt.Errorf("fleet: decode trace: arrival %d has negative time at=%v", i, a.At)
		}
		if a.At < prev {
			return Trace{}, fmt.Errorf("fleet: decode trace: arrival %d at=%v is non-monotonic: earlier than arrival %d at=%v", i, a.At, i-1, prev)
		}
		if a.Dwell < 0 {
			return Trace{}, fmt.Errorf("fleet: decode trace: arrival %d has negative dwell=%v", i, a.Dwell)
		}
		if a.Deadline < 0 {
			return Trace{}, fmt.Errorf("fleet: decode trace: arrival %d has negative deadline=%v", i, a.Deadline)
		}
		if a.Session != "" {
			if j, dup := sessions[a.Session]; dup {
				return Trace{}, fmt.Errorf("fleet: decode trace: arrival %d reuses session ID %q already used by arrival %d", i, a.Session, j)
			}
			sessions[a.Session] = i
		}
		prev = a.At
	}
	return t, nil
}
