package fleet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"bettertogether/internal/obs/sessiontrace"
)

// spillFleetConfig mirrors the CI spillover smoke: tight bandwidth
// headroom over a bursty vision/octree mix, so at least one arrival
// spills past its first-choice node.
func spillFleetConfig() (Config, GenConfig) {
	return Config{
			Nodes: []NodeSpec{
				{Device: "jetson", Count: 1},
				{Device: "pixel7a", Count: 1},
				{Device: "oneplus11", Count: 1},
			},
			Seed:         7,
			BWHeadroom:   1.0,
			CoreHeadroom: 100,
		}, GenConfig{
			Pattern: PatternBursty, Arrivals: 6, Burst: 3,
			Apps: []string{"vision", "octree"}, Seed: 7,
		}
}

func TestReplaySLOAttainment(t *testing.T) {
	cfg, gen := spillFleetConfig()
	tr, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	f := mustFleet(t, cfg)
	res, err := f.ReplayWith(tr, ReplayOptions{SLODeadline: 3})
	if err != nil {
		t.Fatalf("ReplayWith: %v", err)
	}
	if res.SLO == nil {
		t.Fatal("replay with -slo-deadline produced no SLO section")
	}
	completed := 0
	for i, rec := range res.Records {
		if rec.Rejected {
			if rec.SLO != "" || rec.Deadline != 0 {
				t.Fatalf("rejected record %d carries SLO fields: %+v", i, rec)
			}
			continue
		}
		if rec.Deadline != 3 {
			t.Fatalf("record %d deadline %v, want replay-wide 3", i, rec.Deadline)
		}
		if rec.Elapsed <= 0 {
			continue // never departed (held past the horizon)
		}
		completed++
		want := "missed"
		if rec.Elapsed <= rec.Deadline {
			want = "attained"
		}
		if rec.SLO != want {
			t.Fatalf("record %d verdict %q (elapsed %v vs deadline %v)", i, rec.SLO, rec.Elapsed, rec.Deadline)
		}
	}
	if res.SLO.Sessions != completed || res.SLO.Attained+res.SLO.Missed != res.SLO.Sessions {
		t.Fatalf("SLO summary %+v over %d completed sessions", res.SLO, completed)
	}
	if res.SLO.Sessions > 0 && (res.SLO.P50 <= 0 || res.SLO.P99 < res.SLO.P50) {
		t.Fatalf("degenerate SLO quantiles %+v", res.SLO)
	}
	// The fleet-merged runtime counters agree with the replay summary.
	stats, ok := f.SLOStats()
	if !ok {
		t.Fatal("fleet SLOStats disabled after an SLO replay")
	}
	if stats.Sessions != res.SLO.Sessions || stats.Attained != res.SLO.Attained || stats.Missed != res.SLO.Missed {
		t.Fatalf("runtime counters %+v disagree with replay summary %+v", stats, res.SLO)
	}
}

func TestArrivalDeadlineOverridesReplayDefault(t *testing.T) {
	f := mustFleet(t, Config{Nodes: []NodeSpec{{Device: "jetson", Count: 1}}})
	tr := Trace{Arrivals: []Arrival{
		{At: 0, App: "octree", Dwell: 1, Tasks: 2, Deadline: 100},
		{At: 0.5, App: "octree", Dwell: 1, Tasks: 2},
	}}
	res, err := f.ReplayWith(tr, ReplayOptions{SLODeadline: 0.000001})
	if err != nil {
		t.Fatalf("ReplayWith: %v", err)
	}
	if res.Records[0].Deadline != 100 || res.Records[0].SLO != "attained" {
		t.Fatalf("per-arrival deadline ignored: %+v", res.Records[0])
	}
	if res.Records[1].Deadline != 0.000001 || res.Records[1].SLO != "missed" {
		t.Fatalf("replay-wide default not applied: %+v", res.Records[1])
	}
}

func TestReplayNegativeSLODeadline(t *testing.T) {
	f := mustFleet(t, Config{Nodes: []NodeSpec{{Device: "jetson", Count: 1}}})
	if _, err := f.ReplayWith(Trace{}, ReplayOptions{SLODeadline: -1}); err == nil {
		t.Fatal("negative SLO deadline accepted")
	}
}

func TestReplayZeroDeadlineOutputUnchanged(t *testing.T) {
	cfg, gen := spillFleetConfig()
	tr, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mustFleet(t, cfg).Replay(tr)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	raw, _ := json.Marshal(res)
	for _, forbidden := range []string{`"slo"`, `"deadline"`} {
		if bytes.Contains(raw, []byte(forbidden)) {
			t.Fatalf("zero-deadline replay JSON carries %s:\n%s", forbidden, raw)
		}
	}
}

// TestReplayTraceByteIdentical pins the tentpole determinism guarantee:
// the same seed and the same fleet trace produce a byte-identical
// sampled span set across two independent replays.
func TestReplayTraceByteIdentical(t *testing.T) {
	cfg, gen := spillFleetConfig()
	tr, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	replay := func() ([]byte, ReplayResult) {
		tracer := sessiontrace.New(sessiontrace.Config{SampleRate: 1, Seed: cfg.Seed})
		c := cfg
		c.Trace = tracer
		f := mustFleet(t, c)
		res, err := f.ReplayWith(tr, ReplayOptions{SLODeadline: 3})
		if err != nil {
			t.Fatalf("ReplayWith: %v", err)
		}
		raw, err := json.Marshal(tracer.Snapshot())
		if err != nil {
			t.Fatalf("marshal spans: %v", err)
		}
		return raw, res
	}
	rawA, resA := replay()
	rawB, _ := replay()
	if !bytes.Equal(rawA, rawB) {
		t.Fatalf("sampled span sets diverged across replays:\n%s\n%s", rawA, rawB)
	}

	// The smoke config spills, and the spillover session's trace carries
	// the causal chain: refused attempts under the placement span, and a
	// spillover annotation naming the choice rank.
	if resA.Spilled == 0 {
		t.Fatal("spillover config produced no spills; trace assertions are vacuous")
	}
	var docs []sessiontrace.TraceDoc
	if err := json.Unmarshal(rawA, &docs); err != nil {
		t.Fatal(err)
	}
	spilled := false
	for _, d := range docs {
		for _, s := range d.Spans {
			if s.Kind == sessiontrace.KindPlacement && strings.HasPrefix(s.Detail, "spillover") {
				spilled = true
				// The placement span must have at least one refused attempt
				// hanging off it — the causal record of why it spilled.
				attempts := 0
				for _, c := range d.Spans {
					if c.Kind == sessiontrace.KindAttempt && c.Parent == s.ID {
						attempts++
					}
				}
				if attempts == 0 {
					t.Fatalf("spillover trace %s has no refusal attempts under placement", d.Session)
				}
			}
		}
		if d.Verdict == "" {
			t.Fatalf("trace %s finished without a verdict", d.Session)
		}
	}
	if !spilled {
		t.Fatal("no trace recorded a spillover placement")
	}
}

// TestSampledReplaySubset pins partial sampling under a real replay: a
// 0.5-rate tracer retains a strict, deterministic subset of sessions.
func TestSampledReplaySubset(t *testing.T) {
	cfg, gen := spillFleetConfig()
	gen.Arrivals = 12
	tr, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	sampled := func() []string {
		tracer := sessiontrace.New(sessiontrace.Config{SampleRate: 0.5, Seed: cfg.Seed})
		c := cfg
		c.Trace = tracer
		if _, err := mustFleet(t, c).Replay(tr); err != nil {
			t.Fatalf("Replay: %v", err)
		}
		var names []string
		for _, d := range tracer.Snapshot() {
			names = append(names, d.Session)
		}
		return names
	}
	a, b := sampled(), sampled()
	if len(a) == 0 || len(a) == len(tr.Arrivals) {
		t.Fatalf("rate 0.5 sampled %d/%d sessions", len(a), len(tr.Arrivals))
	}
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("sampled sets diverged: %v vs %v", a, b)
	}
}
