package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Len() != 24 || tt.Rank() != 3 || tt.Dim(1) != 3 {
		t.Fatalf("bad metadata: len=%d rank=%d dim1=%d", tt.Len(), tt.Rank(), tt.Dim(1))
	}
	tt.Set(7, 1, 2, 3)
	if tt.At(1, 2, 3) != 7 {
		t.Fatal("Set/At round trip failed")
	}
	if tt.Data[1*12+2*4+3] != 7 {
		t.Fatal("row-major layout violated")
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on zero dimension")
		}
	}()
	New(2, 0)
}

func TestFromSliceSharesBacking(t *testing.T) {
	data := []float32{1, 2, 3, 4}
	tt := FromSlice(data, 2, 2)
	data[0] = 9
	if tt.At(0, 0) != 9 {
		t.Error("FromSlice must share the backing slice")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on size mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestCloneIndependent(t *testing.T) {
	a := New(2, 2)
	a.Set(5, 0, 0)
	b := a.Clone()
	b.Set(9, 0, 0)
	if a.At(0, 0) != 5 {
		t.Error("Clone is not independent")
	}
	if !a.SameShape(b) {
		t.Error("Clone changed shape")
	}
}

func TestSameShape(t *testing.T) {
	if New(2, 3).SameShape(New(3, 2)) {
		t.Error("2x3 vs 3x2 should differ")
	}
	if New(2, 3).SameShape(New(2, 3, 1)) {
		t.Error("rank mismatch should differ")
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-bounds index")
		}
	}()
	New(2, 2).At(0, 2)
}

// referenceConv is an independently written, index-based convolution used
// to cross-check both production implementations.
func referenceConv(spec ConvSpec, src, w *Tensor, b []float32) *Tensor {
	out := New(spec.OutC, spec.OutH(), spec.OutW())
	for oc := 0; oc < spec.OutC; oc++ {
		for oy := 0; oy < spec.OutH(); oy++ {
			for ox := 0; ox < spec.OutW(); ox++ {
				var acc float32
				if b != nil {
					acc = b[oc]
				}
				for ic := 0; ic < spec.InC; ic++ {
					for ky := 0; ky < spec.Kernel; ky++ {
						for kx := 0; kx < spec.Kernel; kx++ {
							iy := oy*spec.Stride - spec.Pad + ky
							ix := ox*spec.Stride - spec.Pad + kx
							if iy < 0 || iy >= spec.InH || ix < 0 || ix >= spec.InW {
								continue
							}
							acc += src.At(ic, iy, ix) * w.At(oc, ic, ky, kx)
						}
					}
				}
				out.Set(acc, oc, oy, ox)
			}
		}
	}
	return out
}

func randomConvCase(rng *rand.Rand) (ConvSpec, *Tensor, *Tensor, []float32) {
	spec := ConvSpec{
		InC:    1 + rng.Intn(4),
		InH:    4 + rng.Intn(8),
		InW:    4 + rng.Intn(8),
		OutC:   1 + rng.Intn(5),
		Kernel: 1 + rng.Intn(3),
		Stride: 1 + rng.Intn(2),
		Pad:    rng.Intn(2),
	}
	src := New(spec.InC, spec.InH, spec.InW)
	src.FillRandom(rng, 1)
	w := New(spec.OutC, spec.InC, spec.Kernel, spec.Kernel)
	w.FillRandom(rng, 1)
	b := make([]float32, spec.OutC)
	for i := range b {
		b[i] = rng.Float32()
	}
	return spec, src, w, b
}

func tensorsClose(a, b *Tensor, tol float64) bool {
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if math.Abs(float64(a.Data[i]-b.Data[i])) > tol {
			return false
		}
	}
	return true
}

func TestConv2DMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		spec, src, w, b := randomConvCase(rng)
		if err := spec.Validate(); err != nil {
			t.Fatalf("trial %d: invalid spec: %v", trial, err)
		}
		got := New(spec.OutC, spec.OutH(), spec.OutW())
		Conv2D(spec, got, src, w, b)
		want := referenceConv(spec, src, w, b)
		if !tensorsClose(got, want, 1e-4) {
			t.Fatalf("trial %d: Conv2D diverges from reference (spec %+v)", trial, spec)
		}
	}
}

func TestConv2DIm2ColMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		spec, src, w, b := randomConvCase(rng)
		direct := New(spec.OutC, spec.OutH(), spec.OutW())
		Conv2D(spec, direct, src, w, b)
		cols := New(spec.InC*spec.Kernel*spec.Kernel, spec.OutH()*spec.OutW())
		gemmed := New(spec.OutC, spec.OutH(), spec.OutW())
		Conv2DIm2Col(spec, gemmed, src, w, cols, b)
		if !tensorsClose(direct, gemmed, 1e-3) {
			t.Fatalf("trial %d: im2col conv diverges from direct (spec %+v)", trial, spec)
		}
	}
}

func TestConv2DRangePartition(t *testing.T) {
	// Computing channel bands separately must equal a single full pass —
	// the invariant the worker-pool split relies on.
	rng := rand.New(rand.NewSource(3))
	spec, src, w, b := randomConvCase(rng)
	spec.OutC = 6
	w = New(spec.OutC, spec.InC, spec.Kernel, spec.Kernel)
	w.FillRandom(rng, 1)
	b = make([]float32, spec.OutC)
	full := New(spec.OutC, spec.OutH(), spec.OutW())
	Conv2D(spec, full, src, w, b)
	split := New(spec.OutC, spec.OutH(), spec.OutW())
	Conv2DRange(spec, split, src, w, b, 0, 2)
	Conv2DRange(spec, split, src, w, b, 2, 5)
	Conv2DRange(spec, split, src, w, b, 5, 6)
	if !tensorsClose(full, split, 0) {
		t.Fatal("range-partitioned conv differs from full conv")
	}
}

func TestConvSpecValidate(t *testing.T) {
	bad := []ConvSpec{
		{InC: 0, InH: 4, InW: 4, OutC: 1, Kernel: 3, Stride: 1},
		{InC: 1, InH: 4, InW: 4, OutC: 0, Kernel: 3, Stride: 1},
		{InC: 1, InH: 4, InW: 4, OutC: 1, Kernel: 0, Stride: 1},
		{InC: 1, InH: 4, InW: 4, OutC: 1, Kernel: 3, Stride: 0},
		{InC: 1, InH: 2, InW: 2, OutC: 1, Kernel: 3, Stride: 1}, // degenerate output
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, s)
		}
	}
	good := ConvSpec{InC: 3, InH: 32, InW: 32, OutC: 64, Kernel: 3, Stride: 1, Pad: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if good.OutH() != 32 || good.OutW() != 32 {
		t.Errorf("same-padding output = %dx%d, want 32x32", good.OutH(), good.OutW())
	}
}

func TestConvSpecFLOPs(t *testing.T) {
	s := ConvSpec{InC: 2, InH: 4, InW: 4, OutC: 3, Kernel: 2, Stride: 2}
	// OH=OW=2; FLOPs = 2*3*2*2*2*2*2 = 192.
	if got := s.FLOPs(); got != 192 {
		t.Errorf("FLOPs = %d, want 192", got)
	}
}

func TestGemmIdentity(t *testing.T) {
	// A × I = A.
	a := []float32{1, 2, 3, 4, 5, 6} // 2x3
	id := []float32{1, 0, 0, 0, 1, 0, 0, 0, 1}
	c := make([]float32, 6)
	Gemm(c, a, id, 2, 3, 3)
	for i := range a {
		if c[i] != a[i] {
			t.Fatalf("A*I mismatch at %d: %v", i, c)
		}
	}
}

func TestGemmKnown(t *testing.T) {
	a := []float32{1, 2, 3, 4} // 2x2
	b := []float32{5, 6, 7, 8} // 2x2
	c := make([]float32, 4)
	Gemm(c, a, b, 2, 2, 2)
	want := []float32{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("Gemm = %v, want %v", c, want)
		}
	}
}

func TestGemmOverwritesC(t *testing.T) {
	a := []float32{1}
	b := []float32{1}
	c := []float32{999}
	Gemm(c, a, b, 1, 1, 1)
	if c[0] != 1 {
		t.Errorf("Gemm must overwrite C, got %v", c[0])
	}
}

func TestMaxPool2DKnown(t *testing.T) {
	spec := PoolSpec{C: 1, H: 4, W: 4, Kernel: 2, Stride: 2}
	src := FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 4, 4)
	dst := New(1, 2, 2)
	MaxPool2D(spec, dst, src)
	want := []float32{4, 8, 12, 16}
	for i := range want {
		if dst.Data[i] != want[i] {
			t.Fatalf("pool = %v, want %v", dst.Data, want)
		}
	}
}

func TestMaxPool2DRangePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	spec := PoolSpec{C: 5, H: 8, W: 8, Kernel: 2, Stride: 2}
	src := New(spec.C, spec.H, spec.W)
	src.FillRandom(rng, 1)
	full := New(spec.C, spec.OutH(), spec.OutW())
	MaxPool2D(spec, full, src)
	split := New(spec.C, spec.OutH(), spec.OutW())
	MaxPool2DRange(spec, split, src, 0, 3)
	MaxPool2DRange(spec, split, src, 3, 5)
	if !tensorsClose(full, split, 0) {
		t.Fatal("range-partitioned pool differs from full pool")
	}
}

func TestMaxPoolDominance(t *testing.T) {
	// Property: every pooled value is >= every value in its window, and
	// equals one of them.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := PoolSpec{C: 1 + rng.Intn(3), H: 4 + rng.Intn(6), W: 4 + rng.Intn(6), Kernel: 2, Stride: 2}
		src := New(spec.C, spec.H, spec.W)
		src.FillRandom(rng, 10)
		dst := New(spec.C, spec.OutH(), spec.OutW())
		MaxPool2D(spec, dst, src)
		for c := 0; c < spec.C; c++ {
			for oy := 0; oy < spec.OutH(); oy++ {
				for ox := 0; ox < spec.OutW(); ox++ {
					got := dst.At(c, oy, ox)
					found := false
					for ky := 0; ky < 2; ky++ {
						for kx := 0; kx < 2; kx++ {
							v := src.At(c, oy*2+ky, ox*2+kx)
							if v > got {
								return false
							}
							if v == got {
								found = true
							}
						}
					}
					if !found {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReLU(t *testing.T) {
	tt := FromSlice([]float32{-1, 0, 2, -3, 4}, 5)
	ReLU(tt, 0, 5)
	want := []float32{0, 0, 2, 0, 4}
	for i := range want {
		if tt.Data[i] != want[i] {
			t.Fatalf("ReLU = %v, want %v", tt.Data, want)
		}
	}
	// Partial range leaves the rest untouched.
	tt2 := FromSlice([]float32{-1, -2, -3}, 3)
	ReLU(tt2, 0, 1)
	if tt2.Data[0] != 0 || tt2.Data[1] != -2 {
		t.Fatalf("partial ReLU = %v", tt2.Data)
	}
}

func TestLinearKnown(t *testing.T) {
	// w = [[1,2],[3,4],[5,6]], src = [1,1], b = [10,20,30]
	w := []float32{1, 2, 3, 4, 5, 6}
	src := []float32{1, 1}
	b := []float32{10, 20, 30}
	dst := make([]float32, 3)
	Linear(dst, src, w, b, 3, 2)
	want := []float32{13, 27, 41}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Linear = %v, want %v", dst, want)
		}
	}
}

func TestLinearRangePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const out, in = 16, 8
	w := make([]float32, out*in)
	src := make([]float32, in)
	for i := range w {
		w[i] = rng.Float32()
	}
	for i := range src {
		src[i] = rng.Float32()
	}
	full := make([]float32, out)
	Linear(full, src, w, nil, out, in)
	split := make([]float32, out)
	LinearRange(split, src, w, nil, in, 0, 5)
	LinearRange(split, src, w, nil, in, 5, 16)
	for i := range full {
		if full[i] != split[i] {
			t.Fatalf("range-partitioned linear differs at %d", i)
		}
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float32{1, 3, 2}) != 1 {
		t.Error("Argmax basic failed")
	}
	if Argmax([]float32{5, 5, 5}) != 0 {
		t.Error("Argmax should return first on ties")
	}
	if Argmax(nil) != -1 {
		t.Error("Argmax(nil) should be -1")
	}
}

func BenchmarkConv2DDirect(b *testing.B) {
	spec := ConvSpec{InC: 16, InH: 16, InW: 16, OutC: 32, Kernel: 3, Stride: 1, Pad: 1}
	rng := rand.New(rand.NewSource(1))
	src := New(spec.InC, spec.InH, spec.InW)
	src.FillRandom(rng, 1)
	w := New(spec.OutC, spec.InC, spec.Kernel, spec.Kernel)
	w.FillRandom(rng, 1)
	dst := New(spec.OutC, spec.OutH(), spec.OutW())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(spec, dst, src, w, nil)
	}
}

func BenchmarkConv2DIm2Col(b *testing.B) {
	spec := ConvSpec{InC: 16, InH: 16, InW: 16, OutC: 32, Kernel: 3, Stride: 1, Pad: 1}
	rng := rand.New(rand.NewSource(1))
	src := New(spec.InC, spec.InH, spec.InW)
	src.FillRandom(rng, 1)
	w := New(spec.OutC, spec.InC, spec.Kernel, spec.Kernel)
	w.FillRandom(rng, 1)
	cols := New(spec.InC*spec.Kernel*spec.Kernel, spec.OutH()*spec.OutW())
	dst := New(spec.OutC, spec.OutH(), spec.OutW())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DIm2Col(spec, dst, src, w, cols, nil)
	}
}
