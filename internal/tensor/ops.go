package tensor

// Gemm computes C = A × B for row-major dense matrices:
// A is m×k, B is k×n, C is m×n. C is overwritten.
// The k-inner loop is ordered for sequential access on both A and B rows
// (ikj loop order), the standard cache-friendly formulation.
func Gemm(c, a, b []float32, m, n, k int) {
	for i := 0; i < m; i++ {
		ci := c[i*n : (i+1)*n]
		for x := range ci {
			ci[x] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				ci[j] += av * bp[j]
			}
		}
	}
}

// PoolSpec describes 2-D max pooling over CHW data.
type PoolSpec struct {
	C, H, W int
	Kernel  int
	Stride  int
}

// OutH returns the pooled output height.
func (s PoolSpec) OutH() int { return (s.H-s.Kernel)/s.Stride + 1 }

// OutW returns the pooled output width.
func (s PoolSpec) OutW() int { return (s.W-s.Kernel)/s.Stride + 1 }

// MaxPool2D max-pools all channels of src [C, H, W] into dst [C, OH, OW].
func MaxPool2D(spec PoolSpec, dst, src *Tensor) {
	MaxPool2DRange(spec, dst, src, 0, spec.C)
}

// MaxPool2DRange pools channels [cLo, cHi) only; the per-channel split is
// what worker pools parallelize.
func MaxPool2DRange(spec PoolSpec, dst, src *Tensor, cLo, cHi int) {
	oh, ow := spec.OutH(), spec.OutW()
	k, st := spec.Kernel, spec.Stride
	sd, dd := src.Data, dst.Data
	for c := cLo; c < cHi; c++ {
		sBase := c * spec.H * spec.W
		dBase := c * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				iy0, ix0 := oy*st, ox*st
				best := sd[sBase+iy0*spec.W+ix0]
				for ky := 0; ky < k; ky++ {
					row := sBase + (iy0+ky)*spec.W
					for kx := 0; kx < k; kx++ {
						if v := sd[row+ix0+kx]; v > best {
							best = v
						}
					}
				}
				dd[dBase+oy*ow+ox] = best
			}
		}
	}
}

// ReLU applies max(0, x) elementwise over [lo, hi) of t.Data in place.
func ReLU(t *Tensor, lo, hi int) {
	d := t.Data
	for i := lo; i < hi; i++ {
		if d[i] < 0 {
			d[i] = 0
		}
	}
}

// Linear computes dst = w × src + b where w is [Out, In] row-major,
// src has In elements and dst has Out elements.
func Linear(dst, src, w, b []float32, out, in int) {
	LinearRange(dst, src, w, b, in, 0, out)
}

// LinearRange computes output rows [oLo, oHi) of a fully-connected layer.
func LinearRange(dst, src, w, b []float32, in, oLo, oHi int) {
	for o := oLo; o < oHi; o++ {
		acc := float32(0)
		if b != nil {
			acc = b[o]
		}
		row := w[o*in : (o+1)*in]
		for i, s := range src {
			acc += row[i] * s
		}
		dst[o] = acc
	}
}

// Argmax returns the index of the largest element of xs (first on ties),
// or -1 for an empty slice; used for classification outputs.
func Argmax(xs []float32) int {
	if len(xs) == 0 {
		return -1
	}
	best, bi := xs[0], 0
	for i, x := range xs[1:] {
		if x > best {
			best, bi = x, i+1
		}
	}
	return bi
}
