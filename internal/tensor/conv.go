package tensor

import "fmt"

// ConvSpec describes a 2-D convolution: weight layout is [OC, IC, K, K],
// input is CHW [IC, H, W], output is CHW [OC, OH, OW] with
// OH = (H + 2*Pad - K)/Stride + 1.
type ConvSpec struct {
	InC, InH, InW int
	OutC          int
	Kernel        int
	Stride        int
	Pad           int
}

// OutH returns the output height for the spec.
func (s ConvSpec) OutH() int { return (s.InH+2*s.Pad-s.Kernel)/s.Stride + 1 }

// OutW returns the output width for the spec.
func (s ConvSpec) OutW() int { return (s.InW+2*s.Pad-s.Kernel)/s.Stride + 1 }

// Validate checks internal consistency of the spec.
func (s ConvSpec) Validate() error {
	switch {
	case s.InC <= 0 || s.InH <= 0 || s.InW <= 0:
		return fmt.Errorf("tensor: invalid input dims %dx%dx%d", s.InC, s.InH, s.InW)
	case s.OutC <= 0:
		return fmt.Errorf("tensor: invalid output channels %d", s.OutC)
	case s.Kernel <= 0 || s.Stride <= 0 || s.Pad < 0:
		return fmt.Errorf("tensor: invalid kernel/stride/pad %d/%d/%d", s.Kernel, s.Stride, s.Pad)
	case s.OutH() <= 0 || s.OutW() <= 0:
		return fmt.Errorf("tensor: degenerate output %dx%d", s.OutH(), s.OutW())
	}
	return nil
}

// FLOPs returns the multiply-add count (counted as 2 ops each) for one
// forward pass, used by the cost models.
func (s ConvSpec) FLOPs() int64 {
	return 2 * int64(s.OutC) * int64(s.OutH()) * int64(s.OutW()) *
		int64(s.InC) * int64(s.Kernel) * int64(s.Kernel)
}

// Conv2D computes dst = conv(src, w) + b over all output channels.
// dst is [OutC, OH, OW]; src is [InC, H, W]; w is [OutC, InC, K, K];
// b is length OutC (may be nil for no bias).
func Conv2D(spec ConvSpec, dst, src, w *Tensor, b []float32) {
	Conv2DRange(spec, dst, src, w, b, 0, spec.OutC)
}

// Conv2DRange computes output channels [ocLo, ocHi) only. This is the
// unit that worker pools split: each simulated core or GPU workgroup
// takes a contiguous band of output channels.
func Conv2DRange(spec ConvSpec, dst, src, w *Tensor, b []float32, ocLo, ocHi int) {
	oh, ow := spec.OutH(), spec.OutW()
	k, st, pad := spec.Kernel, spec.Stride, spec.Pad
	inH, inW, inC := spec.InH, spec.InW, spec.InC
	sd, dd, wd := src.Data, dst.Data, w.Data
	for oc := ocLo; oc < ocHi; oc++ {
		bias := float32(0)
		if b != nil {
			bias = b[oc]
		}
		wBase := oc * inC * k * k
		dBase := oc * oh * ow
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*st - pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*st - pad
				acc := bias
				for ic := 0; ic < inC; ic++ {
					sBase := ic * inH * inW
					wcBase := wBase + ic*k*k
					for ky := 0; ky < k; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= inH {
							continue
						}
						srow := sBase + iy*inW
						wrow := wcBase + ky*k
						for kx := 0; kx < k; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= inW {
								continue
							}
							acc += sd[srow+ix] * wd[wrow+kx]
						}
					}
				}
				dd[dBase+oy*ow+ox] = acc
			}
		}
	}
}

// Im2Col expands src [InC, H, W] into a column matrix of shape
// [InC*K*K, OH*OW] so convolution becomes a GEMM: W[OC, InC*K*K] × cols.
// Out-of-bounds (padding) positions contribute zeros.
func Im2Col(spec ConvSpec, src, cols *Tensor) {
	oh, ow := spec.OutH(), spec.OutW()
	k, st, pad := spec.Kernel, spec.Stride, spec.Pad
	inH, inW := spec.InH, spec.InW
	sd, cd := src.Data, cols.Data
	colW := oh * ow
	for ic := 0; ic < spec.InC; ic++ {
		sBase := ic * inH * inW
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := (ic*k+ky)*k + kx
				cBase := row * colW
				for oy := 0; oy < oh; oy++ {
					iy := oy*st - pad + ky
					for ox := 0; ox < ow; ox++ {
						ix := ox*st - pad + kx
						var v float32
						if iy >= 0 && iy < inH && ix >= 0 && ix < inW {
							v = sd[sBase+iy*inW+ix]
						}
						cd[cBase+oy*ow+ox] = v
					}
				}
			}
		}
	}
}

// Conv2DIm2Col computes the same result as Conv2D via im2col + GEMM,
// the formulation GPUs favor for dense convolution. cols is scratch of
// shape [InC*K*K, OH*OW]; it is overwritten.
func Conv2DIm2Col(spec ConvSpec, dst, src, w, cols *Tensor, b []float32) {
	Im2Col(spec, src, cols)
	m := spec.OutC
	kk := spec.InC * spec.Kernel * spec.Kernel
	n := spec.OutH() * spec.OutW()
	Gemm(dst.Data, w.Data, cols.Data, m, n, kk)
	if b != nil {
		for oc := 0; oc < m; oc++ {
			base := oc * n
			bias := b[oc]
			for i := 0; i < n; i++ {
				dst.Data[base+i] += bias
			}
		}
	}
}
