// Package tensor is the dense linear-algebra substrate for the AlexNet
// workloads (paper Sec. 4.1). It provides float32 tensors and the CNN
// primitives the nine pipeline stages need: 2-D convolution, max-pooling,
// ReLU, fully-connected layers, and GEMM.
//
// Every compute primitive has a Range variant that operates on a
// half-open slice of its outermost parallel dimension. Kernel wrappers in
// internal/apps split those ranges across the worker pool of whichever PU
// the stage is scheduled on, mirroring how the paper's OpenMP and CUDA
// kernels split loop iterations across cores and thread blocks.
package tensor

import (
	"fmt"
	"math/rand"
)

// Tensor is a dense row-major float32 tensor. Shape is immutable after
// construction; Data may be mutated freely. For CNN use the convention is
// CHW for single images and NCHW for batches.
type Tensor struct {
	shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, Data: make([]float32, n)}
}

// FromSlice wraps data with the given shape; the backing slice is shared.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, Data: data}
}

// Shape returns the tensor's dimensions. Callers must not mutate it.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total element count.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Zero resets all elements to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// At returns the element at the given multi-index. Intended for tests and
// small reference paths, not hot loops.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// FillRandom fills the tensor with uniform values in [-scale, scale) from
// the given source, used for deterministic synthetic weights and inputs.
func (t *Tensor) FillRandom(rng *rand.Rand, scale float32) {
	for i := range t.Data {
		t.Data[i] = (rng.Float32()*2 - 1) * scale
	}
}
