package sched

import (
	"testing"

	"bettertogether/internal/apps/alexnet"
	"bettertogether/internal/apps/octree"
	"bettertogether/internal/core"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/profiler"
	"bettertogether/internal/soc"
	"bettertogether/internal/solver"
)

// warmMatrix spans the solver strategy matrix over two applications and
// two devices — the golden grid the cold-vs-warm identity is pinned on.
func warmMatrix() (apps []*core.Application, devs []*soc.Device) {
	apps = []*core.Application{
		octree.NewApplication(8192, octree.UniformGen{}),
		alexnet.NewSparse(alexnet.DefaultSeed, 2),
	}
	devs = []*soc.Device{soc.NewPixel7a(), soc.NewJetson()}
	return
}

func candidatesEqual(a, b []Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Schedule.Equal(b[i].Schedule) ||
			a[i].Predicted != b[i].Predicted || a[i].Gap != b[i].Gap {
			return false
		}
	}
	return true
}

// TestWarmStartCandidatesIdentical is the golden equivalence pin of the
// cache's miss path: across the full strategy matrix, warm-starting the
// optimizer with its own winners (or garbage) returns a candidate list
// byte-identical to the cold run's.
func TestWarmStartCandidatesIdentical(t *testing.T) {
	apps, devs := warmMatrix()
	for _, app := range apps {
		for _, dev := range devs {
			tabs := profiler.ProfileBoth(app, dev, profiler.Config{Reps: 6, Seed: 3})
			for _, strat := range []Strategy{BetterTogether, LatencyOnlyHeavy, LatencyOnlyIsolated} {
				cold := New(app, dev, tabs)
				cold.K = 8
				want := cold.Candidates(strat)
				if len(want) == 0 {
					t.Fatalf("%s/%s/%v: no candidates", app.Name, dev.Name, strat)
				}

				warm := New(app, dev, tabs)
				warm.K = 8
				warm.Search = &solver.SearchStats{}
				warm.WarmStart = []core.Schedule{
					want[0].Schedule,                                // the winner itself
					want[len(want)-1].Schedule,                      // the worst kept candidate
					{Assign: []core.PUClass{}},                      // wrong length: dropped
					{Assign: make([]core.PUClass, len(app.Stages))}, // unknown ("") class: dropped
				}
				got := warm.Candidates(strat)
				if !candidatesEqual(want, got) {
					t.Errorf("%s/%s/%v: warm-started candidates diverge from cold",
						app.Name, dev.Name, strat)
				}
				if warm.Search.Seeded == 0 {
					t.Errorf("%s/%s/%v: no seed accepted despite valid warm schedules",
						app.Name, dev.Name, strat)
				}
			}
		}
	}
}

// TestWarmStartOptimizeIdentical extends the identity through level
// three: the full Optimize pipeline (autotuning included) picks the same
// schedule cold and warm.
func TestWarmStartOptimizeIdentical(t *testing.T) {
	apps, devs := warmMatrix()
	opts := pipeline.Options{Tasks: 8, Warmup: 1, Seed: 5}
	for _, app := range apps {
		for _, dev := range devs {
			tabs := profiler.ProfileBoth(app, dev, profiler.Config{Reps: 6, Seed: 3})
			for _, strat := range []Strategy{BetterTogether, LatencyOnlyHeavy, LatencyOnlyIsolated} {
				cold := New(app, dev, tabs)
				cold.K = 6
				_, _, wantBest, err := cold.Optimize(strat, opts)
				if err != nil {
					t.Fatalf("%s/%s/%v: cold: %v", app.Name, dev.Name, strat, err)
				}

				warm := New(app, dev, tabs)
				warm.K = 6
				warm.WarmStart = []core.Schedule{wantBest.Schedule}
				_, _, gotBest, err := warm.Optimize(strat, opts)
				if err != nil {
					t.Fatalf("%s/%s/%v: warm: %v", app.Name, dev.Name, strat, err)
				}
				if !gotBest.Schedule.Equal(wantBest.Schedule) || gotBest.Predicted != wantBest.Predicted {
					t.Errorf("%s/%s/%v: warm Optimize chose %s (%.9f), cold chose %s (%.9f)",
						app.Name, dev.Name, strat,
						gotBest.Schedule, gotBest.Predicted,
						wantBest.Schedule, wantBest.Predicted)
				}
			}
		}
	}
}

// TestSeedsMapping pins the schedule-to-column translation: classes map
// to the table's column indices, unmappable schedules drop out.
func TestSeedsMapping(t *testing.T) {
	o := pixelOctreeOptimizer(t)
	tab := o.Tables.Heavy
	n := len(tab.Stages)

	uniform := core.NewUniformSchedule(n, tab.PUs[0])
	o.WarmStart = []core.Schedule{
		uniform,
		{Assign: make([]core.PUClass, n-1)}, // wrong length
		core.NewUniformSchedule(n, core.PUClass("no-such-pu")), // unknown class
	}
	seeds := o.seeds(tab)
	if len(seeds) != 1 {
		t.Fatalf("seeds = %d, want exactly the mappable one", len(seeds))
	}
	for i, c := range seeds[0] {
		if c != 0 {
			t.Fatalf("seed[%d] = %d, want column 0 for class %s", i, c, tab.PUs[0])
		}
	}
	o.WarmStart = nil
	if o.seeds(tab) != nil {
		t.Fatal("empty WarmStart produced seeds")
	}
}
