// Package sched is the BT-Optimizer (paper Sec. 3.3): it turns a
// profiling table into ranked pipeline schedules through three
// optimization levels —
//
//  1. Utilization: solve for the minimum-gapness schedule (objective O1)
//     and derive a utilization filter from it, keeping only schedules
//     whose chunks are balanced enough that the interference-heavy
//     profiling conditions actually hold at runtime.
//  2. Latency: enumerate K diverse candidates under the filter, ranked by
//     predicted bottleneck latency (T_max), using blocking clauses to
//     guarantee distinct assignments.
//  3. Autotuning: execute the top candidates on the device (the
//     simulator's virtual device here) and pick the best measured one,
//     absorbing residual model error within performance tiers.
//
// The package also implements the two baseline strategies the paper
// compares against in Figs. 5 and 6: latency-only optimization over the
// interference-aware table, and the prior-work approach of latency-only
// optimization over an isolated table.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"bettertogether/internal/core"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/profiler"
	"bettertogether/internal/soc"
	"bettertogether/internal/solver"
)

// simEngine is the measurement engine of the autotuning level: candidate
// schedules are always evaluated on the deterministic simulator.
var simEngine pipeline.SimEngine

// Strategy selects the optimization recipe.
type Strategy int

const (
	// BetterTogether is the full recipe: interference-aware table,
	// gapness filter, latency ranking (Fig. 5a).
	BetterTogether Strategy = iota
	// LatencyOnlyHeavy ranks by latency on the interference-aware table
	// without the utilization filter (Fig. 5b).
	LatencyOnlyHeavy
	// LatencyOnlyIsolated is the prior-work approach: isolated table,
	// latency-only ranking (Fig. 5c).
	LatencyOnlyIsolated
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case BetterTogether:
		return "better-together"
	case LatencyOnlyHeavy:
		return "latency-only"
	case LatencyOnlyIsolated:
		return "isolated-latency-only"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Objective selects what the autotuning level optimizes. The paper
// optimizes latency; the energy objectives are extensions enabled by the
// simulator's power model, trading the intro's two edge motivations
// (latency and energy) explicitly.
type Objective int

const (
	// ObjectiveLatency picks the candidate with the smallest measured
	// per-task latency (the paper's behaviour).
	ObjectiveLatency Objective = iota
	// ObjectiveEnergy picks the smallest measured energy per task.
	ObjectiveEnergy
	// ObjectiveEDP picks the smallest energy-delay product, the usual
	// balanced metric.
	ObjectiveEDP
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case ObjectiveLatency:
		return "latency"
	case ObjectiveEnergy:
		return "energy"
	case ObjectiveEDP:
		return "edp"
	default:
		return fmt.Sprintf("objective(%d)", int(o))
	}
}

// DefaultK matches the paper's candidate pool size.
const DefaultK = 20

// DefaultUtilSlack is the utilization filter's tolerance: a schedule
// passes when its gapness is within this fraction of its own bottleneck
// time (or matches the optimum gap). It corresponds to the paper's
// T_min/T_max chunk-runtime window.
const DefaultUtilSlack = 0.40

// gapEps absorbs float rounding when comparing a schedule's gapness
// against the optimum gap in the utilization filter.
const gapEps = 1e-15

// Candidate is one ranked schedule with its model prediction.
type Candidate struct {
	Schedule core.Schedule
	// Predicted is the model's per-task latency in seconds (T_max on the
	// strategy's table).
	Predicted float64
	// Gap is the predicted gapness.
	Gap float64
}

// Optimizer holds the inputs of an optimization run: the application,
// the device's affinity map (PU classes), and the profiling tables.
// Construct with New, which fills the paper's defaults explicitly.
type Optimizer struct {
	App    *core.Application
	Device *soc.Device
	Tables profiler.Tables
	// K is the candidate pool size. Negative selects DefaultK; an
	// explicit 0 is honored and yields an empty pool (New sets DefaultK,
	// so only callers that assign 0 get it).
	K int
	// UtilSlack is the utilization filter tolerance. Negative selects
	// DefaultUtilSlack; an explicit 0 is honored and admits only
	// minimum-gapness schedules (New sets DefaultUtilSlack).
	UtilSlack float64
	// Objective selects the autotuning metric (latency by default).
	Objective Objective
	// Workers bounds concurrent candidate simulations in Autotune: 0
	// selects GOMAXPROCS, 1 runs serially, higher values are used as
	// given. Every candidate run is seed-deterministic and independent,
	// so the measured results are identical at any worker count.
	Workers int
	// WarmStart seeds the top-K search's incumbent set with previously
	// chosen schedules (e.g. a session's schedule before admission
	// churn), so the latency prune bites from the first branch. Seeding
	// never changes the candidate set — only the prune rate (pinned by
	// property test); schedules that do not fit the table (wrong length,
	// unknown class) or violate the constraints are silently ignored.
	WarmStart []core.Schedule
	// Search, when non-nil, receives the most recent Candidates call's
	// search counters (reset per call).
	Search *solver.SearchStats
}

// New builds an optimizer with defaults.
func New(app *core.Application, dev *soc.Device, tables profiler.Tables) *Optimizer {
	return &Optimizer{App: app, Device: dev, Tables: tables, K: DefaultK, UtilSlack: DefaultUtilSlack}
}

func (o *Optimizer) k() int {
	if o.K < 0 {
		return DefaultK
	}
	return o.K
}

func (o *Optimizer) slack() float64 {
	if o.UtilSlack < 0 {
		return DefaultUtilSlack
	}
	return o.UtilSlack
}

// workers resolves the Autotune pool size for n candidates.
func (o *Optimizer) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// table returns the profiling table a strategy predicts with.
func (o *Optimizer) table(s Strategy) *core.ProfileTable {
	if s == LatencyOnlyIsolated {
		return o.Tables.Isolated
	}
	return o.Tables.Heavy
}

// problem converts a profiling table into a solver instance; class order
// follows the table columns.
func problem(t *core.ProfileTable) *solver.Problem {
	p := &solver.Problem{N: len(t.Stages), M: len(t.PUs), Time: make([][]float64, len(t.Stages))}
	for i := range t.Stages {
		p.Time[i] = append([]float64(nil), t.Latency[i]...)
	}
	return p
}

// toSchedule maps a solver assignment back to PU classes.
func toSchedule(t *core.ProfileTable, assign []int) core.Schedule {
	s := core.Schedule{Assign: make([]core.PUClass, len(assign))}
	for i, c := range assign {
		s.Assign[i] = t.PUs[c]
	}
	return s
}

// seeds maps the warm-start schedules onto the table's class columns.
// Schedules that do not fit (wrong stage count, class the table lacks)
// are dropped; feasibility against the constraint system is the
// solver's job.
func (o *Optimizer) seeds(t *core.ProfileTable) [][]int {
	if len(o.WarmStart) == 0 {
		return nil
	}
	col := make(map[core.PUClass]int, len(t.PUs))
	for j, pu := range t.PUs {
		col[pu] = j
	}
	var out [][]int
	for _, s := range o.WarmStart {
		if len(s.Assign) != len(t.Stages) {
			continue
		}
		a := make([]int, len(s.Assign))
		ok := true
		for i, c := range s.Assign {
			j, found := col[c]
			if !found {
				ok = false
				break
			}
			a[i] = j
		}
		if ok {
			out = append(out, a)
		}
	}
	return out
}

// Candidates runs optimization levels one and two for the strategy,
// returning up to K schedules ranked by predicted latency.
func (o *Optimizer) Candidates(strategy Strategy) []Candidate {
	tab := o.table(strategy)
	prob := problem(tab)

	if strategy == BetterTogether {
		// Level one: minimum gapness sets the utilization threshold.
		gapBest, ok := solver.MinimizeGapness(prob, solver.Constraints{})
		if !ok {
			return nil
		}
		slack := o.slack()
		gapCut := gapBest.Gap() + gapEps
		// Level two: stream the gapness-filtered pool through the
		// bounded top-K solver — never more than K solutions live, and
		// branches whose partial T_max already exceeds the K-th incumbent
		// are pruned. Ranking is by predicted latency; distinctness comes
		// free (each assignment appears once), which is what the blocking
		// clauses guarantee in the paper.
		pool := solver.TopKFilteredSeeded(prob, solver.Constraints{}, o.k(), func(s solver.Solution) bool {
			return s.Gap() <= gapCut || s.Gap() <= slack*s.TMax
		}, o.seeds(tab), o.Search)
		out := make([]Candidate, len(pool))
		for i, s := range pool {
			out[i] = Candidate{Schedule: toSchedule(tab, s.Assign), Predicted: s.TMax, Gap: s.Gap()}
		}
		return out
	}

	// Baseline strategies: latency-only top-K, no utilization filter.
	sols := solver.TopKFilteredSeeded(prob, solver.Constraints{}, o.k(), nil, o.seeds(tab), o.Search)
	out := make([]Candidate, len(sols))
	for i, s := range sols {
		out[i] = Candidate{Schedule: toSchedule(tab, s.Assign), Predicted: s.TMax, Gap: s.Gap()}
	}
	return out
}

// AutotuneResult reports optimization level three.
type AutotuneResult struct {
	// Measured[i] is candidate i's executed per-task latency in seconds.
	Measured []float64
	// Energy[i] is candidate i's measured energy per task in joules.
	Energy []float64
	// BestIndex is the candidate that optimizes the configured
	// objective.
	BestIndex int
}

// score evaluates a measurement under the objective.
func (o *Optimizer) score(latency, energy float64) float64 {
	switch o.Objective {
	case ObjectiveEnergy:
		return energy
	case ObjectiveEDP:
		return energy * latency
	default:
		return latency
	}
}

// Autotune executes each candidate on the device and returns the
// measured latencies and the winner — the paper's final optimization
// level, which absorbs residual prediction error within performance
// tiers (Sec. 5.2, Table 4). The candidate simulations run on a worker
// pool of up to Workers goroutines: each run is seed-deterministic and
// independent, results land by candidate index, and the winner is
// selected by an in-order scan afterwards, so the outcome is identical
// at any worker count.
func (o *Optimizer) Autotune(cands []Candidate, opts pipeline.Options) (AutotuneResult, error) {
	res := AutotuneResult{
		Measured:  make([]float64, len(cands)),
		Energy:    make([]float64, len(cands)),
		BestIndex: -1,
	}
	// Compile serially: plan validation is cheap next to simulation and
	// keeps the error contract deterministic (lowest index reports).
	plans := make([]*pipeline.Plan, len(cands))
	for i, c := range cands {
		plan, err := pipeline.NewPlan(o.App, o.Device, c.Schedule)
		if err != nil {
			return res, fmt.Errorf("sched: candidate %d invalid: %w", i, err)
		}
		plans[i] = plan
	}
	measure := func(i int) {
		r := simEngine.Run(context.Background(), plans[i], opts)
		res.Measured[i] = r.PerTask
		res.Energy[i] = r.EnergyPerTaskJ
	}
	if w := o.workers(len(cands)); w <= 1 {
		for i := range plans {
			measure(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					measure(i)
				}
			}()
		}
		for i := range plans {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for i := range cands {
		if res.BestIndex < 0 ||
			o.score(res.Measured[i], res.Energy[i]) < o.score(res.Measured[res.BestIndex], res.Energy[res.BestIndex]) {
			res.BestIndex = i
		}
	}
	return res, nil
}

// Optimize runs the full three-level pipeline for a strategy and returns
// the ranked candidates, the autotuning measurements, and the selected
// schedule.
func (o *Optimizer) Optimize(strategy Strategy, opts pipeline.Options) ([]Candidate, AutotuneResult, Candidate, error) {
	cands := o.Candidates(strategy)
	if len(cands) == 0 {
		return nil, AutotuneResult{}, Candidate{}, fmt.Errorf("sched: no feasible schedule")
	}
	tune, err := o.Autotune(cands, opts)
	if err != nil {
		return cands, tune, Candidate{}, err
	}
	return cands, tune, cands[tune.BestIndex], nil
}

// MeasureUniform executes the homogeneous baseline on a single class —
// the all-GPU and all-big-CPU comparisons of Sec. 5.1.
func MeasureUniform(app *core.Application, dev *soc.Device, pu core.PUClass, opts pipeline.Options) (float64, error) {
	plan, err := pipeline.NewPlan(app, dev, core.NewUniformSchedule(len(app.Stages), pu))
	if err != nil {
		return 0, err
	}
	return simEngine.Run(context.Background(), plan, opts).PerTask, nil
}
