package sched

import (
	"sort"
	"testing"

	"bettertogether/internal/apps/alexnet"
	"bettertogether/internal/apps/octree"
	"bettertogether/internal/core"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/profiler"
	"bettertogether/internal/soc"
	"bettertogether/internal/solver"
)

func pixelOctreeOptimizer(t *testing.T) *Optimizer {
	t.Helper()
	app := octree.NewApplication(8192, octree.UniformGen{})
	dev := soc.NewPixel7a()
	tabs := profiler.ProfileBoth(app, dev, profiler.Config{Seed: 1})
	return New(app, dev, tabs)
}

func TestCandidatesValidAndRanked(t *testing.T) {
	o := pixelOctreeOptimizer(t)
	for _, strat := range []Strategy{BetterTogether, LatencyOnlyHeavy, LatencyOnlyIsolated} {
		cands := o.Candidates(strat)
		if len(cands) == 0 {
			t.Fatalf("%v: no candidates", strat)
		}
		if len(cands) > DefaultK {
			t.Fatalf("%v: %d candidates > K", strat, len(cands))
		}
		seen := map[string]bool{}
		for i, c := range cands {
			if err := c.Schedule.Validate(7, o.Device.Classes()); err != nil {
				t.Errorf("%v candidate %d: %v", strat, i, err)
			}
			if seen[c.Schedule.Key()] {
				t.Errorf("%v: duplicate candidate %s (blocking clauses broken)", strat, c.Schedule)
			}
			seen[c.Schedule.Key()] = true
			if i > 0 && cands[i].Predicted < cands[i-1].Predicted {
				t.Errorf("%v: ranking not ascending", strat)
			}
			if c.Predicted <= 0 {
				t.Errorf("%v candidate %d: predicted %v", strat, i, c.Predicted)
			}
		}
	}
}

func TestPredictionMatchesTable(t *testing.T) {
	o := pixelOctreeOptimizer(t)
	for _, strat := range []Strategy{BetterTogether, LatencyOnlyIsolated} {
		tab := o.table(strat)
		for _, c := range o.Candidates(strat) {
			if got := tab.PredictLatency(c.Schedule); absRel(got, c.Predicted) > 1e-12 {
				t.Fatalf("%v: candidate prediction %v != table prediction %v", strat, c.Predicted, got)
			}
			if got := tab.PredictGapness(c.Schedule); absRel(got+1, c.Gap+1) > 1e-9 {
				t.Fatalf("%v: gap mismatch %v vs %v", strat, c.Gap, got)
			}
		}
	}
}

func absRel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m == 0 {
		return 0
	}
	return d / m
}

func TestBetterTogetherFiltersUnbalancedSchedules(t *testing.T) {
	o := pixelOctreeOptimizer(t)
	bt := o.Candidates(BetterTogether)
	for _, c := range bt {
		if !(c.Gap <= o.slack()*c.Predicted+1e-12 || c.Gap <= bestGap(o)+1e-12) {
			t.Errorf("candidate %s gap %.3g exceeds utilization filter (pred %.3g)",
				c.Schedule, c.Gap, c.Predicted)
		}
	}
	// Multi-chunk candidates must appear: a single-chunk schedule has
	// zero gap but no pipelining. The top BT candidate should pipeline.
	multi := 0
	for _, c := range bt {
		if len(c.Schedule.Chunks()) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no pipelined candidates survived the filter")
	}
}

func bestGap(o *Optimizer) float64 {
	cands := o.Candidates(BetterTogether)
	g := cands[0].Gap
	for _, c := range cands {
		if c.Gap < g {
			g = c.Gap
		}
	}
	return g
}

func TestStrategiesDisagree(t *testing.T) {
	// The isolated-table strategy must rank differently from the
	// interference-aware ones on a device with strong quirks — otherwise
	// Figs. 5 and 6 would be vacuous.
	o := pixelOctreeOptimizer(t)
	bt := o.Candidates(BetterTogether)
	iso := o.Candidates(LatencyOnlyIsolated)
	same := true
	for i := range bt {
		if i >= len(iso) || !bt[i].Schedule.Equal(iso[i].Schedule) {
			same = false
			break
		}
	}
	if same {
		t.Error("isolated and interference-aware rankings identical")
	}
}

func TestAutotuneSelectsMeasuredBest(t *testing.T) {
	o := pixelOctreeOptimizer(t)
	cands := o.Candidates(BetterTogether)
	res, err := o.Autotune(cands, pipeline.Options{Tasks: 15, Warmup: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Measured) != len(cands) {
		t.Fatalf("measured %d of %d", len(res.Measured), len(cands))
	}
	for i, m := range res.Measured {
		if m <= 0 {
			t.Errorf("candidate %d measured %v", i, m)
		}
		if m < res.Measured[res.BestIndex] {
			t.Errorf("BestIndex %d not minimal (candidate %d is %v < %v)",
				res.BestIndex, i, m, res.Measured[res.BestIndex])
		}
	}
}

// materializedCandidates is the pre-streaming reference: enumerate the
// whole space, filter, sort by (TMax, Key), truncate to K. Candidates
// must match it exactly for every strategy.
func materializedCandidates(o *Optimizer, strategy Strategy) []Candidate {
	tab := o.table(strategy)
	prob := problem(tab)
	var filter solver.FilterFunc
	if strategy == BetterTogether {
		gapBest, ok := solver.MinimizeGapness(prob, solver.Constraints{})
		if !ok {
			return nil
		}
		slack := o.slack()
		gapCut := gapBest.Gap() + gapEps
		filter = func(s solver.Solution) bool {
			return s.Gap() <= gapCut || s.Gap() <= slack*s.TMax
		}
	}
	var pool []solver.Solution
	_ = solver.Enumerate(prob, solver.Constraints{}, nil, func(s solver.Solution) bool {
		if filter == nil || filter(s) {
			pool = append(pool, s)
		}
		return true
	})
	sort.Slice(pool, func(a, b int) bool {
		if pool[a].TMax != pool[b].TMax {
			return pool[a].TMax < pool[b].TMax
		}
		return solver.Key(pool[a].Assign) < solver.Key(pool[b].Assign)
	})
	if len(pool) > o.k() {
		pool = pool[:o.k()]
	}
	out := make([]Candidate, len(pool))
	for i, s := range pool {
		out[i] = Candidate{Schedule: toSchedule(tab, s.Assign), Predicted: s.TMax, Gap: s.Gap()}
	}
	return out
}

func TestCandidatesMatchMaterializedReference(t *testing.T) {
	o := pixelOctreeOptimizer(t)
	for _, k := range []int{1, 5, 20, 500} {
		o.K = k
		for _, strat := range []Strategy{BetterTogether, LatencyOnlyHeavy, LatencyOnlyIsolated} {
			got := o.Candidates(strat)
			want := materializedCandidates(o, strat)
			if len(got) != len(want) {
				t.Fatalf("%v K=%d: %d candidates, want %d", strat, k, len(got), len(want))
			}
			for i := range want {
				if !got[i].Schedule.Equal(want[i].Schedule) ||
					got[i].Predicted != want[i].Predicted || got[i].Gap != want[i].Gap {
					t.Fatalf("%v K=%d rank %d: got %s (%v, %v), want %s (%v, %v)",
						strat, k, i, got[i].Schedule, got[i].Predicted, got[i].Gap,
						want[i].Schedule, want[i].Predicted, want[i].Gap)
				}
			}
		}
	}
}

func TestOptimizerZeroValuesHonored(t *testing.T) {
	o := pixelOctreeOptimizer(t)

	// An explicit K = 0 yields an empty pool, not the default 20.
	o.K = 0
	for _, strat := range []Strategy{BetterTogether, LatencyOnlyHeavy, LatencyOnlyIsolated} {
		if got := o.Candidates(strat); len(got) != 0 {
			t.Errorf("%v: K=0 returned %d candidates", strat, len(got))
		}
	}
	// Negative still selects the default.
	o.K = -1
	if got := o.Candidates(BetterTogether); len(got) == 0 || len(got) > DefaultK {
		t.Errorf("K=-1: %d candidates, want 1..%d", len(got), DefaultK)
	}

	// An explicit UtilSlack = 0 admits only minimum-gapness schedules.
	o.K = DefaultK
	o.UtilSlack = 0
	zero := o.Candidates(BetterTogether)
	if len(zero) == 0 {
		t.Fatal("UtilSlack=0 returned no candidates (min-gap schedule must pass)")
	}
	minGap := zero[0].Gap
	for _, c := range zero {
		if c.Gap < minGap {
			minGap = c.Gap
		}
	}
	for _, c := range zero {
		if c.Gap > minGap+gapEps {
			t.Errorf("UtilSlack=0 admitted gap %v > optimum %v", c.Gap, minGap)
		}
	}
	// The default slack admits more than the zero-slack pool on this
	// problem — proving 0 was not silently replaced by 0.40.
	o.UtilSlack = -1
	if def := o.Candidates(BetterTogether); len(def) <= len(zero) {
		t.Errorf("default slack pool (%d) not larger than zero-slack pool (%d)", len(def), len(zero))
	}
}

func TestAutotuneParallelMatchesSerial(t *testing.T) {
	o := pixelOctreeOptimizer(t)
	cands := o.Candidates(BetterTogether)
	opts := pipeline.Options{Tasks: 12, Warmup: 2, Seed: 17}

	o.Workers = 1
	serial, err := o.Autotune(cands, opts)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 8
	par, err := o.Autotune(cands, opts)
	if err != nil {
		t.Fatal(err)
	}
	if par.BestIndex != serial.BestIndex {
		t.Errorf("BestIndex %d != serial %d", par.BestIndex, serial.BestIndex)
	}
	for i := range cands {
		if par.Measured[i] != serial.Measured[i] || par.Energy[i] != serial.Energy[i] {
			t.Errorf("candidate %d: parallel (%v, %v) != serial (%v, %v)",
				i, par.Measured[i], par.Energy[i], serial.Measured[i], serial.Energy[i])
		}
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	o := pixelOctreeOptimizer(t)
	cands, tune, best, err := o.Optimize(BetterTogether, pipeline.Options{Tasks: 10, Warmup: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 || tune.BestIndex < 0 {
		t.Fatal("optimize returned nothing")
	}
	if !best.Schedule.Equal(cands[tune.BestIndex].Schedule) {
		t.Error("best candidate mismatch")
	}
}

func TestBetterTogetherBeatsHomogeneousOnOctreePixel(t *testing.T) {
	// The headline claim on its friendliest case: the heterogeneous
	// schedule must beat both homogeneous baselines for Octree on the
	// Pixel (paper: 8.4x over GPU-only).
	o := pixelOctreeOptimizer(t)
	opts := pipeline.Options{Tasks: 20, Warmup: 5, Seed: 21}
	_, _, best, err := o.Optimize(BetterTogether, opts)
	if err != nil {
		t.Fatal(err)
	}
	plan, _ := pipeline.NewPlan(o.App, o.Device, best.Schedule)
	bt := pipeline.Simulate(plan, opts).PerTask

	gpu, err := MeasureUniform(o.App, o.Device, core.ClassGPU, opts)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := MeasureUniform(o.App, o.Device, core.ClassBig, opts)
	if err != nil {
		t.Fatal(err)
	}
	if bt >= gpu {
		t.Errorf("BT %.3gms !< GPU-only %.3gms", bt*1e3, gpu*1e3)
	}
	if bt >= cpu {
		t.Errorf("BT %.3gms !< CPU-only %.3gms", bt*1e3, cpu*1e3)
	}
}

func TestOptimizerOnTwoClassDevice(t *testing.T) {
	// The Jetson has only cpu+gpu: the machinery must still produce
	// schedules (the paper's hardest case for heterogeneity gains).
	app := alexnet.NewSparse(1, 2)
	dev := soc.NewJetson()
	tabs := profiler.ProfileBoth(app, dev, profiler.Config{Seed: 2})
	o := New(app, dev, tabs)
	cands := o.Candidates(BetterTogether)
	if len(cands) == 0 {
		t.Fatal("no candidates on Jetson")
	}
	for _, c := range cands {
		if err := c.Schedule.Validate(9, dev.Classes()); err != nil {
			t.Error(err)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if BetterTogether.String() == "" || LatencyOnlyHeavy.String() == "" ||
		LatencyOnlyIsolated.String() == "" || Strategy(9).String() == "" {
		t.Error("empty strategy names")
	}
}

func TestObjectiveString(t *testing.T) {
	if ObjectiveLatency.String() != "latency" || ObjectiveEnergy.String() != "energy" ||
		ObjectiveEDP.String() != "edp" || Objective(9).String() == "" {
		t.Error("objective names wrong")
	}
}

func TestAutotuneObjectives(t *testing.T) {
	o := pixelOctreeOptimizer(t)
	cands := o.Candidates(BetterTogether)
	opts := pipeline.Options{Tasks: 15, Warmup: 3, Seed: 31}

	o.Objective = ObjectiveLatency
	lat, err := o.Autotune(cands, opts)
	if err != nil {
		t.Fatal(err)
	}
	o.Objective = ObjectiveEnergy
	eng, err := o.Autotune(cands, opts)
	if err != nil {
		t.Fatal(err)
	}
	o.Objective = ObjectiveEDP
	edp, err := o.Autotune(cands, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Each winner must actually minimize its metric over the pool.
	for i := range cands {
		if lat.Measured[i] < lat.Measured[lat.BestIndex] {
			t.Errorf("latency objective missed candidate %d", i)
		}
		if eng.Energy[i] < eng.Energy[eng.BestIndex] {
			t.Errorf("energy objective missed candidate %d", i)
		}
		if edp.Energy[i]*edp.Measured[i] < edp.Energy[edp.BestIndex]*edp.Measured[edp.BestIndex] {
			t.Errorf("EDP objective missed candidate %d", i)
		}
	}
	// Cross-objective dominance: the energy winner uses no more energy
	// than the latency winner; the latency winner is no slower than the
	// energy winner.
	if eng.Energy[eng.BestIndex] > lat.Energy[lat.BestIndex] {
		t.Error("energy objective found a worse-energy schedule")
	}
	if lat.Measured[lat.BestIndex] > eng.Measured[eng.BestIndex] {
		t.Error("latency objective found a slower schedule")
	}
	// Energy must be populated everywhere.
	for i, e := range lat.Energy {
		if e <= 0 {
			t.Errorf("candidate %d missing energy", i)
		}
	}
}
