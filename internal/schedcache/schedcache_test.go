package schedcache

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"bettertogether/internal/core"
	"bettertogether/internal/soc"
)

// costApp builds a planning-identity-only application (Fingerprint never
// reads kernels or task factories).
func costApp(name string, costs ...core.CostSpec) *core.Application {
	app := &core.Application{Name: name}
	for i, c := range costs {
		app.Stages = append(app.Stages, core.Stage{Name: fmt.Sprintf("s%d", i), Cost: c})
	}
	return app
}

func TestQuantizeEnvTable(t *testing.T) {
	const b = 0.05
	cases := []struct {
		name string
		in   soc.Env
		want soc.Env
	}{
		{"nil", nil, soc.Env{}},
		{"empty", soc.Env{}, soc.Env{}},
		{"all-zero", soc.Env{core.ClassGPU: {MemIntensity: 0}}, soc.Env{}},
		{"negative-drops", soc.Env{core.ClassGPU: {MemIntensity: -0.3}}, soc.Env{}},
		{"nan-drops", soc.Env{core.ClassGPU: {MemIntensity: math.NaN()}}, soc.Env{}},
		{"below-half-bucket-drops", soc.Env{core.ClassGPU: {MemIntensity: 0.024}}, soc.Env{}},
		{"at-half-bucket-rounds-up", soc.Env{core.ClassGPU: {MemIntensity: 0.025}},
			soc.Env{core.ClassGPU: {MemIntensity: 0.05}}},
		{"rounds-nearest-down", soc.Env{core.ClassGPU: {MemIntensity: 0.07}},
			soc.Env{core.ClassGPU: {MemIntensity: 0.05}}},
		{"rounds-nearest-up", soc.Env{core.ClassGPU: {MemIntensity: 0.08}},
			soc.Env{core.ClassGPU: {MemIntensity: 0.10}}},
		{"exact-multiple-fixed", soc.Env{core.ClassGPU: {MemIntensity: 0.85}},
			soc.Env{core.ClassGPU: {MemIntensity: 0.85}}},
		{"above-one-clamps", soc.Env{core.ClassGPU: {MemIntensity: 1.7}},
			soc.Env{core.ClassGPU: {MemIntensity: 1.0}}},
		{"inf-clamps", soc.Env{core.ClassGPU: {MemIntensity: math.Inf(1)}},
			soc.Env{core.ClassGPU: {MemIntensity: 1.0}}},
		{"mixed-classes", soc.Env{
			core.ClassGPU:    {MemIntensity: 0.61},
			core.ClassBig:    {MemIntensity: 0.01},
			core.ClassLittle: {MemIntensity: math.NaN()},
		}, soc.Env{core.ClassGPU: {MemIntensity: 0.60}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := QuantizeEnv(tc.in, b)
			if len(got) != len(tc.want) {
				t.Fatalf("QuantizeEnv(%v) = %v, want %v", tc.in, got, tc.want)
			}
			for c, l := range tc.want {
				g := got[c].MemIntensity
				if math.IsNaN(g) {
					t.Fatalf("class %s quantized to NaN", c)
				}
				if math.Abs(g-l.MemIntensity) > 1e-12 {
					t.Errorf("class %s: got %v, want %v", c, g, l.MemIntensity)
				}
			}
		})
	}
}

// TestQuantizeEnvNaNFree is the PR-2 regression guard: whatever garbage
// the interference model once produced (NaN ratios), no NaN may survive
// quantization into a cache key or a planning environment.
func TestQuantizeEnvNaNFree(t *testing.T) {
	classes := []core.PUClass{core.ClassBig, core.ClassLittle, core.ClassGPU}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		env := soc.Env{}
		for _, c := range classes {
			switch rng.Intn(5) {
			case 0:
				env[c] = soc.Load{MemIntensity: math.NaN()}
			case 1:
				env[c] = soc.Load{MemIntensity: math.Inf(1)}
			case 2:
				env[c] = soc.Load{MemIntensity: -rng.Float64()}
			default:
				env[c] = soc.Load{MemIntensity: rng.Float64() * 2}
			}
		}
		q := QuantizeEnv(env, DefaultBucket)
		for c, l := range q {
			if math.IsNaN(l.MemIntensity) || math.IsInf(l.MemIntensity, 0) ||
				l.MemIntensity <= 0 || l.MemIntensity > 1 {
				t.Fatalf("iteration %d: class %s quantized to %v from %v",
					i, c, l.MemIntensity, env[c].MemIntensity)
			}
		}
	}
}

// TestQuantizeEnvDoesNotAliasInput pins that quantization never mutates
// or aliases the caller's map.
func TestQuantizeEnvDoesNotAliasInput(t *testing.T) {
	env := soc.Env{core.ClassGPU: {MemIntensity: 0.5}}
	q := QuantizeEnv(env, DefaultBucket)
	q[core.ClassBig] = soc.Load{MemIntensity: 1}
	if _, ok := env[core.ClassBig]; ok {
		t.Fatal("QuantizeEnv aliased the input map")
	}
	if env[core.ClassGPU].MemIntensity != 0.5 {
		t.Fatal("QuantizeEnv mutated the input")
	}
}

// TestKeyMapOrderIndependent is the PR-2 ULP/iteration-order guard:
// building the same environment through different insertion and overlay
// orders must yield the same key.
func TestKeyMapOrderIndependent(t *testing.T) {
	mk := func(order []core.PUClass, vals map[core.PUClass]float64) soc.Env {
		env := soc.Env{}
		for _, c := range order {
			env.Add(c, soc.Load{MemIntensity: vals[c]})
		}
		return env
	}
	vals := map[core.PUClass]float64{
		core.ClassBig:    0.31,
		core.ClassLittle: 0.12,
		core.ClassGPU:    0.77,
	}
	orders := [][]core.PUClass{
		{core.ClassBig, core.ClassLittle, core.ClassGPU},
		{core.ClassGPU, core.ClassBig, core.ClassLittle},
		{core.ClassLittle, core.ClassGPU, core.ClassBig},
	}
	ref := Key("fp", "dev", mk(orders[0], vals), DefaultBucket, Knobs{})
	for _, o := range orders[1:] {
		if k := Key("fp", "dev", mk(o, vals), DefaultBucket, Knobs{}); k != ref {
			t.Fatalf("insertion order changed the key:\n%s\n%s", ref, k)
		}
	}
	// Split additions per class (0.2+0.11 vs 0.31) must agree too: Add
	// sums before quantization sees the value.
	split := soc.Env{}
	split.Add(core.ClassBig, soc.Load{MemIntensity: 0.2})
	split.Add(core.ClassBig, soc.Load{MemIntensity: 0.11})
	split.Add(core.ClassLittle, soc.Load{MemIntensity: 0.12})
	split.Add(core.ClassGPU, soc.Load{MemIntensity: 0.77})
	if k := Key("fp", "dev", split, DefaultBucket, Knobs{}); k != ref {
		t.Fatalf("split addition changed the key:\n%s\n%s", ref, k)
	}
}

// TestKeyQuantizationCollapse pins both directions of the bucket
// contract: environments within the same bucket share a key;
// environments more than a bucket apart never do.
func TestKeyQuantizationCollapse(t *testing.T) {
	const b = 0.05
	key := func(v float64) string {
		return Key("fp", "dev", soc.Env{core.ClassGPU: {MemIntensity: v}}, b, Knobs{})
	}
	if key(0.50) != key(0.51) || key(0.50) != key(0.49) {
		t.Error("within-bucket perturbation changed the key")
	}
	if key(0.50) == key(0.56) {
		t.Error("perturbation beyond a bucket kept the key")
	}
	// Raw and pre-quantized environments key identically (Key quantizes
	// at the index level, QuantizeEnv at the value level).
	env := soc.Env{core.ClassGPU: {MemIntensity: 0.63}}
	if Key("fp", "dev", env, b, Knobs{}) != Key("fp", "dev", QuantizeEnv(env, b), b, Knobs{}) {
		t.Error("raw and pre-quantized env keys differ")
	}
}

// TestKeyQuickCheckEnvEquality quick-checks the canonicalization
// property over random environments: equal bucket indices per class if
// and only if equal keys.
func TestKeyQuickCheckEnvEquality(t *testing.T) {
	classes := []core.PUClass{core.ClassBig, core.ClassLittle, core.ClassGPU}
	f := func(raw [3]float64, perturb [3]int8) bool {
		a, b := soc.Env{}, soc.Env{}
		same := true
		for i, c := range classes {
			v := math.Abs(raw[i])
			v -= math.Floor(v) // into [0,1)
			a[c] = soc.Load{MemIntensity: v}
			// Perturb by whole buckets; same key expected iff all zero.
			shift := float64(int(perturb[i]%3)-1) * DefaultBucket
			b[c] = soc.Load{MemIntensity: v + shift}
			if bucketIndex(v, DefaultBucket) != bucketIndex(v+shift, DefaultBucket) {
				same = false
			}
		}
		ka := Key("fp", "dev", a, DefaultBucket, Knobs{})
		kb := Key("fp", "dev", b, DefaultBucket, Knobs{})
		return (ka == kb) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintEqualGraphsEqual(t *testing.T) {
	mk := func() *core.Application {
		return costApp("app",
			core.CostSpec{FLOPs: 1e6, Bytes: 2e5, ParallelFraction: 0.9, WorkItems: 4096},
			core.CostSpec{FLOPs: 3e6, Bytes: 1e5, Divergence: 0.2, Irregularity: 0.4, Dispatches: 3},
		)
	}
	if Fingerprint(mk()) != Fingerprint(mk()) {
		t.Fatal("structurally identical applications fingerprint differently")
	}
}

// TestFingerprintQuickCheckPerturbation quick-checks that perturbing any
// single cost field separates the fingerprints bit-exactly.
func TestFingerprintQuickCheckPerturbation(t *testing.T) {
	base := core.CostSpec{FLOPs: 1e6, Bytes: 2e5, ParallelFraction: 0.9,
		Divergence: 0.1, Irregularity: 0.3, WorkItems: 4096, Dispatches: 2}
	f := func(field uint8, delta float64) bool {
		if delta == 0 || math.IsNaN(delta) || math.IsInf(delta, 0) {
			return true // no perturbation, nothing to check
		}
		c := base
		switch field % 7 {
		case 0:
			c.FLOPs += delta
		case 1:
			c.Bytes += delta
		case 2:
			c.ParallelFraction += delta
		case 3:
			c.Divergence += delta
		case 4:
			c.Irregularity += delta
		case 5:
			c.WorkItems += delta
		case 6:
			c.Dispatches += delta
		}
		if c == base {
			return true // delta vanished in float addition
		}
		return Fingerprint(costApp("a", base, c)) != Fingerprint(costApp("a", base, base))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintSensitiveToStructure(t *testing.T) {
	c := core.CostSpec{FLOPs: 1}
	a := costApp("a", c, c)
	b := costApp("b", c, c) // name differs
	three := costApp("a", c, c, c)
	if Fingerprint(a) == Fingerprint(b) {
		t.Error("application name not folded into fingerprint")
	}
	if Fingerprint(a) == Fingerprint(three) {
		t.Error("stage count not folded into fingerprint")
	}
}

func TestKeyKnobsSeparate(t *testing.T) {
	env := soc.Env{core.ClassGPU: {MemIntensity: 0.5}}
	base := Key("fp", "dev", env, DefaultBucket, Knobs{ProfileReps: 8, AutotuneTasks: 12, K: 8, Seed: 1})
	for name, k := range map[string]Knobs{
		"reps": {ProfileReps: 9, AutotuneTasks: 12, K: 8, Seed: 1},
		"auto": {ProfileReps: 8, AutotuneTasks: 13, K: 8, Seed: 1},
		"k":    {ProfileReps: 8, AutotuneTasks: 12, K: 9, Seed: 1},
		"seed": {ProfileReps: 8, AutotuneTasks: 12, K: 8, Seed: 2},
	} {
		if Key("fp", "dev", env, DefaultBucket, k) == base {
			t.Errorf("knob %s not folded into key", name)
		}
	}
	if Key("fp", "other", env, DefaultBucket, Knobs{ProfileReps: 8, AutotuneTasks: 12, K: 8, Seed: 1}) == base {
		t.Error("device not folded into key")
	}
	if !strings.HasPrefix(base, "fp|dev|") {
		t.Errorf("key %q does not lead with fingerprint|device", base)
	}
}

func sched(classes ...core.PUClass) core.Schedule {
	return core.Schedule{Assign: classes}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(2, DefaultBucket)
	c.Put("a", sched(core.ClassBig))
	c.Put("b", sched(core.ClassGPU))
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", sched(core.ClassLittle)) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction despite being LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite being refreshed")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 || st.Capacity != 2 || st.Stores != 3 {
		t.Fatalf("stats = %+v, want 1 eviction, size 2/2, 3 stores", st)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits, 1 miss", st)
	}
}

func TestCacheCopiesInAndOut(t *testing.T) {
	c := New(4, DefaultBucket)
	in := sched(core.ClassBig, core.ClassGPU)
	c.Put("k", in)
	in.Assign[0] = core.ClassLittle // caller mutates after Put
	out, ok := c.Get("k")
	if !ok {
		t.Fatal("miss")
	}
	if out.Assign[0] != core.ClassBig {
		t.Fatal("Put aliased the caller's schedule")
	}
	out.Assign[1] = core.ClassLittle // caller mutates the returned copy
	again, _ := c.Get("k")
	if again.Assign[1] != core.ClassGPU {
		t.Fatal("Get returned an aliasing copy")
	}
}

func TestCacheUpdateExistingKey(t *testing.T) {
	c := New(2, DefaultBucket)
	c.Put("k", sched(core.ClassBig))
	c.Put("k", sched(core.ClassGPU))
	if c.Len() != 1 {
		t.Fatalf("Len = %d after double Put of one key", c.Len())
	}
	s, _ := c.Get("k")
	if s.Assign[0] != core.ClassGPU {
		t.Fatal("second Put did not replace the entry")
	}
}

// TestCacheConcurrentInvariants hammers one cache from many goroutines
// (run under -race in CI) and checks the counter and size invariants
// afterwards: hits+misses equals the Get count, and size never exceeds
// capacity.
func TestCacheConcurrentInvariants(t *testing.T) {
	const (
		workers = 8
		iters   = 500
		cap     = 16
	)
	c := New(cap, DefaultBucket)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(3*cap))
				if rng.Intn(2) == 0 {
					c.Put(key, sched(core.ClassBig, core.ClassGPU))
				} else {
					if s, ok := c.Get(key); ok && len(s.Assign) != 2 {
						t.Errorf("corrupt schedule for %s: %v", key, s)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Size > cap {
		t.Fatalf("size %d exceeds capacity %d", st.Size, cap)
	}
	if st.Size != c.Len() {
		t.Fatalf("Stats.Size %d != Len %d", st.Size, c.Len())
	}
	gets := st.Hits + st.Misses
	puts := st.Stores
	if gets+puts != workers*iters {
		t.Fatalf("hits(%d)+misses(%d)+stores(%d) = %d, want %d operations",
			st.Hits, st.Misses, st.Stores, gets+puts, workers*iters)
	}
}

func TestNewDefaults(t *testing.T) {
	c := New(0, 0)
	if c.Stats().Capacity != DefaultCapacity {
		t.Errorf("capacity = %d, want DefaultCapacity", c.Stats().Capacity)
	}
	if c.Bucket() != DefaultBucket {
		t.Errorf("bucket = %v, want DefaultBucket", c.Bucket())
	}
	if got := New(3, math.NaN()).Bucket(); got != DefaultBucket {
		t.Errorf("NaN bucket resolved to %v", got)
	}
}

func TestKeyAdjustDigestSeparates(t *testing.T) {
	env := soc.Env{core.ClassGPU: {MemIntensity: 0.5}}
	knobs := Knobs{ProfileReps: 8, AutotuneTasks: 12, K: 8, Seed: 1}
	base := Key("fp", "dev", env, DefaultBucket, knobs)
	if strings.Contains(base, "|adj=") {
		t.Fatalf("empty Adjust leaked into key %q", base)
	}
	knobs.Adjust = "gpu/conv=2.03"
	adj := Key("fp", "dev", env, DefaultBucket, knobs)
	if adj == base {
		t.Fatal("Adjust digest not folded into key")
	}
	if !strings.HasSuffix(adj, "|adj=gpu/conv=2.03") {
		t.Fatalf("adjusted key %q lacks the digest suffix", adj)
	}
	// Distinct digests must never collide onto one entry.
	knobs.Adjust = "gpu/conv=1.97"
	if Key("fp", "dev", env, DefaultBucket, knobs) == adj {
		t.Fatal("distinct Adjust digests collide")
	}
}
