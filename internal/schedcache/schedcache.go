// Package schedcache memoizes planning results so re-planning leaves
// the runtime's admission hot path. The cache is keyed on a
// canonicalized (application fingerprint, device, quantized
// interference Env, planning knobs) tuple:
//
//   - the application fingerprint hashes the stage sequence and every
//     cost-model field, so two structurally identical graphs share
//     entries while any cost perturbation separates them;
//   - the interference environment is quantized into configurable
//     buckets before both keying *and* planning, so near-identical
//     environments resolve to the same key — and, because the solve
//     itself runs against the bucket's canonical representative, a
//     cache hit returns a schedule byte-identical to the cold solve it
//     replaces (pinned by the equivalence suite in internal/runtime);
//   - the knobs fold in every optimizer parameter that can change the
//     chosen schedule (profiling reps, autotune budget, K, seed).
//
// Entries are evicted least-recently-used. All operations are safe for
// concurrent use; hit/miss/eviction/store counters export through
// internal/obs and the Prometheus text exposition.
package schedcache

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
	"sync"

	"bettertogether/internal/core"
	"bettertogether/internal/soc"
)

// DefaultBucket is the Env quantization granularity: MemIntensity is
// rounded to the nearest multiple of this value. 0.05 keeps 20 buckets
// across the [0,1] intensity range — fine enough that planning against
// the bucket representative is indistinguishable from the raw
// environment at the noise level of the profiler, coarse enough that
// churn-adjacent environments actually collide.
const DefaultBucket = 0.05

// DefaultCapacity bounds the cache when the caller passes a
// non-positive capacity.
const DefaultCapacity = 512

// bucketIndex maps one intensity to its quantization bucket:
// round-to-nearest with ties away from zero, clamped into [0,1] first.
// NaN and negative values quantize to bucket 0 (a PR-2 regression guard:
// interference ratios once went NaN and must never reach a cache key),
// +Inf clamps to 1.
func bucketIndex(v, bucket float64) int {
	if math.IsNaN(v) || v <= 0 {
		return 0
	}
	if v > 1 {
		v = 1
	}
	return int(math.Floor(v/bucket + 0.5))
}

// normBucket resolves the bucket width, guarding the degenerate values.
func normBucket(bucket float64) float64 {
	if bucket <= 0 || math.IsNaN(bucket) || math.IsInf(bucket, 0) {
		return DefaultBucket
	}
	return bucket
}

// QuantizeEnv returns the canonical representative of env's quantization
// bucket: every class's MemIntensity rounded to the nearest multiple of
// bucket (clamped to [0,1], NaN-free), classes that quantize to zero
// dropped — so a nil Env, an empty Env, and an all-zero Env share one
// representative. The result is independent of map iteration order and
// never aliases the input. A non-positive bucket selects DefaultBucket.
func QuantizeEnv(env soc.Env, bucket float64) soc.Env {
	bucket = normBucket(bucket)
	out := soc.Env{}
	for _, c := range env.BusyClasses() {
		idx := bucketIndex(env[c].MemIntensity, bucket)
		if idx == 0 {
			continue
		}
		q := float64(idx) * bucket
		if q > 1 {
			q = 1
		}
		out[c] = soc.Load{MemIntensity: q}
	}
	return out
}

// Fingerprint canonically hashes an application's planning-relevant
// identity: its name, stage names, and every cost-model field, bit-exact
// via the float's IEEE-754 encoding. Equal graphs fingerprint equally;
// any cost perturbation yields a different fingerprint (pinned by
// property test). Kernel function identities are deliberately excluded —
// planning only ever reads the cost model.
func Fingerprint(app *core.Application) string {
	h := fnv.New64a()
	var buf [8]byte
	str := func(s string) {
		_, _ = h.Write([]byte(s))
		_, _ = h.Write([]byte{0})
	}
	f64 := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, _ = h.Write(buf[:])
	}
	str(app.Name)
	for _, s := range app.Stages {
		str(s.Name)
		f64(s.Cost.FLOPs)
		f64(s.Cost.Bytes)
		f64(s.Cost.ParallelFraction)
		f64(s.Cost.Divergence)
		f64(s.Cost.Irregularity)
		f64(s.Cost.WorkItems)
		f64(s.Cost.Dispatches)
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// Knobs are the planning parameters folded into the key: anything that
// can change the schedule a cold solve would pick.
type Knobs struct {
	// ProfileReps and AutotuneTasks bound the profiling and autotuning
	// passes; K is the candidate pool size.
	ProfileReps   int
	AutotuneTasks int
	K             int
	// Seed is the full planning seed (runtime seed + session seed).
	Seed int64
	// Adjust is a digest of any latency-table adjustment active during
	// the solve (learned online-profiling overlays, injected modeling
	// error). Empty means an unadjusted solve and renders nothing, so
	// pre-existing keys are unchanged; any non-empty digest separates
	// the entry — a corrected replan must never resolve to a schedule
	// cached from uncorrected latencies, and vice versa.
	Adjust string
}

// Key canonicalizes one planning instance. The environment component
// renders the *bucket indices* (integers), not the quantized floats, so
// the key is immune to float-formatting drift; classes render in sorted
// order, so the key is independent of Env map iteration order. Key
// accepts raw or pre-quantized environments interchangeably: quantizing
// is idempotent at the index level.
func Key(fingerprint, device string, env soc.Env, bucket float64, knobs Knobs) string {
	bucket = normBucket(bucket)
	var b strings.Builder
	b.WriteString(fingerprint)
	b.WriteByte('|')
	b.WriteString(device)
	b.WriteString("|b=")
	b.WriteString(strconv.FormatFloat(bucket, 'g', -1, 64))
	b.WriteString("|env:")
	first := true
	for _, c := range env.BusyClasses() {
		idx := bucketIndex(env[c].MemIntensity, bucket)
		if idx == 0 {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%s=%d", c, idx)
	}
	fmt.Fprintf(&b, "|r=%d|a=%d|k=%d|s=%d",
		knobs.ProfileReps, knobs.AutotuneTasks, knobs.K, knobs.Seed)
	if knobs.Adjust != "" {
		b.WriteString("|adj=")
		b.WriteString(knobs.Adjust)
	}
	return b.String()
}

// Stats is a point-in-time view of the cache's counters.
type Stats struct {
	// Hits and Misses count Get outcomes; Stores counts Put calls;
	// Evictions counts entries displaced by the LRU capacity bound.
	Hits, Misses, Stores, Evictions uint64
	// Size is the current entry count; Capacity the configured bound.
	Size, Capacity int
}

// entry is one cached schedule keyed by its canonical planning tuple.
type entry struct {
	key   string
	sched core.Schedule
}

// Cache is a concurrency-safe LRU of planning results. Construct with
// New; one cache may be shared by several runtimes (the fleet-layer
// shape), every method locks internally.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	bucket    float64
	ll        *list.List               // front = most recently used
	items     map[string]*list.Element // key -> *entry element
	hits      uint64
	misses    uint64
	stores    uint64
	evictions uint64
}

// New builds an empty cache. A non-positive capacity selects
// DefaultCapacity; a non-positive bucket selects DefaultBucket.
func New(capacity int, bucket float64) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		bucket:   normBucket(bucket),
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Bucket returns the Env quantization granularity planning must use so
// cached schedules stay byte-identical to cold solves.
func (c *Cache) Bucket() float64 { return c.bucket }

// Get returns the schedule cached under key. The returned schedule is an
// independent copy; mutating it cannot corrupt the cache.
func (c *Cache) Get(key string) (core.Schedule, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return core.Schedule{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*entry)
	return copySchedule(e.sched), true
}

// Put stores a schedule under key, evicting the least-recently-used
// entries past capacity. The schedule is copied in, so later caller
// mutation cannot corrupt the cache.
func (c *Cache) Put(key string, s core.Schedule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stores++
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).sched = copySchedule(s)
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, sched: copySchedule(s)})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*entry).key)
		c.evictions++
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses,
		Stores: c.stores, Evictions: c.evictions,
		Size: c.ll.Len(), Capacity: c.capacity,
	}
}

// copySchedule deep-copies the assignment vector.
func copySchedule(s core.Schedule) core.Schedule {
	return core.Schedule{Assign: append([]core.PUClass(nil), s.Assign...)}
}
