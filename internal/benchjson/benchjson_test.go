package benchjson

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(benches ...Bench) Report {
	return Report{Date: 1700000000000, Tool: "go", Benches: benches}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	in := report(
		Bench{Name: "churn/admit/cache=off", Value: 1.5e7, Unit: "ns/op", Extra: "32 admits"},
		Bench{Name: "churn/speedup", Value: 12.5, Unit: "x"},
	)
	if err := Write(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Date != in.Date || out.Tool != "go" || len(out.Benches) != 2 {
		t.Fatalf("round trip mangled the report: %+v", out)
	}
	if out.Benches[0] != in.Benches[0] || out.Benches[1] != in.Benches[1] {
		t.Fatalf("benches diverged: %+v", out.Benches)
	}
}

// TestWriteShape pins the github-action-benchmark entry shape: the
// action's Go ingestion expects date/tool/benches with name, value,
// unit per sample.
func TestWriteShape(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.json")
	if err := Write(path, report(Bench{Name: "n", Value: 1, Unit: "ns/op"})); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("report file does not end in a newline")
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"date", "tool", "benches"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("serialized report lacks %q", key)
		}
	}
	b := raw["benches"].([]any)[0].(map[string]any)
	for _, key := range []string{"name", "value", "unit"} {
		if _, ok := b[key]; !ok {
			t.Errorf("serialized bench lacks %q", key)
		}
	}
	if _, ok := b["extra"]; ok {
		t.Error("empty extra should be omitted")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("Read of a missing file succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bad); err == nil {
		t.Error("Read of malformed JSON succeeded")
	}
}

func TestCompareDirections(t *testing.T) {
	base := report(
		Bench{Name: "lat", Value: 100, Unit: "ns/op"},
		Bench{Name: "speed", Value: 10, Unit: "x"},
	)
	cases := []struct {
		name       string
		fresh      Report
		violations int
	}{
		{"identical", base, 0},
		{"within-tolerance", report(
			Bench{Name: "lat", Value: 109, Unit: "ns/op"},
			Bench{Name: "speed", Value: 9.1, Unit: "x"}), 0},
		{"latency-regressed", report(
			Bench{Name: "lat", Value: 125, Unit: "ns/op"},
			Bench{Name: "speed", Value: 10, Unit: "x"}), 1},
		{"speedup-regressed", report(
			Bench{Name: "lat", Value: 100, Unit: "ns/op"},
			Bench{Name: "speed", Value: 5, Unit: "x"}), 1},
		{"latency-improved-ok", report(
			Bench{Name: "lat", Value: 10, Unit: "ns/op"},
			Bench{Name: "speed", Value: 50, Unit: "x"}), 0},
		{"missing-bench", report(
			Bench{Name: "lat", Value: 100, Unit: "ns/op"}), 1},
		{"unit-changed", report(
			Bench{Name: "lat", Value: 100, Unit: "ms/op"},
			Bench{Name: "speed", Value: 10, Unit: "x"}), 1},
		{"both-regressed", report(
			Bench{Name: "lat", Value: 200, Unit: "ns/op"},
			Bench{Name: "speed", Value: 1, Unit: "x"}), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Compare(base, tc.fresh, 10)
			if len(got) != tc.violations {
				t.Fatalf("Compare returned %d violations %v, want %d", len(got), got, tc.violations)
			}
		})
	}
}

// TestCompareIgnoresNewBenches: benches only present in the fresh run
// are not violations — they join the baseline when it regenerates.
func TestCompareIgnoresNewBenches(t *testing.T) {
	base := report(Bench{Name: "lat", Value: 100, Unit: "ns/op"})
	fresh := report(
		Bench{Name: "lat", Value: 100, Unit: "ns/op"},
		Bench{Name: "brand-new", Value: 1, Unit: "ns/op"},
	)
	if got := Compare(base, fresh, 10); len(got) != 0 {
		t.Fatalf("new bench flagged: %v", got)
	}
}
