// Package benchjson reads and writes benchmark results in the
// github-action-benchmark entry shape (the `tool`/`benches` objects the
// action appends to dev/bench/data.js — see buildpacks/pack for the
// reference trajectory), and compares two reports for CI regression
// gating. One BENCH_<n>.json is committed per PR so the benchmark
// trajectory is machine-readable across the repo's history.
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// Bench is one benchmark sample.
type Bench struct {
	// Name identifies the bench ("churn/admit-ns/cache=on").
	Name string `json:"name"`
	// Value is the sample in Unit. Units ending in "/op" (ns/op, B/op)
	// gate smaller-is-better; ratio units ("x") gate bigger-is-better.
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// Extra carries free-form context (iteration counts, proc counts).
	Extra string `json:"extra,omitempty"`
}

// Report is one run's result set.
type Report struct {
	// Date is the collection time in Unix milliseconds.
	Date int64 `json:"date"`
	// Tool tags the producer; "go" matches the action's Go benchmark
	// ingestion.
	Tool    string  `json:"tool"`
	Benches []Bench `json:"benches"`
}

// NewReport stamps an empty "go"-tool report with the current time.
func NewReport() Report {
	return Report{Date: time.Now().UnixMilli(), Tool: "go"}
}

// Add appends one sample.
func (r *Report) Add(name string, value float64, unit, extra string) {
	r.Benches = append(r.Benches, Bench{Name: name, Value: value, Unit: unit, Extra: extra})
}

// Write marshals the report (indented, trailing newline) to path.
func Write(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchjson: marshal: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Read unmarshals a report from path.
func Read(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("benchjson: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("benchjson: parse %s: %w", path, err)
	}
	return r, nil
}

// smallerIsBetter reports the gate direction for a unit: per-op costs
// regress upward, ratios (speedups) regress downward.
func smallerIsBetter(unit string) bool {
	return strings.HasSuffix(unit, "/op")
}

// Compare gates fresh against base: every bench present in base must
// exist in fresh and must not have regressed by more than tolerancePct
// percent in its unit's direction. It returns one message per
// violation; an empty slice passes. Benches only in fresh are ignored
// (new benches enter the baseline when it is regenerated).
func Compare(base, fresh Report, tolerancePct float64) []string {
	idx := make(map[string]Bench, len(fresh.Benches))
	for _, b := range fresh.Benches {
		idx[b.Name] = b
	}
	var violations []string
	for _, old := range base.Benches {
		now, ok := idx[old.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from fresh run", old.Name))
			continue
		}
		if now.Unit != old.Unit {
			violations = append(violations, fmt.Sprintf("%s: unit changed %s -> %s", old.Name, old.Unit, now.Unit))
			continue
		}
		tol := tolerancePct / 100
		if smallerIsBetter(old.Unit) {
			if limit := old.Value * (1 + tol); now.Value > limit {
				violations = append(violations, fmt.Sprintf(
					"%s: %.0f %s exceeds baseline %.0f by more than %.0f%%",
					old.Name, now.Value, old.Unit, old.Value, tolerancePct))
			}
		} else {
			if limit := old.Value * (1 - tol); now.Value < limit {
				violations = append(violations, fmt.Sprintf(
					"%s: %.2f %s fell below baseline %.2f by more than %.0f%%",
					old.Name, now.Value, old.Unit, old.Value, tolerancePct))
			}
		}
	}
	return violations
}
