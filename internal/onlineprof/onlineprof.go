// Package onlineprof closes the loop between execution and planning:
// it watches the observability event stream for per-stage service
// times, maintains EWMA estimates per (stage, PU class, quantized
// interference Env), and detects when reality has drifted from the
// model estimates the current schedule was solved against. A confirmed
// drift latches a learned observed/modeled ratio and hands the runtime
// a replan trigger, so schedules converge toward what the device
// actually does — the feedback variant of the paper's offline
// interference-aware profiling (Sec. 3.2), which by construction can
// only see the contention patterns it was calibrated with.
//
// Drift detection is deliberately conservative: a cell must accumulate
// a minimum number of samples before it can vote, the smoothed
// estimate must diverge from the model by a relative threshold, and
// the divergence must persist for a configured number of consecutive
// observations (hysteresis) before a drift latches. Once latched, a
// session stays latched until the runtime consumes the drift
// (TakeDrift), replans, and re-registers the new model generation —
// one replan per generation, never a replan storm.
package onlineprof

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"bettertogether/internal/core"
	"bettertogether/internal/obs"
	"bettertogether/internal/profiler"
)

// Defaults for Config fields left zero.
const (
	// DefaultAlpha is the EWMA smoothing factor: ~63% of the estimate's
	// weight sits in the last 1/alpha observations.
	DefaultAlpha = 0.3
	// DefaultDriftThreshold is the relative divergence |ewma/model − 1|
	// at which an observation counts as a drift strike. 0.25 sits well
	// above the profiler's repetition noise and well below the ≥2×
	// stage-level modeling errors the paper reports (Sec. 3.2).
	DefaultDriftThreshold = 0.25
	// DefaultMinSamples is the per-cell sample floor before the cell
	// may vote on drift.
	DefaultMinSamples = 6
	// DefaultHysteresis is the consecutive-strike count required to
	// latch a drift.
	DefaultHysteresis = 3
	// DefaultBucket quantizes environment signatures, matching
	// schedcache.DefaultBucket so estimate cells pool at the same
	// granularity the schedule cache keys at.
	DefaultBucket = 0.05
)

// Config tunes the estimator. Zero values select the defaults above.
type Config struct {
	Alpha          float64
	DriftThreshold float64
	MinSamples     int
	Hysteresis     int
	Bucket         float64
	// DriftHook, when non-nil, is invoked once per latched drift, after
	// the estimator's mutex has been released — hooks may call back into
	// estimator methods or other locked subsystems (the session tracer
	// records its drift-detected span through this).
	DriftHook func(Drift)
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultAlpha
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = DefaultDriftThreshold
	}
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = DefaultHysteresis
	}
	if c.Bucket <= 0 {
		c.Bucket = DefaultBucket
	}
	return c
}

// ModelCell is one (stage, PU) model prediction for a session's current
// schedule: the latency the planner believed when it placed the stage.
type ModelCell struct {
	Stage   string
	PU      core.PUClass
	Seconds float64
}

// Drift is one confirmed model/reality divergence, returned by
// TakeDrift for the runtime to act on.
type Drift struct {
	Session string
	Stage   string
	PU      core.PUClass
	// Gen is the model generation the drift was detected against.
	Gen int64
	// Modeled and Observed are the planner's estimate and the smoothed
	// observation, in seconds; Ratio is Observed/Modeled.
	Modeled, Observed, Ratio float64
}

// cell is one EWMA estimate bucket.
type cell struct {
	ewma float64
	n    int
}

// sessionModel is the drift-tracking state for one admitted session.
type sessionModel struct {
	gen     int64
	envSig  string
	model   map[string]float64 // cellID(stage, pu) -> modeled seconds
	strikes map[string]int
	latched bool
	pending *Drift
}

// Estimator maintains the EWMA cells and per-session drift state. All
// methods are safe for concurrent use; ObserveEvent is the hot path and
// takes one mutex acquisition per event.
type Estimator struct {
	cfg Config

	mu       sync.Mutex
	cells    map[string]*cell // cellID + "|" + envSig
	sessions map[string]*sessionModel
	learned  map[string]float64 // cellID -> observed/modeled ratio, latched cells only

	observations  uint64
	drifts        uint64
	invalidations uint64
}

// NewEstimator builds an estimator with cfg's zero fields defaulted.
func NewEstimator(cfg Config) *Estimator {
	return &Estimator{
		cfg:      cfg.withDefaults(),
		cells:    make(map[string]*cell),
		sessions: make(map[string]*sessionModel),
		learned:  make(map[string]float64),
	}
}

// Bucket returns the environment quantization width in effect.
func (e *Estimator) Bucket() float64 { return e.cfg.Bucket }

// Config returns the effective configuration, zero fields defaulted.
func (e *Estimator) Config() Config { return e.cfg }

// cellID keys model entries and learned ratios on (stage, PU).
func cellID(stage string, pu core.PUClass) string {
	return stage + "|" + string(pu)
}

// SetSessionModel registers (or replaces) the model predictions behind
// a session's current schedule: gen identifies the model generation —
// bump it on every replan — and envSig is the quantized signature of
// the interference environment the solve ran against (soc.Env.Signature
// with the estimator's bucket). Registration resets the session's
// strikes and latch, so each generation can trigger at most one drift.
func (e *Estimator) SetSessionModel(session string, gen int64, envSig string, cells []ModelCell) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sm := &sessionModel{
		gen:     gen,
		envSig:  envSig,
		model:   make(map[string]float64, len(cells)),
		strikes: make(map[string]int, len(cells)),
	}
	for _, c := range cells {
		if c.Seconds > 0 {
			sm.model[cellID(c.Stage, c.PU)] = c.Seconds
		}
	}
	e.sessions[session] = sm
}

// RemoveSession drops a session's drift state after exit. Its
// contributions to the global EWMA cells and learned ratios persist —
// that is the point of pooling by environment signature.
func (e *Estimator) RemoveSession(session string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.sessions, session)
}

// ObserveEvent folds one event into the estimator. StageDone events
// carrying an executing PU class update the matching EWMA cell and the
// emitting session's drift tracking; any event that reports subscriber
// loss (Dropped > 0) first invalidates the estimate windows, since an
// unknown number of observations went missing.
func (e *Estimator) ObserveEvent(ev obs.Event) {
	if ev.Dropped > 0 {
		e.Invalidate()
	}
	if ev.Kind != obs.KindStageDone || ev.PU == "" || ev.Stage == "" || ev.Dur <= 0 {
		return
	}
	// The hook fires after observeStage has released the estimator mutex,
	// so hooks may call back into locked subsystems without ordering risk.
	if d := e.observeStage(ev); d != nil && e.cfg.DriftHook != nil {
		e.cfg.DriftHook(*d)
	}
}

// observeStage folds one StageDone event into the EWMA cells and drift
// tracking under the mutex, returning the drift if this observation
// latched one.
func (e *Estimator) observeStage(ev obs.Event) *Drift {
	seconds := ev.Dur.Seconds()

	e.mu.Lock()
	defer e.mu.Unlock()
	sm, ok := e.sessions[ev.Session]
	if !ok {
		// No registered model: nothing to compare against, and pooling
		// anonymous observations would give cells an untrackable
		// environment. Skip.
		return nil
	}
	e.observations++

	id := cellID(ev.Stage, core.PUClass(ev.PU))
	key := id + "|" + sm.envSig
	c := e.cells[key]
	if c == nil {
		c = &cell{ewma: seconds}
		e.cells[key] = c
	} else {
		c.ewma += e.cfg.Alpha * (seconds - c.ewma)
	}
	c.n++

	modeled, tracked := sm.model[id]
	if !tracked || sm.latched || c.n < e.cfg.MinSamples {
		return nil
	}
	div := c.ewma/modeled - 1
	if div < 0 {
		div = -div
	}
	if div < e.cfg.DriftThreshold {
		sm.strikes[id] = 0
		return nil
	}
	sm.strikes[id]++
	if sm.strikes[id] < e.cfg.Hysteresis {
		return nil
	}
	// Latch: record the learned correction and park the drift for the
	// runtime to consume at the next wave boundary.
	sm.latched = true
	ratio := c.ewma / modeled
	e.learned[id] = ratio
	e.drifts++
	sm.pending = &Drift{
		Session:  ev.Session,
		Stage:    ev.Stage,
		PU:       core.PUClass(ev.PU),
		Gen:      sm.gen,
		Modeled:  modeled,
		Observed: c.ewma,
		Ratio:    ratio,
	}
	return sm.pending
}

// TakeDrift returns the session's pending drift, if one has latched
// since the session's model generation was registered. The pending
// report is consumed; the latch itself stays set until SetSessionModel
// registers the next generation, so a drift triggers exactly one
// replan.
func (e *Estimator) TakeDrift(session string) (Drift, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sm, ok := e.sessions[session]
	if !ok || sm.pending == nil {
		return Drift{}, false
	}
	d := *sm.pending
	sm.pending = nil
	return d, true
}

// Invalidate resets every cell's sample count and every session's
// strike counters: after an event-loss window the stream is no longer a
// faithful sample of execution, so the minimum-sample floor must be
// re-earned before drift can latch again. Smoothed values survive as
// priors; latched drifts and learned ratios are confirmed state and
// also survive.
func (e *Estimator) Invalidate() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, c := range e.cells {
		c.n = 0
	}
	for _, sm := range e.sessions {
		for id := range sm.strikes {
			sm.strikes[id] = 0
		}
	}
	e.invalidations++
}

// LearnedAdjust renders the latched corrections as a profiler.Adjust
// plus a canonical digest for schedule-cache keying. Cells that never
// latched contribute nothing (ratio 1), so an estimator with no
// confirmed drift returns (nil, "") and planning remains byte-identical
// to the uncorrected path. The digest renders sorted cells at fixed
// precision, so equal corrections always key equally.
func (e *Estimator) LearnedAdjust() (profiler.Adjust, string) {
	e.mu.Lock()
	ratios := make(map[string]float64, len(e.learned))
	for id, r := range e.learned {
		ratios[id] = r
	}
	e.mu.Unlock()
	if len(ratios) == 0 {
		return nil, ""
	}
	ids := make([]string, 0, len(ratios))
	for id := range ratios {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%.4f", id, ratios[id])
	}
	adjust := func(stage string, pu core.PUClass, seconds float64) float64 {
		if r, ok := ratios[cellID(stage, pu)]; ok {
			return seconds * r
		}
		return seconds
	}
	return adjust, b.String()
}

// LearnedRatio reports the latched correction for one (stage, PU), or
// (1, false) when that cell never confirmed a drift.
func (e *Estimator) LearnedRatio(stage string, pu core.PUClass) (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.learned[cellID(stage, pu)]
	if !ok {
		return 1, false
	}
	return r, true
}

// Estimate reports the current smoothed observation for (stage, PU,
// envSig) and its sample count since the last invalidation.
func (e *Estimator) Estimate(stage string, pu core.PUClass, envSig string) (seconds float64, samples int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.cells[cellID(stage, pu)+"|"+envSig]
	if !ok {
		return 0, 0
	}
	return c.ewma, c.n
}

// Stats snapshots the estimator's counters. DriftReplans is owned by
// the runtime (it knows which drifts actually produced a replan) and is
// left zero here.
func (e *Estimator) Stats() obs.OnlineProfStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return obs.OnlineProfStats{
		Observations:    e.observations,
		Cells:           len(e.cells),
		LatchedCells:    len(e.learned),
		DriftsTriggered: e.drifts,
		Invalidations:   e.invalidations,
	}
}
