package onlineprof

import (
	"sync/atomic"
	"time"

	"bettertogether/internal/obs"
)

// Observer pumps a stream subscription into an Estimator on a
// background goroutine. Ingestion is asynchronous — emitters never
// block on estimation — but the runtime needs determinism at decision
// points: before acting on drift at a wave boundary it calls Sync with
// the stream's emission total, which blocks until every emission up to
// that point is accounted for (processed or counted as dropped). In
// simulation, where emission happens-before the wave boundary, this
// makes the feedback loop fully deterministic.
type Observer struct {
	est *Estimator
	sub *obs.Subscription

	// base is the stream's emission total at subscribe time: emissions
	// before the observer existed can never be accounted for and are
	// excluded from the Sync arithmetic.
	base      uint64
	delivered atomic.Uint64
	done      chan struct{}
}

// NewObserver subscribes to the stream (buffer capacity buffer; the
// stream's default when <= 0) and starts the ingestion goroutine.
// Returns nil when stream or est is nil, so callers can thread an
// optional observer without nil checks at every use.
func NewObserver(est *Estimator, stream *obs.Stream, buffer int) *Observer {
	if est == nil || stream == nil {
		return nil
	}
	sub := stream.Subscribe(buffer)
	if sub == nil {
		return nil
	}
	o := &Observer{est: est, sub: sub, base: stream.Total(), done: make(chan struct{})}
	go o.loop()
	return o
}

func (o *Observer) loop() {
	defer close(o.done)
	for e := range o.sub.C {
		o.est.ObserveEvent(e)
		o.delivered.Add(1)
	}
}

// Estimator returns the estimator this observer feeds.
func (o *Observer) Estimator() *Estimator {
	if o == nil {
		return nil
	}
	return o.est
}

// accounted is the number of post-subscribe emissions this observer has
// fully dealt with: processed deliveries plus emissions the stream
// counted as dropped for this subscriber (drops are counted at emit
// time, so a trailing loss window is visible here immediately).
func (o *Observer) accounted() uint64 {
	return o.base + o.delivered.Load() + o.sub.Drops()
}

// Sync blocks until every emission up to total (a stream.Total()
// reading) is accounted for, the observer shuts down, or the timeout
// elapses; it reports whether the watermark was reached. A nil observer
// is always synced.
func (o *Observer) Sync(total uint64, timeout time.Duration) bool {
	if o == nil {
		return true
	}
	deadline := time.Now().Add(timeout)
	for {
		if o.accounted() >= total {
			return true
		}
		select {
		case <-o.done:
			return o.accounted() >= total
		default:
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Close stops ingestion and joins the goroutine. Safe on nil and safe
// to call twice.
func (o *Observer) Close() {
	if o == nil {
		return
	}
	o.sub.Close()
	<-o.done
}
