package onlineprof

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bettertogether/internal/core"
	"bettertogether/internal/obs"
)

func TestObserverIngestsAndSyncs(t *testing.T) {
	e := NewEstimator(testConfig())
	e.SetSessionModel("s", 1, "", []ModelCell{{Stage: "conv", PU: core.ClassGPU, Seconds: 0.010}})
	stream := obs.NewStream(64)
	o := NewObserver(e, stream, 64)
	defer o.Close()

	for i := 0; i < 10; i++ {
		stream.Emit(stageDone("s", "conv", core.ClassGPU, 0.020))
	}
	if !o.Sync(stream.Total(), 2*time.Second) {
		t.Fatal("Sync timed out with a drained buffer")
	}
	if got := e.Stats().Observations; got != 10 {
		t.Fatalf("estimator saw %d observations after Sync, want 10", got)
	}
	if _, ok := e.TakeDrift("s"); !ok {
		t.Fatal("observer-fed drift did not latch")
	}
}

func TestObserverSyncAccountsForDrops(t *testing.T) {
	e := NewEstimator(testConfig())
	e.SetSessionModel("s", 1, "", []ModelCell{{Stage: "conv", PU: core.ClassGPU, Seconds: 0.010}})
	stream := obs.NewStream(64)
	o := NewObserver(e, stream, 1) // deliberately lossy
	defer o.Close()

	// Burst far past the buffer: many emissions drop — including,
	// possibly, the very last ones. Sync must still reach the watermark
	// because drops are counted at emit time.
	for i := 0; i < 200; i++ {
		stream.Emit(stageDone("s", "conv", core.ClassGPU, 0.020))
	}
	if !o.Sync(stream.Total(), 2*time.Second) {
		t.Fatalf("Sync timed out despite drop accounting (drops=%d)", o.sub.Drops())
	}
	if o.sub.Drops() == 0 {
		t.Fatal("setup: burst past a 1-slot buffer produced no drops")
	}
	// A trailing loss window is only reported on the next delivery: emit
	// one recovery event, sync, and the loss must have invalidated the
	// estimate floors exactly once along the way.
	stream.Emit(stageDone("s", "conv", core.ClassGPU, 0.020))
	if !o.Sync(stream.Total(), 2*time.Second) {
		t.Fatal("post-recovery Sync timed out")
	}
	if e.Stats().Invalidations == 0 {
		t.Fatal("drops occurred but no invalidation was recorded")
	}
}

func TestObserverExcludesPreSubscribeEmissions(t *testing.T) {
	stream := obs.NewStream(64)
	for i := 0; i < 5; i++ {
		stream.Emit(obs.Event{Kind: obs.KindAdmit})
	}
	o := NewObserver(NewEstimator(Config{}), stream, 8)
	defer o.Close()
	// The watermark includes the 5 unobservable pre-subscribe events;
	// base accounting must cover them without any new emission.
	if !o.Sync(stream.Total(), 2*time.Second) {
		t.Fatal("Sync cannot account for pre-subscribe emissions")
	}
}

func TestObserverNilSafety(t *testing.T) {
	var o *Observer
	if !o.Sync(99, time.Millisecond) {
		t.Fatal("nil observer must report synced")
	}
	o.Close() // must not panic
	if o.Estimator() != nil {
		t.Fatal("nil observer returned an estimator")
	}
	if NewObserver(nil, obs.NewStream(4), 4) != nil {
		t.Fatal("observer without estimator")
	}
	if NewObserver(NewEstimator(Config{}), nil, 4) != nil {
		t.Fatal("observer without stream")
	}
}

// TestConcurrentIngestionDuringChurn exercises the estimator under the
// race detector: emitters on several goroutines while sessions churn
// (register/remove) and readers snapshot stats, drift, and adjustments.
func TestConcurrentIngestionDuringChurn(t *testing.T) {
	e := NewEstimator(Config{MinSamples: 2, Hysteresis: 2})
	stream := obs.NewStream(256)
	o := NewObserver(e, stream, 256)
	defer o.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			session := fmt.Sprintf("s%d", g)
			for i := 0; i < 100; i++ {
				e.SetSessionModel(session, int64(i), "gpu=8", []ModelCell{
					{Stage: "conv", PU: core.ClassGPU, Seconds: 0.010},
				})
				stream.Emit(stageDone(session, "conv", core.ClassGPU, 0.021))
				if i%10 == 9 {
					e.TakeDrift(session)
					e.RemoveSession(session)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			e.Stats()
			e.LearnedAdjust()
			e.Estimate("conv", core.ClassGPU, "gpu=8")
			if i%50 == 0 {
				e.Invalidate()
			}
		}
	}()
	wg.Wait()
	if !o.Sync(stream.Total(), 5*time.Second) {
		t.Fatal("Sync timed out after churn")
	}
}
