package onlineprof

import (
	"strings"
	"testing"
	"time"

	"bettertogether/internal/core"
	"bettertogether/internal/obs"
)

// stageDone builds the estimator-facing tap event.
func stageDone(session, stage string, pu core.PUClass, seconds float64) obs.Event {
	return obs.Event{
		Kind: obs.KindStageDone, Session: session,
		Stage: stage, PU: string(pu),
		Dur: time.Duration(seconds * float64(time.Second)),
	}
}

// feed pushes n identical observations.
func feed(e *Estimator, n int, ev obs.Event) {
	for i := 0; i < n; i++ {
		e.ObserveEvent(ev)
	}
}

func testConfig() Config {
	return Config{MinSamples: 3, Hysteresis: 2, DriftThreshold: 0.25}
}

func TestDriftLatchesAfterFloorAndHysteresis(t *testing.T) {
	e := NewEstimator(testConfig())
	e.SetSessionModel("s", 1, "gpu=8", []ModelCell{{Stage: "conv", PU: core.ClassGPU, Seconds: 0.010}})

	// Observed 2× the model. The first latch-eligible observation is
	// MinSamples (floor), and the drift needs Hysteresis consecutive
	// strikes on top of reaching the floor.
	ev := stageDone("s", "conv", core.ClassGPU, 0.020)
	feed(e, 3, ev) // floor reached, 1 strike
	if _, ok := e.TakeDrift("s"); ok {
		t.Fatal("drift latched before hysteresis")
	}
	e.ObserveEvent(ev) // strike 2 → latch
	d, ok := e.TakeDrift("s")
	if !ok {
		t.Fatal("drift did not latch")
	}
	if d.Session != "s" || d.Stage != "conv" || d.PU != core.ClassGPU || d.Gen != 1 {
		t.Fatalf("drift identity wrong: %+v", d)
	}
	if d.Ratio < 1.9 || d.Ratio > 2.1 {
		t.Fatalf("ratio %v, want ≈2 (identical samples keep the EWMA exact)", d.Ratio)
	}
	// Consumed: no duplicate report, and the latch holds the generation
	// closed so further strikes cannot re-trigger.
	if _, ok := e.TakeDrift("s"); ok {
		t.Fatal("drift reported twice")
	}
	feed(e, 10, ev)
	if _, ok := e.TakeDrift("s"); ok {
		t.Fatal("latched generation re-triggered")
	}
	if got := e.Stats().DriftsTriggered; got != 1 {
		t.Fatalf("DriftsTriggered = %d, want 1", got)
	}

	// A new generation re-arms detection.
	e.SetSessionModel("s", 2, "gpu=8", []ModelCell{{Stage: "conv", PU: core.ClassGPU, Seconds: 0.010}})
	feed(e, 2, ev) // cell already has samples past the floor: 2 strikes suffice
	if d, ok := e.TakeDrift("s"); !ok || d.Gen != 2 {
		t.Fatalf("new generation drift = %+v ok=%v", d, ok)
	}
}

func TestAccurateModelNeverLatches(t *testing.T) {
	e := NewEstimator(testConfig())
	e.SetSessionModel("s", 1, "", []ModelCell{{Stage: "conv", PU: core.ClassGPU, Seconds: 0.010}})
	// Within-threshold wobble: ±10% around the model.
	for i := 0; i < 50; i++ {
		sec := 0.009
		if i%2 == 0 {
			sec = 0.011
		}
		e.ObserveEvent(stageDone("s", "conv", core.ClassGPU, sec))
	}
	if _, ok := e.TakeDrift("s"); ok {
		t.Fatal("accurate model latched a drift")
	}
	s := e.Stats()
	if s.DriftsTriggered != 0 || s.LatchedCells != 0 {
		t.Fatalf("stats report drift for an accurate model: %+v", s)
	}
	if s.Observations != 50 || s.Cells != 1 {
		t.Fatalf("observations/cells = %d/%d, want 50/1", s.Observations, s.Cells)
	}
}

func TestHysteresisResetsOnRecovery(t *testing.T) {
	e := NewEstimator(Config{MinSamples: 1, Hysteresis: 3, DriftThreshold: 0.25, Alpha: 1})
	e.SetSessionModel("s", 1, "", []ModelCell{{Stage: "conv", PU: core.ClassGPU, Seconds: 0.010}})
	slow := stageDone("s", "conv", core.ClassGPU, 0.020)
	good := stageDone("s", "conv", core.ClassGPU, 0.010)
	// Two strikes, recovery, two strikes, recovery: never latches.
	feed(e, 2, slow)
	e.ObserveEvent(good)
	feed(e, 2, slow)
	e.ObserveEvent(good)
	if _, ok := e.TakeDrift("s"); ok {
		t.Fatal("non-consecutive strikes latched")
	}
	feed(e, 3, slow)
	if _, ok := e.TakeDrift("s"); !ok {
		t.Fatal("three consecutive strikes did not latch")
	}
}

func TestObservationsIgnoreUnknownSessionsAndNonTaps(t *testing.T) {
	e := NewEstimator(testConfig())
	e.SetSessionModel("known", 1, "", []ModelCell{{Stage: "conv", PU: core.ClassGPU, Seconds: 0.01}})
	e.ObserveEvent(stageDone("ghost", "conv", core.ClassGPU, 0.02))
	e.ObserveEvent(obs.Event{Kind: obs.KindStageDone, Session: "known", Stage: "conv", Dur: time.Millisecond}) // no PU
	e.ObserveEvent(obs.Event{Kind: obs.KindWaveEnd, Session: "known"})
	e.ObserveEvent(stageDone("known", "", core.ClassGPU, 0.02)) // no stage
	if s := e.Stats(); s.Observations != 0 || s.Cells != 0 {
		t.Fatalf("non-taps counted: %+v", s)
	}
}

func TestCellsPoolByEnvSignature(t *testing.T) {
	e := NewEstimator(testConfig())
	e.SetSessionModel("a", 1, "gpu=8", []ModelCell{{Stage: "conv", PU: core.ClassGPU, Seconds: 0.01}})
	e.SetSessionModel("b", 1, "gpu=8", []ModelCell{{Stage: "conv", PU: core.ClassGPU, Seconds: 0.01}})
	e.SetSessionModel("c", 1, "big=4", []ModelCell{{Stage: "conv", PU: core.ClassGPU, Seconds: 0.01}})
	e.ObserveEvent(stageDone("a", "conv", core.ClassGPU, 0.01))
	e.ObserveEvent(stageDone("b", "conv", core.ClassGPU, 0.01))
	e.ObserveEvent(stageDone("c", "conv", core.ClassGPU, 0.01))
	if got := e.Stats().Cells; got != 2 {
		t.Fatalf("cells = %d, want 2 (a and b pool on the shared signature)", got)
	}
	if _, n := e.Estimate("conv", core.ClassGPU, "gpu=8"); n != 2 {
		t.Fatalf("pooled cell has %d samples, want 2", n)
	}
	// Session exit keeps the pooled estimate.
	e.RemoveSession("a")
	if sec, n := e.Estimate("conv", core.ClassGPU, "gpu=8"); n != 2 || sec <= 0 {
		t.Fatalf("RemoveSession dropped the pooled cell: %v/%d", sec, n)
	}
}

func TestInvalidateResetsFloorsButKeepsLearned(t *testing.T) {
	e := NewEstimator(testConfig())
	e.SetSessionModel("s", 1, "", []ModelCell{{Stage: "conv", PU: core.ClassGPU, Seconds: 0.010}})
	slow := stageDone("s", "conv", core.ClassGPU, 0.020)
	feed(e, 4, slow) // latched
	if _, ok := e.TakeDrift("s"); !ok {
		t.Fatal("setup: no latch")
	}
	if r, ok := e.LearnedRatio("conv", core.ClassGPU); !ok || r < 1.9 {
		t.Fatalf("learned ratio %v/%v", r, ok)
	}

	// A loss window: dropped-stamped event invalidates sample floors.
	e.SetSessionModel("s", 2, "", []ModelCell{{Stage: "conv", PU: core.ClassGPU, Seconds: 0.010}})
	lossy := slow
	lossy.Dropped = 7
	e.ObserveEvent(lossy)
	if got := e.Stats().Invalidations; got != 1 {
		t.Fatalf("Invalidations = %d, want 1", got)
	}
	// The learned correction survives; the EWMA survives as a prior but
	// the floor must be re-earned: the post-loss event plus two more is
	// exactly the floor, giving the first strike only.
	if _, ok := e.LearnedRatio("conv", core.ClassGPU); !ok {
		t.Fatal("Invalidate dropped the learned ratio")
	}
	feed(e, 1, slow)
	if _, ok := e.TakeDrift("s"); ok {
		t.Fatal("drift latched before the floor was re-earned")
	}
	feed(e, 2, slow) // floor re-earned + hysteresis
	if _, ok := e.TakeDrift("s"); !ok {
		t.Fatal("drift never re-latched after recovery")
	}
}

func TestLearnedAdjustDigestAndIdentity(t *testing.T) {
	e := NewEstimator(testConfig())
	if adj, dig := e.LearnedAdjust(); adj != nil || dig != "" {
		t.Fatal("empty estimator must return the identity (nil, \"\")")
	}
	e.SetSessionModel("s", 1, "", []ModelCell{
		{Stage: "conv", PU: core.ClassGPU, Seconds: 0.010},
		{Stage: "fold", PU: core.ClassBig, Seconds: 0.010},
	})
	feed(e, 4, stageDone("s", "conv", core.ClassGPU, 0.020))
	adj, dig := e.LearnedAdjust()
	if adj == nil || dig == "" {
		t.Fatal("latched estimator returned identity adjust")
	}
	if !strings.Contains(dig, "conv|gpu=2.0000") {
		t.Fatalf("digest %q lacks the latched cell at fixed precision", dig)
	}
	// Latched cell rescales; every other cell is untouched.
	if got := adj("conv", core.ClassGPU, 0.010); got < 0.019 || got > 0.021 {
		t.Fatalf("latched cell adjusted to %v, want ≈0.020", got)
	}
	if got := adj("fold", core.ClassBig, 0.010); got != 0.010 {
		t.Fatalf("unlatched cell adjusted to %v, want identity", got)
	}
	// Digest is deterministic across calls.
	if _, dig2 := e.LearnedAdjust(); dig2 != dig {
		t.Fatalf("digest unstable: %q vs %q", dig2, dig)
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	e := NewEstimator(Config{})
	if e.cfg.Alpha != DefaultAlpha || e.cfg.DriftThreshold != DefaultDriftThreshold ||
		e.cfg.MinSamples != DefaultMinSamples || e.cfg.Hysteresis != DefaultHysteresis ||
		e.cfg.Bucket != DefaultBucket {
		t.Fatalf("defaults not applied: %+v", e.cfg)
	}
	if e.Bucket() != DefaultBucket {
		t.Fatalf("Bucket() = %v", e.Bucket())
	}
	if e2 := NewEstimator(Config{Alpha: 1.5}); e2.cfg.Alpha != DefaultAlpha {
		t.Fatalf("out-of-range alpha kept: %v", e2.cfg.Alpha)
	}
}
