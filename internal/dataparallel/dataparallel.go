// Package dataparallel implements the alternative strategy the paper's
// introduction argues against (Sec. 1, citing Mittal & Vetter's survey):
// instead of pipelining stages across PUs, run *every* stage on *all*
// PUs simultaneously, splitting its data in proportion to each PU's
// profiled speed. The paper's point is that this forces PUs to execute
// poorly-suited work — the GPU still handles a slice of sorting — and
// that stage-to-PU pipelining beats it; this package makes that claim
// testable by providing both a simulated measurement and a real
// concurrent execution of the data-parallel strategy.
package dataparallel

import (
	"math"
	"math/rand"

	"bettertogether/internal/core"
	"bettertogether/internal/soc"
)

// MinShare is the smallest useful work fraction: a PU whose
// speed-proportional share falls below it is dropped from the stage and
// the remainder redistributed, since a tiny slice cannot amortize the
// PU's dispatch overhead (especially GPU launches).
const MinShare = 0.10

// Shares computes, for each stage, the fraction of its data assigned to
// each PU class: share ∝ 1/latency from the profiling table, the
// standard speed-proportional split, with sub-MinShare contributors
// dropped and the split renormalized. Rows follow tab.Stages, columns
// tab.PUs.
func Shares(tab *core.ProfileTable) [][]float64 {
	out := make([][]float64, len(tab.Stages))
	for i := range tab.Stages {
		speed := make([]float64, len(tab.PUs))
		for j := range tab.PUs {
			if t := tab.Latency[i][j]; t > 0 {
				speed[j] = 1 / t
			}
		}
		row := normalize(speed)
		// Iteratively drop sub-threshold PUs; terminates because each
		// pass removes at least one contributor or changes nothing.
		for {
			dropped := false
			for j, v := range row {
				if v > 0 && v < MinShare {
					speed[j] = 0
					dropped = true
				}
			}
			if !dropped {
				break
			}
			row = normalize(speed)
		}
		out[i] = row
	}
	return out
}

func normalize(speed []float64) []float64 {
	total := 0.0
	for _, v := range speed {
		total += v
	}
	row := make([]float64, len(speed))
	for j, v := range speed {
		if total > 0 {
			row[j] = v / total
		}
	}
	return row
}

// scaleCost returns the cost of a stage's slice: work terms scale with
// the share, structural fractions do not.
func scaleCost(c core.CostSpec, share float64) core.CostSpec {
	c.FLOPs *= share
	c.Bytes *= share
	c.WorkItems *= share
	return c
}

// Options configure a data-parallel run.
type Options struct {
	// Tasks and Warmup follow the pipeline conventions.
	Tasks, Warmup int
	// Seed drives the simulated measurement noise.
	Seed int64
}

// Predict returns the model's per-task latency: for each stage, every PU
// processes its slice concurrently under full mutual interference, and
// the stage completes when the slowest slice does; stages run in
// sequence (data parallelism does not overlap stages).
func Predict(app *core.Application, dev *soc.Device, tab *core.ProfileTable) float64 {
	shares := Shares(tab)
	total := 0.0
	for i, stage := range app.Stages {
		total += stageTime(dev, stage.Cost, tab.PUs, shares[i], nil, nil)
	}
	return total
}

// stageTime computes one stage's data-parallel completion time, sampling
// noise per PU when rng is non-nil.
func stageTime(dev *soc.Device, cost core.CostSpec, pus []core.PUClass, shares []float64, rng *rand.Rand, _ []float64) float64 {
	worst := 0.0
	for j, pu := range pus {
		if shares[j] <= 0 {
			continue
		}
		// Every other PU is busy with its own slice of the same stage.
		env := soc.Env{}
		for k, other := range pus {
			if k == j || shares[k] <= 0 {
				continue
			}
			env[other] = soc.Load{
				MemIntensity: dev.Intensity(scaleCost(cost, shares[k]), other),
			}
		}
		t := 0.0
		if rng != nil {
			t = dev.Sample(scaleCost(cost, shares[j]), pu, env, rng)
		} else {
			t = dev.Estimate(scaleCost(cost, shares[j]), pu, env)
		}
		worst = math.Max(worst, t)
	}
	return worst
}

// Simulate measures the data-parallel strategy on the simulated device:
// Tasks tasks after Warmup, each executing the stage sequence with all
// PUs co-running each stage's slices. Returns the mean per-task latency
// in seconds.
func Simulate(app *core.Application, dev *soc.Device, tab *core.ProfileTable, opts Options) float64 {
	if opts.Tasks <= 0 {
		opts.Tasks = 30
	}
	shares := Shares(tab)
	rng := rand.New(rand.NewSource(opts.Seed))
	sum := 0.0
	for task := 0; task < opts.Warmup+opts.Tasks; task++ {
		taskTime := 0.0
		for i, stage := range app.Stages {
			taskTime += stageTime(dev, stage.Cost, tab.PUs, shares[i], rng, nil)
		}
		if task >= opts.Warmup {
			sum += taskTime
		}
	}
	return sum / float64(opts.Tasks)
}
