package dataparallel

import (
	"fmt"
	"math"
	"sync"
	"time"

	"bettertogether/internal/core"
	"bettertogether/internal/soc"
)

// Execute runs the data-parallel strategy for real: every stage's
// iteration space is split across worker pools for *all* PU classes at
// once, weighted by the profiled shares, with a barrier per stage. This
// works because kernels express all parallelism through the provided
// ParallelFor; the weighted ParallelFor built here is the data-parallel
// counterpart of the pipeline engine's per-chunk pools.
//
// Returns the mean wall-clock per-task latency in seconds. A panicking
// kernel band is recovered on its worker, the stage barrier still
// completes, and the panic is surfaced as an error — the worker pools
// are drained and joined either way, so no goroutine outlives the call.
func Execute(app *core.Application, dev *soc.Device, tab *core.ProfileTable, opts Options) (float64, error) {
	if opts.Tasks <= 0 {
		opts.Tasks = 30
	}
	shares := Shares(tab)

	type pool struct {
		width int
		work  chan func()
	}
	pools := make([]*pool, len(tab.PUs))
	var wg sync.WaitGroup
	for j, puc := range tab.PUs {
		pu := dev.PU(puc)
		width := pu.Cores
		if pu.Kind == core.KindGPU {
			width = 8
		}
		p := &pool{width: width, work: make(chan func())}
		pools[j] = p
		for w := 0; w < width; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for fn := range p.work {
					fn()
				}
			}()
		}
	}
	defer func() {
		for _, p := range pools {
			close(p.work)
		}
		wg.Wait()
	}()

	// A panic in any band must not strand the stage barrier: it is
	// recovered on the worker, the first one is kept, and the stage
	// re-raises it after the barrier so the deferred pool shutdown above
	// still joins every worker.
	var (
		pmu  sync.Mutex
		pval any
	)

	// weightedPar splits [0,n) first across PU classes by share, then
	// across each class's workers.
	weightedPar := func(stage int) core.ParallelFor {
		sh := shares[stage]
		return func(n int, body func(lo, hi int)) {
			if n <= 0 {
				return
			}
			var done sync.WaitGroup
			// Class boundaries by cumulative share.
			cum := 0.0
			start := 0
			for j, p := range pools {
				cum += sh[j]
				end := int(math.Round(cum * float64(n)))
				if j == len(pools)-1 {
					end = n
				}
				if end <= start {
					continue
				}
				// Split the class band across its workers.
				bands := p.width
				if bands > end-start {
					bands = end - start
				}
				for w := 0; w < bands; w++ {
					lo := start + w*(end-start)/bands
					hi := start + (w+1)*(end-start)/bands
					if lo >= hi {
						continue
					}
					done.Add(1)
					p.work <- func() {
						defer done.Done()
						defer func() {
							if r := recover(); r != nil {
								pmu.Lock()
								if pval == nil {
									pval = r
								}
								pmu.Unlock()
							}
						}()
						body(lo, hi)
					}
				}
				start = end
			}
			done.Wait()
		}
	}

	task := app.NewTask()
	var measured time.Duration
	for seq := 0; seq < opts.Warmup+opts.Tasks; seq++ {
		task.Reset(seq)
		t0 := time.Now()
		for i, stage := range app.Stages {
			// Data-parallel mixes CPU and GPU execution within one
			// stage; our kernels are backend-symmetric so the host-side
			// entry point drives both.
			stage.CPU(task, weightedPar(i))
			pmu.Lock()
			r := pval
			pmu.Unlock()
			if r != nil {
				return 0, fmt.Errorf("dataparallel: stage %q (task %d) kernel panicked: %v",
					app.Stages[i].Name, seq, r)
			}
		}
		if seq >= opts.Warmup {
			measured += time.Since(t0)
		}
	}
	return measured.Seconds() / float64(opts.Tasks), nil
}
