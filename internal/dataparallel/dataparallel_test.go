package dataparallel

import (
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"bettertogether/internal/apps/octree"
	"bettertogether/internal/core"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/profiler"
	"bettertogether/internal/sched"
	"bettertogether/internal/soc"
)

func setup(t *testing.T) (*core.Application, *soc.Device, profiler.Tables) {
	t.Helper()
	app := octree.NewApplication(8192, octree.UniformGen{})
	dev := soc.NewPixel7a()
	tabs := profiler.ProfileBoth(app, dev, profiler.Config{Seed: 5})
	return app, dev, tabs
}

func TestSharesNormalizedAndSpeedOrdered(t *testing.T) {
	_, _, tabs := setup(t)
	shares := Shares(tabs.Heavy)
	for i, row := range shares {
		sum := 0.0
		for _, v := range row {
			if v < 0 {
				t.Fatalf("stage %d: negative share", i)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("stage %d: shares sum to %v", i, sum)
		}
		// Faster PUs get larger shares.
		for a := range row {
			for b := range row {
				ta, tb := tabs.Heavy.Latency[i][a], tabs.Heavy.Latency[i][b]
				if ta < tb && row[a] < row[b] {
					t.Fatalf("stage %d: slower PU got larger share", i)
				}
			}
		}
	}
}

func TestPredictPositiveAndSumsStages(t *testing.T) {
	app, dev, tabs := setup(t)
	p := Predict(app, dev, tabs.Heavy)
	if p <= 0 {
		t.Fatalf("prediction %v", p)
	}
	// Data parallelism must at least beat the *worst* homogeneous
	// deployment (the little cluster alone)...
	littleOnly := tabs.Isolated.ChunkTime(core.ClassLittle, 0, len(app.Stages))
	if p >= littleOnly {
		t.Errorf("data-parallel %.4g !< little-only %.4g", p, littleOnly)
	}
	// ...but on this mixed-pattern workload it does NOT beat the best
	// homogeneous baseline: every stage drags its straggler slices and
	// full mutual interference — exactly the suboptimality the paper's
	// introduction argues (Sec. 1).
	bigOnly := tabs.Isolated.ChunkTime(core.ClassBig, 0, len(app.Stages))
	if p < bigOnly {
		t.Logf("note: data-parallel %.4g beat big-only %.4g on this configuration", p, bigOnly)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	app, dev, tabs := setup(t)
	a := Simulate(app, dev, tabs.Heavy, Options{Tasks: 10, Warmup: 2, Seed: 3})
	b := Simulate(app, dev, tabs.Heavy, Options{Tasks: 10, Warmup: 2, Seed: 3})
	if a != b {
		t.Error("same seed, different results")
	}
	if a <= 0 {
		t.Errorf("measured %v", a)
	}
}

func TestPipelineBeatsDataParallelOnOctreePixel(t *testing.T) {
	// The paper's Sec. 1 argument: data-parallel forces the GPU to run a
	// slice of sorting and the little cores a slice of everything;
	// pipeline scheduling avoids that. On the octree workload the BT
	// pipeline must win.
	app, dev, tabs := setup(t)
	dp := Simulate(app, dev, tabs.Heavy, Options{Tasks: 20, Warmup: 5, Seed: 9})

	opt := sched.New(app, dev, tabs)
	opts := pipeline.Options{Tasks: 20, Warmup: 5, Seed: 9}
	_, tune, _, err := opt.Optimize(sched.BetterTogether, opts)
	if err != nil {
		t.Fatal(err)
	}
	bt := tune.Measured[tune.BestIndex]
	if bt >= dp {
		t.Errorf("BT pipeline %.4gms !< data-parallel %.4gms", bt*1e3, dp*1e3)
	}
}

func TestExecuteRealDataParallel(t *testing.T) {
	// Functional check: the weighted ParallelFor must drive the real
	// kernels to a correct result (octree task completes, per-task time
	// positive), exercising simultaneous multi-pool execution.
	app := octree.NewApplication(2048, octree.UniformGen{})
	dev := soc.NewPixel7a()
	tabs := profiler.ProfileBoth(app, dev, profiler.Config{Seed: 1})
	sec, err := Execute(app, dev, tabs.Heavy, Options{Tasks: 4, Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sec <= 0 {
		t.Fatalf("per-task %v", sec)
	}
}

func TestExecuteRealDataParallelKernelPanic(t *testing.T) {
	// A panicking kernel band must surface as an error — with every pool
	// worker joined on the way out, not stranded behind a dead barrier.
	app := octree.NewApplication(2048, octree.UniformGen{})
	boom := app.Stages[1].CPU
	app.Stages[1].CPU = func(to *core.TaskObject, par core.ParallelFor) {
		par(128, func(lo, hi int) { panic("band exploded") })
		boom(to, par)
	}
	dev := soc.NewPixel7a()
	tabs := profiler.ProfileBoth(app, dev, profiler.Config{Seed: 1})
	before := runtime.NumGoroutine()
	_, err := Execute(app, dev, tabs.Heavy, Options{Tasks: 2, Warmup: 0})
	if err == nil {
		t.Fatal("kernel panic not surfaced as error")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("unexpected error: %v", err)
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines asserts the goroutine count returns to (at most) the
// pre-run level, allowing the runtime a grace period to unwind.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestScaleCost(t *testing.T) {
	c := core.CostSpec{FLOPs: 100, Bytes: 40, WorkItems: 10,
		ParallelFraction: 0.9, Divergence: 0.5, Irregularity: 0.3, Dispatches: 2}
	s := scaleCost(c, 0.25)
	if s.FLOPs != 25 || s.Bytes != 10 || s.WorkItems != 2.5 {
		t.Errorf("work terms wrong: %+v", s)
	}
	if s.ParallelFraction != 0.9 || s.Divergence != 0.5 || s.Irregularity != 0.3 || s.Dispatches != 2 {
		t.Errorf("structural terms must not scale: %+v", s)
	}
}
