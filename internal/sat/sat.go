// Package sat is a small DPLL satisfiability solver with two-watched-
// literal unit propagation and model enumeration through blocking
// clauses. It exists because the paper solves its scheduling constraints
// with an SMT solver (z3) driven exactly this way: find a model, record
// it, add a clause forbidding it (the C5ℓ blocking clauses of Sec. 3.3),
// repeat. The solver package encodes the paper's boolean constraint
// system onto this engine and handles the arithmetic side conditions
// lazily, giving a second, independently-implemented path to the same
// schedules as the branch-and-bound search — each validates the other.
package sat

import "fmt"

// Lit is a literal: variable v (0-based) appears as v+1 positively and
// -(v+1) negated.
type Lit int

// Pos and Neg build literals for variable v.
func Pos(v int) Lit { return Lit(v + 1) }

// Neg returns the negated literal of variable v.
func Neg(v int) Lit { return Lit(-(v + 1)) }

// Var returns the 0-based variable of a literal.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l) - 1
	}
	return int(l) - 1
}

// Sign reports whether the literal is positive.
func (l Lit) Sign() bool { return l > 0 }

// neg returns the complementary literal.
func (l Lit) neg() Lit { return -l }

// code indexes watch lists: 2v for the positive literal, 2v+1 negative.
func (l Lit) code() int {
	v := l.Var()
	if l.Sign() {
		return 2 * v
	}
	return 2*v + 1
}

// Clause is a disjunction of literals.
type Clause []Lit

// Solver holds a CNF formula with persistent watch lists; assignment
// state is rebuilt per Solve, so clauses (notably blocking clauses) may
// be added between calls.
type Solver struct {
	numVars int
	clauses []Clause
	// watches[code] lists clause indices currently watching that
	// literal. Every clause with >= 2 literals watches its first two
	// positions (positions are swapped as watches move).
	watches [][]int
	// units are the single-literal clauses, enqueued at solve start.
	units []Lit
	empty bool // an empty clause was added: trivially UNSAT
}

// New creates a solver over numVars variables.
func New(numVars int) *Solver {
	if numVars <= 0 {
		panic(fmt.Sprintf("sat: need positive variable count, got %d", numVars))
	}
	return &Solver{
		numVars: numVars,
		watches: make([][]int, 2*numVars),
	}
}

// NumVars returns the variable count.
func (s *Solver) NumVars() int { return s.numVars }

// NumClauses returns the clause count (including unit clauses).
func (s *Solver) NumClauses() int { return len(s.clauses) + len(s.units) }

// Add appends a clause. An empty clause makes the formula UNSAT;
// out-of-range literals panic.
func (s *Solver) Add(lits ...Lit) {
	for _, l := range lits {
		if l == 0 || l.Var() >= s.numVars {
			panic(fmt.Sprintf("sat: literal %d out of range", l))
		}
	}
	switch len(lits) {
	case 0:
		s.empty = true
	case 1:
		s.units = append(s.units, lits[0])
	default:
		c := make(Clause, len(lits))
		copy(c, lits)
		idx := len(s.clauses)
		s.clauses = append(s.clauses, c)
		s.watches[c[0].code()] = append(s.watches[c[0].code()], idx)
		s.watches[c[1].code()] = append(s.watches[c[1].code()], idx)
	}
}

// search is the per-Solve state.
type search struct {
	s      *Solver
	assign []int8 // 0 unassigned, +1 true, -1 false
	trail  []Lit
	// decisions[i] is the trail index of decision level i's literal.
	decisions []int
	// flipped[i] reports whether level i already tried both phases.
	flipped []bool
	qhead   int
}

func (st *search) value(l Lit) int8 {
	v := st.assign[l.Var()]
	if v == 0 {
		return 0
	}
	if l.Sign() {
		return v
	}
	return -v
}

// enqueue asserts l; it returns false if l is already false.
func (st *search) enqueue(l Lit) bool {
	switch st.value(l) {
	case 1:
		return true
	case -1:
		return false
	}
	if l.Sign() {
		st.assign[l.Var()] = 1
	} else {
		st.assign[l.Var()] = -1
	}
	st.trail = append(st.trail, l)
	return true
}

// propagate processes pending assignments through the watch lists; it
// returns false on conflict.
func (st *search) propagate() bool {
	s := st.s
	for st.qhead < len(st.trail) {
		l := st.trail[st.qhead]
		st.qhead++
		falsified := l.neg()
		watchList := s.watches[falsified.code()]
		kept := watchList[:0]
		conflict := false
		for wi := 0; wi < len(watchList); wi++ {
			ci := watchList[wi]
			c := s.clauses[ci]
			// Normalize: watched literals sit at c[0], c[1]; put the
			// falsified one at c[1].
			if c[0] == falsified {
				c[0], c[1] = c[1], c[0]
			}
			// If the other watch is true the clause is satisfied.
			if st.value(c[0]) == 1 {
				kept = append(kept, ci)
				continue
			}
			// Look for a replacement watch.
			moved := false
			for k := 2; k < len(c); k++ {
				if st.value(c[k]) != -1 {
					c[1], c[k] = c[k], c[1]
					s.watches[c[1].code()] = append(s.watches[c[1].code()], ci)
					moved = true
					break
				}
			}
			if moved {
				continue // watch moved off this literal
			}
			// Clause is unit (or conflicting) on c[0].
			kept = append(kept, ci)
			if !st.enqueue(c[0]) {
				// Conflict: keep the remaining watchers and fail.
				kept = append(kept, watchList[wi+1:]...)
				conflict = true
				break
			}
		}
		s.watches[falsified.code()] = kept
		if conflict {
			return false
		}
	}
	return true
}

// backtrack undoes to the most recent unflipped decision and flips it;
// it returns false when no decision remains (UNSAT).
func (st *search) backtrack() bool {
	for len(st.decisions) > 0 {
		level := len(st.decisions) - 1
		pos := st.decisions[level]
		decided := st.trail[pos]
		// Undo all assignments at or above the decision.
		for i := len(st.trail) - 1; i >= pos; i-- {
			st.assign[st.trail[i].Var()] = 0
		}
		st.trail = st.trail[:pos]
		st.qhead = pos
		if st.flipped[level] {
			st.decisions = st.decisions[:level]
			st.flipped = st.flipped[:level]
			continue
		}
		st.flipped[level] = true
		if st.enqueue(decided.neg()) {
			return true
		}
		// Flipping immediately conflicts (shouldn't happen after undo,
		// but keep the invariant): pop the level.
		st.decisions = st.decisions[:level]
		st.flipped = st.flipped[:level]
	}
	return false
}

// Solve returns a satisfying assignment (true/false per variable) and
// whether one exists. The formula is not modified; unassigned variables
// default to false in the model.
func (s *Solver) Solve() ([]bool, bool) {
	if s.empty {
		return nil, false
	}
	st := &search{s: s, assign: make([]int8, s.numVars)}
	for _, u := range s.units {
		if !st.enqueue(u) {
			return nil, false
		}
	}
	for {
		if !st.propagate() {
			if !st.backtrack() {
				return nil, false
			}
			continue
		}
		// Decide the first unassigned variable, preferring false so
		// enumeration visits sparse models first.
		branch := -1
		for v := 0; v < s.numVars; v++ {
			if st.assign[v] == 0 {
				branch = v
				break
			}
		}
		if branch < 0 {
			model := make([]bool, s.numVars)
			for v, a := range st.assign {
				model[v] = a == 1
			}
			return model, true
		}
		st.decisions = append(st.decisions, len(st.trail))
		st.flipped = append(st.flipped, false)
		st.enqueue(Neg(branch))
	}
}

// Block adds a clause forbidding the model's restriction to vars —
// the paper's C5ℓ blocking clause. Only the listed variables
// participate, so models differing elsewhere are also excluded; pass the
// decision variables.
func (s *Solver) Block(model []bool, vars []int) {
	c := make([]Lit, 0, len(vars))
	for _, v := range vars {
		if model[v] {
			c = append(c, Neg(v))
		} else {
			c = append(c, Pos(v))
		}
	}
	s.Add(c...)
}

// EnumerateModels repeatedly solves and blocks over the given decision
// variables, visiting every distinct restriction until visit returns
// false or the formula becomes unsatisfiable. It returns the number of
// models visited. The solver accumulates the blocking clauses (callers
// wanting a fresh formula should re-encode).
func (s *Solver) EnumerateModels(vars []int, visit func(model []bool) bool) int {
	count := 0
	for {
		model, ok := s.Solve()
		if !ok {
			return count
		}
		count++
		if !visit(model) {
			return count
		}
		s.Block(model, vars)
	}
}
