package sat

import (
	"math/rand"
	"testing"
)

func TestLiterals(t *testing.T) {
	if Pos(3) != 4 || Neg(3) != -4 {
		t.Error("literal encoding wrong")
	}
	if Pos(3).Var() != 3 || Neg(3).Var() != 3 {
		t.Error("Var wrong")
	}
	if !Pos(0).Sign() || Neg(0).Sign() {
		t.Error("Sign wrong")
	}
}

func TestTrivialSAT(t *testing.T) {
	s := New(2)
	s.Add(Pos(0))
	s.Add(Neg(1))
	model, ok := s.Solve()
	if !ok {
		t.Fatal("UNSAT on trivially satisfiable formula")
	}
	if !model[0] || model[1] {
		t.Errorf("model = %v", model)
	}
}

func TestTrivialUNSAT(t *testing.T) {
	s := New(1)
	s.Add(Pos(0))
	s.Add(Neg(0))
	if _, ok := s.Solve(); ok {
		t.Error("SAT on contradictory formula")
	}
}

func TestImplicationChain(t *testing.T) {
	// x0 ∧ (x0→x1) ∧ (x1→x2) forces all true via unit propagation.
	s := New(3)
	s.Add(Pos(0))
	s.Add(Neg(0), Pos(1))
	s.Add(Neg(1), Pos(2))
	model, ok := s.Solve()
	if !ok {
		t.Fatal("UNSAT")
	}
	for v, val := range model {
		if !val {
			t.Errorf("var %d should be true", v)
		}
	}
}

func TestPigeonhole32UNSAT(t *testing.T) {
	// 3 pigeons into 2 holes: classic small UNSAT. Var(p, h) = p*2 + h.
	s := New(6)
	v := func(p, h int) int { return p*2 + h }
	for p := 0; p < 3; p++ {
		s.Add(Pos(v(p, 0)), Pos(v(p, 1))) // each pigeon somewhere
	}
	for h := 0; h < 2; h++ {
		for p1 := 0; p1 < 3; p1++ {
			for p2 := p1 + 1; p2 < 3; p2++ {
				s.Add(Neg(v(p1, h)), Neg(v(p2, h))) // no shared hole
			}
		}
	}
	if _, ok := s.Solve(); ok {
		t.Error("pigeonhole 3-into-2 is UNSAT")
	}
}

func TestXorEnumeration(t *testing.T) {
	// (x0 ∨ x1) ∧ (¬x0 ∨ ¬x1): exactly two models over {x0, x1}.
	s := New(2)
	s.Add(Pos(0), Pos(1))
	s.Add(Neg(0), Neg(1))
	var models [][]bool
	n := s.EnumerateModels([]int{0, 1}, func(m []bool) bool {
		models = append(models, append([]bool(nil), m...))
		return true
	})
	if n != 2 || len(models) != 2 {
		t.Fatalf("enumerated %d models", n)
	}
	if models[0][0] == models[1][0] {
		t.Error("enumeration repeated a model")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	s := New(3) // free variables: 8 models over all three
	n := s.EnumerateModels([]int{0, 1, 2}, func(m []bool) bool { return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestEnumerateRestriction(t *testing.T) {
	// Enumerating over a subset of variables counts distinct
	// restrictions, not total models: 3 free vars, enumerate over 1.
	s := New(3)
	n := s.EnumerateModels([]int{0}, func(m []bool) bool { return true })
	if n != 2 {
		t.Errorf("restricted enumeration visited %d, want 2", n)
	}
}

func TestBlockExcludesModel(t *testing.T) {
	s := New(2)
	model, ok := s.Solve()
	if !ok {
		t.Fatal("free formula UNSAT")
	}
	s.Block(model, []int{0, 1})
	second, ok := s.Solve()
	if !ok {
		t.Fatal("blocking one of four models made it UNSAT")
	}
	if second[0] == model[0] && second[1] == model[1] {
		t.Error("blocked model returned again")
	}
}

func TestAddPanicsOnBadLiteral(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(2).Add(Pos(5))
}

func TestNewPanicsOnZeroVars(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0)
}

func TestStats(t *testing.T) {
	s := New(4)
	s.Add(Pos(0), Pos(1))
	if s.NumVars() != 4 || s.NumClauses() != 1 {
		t.Error("stats wrong")
	}
}

// TestRandom3CNFAgainstBruteForce fuzzes the watched-literal machinery:
// satisfiability of random small formulas must match exhaustive
// evaluation, and returned models must actually satisfy the formula.
func TestRandom3CNFAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		nVars := 2 + rng.Intn(9)
		nClauses := 1 + rng.Intn(5*nVars)
		clauses := make([]Clause, nClauses)
		s := New(nVars)
		for i := range clauses {
			width := 1 + rng.Intn(3)
			c := make(Clause, 0, width)
			for k := 0; k < width; k++ {
				v := rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					c = append(c, Pos(v))
				} else {
					c = append(c, Neg(v))
				}
			}
			clauses[i] = c
			s.Add(c...)
		}
		eval := func(model uint) bool {
			for _, c := range clauses {
				ok := false
				for _, l := range c {
					bit := model>>uint(l.Var())&1 == 1
					if bit == l.Sign() {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
			return true
		}
		bruteSAT := false
		for m := uint(0); m < 1<<uint(nVars); m++ {
			if eval(m) {
				bruteSAT = true
				break
			}
		}
		model, ok := s.Solve()
		if ok != bruteSAT {
			t.Fatalf("trial %d: solver says %v, brute force says %v", trial, ok, bruteSAT)
		}
		if ok {
			var bits uint
			for v, val := range model {
				if val {
					bits |= 1 << uint(v)
				}
			}
			if !eval(bits) {
				t.Fatalf("trial %d: returned model does not satisfy the formula", trial)
			}
		}
	}
}

// TestEnumerationCompleteAgainstBruteForce checks AllSAT counts.
func TestEnumerationCompleteAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 50; trial++ {
		nVars := 2 + rng.Intn(6)
		s := New(nVars)
		var clauses []Clause
		for i := 0; i < 1+rng.Intn(2*nVars); i++ {
			width := 2 + rng.Intn(2)
			c := make(Clause, 0, width)
			for k := 0; k < width; k++ {
				v := rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					c = append(c, Pos(v))
				} else {
					c = append(c, Neg(v))
				}
			}
			clauses = append(clauses, c)
			s.Add(c...)
		}
		want := 0
		for m := uint(0); m < 1<<uint(nVars); m++ {
			ok := true
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if (m>>uint(l.Var())&1 == 1) == l.Sign() {
						sat = true
						break
					}
				}
				if !sat {
					ok = false
					break
				}
			}
			if ok {
				want++
			}
		}
		vars := make([]int, nVars)
		for v := range vars {
			vars[v] = v
		}
		got := s.EnumerateModels(vars, func([]bool) bool { return true })
		if got != want {
			t.Fatalf("trial %d: enumerated %d models, brute force says %d", trial, got, want)
		}
	}
}
