package report

import (
	"strings"
	"testing"
)

// TestSessionsGolden pins the multi-session summary table rendering:
// column set, ms/energy formatting, the n/a energy fallback, and error
// rows surfacing in the status column. Any formatting change must update
// this deliberately.
func TestSessionsGolden(t *testing.T) {
	rows := []SessionRow{
		{Name: "octree#0", App: "octree", Schedule: "[big gpu]", Replans: 1,
			Tasks: 30, PerTask: 0.004152, Elapsed: 0.12456, EnergyJ: 0.0857},
		{Name: "alex#1", App: "alexnet", Schedule: "[gpu]", Replans: 0,
			Tasks: 5, PerTask: 0.2, Elapsed: 1.0, Err: "context canceled"},
	}
	got := Sessions("runtime sessions on Test SoC", rows)
	want := "runtime sessions on Test SoC\n" +
		"session   app      tasks  per-task (ms)  elapsed (ms)  energy/task (J)  replans  schedule   status          \n" +
		"--------  -------  -----  -------------  ------------  ---------------  -------  ---------  ----------------\n" +
		"octree#0  octree   30     4.152          124.6         0.0857           1        [big gpu]  ok              \n" +
		"alex#1    alexnet  5      200.0          1000.0        n/a              0        [gpu]      context canceled\n"
	if got != want {
		t.Errorf("Sessions drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSessionsRowOrderPreserved(t *testing.T) {
	rows := []SessionRow{
		{Name: "b#1", App: "b"},
		{Name: "a#0", App: "a"},
	}
	out := Sessions("t", rows)
	if strings.Index(out, "b#1") > strings.Index(out, "a#0") {
		t.Errorf("rows reordered:\n%s", out)
	}
}
