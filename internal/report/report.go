// Package report renders the experiment outputs as aligned ASCII tables,
// horizontal bar charts, and heatmaps — the textual equivalents of the
// paper's tables and figures, suitable for terminals and logs.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple aligned-column text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Render produces the aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Ms formats seconds as milliseconds with adaptive precision.
func Ms(seconds float64) string {
	ms := seconds * 1e3
	switch {
	case math.IsNaN(ms):
		return "n/a"
	case ms >= 100:
		return fmt.Sprintf("%.1f", ms)
	case ms >= 10:
		return fmt.Sprintf("%.2f", ms)
	default:
		return fmt.Sprintf("%.3f", ms)
	}
}

// F2 formats a ratio with two decimals.
func F2(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", v)
}

// F4 formats a correlation with four decimals.
func F4(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.4f", v)
}

// BarChart renders labeled horizontal bars scaled to width.
type BarChart struct {
	Title string
	Width int
	bars  []struct {
		label string
		value float64
	}
}

// NewBarChart creates a chart; width <= 0 defaults to 40 characters.
func NewBarChart(title string, width int) *BarChart {
	if width <= 0 {
		width = 40
	}
	return &BarChart{Title: title, Width: width}
}

// Add appends a labeled bar.
func (c *BarChart) Add(label string, value float64) {
	c.bars = append(c.bars, struct {
		label string
		value float64
	}{label, value})
}

// Render draws the chart.
func (c *BarChart) Render() string {
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	maxV, maxL := 0.0, 0
	for _, bar := range c.bars {
		if bar.value > maxV {
			maxV = bar.value
		}
		if len(bar.label) > maxL {
			maxL = len(bar.label)
		}
	}
	for _, bar := range c.bars {
		n := 0
		if maxV > 0 {
			n = int(math.Round(bar.value / maxV * float64(c.Width)))
		}
		if n == 0 && bar.value > 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%-*s | %s %.2f\n", maxL, bar.label, strings.Repeat("#", n), bar.value)
	}
	return b.String()
}

// Heatmap renders a labeled numeric matrix (rows × cols).
type Heatmap struct {
	Title     string
	RowLabels []string
	ColLabels []string
	Values    [][]float64
	// Format formats cell values; nil uses F4.
	Format func(float64) string
}

// Render draws the matrix with aligned columns.
func (h *Heatmap) Render() string {
	format := h.Format
	if format == nil {
		format = F4
	}
	t := NewTable(h.Title, append([]string{""}, h.ColLabels...)...)
	for i, rl := range h.RowLabels {
		cells := []string{rl}
		for j := range h.ColLabels {
			cells = append(cells, format(h.Values[i][j]))
		}
		t.AddRow(cells...)
	}
	return t.Render()
}

// SessionRow is one runtime session's line in a multi-app summary.
type SessionRow struct {
	// Name is the session's runtime identity (e.g. "octree#1"); App is
	// the application name.
	Name, App string
	// Schedule renders the session's latest plan; Replans counts how
	// often admission churn re-planned it.
	Schedule string
	Replans  int
	// Tasks is the number of completed stream tasks.
	Tasks int
	// PerTask and Elapsed are in seconds; EnergyJ in joules (0 → "n/a").
	PerTask, Elapsed, EnergyJ float64
	// Err is the session's terminal error, if any.
	Err string
}

// Sessions renders the per-session summary table of a multi-app runtime
// run. Rows render in the order given (callers pass admission order),
// so interleaved sessions produce deterministic output.
func Sessions(title string, rows []SessionRow) string {
	t := NewTable(title,
		"session", "app", "tasks", "per-task (ms)", "elapsed (ms)", "energy/task (J)", "replans", "schedule", "status")
	for _, r := range rows {
		status := "ok"
		if r.Err != "" {
			status = r.Err
		}
		energy := "n/a"
		if r.EnergyJ > 0 {
			energy = fmt.Sprintf("%.4f", r.EnergyJ)
		}
		t.AddRow(r.Name, r.App, fmt.Sprintf("%d", r.Tasks),
			Ms(r.PerTask), Ms(r.Elapsed), energy,
			fmt.Sprintf("%d", r.Replans), r.Schedule, status)
	}
	return t.Render()
}

// Section wraps a report body with a header rule for multi-experiment
// output streams.
func Section(name, body string) string {
	rule := strings.Repeat("=", len(name)+8)
	return fmt.Sprintf("%s\n=== %s ===\n%s\n%s\n", rule, name, rule, body)
}
