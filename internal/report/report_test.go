package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("T", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRow("b", "22222")
	out := tab.Render()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "alpha") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns aligned: header and rows share the separator width.
	if len(lines[1]) != len(lines[2]) {
		t.Error("separator misaligned with header")
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.AddRow("x")
	out := tab.Render()
	if !strings.Contains(out, "x") {
		t.Error("row lost")
	}
}

func TestMs(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0.200, "200.0"},
		{0.020, "20.00"},
		{0.002, "2.000"},
		{math.NaN(), "n/a"},
	}
	for _, c := range cases {
		if got := Ms(c.in); got != c.want {
			t.Errorf("Ms(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatters(t *testing.T) {
	if F2(1.234) != "1.23" || F4(0.98765) != "0.9877" {
		t.Error("formatting wrong")
	}
	if F2(math.NaN()) != "n/a" || F4(math.NaN()) != "n/a" {
		t.Error("NaN handling wrong")
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("Speedups", 10)
	c.Add("a", 2)
	c.Add("bb", 8)
	c.Add("zero", 0)
	out := c.Render()
	if !strings.Contains(out, "Speedups") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines:\n%s", out)
	}
	// Largest bar fills the width.
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) {
		t.Errorf("max bar not full width: %q", lines[2])
	}
	// Small but nonzero values still draw one tick.
	small := NewBarChart("", 10)
	small.Add("tiny", 0.001)
	small.Add("big", 100)
	if !strings.Contains(strings.Split(small.Render(), "\n")[0], "#") {
		t.Error("tiny bar invisible")
	}
}

func TestHeatmap(t *testing.T) {
	h := &Heatmap{
		Title:     "corr",
		RowLabels: []string{"r1", "r2"},
		ColLabels: []string{"c1", "c2"},
		Values:    [][]float64{{0.9, 0.8}, {0.7, 0.6}},
	}
	out := h.Render()
	for _, want := range []string{"corr", "r1", "c2", "0.9000", "0.6000"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	h.Format = F2
	if !strings.Contains(h.Render(), "0.90") {
		t.Error("custom format ignored")
	}
}

func TestSection(t *testing.T) {
	out := Section("Fig 1", "body\n")
	if !strings.Contains(out, "=== Fig 1 ===") || !strings.Contains(out, "body") {
		t.Errorf("section malformed:\n%s", out)
	}
}
