// Package profiler is the BT-Profiler (paper Sec. 3.2): black-box
// profiling of every stage on every PU class, in two execution modes —
// isolated (the conventional methodology of prior work) and
// interference-heavy, where every other PU concurrently runs the same
// computation as the measuring PU. Each measurement repeats Reps times
// (30 in the paper) and the mean populates the profiling table.
//
// The profiler never looks inside kernels or the SoC model's parameters:
// it only draws latency samples, exactly as the paper's hardware-timer
// instrumentation does.
package profiler

import (
	"math/rand"

	"bettertogether/internal/core"
	"bettertogether/internal/soc"
	"bettertogether/internal/stats"
)

// DefaultReps matches the paper's 30 repetitions per measurement.
const DefaultReps = 30

// Adjust rescales one profiled mean latency before it enters the table.
// It receives the stage name, the PU class, and the measured mean in
// seconds, and returns the value to store. Two producers use it: the
// online profiler overlays learned observed/modeled ratios so replans
// solve against corrected latencies, and experiments inject controlled
// modeling error to exercise drift detection. A nil Adjust is identity.
type Adjust func(stage string, pu core.PUClass, seconds float64) float64

// Compose chains adjustments left to right; nil entries are skipped. A
// call with no (effective) adjustments returns nil, keeping the
// identity case representable as the nil Adjust.
func Compose(adjusts ...Adjust) Adjust {
	live := make([]Adjust, 0, len(adjusts))
	for _, a := range adjusts {
		if a != nil {
			live = append(live, a)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(stage string, pu core.PUClass, seconds float64) float64 {
		for _, a := range live {
			seconds = a(stage, pu, seconds)
		}
		return seconds
	}
}

// Config controls a profiling run.
type Config struct {
	// Reps is the measurement repetition count (DefaultReps when <= 0).
	Reps int
	// Seed drives the measurement-noise stream, keeping profiling
	// deterministic per configuration.
	Seed int64
	// BaseEnv is an external interference environment overlaid on every
	// measurement, isolated and heavy alike: PU classes busy on behalf
	// of *other* workloads resident on the device. The runtime layer
	// profiles applications this way when re-planning, so tables reflect
	// who else is on the SoC. Nil reproduces the paper's single-app
	// profiling exactly. Loads on the class being measured are kept —
	// they model a co-runner contending for that class's bandwidth from
	// the outside.
	BaseEnv soc.Env
	// Adjust, when non-nil, rescales every profiled mean before it is
	// stored: learned online-profiling corrections, or injected modeling
	// error in experiments. It sees the post-mean value, so repetition
	// noise averages out before the correction applies.
	Adjust Adjust
}

func (c Config) withDefaults() Config {
	if c.Reps <= 0 {
		c.Reps = DefaultReps
	}
	return c
}

// Profile builds the stage × PU table for one application on one device
// in the given mode.
func Profile(app *core.Application, dev *soc.Device, mode core.ProfileMode, cfg Config) *core.ProfileTable {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	table := core.NewProfileTable(app.Name, dev.Name, mode, app.StageNames(), dev.Classes())
	samples := make([]float64, cfg.Reps)
	for i, stage := range app.Stages {
		for _, pu := range dev.Classes() {
			var env soc.Env
			if mode == core.InterferenceHeavy {
				// All other PUs run the same computation as the
				// measuring PU (Sec. 3.2).
				env = dev.HeavyEnv(stage.Cost, pu)
			}
			if len(cfg.BaseEnv) > 0 {
				env = cfg.BaseEnv.Overlay(env)
			}
			for r := 0; r < cfg.Reps; r++ {
				samples[r] = dev.Sample(stage.Cost, pu, env, rng)
			}
			mean := stats.Mean(samples)
			if cfg.Adjust != nil {
				mean = cfg.Adjust(stage.Name, pu, mean)
			}
			table.Set(i, pu, mean)
		}
	}
	return table
}

// Tables bundles both profiling modes for one app-device pair.
type Tables struct {
	Isolated *core.ProfileTable
	Heavy    *core.ProfileTable
}

// ProfileBoth runs both modes with correlated seeds.
func ProfileBoth(app *core.Application, dev *soc.Device, cfg Config) Tables {
	return Tables{
		Isolated: Profile(app, dev, core.Isolated, cfg),
		Heavy:    Profile(app, dev, core.InterferenceHeavy, Config{Reps: cfg.Reps, Seed: cfg.Seed + 1, BaseEnv: cfg.BaseEnv, Adjust: cfg.Adjust}),
	}
}

// For selects the table matching the given mode.
func (t Tables) For(mode core.ProfileMode) *core.ProfileTable {
	if mode == core.InterferenceHeavy {
		return t.Heavy
	}
	return t.Isolated
}

// InterferenceRatios returns, per PU class, the mean over stages of
// heavy/isolated latency — the quantity Fig. 7 plots per device. Values
// above 1 are slowdowns under contention; below 1 are the counter-
// intuitive speedups (GPU clock boosts) of Sec. 5.3. A class with no
// stage measured at a positive isolated latency has no defined ratio and
// is omitted from the map rather than reported as NaN (stats.Mean of an
// empty slice), which would otherwise flow silently into Fig. 7 reports.
func InterferenceRatios(t Tables) map[core.PUClass]float64 {
	out := make(map[core.PUClass]float64, len(t.Heavy.PUs))
	for j, pu := range t.Heavy.PUs {
		ratios := make([]float64, 0, len(t.Heavy.Stages))
		for i := range t.Heavy.Stages {
			iso := t.Isolated.Latency[i][j]
			if iso > 0 {
				ratios = append(ratios, t.Heavy.Latency[i][j]/iso)
			}
		}
		if len(ratios) == 0 {
			continue
		}
		out[pu] = stats.Mean(ratios)
	}
	return out
}

// MaxStageRatio returns the largest per-stage heavy/isolated ratio and
// the stage and PU where it occurs — the paper's Sec. 3.2 observation of
// stage-level differences up to 2.25× on the Pixel.
func MaxStageRatio(t Tables) (stage string, pu core.PUClass, ratio float64) {
	for i, name := range t.Heavy.Stages {
		for j, class := range t.Heavy.PUs {
			iso := t.Isolated.Latency[i][j]
			if iso <= 0 {
				continue
			}
			if r := t.Heavy.Latency[i][j] / iso; r > ratio {
				stage, pu, ratio = name, class, r
			}
		}
	}
	return stage, pu, ratio
}
