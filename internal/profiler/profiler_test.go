package profiler

import (
	"math"
	"testing"

	"bettertogether/internal/apps/alexnet"
	"bettertogether/internal/apps/octree"
	"bettertogether/internal/core"
	"bettertogether/internal/soc"
)

func TestProfileTableComplete(t *testing.T) {
	app := octree.NewApplication(4096, octree.UniformGen{})
	dev := soc.NewPixel7a()
	tab := Profile(app, dev, core.Isolated, Config{Seed: 1})
	if !tab.Complete() {
		t.Fatal("table incomplete")
	}
	if tab.App != app.Name || tab.Device == "" || tab.Mode != core.Isolated {
		t.Errorf("metadata wrong: %+v", tab)
	}
	if len(tab.Stages) != 7 || len(tab.PUs) != 4 {
		t.Fatalf("shape %dx%d", len(tab.Stages), len(tab.PUs))
	}
	for i := range tab.Stages {
		for j := range tab.PUs {
			if tab.Latency[i][j] <= 0 {
				t.Errorf("entry (%d,%d) = %v", i, j, tab.Latency[i][j])
			}
		}
	}
}

func TestProfileDeterministic(t *testing.T) {
	app := alexnet.NewDense(1, 1)
	dev := soc.NewJetson()
	a := Profile(app, dev, core.InterferenceHeavy, Config{Seed: 5})
	b := Profile(app, dev, core.InterferenceHeavy, Config{Seed: 5})
	for i := range a.Latency {
		for j := range a.Latency[i] {
			if a.Latency[i][j] != b.Latency[i][j] {
				t.Fatal("same seed, different tables")
			}
		}
	}
}

func TestRepsReduceNoise(t *testing.T) {
	// Means over 30 reps from two seeds must agree much better than
	// single samples: the point of the paper's repetition protocol.
	app := alexnet.NewDense(1, 1)
	dev := soc.NewPixel7a() // noisiest device
	many1 := Profile(app, dev, core.Isolated, Config{Reps: 30, Seed: 1})
	many2 := Profile(app, dev, core.Isolated, Config{Reps: 30, Seed: 2})
	one1 := Profile(app, dev, core.Isolated, Config{Reps: 1, Seed: 1})
	one2 := Profile(app, dev, core.Isolated, Config{Reps: 1, Seed: 2})
	var devMany, devOne float64
	for i := range many1.Latency {
		for j := range many1.Latency[i] {
			devMany += abs(many1.Latency[i][j]-many2.Latency[i][j]) / many1.Latency[i][j]
			devOne += abs(one1.Latency[i][j]-one2.Latency[i][j]) / one1.Latency[i][j]
		}
	}
	if devMany >= devOne {
		t.Errorf("30-rep tables deviate more (%v) than 1-rep tables (%v)", devMany, devOne)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestHeavyDiffersFromIsolated(t *testing.T) {
	app := octree.NewApplication(4096, octree.UniformGen{})
	dev := soc.NewPixel7a()
	tabs := ProfileBoth(app, dev, Config{Seed: 3})
	if tabs.For(core.Isolated) != tabs.Isolated || tabs.For(core.InterferenceHeavy) != tabs.Heavy {
		t.Error("For() selection wrong")
	}
	diff := 0
	for i := range tabs.Heavy.Latency {
		for j := range tabs.Heavy.Latency[i] {
			if abs(tabs.Heavy.Latency[i][j]-tabs.Isolated.Latency[i][j])/tabs.Isolated.Latency[i][j] > 0.05 {
				diff++
			}
		}
	}
	if diff < 5 {
		t.Errorf("only %d entries differ >5%% between modes; interference not captured", diff)
	}
}

func TestInterferenceRatiosDirections(t *testing.T) {
	// Fig. 7 directions: on the Pixel, CPU clusters slow down under load
	// (>1) and the GPU speeds up (<1); on the Jetson everything slows.
	app := octree.NewApplication(4096, octree.UniformGen{})

	pixel := ProfileBoth(app, soc.NewPixel7a(), Config{Seed: 7})
	rp := InterferenceRatios(pixel)
	for _, c := range []core.PUClass{core.ClassBig, core.ClassMedium, core.ClassLittle} {
		if rp[c] <= 1.0 {
			t.Errorf("pixel %s ratio %v, want > 1", c, rp[c])
		}
	}
	if rp[core.ClassGPU] >= 1.0 {
		t.Errorf("pixel gpu ratio %v, want < 1 (firmware boost)", rp[core.ClassGPU])
	}

	oneplus := ProfileBoth(app, soc.NewOnePlus11(), Config{Seed: 7})
	ro := InterferenceRatios(oneplus)
	if ro[core.ClassLittle] >= 1.0 {
		t.Errorf("oneplus little ratio %v, want < 1 (A510 boost)", ro[core.ClassLittle])
	}
	if ro[core.ClassGPU] >= 1.0 {
		t.Errorf("oneplus gpu ratio %v, want < 1", ro[core.ClassGPU])
	}

	jetson := ProfileBoth(app, soc.NewJetson(), Config{Seed: 7})
	rj := InterferenceRatios(jetson)
	for c, r := range rj {
		if r <= 1.0 {
			t.Errorf("jetson %s ratio %v, want > 1 (no boost quirks)", c, r)
		}
	}
}

func TestMaxStageRatio(t *testing.T) {
	app := octree.NewApplication(4096, octree.UniformGen{})
	tabs := ProfileBoth(app, soc.NewPixel7a(), Config{Seed: 9})
	stage, pu, ratio := MaxStageRatio(tabs)
	if stage == "" || pu == "" {
		t.Fatal("no max found")
	}
	// Sec. 3.2 reports differences up to 2.25× on the Pixel; our model
	// must show a material stage-level effect (well above the noise
	// floor).
	if ratio < 1.2 {
		t.Errorf("max stage ratio %v, want material interference (> 1.2)", ratio)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Reps != DefaultReps {
		t.Errorf("default reps = %d", c.Reps)
	}
}

func TestInterferenceRatiosOmitsUnmeasuredClass(t *testing.T) {
	// Regression: a PU class with no stage at a positive isolated latency
	// used to produce NaN (mean of an empty slice) that flowed silently
	// into Fig. 7. Such a class must be omitted from the map entirely.
	stages := []string{"s0", "s1"}
	pus := []core.PUClass{core.ClassBig, core.ClassGPU}
	iso := core.NewProfileTable("app", "dev", core.Isolated, stages, pus)
	heavy := core.NewProfileTable("app", "dev", core.InterferenceHeavy, stages, pus)
	// Big is fully measured; the GPU column stays at its NaN/zero
	// initialization (one entry explicitly zeroed, one left NaN).
	iso.Set(0, core.ClassBig, 1.0)
	iso.Set(1, core.ClassBig, 2.0)
	iso.Set(0, core.ClassGPU, 0)
	heavy.Set(0, core.ClassBig, 1.5)
	heavy.Set(1, core.ClassBig, 4.0)
	heavy.Set(0, core.ClassGPU, 3.0)
	heavy.Set(1, core.ClassGPU, 3.0)

	out := InterferenceRatios(Tables{Isolated: iso, Heavy: heavy})
	if _, ok := out[core.ClassGPU]; ok {
		t.Errorf("GPU class reported despite no measurable stage: %v", out[core.ClassGPU])
	}
	got, ok := out[core.ClassBig]
	if !ok {
		t.Fatal("big class missing")
	}
	if want := (1.5/1.0 + 4.0/2.0) / 2; math.Abs(got-want) > 1e-12 {
		t.Errorf("big ratio %v, want %v", got, want)
	}
	for pu, r := range out {
		if math.IsNaN(r) {
			t.Errorf("NaN ratio for %s", pu)
		}
	}
}

func TestAdjustRescalesTable(t *testing.T) {
	app := octree.NewApplication(4096, octree.UniformGen{})
	dev := soc.NewPixel7a()
	plain := Profile(app, dev, core.Isolated, Config{Seed: 3})
	double := func(stage string, pu core.PUClass, s float64) float64 {
		if stage == app.Stages[0].Name && pu == core.ClassGPU {
			return 2 * s
		}
		return s
	}
	adj := Profile(app, dev, core.Isolated, Config{Seed: 3, Adjust: double})
	for i := range plain.Stages {
		for j, pu := range plain.PUs {
			want := plain.Latency[i][j]
			if i == 0 && pu == core.ClassGPU {
				want *= 2
			}
			if adj.Latency[i][j] != want {
				t.Fatalf("(%d,%s) = %v, want %v", i, pu, adj.Latency[i][j], want)
			}
		}
	}
	// ProfileBoth forwards the adjustment to both modes.
	both := ProfileBoth(app, dev, Config{Seed: 3, Adjust: double})
	if both.Isolated.Latency[0][indexOf(t, both.Isolated.PUs, core.ClassGPU)] != adj.Latency[0][indexOf(t, adj.PUs, core.ClassGPU)] {
		t.Fatal("ProfileBoth dropped Adjust on the isolated table")
	}
	heavyPlain := Profile(app, dev, core.InterferenceHeavy, Config{Seed: 4})
	j := indexOf(t, heavyPlain.PUs, core.ClassGPU)
	if both.Heavy.Latency[0][j] != 2*heavyPlain.Latency[0][j] {
		t.Fatal("ProfileBoth dropped Adjust on the heavy table")
	}
}

func indexOf(t *testing.T, pus []core.PUClass, want core.PUClass) int {
	t.Helper()
	for j, pu := range pus {
		if pu == want {
			return j
		}
	}
	t.Fatalf("class %s not in %v", want, pus)
	return -1
}

func TestComposeChainsLeftToRight(t *testing.T) {
	if Compose() != nil || Compose(nil, nil) != nil {
		t.Fatal("Compose of no adjustments must stay the identity nil")
	}
	addOne := func(_ string, _ core.PUClass, s float64) float64 { return s + 1 }
	timesTen := func(_ string, _ core.PUClass, s float64) float64 { return s * 10 }
	if got := Compose(addOne, timesTen)("s", core.ClassGPU, 1); got != 20 {
		t.Fatalf("Compose(add,mul)(1) = %v, want (1+1)*10 = 20", got)
	}
	if got := Compose(timesTen, addOne)("s", core.ClassGPU, 1); got != 11 {
		t.Fatalf("Compose(mul,add)(1) = %v, want 1*10+1 = 11", got)
	}
	if got := Compose(nil, addOne, nil)("s", core.ClassGPU, 1); got != 2 {
		t.Fatalf("Compose skipping nils = %v, want 2", got)
	}
}
