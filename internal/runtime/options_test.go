package runtime

import (
	"math"
	"strings"
	"testing"

	"bettertogether/internal/core"
	"bettertogether/internal/obs"
	"bettertogether/internal/onlineprof"
	"bettertogether/internal/schedcache"
)

// identityAdjust is a valid profiler.Adjust for option-validation tests.
func identityAdjust(_ string, _ core.PUClass, sec float64) float64 { return sec }

// TestOptionValidation exercises every option's fail-fast path: a bad
// value must fail New with an error naming the option, not silently
// fall back to a default the way the Config zero-value path does.
func TestOptionValidation(t *testing.T) {
	dev := mustDevice(t, "pixel7a")
	cases := []struct {
		name string
		opt  Option
		want string
	}{
		{"nil engine", WithEngine(nil), "WithEngine"},
		{"zero bw headroom", WithHeadroom(0, 2), "WithHeadroom"},
		{"NaN core headroom", WithHeadroom(2, math.NaN()), "WithHeadroom"},
		{"zero reps", WithPlanningBudget(0, 12, 8), "WithPlanningBudget"},
		{"negative k", WithPlanningBudget(8, 12, -1), "WithPlanningBudget"},
		{"nil events", WithEvents(nil), "WithEvents"},
		{"nil cache", WithSchedCache(nil), "WithSchedCache"},
		{"negative delta", WithReplanDelta(-0.1), "WithReplanDelta"},
		{"Inf delta", WithReplanDelta(math.Inf(1)), "WithReplanDelta"},
		{"nil adjust", WithModelAdjust("x2", nil), "WithModelAdjust"},
		{"empty digest", WithModelAdjust("", identityAdjust), "WithModelAdjust"},
		{"nil option", nil, "option 0 is nil"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(dev, tc.opt)
			if err == nil {
				t.Fatal("New accepted the bad option")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %s", err, tc.want)
			}
		})
	}
}

// TestNewAppliesOptions pins that each option actually lands in the
// built runtime, observable through the public accessors.
func TestNewAppliesOptions(t *testing.T) {
	dev := mustDevice(t, "pixel7a")
	cache := schedcache.New(16, 0)
	stream := obs.NewStream(64)
	rt, err := New(dev,
		WithSchedCache(cache),
		WithReplanDelta(0.25),
		WithEvents(stream),
		WithSeed(7),
		WithHeadroom(4, 4),
		WithPlanningBudget(4, 6, 4),
		WithOnlineProfiling(onlineprof.Config{DriftThreshold: 0.5}),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()
	if rt.Cache() != cache {
		t.Error("WithSchedCache did not install the cache")
	}
	est := rt.OnlineProfiler()
	if est == nil {
		t.Fatal("WithOnlineProfiling did not build an estimator")
	}
	if got := est.Config().DriftThreshold; got != 0.5 {
		t.Errorf("estimator threshold = %v, want the configured 0.5", got)
	}
	if _, ok := rt.OnlineProfStats(); !ok {
		t.Error("OnlineProfStats reports disabled with profiling on")
	}
	if rt.Device() != dev {
		t.Error("Device() is not the constructor argument")
	}
}

// TestNewDefaultsMatchNewFromConfig pins the shim equivalence: an
// unconfigured New(dev) and the deprecated NewFromConfig zero-value
// path produce runtimes that plan identically.
func TestNewDefaultsMatchNewFromConfig(t *testing.T) {
	app := mustApp(t, "octree")
	admit := func(rt *Runtime) core.Schedule {
		t.Helper()
		defer rt.Close()
		s, err := rt.Admit(app, AdmitOptions{Tasks: 2, Seed: 3})
		if err != nil {
			t.Fatalf("Admit: %v", err)
		}
		if res := s.Wait(); res.Err != nil {
			t.Fatalf("session: %v", res.Err)
		}
		return s.Schedule()
	}

	a, err := New(mustDevice(t, "pixel7a"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	b, err := NewFromConfig(Config{Device: mustDevice(t, "pixel7a")})
	if err != nil {
		t.Fatalf("NewFromConfig: %v", err)
	}
	if sa, sb := admit(a), admit(b); sa.String() != sb.String() {
		t.Errorf("option path planned %s, config path planned %s", sa, sb)
	}
	if a.OnlineProfiler() != nil {
		t.Error("unconfigured New must not enable online profiling")
	}
	if _, ok := a.OnlineProfStats(); ok {
		t.Error("OnlineProfStats reports enabled on an unconfigured runtime")
	}
}
