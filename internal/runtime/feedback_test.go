package runtime

import (
	"fmt"
	"sync"
	"testing"

	"bettertogether/internal/core"
	"bettertogether/internal/obs"
	"bettertogether/internal/onlineprof"
)

// feedbackConfig is the low-floor estimator tuning the integration
// tests use: short sessions must be able to accumulate enough samples
// per wave to latch.
var feedbackConfig = onlineprof.Config{MinSamples: 3, Hysteresis: 2}

// TestZeroErrorZeroDriftReplans is the property the drift detector is
// gated on: with NO injected modeling error, the model the planner
// solved with matches what the simulator executes (same interference
// model on both sides), so the feedback loop must observe plenty and
// re-plan never. A false positive here means the threshold/hysteresis
// floors are not doing their job.
func TestZeroErrorZeroDriftReplans(t *testing.T) {
	rt, err := New(mustDevice(t, "pixel7a"), WithOnlineProfiling(feedbackConfig))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()
	for i, name := range []string{"octree", "alexnet-sparse"} {
		if _, err := rt.Admit(mustApp(t, name), AdmitOptions{
			Tasks: 24, WaveTasks: 6, Seed: int64(i) * 101,
		}); err != nil {
			t.Fatalf("Admit %s: %v", name, err)
		}
	}
	rt.Wait()
	s, ok := rt.OnlineProfStats()
	if !ok {
		t.Fatal("online profiling is off")
	}
	if s.Observations == 0 {
		t.Error("estimator ingested no observations")
	}
	if got := rt.ReplansFromDrift(); got != 0 {
		t.Errorf("accurate model triggered %d drift re-plans, want 0 (stats %+v)", got, s)
	}
	if s.DriftsTriggered != 0 {
		t.Errorf("accurate model latched %d drifts, want 0", s.DriftsTriggered)
	}
}

// TestInjectedErrorTriggersDriftReplan drives the full feedback loop:
// a model adjustment halves every estimate the planner sees, so the
// simulator's observed service times run 2x the registered model, the
// estimator latches drift, and the wave boundary re-plans with the
// learned ~2x correction overlaid.
func TestInjectedErrorTriggersDriftReplan(t *testing.T) {
	stream := obs.NewStream(obs.DefaultStreamCapacity)
	rt, err := New(mustDevice(t, "pixel7a"),
		WithEvents(stream),
		WithOnlineProfiling(feedbackConfig),
		WithModelAdjust("half", func(_ string, _ core.PUClass, sec float64) float64 {
			return sec * 0.5
		}),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()
	s, err := rt.Admit(mustApp(t, "octree"), AdmitOptions{Tasks: 40, WaveTasks: 5})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if res := s.Wait(); res.Err != nil {
		t.Fatalf("session: %v", res.Err)
	}
	if got := rt.ReplansFromDrift(); got < 1 {
		st, _ := rt.OnlineProfStats()
		t.Fatalf("ReplansFromDrift = %d, want >= 1 (stats %+v)", got, st)
	}
	// The learned correction must roughly undo the injected halving.
	est := rt.OnlineProfiler()
	found := false
	for _, stage := range s.App().Stages {
		for i := range rt.Device().PUs {
			if r, ok := est.LearnedRatio(stage.Name, rt.Device().PUs[i].Class); ok {
				found = true
				if r < 1.5 || r > 2.6 {
					t.Errorf("learned ratio %s/%s = %.3f, want ~2 (undoing the 0.5x injection)",
						stage.Name, rt.Device().PUs[i].Class, r)
				}
			}
		}
	}
	if !found {
		t.Error("drift latched but no learned ratio was recorded")
	}
	// A KindDriftReplan event must have landed on the caller's stream
	// (the estimator taps the same stream it serves).
	seen := false
	for _, e := range stream.Recent(stream.Capacity()) {
		if e.Kind == obs.KindDriftReplan {
			seen = true
		}
	}
	if !seen {
		t.Error("no drift-replan event on the stream")
	}
}

// TestPinnedSessionNeverDriftReplans pins the contract that an
// explicitly scheduled session is exempt from feedback replanning no
// matter how wrong the model is.
func TestPinnedSessionNeverDriftReplans(t *testing.T) {
	app := mustApp(t, "octree")
	pin := core.NewUniformSchedule(len(app.Stages), core.ClassBig)
	rt, err := New(mustDevice(t, "pixel7a"),
		WithOnlineProfiling(feedbackConfig),
		WithModelAdjust("half", func(_ string, _ core.PUClass, sec float64) float64 {
			return sec * 0.5
		}),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()
	s, err := rt.Admit(app, AdmitOptions{Tasks: 30, WaveTasks: 5, Schedule: &pin})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if res := s.Wait(); res.Err != nil {
		t.Fatalf("session: %v", res.Err)
	}
	if got := rt.ReplansFromDrift(); got != 0 {
		t.Errorf("pinned session drift-replanned %d times, want 0", got)
	}
	if s.Schedule().String() != pin.String() {
		t.Errorf("pinned schedule changed: %s", s.Schedule())
	}
}

// TestFeedbackUnderChurn churns admissions and departures with the
// feedback loop live — the estimator ingests concurrently with model
// registration and removal. Run under -race this is the data-race
// canary for the online-profiling plumbing.
func TestFeedbackUnderChurn(t *testing.T) {
	stream := obs.NewStream(obs.DefaultStreamCapacity)
	rt, err := New(mustDevice(t, "pixel7a"),
		WithEvents(stream),
		WithHeadroom(8, 8),
		WithOnlineProfiling(feedbackConfig),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				name := []string{"octree", "alexnet-sparse"}[(w+round)%2]
				s, err := rt.Admit(mustApp(t, name), AdmitOptions{
					Name:  fmt.Sprintf("%s-w%d-r%d", name, w, round),
					Tasks: 8, WaveTasks: 4, Seed: int64(w) * 17,
				})
				if err != nil {
					continue // admission races are expected under churn
				}
				if res := s.Wait(); res.Err != nil {
					t.Errorf("session %s: %v", res.Name, res.Err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s, ok := rt.OnlineProfStats()
	if !ok {
		t.Fatal("online profiling is off")
	}
	if s.Observations == 0 {
		t.Error("no observations ingested under churn")
	}
}
