// Package runtime is the long-lived multi-application layer over the
// pipeline engines: one Runtime is bound to one device and admits
// streaming applications as concurrent Sessions.
//
// Where the rest of the framework plans and executes a single
// application in isolation, the runtime models what the paper's Sec. 6
// calls out as future work — several pipelines resident on one SoC:
//
//   - Admission control projects each applicant's steady-state DRAM
//     bandwidth and PU-core demand from its plan, stacks it on every
//     resident session's, and rejects with a typed *AdmissionError when
//     a configured headroom would be exceeded.
//   - Interference-aware re-planning: every admission and departure
//     changes the device's interference environment, so the runtime
//     re-runs the profiling/optimization pipeline for each resident
//     session against the updated soc.Env (profiler Config.BaseEnv,
//     pipeline Options.BaseEnv). Sessions pick up new plans between
//     execution waves.
//   - Per-session namespaced observability: each session owns its own
//     metrics collector and trace timeline; Report merges them into one
//     summary table and a session-qualified Gantt.
package runtime

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"bettertogether/internal/core"
	"bettertogether/internal/metrics"
	"bettertogether/internal/obs"
	"bettertogether/internal/obs/sessiontrace"
	"bettertogether/internal/onlineprof"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/profiler"
	"bettertogether/internal/report"
	"bettertogether/internal/sched"
	"bettertogether/internal/schedcache"
	"bettertogether/internal/soc"
	"bettertogether/internal/trace"
)

// ErrClosed reports an Admit against a closed runtime.
var ErrClosed = errors.New("runtime: closed")

// Config defaults.
const (
	// DefaultBWHeadroom and DefaultCoreHeadroom scale the device's DRAM
	// bandwidth and core count into admission capacities. Values above 1
	// deliberately tolerate oversubscription: pipelines rarely hold their
	// peak draw on every chunk at once, and the interference model
	// degrades co-runners gracefully rather than failing them.
	DefaultBWHeadroom   = 2.0
	DefaultCoreHeadroom = 2.0
	// DefaultProfileReps is smaller than profiler.DefaultReps because the
	// runtime re-profiles on every admission and departure.
	DefaultProfileReps = 8
	// DefaultAutotuneTasks bounds each candidate's autotuning simulation.
	DefaultAutotuneTasks = 12
	// DefaultReplanK is the candidate pool per (re-)planning pass —
	// smaller than sched.DefaultK, again because re-planning is frequent.
	DefaultReplanK = 8
)

// Config configures a Runtime.
type Config struct {
	// Device is the SoC every session shares. Required.
	Device *soc.Device
	// Engine executes session waves; nil selects pipeline.SimEngine.
	Engine pipeline.Engine
	// BWHeadroom and CoreHeadroom scale the admission capacities
	// (<= 0 selects the defaults).
	BWHeadroom   float64
	CoreHeadroom float64
	// ProfileReps, AutotuneTasks, and K bound each (re-)planning pass
	// (<= 0 selects the defaults).
	ProfileReps   int
	AutotuneTasks int
	K             int
	// Seed drives profiling and autotuning noise streams.
	Seed int64
	// Events, when non-nil, receives typed runtime observability events:
	// Admit/Reject on every admission decision, Replan when churn changes
	// a resident's schedule, WaveStart/WaveEnd around each session wave,
	// SessionEnd on departure — plus the engine-level events of every
	// wave, tagged with the owning session's name. Pass an *obs.Stream to
	// feed the introspection server's /events endpoint.
	Events obs.Sink
	// Cache, when non-nil, memoizes planning results across admissions
	// and re-plans, keyed on a canonicalized (app fingerprint, device,
	// quantized Env, planning knobs) tuple. Planning then runs against
	// the cache's bucket-quantized environment, so a hit returns a
	// schedule byte-identical to the cold solve it replaces (pinned by
	// the equivalence suite); a miss warm-starts the solver from the
	// session's previous schedule and stores the result. One cache may
	// be shared across runtimes. Nil plans cold on every pass (the
	// pre-cache behavior, bit-exact).
	Cache *schedcache.Cache
	// ReplanDelta, when positive, skips re-planning a resident whose
	// projected environment moved less than this (L∞ over per-class
	// MemIntensity) from the environment its current plan was solved
	// against. The session still picks up the new environment for its
	// next wave; only the solve is elided. 0 re-plans on every pass.
	ReplanDelta float64
	// OnlineProf, when non-nil, enables feedback-driven replanning: an
	// online estimator ingests the event stream, learns per-(stage, PU,
	// quantized Env) service times, and a session whose model estimates
	// have drifted past the configured threshold is re-planned with the
	// learned corrections overlaid on its profiled tables. When Events
	// is an *obs.Stream the estimator subscribes to it directly;
	// otherwise an internal stream is teed in.
	OnlineProf *onlineprof.Config
	// ModelAdjust, when non-nil, rescales every profiled latency before
	// planning — the error-injection hook drift-convergence experiments
	// use to simulate a miscalibrated model. ModelAdjustDigest must then
	// be non-empty: it folds into schedule-cache keys so adjusted solves
	// never collide with clean ones.
	ModelAdjust       profiler.Adjust
	ModelAdjustDigest string
	// Trace, when non-nil, receives causal session-lifecycle span hooks
	// for sampled sessions: hold/admit, waves, churn and drift re-plans,
	// and the end-of-session verdict. With OnlineProf also enabled, the
	// estimator's drift latches are recorded as drift-detected spans
	// (unless the caller installed its own OnlineProf.DriftHook).
	Trace *sessiontrace.Tracer
}

// Runtime is a long-lived multi-application execution context bound to
// one device. Construct with New; admit applications with Admit.
type Runtime struct {
	cfg Config
	dev *soc.Device
	eng pipeline.Engine

	// Online-profiling feedback loop (nil/zero unless Config.OnlineProf).
	estimator *onlineprof.Estimator
	observer  *onlineprof.Observer
	stream    *obs.Stream

	mu           sync.Mutex
	nextID       int
	resident     map[int]*Session
	history      []*Session
	rejected     int
	skipped      int
	driftReplans int
	closed       bool

	// Deadline-attainment counters over completed deadline-carrying
	// sessions (AdmitOptions.Deadline > 0; released reservations skip).
	sloSessions int
	sloAttained int
	sloMissed   int
	sloLatency  *metrics.Histogram
}

// NewFromConfig validates a Config and builds an empty runtime.
//
// Deprecated: use New with functional options — it separates required
// state (the device) from tunables and validates each option at the
// call site instead of silently defaulting zero values. NewFromConfig
// remains for callers that assemble configuration dynamically.
func NewFromConfig(cfg Config) (*Runtime, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("runtime: config has no device")
	}
	if err := cfg.Device.Validate(); err != nil {
		return nil, err
	}
	if cfg.ModelAdjust != nil && cfg.ModelAdjustDigest == "" {
		return nil, fmt.Errorf("runtime: ModelAdjust requires ModelAdjustDigest (schedule-cache keying)")
	}
	if cfg.Engine == nil {
		cfg.Engine = pipeline.SimEngine{}
	}
	if cfg.BWHeadroom <= 0 {
		cfg.BWHeadroom = DefaultBWHeadroom
	}
	if cfg.CoreHeadroom <= 0 {
		cfg.CoreHeadroom = DefaultCoreHeadroom
	}
	if cfg.ProfileReps <= 0 {
		cfg.ProfileReps = DefaultProfileReps
	}
	if cfg.AutotuneTasks <= 0 {
		cfg.AutotuneTasks = DefaultAutotuneTasks
	}
	if cfg.K <= 0 {
		cfg.K = DefaultReplanK
	}
	rt := &Runtime{dev: cfg.Device, resident: map[int]*Session{}}
	if cfg.OnlineProf != nil {
		opCfg := *cfg.OnlineProf
		if cfg.Trace != nil && opCfg.DriftHook == nil {
			tr := cfg.Trace
			opCfg.DriftHook = func(d onlineprof.Drift) {
				tr.DriftDetected(d.Session, d.Stage, string(d.PU), d.Ratio)
			}
		}
		rt.estimator = onlineprof.NewEstimator(opCfg)
		stream, ok := cfg.Events.(*obs.Stream)
		if !ok || stream == nil {
			// No subscribable stream: tee one in so the estimator can
			// ingest without the caller's sink seeing anything new.
			stream = obs.NewStream(onlineProfRing)
			if cfg.Events != nil {
				cfg.Events = teeSink{cfg.Events, stream}
			} else {
				cfg.Events = stream
			}
		}
		rt.stream = stream
		rt.observer = onlineprof.NewObserver(rt.estimator, stream, onlineProfBuffer)
	}
	rt.cfg = cfg
	rt.eng = cfg.Engine
	return rt, nil
}

// Device returns the shared device.
func (rt *Runtime) Device() *soc.Device { return rt.dev }

// Engine returns the execution engine sessions run on.
func (rt *Runtime) Engine() pipeline.Engine { return rt.eng }

// Cache returns the schedule cache, nil when planning is uncached.
func (rt *Runtime) Cache() *schedcache.Cache { return rt.cfg.Cache }

// ReplansSkipped counts re-planning passes elided because the projected
// environment delta stayed below Config.ReplanDelta.
func (rt *Runtime) ReplansSkipped() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.skipped
}

// Admit plans the application against the current interference
// environment, checks projected resource demand against the headroom
// capacities, and — if accepted — starts a Session and re-plans every
// resident session against the environment the newcomer creates.
// Rejections return a *AdmissionError (resources) or ErrClosed.
func (rt *Runtime) Admit(app *core.Application, opts AdmitOptions) (*Session, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return nil, ErrClosed
	}
	if app == nil {
		return nil, fmt.Errorf("runtime: admit nil application")
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if d := opts.Deadline; d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		return nil, fmt.Errorf("runtime: admit %q: deadline must be a finite value >= 0 (0 disables the SLO), got %v", app.Name, d)
	}
	opts = opts.withDefaults(app, rt.nextID)

	env := rt.envLocked(nil)
	plan, err := rt.planLocked(app, env, opts, nil)
	if err != nil {
		return nil, fmt.Errorf("runtime: planning %q: %w", app.Name, err)
	}

	total := planDemand(plan)
	for _, id := range rt.residentIDs() {
		total = total.plus(planDemand(rt.resident[id].currentPlan()))
	}
	if capBW := rt.cfg.BWHeadroom * rt.dev.DRAMBWGBs; total.bwGBs > capBW {
		return nil, rt.rejectLocked(&AdmissionError{App: app.Name, Resource: ResourceBandwidth, Demand: total.bwGBs, Capacity: capBW}, opts)
	}
	if capCores := rt.cfg.CoreHeadroom * rt.deviceCores(); total.cores > capCores {
		return nil, rt.rejectLocked(&AdmissionError{App: app.Name, Resource: ResourceCores, Demand: total.cores, Capacity: capCores}, opts)
	}

	s := newSession(rt, rt.nextID, app, opts, plan, env)
	rt.nextID++
	rt.resident[s.id] = s
	rt.history = append(rt.history, s)
	rt.emit(func(e *obs.Event) {
		e.Kind = obs.KindAdmit
		e.Session = s.opts.Name
		e.Detail = plan.Schedule.String()
	})
	rt.cfg.Trace.Admitted(s.opts.Name, app.Name, plan.Schedule.String(), opts.Hold)
	rt.registerModel(s)
	rt.replanLocked(s)
	if !opts.Hold {
		s.Start()
	}
	return s, nil
}

// rejectLocked counts a refused admission and emits its Reject event.
func (rt *Runtime) rejectLocked(err *AdmissionError, opts AdmitOptions) error {
	rt.rejected++
	rt.emit(func(e *obs.Event) {
		e.Kind = obs.KindReject
		e.Session = opts.Name
		e.Detail = err.Error()
	})
	return err
}

// emit sends one event to the configured sink, if any. fill mutates a
// pre-initialized event (index fields unset).
func (rt *Runtime) emit(fill func(*obs.Event)) {
	if rt.cfg.Events == nil {
		return
	}
	e := obs.NewEvent(obs.KindAdmit)
	fill(&e)
	rt.cfg.Events.Emit(e)
}

// deviceCores sums the device's PU core counts.
func (rt *Runtime) deviceCores() float64 {
	n := 0
	for i := range rt.dev.PUs {
		n += rt.dev.PUs[i].Cores
	}
	return float64(n)
}

// residentIDs returns resident session IDs in admission order — the
// deterministic iteration order for demand, environment, and re-planning
// passes.
func (rt *Runtime) residentIDs() []int {
	ids := make([]int, 0, len(rt.resident))
	for id := range rt.resident {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// envLocked builds the interference environment seen by a session (or by
// an applicant when except is nil): every other resident session's
// steady-state contribution.
func (rt *Runtime) envLocked(except *Session) soc.Env {
	env := soc.Env{}
	for _, id := range rt.residentIDs() {
		s := rt.resident[id]
		if s == except {
			continue
		}
		addPlanEnv(env, s.currentPlan())
	}
	return env
}

// planLocked runs the interference-aware planning pipeline for one
// application under the given external environment: profile both modes
// with BaseEnv overlaid, optimize with the BetterTogether strategy, and
// compile the winning schedule. A pinned schedule skips optimization.
//
// With a schedule cache configured, the solve runs against the
// bucket-quantized environment (the bucket's canonical representative),
// so a later lookup under any environment in the same bucket returns a
// schedule byte-identical to this cold solve. On a miss, warm seeds the
// optimizer's incumbent set — provably result-neutral, it only
// accelerates the prune — and the chosen schedule is stored.
func (rt *Runtime) planLocked(app *core.Application, env soc.Env, opts AdmitOptions, warm []core.Schedule) (*pipeline.Plan, error) {
	if opts.Schedule != nil {
		return pipeline.NewPlan(app, rt.dev, *opts.Schedule)
	}
	adjust, digest := rt.planAdjust()
	var key string
	if c := rt.cfg.Cache; c != nil {
		env = schedcache.QuantizeEnv(env, c.Bucket())
		key = schedcache.Key(schedcache.Fingerprint(app), rt.dev.Name, env, c.Bucket(), schedcache.Knobs{
			ProfileReps:   rt.cfg.ProfileReps,
			AutotuneTasks: rt.cfg.AutotuneTasks,
			K:             rt.cfg.K,
			Seed:          rt.cfg.Seed + opts.Seed,
			Adjust:        digest,
		})
		if sc, ok := c.Get(key); ok {
			return pipeline.NewPlan(app, rt.dev, sc)
		}
	}
	tables := profiler.ProfileBoth(app, rt.dev, profiler.Config{
		Reps:    rt.cfg.ProfileReps,
		Seed:    rt.cfg.Seed + opts.Seed,
		BaseEnv: env,
		Adjust:  adjust,
	})
	opt := sched.New(app, rt.dev, tables)
	opt.K = rt.cfg.K
	opt.WarmStart = warm
	_, _, best, err := opt.Optimize(sched.BetterTogether, pipeline.Options{
		Tasks:   rt.cfg.AutotuneTasks,
		Warmup:  2,
		Seed:    rt.cfg.Seed + opts.Seed,
		BaseEnv: env,
	})
	if err != nil {
		return nil, err
	}
	if rt.cfg.Cache != nil {
		rt.cfg.Cache.Put(key, best.Schedule)
	}
	return pipeline.NewPlan(app, rt.dev, best.Schedule)
}

// replanLocked re-plans every resident session other than except against
// the updated environment — the interference-aware reaction to admission
// churn. Pinned sessions (AdmitOptions.Schedule != nil) are NEVER
// re-planned: they only get the environment update, even when a
// configured schedule cache could supply a plan for the new environment
// — the pin is a caller contract, not a planning shortcut (pinned by
// test with a cache enabled). When the projected environment delta stays
// below Config.ReplanDelta, the solve is skipped entirely and only the
// environment lands. A session whose re-planning fails keeps its old
// plan (the old schedule is still valid, only the environment shifted);
// otherwise the solve is warm-started from the session's current
// schedule so the cache-miss path prunes aggressively.
func (rt *Runtime) replanLocked(except *Session) {
	for _, id := range rt.residentIDs() {
		s := rt.resident[id]
		if s == except {
			continue
		}
		env := rt.envLocked(s)
		if s.opts.Schedule != nil {
			s.setEnv(env)
			rt.registerModel(s)
			continue
		}
		if d := rt.cfg.ReplanDelta; d > 0 && s.planEnvSnapshot().Delta(env) < d {
			rt.skipped++
			s.setEnv(env)
			rt.registerModel(s)
			continue
		}
		plan, err := rt.planLocked(s.app, env, s.opts, []core.Schedule{s.Schedule()})
		if err != nil {
			s.setEnv(env)
			rt.registerModel(s)
			continue
		}
		if s.setPlan(plan, env) {
			rt.emit(func(e *obs.Event) {
				e.Kind = obs.KindReplan
				e.Session = s.opts.Name
				e.Detail = plan.Schedule.String()
			})
			rt.cfg.Trace.Replanned(s.opts.Name, plan.Schedule.String())
		}
		rt.registerModel(s)
	}
}

// exit removes a finished session from residency and re-plans the
// survivors. Called from the session goroutine before its done channel
// closes.
func (rt *Runtime) exit(s *Session) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, ok := rt.resident[s.id]; !ok {
		return
	}
	delete(rt.resident, s.id)
	if rt.estimator != nil {
		rt.estimator.RemoveSession(s.opts.Name)
	}
	if !rt.closed {
		rt.replanLocked(nil)
	}
}

// recordSLO folds one completed deadline-carrying session into the
// attainment counters. Called from the session goroutine's unwind, for
// sessions with a positive deadline that were not released reservations.
func (rt *Runtime) recordSLO(elapsed float64, attained bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.sloSessions++
	if attained {
		rt.sloAttained++
	} else {
		rt.sloMissed++
	}
	if rt.sloLatency == nil {
		rt.sloLatency = &metrics.Histogram{}
	}
	rt.sloLatency.Observe(time.Duration(elapsed * float64(time.Second)))
}

// SLOStats snapshots the deadline-attainment counters. ok is false
// while no deadline-carrying session has completed — wire the
// introspection server's SLO hook only when deadlines are in play, so
// zero-deadline runs keep their exposition byte-identical.
func (rt *Runtime) SLOStats() (s obs.SLOStats, ok bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.sloSessions == 0 {
		return obs.SLOStats{}, false
	}
	s = obs.SLOStats{Sessions: rt.sloSessions, Attained: rt.sloAttained, Missed: rt.sloMissed}
	if rt.sloLatency != nil {
		h := &metrics.Histogram{}
		h.Merge(rt.sloLatency)
		s.Latency = h
	}
	return s, true
}

// Sessions returns every session ever admitted, in admission order.
func (rt *Runtime) Sessions() []*Session {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]*Session(nil), rt.history...)
}

// Wait blocks until every session admitted so far has finished. Sessions
// admitted with AdmitOptions.Hold must be Started (or Stopped) first, or
// Wait blocks until some other caller releases them.
func (rt *Runtime) Wait() {
	for _, s := range rt.Sessions() {
		<-s.Done()
	}
}

// Close rejects further admissions, stops every resident session, and
// waits for them to unwind.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	rt.closed = true
	residents := make([]*Session, 0, len(rt.resident))
	for _, id := range rt.residentIDs() {
		residents = append(residents, rt.resident[id])
	}
	rt.mu.Unlock()
	for _, s := range residents {
		s.cancel()
		// Held sessions must still unwind: start them against the
		// canceled context so run() exits residency immediately.
		s.Start()
	}
	for _, s := range residents {
		<-s.Done()
	}
	rt.observer.Close()
}

// Report renders the per-session summary table and, when sessions
// collected traces, the merged session-qualified Gantt. Sessions render
// in admission order, so the report is deterministic for a deterministic
// admission sequence.
func (rt *Runtime) Report(ganttWidth int) string {
	sessions := rt.Sessions()
	rows := make([]report.SessionRow, len(sessions))
	var parts []trace.SessionTrace
	for i, s := range sessions {
		res := s.Snapshot()
		rows[i] = report.SessionRow{
			Name:     res.Name,
			App:      res.App,
			Schedule: res.Schedule.String(),
			Replans:  res.Replans,
			Tasks:    res.Tasks,
			PerTask:  res.PerTask,
			Elapsed:  res.Elapsed,
			EnergyJ:  res.EnergyPerTaskJ,
			Err:      errString(res.Err),
		}
		if tl := s.Timeline(); tl != nil && len(tl.Spans) > 0 {
			parts = append(parts, trace.SessionTrace{Name: res.Name, Timeline: tl})
		}
	}
	var b strings.Builder
	b.WriteString(report.Sessions(fmt.Sprintf("runtime sessions on %s", rt.dev.Label), rows))
	if len(parts) > 0 {
		b.WriteByte('\n')
		b.WriteString(trace.MergeSessions(parts...).Gantt(ganttWidth))
	}
	return b.String()
}

// errString renders an error for a report cell.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
