package runtime

import (
	"fmt"
	"math"

	"bettertogether/internal/obs"
	"bettertogether/internal/obs/sessiontrace"
	"bettertogether/internal/onlineprof"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/profiler"
	"bettertogether/internal/schedcache"
	"bettertogether/internal/soc"
)

// Option configures a Runtime under construction. Options validate
// eagerly — a nonsensical value fails New with an error naming the
// option, instead of the Config zero-value path's silent defaulting.
type Option func(*Config) error

// New builds a runtime for dev from functional options. This is the
// constructor to use: required state (the device) is a parameter, every
// tunable is an explicit option with fail-fast validation, and an
// unconfigured New(dev) is a fully working simulator-backed runtime.
//
//	rt, err := runtime.New(dev,
//	    runtime.WithSchedCache(cache),
//	    runtime.WithReplanDelta(0.1),
//	    runtime.WithOnlineProfiling(onlineprof.Config{}),
//	)
func New(dev *soc.Device, opts ...Option) (*Runtime, error) {
	cfg := Config{Device: dev}
	for i, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("runtime: option %d is nil", i)
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	return NewFromConfig(cfg)
}

// WithEngine selects the execution engine sessions run on (the
// deterministic simulator by default).
func WithEngine(eng pipeline.Engine) Option {
	return func(cfg *Config) error {
		if eng == nil {
			return fmt.Errorf("runtime: WithEngine(nil)")
		}
		cfg.Engine = eng
		return nil
	}
}

// WithHeadroom sets the admission capacities as multiples of the
// device's DRAM bandwidth and core count. Both must be positive and
// finite.
func WithHeadroom(bw, cores float64) Option {
	return func(cfg *Config) error {
		for name, v := range map[string]float64{"bandwidth": bw, "cores": cores} {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("runtime: WithHeadroom %s %v, want positive finite", name, v)
			}
		}
		cfg.BWHeadroom, cfg.CoreHeadroom = bw, cores
		return nil
	}
}

// WithPlanningBudget bounds each (re-)planning pass: profiling
// repetitions, autotuning tasks per candidate, and the candidate pool
// size K. All must be positive.
func WithPlanningBudget(reps, autotune, k int) Option {
	return func(cfg *Config) error {
		for name, v := range map[string]int{"reps": reps, "autotune": autotune, "k": k} {
			if v <= 0 {
				return fmt.Errorf("runtime: WithPlanningBudget %s %d, want positive", name, v)
			}
		}
		cfg.ProfileReps, cfg.AutotuneTasks, cfg.K = reps, autotune, k
		return nil
	}
}

// WithSeed sets the runtime seed driving profiling and autotuning
// noise streams.
func WithSeed(seed int64) Option {
	return func(cfg *Config) error {
		cfg.Seed = seed
		return nil
	}
}

// WithEvents attaches the observability sink. Pass an *obs.Stream to
// feed the introspection server — and, with WithOnlineProfiling, to let
// the online profiler subscribe directly instead of tapping through an
// internal tee.
func WithEvents(sink obs.Sink) Option {
	return func(cfg *Config) error {
		if sink == nil {
			return fmt.Errorf("runtime: WithEvents(nil)")
		}
		cfg.Events = sink
		return nil
	}
}

// WithSchedCache memoizes planning results in c (shareable across
// runtimes).
func WithSchedCache(c *schedcache.Cache) Option {
	return func(cfg *Config) error {
		if c == nil {
			return fmt.Errorf("runtime: WithSchedCache(nil)")
		}
		cfg.Cache = c
		return nil
	}
}

// WithReplanDelta skips re-planning residents whose projected
// environment moved less than d (L∞ over per-class MemIntensity) since
// their last solve. Zero re-plans on every pass; d must be finite and
// non-negative.
func WithReplanDelta(d float64) Option {
	return func(cfg *Config) error {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("runtime: WithReplanDelta %v, want finite >= 0", d)
		}
		cfg.ReplanDelta = d
		return nil
	}
}

// WithOnlineProfiling enables feedback-driven replanning: an online
// estimator subscribes to the event stream, learns per-(stage, PU,
// quantized Env) service times, and replans a session when its model
// estimates have demonstrably drifted from observation. Zero Config
// fields select the onlineprof defaults.
func WithOnlineProfiling(c onlineprof.Config) Option {
	return func(cfg *Config) error {
		cc := c
		cfg.OnlineProf = &cc
		return nil
	}
}

// WithSessionTrace attaches a causal session-lifecycle tracer: sampled
// sessions record parent-linked spans for admission, waves, re-plans,
// drift, and completion (see internal/obs/sessiontrace).
func WithSessionTrace(t *sessiontrace.Tracer) Option {
	return func(cfg *Config) error {
		if t == nil {
			return fmt.Errorf("runtime: WithSessionTrace(nil)")
		}
		cfg.Trace = t
		return nil
	}
}

// WithModelAdjust rescales every profiled latency before planning —
// the error-injection hook the drift-convergence experiments use to
// simulate a miscalibrated model. The digest must be non-empty and
// uniquely identify the adjustment: it is folded into schedule-cache
// keys so adjusted solves never collide with clean ones.
func WithModelAdjust(digest string, adjust profiler.Adjust) Option {
	return func(cfg *Config) error {
		if adjust == nil {
			return fmt.Errorf("runtime: WithModelAdjust(nil adjust)")
		}
		if digest == "" {
			return fmt.Errorf("runtime: WithModelAdjust requires a non-empty digest (schedule-cache keying)")
		}
		cfg.ModelAdjust, cfg.ModelAdjustDigest = adjust, digest
		return nil
	}
}
