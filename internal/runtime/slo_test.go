package runtime

import (
	"math"
	"strings"
	"testing"

	"bettertogether/internal/obs"
	"bettertogether/internal/obs/sessiontrace"
)

func TestAdmitRejectsBadDeadlines(t *testing.T) {
	rt := mustRuntime(t, Config{Device: mustDevice(t, "pixel7a")})
	defer rt.Close()
	app := mustApp(t, "octree")
	for _, d := range []float64{-1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := rt.Admit(app, AdmitOptions{Tasks: 2, Deadline: d}); err == nil {
			t.Errorf("Admit accepted deadline %v", d)
		}
	}
}

func TestSLOStatsCountAttainment(t *testing.T) {
	rt := mustRuntime(t, Config{Device: mustDevice(t, "pixel7a")})
	defer rt.Close()
	app := mustApp(t, "octree")

	// A generous deadline attains; an impossible one misses.
	for _, d := range []float64{1e6, 1e-9} {
		s, err := rt.Admit(app, AdmitOptions{Tasks: 4, Deadline: d})
		if err != nil {
			t.Fatalf("Admit: %v", err)
		}
		if res := s.Wait(); res.Err != nil {
			t.Fatalf("session: %v", res.Err)
		}
	}
	// A deadline-free session contributes nothing.
	s, err := rt.Admit(app, AdmitOptions{Tasks: 4})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	s.Wait()

	stats, ok := rt.SLOStats()
	if !ok {
		t.Fatal("SLOStats reported disabled after deadline-carrying sessions")
	}
	if stats.Sessions != 2 || stats.Attained != 1 || stats.Missed != 1 {
		t.Fatalf("SLO counters %+v, want 2 sessions, 1 attained, 1 missed", stats)
	}
	if stats.Latency == nil || stats.Latency.Count() != 2 {
		t.Fatalf("latency histogram missing observations: %+v", stats.Latency)
	}
}

func TestSLOStatsDisabledWithoutDeadlines(t *testing.T) {
	rt := mustRuntime(t, Config{Device: mustDevice(t, "pixel7a")})
	defer rt.Close()
	s, err := rt.Admit(mustApp(t, "octree"), AdmitOptions{Tasks: 2})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	s.Wait()
	if _, ok := rt.SLOStats(); ok {
		t.Fatal("SLOStats enabled without any deadline-carrying session")
	}
}

func TestWithSessionTraceFeedsTracer(t *testing.T) {
	if _, err := New(mustDevice(t, "pixel7a"), WithSessionTrace(nil)); err == nil {
		t.Fatal("WithSessionTrace accepted nil")
	}
	tracer := sessiontrace.New(sessiontrace.Config{SampleRate: 1, Seed: 1})
	rt, err := New(mustDevice(t, "pixel7a"), WithSessionTrace(tracer))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()
	s, err := rt.Admit(mustApp(t, "octree"), AdmitOptions{Name: "octree#0", Tasks: 4, Deadline: 1e6})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if res := s.Wait(); res.Err != nil {
		t.Fatalf("session: %v", res.Err)
	}

	doc, ok := tracer.Trace("octree#0")
	if !ok {
		t.Fatal("runtime admission recorded no trace")
	}
	if doc.Verdict != sessiontrace.VerdictAttained {
		t.Fatalf("verdict %q, want attained", doc.Verdict)
	}
	kinds := map[string]int{}
	for _, sp := range doc.Spans {
		kinds[sp.Kind]++
	}
	if kinds[sessiontrace.KindAdmit] != 1 {
		t.Fatalf("admit spans %d in %v", kinds[sessiontrace.KindAdmit], kinds)
	}
	if kinds[sessiontrace.KindWave] == 0 {
		t.Fatalf("no wave spans recorded: %v", kinds)
	}
	if doc.Elapsed <= 0 || doc.Deadline != 1e6 {
		t.Fatalf("doc elapsed/deadline %v/%v", doc.Elapsed, doc.Deadline)
	}
}

func TestSessionEndEventCarriesSLODetail(t *testing.T) {
	stream := obs.NewStream(64)
	rt := mustRuntime(t, Config{Device: mustDevice(t, "pixel7a"), Events: stream})
	defer rt.Close()
	s, err := rt.Admit(mustApp(t, "octree"), AdmitOptions{Tasks: 2, Deadline: 1e6})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	s.Wait()
	found := false
	for _, e := range stream.Recent(0) {
		if e.Kind == obs.KindSessionEnd {
			found = true
			if !strings.Contains(e.Detail, "slo attained") || !strings.Contains(e.Detail, "deadline") {
				t.Fatalf("session-end detail %q lacks SLO annotation", e.Detail)
			}
			if e.Dur <= 0 {
				t.Fatalf("session-end Dur %v, want the session's elapsed", e.Dur)
			}
		}
	}
	if !found {
		t.Fatal("no session-end event observed")
	}
}
