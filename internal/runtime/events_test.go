package runtime

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"bettertogether/internal/core"
	"bettertogether/internal/obs"
)

func TestAdmissionErrorFormatting(t *testing.T) {
	cases := []struct {
		name string
		err  *AdmissionError
		want []string
	}{
		{
			"bandwidth",
			&AdmissionError{App: "vision", Resource: ResourceBandwidth, Demand: 42.5, Capacity: 31.25},
			[]string{`"vision"`, "dram-bandwidth", "42.50", "31.25", "rejected"},
		},
		{
			"cores",
			&AdmissionError{App: "octree", Resource: ResourceCores, Demand: 12, Capacity: 8},
			[]string{`"octree"`, "pu-cores", "12.00", "8.00"},
		},
		{
			"empty app still renders",
			&AdmissionError{Resource: ResourceCores, Demand: 1, Capacity: 0},
			[]string{`""`, "pu-cores", "1.00", "0.00"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg := tc.err.Error()
			for _, want := range tc.want {
				if !strings.Contains(msg, want) {
					t.Errorf("message %q missing %q", msg, want)
				}
			}
		})
	}
}

// sessionEvents extracts the stream's retained events for one session.
func sessionEvents(s *obs.Stream, name string) []obs.Event {
	var out []obs.Event
	for _, e := range s.Recent(0) {
		if e.Session == name {
			out = append(out, e)
		}
	}
	return out
}

func TestRuntimeEmitsAdmitAndRejectEvents(t *testing.T) {
	stream := obs.NewStream(1 << 14)
	rt := mustRuntime(t, Config{Device: mustDevice(t, "jetson"), Events: stream})
	defer rt.Close()

	s, err := rt.Admit(mustApp(t, "vision"), AdmitOptions{Tasks: 8, WaveTasks: 4})
	if err != nil {
		t.Fatalf("first vision admit should fit: %v", err)
	}
	_, err = rt.Admit(mustApp(t, "vision"), AdmitOptions{Tasks: 8, WaveTasks: 4})
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("want *AdmissionError, got %v", err)
	}
	s.Wait()

	var admits, rejects []obs.Event
	for _, e := range stream.Recent(0) {
		switch e.Kind {
		case obs.KindAdmit:
			admits = append(admits, e)
		case obs.KindReject:
			rejects = append(rejects, e)
		}
	}
	if len(admits) != 1 || len(rejects) != 1 {
		t.Fatalf("admit/reject events %d/%d, want 1/1", len(admits), len(rejects))
	}
	if admits[0].Session != s.Name() || admits[0].Detail == "" {
		t.Fatalf("admit event %+v lacks session/schedule", admits[0])
	}
	if !strings.Contains(rejects[0].Detail, "rejected") {
		t.Fatalf("reject event detail %q does not carry the admission error", rejects[0].Detail)
	}
}

// TestSessionEventOrdering pins the per-session stream order: admit
// first, wave-start/wave-end brackets around each wave's engine
// run-start/run-end, and session-end strictly last.
func TestSessionEventOrdering(t *testing.T) {
	stream := obs.NewStream(1 << 15)
	rt := mustRuntime(t, Config{Device: mustDevice(t, "pixel7a"), Events: stream})
	defer rt.Close()
	s, err := rt.Admit(mustApp(t, "octree"), AdmitOptions{Tasks: 20, WaveTasks: 6})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if res := s.Wait(); res.Err != nil {
		t.Fatalf("session error: %v", res.Err)
	}

	evs := sessionEvents(stream, s.Name())
	if len(evs) == 0 {
		t.Fatal("no events for the session")
	}
	if evs[0].Kind != obs.KindAdmit {
		t.Fatalf("first session event %v, want admit", evs[0].Kind)
	}
	if last := evs[len(evs)-1]; last.Kind != obs.KindSessionEnd {
		t.Fatalf("last session event %v, want session-end", last.Kind)
	}

	// 20 tasks at 6/wave = 4 waves; each bracketed and internally nested.
	counts := map[obs.Kind]int{}
	depth := 0 // wave-start..wave-end nesting, must alternate cleanly
	runOpen := false
	for _, e := range evs {
		counts[e.Kind]++
		switch e.Kind {
		case obs.KindWaveStart:
			if depth != 0 {
				t.Fatalf("wave-start inside an open wave (seq %d)", e.Seq)
			}
			depth = 1
		case obs.KindWaveEnd:
			if depth != 1 {
				t.Fatalf("wave-end without open wave (seq %d)", e.Seq)
			}
			depth = 0
		case obs.KindRunStart:
			if depth != 1 || runOpen {
				t.Fatalf("run-start outside a wave (seq %d)", e.Seq)
			}
			runOpen = true
		case obs.KindRunEnd:
			if !runOpen {
				t.Fatalf("run-end without run-start (seq %d)", e.Seq)
			}
			runOpen = false
		case obs.KindStageDone:
			if !runOpen {
				t.Fatalf("stage-done outside an engine run (seq %d)", e.Seq)
			}
		case obs.KindSessionEnd:
			if depth != 0 || runOpen {
				t.Fatal("session-end with an open wave or run")
			}
		}
	}
	if counts[obs.KindWaveStart] != 4 || counts[obs.KindWaveEnd] != 4 {
		t.Fatalf("wave brackets %d/%d, want 4/4",
			counts[obs.KindWaveStart], counts[obs.KindWaveEnd])
	}
	if counts[obs.KindRunStart] != 4 || counts[obs.KindRunEnd] != 4 {
		t.Fatalf("run brackets %d/%d, want 4/4",
			counts[obs.KindRunStart], counts[obs.KindRunEnd])
	}
	nStages := len(mustApp(t, "octree").Stages)
	if counts[obs.KindStageDone] != 20*nStages {
		t.Fatalf("stage-done %d, want %d", counts[obs.KindStageDone], 20*nStages)
	}
	if counts[obs.KindSessionEnd] != 1 {
		t.Fatalf("session-end count %d", counts[obs.KindSessionEnd])
	}
}

// TestConcurrentSessionsEventInvariants runs many sessions concurrently
// against one stream (under -race this doubles as the emission-path data
// race check) and verifies the per-session invariants survive
// interleaving: one admit, one session-end ordered after every wave
// event, and balanced wave brackets.
func TestConcurrentSessionsEventInvariants(t *testing.T) {
	dev := mustDevice(t, "pixel7a")
	app := mustApp(t, "octree")
	pin := core.NewUniformSchedule(len(app.Stages), dev.GPUClass())
	stream := obs.NewStream(1 << 16)
	rt := mustRuntime(t, Config{Device: dev, BWHeadroom: 1e9, CoreHeadroom: 1e9, Events: stream})
	defer rt.Close()

	const n = 6
	var wg sync.WaitGroup
	names := make([]string, n)
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := rt.Admit(app, AdmitOptions{
				Name: fmt.Sprintf("oct-%d", i), Tasks: 12, WaveTasks: 4, Schedule: &pin,
			})
			if err != nil {
				t.Errorf("admit %d: %v", i, err)
				return
			}
			mu.Lock()
			names[i] = s.Name()
			mu.Unlock()
			if res := s.Wait(); res.Err != nil {
				t.Errorf("session %d: %v", i, res.Err)
			}
		}(i)
	}
	wg.Wait()

	if stream.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; grow the test stream", stream.Dropped())
	}
	for _, name := range names {
		if name == "" {
			continue
		}
		evs := sessionEvents(stream, name)
		var admits, ends, waveStarts, waveEnds int
		var endSeq uint64
		for _, e := range evs {
			switch e.Kind {
			case obs.KindAdmit:
				admits++
			case obs.KindSessionEnd:
				ends++
				endSeq = e.Seq
			case obs.KindWaveStart:
				waveStarts++
			case obs.KindWaveEnd:
				waveEnds++
			}
		}
		if admits != 1 || ends != 1 {
			t.Fatalf("%s: admit/session-end %d/%d, want 1/1", name, admits, ends)
		}
		if waveStarts != 3 || waveEnds != 3 {
			t.Fatalf("%s: wave brackets %d/%d, want 3/3", name, waveStarts, waveEnds)
		}
		for _, e := range evs {
			if e.Kind != obs.KindSessionEnd && e.Seq > endSeq {
				t.Fatalf("%s: %v event (seq %d) after session-end (seq %d)",
					name, e.Kind, e.Seq, endSeq)
			}
		}
	}
}

func TestInspectorSessionTable(t *testing.T) {
	rt := mustRuntime(t, Config{Device: mustDevice(t, "pixel7a")})
	defer rt.Close()
	a, err := rt.Admit(mustApp(t, "octree"), AdmitOptions{
		Tasks: 10, WaveTasks: 5, CollectMetrics: true, CollectTrace: true,
	})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	a.Wait()
	b, err := rt.Admit(mustApp(t, "vision"), AdmitOptions{Tasks: 6, WaveTasks: 6})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	b.Wait()

	infos := rt.SessionInfos()
	if len(infos) != 2 {
		t.Fatalf("session table has %d rows, want 2", len(infos))
	}
	if infos[0].Name != a.Name() || infos[1].Name != b.Name() {
		t.Fatalf("table order %q,%q", infos[0].Name, infos[1].Name)
	}
	if infos[0].Tasks != 10 || infos[0].Schedule == "" || infos[0].PerTaskSec <= 0 {
		t.Fatalf("row aggregates %+v", infos[0])
	}
	if infos[0].Resident || infos[1].Resident {
		t.Fatal("finished sessions still marked resident")
	}

	if rt.SessionMetrics(a.Name()) == nil {
		t.Fatal("collected session has no metrics")
	}
	if rt.SessionMetrics(b.Name()) != nil {
		t.Fatal("uncollected session returned metrics")
	}
	if tl := rt.SessionTimeline(a.Name()); tl == nil || len(tl.Spans) == 0 {
		t.Fatal("collected session has no timeline")
	}
	if rt.SessionMetrics("nope") != nil || rt.SessionTimeline("nope") != nil {
		t.Fatal("unknown session name resolved")
	}

	hr := rt.AdmissionHeadroom()
	if hr.ResidentCount != 0 || hr.AdmittedTotal != 2 || hr.RejectedTotal != 0 {
		t.Fatalf("headroom counters %+v", hr)
	}
	if hr.BWCapacityGBs <= 0 || hr.CoresCapacity <= 0 {
		t.Fatalf("headroom capacities %+v", hr)
	}
	if hr.BWDemandGBs != 0 || hr.CoresDemand != 0 {
		t.Fatalf("no residents but standing demand %+v", hr)
	}
}

// TestInspectorResidentHeadroom checks the live view mid-session: a
// resident session must show up with standing demand.
func TestInspectorResidentHeadroom(t *testing.T) {
	stream := obs.NewStream(1 << 14)
	rt := mustRuntime(t, Config{Device: mustDevice(t, "pixel7a"), Events: stream})
	defer rt.Close()
	s, err := rt.Admit(mustApp(t, "octree"), AdmitOptions{Tasks: 4000, WaveTasks: 100})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	hr := rt.AdmissionHeadroom()
	if hr.ResidentCount != 1 {
		t.Fatalf("resident count %d, want 1", hr.ResidentCount)
	}
	if hr.BWDemandGBs <= 0 || hr.CoresDemand <= 0 {
		t.Fatalf("resident session with no standing demand: %+v", hr)
	}
	infos := rt.SessionInfos()
	if len(infos) != 1 || !infos[0].Resident {
		t.Fatalf("live session not resident in table: %+v", infos)
	}
	s.Stop()
	if hr := rt.AdmissionHeadroom(); hr.ResidentCount != 0 {
		t.Fatalf("stopped session still resident: %+v", hr)
	}
}
