package runtime

import (
	"bettertogether/internal/metrics"
	"bettertogether/internal/obs"
	"bettertogether/internal/trace"
)

// Runtime implements obs.Inspector, so cmd/btrun can mount the
// introspection server directly over a live runtime: the session table,
// per-session metrics exposition, per-session (and merged) Chrome
// traces, and the admission-headroom gauges all read the same state the
// admission path maintains, under the same lock discipline.
var _ obs.Inspector = (*Runtime)(nil)

// SessionInfos implements obs.Inspector: every session ever admitted in
// admission order, with live aggregates and residency.
func (rt *Runtime) SessionInfos() []obs.SessionInfo {
	rt.mu.Lock()
	sessions := append([]*Session(nil), rt.history...)
	resident := make(map[int]bool, len(rt.resident))
	for id := range rt.resident {
		resident[id] = true
	}
	rt.mu.Unlock()

	infos := make([]obs.SessionInfo, len(sessions))
	for i, s := range sessions {
		res := s.Snapshot()
		info := obs.SessionInfo{
			Name:       res.Name,
			App:        res.App,
			Schedule:   res.Schedule.String(),
			Tasks:      res.Tasks,
			Replans:    res.Replans,
			PerTaskSec: res.PerTask,
			ElapsedSec: res.Elapsed,
			EnergyJ:    res.EnergyJ,
			Resident:   resident[s.id],
		}
		if res.Err != nil {
			info.Err = res.Err.Error()
		}
		infos[i] = info
	}
	return infos
}

// findSession resolves a session by runtime name; with duplicate names
// the latest admission wins (matching the "latest placement" convention
// of metrics merging).
func (rt *Runtime) findSession(name string) *Session {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for i := len(rt.history) - 1; i >= 0; i-- {
		if rt.history[i].opts.Name == name {
			return rt.history[i]
		}
	}
	return nil
}

// SessionMetrics implements obs.Inspector: the named session's
// aggregated collector, nil when unknown or not collecting.
func (rt *Runtime) SessionMetrics(name string) *metrics.Pipeline {
	s := rt.findSession(name)
	if s == nil {
		return nil
	}
	return s.Metrics()
}

// SessionTimeline implements obs.Inspector: a copy of the named
// session's accumulated trace, nil when unknown or not collecting.
func (rt *Runtime) SessionTimeline(name string) *trace.Timeline {
	s := rt.findSession(name)
	if s == nil {
		return nil
	}
	return s.Timeline()
}

// AdmissionHeadroom implements obs.Inspector: the projected steady-state
// demand stacked across resident sessions against the headroom-scaled
// capacities — exactly the accounting Admit checks applicants against.
func (rt *Runtime) AdmissionHeadroom() obs.Headroom {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var total demand
	for _, id := range rt.residentIDs() {
		total = total.plus(planDemand(rt.resident[id].currentPlan()))
	}
	return obs.Headroom{
		BWDemandGBs:   total.bwGBs,
		BWCapacityGBs: rt.cfg.BWHeadroom * rt.dev.DRAMBWGBs,
		CoresDemand:   total.cores,
		CoresCapacity: rt.cfg.CoreHeadroom * rt.deviceCores(),
		ResidentCount: len(rt.resident),
		AdmittedTotal: len(rt.history),
		RejectedTotal: rt.rejected,
	}
}
