package runtime

import (
	"math"
	"testing"

	"bettertogether/internal/core"
	"bettertogether/internal/pipeline"
)

// validDemand projects demand for a well-formed schedule via NewPlan.
func validDemand(t *testing.T, app *core.Application, dev string, assign []core.PUClass) demand {
	t.Helper()
	p, err := pipeline.NewPlan(app, mustDevice(t, dev), core.Schedule{Assign: assign})
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	return planDemand(p)
}

// TestPlanDemandDedupsSharedClass is the malformed-plan guard: a Plan
// literal whose chunks revisit a PU class (impossible through NewPlan,
// which enforces contiguity) must claim that class's cores once and
// saturate its bandwidth share, instead of double-claiming cores until
// admission wedges shut.
func TestPlanDemandDedupsSharedClass(t *testing.T) {
	app := mustApp(t, "octree")
	dev := mustDevice(t, "jetson")
	n := len(app.Stages)
	if n < 3 {
		t.Fatalf("octree has %d stages, need >= 3", n)
	}
	// big big ... big gpu big — the trailing big revisits the class.
	assign := make([]core.PUClass, n)
	for i := range assign {
		assign[i] = core.ClassBig
	}
	assign[n-2] = core.ClassGPU
	sc := core.Schedule{Assign: assign}
	malformed := &pipeline.Plan{App: app, Device: dev, Schedule: sc, Chunks: sc.Chunks()}
	if len(malformed.Chunks) != 3 {
		t.Fatalf("expected 3 chunks, got %d", len(malformed.Chunks))
	}
	if err := malformed.Validate(); err == nil {
		t.Fatal("contiguity-violating plan unexpectedly validated; dedup guard untestable")
	}

	got := planDemand(malformed)
	// Cores must count each class once: 6 big + 8 gpu on the Jetson.
	wantCores := float64(dev.PU(core.ClassBig).Cores + dev.PU(core.ClassGPU).Cores)
	if got.cores != wantCores {
		t.Fatalf("cores = %v, want %v (class double-claimed)", got.cores, wantCores)
	}
	// Bandwidth must stay below the both-classes-saturated ceiling.
	ceiling := dev.PU(core.ClassBig).MemBWGBs + dev.PU(core.ClassGPU).MemBWGBs
	if got.bwGBs > ceiling+1e-9 {
		t.Fatalf("bwGBs = %v exceeds saturation ceiling %v", got.bwGBs, ceiling)
	}
}

// TestPlanDemandValidPlanUnchanged pins that the dedup is a strict no-op
// for plans with distinct per-chunk classes: same cores, same bandwidth,
// bit-for-bit.
func TestPlanDemandValidPlanUnchanged(t *testing.T) {
	app := mustApp(t, "octree")
	n := len(app.Stages)
	assign := make([]core.PUClass, n)
	for i := range assign {
		assign[i] = core.ClassBig
	}
	for i := n / 2; i < n; i++ {
		assign[i] = core.ClassGPU
	}
	d := validDemand(t, app, "jetson", assign)
	dev := mustDevice(t, "jetson")
	wantCores := float64(dev.PU(core.ClassBig).Cores + dev.PU(core.ClassGPU).Cores)
	if d.cores != wantCores {
		t.Fatalf("cores = %v, want %v", d.cores, wantCores)
	}
	if d.bwGBs <= 0 || math.IsNaN(d.bwGBs) {
		t.Fatalf("implausible bandwidth demand %v", d.bwGBs)
	}
	// Recomputing is deterministic.
	p, err := pipeline.NewPlan(app, dev, core.Schedule{Assign: assign})
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	if again := planDemand(p); again != planDemand(p) || again.cores != d.cores {
		t.Fatalf("planDemand nondeterministic: %+v vs %+v", again, d)
	}
}
