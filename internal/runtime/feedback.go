package runtime

import (
	"fmt"
	"time"

	"bettertogether/internal/core"
	"bettertogether/internal/obs"
	"bettertogether/internal/onlineprof"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/profiler"
	"bettertogether/internal/soc"
)

// Online-profiling plumbing sizes.
const (
	// onlineProfRing sizes the internal tee stream created when
	// Config.Events is not itself a subscribable *obs.Stream.
	onlineProfRing = 1024
	// onlineProfBuffer is the estimator subscription's channel capacity
	// — sized to hold several full waves of StageDone events so the
	// deterministic experiments ingest losslessly.
	onlineProfBuffer = 8192
	// driftSyncTimeout bounds the wave-boundary watermark barrier. In
	// simulation every emission happens-before the boundary, so the
	// barrier resolves in microseconds; the timeout only guards a
	// wedged Real-engine sink.
	driftSyncTimeout = 2 * time.Second
)

// teeSink fans one event out to two sinks, letting the online profiler
// tap a caller-owned sink that cannot be subscribed to.
type teeSink struct{ primary, tap obs.Sink }

func (t teeSink) Emit(e obs.Event) {
	t.primary.Emit(e)
	t.tap.Emit(e)
}

// OnlineProfiler returns the feedback estimator, nil when online
// profiling is disabled.
func (rt *Runtime) OnlineProfiler() *onlineprof.Estimator { return rt.estimator }

// ReplansFromDrift counts replans triggered by the online profiler's
// drift detector (as opposed to admission/departure churn).
func (rt *Runtime) ReplansFromDrift() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.driftReplans
}

// OnlineProfStats snapshots the feedback loop's counters — the
// estimator's, plus the runtime-owned drift-replan count. ok is false
// when online profiling is disabled (wire the introspection server's
// OnlineProf hook only when it is true).
func (rt *Runtime) OnlineProfStats() (s obs.OnlineProfStats, ok bool) {
	if rt.estimator == nil {
		return obs.OnlineProfStats{}, false
	}
	s = rt.estimator.Stats()
	s.DriftReplans = rt.ReplansFromDrift()
	return s, true
}

// planAdjust composes the latency-table adjustments active for the next
// solve — the configured model-error injection and the estimator's
// learned corrections — with the canonical digest that keys them in the
// schedule cache. Identity composes to (nil, ""), keeping unadjusted
// planning byte-identical to the pre-feedback path.
func (rt *Runtime) planAdjust() (profiler.Adjust, string) {
	var learned profiler.Adjust
	var ldig string
	if rt.estimator != nil {
		learned, ldig = rt.estimator.LearnedAdjust()
	}
	digest := rt.cfg.ModelAdjustDigest
	if ldig != "" {
		if digest != "" {
			digest += "+"
		}
		digest += "learned:" + ldig
	}
	return profiler.Compose(rt.cfg.ModelAdjust, learned), digest
}

// modelCells projects the model's latency prediction for every stage of
// a plan under its steady-state environment: the external environment
// overlaid with every *other* chunk's standing intensity (the same
// accounting planDemand and addPlanEnv use), passed through the active
// adjustments — exactly what the planner believed when it solved, and
// therefore the baseline drift is measured against.
func (rt *Runtime) modelCells(p *pipeline.Plan, ext soc.Env, adjust profiler.Adjust) []onlineprof.ModelCell {
	var cells []onlineprof.ModelCell
	for i, c := range p.Chunks {
		env := ext.Clone()
		for j, o := range p.Chunks {
			if j == i {
				continue
			}
			env.Add(o.PU, soc.Load{MemIntensity: chunkIntensity(p, o)})
		}
		for si := c.Start; si < c.End; si++ {
			stage := p.App.Stages[si]
			sec := rt.dev.Estimate(stage.Cost, c.PU, env)
			if adjust != nil {
				sec = adjust(stage.Name, c.PU, sec)
			}
			cells = append(cells, onlineprof.ModelCell{Stage: stage.Name, PU: c.PU, Seconds: sec})
		}
	}
	return cells
}

// registerModel (re-)registers a session's model generation with the
// estimator: its current plan's predicted stage latencies and the
// quantized signature of the environment it runs under. Called on
// admission, after every churn re-plan/env update, and after a drift
// replan; each registration opens a fresh generation, so one drift can
// trigger at most one replan.
func (rt *Runtime) registerModel(s *Session) {
	if rt.estimator == nil {
		return
	}
	plan, env := s.planSnapshot()
	adjust, _ := rt.planAdjust()
	rt.estimator.SetSessionModel(
		s.opts.Name,
		s.bumpModelGen(),
		env.Signature(rt.estimator.Bucket()),
		rt.modelCells(plan, env, adjust),
	)
}

// applyDrift is the session wave-boundary feedback hook: synchronize
// the estimator to everything emitted so far (deterministic in sim —
// emission happens-before the boundary), consume a latched drift if one
// fired for this session, and re-solve with the learned corrections
// overlaid. A changed schedule re-plans the other residents too, since
// the session's standing interference contribution moved. Pinned
// sessions never replan, from drift or otherwise.
func (rt *Runtime) applyDrift(s *Session) {
	if rt.observer == nil || s.opts.Schedule != nil {
		return
	}
	rt.observer.Sync(rt.stream.Total(), driftSyncTimeout)
	d, ok := rt.estimator.TakeDrift(s.opts.Name)
	if !ok {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed || rt.resident[s.id] != s {
		return
	}
	env := rt.envLocked(s)
	plan, err := rt.planLocked(s.app, env, s.opts, []core.Schedule{s.Schedule()})
	if err != nil {
		return
	}
	rt.driftReplans++
	changed := s.setPlan(plan, env)
	rt.registerModel(s)
	rt.emit(func(e *obs.Event) {
		e.Kind = obs.KindDriftReplan
		e.Session = s.opts.Name
		e.Stage = d.Stage
		e.PU = string(d.PU)
		e.Detail = fmt.Sprintf("observed %.3gx modeled on %s/%s; schedule %s",
			d.Ratio, d.Stage, d.PU, plan.Schedule)
	})
	rt.cfg.Trace.DriftReplanned(s.opts.Name, fmt.Sprintf("observed %.3gx modeled on %s/%s; schedule %s",
		d.Ratio, d.Stage, d.PU, plan.Schedule))
	if changed {
		rt.replanLocked(s)
	}
}
