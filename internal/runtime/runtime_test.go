package runtime

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"bettertogether/internal/core"
	"bettertogether/internal/metrics"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/soc"
	"bettertogether/pkg/btapps"
)

func mustApp(t *testing.T, name string) *core.Application {
	t.Helper()
	app, err := btapps.ByName(name)
	if err != nil {
		t.Fatalf("app %q: %v", name, err)
	}
	return app
}

func mustDevice(t *testing.T, name string) *soc.Device {
	t.Helper()
	dev, err := soc.DeviceByName(name)
	if err != nil {
		t.Fatalf("device %q: %v", name, err)
	}
	return dev
}

func mustRuntime(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	rt, err := NewFromConfig(cfg)
	if err != nil {
		t.Fatalf("NewFromConfig: %v", err)
	}
	return rt
}

func TestNewRejectsMissingDevice(t *testing.T) {
	if _, err := NewFromConfig(Config{}); err == nil {
		t.Fatal("NewFromConfig accepted a config without a device")
	}
	if _, err := New(nil); err == nil {
		t.Fatal("New accepted a nil device")
	}
}

func TestSingleSessionCompletes(t *testing.T) {
	rt := mustRuntime(t, Config{Device: mustDevice(t, "pixel7a")})
	defer rt.Close()
	s, err := rt.Admit(mustApp(t, "octree"), AdmitOptions{
		Tasks: 20, WaveTasks: 6, Warmup: 2,
		CollectMetrics: true, CollectTrace: true,
	})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	res := s.Wait()
	if res.Err != nil {
		t.Fatalf("session error: %v", res.Err)
	}
	if res.Tasks != 20 {
		t.Fatalf("completed %d tasks, want 20", res.Tasks)
	}
	if res.PerTask <= 0 || res.Elapsed <= 0 {
		t.Fatalf("degenerate aggregates: %+v", res)
	}
	if res.EnergyJ <= 0 || res.EnergyPerTaskJ <= 0 {
		t.Fatalf("sim runs must report energy: %+v", res)
	}
	app := s.App()
	m := s.Metrics()
	if m == nil {
		t.Fatal("CollectMetrics produced no collector")
	}
	// Every stage executed tasks+warmup times across all waves combined.
	for i := 0; i < m.NumStages(); i++ {
		if got := m.Stage(i).Dispatches(); got != 22 {
			t.Fatalf("stage %d dispatched %d times, want 22", i, got)
		}
	}
	if m.NumStages() != len(app.Stages) {
		t.Fatalf("collector has %d stage rows, app has %d stages", m.NumStages(), len(app.Stages))
	}
	tl := s.Timeline()
	if tl == nil || len(tl.Spans) == 0 {
		t.Fatal("CollectTrace produced no spans")
	}
	// Waves append on a monotonic session-local clock: spans from a later
	// wave must not start before an earlier wave's spans.
	// Per-chunk span order within a wave is already monotonic, so a simple
	// global horizon check suffices.
	horizon := 0.0
	for _, sp := range tl.Spans {
		if sp.End > horizon {
			horizon = sp.End
		}
		if sp.Start < 0 || sp.End < sp.Start {
			t.Fatalf("malformed span %+v", sp)
		}
	}
	if horizon <= 0 {
		t.Fatal("empty trace horizon")
	}
	rep := rt.Report(60)
	if !strings.Contains(rep, s.Name()) || !strings.Contains(rep, "octree") {
		t.Fatalf("report does not mention the session:\n%s", rep)
	}
}

// TestSingleSessionDeterministic pins that an un-perturbed session (no
// admission churn) aggregates identically across two runtimes.
func TestSingleSessionDeterministic(t *testing.T) {
	run := func() SessionResult {
		rt := mustRuntime(t, Config{Device: mustDevice(t, "pixel7a"), Seed: 7})
		defer rt.Close()
		s, err := rt.Admit(mustApp(t, "octree"), AdmitOptions{Tasks: 24, WaveTasks: 8, Seed: 3})
		if err != nil {
			t.Fatalf("Admit: %v", err)
		}
		return s.Wait()
	}
	a, b := run(), run()
	if a.Tasks != b.Tasks || a.PerTask != b.PerTask || a.Elapsed != b.Elapsed || a.EnergyJ != b.EnergyJ {
		t.Fatalf("non-deterministic session aggregates:\n%+v\n%+v", a, b)
	}
	if !a.Schedule.Equal(b.Schedule) {
		t.Fatalf("non-deterministic planning: %v vs %v", a.Schedule, b.Schedule)
	}
}

// gatedEngine blocks execution waves of one application until released,
// passing everything else straight through. Tests use it to hold a
// session resident while admission churn happens around it — without it,
// a fast simulated session can drain its whole task budget before a
// second Admit's (much slower) planning pass finishes, and there is
// nothing left to re-plan. Planning is unaffected: the sched package
// autotunes on its own engine, not the runtime's.
type gatedEngine struct {
	inner pipeline.Engine
	app   string
	gate  chan struct{}
}

func (g *gatedEngine) Name() string { return "gated-" + g.inner.Name() }

func (g *gatedEngine) Run(ctx context.Context, p *pipeline.Plan, opts pipeline.Options) pipeline.Result {
	if p.App.Name == g.app {
		select {
		case <-g.gate:
		case <-ctx.Done():
			return pipeline.Result{Err: ctx.Err()}
		}
	}
	return g.inner.Run(ctx, p, opts)
}

// TestReplanOnSecondAdmit is the acceptance scenario: two apps share one
// runtime, and the second admission re-plans the resident session under
// the updated interference environment.
func TestReplanOnSecondAdmit(t *testing.T) {
	appA := mustApp(t, "octree")
	gate := &gatedEngine{inner: pipeline.SimEngine{}, app: appA.Name, gate: make(chan struct{})}
	rt := mustRuntime(t, Config{Device: mustDevice(t, "oneplus11"), Engine: gate})
	defer rt.Close()
	sA, err := rt.Admit(appA, AdmitOptions{Tasks: 120, WaveTasks: 4, CollectMetrics: true})
	if err != nil {
		t.Fatalf("Admit A: %v", err)
	}
	before := sA.Schedule()
	sB, err := rt.Admit(mustApp(t, "alexnet-sparse"), AdmitOptions{Tasks: 40, WaveTasks: 4, CollectMetrics: true})
	if err != nil {
		t.Fatalf("Admit B: %v", err)
	}
	// Admission re-plans residents synchronously before returning, so A's
	// schedule history already reflects B's arrival.
	if got := sA.Replans(); got < 1 {
		t.Fatalf("resident session was not re-planned on second admit (replans=%d)", got)
	}
	hist := sA.Schedules()
	if len(hist) < 2 {
		t.Fatalf("schedule history %v records no re-plan", hist)
	}
	if hist[1].Equal(before) {
		t.Fatalf("re-plan recorded an unchanged schedule %v", before)
	}
	close(gate.gate)
	resA, resB := sA.Wait(), sB.Wait()
	if resA.Err != nil || resB.Err != nil {
		t.Fatalf("session errors: A=%v B=%v", resA.Err, resB.Err)
	}
	if resA.Tasks != 120 || resB.Tasks != 40 {
		t.Fatalf("task counts A=%d B=%d, want 120/40", resA.Tasks, resB.Tasks)
	}
	// Per-session metrics are namespaced: distinct collectors, each
	// accounting exactly its own session's dispatches.
	mA, mB := sA.Metrics(), sB.Metrics()
	if mA == nil || mB == nil || mA == mB {
		t.Fatalf("sessions must own distinct collectors (A=%p B=%p)", mA, mB)
	}
	for i := 0; i < mA.NumStages(); i++ {
		if got := mA.Stage(i).Dispatches(); got != 120 {
			t.Fatalf("A stage %d dispatched %d times, want 120", i, got)
		}
	}
	for i := 0; i < mB.NumStages(); i++ {
		if got := mB.Stage(i).Dispatches(); got != 40 {
			t.Fatalf("B stage %d dispatched %d times, want 40", i, got)
		}
	}
}

// TestAdmissionRejectedTyped pins the typed rejection: two bandwidth-
// heavy vision pipelines exceed the Jetson's DRAM headroom.
func TestAdmissionRejectedTyped(t *testing.T) {
	rt := mustRuntime(t, Config{Device: mustDevice(t, "jetson")})
	defer rt.Close()
	if _, err := rt.Admit(mustApp(t, "vision"), AdmitOptions{Tasks: 200, WaveTasks: 4}); err != nil {
		t.Fatalf("first vision admit should fit: %v", err)
	}
	_, err := rt.Admit(mustApp(t, "vision"), AdmitOptions{Tasks: 200, WaveTasks: 4})
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("want *AdmissionError, got %v", err)
	}
	if adm.Resource != ResourceBandwidth {
		t.Fatalf("rejected on %q, want %q", adm.Resource, ResourceBandwidth)
	}
	if adm.Demand <= adm.Capacity {
		t.Fatalf("rejection with demand %.2f <= capacity %.2f", adm.Demand, adm.Capacity)
	}
	if adm.App != "vision" {
		t.Fatalf("rejection names %q", adm.App)
	}
	// A rejected applicant must not have registered a session.
	if got := len(rt.Sessions()); got != 1 {
		t.Fatalf("%d sessions after rejection, want 1", got)
	}
}

func TestAdmitAfterCloseFails(t *testing.T) {
	rt := mustRuntime(t, Config{Device: mustDevice(t, "pixel7a")})
	rt.Close()
	if _, err := rt.Admit(mustApp(t, "octree"), AdmitOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

// TestPinnedScheduleNeverReplanned: a pinned session keeps its schedule
// across admission churn (only its environment updates).
func TestPinnedScheduleNeverReplanned(t *testing.T) {
	dev := mustDevice(t, "oneplus11")
	app := mustApp(t, "octree")
	pin := core.NewUniformSchedule(len(app.Stages), dev.GPUClass())
	rt := mustRuntime(t, Config{Device: dev})
	defer rt.Close()
	sA, err := rt.Admit(app, AdmitOptions{Tasks: 80, WaveTasks: 4, Schedule: &pin})
	if err != nil {
		t.Fatalf("Admit pinned: %v", err)
	}
	if _, err := rt.Admit(mustApp(t, "alexnet-sparse"), AdmitOptions{Tasks: 24, WaveTasks: 4}); err != nil {
		t.Fatalf("Admit B: %v", err)
	}
	if got := sA.Replans(); got != 0 {
		t.Fatalf("pinned session re-planned %d times", got)
	}
	if !sA.Schedule().Equal(pin) {
		t.Fatalf("pinned schedule drifted to %v", sA.Schedule())
	}
	res := sA.Wait()
	if res.Err != nil {
		t.Fatalf("pinned session error: %v", res.Err)
	}
}

// TestStopCancelsSession: Stop interrupts a long session between waves
// and surfaces context.Canceled.
func TestStopCancelsSession(t *testing.T) {
	dev := mustDevice(t, "pixel7a")
	app := mustApp(t, "octree")
	pin := core.NewUniformSchedule(len(app.Stages), dev.GPUClass())
	rt := mustRuntime(t, Config{Device: dev})
	defer rt.Close()
	s, err := rt.Admit(app, AdmitOptions{Tasks: 1 << 30, WaveTasks: 1, Schedule: &pin})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	s.Stop()
	if !errors.Is(s.Err(), context.Canceled) {
		t.Fatalf("stopped session error = %v, want context.Canceled", s.Err())
	}
	// Idempotent.
	s.Stop()
	// The session left residency: Wait returns immediately.
	rt.Wait()
}

// TestConcurrentAdmitStopRace exercises the runtime under concurrent
// admission, stopping, and waiting — the -race satellite. Pinned
// schedules and a huge headroom keep every admission cheap and
// acceptable so the test stresses lifecycle, not planning.
func TestConcurrentAdmitStopRace(t *testing.T) {
	dev := mustDevice(t, "pixel7a")
	app := mustApp(t, "octree")
	pin := core.NewUniformSchedule(len(app.Stages), dev.GPUClass())
	rt := mustRuntime(t, Config{Device: dev, BWHeadroom: 1e9, CoreHeadroom: 1e9})
	const n = 8
	sessions := make([]*Session, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := rt.Admit(app, AdmitOptions{
				Name:  fmt.Sprintf("s%d", i),
				Tasks: 40, WaveTasks: 4,
				Schedule:       &pin,
				CollectMetrics: true,
			})
			if err != nil {
				t.Errorf("Admit %d: %v", i, err)
				return
			}
			sessions[i] = s
			if i%2 == 1 {
				s.Stop()
			} else {
				s.Wait()
			}
		}(i)
	}
	wg.Wait()
	rt.Close()
	rt.Wait()
	// Per-session metrics registries must not alias rows across sessions.
	seen := map[*metrics.Pipeline]string{}
	for i, s := range sessions {
		if s == nil {
			continue
		}
		m := s.Metrics()
		if m == nil {
			// A stopped session may have been canceled before its first
			// wave ever ran; a waited one must have collected.
			if i%2 == 0 {
				t.Fatalf("session %s lost its collector", s.Name())
			}
			continue
		}
		if prev, dup := seen[m]; dup {
			t.Fatalf("sessions %s and %s share a collector", prev, s.Name())
		}
		seen[m] = s.Name()
		for i := 0; i < m.NumStages(); i++ {
			if got := m.Stage(i).Dispatches(); got > 40 {
				t.Fatalf("session %s stage %d dispatched %d times (> budget): rows aliased?", s.Name(), i, got)
			}
		}
	}
	_ = rt.Report(40)
}

// TestDepartureReplansSurvivors: when a short session exits, the
// survivor is re-planned back against the emptier device before Wait on
// the departed session returns.
func TestDepartureReplansSurvivors(t *testing.T) {
	appA := mustApp(t, "octree")
	gate := &gatedEngine{inner: pipeline.SimEngine{}, app: appA.Name, gate: make(chan struct{})}
	rt := mustRuntime(t, Config{Device: mustDevice(t, "oneplus11"), Engine: gate})
	defer rt.Close()
	sA, err := rt.Admit(appA, AdmitOptions{Tasks: 40, WaveTasks: 4})
	if err != nil {
		t.Fatalf("Admit A: %v", err)
	}
	sB, err := rt.Admit(mustApp(t, "alexnet-sparse"), AdmitOptions{Tasks: 16, WaveTasks: 4})
	if err != nil {
		t.Fatalf("Admit B: %v", err)
	}
	afterAdmit := sA.Replans()
	if afterAdmit < 1 {
		t.Fatalf("survivor not re-planned on admit (replans=%d)", afterAdmit)
	}
	// Departure re-planning runs before the departing session's done
	// channel closes, so after Wait the survivor has been re-planned back
	// against the emptier device.
	sB.Wait()
	if got := sA.Replans(); got <= afterAdmit {
		t.Fatalf("survivor not re-planned on departure: replans %d -> %d", afterAdmit, got)
	}
	close(gate.gate)
	if res := sA.Wait(); res.Err != nil || res.Tasks != 40 {
		t.Fatalf("survivor did not finish cleanly: %+v", res)
	}
}
