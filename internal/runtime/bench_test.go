package runtime

import (
	"fmt"
	"testing"

	"bettertogether/internal/core"
	"bettertogether/internal/schedcache"
	"bettertogether/internal/soc"
	"bettertogether/pkg/btapps"
)

// benchChurnRound is one admit-admit-drain cycle — the unit of work the
// churn scenario repeats. Fixed per-slot seeds keep the cache keys
// recurring across iterations, which is exactly the regime the cache is
// built for. Applications are built once by the caller: app
// construction (weight generation) is not part of the admission path.
func benchChurnRound(b *testing.B, rt *Runtime, apps []*core.Application, round int) {
	b.Helper()
	sessions := make([]*Session, 0, len(apps))
	for i, app := range apps {
		s, err := rt.Admit(app, AdmitOptions{
			Name:  fmt.Sprintf("r%d-%d", round, i),
			Tasks: 4, WaveTasks: 4,
			Seed: int64(i) * 101,
		})
		if err != nil {
			b.Fatalf("round %d: %v", round, err)
		}
		sessions = append(sessions, s)
	}
	for _, s := range sessions {
		if res := s.Wait(); res.Err != nil {
			b.Fatalf("round %d: %v", round, res.Err)
		}
	}
}

// BenchmarkAdmitChurn measures the admission-to-plan-landed path under
// churn, cache off vs on — the pinned form of the btbench churn
// scenario (cmd/btbench -exp churn produces the committed BENCH_6.json).
func BenchmarkAdmitChurn(b *testing.B) {
	for _, mode := range []struct {
		name  string
		cache *schedcache.Cache
	}{
		{"cache=off", nil},
		{"cache=on", schedcache.New(schedcache.DefaultCapacity, schedcache.DefaultBucket)},
	} {
		b.Run(mode.name, func(b *testing.B) {
			dev, err := soc.DeviceByName("pixel7a")
			if err != nil {
				b.Fatal(err)
			}
			apps := make([]*core.Application, 0, 2)
			for _, name := range []string{"octree", "alexnet-sparse"} {
				app, err := btapps.ByName(name)
				if err != nil {
					b.Fatal(err)
				}
				apps = append(apps, app)
			}
			opts := []Option{WithHeadroom(8, 8)}
			if mode.cache != nil {
				opts = append(opts, WithSchedCache(mode.cache))
			}
			rt, err := New(dev, opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchChurnRound(b, rt, apps, i)
			}
			b.StopTimer()
			if mode.cache != nil {
				st := mode.cache.Stats()
				b.ReportMetric(float64(st.Hits), "hits")
				b.ReportMetric(float64(st.Misses), "misses")
			}
		})
	}
}
