package runtime

import (
	"fmt"

	"bettertogether/internal/core"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/soc"
)

// Resource names used in AdmissionError.Resource.
const (
	// ResourceBandwidth is the shared DRAM memory-controller bandwidth.
	ResourceBandwidth = "dram-bandwidth"
	// ResourceCores is the device's total PU core count.
	ResourceCores = "pu-cores"
)

// AdmissionError reports a rejected Admit: the newcomer's projected
// steady-state demand, stacked on every resident session's, would push a
// device resource past the runtime's configured headroom. Callers detect
// it with errors.As and can retry after a resident exits.
type AdmissionError struct {
	// App is the rejected application's name.
	App string
	// Resource names what ran out (ResourceBandwidth, ResourceCores).
	Resource string
	// Demand is the projected total including the newcomer; Capacity is
	// the headroom-scaled device limit it exceeded. Units are GB/s for
	// bandwidth and cores for cores.
	Demand, Capacity float64
}

// Error implements error.
func (e *AdmissionError) Error() string {
	return fmt.Sprintf("runtime: admission of %q rejected: projected %s demand %.2f exceeds capacity %.2f",
		e.App, e.Resource, e.Demand, e.Capacity)
}

// demand is a plan's projected standing claim on shared device resources.
type demand struct {
	// bwGBs is projected DRAM draw; cores counts claimed PU cores.
	bwGBs, cores float64
}

// plus sums two claims.
func (d demand) plus(o demand) demand {
	return demand{bwGBs: d.bwGBs + o.bwGBs, cores: d.cores + o.cores}
}

// chunkIntensity is the mean memory intensity of a chunk's stages on its
// PU class — the load the chunk contributes to the interference
// environment while executing.
func chunkIntensity(p *pipeline.Plan, c core.Chunk) float64 {
	if c.Len() == 0 {
		return 0
	}
	sum := 0.0
	for s := c.Start; s < c.End; s++ {
		sum += p.Device.Intensity(p.App.Stages[s].Cost, c.PU)
	}
	return sum / float64(c.Len())
}

// planDemand projects a plan's steady-state resource claim. In a full
// pipeline every chunk is busy simultaneously, so per-chunk draws sum:
// each chunk claims its class's cores outright and a bandwidth share
// equal to the class's peak draw scaled by the chunk's memory intensity.
//
// Schedule contiguity (C2, enforced by core.Schedule.Validate) means a
// valid plan never maps two chunks to one PU class, but hand-built Plan
// literals can violate it — and without the dedup below such a plan
// would claim the class's cores once per chunk, inflating projected
// demand until admission wedges shut. Defensively, a class's cores are
// claimed once and its chunk intensities sum with saturation at 1 (the
// Env.Add rule: co-runners cannot draw more than full bandwidth).
func planDemand(p *pipeline.Plan) demand {
	var d demand
	var order []core.PUClass
	intensity := map[core.PUClass]float64{}
	for _, c := range p.Chunks {
		if _, seen := intensity[c.PU]; !seen {
			order = append(order, c.PU)
			d.cores += float64(p.Device.PU(c.PU).Cores)
		}
		sum := intensity[c.PU] + chunkIntensity(p, c)
		if sum > 1 {
			sum = 1
		}
		intensity[c.PU] = sum
	}
	for _, c := range order {
		d.bwGBs += p.Device.PU(c).MemBWGBs * intensity[c]
	}
	return d
}

// addPlanEnv folds a plan's steady-state interference contribution into
// env: one load per chunk on its PU class (contiguity means classes are
// distinct within one plan; across plans Env.Add saturates).
func addPlanEnv(env soc.Env, p *pipeline.Plan) {
	for _, c := range p.Chunks {
		env.Add(c.PU, soc.Load{MemIntensity: chunkIntensity(p, c)})
	}
}
