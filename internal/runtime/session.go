package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bettertogether/internal/core"
	"bettertogether/internal/metrics"
	"bettertogether/internal/obs"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/soc"
	"bettertogether/internal/trace"
)

// Session option defaults.
const (
	// DefaultSessionTasks matches the paper's 30-task runs.
	DefaultSessionTasks = 30
	// DefaultWaveTasks is the re-planning granularity: a session executes
	// this many tasks per wave and re-reads its plan between waves, so a
	// re-plan triggered by admission churn takes effect within one wave.
	DefaultWaveTasks = 8
)

// AdmitOptions configure one admitted session.
type AdmitOptions struct {
	// Name identifies the session in reports and metrics namespaces;
	// empty derives "<app>#<id>".
	Name string
	// Tasks is the total number of stream tasks the session processes
	// (<= 0 selects DefaultSessionTasks).
	Tasks int
	// Warmup tasks are prepended to the first wave and excluded from
	// the session's measured aggregates.
	Warmup int
	// WaveTasks is the number of tasks per execution wave (<= 0 selects
	// DefaultWaveTasks). Smaller waves react to re-plans faster; larger
	// waves amortize pipeline fill better.
	WaveTasks int
	// Seed drives the session's simulation-noise stream.
	Seed int64
	// Schedule pins the session to a fixed schedule: admission skips the
	// profiling/optimization pipeline and the session is never re-planned
	// (its environment still updates). Nil lets the runtime plan and
	// re-plan interference-aware.
	Schedule *core.Schedule
	// Hold defers execution: the session is planned, admitted, and
	// occupies admission capacity (its projected demand reserves headroom
	// and its steady-state load shapes other sessions' environments), but
	// no wave runs until the caller invokes Session.Start. This is the
	// reservation shape fleet placement replays need — admit
	// deterministically first, execute on the caller's clock later. Stop
	// and Runtime.Close release held sessions themselves, so a held
	// session never wedges shutdown.
	Hold bool
	// Deadline is the session's SLO budget in seconds of measured elapsed
	// time (virtual seconds under the Sim engine): a session whose waves
	// sum past it — or that fails — has missed its deadline. Attainment
	// is recorded at session end into Runtime.SLOStats and the session
	// tracer's verdict. 0 attaches no deadline; negative or non-finite
	// values fail Admit.
	Deadline float64
	// GPUPoolWidth forwards to pipeline.Options.GPUPoolWidth.
	GPUPoolWidth int
	// CollectMetrics aggregates a per-session metrics.Pipeline across
	// waves; CollectTrace accumulates a session-local trace.Timeline.
	CollectMetrics bool
	CollectTrace   bool
}

// withDefaults resolves the options for an admitted session.
func (o AdmitOptions) withDefaults(app *core.Application, id int) AdmitOptions {
	if o.Name == "" {
		o.Name = fmt.Sprintf("%s#%d", app.Name, id)
	}
	if o.Tasks <= 0 {
		o.Tasks = DefaultSessionTasks
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.WaveTasks <= 0 {
		o.WaveTasks = DefaultWaveTasks
	}
	if o.Schedule != nil {
		// Deep-copy the pin so callers cannot mutate it after admission.
		sc := core.Schedule{Assign: append([]core.PUClass(nil), o.Schedule.Assign...)}
		o.Schedule = &sc
	}
	return o
}

// Session is one admitted application's execution on a Runtime. It runs
// on its own goroutine in waves of WaveTasks, snapshotting its (plan,
// environment) pair before each wave, so re-plans from admission churn
// land between waves without interrupting in-flight tasks.
type Session struct {
	id   int
	rt   *Runtime
	app  *core.Application
	opts AdmitOptions

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	// started gates the run goroutine: exactly one Start launches it,
	// whether from Admit (the default), the holder's Start call, or a
	// Stop/Close unwinding a held session. launched mirrors whether that
	// gate has fired, so Held can answer without racing the Once.
	started  sync.Once
	launched atomic.Bool

	mu   sync.Mutex
	plan *pipeline.Plan
	env  soc.Env
	// planEnv is the environment the current plan was solved against;
	// unlike env it does not move on delta-skipped or failed re-plans,
	// so the runtime's ReplanDelta comparison measures cumulative drift
	// since the last actual solve rather than per-churn increments.
	planEnv   soc.Env
	replans   int
	schedules []core.Schedule
	// modelGen numbers the session's model registrations with the
	// online-profiling estimator; each (re-)plan opens a generation.
	modelGen int64

	// Aggregates across waves. perTaskW is Σ perTask×tasks so PerTask is
	// the completion-weighted mean; processed includes warmup (which also
	// burned energy); offset is the session-local clock the next wave's
	// trace spans shift by.
	tasks     int
	processed int
	perTaskW  float64
	elapsed   float64
	energyJ   float64
	offset    float64
	met       *metrics.Pipeline
	tl        *trace.Timeline
	err       error
}

// newSession builds a session around its initial plan; run() is started
// by Admit after registration.
func newSession(rt *Runtime, id int, app *core.Application, opts AdmitOptions, plan *pipeline.Plan, env soc.Env) *Session {
	ctx, cancel := context.WithCancel(context.Background())
	return &Session{
		id: id, rt: rt, app: app, opts: opts,
		ctx: ctx, cancel: cancel, done: make(chan struct{}),
		plan: plan, env: env, planEnv: env,
		schedules: []core.Schedule{plan.Schedule},
	}
}

// run is the session goroutine: waves of WaveTasks until the task budget
// is spent, the session is stopped, or a wave fails. Departure
// re-planning (rt.exit) runs before done closes, so by the time Wait
// returns the remaining residents have already been re-planned.
func (s *Session) run() {
	defer close(s.done)
	defer s.rt.exit(s)
	defer func() {
		// Runs before exit/close (LIFO), so for one session every
		// WaveEnd precedes its SessionEnd on the stream.
		res := s.Snapshot()
		canceled := errors.Is(res.Err, context.Canceled)
		// A canceled session with zero tasks is a released reservation
		// (the source half of a migration): the same-named session
		// continues elsewhere, so it neither counts toward SLO
		// attainment nor closes the causal trace.
		released := canceled && res.Tasks == 0
		attained := false
		if s.opts.Deadline > 0 && !released {
			attained = res.Err == nil && res.Elapsed <= s.opts.Deadline
			s.rt.recordSLO(res.Elapsed, attained)
		}
		s.rt.cfg.Trace.SessionEnd(s.opts.Name, res.Elapsed, s.opts.Deadline,
			res.Tasks, canceled, errString(res.Err))
		s.rt.emit(func(e *obs.Event) {
			e.Kind = obs.KindSessionEnd
			e.Session = s.opts.Name
			if res.Err != nil {
				e.Detail = res.Err.Error()
			}
			if s.opts.Deadline > 0 && !released {
				// Deadline-carrying sessions annotate the stream event;
				// the zero-deadline path stays byte-identical to the
				// pre-SLO one.
				e.Dur = time.Duration(res.Elapsed * float64(time.Second))
				verdict := "missed"
				if attained {
					verdict = "attained"
				}
				if e.Detail != "" {
					e.Detail += "; "
				}
				e.Detail += fmt.Sprintf("slo %s (deadline %.3gs)", verdict, s.opts.Deadline)
			}
		})
	}()
	sink := obs.WithSession(s.rt.cfg.Events, s.opts.Name)
	remaining := s.opts.Tasks
	for wave := 0; remaining > 0; wave++ {
		if err := s.ctx.Err(); err != nil {
			s.fail(err)
			return
		}
		plan, env := s.planSnapshot()
		n := s.opts.WaveTasks
		if n > remaining {
			n = remaining
		}
		warm := 0
		if wave == 0 {
			warm = s.opts.Warmup
		}
		o := pipeline.Options{
			Tasks:        n,
			Warmup:       warm,
			Seed:         s.opts.Seed + int64(wave)*1009,
			BaseEnv:      env,
			GPUPoolWidth: s.opts.GPUPoolWidth,
			Events:       sink,
		}
		if s.opts.CollectMetrics {
			o.Metrics = pipeline.NewMetricsFor(plan, o)
		}
		if s.opts.CollectTrace {
			o.Trace = &trace.Timeline{}
		}
		wv := wave
		s.rt.emit(func(e *obs.Event) {
			e.Kind = obs.KindWaveStart
			e.Session = s.opts.Name
			e.Wave, e.Task = wv, n
			e.Detail = plan.Schedule.String()
		})
		s.rt.cfg.Trace.WaveStart(s.opts.Name, wv, n, plan.Schedule.String())
		r := s.rt.eng.Run(s.ctx, plan, o)
		s.absorb(r, o.Metrics, o.Trace, warm)
		s.rt.emit(func(e *obs.Event) {
			e.Kind = obs.KindWaveEnd
			e.Session = s.opts.Name
			e.Wave, e.Task = wv, len(r.Completions)
			e.Dur = time.Duration(r.Elapsed * float64(time.Second))
			if r.Err != nil {
				e.Detail = r.Err.Error()
			}
		})
		s.rt.cfg.Trace.WaveEnd(s.opts.Name, wv, r.Elapsed)
		if r.Err != nil {
			s.fail(r.Err)
			return
		}
		remaining -= n
		if remaining > 0 {
			// Wave boundary: let the online profiler act on drift it
			// observed in this wave, so the replacement plan lands
			// before the next wave snapshots.
			s.rt.applyDrift(s)
		}
	}
}

// absorb folds one wave's result into the session aggregates. The wave
// has finished, so its collector and timeline are quiescent — safe to
// merge.
func (s *Session) absorb(r pipeline.Result, m *metrics.Pipeline, tl *trace.Timeline, warm int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(r.Completions)
	s.tasks += n
	s.processed += n + warm
	s.perTaskW += r.PerTask * float64(n)
	s.elapsed += r.Elapsed
	s.energyJ += r.EnergyJ
	if m != nil {
		if s.met == nil {
			s.met = m
		} else {
			s.met.Merge(m)
		}
	}
	var horizon float64
	if tl != nil {
		horizon = tl.Horizon()
		if s.tl == nil {
			s.tl = &trace.Timeline{}
		}
		for _, sp := range tl.Spans {
			sp.Start += s.offset
			sp.End += s.offset
			s.tl.Add(sp)
		}
	} else if n > 0 {
		horizon = r.Completions[n-1]
	}
	s.offset += horizon
}

// planSnapshot returns the (plan, env) pair the next wave runs under.
func (s *Session) planSnapshot() (*pipeline.Plan, soc.Env) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plan, s.env
}

// currentPlan returns the session's live plan (the runtime's demand and
// environment accounting reads it).
func (s *Session) currentPlan() *pipeline.Plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plan
}

// setPlan installs a re-planned schedule and environment; a genuinely
// different schedule counts as a re-plan and reports true.
func (s *Session) setPlan(p *pipeline.Plan, env soc.Env) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := !p.Schedule.Equal(s.plan.Schedule)
	if changed {
		s.replans++
		s.schedules = append(s.schedules, p.Schedule)
	}
	s.plan = p
	s.env = env
	s.planEnv = env
	return changed
}

// bumpModelGen opens the session's next model generation.
func (s *Session) bumpModelGen() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.modelGen++
	return s.modelGen
}

// planEnvSnapshot returns the environment the current plan was solved
// against (the baseline of the runtime's delta-skip comparison).
func (s *Session) planEnvSnapshot() soc.Env {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.planEnv
}

// setEnv updates only the environment (pinned-schedule sessions, or
// re-planning that failed and kept the old schedule).
func (s *Session) setEnv(env soc.Env) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.env = env
}

// fail records the session's terminal error (first one wins).
func (s *Session) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
	}
}

// Start launches the session's execution goroutine. Idempotent: the
// first call wins, later calls (including the implicit one inside Stop
// and Runtime.Close) are no-ops. Admit calls it immediately unless
// AdmitOptions.Hold deferred the launch to the caller.
func (s *Session) Start() {
	s.started.Do(func() {
		s.launched.Store(true)
		if s.opts.Hold && s.ctx.Err() == nil {
			// A held reservation actually launching (not a Stop/Close
			// unwind, whose context is already canceled) is a lifecycle
			// point worth a span.
			s.rt.cfg.Trace.Started(s.opts.Name)
		}
		go s.run()
	})
}

// Held reports whether the session is an unreleased reservation: it was
// admitted with AdmitOptions.Hold and nothing has invoked Start yet (not
// the holder, not Stop, not Runtime.Close). A held session occupies
// admission capacity but executes no waves, which is what makes it
// migratable — a fleet drain can re-place the reservation on another
// node and Release this one without losing any completed work.
func (s *Session) Held() bool {
	return s.opts.Hold && !s.launched.Load()
}

// Release discards a held session's reservation without executing it:
// the session unwinds through the normal exit path (departure
// re-planning of the survivors included) and Wait returns with a
// cancellation error and zero completed tasks. This is the second half
// of the fleet's place-elsewhere-then-release migration — the new
// reservation is admitted on the target node first, then the source
// node's copy is Released. Idempotent, and a no-op beyond Stop on a
// session that already ran.
func (s *Session) Release() { s.Stop() }

// Name returns the session's runtime identity.
func (s *Session) Name() string { return s.opts.Name }

// App returns the session's application.
func (s *Session) App() *core.Application { return s.app }

// Done returns a channel closed when the session has finished.
func (s *Session) Done() <-chan struct{} { return s.done }

// Stop cancels the session and waits for it to unwind. A held session
// that never ran is started with its context already canceled, so it
// exits residency immediately instead of wedging the wait. Idempotent;
// safe concurrently with Wait.
func (s *Session) Stop() {
	s.cancel()
	s.Start()
	<-s.done
}

// Wait blocks until the session finishes and returns its result.
func (s *Session) Wait() SessionResult {
	<-s.done
	return s.Snapshot()
}

// Err returns the session's terminal error, if any.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Schedule returns the session's latest schedule.
func (s *Session) Schedule() core.Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plan.Schedule
}

// Replans returns how often admission churn changed the session's
// schedule.
func (s *Session) Replans() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replans
}

// Schedules returns the session's schedule history in order: the initial
// plan followed by one entry per re-plan that changed the assignment.
func (s *Session) Schedules() []core.Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]core.Schedule(nil), s.schedules...)
}

// Metrics returns the session's aggregated collector (nil unless
// CollectMetrics). Each session owns its collector — rows are never
// shared across sessions — and it is quiescent once the session is done.
func (s *Session) Metrics() *metrics.Pipeline {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.met
}

// Timeline returns a copy of the session's accumulated trace on its
// session-local clock (nil unless CollectTrace produced spans).
func (s *Session) Timeline() *trace.Timeline {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tl == nil {
		return nil
	}
	return &trace.Timeline{Spans: append([]trace.Span(nil), s.tl.Spans...)}
}

// SessionResult is a session's aggregate over every completed wave.
type SessionResult struct {
	// Name and App identify the session.
	Name, App string
	// Tasks counts measured completions; PerTask is the completion-
	// weighted mean per-task latency in seconds; Elapsed sums the waves'
	// measured windows.
	Tasks   int
	PerTask float64
	Elapsed float64
	// EnergyJ is total energy; EnergyPerTaskJ divides by every processed
	// task including warmup (Sim engine only; zero under Real).
	EnergyJ        float64
	EnergyPerTaskJ float64
	// Replans counts schedule changes; Schedule is the latest one.
	Replans  int
	Schedule core.Schedule
	// Err is the session's terminal error, if it did not finish cleanly.
	Err error
}

// Snapshot returns the session's aggregates so far; after Done it is the
// final result.
func (s *Session) Snapshot() SessionResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	res := SessionResult{
		Name: s.opts.Name, App: s.app.Name,
		Tasks: s.tasks, Elapsed: s.elapsed,
		EnergyJ: s.energyJ,
		Replans: s.replans, Schedule: s.plan.Schedule,
		Err: s.err,
	}
	if s.tasks > 0 {
		res.PerTask = s.perTaskW / float64(s.tasks)
	}
	if s.processed > 0 {
		res.EnergyPerTaskJ = s.energyJ / float64(s.processed)
	}
	return res
}
