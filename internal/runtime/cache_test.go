package runtime

import (
	"context"
	"fmt"
	goruntime "runtime"
	"testing"
	"time"

	"bettertogether/internal/core"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/schedcache"
)

// holdAllEngine blocks every execution wave until released (or the wave's
// context dies). Cache tests use it to freeze session progress so the
// schedule histories reflect exactly the synchronous admission sequence —
// no exit re-planning races into the comparison.
type holdAllEngine struct {
	inner pipeline.Engine
	gate  chan struct{}
}

func (h *holdAllEngine) Name() string { return "held-" + h.inner.Name() }

func (h *holdAllEngine) Run(ctx context.Context, p *pipeline.Plan, opts pipeline.Options) pipeline.Result {
	select {
	case <-h.gate:
	case <-ctx.Done():
		return pipeline.Result{Err: ctx.Err()}
	}
	return h.inner.Run(ctx, p, opts)
}

// admitPair admits octree then alexnet-sparse into a held runtime and
// returns both sessions' schedule histories as observed right after the
// second admission (before any wave or exit can run).
func admitPair(t *testing.T, cache *schedcache.Cache) [][]core.Schedule {
	t.Helper()
	hold := &holdAllEngine{inner: pipeline.SimEngine{}, gate: make(chan struct{})}
	rt := mustRuntime(t, Config{
		Device: mustDevice(t, "oneplus11"),
		Engine: hold,
		Cache:  cache,
	})
	defer rt.Close()
	sA, err := rt.Admit(mustApp(t, "octree"), AdmitOptions{Tasks: 8, WaveTasks: 4, Seed: 11})
	if err != nil {
		t.Fatalf("Admit A: %v", err)
	}
	sB, err := rt.Admit(mustApp(t, "alexnet-sparse"), AdmitOptions{Tasks: 8, WaveTasks: 4, Seed: 13})
	if err != nil {
		t.Fatalf("Admit B: %v", err)
	}
	return [][]core.Schedule{sA.Schedules(), sB.Schedules()}
}

func historiesEqual(a, b [][]core.Schedule) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if !a[i][j].Equal(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// TestCacheHitSchedulesByteIdentical is the tentpole's acceptance pin:
// a second runtime sharing the first's schedule cache replays the same
// admission sequence entirely from cache hits, and every schedule in
// every session's history is byte-identical to the cold solve's.
func TestCacheHitSchedulesByteIdentical(t *testing.T) {
	cache := schedcache.New(64, schedcache.DefaultBucket)
	cold := admitPair(t, cache)
	afterCold := cache.Stats()
	if afterCold.Hits != 0 {
		t.Fatalf("first run hit the empty cache: %+v", afterCold)
	}
	// The sequence performs 3 solves: A's admit, B's admit, A's re-plan.
	if afterCold.Misses != 3 || afterCold.Stores != 3 {
		t.Fatalf("cold run: %+v, want 3 misses / 3 stores", afterCold)
	}

	warm := admitPair(t, cache)
	afterWarm := cache.Stats()
	if !historiesEqual(cold, warm) {
		t.Fatalf("cached schedules diverge from cold solves:\ncold: %v\nwarm: %v", cold, warm)
	}
	if hits := afterWarm.Hits - afterCold.Hits; hits != 3 {
		t.Fatalf("warm run: %d hits, want all 3 solves served from cache", hits)
	}
	if afterWarm.Misses != afterCold.Misses {
		t.Fatalf("warm run missed: %+v -> %+v", afterCold, afterWarm)
	}
}

// TestCacheDisabledMatchesEnabledAtZeroEnv pins the bridging identity:
// with an empty interference environment (the quantization fixed point),
// an uncached runtime and a cached one pick the same initial schedule —
// enabling the cache does not perturb first-admission planning.
func TestCacheDisabledMatchesEnabledAtZeroEnv(t *testing.T) {
	plan := func(cache *schedcache.Cache) core.Schedule {
		rt := mustRuntime(t, Config{Device: mustDevice(t, "pixel7a"), Cache: cache})
		defer rt.Close()
		s, err := rt.Admit(mustApp(t, "octree"), AdmitOptions{Tasks: 4, WaveTasks: 4, Seed: 5})
		if err != nil {
			t.Fatalf("Admit: %v", err)
		}
		sc := s.Schedules()[0]
		s.Wait()
		return sc
	}
	uncached := plan(nil)
	cached := plan(schedcache.New(8, schedcache.DefaultBucket))
	if !uncached.Equal(cached) {
		t.Fatalf("cache changed the empty-env solve: %v vs %v", uncached, cached)
	}
}

// TestPinnedScheduleNeverReplannedWithCache is the cache-enabled variant
// of the pin contract: even when a pre-warmed cache could supply a
// schedule for every environment, a pinned session is never re-planned
// and its admission never consults the cache.
func TestPinnedScheduleNeverReplannedWithCache(t *testing.T) {
	cache := schedcache.New(64, schedcache.DefaultBucket)
	// Pre-warm: run the exact churn sequence once so every (app, env) key
	// the scenario can produce is resident in the cache.
	admitPair(t, cache)
	warmed := cache.Stats()

	dev := mustDevice(t, "oneplus11")
	app := mustApp(t, "octree")
	pin := core.NewUniformSchedule(len(app.Stages), dev.GPUClass())
	rt := mustRuntime(t, Config{Device: dev, Cache: cache})
	defer rt.Close()
	sA, err := rt.Admit(app, AdmitOptions{Tasks: 80, WaveTasks: 4, Seed: 11, Schedule: &pin})
	if err != nil {
		t.Fatalf("Admit pinned: %v", err)
	}
	pinnedAdmit := cache.Stats()
	if pinnedAdmit.Hits != warmed.Hits || pinnedAdmit.Misses != warmed.Misses {
		t.Fatalf("pinned admission consulted the cache: %+v -> %+v", warmed, pinnedAdmit)
	}
	if _, err := rt.Admit(mustApp(t, "alexnet-sparse"), AdmitOptions{Tasks: 24, WaveTasks: 4, Seed: 13}); err != nil {
		t.Fatalf("Admit B: %v", err)
	}
	if got := sA.Replans(); got != 0 {
		t.Fatalf("pinned session re-planned %d times despite cache", got)
	}
	if !sA.Schedule().Equal(pin) {
		t.Fatalf("pinned schedule drifted to %v", sA.Schedule())
	}
	if res := sA.Wait(); res.Err != nil {
		t.Fatalf("pinned session error: %v", res.Err)
	}
}

// TestReplanDeltaSkipsSolves: with a skip threshold above any
// environment shift the churn can produce, residents are never re-solved
// — the skip counter moves instead — while a zero threshold re-plans as
// before.
func TestReplanDeltaSkipsSolves(t *testing.T) {
	run := func(delta float64) (replans, skipped int) {
		hold := &holdAllEngine{inner: pipeline.SimEngine{}, gate: make(chan struct{})}
		rt := mustRuntime(t, Config{
			Device:      mustDevice(t, "oneplus11"),
			Engine:      hold,
			ReplanDelta: delta,
		})
		defer rt.Close()
		sA, err := rt.Admit(mustApp(t, "octree"), AdmitOptions{Tasks: 8, WaveTasks: 4})
		if err != nil {
			t.Fatalf("Admit A: %v", err)
		}
		if _, err := rt.Admit(mustApp(t, "alexnet-sparse"), AdmitOptions{Tasks: 8, WaveTasks: 4}); err != nil {
			t.Fatalf("Admit B: %v", err)
		}
		return sA.Replans(), rt.ReplansSkipped()
	}
	replans, skipped := run(2.0) // L∞ over [0,1] intensities can never reach 2
	if skipped < 1 {
		t.Fatalf("no re-plan skipped under an unreachable delta (skipped=%d)", skipped)
	}
	if replans != 0 {
		t.Fatalf("resident re-planned %d times despite delta skip", replans)
	}
	if _, skipped = run(0); skipped != 0 {
		t.Fatalf("delta 0 skipped %d re-plans", skipped)
	}
}

// TestCacheChurnStress is the churn-heavy -race scenario: repeated
// admit/exit rounds over a shared cache, asserting the cache invariants
// (counter consistency, capacity bound) and goroutine cleanliness
// afterwards.
func TestCacheChurnStress(t *testing.T) {
	before := goruntime.NumGoroutine()
	cache := schedcache.New(8, schedcache.DefaultBucket) // small: force evictions
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		rt := mustRuntime(t, Config{
			Device:       mustDevice(t, "oneplus11"),
			BWHeadroom:   1e9,
			CoreHeadroom: 1e9,
			Cache:        cache,
			ReplanDelta:  0.02,
		})
		sessions := make([]*Session, 0, 3)
		for i, name := range []string{"octree", "alexnet-sparse", "octree"} {
			s, err := rt.Admit(mustApp(t, name), AdmitOptions{
				Name:  fmt.Sprintf("r%d-%d", round, i),
				Tasks: 6, WaveTasks: 3,
				Seed: int64(i) * 101, // fixed per slot so keys recur across rounds
			})
			if err != nil {
				t.Fatalf("round %d admit %s: %v", round, name, err)
			}
			sessions = append(sessions, s)
		}
		for _, s := range sessions {
			if res := s.Wait(); res.Err != nil {
				t.Fatalf("round %d session %s: %v", round, res.Name, res.Err)
			}
		}
		rt.Close()

		st := cache.Stats()
		if st.Size > st.Capacity {
			t.Fatalf("round %d: cache size %d exceeds capacity %d", round, st.Size, st.Capacity)
		}
		if st.Stores > st.Misses {
			t.Fatalf("round %d: %d stores > %d misses — a store without a preceding miss", round, st.Stores, st.Misses)
		}
		if st.Hits+st.Misses < st.Stores {
			t.Fatalf("round %d: inconsistent counters %+v", round, st)
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("churn rounds with fixed seeds produced no cache hits: %+v", st)
	}
	deadline := time.Now().Add(3 * time.Second)
	for goruntime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("churn leaked goroutines: %d before, %d after", before, goruntime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
