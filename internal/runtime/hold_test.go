package runtime

import (
	"context"
	"math"
	"testing"
	"time"

	"bettertogether/internal/core"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/soc"
)

// TestHoldDefersExecution pins the reservation contract: a held session
// occupies admission capacity immediately but runs no wave until Start.
func TestHoldDefersExecution(t *testing.T) {
	rt := mustRuntime(t, Config{Device: mustDevice(t, "jetson")})
	defer rt.Close()
	s, err := rt.Admit(mustApp(t, "octree"), AdmitOptions{Tasks: 4, WaveTasks: 2, Hold: true})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if h := rt.AdmissionHeadroom(); h.ResidentCount != 1 {
		t.Fatalf("held session not resident: %d", h.ResidentCount)
	}
	// No wave may have run: give the scheduler a beat, then check.
	time.Sleep(20 * time.Millisecond)
	if res := s.Snapshot(); res.Tasks != 0 {
		t.Fatalf("held session executed %d tasks before Start", res.Tasks)
	}
	select {
	case <-s.Done():
		t.Fatal("held session finished before Start")
	default:
	}
	s.Start()
	if res := s.Wait(); res.Err != nil || res.Tasks != 4 {
		t.Fatalf("started session: tasks=%d err=%v", res.Tasks, res.Err)
	}
}

// TestHoldStopUnwinds pins that Stop releases a never-started session
// instead of wedging: the canceled context makes the run exit residency
// immediately.
func TestHoldStopUnwinds(t *testing.T) {
	rt := mustRuntime(t, Config{Device: mustDevice(t, "jetson")})
	defer rt.Close()
	s, err := rt.Admit(mustApp(t, "octree"), AdmitOptions{Tasks: 4, Hold: true})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	done := make(chan struct{})
	go func() { s.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop on a held session wedged")
	}
	if res := s.Snapshot(); res.Err != context.Canceled {
		t.Fatalf("stopped held session err = %v, want context.Canceled", res.Err)
	}
	if h := rt.AdmissionHeadroom(); h.ResidentCount != 0 {
		t.Fatalf("stopped held session still resident: %d", h.ResidentCount)
	}
}

// TestCloseReleasesHeldSessions pins that Runtime.Close never hangs on a
// held session.
func TestCloseReleasesHeldSessions(t *testing.T) {
	rt := mustRuntime(t, Config{Device: mustDevice(t, "jetson")})
	if _, err := rt.Admit(mustApp(t, "octree"), AdmitOptions{Tasks: 4, Hold: true}); err != nil {
		t.Fatalf("Admit: %v", err)
	}
	done := make(chan struct{})
	go func() { rt.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close with a held session wedged")
	}
}

// TestHeldSessionReservesCapacity pins that held sessions participate in
// admission accounting: enough held reservations reject the next
// applicant exactly like running residents would.
func TestHeldSessionReservesCapacity(t *testing.T) {
	rt := mustRuntime(t, Config{
		Device:       mustDevice(t, "jetson"),
		BWHeadroom:   1.2, // one vision fits (~48 GB/s), two exceed it
		CoreHeadroom: 100,
	})
	defer rt.Close()
	if _, err := rt.Admit(mustApp(t, "vision"), AdmitOptions{Tasks: 2, Hold: true}); err != nil {
		t.Fatalf("first Admit: %v", err)
	}
	if _, err := rt.Admit(mustApp(t, "vision"), AdmitOptions{Tasks: 2, Hold: true}); err == nil {
		t.Fatal("second vision admitted past tight headroom despite held reservation")
	}
}

// TestNaNEnvStillTriggersReplans is the replan-skip bugfix's
// runtime-level regression pin: before the Env.Delta clamp a session
// whose plan-time environment carried a NaN MemIntensity measured delta
// 0 against every future environment (NaN > d is false), so the
// ReplanDelta shortcut suppressed re-planning forever. With the clamp
// the drift is visible again and churn re-plans the resident.
func TestNaNEnvStillTriggersReplans(t *testing.T) {
	hold := &holdAllEngine{inner: pipeline.SimEngine{}, gate: make(chan struct{})}
	rt := mustRuntime(t, Config{
		Device:      mustDevice(t, "oneplus11"),
		Engine:      hold,
		ReplanDelta: 0.05, // small but real: genuine churn exceeds it
	})
	defer rt.Close()
	sA, err := rt.Admit(mustApp(t, "octree"), AdmitOptions{Tasks: 8, WaveTasks: 4})
	if err != nil {
		t.Fatalf("Admit A: %v", err)
	}
	sB, err := rt.Admit(mustApp(t, "alexnet-sparse"), AdmitOptions{Tasks: 8, WaveTasks: 4})
	if err != nil {
		t.Fatalf("Admit B: %v", err)
	}
	// Poison A's plan-time environment the way a corrupted profile would:
	// every class it solved against now reads NaN. The class SET matches
	// the live environment exactly, so the only signal left is the
	// per-class intensity difference — which the pre-fix Delta lost
	// entirely (|NaN - x| is NaN, and NaN > d is false for every d).
	rt.mu.Lock()
	live := rt.envLocked(sA)
	maxIntensity := 0.0
	poisoned := soc.Env{}
	for c := range live {
		if v := live[c].MemIntensity; v > maxIntensity {
			maxIntensity = v
		}
		poisoned[c] = soc.Load{MemIntensity: math.NaN()}
	}
	sA.planEnv = poisoned
	// Run the churn replan pass over A alone, as an admission touching
	// only A would.
	rt.replanLocked(sB)
	rt.mu.Unlock()
	if maxIntensity < 0.05 {
		t.Fatalf("scenario too weak: live env max intensity %v below the replan delta", maxIntensity)
	}
	// A's re-plan must NOT be skipped: against the clamped baseline the
	// live intensities are a real delta. Pre-fix, the NaN baseline
	// measured delta 0 and the pass was elided.
	if skipped := rt.ReplansSkipped(); skipped != 0 {
		t.Fatalf("ReplansSkipped = %d, want 0 (NaN env suppressed A's re-plan)", skipped)
	}
	env := sA.planEnvSnapshot()
	if len(env) == 0 {
		t.Fatal("replan never landed: plan-time env still the poisoned placeholder")
	}
	for c, l := range env {
		if math.IsNaN(l.MemIntensity) {
			t.Fatalf("plan-time env still poisoned on class %s after replan", c)
		}
	}
}

// TestHoldReplayDeterministic pins the property the fleet layer builds
// on: a hold-admit-then-run-to-completion sequence yields byte-identical
// schedules and latencies across repetitions.
func TestHoldReplayDeterministic(t *testing.T) {
	type run struct {
		sched   []core.Schedule
		perTask []float64
	}
	replay := func() run {
		rt := mustRuntime(t, Config{Device: mustDevice(t, "oneplus11"), Seed: 42})
		defer rt.Close()
		var sessions []*Session
		for i, name := range []string{"octree", "alexnet-sparse"} {
			s, err := rt.Admit(mustApp(t, name), AdmitOptions{
				Tasks: 6, WaveTasks: 3, Seed: int64(i) * 17, Hold: true,
			})
			if err != nil {
				t.Fatalf("Admit %s: %v", name, err)
			}
			sessions = append(sessions, s)
		}
		var r run
		for _, s := range sessions {
			s.Start()
			res := s.Wait()
			if res.Err != nil {
				t.Fatalf("session %s: %v", res.Name, res.Err)
			}
			r.sched = append(r.sched, res.Schedule)
			r.perTask = append(r.perTask, res.PerTask)
		}
		return r
	}
	a, b := replay(), replay()
	for i := range a.sched {
		if !a.sched[i].Equal(b.sched[i]) {
			t.Fatalf("schedule %d diverged: %s vs %s", i, a.sched[i], b.sched[i])
		}
		if a.perTask[i] != b.perTask[i] {
			t.Fatalf("perTask %d diverged: %v vs %v", i, a.perTask[i], b.perTask[i])
		}
	}
}
