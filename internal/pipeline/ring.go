package pipeline

import (
	"bettertogether/internal/core"
	"bettertogether/internal/queue"
)

// taskRing adapts queue.Ring to TaskObject pointers — the closed cycle of
// SPSC edges the dispatchers communicate over, including the recycling
// edge from the last chunk back to the first.
type taskRing struct {
	*queue.Ring[*core.TaskObject]
}

// newTaskRing builds the ring with edge capacity for the buffering depth.
func newTaskRing(chunks, buffers int) taskRing {
	return taskRing{queue.NewRing[*core.TaskObject](chunks, buffers+1)}
}
