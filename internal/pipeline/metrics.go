package pipeline

import (
	"fmt"

	"bettertogether/internal/core"
	"bettertogether/internal/metrics"
)

// poolOrder returns the plan's distinct PU classes in first-use order —
// the canonical pool indexing shared by NewMetrics and both engines, so
// a collector's pool rows mean the same thing whichever engine filled
// them.
func poolOrder(p *Plan) []core.PUClass {
	var order []core.PUClass
	seen := map[core.PUClass]bool{}
	for _, c := range p.Chunks {
		if !seen[c.PU] {
			seen[c.PU] = true
			order = append(order, c.PU)
		}
	}
	return order
}

// poolWidth returns the worker width an engine uses for a class under
// the options: the cluster's core count for CPUs, the configured (or
// default) lane width for the GPU. Defensive about unresolved options so
// NewMetrics can label a collector before withDefaults ran.
func (o Options) poolWidth(p *Plan, class core.PUClass) int {
	pu := p.Device.PU(class)
	if pu.Kind == core.KindGPU {
		if o.GPUPoolWidth > 0 {
			return o.GPUPoolWidth
		}
		return DefaultGPUPoolWidth
	}
	return pu.Cores
}

// NewMetrics builds a metrics collector sized and labeled for the plan:
// one stage row per application stage (annotated with its chunk and PU),
// one queue row per ring edge (edge i leaves chunk i), and one pool row
// per distinct PU class. Pass it as Options.Metrics to either engine.
// Pool widths assume default options; NewMetricsFor labels for explicit
// ones, and the engine driver re-labels widths from the resolved options
// at run start either way.
func NewMetrics(p *Plan) *metrics.Pipeline {
	return NewMetricsFor(p, Options{})
}

// NewMetricsFor is NewMetrics with the options the collector will be run
// under, so pool widths reflect Options.GPUPoolWidth.
func NewMetricsFor(p *Plan, opts Options) *metrics.Pipeline {
	nChunks := len(p.Chunks)
	order := poolOrder(p)
	m := metrics.New(len(p.App.Stages), nChunks, len(order))
	for ci, c := range p.Chunks {
		for s := c.Start; s < c.End; s++ {
			st := m.Stage(s)
			st.Name = p.App.Stages[s].Name
			st.Chunk = ci
			st.PU = string(c.PU)
		}
	}
	// Edge i connects chunk i to chunk (i+1) mod n, including the
	// recycling edge back to chunk 0 (queue.Ring topology). Capacity is
	// a per-run quantity the engine fills at start.
	for e := 0; e < nChunks; e++ {
		m.Queue(e).Label = fmt.Sprintf("chunk %d → %d", e, (e+1)%nChunks)
	}
	for i, class := range order {
		pool := m.Pool(i)
		pool.PU = string(class)
		pool.Width = opts.poolWidth(p, class)
	}
	return m
}
