package pipeline

import (
	"sync"

	"bettertogether/internal/core"
)

// workerPool is the stand-in for a pinned OpenMP thread pool (CPU
// classes) or a SIMT dispatch grid (the GPU class): a fixed set of
// long-lived workers that one chunk's kernels fan work onto. Pool width
// matches the PU's core count, which is what thread affinity buys the
// paper — a fixed, dedicated set of execution lanes per class.
type workerPool struct {
	width int
	work  chan func()
	wg    sync.WaitGroup
}

// newWorkerPool starts width workers.
func newWorkerPool(width int) *workerPool {
	if width < 1 {
		width = 1
	}
	p := &workerPool{width: width, work: make(chan func())}
	p.wg.Add(width)
	for i := 0; i < width; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.work {
				fn()
			}
		}()
	}
	return p
}

// ParFor implements core.ParallelFor on the pool: it splits [0, n) into
// one contiguous band per worker and blocks until all bands finish — the
// implicit barrier of an OpenMP `parallel for` or a stream-synchronized
// kernel launch.
func (p *workerPool) ParFor(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	bands := p.width
	if bands > n {
		bands = n
	}
	if bands == 1 {
		// Run inline: a one-core cluster has no one to hand off to.
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < bands; w++ {
		lo := w * n / bands
		hi := (w + 1) * n / bands
		if lo >= hi {
			continue
		}
		wg.Add(1)
		p.work <- func() {
			defer wg.Done()
			body(lo, hi)
		}
	}
	wg.Wait()
}

// Close stops the workers after in-flight work drains.
func (p *workerPool) Close() {
	close(p.work)
	p.wg.Wait()
}

var _ = core.ParallelFor(nil) // keep the contract import explicit
