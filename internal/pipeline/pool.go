package pipeline

import (
	"runtime/debug"
	"sync"
	"time"

	"bettertogether/internal/core"
	"bettertogether/internal/metrics"
)

// workerPool is the stand-in for a pinned OpenMP thread pool (CPU
// classes) or a SIMT dispatch grid (the GPU class): a fixed set of
// long-lived workers that one chunk's kernels fan work onto. Pool width
// matches the PU's core count, which is what thread affinity buys the
// paper — a fixed, dedicated set of execution lanes per class.
type workerPool struct {
	width int
	work  chan func()
	wg    sync.WaitGroup
	// stats, when non-nil, receives per-lane utilization. Set before the
	// pool is used; reads on the hot path are unsynchronized by design.
	stats *metrics.PoolStats
}

// workerPanic wraps a panic recovered on a pool worker so ParFor can
// re-raise it on the calling dispatcher with the original value and the
// worker's stack. Without this, a panicking kernel band would kill a
// worker goroutine, strand ParFor's barrier, and crash the process.
type workerPanic struct {
	value any
	stack []byte
}

// newWorkerPool starts width workers.
func newWorkerPool(width int) *workerPool {
	if width < 1 {
		width = 1
	}
	p := &workerPool{width: width, work: make(chan func())}
	p.wg.Add(width)
	for i := 0; i < width; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.work {
				fn()
			}
		}()
	}
	return p
}

// ParFor implements core.ParallelFor on the pool: it splits [0, n) into
// one contiguous band per worker and blocks until all bands finish — the
// implicit barrier of an OpenMP `parallel for` or a stream-synchronized
// kernel launch. A panic inside any band is captured, the barrier still
// completes, and the first panic is re-raised on the caller as a
// workerPanic so the dispatcher's recovery can attribute it.
func (p *workerPool) ParFor(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	bands := p.width
	if bands > n {
		bands = n
	}
	if bands == 1 {
		// Run inline: a one-core cluster has no one to hand off to.
		if p.stats != nil {
			t0 := time.Now()
			p.stats.WorkerStart()
			defer func() { p.stats.WorkerDone(time.Since(t0)) }()
		}
		body(0, n)
		return
	}
	var (
		wg    sync.WaitGroup
		pmu   sync.Mutex
		pval  any
		pstk  []byte
		panik bool
	)
	for w := 0; w < bands; w++ {
		lo := w * n / bands
		hi := (w + 1) * n / bands
		if lo >= hi {
			continue
		}
		wg.Add(1)
		p.work <- func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					stack := debug.Stack()
					pmu.Lock()
					if !panik {
						panik, pval, pstk = true, r, stack
					}
					pmu.Unlock()
				}
			}()
			if p.stats != nil {
				t0 := time.Now()
				p.stats.WorkerStart()
				defer func() { p.stats.WorkerDone(time.Since(t0)) }()
			}
			body(lo, hi)
		}
	}
	wg.Wait()
	if panik {
		panic(workerPanic{value: pval, stack: pstk})
	}
}

// Close stops the workers after in-flight work drains.
func (p *workerPool) Close() {
	close(p.work)
	p.wg.Wait()
}

var _ = core.ParallelFor(nil) // keep the contract import explicit
