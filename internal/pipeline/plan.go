// Package pipeline is the BT-Implementer (paper Sec. 3.4): it executes a
// pipeline schedule on a target device, managing dispatchers, lock-free
// SPSC queues, TaskObject multi-buffering and recycling.
//
// Two engines share one compiled Plan:
//
//   - The Real engine runs the application's actual Go kernels on worker
//     pools sized like the device's PU classes, through exactly the
//     dispatcher loop the paper describes. It validates functional
//     behaviour and is what the examples drive.
//   - The Sim engine replays the same schedule on the discrete-event
//     simulator with the SoC model's interference-aware service times. It
//     produces the paper's "measured" numbers deterministically and is
//     what every experiment uses.
package pipeline

import (
	"fmt"
	"time"

	"bettertogether/internal/core"
	"bettertogether/internal/metrics"
	"bettertogether/internal/obs"
	"bettertogether/internal/soc"
	"bettertogether/internal/trace"
)

// Plan is a schedule compiled against an application and a device, ready
// for either engine.
type Plan struct {
	App      *core.Application
	Device   *soc.Device
	Schedule core.Schedule
	Chunks   []core.Chunk
}

// NewPlan validates and compiles a schedule.
func NewPlan(app *core.Application, dev *soc.Device, s core.Schedule) (*Plan, error) {
	p := &Plan{App: app, Device: dev, Schedule: s, Chunks: s.Chunks()}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate checks the plan's consistency: application, device, and
// schedule validity plus chunk/schedule agreement. NewPlan output always
// passes; the engine driver re-checks before every run so hand-built
// plans fail with a typed error instead of a panic deep in an engine.
func (p *Plan) Validate() error {
	if p == nil {
		return fmt.Errorf("pipeline: nil plan")
	}
	if p.App == nil {
		return fmt.Errorf("pipeline: plan has no application")
	}
	if p.Device == nil {
		return fmt.Errorf("pipeline: plan has no device")
	}
	if err := p.App.Validate(); err != nil {
		return err
	}
	if err := p.Device.Validate(); err != nil {
		return err
	}
	if err := p.Schedule.Validate(len(p.App.Stages), p.Device.Classes()); err != nil {
		return err
	}
	want := p.Schedule.Chunks()
	if len(p.Chunks) != len(want) {
		return fmt.Errorf("pipeline: plan has %d chunks, schedule compiles to %d", len(p.Chunks), len(want))
	}
	for i, c := range want {
		if p.Chunks[i] != c {
			return fmt.Errorf("pipeline: plan chunk %d is %+v, schedule compiles to %+v", i, p.Chunks[i], c)
		}
	}
	return nil
}

// Backend returns the kernel backend of chunk i.
func (p *Plan) Backend(i int) core.Backend {
	return p.Device.PU(p.Chunks[i].PU).Kind.Backend()
}

// Options configure an execution run.
type Options struct {
	// Tasks is the number of stream tasks to process after warmup.
	// The paper's runs use 30 (Sec. 4).
	Tasks int
	// Warmup tasks are executed and excluded from metrics, as the paper
	// excludes GPU initialization and pipeline fill.
	Warmup int
	// Buffers is the TaskObject multi-buffering depth; 0 means
	// chunks+1, the minimum that keeps every chunk busy.
	Buffers int
	// Seed drives measurement noise in the Sim engine.
	Seed int64
	// Trace, when non-nil, receives one span per stage execution
	// (chunk, PU, stage, task, start/end) — virtual seconds from the
	// Sim engine, wall seconds from the Real engine.
	Trace *trace.Timeline
	// Metrics, when non-nil, receives runtime metrics from either
	// engine: per-stage dispatch counts and service-time histograms,
	// per-queue wait/stall/occupancy, and per-pool utilization. Build a
	// correctly sized collector with NewMetrics(plan). Recording is
	// lock-free and must not perturb the Sim engine's determinism.
	Metrics *metrics.Pipeline
	// ShutdownTimeout bounds how long the Real engine waits for
	// dispatcher goroutines to join after completion or cancellation;
	// 0 means a 30s default. On expiry Result.Err reports a
	// *ShutdownTimeoutError instead of hanging the caller.
	ShutdownTimeout time.Duration
	// GPUPoolWidth is the worker width of the simulated-SIMT GPU
	// executor: the Real engine sizes the GPU worker pool with it, and
	// both engines account pool utilization against it. Real kernels are
	// CPU-bound Go code here, so the width models "many lanes" without
	// oversubscribing the host. <= 0 selects DefaultGPUPoolWidth.
	GPUPoolWidth int
	// Events, when non-nil, receives typed observability events from the
	// engine driver and executors: RunStart/RunEnd around every run,
	// StageDone per stage execution (both engines), QueueStall on
	// producer-side backpressure and PanicRecovered on contained kernel
	// panics (Real engine). Emission is allocation-free and never blocks;
	// it does not perturb the Sim engine's virtual timeline (results are
	// bit-identical with and without a sink, pinned by test). The runtime
	// layer passes an obs.WithSession-wrapped sink here so one shared
	// stream carries every session's events under its own identity.
	Events obs.Sink
	// BaseEnv is an external interference environment overlaid on every
	// chunk's environment by the Sim engine: PU classes busy on behalf of
	// *other* workloads sharing the device, as the runtime layer's
	// resident sessions are. Loads on a class a chunk also uses combine
	// with saturation (soc.Env.Add). Nil means the plan has the device to
	// itself — the original single-app behaviour, bit-identical. The Real
	// engine ignores it: wall-clock kernels experience actual host
	// contention instead of modeled contention.
	BaseEnv soc.Env
}

// DefaultGPUPoolWidth is the GPU worker-pool width used when
// Options.GPUPoolWidth is unset.
const DefaultGPUPoolWidth = 8

// withDefaults fills derived option values for a plan.
func (o Options) withDefaults(p *Plan) Options {
	if o.Tasks <= 0 {
		o.Tasks = 30
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.Buffers <= 0 {
		o.Buffers = len(p.Chunks) + 1
	}
	if o.GPUPoolWidth <= 0 {
		o.GPUPoolWidth = DefaultGPUPoolWidth
	}
	return o
}

// Result reports one execution run.
type Result struct {
	// Completions are per-task completion timestamps in seconds (virtual
	// for Sim, wall for Real), warmup excluded.
	Completions []float64
	// Elapsed is the span from first measured dispatch to last
	// completion.
	Elapsed float64
	// PerTask is the steady-state per-task latency: the mean
	// inter-completion period, the throughput-side quantity the paper
	// reports as pipeline latency.
	PerTask float64
	// ChunkBusy[i] is the fraction of the run chunk i spent executing —
	// the utilization view behind the gapness objective (Sim only).
	ChunkBusy []float64
	// EnergyJ is the total device energy over the whole run in joules,
	// integrating per-PU busy power at the governed clock, idle power,
	// and uncore draw (Sim only; see soc.Device.Power).
	EnergyJ float64
	// EnergyPerTaskJ is EnergyJ divided by every task processed
	// (including warmup, which also burned energy).
	EnergyPerTaskJ float64
	// AvgWatts is the mean device power over the run (Sim only).
	AvgWatts float64
	// Err is set by the Real engine when the run did not finish cleanly:
	// a *PanicError for a recovered kernel panic, the context error for
	// a canceled run, or a *ShutdownTimeoutError when dispatchers failed
	// to join. The pipeline shuts down instead of deadlocking and
	// reports what happened here.
	Err error
}

// finalize computes derived metrics from completion timestamps. busy
// entries are already fractions of the run.
func finalize(completions []float64, start float64, busy []float64) Result {
	r := Result{Completions: completions, ChunkBusy: busy}
	if len(completions) == 0 {
		return r
	}
	last := completions[len(completions)-1]
	r.Elapsed = last - start
	if len(completions) > 1 {
		r.PerTask = (last - completions[0]) / float64(len(completions)-1)
	} else {
		r.PerTask = r.Elapsed
	}
	return r
}

// String summarizes the result.
func (r Result) String() string {
	return fmt.Sprintf("tasks=%d perTask=%.3fms elapsed=%.3fms",
		len(r.Completions), r.PerTask*1e3, r.Elapsed*1e3)
}
