package pipeline

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"bettertogether/internal/core"
	"bettertogether/internal/soc"
)

// countGoroutines samples the goroutine count after a settle period, for
// leak assertions.
func waitGoroutines(t *testing.T, before int, what string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s leaked goroutines: %d before, %d after", what, before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestExecuteContextCancelMidFlight(t *testing.T) {
	// Kernels slow enough that cancellation lands mid-run.
	slow := func(to *core.TaskObject, par core.ParallelFor) {
		time.Sleep(2 * time.Millisecond)
	}
	stages := make([]core.Stage, 3)
	for i := range stages {
		stages[i] = core.Stage{
			Name: string(rune('a' + i)), CPU: slow, GPU: slow,
			Cost: core.CostSpec{FLOPs: 1, ParallelFraction: 0.5, WorkItems: 1},
		}
	}
	app := &core.Application{Name: "slow", Stages: stages,
		NewTask: func() *core.TaskObject { return core.NewTaskObject(nil, nil, nil) }}
	dev := soc.NewJetson()
	p := mustPlan(t, app, dev, core.Schedule{Assign: []core.PUClass{"big", "big", "gpu"}})

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	r := ExecuteContext(ctx, p, Options{Tasks: 10000, Warmup: 0})
	if !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", r.Err)
	}
	// The run must terminate promptly (drain the in-flight buffers, not
	// the remaining thousands of tasks).
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if len(r.Completions) >= 10000 {
		t.Fatal("run completed despite cancellation")
	}
	waitGoroutines(t, before, "canceled run")
}

func TestExecuteContextPreCanceled(t *testing.T) {
	app, _ := testApp(2, 1e3)
	dev := soc.NewJetson()
	p := mustPlan(t, app, dev, core.NewUniformSchedule(2, core.ClassBig))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := runtime.NumGoroutine()
	r := ExecuteContext(ctx, p, Options{Tasks: 50, Warmup: 0})
	if !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", r.Err)
	}
	waitGoroutines(t, before, "pre-canceled run")
}

func TestExecuteShutdownTimeout(t *testing.T) {
	// A kernel that never returns must not hang ExecuteContext: the join
	// deadline expires and the stalled dispatcher is reported. The gate
	// is released at test end so the goroutine actually exits.
	gate := make(chan struct{})
	stuck := func(to *core.TaskObject, par core.ParallelFor) { <-gate }
	app := &core.Application{
		Name: "stuck",
		Stages: []core.Stage{{Name: "block", CPU: stuck, GPU: stuck,
			Cost: core.CostSpec{FLOPs: 1, ParallelFraction: 0.5, WorkItems: 1}}},
		NewTask: func() *core.TaskObject { return core.NewTaskObject(nil, nil, nil) },
	}
	defer close(gate)
	dev := soc.NewJetson()
	p := mustPlan(t, app, dev, core.NewUniformSchedule(1, core.ClassBig))
	t0 := time.Now()
	r := Execute(p, Options{Tasks: 3, Warmup: 0, ShutdownTimeout: 50 * time.Millisecond})
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("bounded join took %v", elapsed)
	}
	var ste *ShutdownTimeoutError
	if !errors.As(r.Err, &ste) {
		t.Fatalf("Err = %v, want *ShutdownTimeoutError", r.Err)
	}
	if ste.Stalled < 1 {
		t.Fatalf("Stalled = %d, want >= 1", ste.Stalled)
	}
}

func TestExecutePanicAttributionFromWorkerBand(t *testing.T) {
	// A panic on a pool worker lane (not the dispatcher) must surface as
	// a *PanicError attributed to the right chunk/stage/task, with the
	// worker's stack.
	boom := func(to *core.TaskObject, par core.ParallelFor) {
		if to.Seq == 3 {
			par(64, func(lo, hi int) {
				if lo == 0 {
					panic("lane exploded")
				}
			})
		}
	}
	ok := func(to *core.TaskObject, par core.ParallelFor) { par(64, func(lo, hi int) {}) }
	app := &core.Application{
		Name: "boom",
		Stages: []core.Stage{
			{Name: "fine", CPU: ok, GPU: ok,
				Cost: core.CostSpec{FLOPs: 1, ParallelFraction: 0.5, WorkItems: 1}},
			{Name: "explosive", CPU: boom, GPU: boom,
				Cost: core.CostSpec{FLOPs: 1, ParallelFraction: 0.5, WorkItems: 1}},
		},
		NewTask: func() *core.TaskObject { return core.NewTaskObject(nil, nil, nil) },
	}
	dev := soc.NewJetson()
	p := mustPlan(t, app, dev, core.Schedule{Assign: []core.PUClass{"big", "gpu"}})
	before := runtime.NumGoroutine()
	r := Execute(p, Options{Tasks: 10, Warmup: 0})
	var perr *PanicError
	if !errors.As(r.Err, &perr) {
		t.Fatalf("Err = %v, want *PanicError", r.Err)
	}
	if perr.Stage != "explosive" || perr.Chunk != 1 || perr.Task != 3 {
		t.Fatalf("attribution wrong: %+v", perr)
	}
	if perr.Value != "lane exploded" {
		t.Fatalf("Value = %v", perr.Value)
	}
	if len(perr.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	waitGoroutines(t, before, "panicked run")
}

func TestWorkerPoolBandPanicCompletesBarrier(t *testing.T) {
	pool := newWorkerPool(4)
	defer pool.Close()
	caught := func() (v any) {
		defer func() { v = recover() }()
		pool.ParFor(100, func(lo, hi int) {
			if lo == 0 {
				panic("first band")
			}
		})
		return nil
	}()
	wp, ok := caught.(workerPanic)
	if !ok {
		t.Fatalf("recovered %T, want workerPanic", caught)
	}
	if wp.value != "first band" || len(wp.stack) == 0 {
		t.Fatalf("workerPanic = %+v", wp)
	}
	// The pool must still work after a band panic (workers survived).
	total := 0
	pool.ParFor(10, func(lo, hi int) {
		if lo == 0 {
			total = 10
		}
	})
	_ = total
}

func TestExecuteRecordsMetrics(t *testing.T) {
	app, _ := testApp(4, 1e3)
	dev := soc.NewPixel7a()
	s := core.Schedule{Assign: []core.PUClass{"big", "big", "gpu", "little"}}
	p := mustPlan(t, app, dev, s)
	m := NewMetrics(p)
	r := Execute(p, Options{Tasks: 12, Warmup: 3, Metrics: m})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if m.NumStages() != 4 || m.NumQueues() != 3 || m.NumPools() != 3 {
		t.Fatalf("collector shape %d/%d/%d", m.NumStages(), m.NumQueues(), m.NumPools())
	}
	for i := 0; i < 4; i++ {
		st := m.Stage(i)
		if st.Dispatches() != 15 {
			t.Errorf("stage %d dispatches = %d, want 15", i, st.Dispatches())
		}
		if st.Service().Count() != 15 {
			t.Errorf("stage %d service count = %d", i, st.Service().Count())
		}
		if st.Name == "" || st.PU == "" {
			t.Errorf("stage %d unlabeled: %+v", i, st)
		}
	}
	// Every edge moved every task at least once.
	for e := 0; e < 3; e++ {
		if m.Queue(e).Pops() == 0 {
			t.Errorf("edge %d recorded no pops", e)
		}
		if m.Queue(e).Cap <= 0 {
			t.Errorf("edge %d capacity not filled", e)
		}
	}
	if m.Elapsed() <= 0 {
		t.Error("elapsed not recorded")
	}
	if m.Table() == "" {
		t.Error("empty table")
	}
}

func TestSimulateRecordsMetricsWithoutPerturbing(t *testing.T) {
	app, _ := testApp(5, 3e6)
	dev := soc.NewPixel7a()
	s := core.Schedule{Assign: []core.PUClass{"big", "big", "gpu", "gpu", "little"}}
	p := mustPlan(t, app, dev, s)

	bare := Simulate(p, Options{Tasks: 20, Warmup: 5, Seed: 7})
	m := NewMetrics(p)
	instrumented := Simulate(p, Options{Tasks: 20, Warmup: 5, Seed: 7, Metrics: m})

	// Bit-identical: attaching a collector must not perturb the DES.
	if bare.PerTask != instrumented.PerTask || bare.Elapsed != instrumented.Elapsed ||
		bare.EnergyJ != instrumented.EnergyJ {
		t.Fatalf("metrics perturbed the simulation: %v vs %v", bare, instrumented)
	}
	if len(bare.Completions) != len(instrumented.Completions) {
		t.Fatal("completion count changed")
	}
	for i := range bare.Completions {
		if bare.Completions[i] != instrumented.Completions[i] {
			t.Fatalf("completion %d differs", i)
		}
	}

	// And the collector must have real content in virtual time.
	total := uint64(0)
	for i := 0; i < m.NumStages(); i++ {
		total += m.Stage(i).Dispatches()
		if m.Stage(i).Service().Mean() <= 0 {
			t.Errorf("stage %d has no service time", i)
		}
	}
	if total != 25*5 {
		t.Fatalf("total dispatches = %d, want %d", total, 25*5)
	}
	if m.Elapsed() <= 0 {
		t.Error("virtual elapsed not recorded")
	}
	for i := 0; i < m.NumPools(); i++ {
		if m.Pool(i).BusyTime() <= 0 {
			t.Errorf("pool %d has no busy time", i)
		}
	}
}

func TestExecuteMetricsBackpressureVisible(t *testing.T) {
	// Chunk 1 is much slower than chunk 0, so the edge between them must
	// show occupancy (tasks piling up) — the slow stage is visible.
	fast := func(to *core.TaskObject, par core.ParallelFor) {}
	slow := func(to *core.TaskObject, par core.ParallelFor) { time.Sleep(time.Millisecond) }
	app := &core.Application{
		Name: "skewed",
		Stages: []core.Stage{
			{Name: "fast", CPU: fast, GPU: fast,
				Cost: core.CostSpec{FLOPs: 1, ParallelFraction: 0.5, WorkItems: 1}},
			{Name: "slow", CPU: slow, GPU: slow,
				Cost: core.CostSpec{FLOPs: 1, ParallelFraction: 0.5, WorkItems: 1}},
		},
		NewTask: func() *core.TaskObject { return core.NewTaskObject(nil, nil, nil) },
	}
	dev := soc.NewJetson()
	p := mustPlan(t, app, dev, core.Schedule{Assign: []core.PUClass{"big", "gpu"}})
	m := NewMetrics(p)
	r := Execute(p, Options{Tasks: 20, Warmup: 0, Buffers: 6, Metrics: m})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	// Edge 0 feeds the slow chunk: it must have been observed non-empty.
	if m.Queue(0).MaxDepth() == 0 {
		t.Error("backpressure invisible: edge into slow chunk never observed occupied")
	}
	// The slow stage's service time must dwarf the fast one's.
	if m.Stage(1).Service().Mean() < 10*m.Stage(0).Service().Mean() {
		t.Errorf("service skew not captured: fast %v, slow %v",
			m.Stage(0).Service().Mean(), m.Stage(1).Service().Mean())
	}
}

func TestExecuteJoinsAllGoroutines(t *testing.T) {
	// A clean run must leave zero goroutines behind (dispatchers, pool
	// workers, watcher).
	app, _ := testApp(3, 1e3)
	dev := soc.NewPixel7a()
	p := mustPlan(t, app, dev, core.Schedule{Assign: []core.PUClass{"big", "gpu", "little"}})
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		r := Execute(p, Options{Tasks: 8, Warmup: 2})
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	waitGoroutines(t, before, "clean runs")
}

func TestPanicErrorMessage(t *testing.T) {
	e := &PanicError{Chunk: 2, PU: core.ClassGPU, Stage: "conv1", Task: 7, Value: "boom"}
	msg := e.Error()
	for _, want := range []string{"chunk 2", "gpu", "conv1", "task 7", "boom"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
	bare := &PanicError{Chunk: 0, PU: core.ClassBig, Value: 42}
	if strings.Contains(bare.Error(), "stage") {
		t.Errorf("stageless message mentions stage: %q", bare.Error())
	}
	ste := &ShutdownTimeoutError{Timeout: time.Second, Stalled: 2}
	if !strings.Contains(ste.Error(), "2 dispatcher") {
		t.Errorf("shutdown message: %q", ste.Error())
	}
}
