package pipeline

import (
	"context"
	"fmt"
	"time"

	"bettertogether/internal/obs"
)

// Engine is the uniform execution surface over the package's two
// implementations. Both run the same compiled Plan through the same
// driver — plan validation, option resolution, metrics wiring, and
// result finalization are shared — and differ only in how a resolved run
// is executed:
//
//   - SimEngine replays the schedule on the discrete-event simulator with
//     the SoC model's interference-aware service times (virtual time,
//     deterministic — the paper's measurement path).
//   - RealEngine runs the application's actual Go kernels concurrently on
//     worker pools through dispatcher goroutines and lock-free SPSC
//     queues (wall time — functional validation).
//
// Callers that need to execute a plan without caring which path it takes
// (the runtime layer, cmd/btrun) program against this interface.
type Engine interface {
	// Run executes the plan and returns the finalized result. A plan
	// that fails validation, or a ctx already canceled at entry, returns
	// a Result whose Err carries the reason without starting the run.
	Run(ctx context.Context, p *Plan, opts Options) Result
	// Name is the engine's stable CLI identity ("sim", "real").
	Name() string
}

// SimEngine executes plans on the discrete-event simulator. The run is
// synchronous and effectively instant in wall time; ctx is honored at
// entry only (a started simulation always completes — determinism of the
// virtual timeline is a hard requirement).
type SimEngine struct{}

// Name implements Engine.
func (SimEngine) Name() string { return "sim" }

// Run implements Engine.
func (SimEngine) Run(ctx context.Context, p *Plan, opts Options) Result {
	return drive(ctx, p, opts, simRun)
}

// RealEngine executes plans with the application's actual kernels. Run
// honors ctx throughout: cancellation drains in-flight tasks, joins
// every dispatcher, and reports ctx.Err() in Result.Err (see the
// lifecycle contract on ExecuteContext).
type RealEngine struct{}

// Name implements Engine.
func (RealEngine) Name() string { return "real" }

// Run implements Engine.
func (RealEngine) Run(ctx context.Context, p *Plan, opts Options) Result {
	return drive(ctx, p, opts, realRun)
}

var (
	_ Engine = SimEngine{}
	_ Engine = RealEngine{}
)

// ByName resolves an engine from its CLI name.
func ByName(name string) (Engine, error) {
	switch name {
	case "sim":
		return SimEngine{}, nil
	case "real":
		return RealEngine{}, nil
	}
	return nil, fmt.Errorf("pipeline: unknown engine %q (have sim, real)", name)
}

// runOutcome is the raw product an executor hands back to the shared
// driver: completion timestamps plus engine-specific extras the driver
// folds into the finalized Result.
type runOutcome struct {
	// completions are per-task completion timestamps, warmup excluded.
	completions []float64
	// measureStart is when the measured window opened.
	measureStart float64
	// chunkBusy is the per-chunk busy fraction (Sim only).
	chunkBusy []float64
	// energyJ/energyPerTaskJ/avgWatts are the energy figures (Sim only).
	energyJ, energyPerTaskJ, avgWatts float64
	// err is the run's terminal error, if it did not finish cleanly.
	err error
}

// drive is the shared engine driver: it validates the plan, resolves
// options, wires the metrics collector (logical queue capacities and
// resolved pool widths — identical whichever engine fills the rows),
// executes, and finalizes the result. Engine implementations are thin
// executors over this.
func drive(ctx context.Context, p *Plan, opts Options, exec func(context.Context, *Plan, Options) runOutcome) Result {
	if err := p.Validate(); err != nil {
		return Result{Err: err}
	}
	opts = opts.withDefaults(p)
	if m := opts.Metrics; m != nil {
		// Caps report the logical ring depth (the Real engine's physical
		// SPSC buffers round up to a power of two underneath).
		for e := 0; e < len(p.Chunks); e++ {
			m.Queue(e).Cap = opts.Buffers + 1
		}
		for i, class := range poolOrder(p) {
			m.Pool(i).Width = opts.poolWidth(p, class)
		}
	}
	if err := ctx.Err(); err != nil {
		return Result{Err: err}
	}
	if ev := opts.Events; ev != nil {
		e := obs.NewEvent(obs.KindRunStart)
		e.Task = opts.Tasks
		e.Detail = fmt.Sprintf("%s tasks=%d warmup=%d", p.App.Name, opts.Tasks, opts.Warmup)
		ev.Emit(e)
	}
	out := exec(ctx, p, opts)
	r := finalize(out.completions, out.measureStart, out.chunkBusy)
	r.EnergyJ, r.EnergyPerTaskJ, r.AvgWatts = out.energyJ, out.energyPerTaskJ, out.avgWatts
	r.Err = out.err
	if ev := opts.Events; ev != nil {
		e := obs.NewEvent(obs.KindRunEnd)
		e.Task = len(r.Completions)
		e.Dur = time.Duration(r.Elapsed * float64(time.Second))
		if r.Err != nil {
			e.Detail = r.Err.Error()
		}
		ev.Emit(e)
	}
	return r
}
